//===- tools/ipracc.cpp - Command-line compiler driver ---------------------===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
// The command-line face of the pipeline:
//
//   ipracc [options] file.mc [file2.mc ...]
//
//   -O2 / -O3            intra- / inter-procedural allocation (default -O2)
//   --shrink-wrap        enable shrink-wrapping (off by default, as in the
//                        paper's base configuration)
//   --no-combined        disable the Section-6 combined strategy
//   --no-reg-params      disable IPRA register parameter passing
//   --no-loop-ext        disable loop extension
//   --restrict=caller7|callee7   Table-2 register-set restrictions
//   --convention=<spec>  compile against a non-default calling convention;
//                        short form "s:9,p:4" (callee-saved count,
//                        parameter-register count, optional reserved
//                        count r:N) or explicit register lists
//                        "callee=s0-s8;params=a0-a3;reserved=". The
//                        default is the paper's convention, "s:9,p:4".
//                        Composes with --restrict, which reserves the
//                        registers outside the restricted file.
//   --threads=N          back-end worker threads (0 = serial; default is
//                        the hardware concurrency)
//   --profile            profile-guided rebuild (train on one run)
//   --verify-mir / --no-verify-mir
//                        audit the generated code against the published
//                        summaries, shrink-wrap pairing and linkage
//                        protocol (on by default; violations exit 1)
//   --verify-native / --no-verify-native
//                        statically audit the x86-64 images the native
//                        engine JITs: decode + re-encode every byte and
//                        prove the register-map, callee-save, memory-
//                        region and budget-check contracts hold (on by
//                        default in debug builds; a violation fails the
//                        run). Only meaningful with --sim-engine=native
//                        or native-raw.
//   --emit-ir            print the optimized IR
//   --emit-mir           print the generated machine code
//   --summaries          print each procedure's register-usage summary
//   --run                execute on the simulator (default)
//   --sim-engine=reference|decoded|native|native-raw
//                        pick the execution engine: the pre-decoded
//                        threaded-dispatch engine (default), the
//                        reference switch interpreter it is verified
//                        against (both produce identical counters), the
//                        JIT-compiled x86-64 backend (instrumented:
//                        identical counters again), or its
//                        uninstrumented pure-speed mode (native-raw:
//                        exact counters on error-free runs, approximate
//                        budget enforcement, no profiling/convention
//                        checks)
//   --native-map=global|perproc
//                        native engines only: host-register map policy.
//                        perproc (default) gives each procedure its own
//                        pinned set with summary-driven sync at call
//                        boundaries; global is the legacy single
//                        program-wide map
//   --stats              print compile-time statistics, and the pixie
//                        counters after the run
//   --stats-json=<file>  write the machine-readable statistics report
//                        (compile-time counters per procedure + totals,
//                        plus the simulator counters when --run)
//   --trace-json=<file>  write a Chrome trace-event file of the compile:
//                        front end, back end, every scheduler task and
//                        per-procedure phase
//   --benchmark=<name>   compile the named built-in suite program instead
//                        of reading files (nim, map, ..., uopt)
//   --serve              incremental compile service: read line-oriented
//                        batch requests from stdin (load/recompile/emit/
//                        stats/run/quit; see driver/IncrementalService.h),
//                        recompiling only the summary-changed ancestor
//                        frontier of each edit. Exit 0 iff no request
//                        errored. Composes with the compile options above;
//                        incompatible with input files and --profile.
//
// Multiple input files are compiled separately and cross-module linked
// (the paper's Section 7 setting).
//
//===----------------------------------------------------------------------===//

#include "driver/IncrementalService.h"
#include "driver/Pipeline.h"
#include "ir/Printer.h"
#include "programs/Programs.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace ipra;

namespace {

struct ToolOptions {
  CompileOptions Compile;
  SimOptions Sim;
  std::vector<std::string> Inputs;
  std::string Benchmark;
  bool EmitIR = false;
  bool EmitMIR = false;
  bool PrintSummaries = false;
  bool Run = true;
  bool Stats = false;
  bool UseProfile = false;
  bool Serve = false;
  std::string StatsJsonPath;
  std::string TraceJsonPath;
};

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [-O2|-O3] [--shrink-wrap] [--no-combined] "
               "[--no-reg-params]\n              [--no-loop-ext] "
               "[--restrict=caller7|callee7] [--convention=<spec>]\n"
               "              [--threads=N] [--profile] [--serve]\n"
               "              [--verify-mir] [--no-verify-mir]\n"
               "              [--verify-native] [--no-verify-native]\n"
               "              "
               "[--emit-ir] [--emit-mir] [--summaries] [--run] [--stats]\n"
               "              [--sim-engine=reference|decoded|native|"
               "native-raw]\n"
               "              [--native-map=global|perproc]\n"
               "              [--stats-json=<file>] [--trace-json=<file>]\n"
               "              [--benchmark=<name>] file.mc [file2.mc ...]\n",
               Argv0);
}

bool parseArgs(int Argc, char **Argv, ToolOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "-O2") {
      Opts.Compile.OptLevel = 2;
    } else if (Arg == "-O3") {
      Opts.Compile.OptLevel = 3;
    } else if (Arg == "--shrink-wrap") {
      Opts.Compile.ShrinkWrap = true;
    } else if (Arg == "--no-combined") {
      Opts.Compile.CombinedStrategy = false;
    } else if (Arg == "--no-reg-params") {
      Opts.Compile.RegisterParams = false;
    } else if (Arg == "--no-loop-ext") {
      Opts.Compile.LoopExtension = false;
    } else if (Arg == "--restrict=caller7") {
      Opts.Compile.Restriction = RegSetRestriction::CallerOnly7;
    } else if (Arg == "--restrict=callee7") {
      Opts.Compile.Restriction = RegSetRestriction::CalleeOnly7;
    } else if (Arg.rfind("--convention=", 0) == 0) {
      std::string Spec = Arg.substr(std::strlen("--convention="));
      std::string Err;
      if (!ConventionSpec::parse(Spec, Opts.Compile.Convention, Err)) {
        std::fprintf(stderr, "ipracc: bad --convention '%s': %s\n",
                     Spec.c_str(), Err.c_str());
        return false;
      }
    } else if (Arg.rfind("--threads=", 0) == 0) {
      char *End = nullptr;
      const char *Num = Arg.c_str() + std::strlen("--threads=");
      unsigned long N = std::strtoul(Num, &End, 10);
      if (*Num == '\0' || *End != '\0') {
        std::fprintf(stderr, "ipracc: bad thread count '%s'\n", Num);
        return false;
      }
      Opts.Compile.Threads = unsigned(N);
    } else if (Arg == "--profile") {
      Opts.UseProfile = true;
    } else if (Arg == "--serve") {
      Opts.Serve = true;
    } else if (Arg == "--verify-mir") {
      Opts.Compile.VerifyMIR = true;
    } else if (Arg == "--no-verify-mir") {
      Opts.Compile.VerifyMIR = false;
    } else if (Arg == "--verify-native") {
      Opts.Compile.VerifyNative = Opts.Sim.VerifyNative = true;
    } else if (Arg == "--no-verify-native") {
      Opts.Compile.VerifyNative = Opts.Sim.VerifyNative = false;
    } else if (Arg == "--emit-ir") {
      Opts.EmitIR = true;
    } else if (Arg == "--emit-mir") {
      Opts.EmitMIR = true;
    } else if (Arg == "--summaries") {
      Opts.PrintSummaries = true;
    } else if (Arg == "--run") {
      Opts.Run = true;
    } else if (Arg == "--no-run") {
      Opts.Run = false;
    } else if (Arg == "--stats") {
      Opts.Stats = true;
    } else if (Arg.rfind("--sim-engine=", 0) == 0) {
      std::string Engine = Arg.substr(std::strlen("--sim-engine="));
      if (Engine == "reference") {
        Opts.Sim.Engine = SimEngine::Reference;
      } else if (Engine == "decoded") {
        Opts.Sim.Engine = SimEngine::Decoded;
      } else if (Engine == "native") {
        Opts.Sim.Engine = SimEngine::Native;
        Opts.Sim.NativeRaw = false;
      } else if (Engine == "native-raw") {
        Opts.Sim.Engine = SimEngine::Native;
        Opts.Sim.NativeRaw = true;
      } else {
        std::fprintf(stderr, "ipracc: unknown sim engine '%s'\n",
                     Engine.c_str());
        return false;
      }
    } else if (Arg.rfind("--native-map=", 0) == 0) {
      std::string Policy = Arg.substr(std::strlen("--native-map="));
      if (Policy == "global") {
        Opts.Sim.NativeMap = SimOptions::NativeMapPolicy::Global;
      } else if (Policy == "perproc") {
        Opts.Sim.NativeMap = SimOptions::NativeMapPolicy::PerProc;
      } else {
        std::fprintf(stderr, "ipracc: unknown native map policy '%s'\n",
                     Policy.c_str());
        return false;
      }
    } else if (Arg.rfind("--stats-json=", 0) == 0) {
      Opts.StatsJsonPath = Arg.substr(std::strlen("--stats-json="));
      if (Opts.StatsJsonPath.empty()) {
        std::fprintf(stderr, "ipracc: --stats-json needs a file path\n");
        return false;
      }
    } else if (Arg.rfind("--trace-json=", 0) == 0) {
      Opts.TraceJsonPath = Arg.substr(std::strlen("--trace-json="));
      if (Opts.TraceJsonPath.empty()) {
        std::fprintf(stderr, "ipracc: --trace-json needs a file path\n");
        return false;
      }
    } else if (Arg.rfind("--benchmark=", 0) == 0) {
      Opts.Benchmark = Arg.substr(std::strlen("--benchmark="));
    } else if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
      std::exit(0);
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "ipracc: unknown option '%s'\n", Arg.c_str());
      return false;
    } else {
      Opts.Inputs.push_back(Arg);
    }
  }
  return true;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

/// Writes \p Text to \p Path. \returns false (with a diagnostic) when the
/// file cannot be opened or written -- a dropped report must fail the run.
bool writeReport(const std::string &Path, const std::string &Text,
                 const char *What) {
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "ipracc: cannot open %s file '%s'\n", What,
                 Path.c_str());
    return false;
  }
  Out << Text;
  Out.flush();
  if (!Out) {
    std::fprintf(stderr, "ipracc: error writing %s file '%s'\n", What,
                 Path.c_str());
    return false;
  }
  return true;
}

/// The --stats-json document: the deterministic compile-time report, plus
/// the simulator counters when a run happened.
std::string statsJsonReport(const CompileResult &Result,
                            const RunStats *Run) {
  std::string Out = "{\n\"compile\": " + Result.Stats.json();
  if (Run)
    Out += ",\n\"sim\": " + Run->counters().json() + "\n";
  Out += "}\n";
  return Out;
}

void printCompileStats(const CompileResult &Result) {
  std::fprintf(stderr, "compile-time statistics (totals over %zu procs):\n",
               Result.Stats.Procs.size());
  StatCounters Totals = Result.Stats.totals();
  for (const auto &[Name, Value] : Totals.entries())
    std::fprintf(stderr, "  %-36s %llu\n", Name.c_str(),
                 (unsigned long long)Value);
}

void printSummaries(const CompileResult &Result) {
  for (const auto &Proc : *Result.IR) {
    const RegUsageSummary &S = Result.Summaries->lookup(Proc->id());
    std::printf("; %s: ", Proc->name().c_str());
    if (!S.Precise) {
      std::printf("default linkage protocol (open)\n");
      continue;
    }
    std::printf("clobbers %s, params in", S.Clobbered.str().c_str());
    if (S.ParamLocs.empty())
      std::printf(" (none)");
    for (unsigned Loc : S.ParamLocs)
      std::printf(" %s", Loc == StackParamLoc ? "stack" : regName(Loc));
    std::printf("\n");
  }
}

} // namespace

int main(int Argc, char **Argv) {
  ToolOptions Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    usage(Argv[0]);
    return 2;
  }

  if (Opts.Serve) {
    if (!Opts.Inputs.empty() || !Opts.Benchmark.empty() || Opts.UseProfile) {
      std::fprintf(stderr, "ipracc: --serve takes requests on stdin; it is "
                           "incompatible with input files, --benchmark and "
                           "--profile\n");
      return 2;
    }
    return serveLoop(std::cin, std::cout, Opts.Compile);
  }

  std::vector<std::string> Sources;
  if (!Opts.Benchmark.empty()) {
    const BenchmarkProgram *B = findBenchmark(Opts.Benchmark);
    if (!B) {
      std::fprintf(stderr, "ipracc: unknown benchmark '%s'; available:",
                   Opts.Benchmark.c_str());
      for (const BenchmarkProgram &P : benchmarkSuite())
        std::fprintf(stderr, " %s", P.Name);
      std::fprintf(stderr, "\n");
      return 2;
    }
    Sources.push_back(B->Source);
  }
  for (const std::string &Path : Opts.Inputs) {
    std::string Text;
    if (!readFile(Path, Text)) {
      std::fprintf(stderr, "ipracc: cannot read '%s'\n", Path.c_str());
      return 2;
    }
    Sources.push_back(std::move(Text));
  }
  if (Sources.empty()) {
    usage(Argv[0]);
    return 2;
  }

  TraceRecorder Trace;
  if (!Opts.TraceJsonPath.empty())
    Opts.Compile.Trace = &Trace;

  DiagnosticEngine Diags;
  std::unique_ptr<CompileResult> Result;
  if (Opts.UseProfile) {
    if (Sources.size() != 1) {
      std::fprintf(stderr,
                   "ipracc: --profile supports a single input for now\n");
      return 2;
    }
    Result = compileWithProfile(Sources[0], Opts.Compile, Diags);
  } else if (Sources.size() == 1) {
    Result = compileProgram(Sources[0], Opts.Compile, Diags);
  } else {
    Result = compileUnits(Sources, Opts.Compile, Diags);
  }
  // Warnings (e.g. unresolved externals) are worth showing either way.
  for (const Diagnostic &D : Diags.diagnostics())
    std::fprintf(stderr, "ipracc: %s\n", D.str().c_str());
  if (!Result)
    return 1;

  if (Opts.EmitIR)
    std::printf("%s", toString(*Result->IR).c_str());
  if (Opts.PrintSummaries)
    printSummaries(*Result);
  if (Opts.EmitMIR)
    for (const MProc &P : Result->Program.Procs)
      if (!P.IsExternal)
        std::printf("%s", toString(P).c_str());

  // MIR-verifier violations leave a result (so --emit-mir above can show
  // the offending code) but must still fail the invocation.
  if (Diags.hasErrors())
    return 1;

  // Report writers share one exit policy: a report that cannot be
  // written fails the invocation instead of silently dropping data.
  auto WriteReports = [&](const RunStats *Run) {
    bool OK = true;
    if (!Opts.StatsJsonPath.empty())
      OK &= writeReport(Opts.StatsJsonPath, statsJsonReport(*Result, Run),
                        "--stats-json");
    if (!Opts.TraceJsonPath.empty())
      OK &= writeReport(Opts.TraceJsonPath, Trace.chromeTraceJson(),
                        "--trace-json");
    return OK;
  };

  if (!Opts.Run) {
    if (Opts.Stats)
      printCompileStats(*Result);
    return WriteReports(nullptr) ? 0 : 1;
  }
  RunStats Stats = runProgram(Result->Program, Opts.Sim);
  if (!Stats.OK) {
    std::fprintf(stderr, "ipracc: runtime error: %s\n", Stats.Error.c_str());
    WriteReports(nullptr);
    return 1;
  }
  for (int64_t V : Stats.Output)
    std::printf("%lld\n", (long long)V);
  if (Opts.Stats) {
    printCompileStats(*Result);
    std::fprintf(stderr, "cycles:        %llu\n",
                 (unsigned long long)Stats.Cycles);
    std::fprintf(stderr, "scalar ld/st:  %llu\n",
                 (unsigned long long)Stats.scalarMemOps());
    std::fprintf(stderr, "data ld/st:    %llu\n",
                 (unsigned long long)(Stats.DataLoads + Stats.DataStores));
    std::fprintf(stderr, "calls:         %llu\n",
                 (unsigned long long)Stats.Calls);
    std::fprintf(stderr, "cycles/call:   %.1f\n", Stats.cyclesPerCall());
    std::fprintf(stderr, "exit value:    %lld\n",
                 (long long)Stats.ExitValue);
  }
  return WriteReports(&Stats) ? 0 : 1;
}
