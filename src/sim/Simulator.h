//===- sim/Simulator.h - Machine-code interpreter and counters -*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An instruction-level interpreter for the machine programs the code
/// generator emits. It stands in for the paper's `pixie` tracing facility:
/// every instruction costs one cycle (the R2000 single-issue model) and
/// loads/stores are tallied by category, so the "executed cycles" and
/// "scalar loads/stores" columns of Tables 1 and 2 can be reproduced
/// independent of cache and clock effects, exactly as the paper measures.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_SIM_SIMULATOR_H
#define IPRA_SIM_SIMULATOR_H

#include "analysis/Profile.h"
#include "codegen/MIR.h"
#include "support/Statistics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ipra {

/// Counters and outcome of one program run.
struct RunStats {
  bool OK = false;
  std::string Error;
  int64_t ExitValue = 0;

  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  /// Loads/stores of scalar variables, spills and register saves/restores:
  /// the traffic a perfect register allocator could remove.
  uint64_t ScalarLoads = 0;
  uint64_t ScalarStores = 0;
  /// Array/pointer data traffic.
  uint64_t DataLoads = 0;
  uint64_t DataStores = 0;
  /// Dynamic procedure calls executed.
  uint64_t Calls = 0;

  /// Values printed by the program, in order (the observable behaviour
  /// used to check correctness across configurations).
  std::vector<int64_t> Output;

  /// Per-block execution counts (only filled when
  /// SimOptions::CollectBlockProfile is set). Machine blocks map 1:1 onto
  /// the IR blocks they were generated from, so this feeds straight back
  /// into the allocator (see analysis/Profile.h).
  ProfileData Profile;

  uint64_t scalarMemOps() const { return ScalarLoads + ScalarStores; }
  double cyclesPerCall() const {
    return Calls ? double(Cycles) / double(Calls) : double(Cycles);
  }

  /// The pixie counters as a named-counter set ("sim.*"), for the
  /// machine-readable stats report alongside CompileStats.
  StatCounters counters() const;
};

struct SimOptions {
  /// Memory size in words (globals at the bottom, stack at the top).
  uint64_t MemWords = 1u << 22;
  /// Execution budget; exceeding it aborts the run with an error.
  uint64_t MaxSteps = 400 * 1000 * 1000ull;
  /// Call-depth budget.
  unsigned MaxCallDepth = 100000;
  /// Record per-block execution counts into RunStats::Profile (the pixie
  /// basic-block counting mode).
  bool CollectBlockProfile = false;
  /// Dynamically verify the register-usage contract at every call: when a
  /// procedure returns, every register outside its published clobber mask
  /// (MProgram::ClobberMasks) must hold its pre-call value, and the stack
  /// pointer must be restored exactly. A violation aborts the run with a
  /// diagnostic naming the call and register -- it means the allocator
  /// published a summary its code does not honour.
  bool CheckConventions = false;
};

/// Executes \p Prog from its main procedure. Never throws; failures are
/// reported through RunStats::OK / Error.
RunStats runProgram(const MProgram &Prog, const SimOptions &Opts = {});

} // namespace ipra

#endif // IPRA_SIM_SIMULATOR_H
