//===- sim/Simulator.h - Machine-code interpreter and counters -*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An instruction-level interpreter for the machine programs the code
/// generator emits. It stands in for the paper's `pixie` tracing facility:
/// every instruction costs one cycle (the R2000 single-issue model) and
/// loads/stores are tallied by category, so the "executed cycles" and
/// "scalar loads/stores" columns of Tables 1 and 2 can be reproduced
/// independent of cache and clock effects, exactly as the paper measures.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_SIM_SIMULATOR_H
#define IPRA_SIM_SIMULATOR_H

#include "analysis/Profile.h"
#include "codegen/MIR.h"
#include "support/Statistics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ipra {

/// Counters and outcome of one program run.
struct RunStats {
  bool OK = false;
  std::string Error;
  int64_t ExitValue = 0;

  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  /// Loads/stores of scalar variables, spills and register saves/restores:
  /// the traffic a perfect register allocator could remove.
  uint64_t ScalarLoads = 0;
  uint64_t ScalarStores = 0;
  /// Array/pointer data traffic.
  uint64_t DataLoads = 0;
  uint64_t DataStores = 0;
  /// Dynamic procedure calls executed.
  uint64_t Calls = 0;

  /// Values printed by the program, in order (the observable behaviour
  /// used to check correctness across configurations).
  std::vector<int64_t> Output;

  /// Per-block execution counts (only filled when
  /// SimOptions::CollectBlockProfile is set). Machine blocks map 1:1 onto
  /// the IR blocks they were generated from, so this feeds straight back
  /// into the allocator (see analysis/Profile.h).
  ProfileData Profile;

  /// Decoded-engine observability (all zero under the Reference engine;
  /// excluded from the paper-measurement equality in sameExecution()).
  /// Decode-time shape of the pre-decoded streams:
  uint64_t DecodedProcs = 0;       ///< Procedures lowered to streams.
  uint64_t DecodedOps = 0;         ///< Decoded ops emitted in total.
  uint64_t DecodedSourceInsts = 0; ///< Original MInsts those ops cover.
  uint64_t FusedCmpBranches = 0;   ///< compare+branch pairs fused.
  uint64_t FusedAddImmLoads = 0;   ///< add-immediate+load pairs fused.
  /// Dispatch-time behaviour:
  uint64_t SuperopsRetired = 0;  ///< Fused ops executed (2 insts each).
  uint64_t CarefulEntries = 0;   ///< Switches into the checking tail loop.

  /// Native-engine observability (all zero elsewhere; excluded from
  /// sameExecution like the decoded counters):
  uint64_t NativeProcs = 0;     ///< Procedures JIT-compiled.
  uint64_t NativeCodeBytes = 0; ///< Machine code emitted.
  uint64_t NativeBailouts = 0;  ///< Switches into the careful tail.
  /// Register-map policy counters (static, per image; see
  /// x64/NativeCodeGen.h NativeCode):
  uint64_t NativeMapPins = 0;         ///< Pinned registers across bodies.
  uint64_t NativeMapSyncStores = 0;   ///< Call-site sync stores emitted.
  uint64_t NativeMapReloadLoads = 0;  ///< Post-call reloads emitted.
  uint64_t NativeMapSyncsAvoided = 0; ///< Dirty-pin syncs the callee's
                                      ///< summary proved unnecessary.
  /// Native-verifier results for the image this run executed (zero when
  /// the audit was off or another engine ran; see SimOptions::VerifyNative).
  uint64_t NativeVerifiedProcs = 0;    ///< Procedure bodies audited.
  uint64_t NativeVerifyViolations = 0; ///< Findings (0 on any OK run).

  uint64_t scalarMemOps() const { return ScalarLoads + ScalarStores; }
  double cyclesPerCall() const {
    return double(Cycles) / double(Calls ? Calls : 1);
  }

  /// True when two runs agree on everything the paper measures: outcome,
  /// output, every pixie counter and the block profile. Engine-internal
  /// counters (sim.decode.* / sim.dispatch.*) are deliberately excluded --
  /// this is the contract the Decoded engine must meet against the
  /// Reference oracle.
  bool sameExecution(const RunStats &O) const {
    return OK == O.OK && Error == O.Error && ExitValue == O.ExitValue &&
           Cycles == O.Cycles && Instructions == O.Instructions &&
           ScalarLoads == O.ScalarLoads && ScalarStores == O.ScalarStores &&
           DataLoads == O.DataLoads && DataStores == O.DataStores &&
           Calls == O.Calls && Output == O.Output &&
           Profile.BlockCounts == O.Profile.BlockCounts;
  }

  /// The pixie counters as a named-counter set ("sim.*"), for the
  /// machine-readable stats report alongside CompileStats. The decoded
  /// engine's "sim.decode.* / sim.dispatch.*" keys appear only when
  /// non-zero, so Reference-engine reports render exactly as before the
  /// second engine existed.
  StatCounters counters() const;
};

/// Which execution engine runProgram uses. Both produce byte-identical
/// RunStats (see RunStats::sameExecution); the Reference interpreter is
/// kept as the oracle the decoded engine is differentially tested
/// against.
enum class SimEngine {
  /// The original switch-dispatch interpreter over MInst vectors.
  Reference,
  /// Pre-decoded flat streams with threaded dispatch and superop fusion
  /// (see sim/DecodedEngine.h). The default.
  Decoded,
  /// JIT-compiled x86-64 machine code (see x64/NativeEngine.h).
  /// Instrumented by default -- byte-exact against the interpreters --
  /// or uninstrumented pure-speed mode via SimOptions::NativeRaw.
  /// Unsupported hosts report a clean RunStats error.
  Native,
};

struct SimOptions {
  /// Memory size in words (globals at the bottom, stack at the top).
  uint64_t MemWords = 1u << 22;
  /// Execution budget; exceeding it aborts the run with an error.
  uint64_t MaxSteps = 400 * 1000 * 1000ull;
  /// Call-depth budget.
  unsigned MaxCallDepth = 100000;
  /// Record per-block execution counts into RunStats::Profile (the pixie
  /// basic-block counting mode).
  bool CollectBlockProfile = false;
  /// Dynamically verify the register-usage contract at every call: when a
  /// procedure returns, every register outside its published clobber mask
  /// (MProgram::ClobberMasks) must hold its pre-call value, and the stack
  /// pointer must be restored exactly. A violation aborts the run with a
  /// diagnostic naming the call and register -- it means the allocator
  /// published a summary its code does not honour.
  bool CheckConventions = false;
  /// Execution engine (see SimEngine). Decoded by default; Reference is
  /// the differential oracle.
  SimEngine Engine = SimEngine::Decoded;
  /// Native engine only: drop the per-block cost instrumentation and run
  /// uninstrumented code. Pixie counters stay exact on error-free runs;
  /// budget enforcement becomes approximate (checked at loop back edges
  /// and procedure entries) and block profiling / convention checking
  /// are rejected. Ignored by the interpreter engines.
  bool NativeRaw = false;
  /// Native engine only: host-register map policy (see
  /// x64/NativeCodeGen.h). PerProc gives every procedure its own pinned
  /// set chosen from its own loop-weighted operand frequencies, with
  /// summary-driven sync at call boundaries -- the paper's
  /// interprocedural discipline applied to the JIT's host registers.
  /// Global is the legacy single program-wide map.
  enum class NativeMapPolicy { Global, PerProc };
  NativeMapPolicy NativeMap = NativeMapPolicy::PerProc;
  /// Native engine only: statically audit every freshly compiled image
  /// (full decode + re-encode + abstract interpretation; see
  /// verify/NativeVerifier.h) before it may execute or enter the code
  /// cache. A violation fails the run with the verifier's diagnostics --
  /// it means the JIT emitted code that breaks the runtime contract.
  /// Default-on in debug builds, mirroring CompileOptions::VerifyMIR one
  /// level up; release builds and `ipracc --no-verify-native` switch it
  /// off (cold-compile benchmarks, primarily -- the cache amortizes the
  /// audit everywhere else).
#ifdef NDEBUG
  bool VerifyNative = false;
#else
  bool VerifyNative = true;
#endif
};

/// Executes \p Prog from its main procedure. Never throws; failures are
/// reported through RunStats::OK / Error.
RunStats runProgram(const MProgram &Prog, const SimOptions &Opts = {});

} // namespace ipra

#endif // IPRA_SIM_SIMULATOR_H
