//===- sim/BatchRunner.h - Parallel simulation batch runner ----*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fans a batch of independent simulation jobs (the suite x config x
/// program run matrix of the bench drivers, or the pipeline's
/// profile-collection runs) across support/ThreadPool. Results come back
/// in job order regardless of completion order -- each job writes its own
/// pre-sized slot -- so batched drivers print byte-identical reports to
/// their old sequential loops. Zero threads degrades to inline execution
/// on the calling thread (same ordering, no pool), which is also the
/// TSan-friendly determinism baseline.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_SIM_BATCHRUNNER_H
#define IPRA_SIM_BATCHRUNNER_H

#include "sim/Simulator.h"
#include "support/ThreadPool.h"

#include <functional>
#include <utility>
#include <vector>

namespace ipra {
namespace sim {

class BatchRunner {
public:
  /// \p Threads workers; zero runs every job inline on the calling
  /// thread. Defaults to one worker per hardware thread.
  explicit BatchRunner(unsigned Threads = defaultSimThreads())
      : Pool(Threads) {}

  unsigned threadCount() const { return Pool.threadCount(); }

  /// Runs every job and returns their results in *job order* (slot I
  /// holds Jobs[I]'s result, whatever order they finished in). The first
  /// exception thrown by a job is rethrown after the batch drains.
  template <typename T>
  std::vector<T> map(const std::vector<std::function<T()>> &Jobs) {
    std::vector<T> Results(Jobs.size());
    for (size_t I = 0; I < Jobs.size(); ++I)
      Pool.enqueue([&Results, &Jobs, I] { Results[I] = Jobs[I](); });
    Pool.wait();
    return Results;
  }

  /// The common batch: simulate every program under one option set,
  /// results in program order.
  std::vector<RunStats> runPrograms(const std::vector<const MProgram *> &Progs,
                                    const SimOptions &Opts);

  /// What a simulation batch defaults to: the host's hardware
  /// concurrency (shared with the compile pipeline's default).
  static unsigned defaultSimThreads();

private:
  ThreadPool Pool;
};

} // namespace sim
} // namespace ipra

#endif // IPRA_SIM_BATCHRUNNER_H
