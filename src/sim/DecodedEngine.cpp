//===- sim/DecodedEngine.cpp - Pre-decoded threaded-dispatch engine --------===//
//
// The engine has two halves:
//
//  * A *decoder* lowering each MProc into one flat std::vector<DInst>:
//    fixed-width decoded ops, branch targets as stream indices with the
//    target block's instruction count alongside (so the execution-budget
//    test runs once per transfer instead of once per instruction), call
//    targets as decoded-proc pointers, and two superop fusions --
//    compare+branch and add-immediate+load -- each charging the two
//    original instructions' cycle/load/store costs. Profile and
//    convention checks are hoisted here: the decoder emits checking
//    (BrP, RetC, CallPC, ...) or non-checking (Br, Ret, Call) variants,
//    so a plain run's inner loop contains no profile or convention
//    conditionals at all.
//
//  * A *threaded-dispatch* loop: computed goto on GCC/Clang, a dense
//    function-pointer table elsewhere; one handler per decoded opcode,
//    each ending in an indirect jump to the next op's handler.
//
// Cycle accounting is hoisted the same way the budget test is: no
// sequential op touches the step counter. Every decoded op records its
// source offset past the block head (CostFromHead), and the op that
// *leaves* the straight-line segment -- a branch, call, return, or a
// failing instruction -- charges the whole segment at once. A call
// leaves the segment partially charged, so the engine keeps one charge
// bias: the frame remembers how much of the caller's block was already
// charged, and the first transfer after the resume deducts it. Steps is
// therefore exact at every point where anyone looks at it (transfers,
// budget tests, errors, the final RunStats).
//
// Exactness contract (RunStats::sameExecution with the Reference
// interpreter): the reference checks the budget before every
// instruction, but a check inside a block whose full cost fits in the
// remaining budget can never fire. So the fast path re-checks only at
// block transfers -- "does the remaining budget cover the target
// block?" -- and when that fails once, control moves permanently into
// runCareful(), a cold switch loop that replays the reference's exact
// per-instruction (and per-superop-component) check sequence. Budget
// exhaustion is monotone, so the careful tail is bounded by one block's
// worth of instructions and its cost never shows on the fast path.
//
//===----------------------------------------------------------------------===//

#include "sim/DecodedEngine.h"

#include "sim/ConventionCheck.h"

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>

using namespace ipra;

// Threaded dispatch: computed goto where the compiler has the extension,
// a dense function-pointer table otherwise. Handlers are shared between
// the two forms.
#if defined(__GNUC__) || defined(__clang__)
#define IPRA_COMPUTED_GOTO 1
#else
#define IPRA_COMPUTED_GOTO 0
#endif

namespace {

// Every decoded opcode. Order matters twice: the first block (Add..AddImm)
// mirrors MOpcode so the decoder can cast, and the dispatch tables are
// generated from this list positionally.
#define IPRA_DOP_LIST(X)                                                       \
  X(Add) X(Sub) X(Mul) X(Div) X(Rem) X(And) X(Or) X(Xor) X(Shl) X(Shr)        \
  X(CmpEq) X(CmpNe) X(CmpLt) X(CmpLe) X(CmpGt) X(CmpGe)                        \
  X(Neg) X(Not) X(Move) X(LoadImm) X(AddImm)                                   \
  X(LoadScalar) X(LoadData) X(StoreScalar) X(StoreData) X(Print)               \
  X(FusedAddImmLoadScalar) X(FusedAddImmLoadData)                              \
  X(FusedCmpBrEq) X(FusedCmpBrNe) X(FusedCmpBrLt) X(FusedCmpBrLe)              \
  X(FusedCmpBrGt) X(FusedCmpBrGe)                                              \
  X(FusedCmpBrEqP) X(FusedCmpBrNeP) X(FusedCmpBrLtP) X(FusedCmpBrLeP)          \
  X(FusedCmpBrGtP) X(FusedCmpBrGeP)                                            \
  X(Br) X(BrP) X(CondBr) X(CondBrP) X(Ret) X(RetC)                             \
  X(Call) X(CallP) X(CallC) X(CallPC)                                          \
  X(CallInd) X(CallIndP) X(CallIndC) X(CallIndPC)                              \
  X(CallExt) X(CallBad)

enum class DOp : uint8_t {
#define IPRA_D(N) N,
  IPRA_DOP_LIST(IPRA_D)
#undef IPRA_D
};

// The Add..AddImm prefix must mirror MOpcode exactly (the decoder casts).
static_assert(unsigned(DOp::Add) == unsigned(MOpcode::Add));
static_assert(unsigned(DOp::CmpEq) == unsigned(MOpcode::CmpEq));
static_assert(unsigned(DOp::CmpGe) == unsigned(MOpcode::CmpGe));
static_assert(unsigned(DOp::Move) == unsigned(MOpcode::Move));
static_assert(unsigned(DOp::AddImm) == unsigned(MOpcode::AddImm));

struct DecodedProc;

/// One fixed-width decoded op (64 bytes). Targets are stream indices into
/// the owning procedure's Code vector; TargetBlock/TargetCost carry the
/// target's source-block id (diagnostics, profile rows) and original
/// instruction count (the hoisted budget test).
struct DInst {
  DOp Op = DOp::Ret;
  uint8_t Rd = 0;
  uint8_t Rs = 0;
  uint8_t Rt = 0;
  uint8_t Rd2 = 0;
  int32_t Block = 0; ///< Source block index (error locations).
  int32_t Target1 = 0;
  int32_t Target2 = 0;
  int32_t TargetBlock1 = 0;
  int32_t TargetBlock2 = 0;
  uint32_t TargetCost1 = 0;
  uint32_t TargetCost2 = 0;
  /// Original instructions from the block head through this op inclusive:
  /// the lazy cycle charge a transfer (or error) applies for its segment.
  uint32_t CostFromHead = 0;
  int64_t Imm = 0;
  int64_t Imm2 = 0; ///< Second immediate of a fused add-immediate+load.
  const DecodedProc *Callee = nullptr;
};

/// One procedure's flat decoded stream.
struct DecodedProc {
  std::string Name;
  int Id = 0;
  bool HasBody = false;
  /// Original instruction count of the entry block (call-entry budget
  /// test).
  uint32_t EntryCost = 1;
  std::vector<DInst> Code;
  /// This procedure's row in RunStats::Profile (profiled runs only).
  uint64_t *Counts = nullptr;
};

struct DecodedEngine {
  DecodedEngine(const MProgram &Prog, const SimOptions &Opts)
      : Prog(Prog), Opts(Opts), MaxSteps(Opts.MaxSteps) {}

  RunStats run();

  const MProgram &Prog;
  const SimOptions &Opts;
  std::vector<DecodedProc> Procs;
  std::vector<int64_t> Regs;
  /// The data memory image comes from calloc, not a vector: the OS hands
  /// back zero pages lazily, so a run pays for the pages it touches
  /// instead of writing all MemWords up front (the image is 32 MB at the
  /// default size, a fixed per-run memset the reference engine pays).
  struct FreeDeleter {
    void operator()(void *P) const { std::free(P); }
  };
  std::unique_ptr<int64_t[], FreeDeleter> Mem;
  int64_t *R = nullptr;
  int64_t *M = nullptr;
  const uint64_t MaxSteps;
  /// Original instructions executed so far; exact at transfers, errors
  /// and run end (Instructions == Cycles in the single-issue model;
  /// published into both RunStats fields at the end).
  uint64_t Steps = 0;
  /// How much of the current block segment was already charged before a
  /// call-return resumed it: the first transfer after the resume deducts
  /// this from its CostFromHead charge. Zero everywhere else.
  uint32_t Bias = 0;
  /// Largest original block cost in the program: the sound conservative
  /// bound for the return-resume budget test.
  uint64_t MaxBlockCost = 1;

  struct DFrame {
    const DInst *Resume;
    const DecodedProc *Proc;
    /// The calling op's CostFromHead: what the caller's block had charged
    /// when control left it.
    uint32_t SavedBias;
  };
  std::vector<DFrame> CallStack;
  std::vector<sim::CallRecord> CallRecords;
  const DecodedProc *CurProc = nullptr;
  const DInst *CurCode = nullptr;
  RunStats Stats;

  bool addrOK(int64_t Addr) const {
    return Addr >= 0 && uint64_t(Addr) < Opts.MemWords;
  }

  /// Settles the lazy cycle charge up to and including \p I (the segment
  /// from the block head, minus any part a previous call already paid).
  void charge(const DInst *I) {
    Steps += I->CostFromHead - Bias;
    Bias = 0;
  }

  /// Records a located runtime error; handlers return its nullptr result
  /// to stop dispatch. The caller has already settled the cycle charge
  /// (the erroring instruction counts, exactly as in the reference).
  const DInst *errorOut(const DInst *I, std::string Why) {
    Stats.OK = false;
    Stats.Error = std::move(Why) + " (in " + CurProc->Name + ", block " +
                  std::to_string(I->Block) + ")";
    return nullptr;
  }

  void failBudget() {
    Stats.OK = false;
    Stats.Error = "execution budget exceeded (infinite loop?)";
  }

  void decode();
  void decodeProc(const MProc &MP, DecodedProc &DP);
  const DInst *runCareful(const DInst *I, int EntryBlock);

  RunStats finish() {
    Stats.Instructions = Steps;
    Stats.Cycles = Steps;
    return std::move(Stats);
  }
};

//===----------------------------------------------------------------------===//
// Decoder
//===----------------------------------------------------------------------===//

bool isCmpOp(MOpcode Op) {
  return Op >= MOpcode::CmpEq && Op <= MOpcode::CmpGe;
}

DOp fusedCmpBrOp(MOpcode Cmp, bool Profile) {
  unsigned Base = unsigned(Profile ? DOp::FusedCmpBrEqP : DOp::FusedCmpBrEq);
  return DOp(Base + (unsigned(Cmp) - unsigned(MOpcode::CmpEq)));
}

/// How many branch targets an opcode carries (for the target fixup pass).
unsigned numBranchTargets(DOp Op) {
  switch (Op) {
  case DOp::Br:
  case DOp::BrP:
    return 1;
  case DOp::CondBr:
  case DOp::CondBrP:
  case DOp::FusedCmpBrEq:
  case DOp::FusedCmpBrNe:
  case DOp::FusedCmpBrLt:
  case DOp::FusedCmpBrLe:
  case DOp::FusedCmpBrGt:
  case DOp::FusedCmpBrGe:
  case DOp::FusedCmpBrEqP:
  case DOp::FusedCmpBrNeP:
  case DOp::FusedCmpBrLtP:
  case DOp::FusedCmpBrLeP:
  case DOp::FusedCmpBrGtP:
  case DOp::FusedCmpBrGeP:
    return 2;
  default:
    return 0;
  }
}

void DecodedEngine::decodeProc(const MProc &MP, DecodedProc &DP) {
  const bool Prof = Opts.CollectBlockProfile;
  const bool Check = Opts.CheckConventions;
  std::vector<int32_t> BlockStart(MP.Blocks.size(), 0);

  for (unsigned Bi = 0; Bi < MP.Blocks.size(); ++Bi) {
    BlockStart[Bi] = int32_t(DP.Code.size());
    const MBlock &B = MP.Blocks[Bi];
    Stats.DecodedSourceInsts += B.Insts.size();
    for (unsigned Idx = 0; Idx < B.Insts.size(); ++Idx) {
      const MInst &MI = B.Insts[Idx];
      DInst D;
      D.Block = int32_t(Bi);

      // Superop fusion. Fusing across a control-transfer landing site is
      // impossible by construction: branches land at block heads (never
      // mid-block) and call returns land right after a Call op, which is
      // never a fusion component.
      const MInst *NI = Idx + 1 < B.Insts.size() ? &B.Insts[Idx + 1] : nullptr;
      if (NI && isCmpOp(MI.Op) && NI->Op == MOpcode::CondBr &&
          NI->Rs == MI.Rd) {
        D.Op = fusedCmpBrOp(MI.Op, Prof);
        D.Rd = MI.Rd;
        D.Rs = MI.Rs;
        D.Rt = MI.Rt;
        D.Target1 = NI->Target1;
        D.Target2 = NI->Target2;
        ++Stats.FusedCmpBranches;
        ++Idx; // consume the branch: the superop charges both
        D.CostFromHead = Idx + 1;
        DP.Code.push_back(D);
        continue;
      }
      if (NI && MI.Op == MOpcode::AddImm && NI->Op == MOpcode::Load &&
          NI->Rs == MI.Rd) {
        D.Op = NI->Mem == MemKind::Scalar ? DOp::FusedAddImmLoadScalar
                                          : DOp::FusedAddImmLoadData;
        D.Rd = MI.Rd;
        D.Rs = MI.Rs;
        D.Imm = MI.Imm;
        D.Rd2 = NI->Rd;
        D.Imm2 = NI->Imm;
        ++Stats.FusedAddImmLoads;
        ++Idx; // consume the load
        D.CostFromHead = Idx + 1;
        DP.Code.push_back(D);
        continue;
      }

      D.CostFromHead = Idx + 1;
      D.Rd = MI.Rd;
      D.Rs = MI.Rs;
      D.Rt = MI.Rt;
      D.Imm = MI.Imm;
      switch (MI.Op) {
      case MOpcode::Load:
        D.Op = MI.Mem == MemKind::Scalar ? DOp::LoadScalar : DOp::LoadData;
        break;
      case MOpcode::Store:
        D.Op = MI.Mem == MemKind::Scalar ? DOp::StoreScalar : DOp::StoreData;
        break;
      case MOpcode::Print:
        D.Op = DOp::Print;
        break;
      case MOpcode::Br:
        D.Op = Prof ? DOp::BrP : DOp::Br;
        D.Target1 = MI.Target1;
        break;
      case MOpcode::CondBr:
        D.Op = Prof ? DOp::CondBrP : DOp::CondBr;
        D.Target1 = MI.Target1;
        D.Target2 = MI.Target2;
        break;
      case MOpcode::Ret:
        D.Op = Check ? DOp::RetC : DOp::Ret;
        break;
      case MOpcode::Call:
        // Doomed calls become their own ops: the error stays a runtime
        // event (a never-executed bad call must not fail the run), but
        // the valid-target checks leave the hot Call handler entirely.
        if (MI.Callee < 0 || MI.Callee >= int(Prog.Procs.size())) {
          D.Op = DOp::CallBad;
          D.Imm = MI.Callee;
        } else {
          D.Callee = &Procs[MI.Callee];
          if (!D.Callee->HasBody)
            D.Op = DOp::CallExt;
          else
            D.Op = Prof ? (Check ? DOp::CallPC : DOp::CallP)
                        : (Check ? DOp::CallC : DOp::Call);
        }
        break;
      case MOpcode::CallInd:
        D.Op = Prof ? (Check ? DOp::CallIndPC : DOp::CallIndP)
                    : (Check ? DOp::CallIndC : DOp::CallInd);
        break;
      default:
        // Add..AddImm mirror MOpcode positionally (static_asserts above).
        assert(unsigned(MI.Op) <= unsigned(MOpcode::AddImm));
        D.Op = DOp(unsigned(MI.Op));
        break;
      }
      DP.Code.push_back(D);
    }
  }

  // Resolve branch targets: block id -> stream index, plus the hoisted
  // budget operand (the target block's original instruction count).
  for (DInst &D : DP.Code) {
    unsigned Targets = numBranchTargets(D.Op);
    if (Targets >= 1) {
      int Blk = D.Target1;
      assert(Blk >= 0 && Blk < int(MP.Blocks.size()) && "bad branch target");
      D.TargetBlock1 = Blk;
      D.Target1 = BlockStart[Blk];
      D.TargetCost1 = uint32_t(MP.Blocks[Blk].Insts.size());
    }
    if (Targets >= 2) {
      int Blk = D.Target2;
      assert(Blk >= 0 && Blk < int(MP.Blocks.size()) && "bad branch target");
      D.TargetBlock2 = Blk;
      D.Target2 = BlockStart[Blk];
      D.TargetCost2 = uint32_t(MP.Blocks[Blk].Insts.size());
    }
  }

  DP.EntryCost = uint32_t(MP.Blocks[0].Insts.size());
  Stats.DecodedOps += DP.Code.size();
}

void DecodedEngine::decode() {
  unsigned N = unsigned(Prog.Procs.size());
  // Resized once up front: decoded-proc pointers (call targets, frames)
  // stay stable from here on.
  Procs.resize(N);
  for (unsigned Pi = 0; Pi < N; ++Pi) {
    const MProc &MP = Prog.Procs[Pi];
    DecodedProc &DP = Procs[Pi];
    DP.Name = MP.Name;
    DP.Id = int(Pi);
    DP.HasBody = !MP.IsExternal && !MP.Blocks.empty();
  }
  for (unsigned Pi = 0; Pi < N; ++Pi) {
    if (!Procs[Pi].HasBody)
      continue;
    ++Stats.DecodedProcs;
    decodeProc(Prog.Procs[Pi], Procs[Pi]);
    for (const MBlock &B : Prog.Procs[Pi].Blocks)
      if (B.Insts.size() > MaxBlockCost)
        MaxBlockCost = B.Insts.size();
  }
}

//===----------------------------------------------------------------------===//
// Handlers (shared by the computed-goto and function-table dispatchers)
//===----------------------------------------------------------------------===//

/// Commits a branch whose cycle charge is already settled: profile the
/// target (profiled variants only), stay on the fast path when the
/// remaining budget provably covers the whole target block, otherwise
/// hand the transfer to the careful tail loop.
template <bool Profile>
inline const DInst *takeBranch(DecodedEngine &E, const DInst *I, bool Cond) {
  int32_t T = Cond ? I->Target1 : I->Target2;
  int32_t B = Cond ? I->TargetBlock1 : I->TargetBlock2;
  uint32_t Cost = Cond ? I->TargetCost1 : I->TargetCost2;
  const DInst *Next = E.CurCode + T;
  if (E.MaxSteps - E.Steps >= Cost) {
    if (Profile)
      ++E.CurProc->Counts[B];
    return Next;
  }
  return E.runCareful(Next, B);
}

template <bool Profile, bool Check>
inline const DInst *enterProc(DecodedEngine &E, const DInst *I,
                              const DecodedProc *P) {
  if (E.CallStack.size() >= E.Opts.MaxCallDepth)
    return E.errorOut(I, "call depth exceeded");
  if (Check)
    E.CallRecords.push_back(sim::snapshotCall(E.Prog, P->Id, E.R));
  E.CallStack.push_back({I + 1, E.CurProc, I->CostFromHead});
  E.CurProc = P;
  E.CurCode = P->Code.data();
  const DInst *Next = E.CurCode;
  if (E.MaxSteps - E.Steps >= P->EntryCost) {
    if (Profile)
      ++P->Counts[0];
    return Next;
  }
  return E.runCareful(Next, 0);
}

#define IPRA_HANDLER(Name)                                                     \
  const DInst *h##Name(DecodedEngine &E, const DInst *I)

// Two's-complement wrap-around arithmetic via unsigned, as in the
// reference's step(). Sequential ops never touch the step counter: their
// segment's charge settles at the next transfer or error.
#define IPRA_BINOP(Name, Expr)                                                 \
  IPRA_HANDLER(Name) {                                                         \
    int64_t RS = E.R[I->Rs], RT = E.R[I->Rt];                                  \
    (void)RS;                                                                  \
    (void)RT;                                                                  \
    E.R[I->Rd] = (Expr);                                                       \
    return I + 1;                                                              \
  }

IPRA_BINOP(Add, int64_t(uint64_t(RS) + uint64_t(RT)))
IPRA_BINOP(Sub, int64_t(uint64_t(RS) - uint64_t(RT)))
IPRA_BINOP(Mul, int64_t(uint64_t(RS) * uint64_t(RT)))
IPRA_BINOP(And, RS &RT)
IPRA_BINOP(Or, RS | RT)
IPRA_BINOP(Xor, RS ^ RT)
IPRA_BINOP(Shl, (RT < 0 || RT > 62) ? 0 : int64_t(uint64_t(RS) << RT))
IPRA_BINOP(Shr, (RT < 0 || RT > 62) ? 0 : RS >> RT)
IPRA_BINOP(CmpEq, RS == RT)
IPRA_BINOP(CmpNe, RS != RT)
IPRA_BINOP(CmpLt, RS < RT)
IPRA_BINOP(CmpLe, RS <= RT)
IPRA_BINOP(CmpGt, RS > RT)
IPRA_BINOP(CmpGe, RS >= RT)
IPRA_BINOP(Neg, int64_t(0 - uint64_t(RS)))
IPRA_BINOP(Not, ~RS)
IPRA_BINOP(Move, RS)
IPRA_BINOP(LoadImm, (void(RS), I->Imm))
IPRA_BINOP(AddImm, int64_t(uint64_t(RS) + uint64_t(I->Imm)))

IPRA_HANDLER(Div) {
  int64_t RS = E.R[I->Rs], RT = E.R[I->Rt];
  if (RT == 0) {
    E.charge(I);
    return E.errorOut(I, "division by zero");
  }
  E.R[I->Rd] = (RS == INT64_MIN && RT == -1) ? RS : RS / RT;
  return I + 1;
}

IPRA_HANDLER(Rem) {
  int64_t RS = E.R[I->Rs], RT = E.R[I->Rt];
  if (RT == 0) {
    E.charge(I);
    return E.errorOut(I, "remainder by zero");
  }
  E.R[I->Rd] = (RS == INT64_MIN && RT == -1) ? 0 : RS % RT;
  return I + 1;
}

#define IPRA_LOAD(Name, Counter)                                               \
  IPRA_HANDLER(Name) {                                                         \
    int64_t Addr = E.R[I->Rs] + I->Imm;                                        \
    if (!E.addrOK(Addr)) {                                                     \
      E.charge(I);                                                             \
      return E.errorOut(I, "load out of bounds at word " +                     \
                               std::to_string(Addr));                          \
    }                                                                          \
    E.R[I->Rd] = E.M[Addr];                                                    \
    ++E.Stats.Counter;                                                         \
    return I + 1;                                                              \
  }

IPRA_LOAD(LoadScalar, ScalarLoads)
IPRA_LOAD(LoadData, DataLoads)

#define IPRA_STORE(Name, Counter)                                              \
  IPRA_HANDLER(Name) {                                                         \
    int64_t Addr = E.R[I->Rs] + I->Imm;                                        \
    if (!E.addrOK(Addr)) {                                                     \
      E.charge(I);                                                             \
      return E.errorOut(I, "store out of bounds at word " +                    \
                               std::to_string(Addr));                          \
    }                                                                          \
    E.M[Addr] = E.R[I->Rt];                                                    \
    ++E.Stats.Counter;                                                         \
    return I + 1;                                                              \
  }

IPRA_STORE(StoreScalar, ScalarStores)
IPRA_STORE(StoreData, DataStores)

IPRA_HANDLER(Print) {
  E.Stats.Output.push_back(E.R[I->Rs]);
  return I + 1;
}

// The fused add-immediate+load charges both original instructions: its
// CostFromHead covers both, including on the error path (the reference
// counts the failing load too).
#define IPRA_FUSED_AIL(Name, Counter)                                          \
  IPRA_HANDLER(Name) {                                                         \
    ++E.Stats.SuperopsRetired;                                                 \
    int64_t A = int64_t(uint64_t(E.R[I->Rs]) + uint64_t(I->Imm));              \
    E.R[I->Rd] = A;                                                            \
    int64_t Addr = A + I->Imm2;                                                \
    if (!E.addrOK(Addr)) {                                                     \
      E.charge(I);                                                             \
      return E.errorOut(I, "load out of bounds at word " +                     \
                               std::to_string(Addr));                          \
    }                                                                          \
    E.R[I->Rd2] = E.M[Addr];                                                   \
    ++E.Stats.Counter;                                                         \
    return I + 1;                                                              \
  }

IPRA_FUSED_AIL(FusedAddImmLoadScalar, ScalarLoads)
IPRA_FUSED_AIL(FusedAddImmLoadData, DataLoads)

#define IPRA_FUSED_CMPBR(Name, Expr, Profile)                                  \
  IPRA_HANDLER(Name) {                                                         \
    int64_t RS = E.R[I->Rs], RT = E.R[I->Rt];                                  \
    E.charge(I);                                                               \
    ++E.Stats.SuperopsRetired;                                                 \
    int64_t C = (Expr);                                                        \
    E.R[I->Rd] = C;                                                            \
    return takeBranch<Profile>(E, I, C != 0);                                  \
  }

IPRA_FUSED_CMPBR(FusedCmpBrEq, RS == RT, false)
IPRA_FUSED_CMPBR(FusedCmpBrNe, RS != RT, false)
IPRA_FUSED_CMPBR(FusedCmpBrLt, RS < RT, false)
IPRA_FUSED_CMPBR(FusedCmpBrLe, RS <= RT, false)
IPRA_FUSED_CMPBR(FusedCmpBrGt, RS > RT, false)
IPRA_FUSED_CMPBR(FusedCmpBrGe, RS >= RT, false)
IPRA_FUSED_CMPBR(FusedCmpBrEqP, RS == RT, true)
IPRA_FUSED_CMPBR(FusedCmpBrNeP, RS != RT, true)
IPRA_FUSED_CMPBR(FusedCmpBrLtP, RS < RT, true)
IPRA_FUSED_CMPBR(FusedCmpBrLeP, RS <= RT, true)
IPRA_FUSED_CMPBR(FusedCmpBrGtP, RS > RT, true)
IPRA_FUSED_CMPBR(FusedCmpBrGeP, RS >= RT, true)

IPRA_HANDLER(Br) {
  E.charge(I);
  return takeBranch<false>(E, I, true);
}
IPRA_HANDLER(BrP) {
  E.charge(I);
  return takeBranch<true>(E, I, true);
}
IPRA_HANDLER(CondBr) {
  E.charge(I);
  return takeBranch<false>(E, I, E.R[I->Rs] != 0);
}
IPRA_HANDLER(CondBrP) {
  E.charge(I);
  return takeBranch<true>(E, I, E.R[I->Rs] != 0);
}

/// The shared return tail (cycle charge already settled): finish the run
/// at top level, else pop the frame and resume -- conservatively careful
/// when the remaining budget no longer covers a worst-case block tail
/// (the resumed fraction of the caller's block is at most MaxBlockCost).
inline const DInst *doReturn(DecodedEngine &E) {
  if (E.CallStack.empty()) {
    E.Stats.OK = true;
    E.Stats.ExitValue = E.R[RegV0];
    return nullptr;
  }
  DecodedEngine::DFrame F = E.CallStack.back();
  E.CallStack.pop_back();
  E.CurProc = F.Proc;
  E.CurCode = F.Proc->Code.data();
  E.Bias = F.SavedBias;
  if (E.MaxSteps - E.Steps >= E.MaxBlockCost)
    return F.Resume;
  return E.runCareful(F.Resume, -1);
}

IPRA_HANDLER(Ret) {
  E.charge(I);
  return doReturn(E);
}

IPRA_HANDLER(RetC) {
  E.charge(I);
  if (!E.CallRecords.empty()) {
    std::string Msg =
        sim::checkCallConvention(E.Prog, E.CallRecords.back(), E.R);
    if (!Msg.empty())
      return E.errorOut(I, std::move(Msg));
    E.CallRecords.pop_back();
  }
  return doReturn(E);
}

#define IPRA_CALL(Name, Profile, Check)                                        \
  IPRA_HANDLER(Name) {                                                         \
    E.charge(I);                                                               \
    ++E.Stats.Calls;                                                           \
    return enterProc<Profile, Check>(E, I, I->Callee);                         \
  }

IPRA_CALL(Call, false, false)
IPRA_CALL(CallP, true, false)
IPRA_CALL(CallC, false, true)
IPRA_CALL(CallPC, true, true)

#define IPRA_CALLIND(Op, Profile, Check)                                       \
  IPRA_HANDLER(Op) {                                                           \
    E.charge(I);                                                               \
    ++E.Stats.Calls;                                                           \
    int Callee = int(E.R[I->Rs]);                                              \
    if (Callee < 0 || Callee >= int(E.Procs.size()))                           \
      return E.errorOut(I, "call to invalid procedure id " +                   \
                               std::to_string(Callee));                        \
    const DecodedProc *P = &E.Procs[Callee];                                   \
    if (!P->HasBody)                                                           \
      return E.errorOut(I,                                                     \
                        "call to external procedure '" + P->Name + "'");       \
    return enterProc<Profile, Check>(E, I, P);                                 \
  }

IPRA_CALLIND(CallInd, false, false)
IPRA_CALLIND(CallIndP, true, false)
IPRA_CALLIND(CallIndC, false, true)
IPRA_CALLIND(CallIndPC, true, true)

IPRA_HANDLER(CallExt) {
  E.charge(I);
  ++E.Stats.Calls;
  return E.errorOut(I, "call to external procedure '" + I->Callee->Name +
                           "'");
}

IPRA_HANDLER(CallBad) {
  E.charge(I);
  ++E.Stats.Calls;
  return E.errorOut(I, "call to invalid procedure id " +
                           std::to_string(I->Imm));
}

//===----------------------------------------------------------------------===//
// Careful tail loop
//===----------------------------------------------------------------------===//

int64_t fusedCmpApply(DOp Op, int64_t A, int64_t B) {
  switch (Op) {
  case DOp::FusedCmpBrEq:
  case DOp::FusedCmpBrEqP:
    return A == B;
  case DOp::FusedCmpBrNe:
  case DOp::FusedCmpBrNeP:
    return A != B;
  case DOp::FusedCmpBrLt:
  case DOp::FusedCmpBrLtP:
    return A < B;
  case DOp::FusedCmpBrLe:
  case DOp::FusedCmpBrLeP:
    return A <= B;
  case DOp::FusedCmpBrGt:
  case DOp::FusedCmpBrGtP:
    return A > B;
  case DOp::FusedCmpBrGe:
  case DOp::FusedCmpBrGeP:
    return A >= B;
  default:
    assert(false && "not a fused compare");
    return 0;
  }
}

/// The exact-semantics cold loop: per-instruction (and per-superop-
/// component) eager step counting and budget checks, replaying the
/// reference interpreter's check sequence. Entered only at a transfer
/// whose hoisted budget test failed, so Steps is exact on entry; budget
/// exhaustion is monotone, so once here the run ends within at most one
/// block's worth of instructions. \p EntryBlock >= 0 applies block-entry
/// bookkeeping (budget check, then profile count) for the block \p I
/// starts; -1 is a mid-block resume after a return.
const DInst *DecodedEngine::runCareful(const DInst *I, int EntryBlock) {
  ++Stats.CarefulEntries;
  const bool Prof = Opts.CollectBlockProfile;
  Bias = 0; // careful counts eagerly; the lazy-charge scheme is off

  // Reference block entry: the budget check fires before the profile
  // count, so an exhausted entry leaves the target block uncounted.
  auto EnterBlock = [&](int Block) {
    if (Steps >= MaxSteps) {
      failBudget();
      return false;
    }
    if (Prof)
      ++CurProc->Counts[Block];
    return true;
  };
  if (EntryBlock >= 0 && !EnterBlock(EntryBlock))
    return nullptr;

  while (true) {
    if (Steps >= MaxSteps) {
      failBudget();
      return nullptr;
    }
    int64_t RS = R[I->Rs];
    int64_t RT = R[I->Rt];
    switch (I->Op) {
    case DOp::Add:
      ++Steps;
      R[I->Rd] = int64_t(uint64_t(RS) + uint64_t(RT));
      ++I;
      break;
    case DOp::Sub:
      ++Steps;
      R[I->Rd] = int64_t(uint64_t(RS) - uint64_t(RT));
      ++I;
      break;
    case DOp::Mul:
      ++Steps;
      R[I->Rd] = int64_t(uint64_t(RS) * uint64_t(RT));
      ++I;
      break;
    case DOp::Div:
      ++Steps;
      if (RT == 0)
        return errorOut(I, "division by zero");
      R[I->Rd] = (RS == INT64_MIN && RT == -1) ? RS : RS / RT;
      ++I;
      break;
    case DOp::Rem:
      ++Steps;
      if (RT == 0)
        return errorOut(I, "remainder by zero");
      R[I->Rd] = (RS == INT64_MIN && RT == -1) ? 0 : RS % RT;
      ++I;
      break;
    case DOp::And:
      ++Steps;
      R[I->Rd] = RS & RT;
      ++I;
      break;
    case DOp::Or:
      ++Steps;
      R[I->Rd] = RS | RT;
      ++I;
      break;
    case DOp::Xor:
      ++Steps;
      R[I->Rd] = RS ^ RT;
      ++I;
      break;
    case DOp::Shl:
      ++Steps;
      R[I->Rd] = (RT < 0 || RT > 62) ? 0 : int64_t(uint64_t(RS) << RT);
      ++I;
      break;
    case DOp::Shr:
      ++Steps;
      R[I->Rd] = (RT < 0 || RT > 62) ? 0 : RS >> RT;
      ++I;
      break;
    case DOp::CmpEq:
      ++Steps;
      R[I->Rd] = RS == RT;
      ++I;
      break;
    case DOp::CmpNe:
      ++Steps;
      R[I->Rd] = RS != RT;
      ++I;
      break;
    case DOp::CmpLt:
      ++Steps;
      R[I->Rd] = RS < RT;
      ++I;
      break;
    case DOp::CmpLe:
      ++Steps;
      R[I->Rd] = RS <= RT;
      ++I;
      break;
    case DOp::CmpGt:
      ++Steps;
      R[I->Rd] = RS > RT;
      ++I;
      break;
    case DOp::CmpGe:
      ++Steps;
      R[I->Rd] = RS >= RT;
      ++I;
      break;
    case DOp::Neg:
      ++Steps;
      R[I->Rd] = int64_t(0 - uint64_t(RS));
      ++I;
      break;
    case DOp::Not:
      ++Steps;
      R[I->Rd] = ~RS;
      ++I;
      break;
    case DOp::Move:
      ++Steps;
      R[I->Rd] = RS;
      ++I;
      break;
    case DOp::LoadImm:
      ++Steps;
      R[I->Rd] = I->Imm;
      ++I;
      break;
    case DOp::AddImm:
      ++Steps;
      R[I->Rd] = int64_t(uint64_t(RS) + uint64_t(I->Imm));
      ++I;
      break;

    case DOp::LoadScalar:
    case DOp::LoadData: {
      ++Steps;
      int64_t Addr = RS + I->Imm;
      if (!addrOK(Addr))
        return errorOut(I,
                        "load out of bounds at word " + std::to_string(Addr));
      R[I->Rd] = M[Addr];
      if (I->Op == DOp::LoadScalar)
        ++Stats.ScalarLoads;
      else
        ++Stats.DataLoads;
      ++I;
      break;
    }

    case DOp::StoreScalar:
    case DOp::StoreData: {
      ++Steps;
      int64_t Addr = RS + I->Imm;
      if (!addrOK(Addr))
        return errorOut(I,
                        "store out of bounds at word " + std::to_string(Addr));
      M[Addr] = RT;
      if (I->Op == DOp::StoreScalar)
        ++Stats.ScalarStores;
      else
        ++Stats.DataStores;
      ++I;
      break;
    }

    case DOp::Print:
      ++Steps;
      Stats.Output.push_back(RS);
      ++I;
      break;

    case DOp::FusedAddImmLoadScalar:
    case DOp::FusedAddImmLoadData: {
      // Component 1: the add-immediate.
      ++Steps;
      int64_t A = int64_t(uint64_t(RS) + uint64_t(I->Imm));
      R[I->Rd] = A;
      // Component 2: the load, with its own pre-check.
      if (Steps >= MaxSteps) {
        failBudget();
        return nullptr;
      }
      ++Steps;
      int64_t Addr = A + I->Imm2;
      if (!addrOK(Addr))
        return errorOut(I,
                        "load out of bounds at word " + std::to_string(Addr));
      R[I->Rd2] = M[Addr];
      if (I->Op == DOp::FusedAddImmLoadScalar)
        ++Stats.ScalarLoads;
      else
        ++Stats.DataLoads;
      ++Stats.SuperopsRetired;
      ++I;
      break;
    }

    case DOp::FusedCmpBrEq:
    case DOp::FusedCmpBrNe:
    case DOp::FusedCmpBrLt:
    case DOp::FusedCmpBrLe:
    case DOp::FusedCmpBrGt:
    case DOp::FusedCmpBrGe:
    case DOp::FusedCmpBrEqP:
    case DOp::FusedCmpBrNeP:
    case DOp::FusedCmpBrLtP:
    case DOp::FusedCmpBrLeP:
    case DOp::FusedCmpBrGtP:
    case DOp::FusedCmpBrGeP: {
      // Component 1: the compare.
      ++Steps;
      int64_t C = fusedCmpApply(I->Op, RS, RT);
      R[I->Rd] = C;
      // Component 2: the branch, with its own pre-check.
      if (Steps >= MaxSteps) {
        failBudget();
        return nullptr;
      }
      ++Steps;
      ++Stats.SuperopsRetired;
      int32_t T = C ? I->Target1 : I->Target2;
      int Blk = C ? I->TargetBlock1 : I->TargetBlock2;
      I = CurCode + T;
      if (!EnterBlock(Blk))
        return nullptr;
      break;
    }

    case DOp::Br:
    case DOp::BrP: {
      ++Steps;
      int Blk = I->TargetBlock1;
      I = CurCode + I->Target1;
      if (!EnterBlock(Blk))
        return nullptr;
      break;
    }

    case DOp::CondBr:
    case DOp::CondBrP: {
      ++Steps;
      bool Cond = RS != 0;
      int Blk = Cond ? I->TargetBlock1 : I->TargetBlock2;
      int32_t T = Cond ? I->Target1 : I->Target2;
      I = CurCode + T;
      if (!EnterBlock(Blk))
        return nullptr;
      break;
    }

    case DOp::Ret:
    case DOp::RetC: {
      ++Steps;
      if (Opts.CheckConventions && !CallRecords.empty()) {
        std::string Msg =
            sim::checkCallConvention(Prog, CallRecords.back(), R);
        if (!Msg.empty())
          return errorOut(I, std::move(Msg));
        CallRecords.pop_back();
      }
      if (CallStack.empty()) {
        Stats.OK = true;
        Stats.ExitValue = R[RegV0];
        return nullptr;
      }
      DFrame F = CallStack.back();
      CallStack.pop_back();
      CurProc = F.Proc;
      CurCode = F.Proc->Code.data();
      I = F.Resume; // mid-block resume: no entry bookkeeping, and the
                    // frame's charge bias is moot (counting is eager now)
      break;
    }

    case DOp::Call:
    case DOp::CallP:
    case DOp::CallC:
    case DOp::CallPC:
    case DOp::CallInd:
    case DOp::CallIndP:
    case DOp::CallIndC:
    case DOp::CallIndPC: {
      ++Steps;
      ++Stats.Calls;
      const DecodedProc *P;
      if (I->Op == DOp::Call || I->Op == DOp::CallP || I->Op == DOp::CallC ||
          I->Op == DOp::CallPC) {
        P = I->Callee;
      } else {
        int Callee = int(RS);
        if (Callee < 0 || Callee >= int(Procs.size()))
          return errorOut(I, "call to invalid procedure id " +
                                 std::to_string(Callee));
        P = &Procs[Callee];
        if (!P->HasBody)
          return errorOut(I,
                          "call to external procedure '" + P->Name + "'");
      }
      if (CallStack.size() >= Opts.MaxCallDepth)
        return errorOut(I, "call depth exceeded");
      if (Opts.CheckConventions)
        CallRecords.push_back(sim::snapshotCall(Prog, P->Id, R));
      CallStack.push_back({I + 1, CurProc, 0});
      CurProc = P;
      CurCode = P->Code.data();
      I = CurCode;
      if (!EnterBlock(0))
        return nullptr;
      break;
    }

    case DOp::CallExt:
      ++Steps;
      ++Stats.Calls;
      return errorOut(I, "call to external procedure '" + I->Callee->Name +
                             "'");

    case DOp::CallBad:
      ++Steps;
      ++Stats.Calls;
      return errorOut(I,
                      "call to invalid procedure id " + std::to_string(I->Imm));
    }
  }
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

RunStats DecodedEngine::run() {
  if (Prog.MainProcId < 0) {
    Stats.OK = false;
    Stats.Error = "program has no main procedure";
    return finish();
  }
  decode();
  DecodedProc &Main = Procs[Prog.MainProcId];
  if (!Main.HasBody) {
    Stats.OK = false;
    Stats.Error = "main procedure has no body";
    return finish();
  }

  Regs.assign(NumPhysRegs, 0);
  Mem.reset(
      static_cast<int64_t *>(std::calloc(Opts.MemWords, sizeof(int64_t))));
  if (!Mem)
    throw std::bad_alloc();
  for (unsigned W = 0; W < Prog.GlobalImage.size(); ++W)
    Mem[W] = Prog.GlobalImage[W];
  R = Regs.data();
  M = Mem.get();
  R[RegSP] = int64_t(Opts.MemWords);

  if (Opts.CollectBlockProfile) {
    Stats.Profile.BlockCounts.resize(Prog.Procs.size());
    for (unsigned P = 0; P < Prog.Procs.size(); ++P) {
      Stats.Profile.BlockCounts[P].assign(Prog.Procs[P].Blocks.size(), 0);
      Procs[P].Counts = Stats.Profile.BlockCounts[P].data();
    }
  }

  CurProc = &Main;
  CurCode = Main.Code.data();
  const DInst *I = CurCode;

  // Entry transfer into main's first block: same bookkeeping as any
  // other block transfer.
  if (MaxSteps >= Main.EntryCost) {
    if (Opts.CollectBlockProfile)
      ++Main.Counts[0];
  } else {
    runCareful(I, 0);
    return finish();
  }

#if IPRA_COMPUTED_GOTO
  static const void *const Table[] = {
#define IPRA_D(N) &&L_##N,
      IPRA_DOP_LIST(IPRA_D)
#undef IPRA_D
  };
#define IPRA_DISPATCH() goto *Table[size_t(I->Op)]
  IPRA_DISPATCH();
#define IPRA_D(N)                                                              \
  L_##N : I = h##N(*this, I);                                                  \
  if (!I)                                                                      \
    goto Done;                                                                 \
  IPRA_DISPATCH();
  IPRA_DOP_LIST(IPRA_D)
#undef IPRA_D
#undef IPRA_DISPATCH
Done:;
#else
  using Handler = const DInst *(*)(DecodedEngine &, const DInst *);
  static const Handler Table[] = {
#define IPRA_D(N) &h##N,
      IPRA_DOP_LIST(IPRA_D)
#undef IPRA_D
  };
  while (I)
    I = Table[size_t(I->Op)](*this, I);
#endif

  return finish();
}

} // namespace

RunStats ipra::runDecodedProgram(const MProgram &Prog,
                                 const SimOptions &Opts) {
  return DecodedEngine(Prog, Opts).run();
}
