//===- sim/Simulator.cpp ---------------------------------------------------===//

#include "sim/Simulator.h"

#include "sim/ConventionCheck.h"
#include "sim/DecodedEngine.h"
#include "x64/NativeEngine.h"

using namespace ipra;

namespace {

struct Frame {
  int ProcId;
  int Block;
  unsigned Inst;
};

class Machine {
public:
  Machine(const MProgram &Prog, const SimOptions &Opts)
      : Prog(Prog), Opts(Opts) {
    Regs.assign(NumPhysRegs, 0);
    Mem.assign(Opts.MemWords, 0);
    for (unsigned I = 0; I < Prog.GlobalImage.size(); ++I)
      Mem[I] = Prog.GlobalImage[I];
    Regs[RegSP] = int64_t(Opts.MemWords);
    if (Opts.CollectBlockProfile) {
      Stats.Profile.BlockCounts.resize(Prog.Procs.size());
      for (unsigned P = 0; P < Prog.Procs.size(); ++P)
        Stats.Profile.BlockCounts[P].assign(Prog.Procs[P].Blocks.size(), 0);
    }
  }

  RunStats run() {
    if (Prog.MainProcId < 0)
      return fail("program has no main procedure");
    Cur = {Prog.MainProcId, 0, 0};
    const MProc *Main = &Prog.Procs[Prog.MainProcId];
    if (Main->IsExternal || Main->Blocks.empty())
      return fail("main procedure has no body");

    // The dispatch loop runs one *block visit* per outer iteration, so
    // the per-instruction overheads -- the execution-budget comparison
    // and the block-profile test -- are paid once per visit instead of
    // once per instruction. A visit executes at most the rest of the
    // current block (terminators are last; only a call leaves early), so
    // when the remaining budget covers that bound the inner loop needs no
    // budget checks at all; otherwise it checks before each instruction,
    // which reproduces the original failure point exactly. Block-profile
    // counts are untouched: every entry at instruction 0 starts a fresh
    // visit (branches and calls land at 0; returns resume mid-block past
    // the call and must not recount).
    while (true) {
      if (Stats.Instructions >= Opts.MaxSteps)
        return fail("execution budget exceeded (infinite loop?)");
      const MProc &P = Prog.Procs[Cur.ProcId];
      const MBlock &B = P.Blocks[Cur.Block];
      assert(Cur.Inst < B.Insts.size() && "fell off a block");
      if (Opts.CollectBlockProfile && Cur.Inst == 0)
        ++Stats.Profile.BlockCounts[Cur.ProcId][Cur.Block];

      const int Proc0 = Cur.ProcId;
      const int Block0 = Cur.Block;
      const size_t Depth0 = CallStack.size();
      // Instructions >= MaxSteps was just rejected, so the subtraction
      // cannot wrap.
      const bool Budgeted =
          Opts.MaxSteps - Stats.Instructions >= B.Insts.size() - Cur.Inst;

      while (true) {
        if (!Budgeted && Stats.Instructions >= Opts.MaxSteps)
          return fail("execution budget exceeded (infinite loop?)");
        assert(Cur.Inst < B.Insts.size() && "fell off a block");
        const MInst &I = B.Insts[Cur.Inst];
        ++Stats.Instructions;
        ++Stats.Cycles;
        if (!step(I))
          return std::move(Stats);
        // Control transfer? Branches and calls land at instruction 0;
        // returns change the frame depth or the procedure/block.
        if (Cur.Inst == 0 || CallStack.size() != Depth0 ||
            Cur.ProcId != Proc0 || Cur.Block != Block0)
          break;
      }
    }
  }

private:
  RunStats fail(std::string Why) {
    Stats.OK = false;
    Stats.Error = std::move(Why);
    return std::move(Stats);
  }

  bool addrOK(int64_t Addr) const {
    return Addr >= 0 && uint64_t(Addr) < Opts.MemWords;
  }

  /// Executes one instruction; returns false when the run finished (OK or
  /// error state already recorded in Stats).
  bool step(const MInst &I) {
    int64_t &RD = Regs[I.Rd];
    int64_t RS = Regs[I.Rs];
    int64_t RT = Regs[I.Rt];
    // Wrap-around two's-complement arithmetic (via unsigned) so that
    // overflowing guest programs stay well-defined in the host.
    auto Wrap = [](uint64_t V) { return int64_t(V); };
    switch (I.Op) {
    case MOpcode::Add:
      RD = Wrap(uint64_t(RS) + uint64_t(RT));
      break;
    case MOpcode::Sub:
      RD = Wrap(uint64_t(RS) - uint64_t(RT));
      break;
    case MOpcode::Mul:
      RD = Wrap(uint64_t(RS) * uint64_t(RT));
      break;
    case MOpcode::Div:
      if (RT == 0)
        return errorOut("division by zero");
      if (RS == INT64_MIN && RT == -1)
        RD = RS; // the one overflowing quotient
      else
        RD = RS / RT;
      break;
    case MOpcode::Rem:
      if (RT == 0)
        return errorOut("remainder by zero");
      if (RS == INT64_MIN && RT == -1)
        RD = 0;
      else
        RD = RS % RT;
      break;
    case MOpcode::And:
      RD = RS & RT;
      break;
    case MOpcode::Or:
      RD = RS | RT;
      break;
    case MOpcode::Xor:
      RD = RS ^ RT;
      break;
    case MOpcode::Shl:
      RD = (RT < 0 || RT > 62) ? 0 : Wrap(uint64_t(RS) << RT);
      break;
    case MOpcode::Shr:
      RD = (RT < 0 || RT > 62) ? 0 : RS >> RT;
      break;
    case MOpcode::CmpEq:
      RD = RS == RT;
      break;
    case MOpcode::CmpNe:
      RD = RS != RT;
      break;
    case MOpcode::CmpLt:
      RD = RS < RT;
      break;
    case MOpcode::CmpLe:
      RD = RS <= RT;
      break;
    case MOpcode::CmpGt:
      RD = RS > RT;
      break;
    case MOpcode::CmpGe:
      RD = RS >= RT;
      break;
    case MOpcode::Neg:
      RD = Wrap(0 - uint64_t(RS));
      break;
    case MOpcode::Not:
      RD = ~RS;
      break;
    case MOpcode::Move:
      RD = RS;
      break;
    case MOpcode::LoadImm:
      RD = I.Imm;
      break;
    case MOpcode::AddImm:
      RD = RS + I.Imm;
      break;
    case MOpcode::Load: {
      int64_t Addr = RS + I.Imm;
      if (!addrOK(Addr))
        return errorOut("load out of bounds at word " + std::to_string(Addr));
      RD = Mem[Addr];
      if (I.Mem == MemKind::Scalar)
        ++Stats.ScalarLoads;
      else
        ++Stats.DataLoads;
      break;
    }
    case MOpcode::Store: {
      int64_t Addr = RS + I.Imm;
      if (!addrOK(Addr))
        return errorOut("store out of bounds at word " +
                        std::to_string(Addr));
      Mem[Addr] = RT;
      if (I.Mem == MemKind::Scalar)
        ++Stats.ScalarStores;
      else
        ++Stats.DataStores;
      break;
    }
    case MOpcode::Call:
      return enter(I.Callee);
    case MOpcode::CallInd:
      return enter(int(RS));
    case MOpcode::Ret: {
      if (Opts.CheckConventions && !CallRecords.empty()) {
        if (!checkConvention())
          return false;
        CallRecords.pop_back();
      }
      if (CallStack.empty()) {
        Stats.OK = true;
        Stats.ExitValue = Regs[RegV0];
        return false;
      }
      Cur = CallStack.back();
      CallStack.pop_back();
      return true; // Cur already advanced past the call
    }
    case MOpcode::Br:
      Cur.Block = I.Target1;
      Cur.Inst = 0;
      return true;
    case MOpcode::CondBr:
      Cur.Block = RS != 0 ? I.Target1 : I.Target2;
      Cur.Inst = 0;
      return true;
    case MOpcode::Print:
      Stats.Output.push_back(RS);
      break;
    }
    ++Cur.Inst;
    return true;
  }

  bool errorOut(std::string Why) {
    Stats.OK = false;
    Stats.Error = std::move(Why) + " (in " + Prog.Procs[Cur.ProcId].Name +
                  ", block " + std::to_string(Cur.Block) + ")";
    return false;
  }

  bool enter(int Callee) {
    ++Stats.Calls;
    if (Callee < 0 || Callee >= int(Prog.Procs.size()))
      return errorOut("call to invalid procedure id " +
                      std::to_string(Callee));
    const MProc &P = Prog.Procs[Callee];
    if (P.IsExternal || P.Blocks.empty())
      return errorOut("call to external procedure '" + P.Name + "'");
    if (CallStack.size() >= Opts.MaxCallDepth)
      return errorOut("call depth exceeded");
    if (Opts.CheckConventions)
      CallRecords.push_back(sim::snapshotCall(Prog, Callee, Regs.data()));
    Frame Return = Cur;
    ++Return.Inst;
    CallStack.push_back(Return);
    Cur = {Callee, 0, 0};
    return true;
  }

  /// Verifies the returning procedure preserved everything outside its
  /// published clobber mask, plus the stack pointer (the shared
  /// sim/ConventionCheck.h helpers, same as the decoded engine).
  bool checkConvention() {
    std::string Msg =
        sim::checkCallConvention(Prog, CallRecords.back(), Regs.data());
    if (Msg.empty())
      return true;
    errorOut(std::move(Msg));
    return false;
  }

  const MProgram &Prog;
  const SimOptions &Opts;
  std::vector<int64_t> Regs;
  std::vector<int64_t> Mem;
  std::vector<Frame> CallStack;
  std::vector<sim::CallRecord> CallRecords;
  Frame Cur{0, 0, 0};
  RunStats Stats;
};

} // namespace

RunStats ipra::runProgram(const MProgram &Prog, const SimOptions &Opts) {
  if (Opts.Engine == SimEngine::Decoded)
    return runDecodedProgram(Prog, Opts);
  if (Opts.Engine == SimEngine::Native)
    return runNativeProgram(Prog, Opts);
  return Machine(Prog, Opts).run();
}

StatCounters RunStats::counters() const {
  StatCounters S;
  S.set("sim.cycles", Cycles);
  S.set("sim.instructions", Instructions);
  S.set("sim.scalar_loads", ScalarLoads);
  S.set("sim.scalar_stores", ScalarStores);
  S.set("sim.data_loads", DataLoads);
  S.set("sim.data_stores", DataStores);
  S.set("sim.calls", Calls);
  S.set("sim.output_values", Output.size());
  // Engine-internal observability: only when non-zero, so Reference-engine
  // reports (and their goldens) render exactly as before the decoded
  // engine existed.
  if (DecodedProcs)
    S.set("sim.decode.procs", DecodedProcs);
  if (DecodedOps)
    S.set("sim.decode.ops", DecodedOps);
  if (DecodedSourceInsts)
    S.set("sim.decode.source_insts", DecodedSourceInsts);
  if (FusedCmpBranches)
    S.set("sim.decode.fused_cmp_branches", FusedCmpBranches);
  if (FusedAddImmLoads)
    S.set("sim.decode.fused_addimm_loads", FusedAddImmLoads);
  if (SuperopsRetired)
    S.set("sim.dispatch.superops_retired", SuperopsRetired);
  if (CarefulEntries)
    S.set("sim.dispatch.careful_entries", CarefulEntries);
  if (NativeProcs)
    S.set("sim.native.procs_compiled", NativeProcs);
  if (NativeCodeBytes)
    S.set("sim.native.code_bytes", NativeCodeBytes);
  if (NativeBailouts)
    S.set("sim.native.bailouts", NativeBailouts);
  // Register-map policy counters: pins always accompanies the sync
  // traffic so "0 syncs avoided" is distinguishable from "counter
  // absent" in any report with at least one pinned register.
  if (NativeMapPins) {
    S.set("sim.native.map.pins", NativeMapPins);
    S.set("sim.native.map.sync_stores", NativeMapSyncStores);
    S.set("sim.native.map.reload_loads", NativeMapReloadLoads);
    S.set("sim.native.map.syncs_avoided", NativeMapSyncsAvoided);
  }
  // The pair appears together whenever the native verifier ran, so the
  // procedures_checked == procs_compiled reconciliation (and the
  // violations == 0 guarantee on OK runs) is visible in every report.
  if (NativeVerifiedProcs) {
    S.set("verify.native.procedures_checked", NativeVerifiedProcs);
    S.set("verify.native.violations", NativeVerifyViolations);
  }
  return S;
}
