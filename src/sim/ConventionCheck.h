//===- sim/ConventionCheck.h - Shared dynamic convention checker -*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The call-convention snapshot/check pair shared by the Reference and
/// Decoded engines (SimOptions::CheckConventions). The checker can only
/// ever inspect registers *outside* the callee's published clobber mask
/// (plus the stack pointer), so the snapshot records exactly those --
/// index/value pairs in a fixed inline array -- instead of copying the
/// whole register file on every call. No heap traffic per call, and the
/// check walks only the registers that can actually fail.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_SIM_CONVENTIONCHECK_H
#define IPRA_SIM_CONVENTIONCHECK_H

#include "codegen/MIR.h"
#include "target/Machine.h"

#include <cstdint>
#include <string>

namespace ipra {
namespace sim {

/// Snapshot taken at a call for the convention checker: the callee, the
/// entry stack pointer, and the values of every register the callee's
/// clobber mask promises to preserve, in register-index order (so the
/// first reported violation matches the full-snapshot checker's).
struct CallRecord {
  int CalleeId = -1;
  int64_t SPBefore = 0;
  unsigned NumPreserved = 0;
  uint8_t PreservedReg[NumPhysRegs];
  int64_t PreservedValue[NumPhysRegs];
};

/// Builds the partial snapshot for a call to \p CalleeId. A program
/// without clobber masks (hand-built MIR) records only the stack
/// pointer, matching the checker's "nothing to check" rule.
inline CallRecord snapshotCall(const MProgram &Prog, int CalleeId,
                               const int64_t *Regs) {
  CallRecord Rec;
  Rec.CalleeId = CalleeId;
  Rec.SPBefore = Regs[RegSP];
  if (CalleeId >= int(Prog.ClobberMasks.size()))
    return Rec;
  const BitVector &Clobber = Prog.ClobberMasks[CalleeId];
  for (unsigned Reg = 0; Reg < NumPhysRegs; ++Reg) {
    if (Reg == RegSP || Reg == RegRA || Clobber.test(Reg))
      continue;
    Rec.PreservedReg[Rec.NumPreserved] = uint8_t(Reg);
    Rec.PreservedValue[Rec.NumPreserved] = Regs[Reg];
    ++Rec.NumPreserved;
  }
  return Rec;
}

/// Verifies the returning procedure preserved everything outside its
/// published clobber mask, plus the stack pointer. \returns the empty
/// string when the convention held, else the violation message (the
/// engine wraps it with its own location suffix).
inline std::string checkCallConvention(const MProgram &Prog,
                                       const CallRecord &Rec,
                                       const int64_t *Regs) {
  const MProc &Callee = Prog.Procs[Rec.CalleeId];
  if (Regs[RegSP] != Rec.SPBefore)
    return "convention violation: '" + Callee.Name +
           "' returned with a misadjusted stack pointer";
  for (unsigned I = 0; I < Rec.NumPreserved; ++I) {
    unsigned Reg = Rec.PreservedReg[I];
    if (Regs[Reg] != Rec.PreservedValue[I])
      return "convention violation: '" + Callee.Name + "' clobbered " +
             regName(Reg) + " which its usage summary promises to preserve";
  }
  return std::string();
}

} // namespace sim
} // namespace ipra

#endif // IPRA_SIM_CONVENTIONCHECK_H
