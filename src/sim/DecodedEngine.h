//===- sim/DecodedEngine.h - Pre-decoded threaded-dispatch engine -*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulator's second execution engine (SimEngine::Decoded): a
/// pre-decoder lowers each MProc into one flat, cache-dense stream of
/// fixed-width decoded ops -- branch targets resolved to stream indices,
/// call targets to decoded-proc pointers, operands unpacked, and common
/// pairs (compare+branch, add-immediate+load) fused into superops whose
/// accounting still charges the original per-instruction costs -- and a
/// threaded-dispatch inner loop (computed goto where the compiler
/// supports it, a dense function-pointer table otherwise) executes the
/// streams. Profile, budget and convention checks are hoisted to decode
/// time: the decoder emits checking vs. non-checking op variants, and the
/// execution-budget test runs per *block transfer* against precomputed
/// block costs, falling into an exact per-instruction checking tail loop
/// only when the remaining budget no longer provably covers the next
/// block.
///
/// The engine's contract is RunStats::sameExecution-equality with the
/// Reference interpreter: identical outcome, output, pixie counters,
/// block profiles and error messages on every program. See DESIGN.md
/// section 11 for the stream format and the cost-accounting invariant.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_SIM_DECODEDENGINE_H
#define IPRA_SIM_DECODEDENGINE_H

#include "sim/Simulator.h"

namespace ipra {

/// Decode + execute \p Prog under the decoded engine. Never throws;
/// failures are reported through RunStats::OK / Error exactly like
/// runProgram. Called by runProgram when SimOptions::Engine is Decoded.
RunStats runDecodedProgram(const MProgram &Prog, const SimOptions &Opts);

} // namespace ipra

#endif // IPRA_SIM_DECODEDENGINE_H
