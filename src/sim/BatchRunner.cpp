//===- sim/BatchRunner.cpp -------------------------------------------------===//

#include "sim/BatchRunner.h"

using namespace ipra;
using namespace ipra::sim;

std::vector<RunStats>
BatchRunner::runPrograms(const std::vector<const MProgram *> &Progs,
                         const SimOptions &Opts) {
  std::vector<std::function<RunStats()>> Jobs;
  Jobs.reserve(Progs.size());
  for (const MProgram *Prog : Progs)
    Jobs.push_back([Prog, &Opts] { return runProgram(*Prog, Opts); });
  return map(Jobs);
}

unsigned BatchRunner::defaultSimThreads() {
  return ThreadPool::defaultThreadCount();
}
