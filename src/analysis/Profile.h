//===- analysis/Profile.h - Execution profiles for the allocator -*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dynamic block-execution profiles. The paper closes its measurement
/// discussion with: "The feedback of profile data to the register
/// allocator is a capability that we plan to add in the future" -- the
/// missing information blamed for ccom's slowdown (saves/restores
/// migrated to a region that turned out to be the hot one). This module
/// implements that future work: the simulator collects per-block counts,
/// and the allocator consumes them in place of the static 10^loop-depth
/// estimate.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_ANALYSIS_PROFILE_H
#define IPRA_ANALYSIS_PROFILE_H

#include "ir/Procedure.h"

#include <cstdint>
#include <vector>

namespace ipra {

/// Per-procedure, per-block execution counts from a training run.
/// Indexed [procedure id][block id]; valid only against the exact module
/// whose code produced it (block ids must match).
struct ProfileData {
  std::vector<std::vector<uint64_t>> BlockCounts;

  bool empty() const { return BlockCounts.empty(); }

  /// True if the profile covers \p ProcId with the expected block count.
  bool covers(int ProcId, unsigned NumBlocks) const {
    return ProcId >= 0 && ProcId < int(BlockCounts.size()) &&
           BlockCounts[ProcId].size() == NumBlocks;
  }
};

/// Overwrites the blocks' Freq fields of \p Proc with per-activation
/// frequencies derived from the profile: count(block) / count(entry).
/// Blocks the training run never reached get a small nonzero frequency so
/// their code is not starved of registers entirely.
void applyProfile(Procedure &Proc, const ProfileData &Profile);

} // namespace ipra

#endif // IPRA_ANALYSIS_PROFILE_H
