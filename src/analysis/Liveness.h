//===- analysis/Liveness.h - Live-variable analysis ------------*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic backward bit-vector live-variable analysis over virtual
/// registers. Feeds live-range construction and dead-code elimination.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_ANALYSIS_LIVENESS_H
#define IPRA_ANALYSIS_LIVENESS_H

#include "ir/Procedure.h"
#include "support/BitVector.h"

#include <vector>

namespace ipra {

/// Per-block live-in/live-out sets over virtual registers.
class Liveness {
public:
  /// Runs the analysis on \p Proc to a fixed point: a worklist solver over
  /// a real post-order seed with preallocated scratch storage (no heap
  /// allocation inside the fixed-point loop).
  static Liveness compute(const Procedure &Proc);

  /// How the fixed point converged (feeds the "analysis.liveness_*" stat
  /// counters and the StatsInvariantTest regression guard).
  struct SolveStats {
    /// Blocks analyzed (the worklist seed size).
    unsigned Blocks = 0;
    /// Total worklist pops; the old round-robin sweep's equivalent was at
    /// least 2 * Blocks (one changing sweep plus one to detect stability).
    unsigned Pops = 0;
    /// Maximum pops of any single block -- the convergence depth; bounded
    /// by Blocks on the CFGs the front end emits.
    unsigned Iterations = 0;
  };
  SolveStats Solve;

  const BitVector &liveIn(int Block) const { return LiveIn[Block]; }
  const BitVector &liveOut(int Block) const { return LiveOut[Block]; }

  /// Walks \p Block backwards invoking \p Fn(InstIndex, LiveAfter) with the
  /// set of vregs live immediately *after* each instruction. LiveAfter is
  /// reused storage: do not retain the reference.
  template <typename CallableT>
  void forEachInstLiveAfter(const Procedure &Proc, int Block,
                            CallableT Fn) const {
    const BasicBlock *BB = Proc.block(Block);
    BitVector Live = LiveOut[Block];
    for (int I = int(BB->Insts.size()) - 1; I >= 0; --I) {
      const Instruction &Inst = BB->Insts[I];
      Fn(I, static_cast<const BitVector &>(Live));
      if (VReg D = Inst.def())
        Live.reset(D);
      Inst.forEachUse([&Live](VReg R) { Live.set(R); });
    }
  }

private:
  std::vector<BitVector> LiveIn;
  std::vector<BitVector> LiveOut;
};

} // namespace ipra

#endif // IPRA_ANALYSIS_LIVENESS_H
