//===- analysis/AnalysisManager.h - Per-procedure analysis cache *- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-procedure cache for the back end's dataflow analyses: Liveness,
/// LiveRangeInfo and InterferenceGraph are computed at most once per IR
/// version and handed out as const references. Passes that mutate the IR
/// must call invalidate() -- the cache never watches the IR itself; a
/// cheap structural fingerprint backs an assert that catches forgotten
/// invalidations in debug and release builds alike.
///
/// Caching & invalidation contract (see DESIGN.md, "analysis caching"):
///
///  - liveness() is valid as long as instruction opcodes/operands and the
///    block structure are unchanged. recomputeCFG() (predecessor lists)
///    and block-frequency updates (applyProfile / estimateFrequencies) do
///    NOT invalidate it -- Liveness derives successors from terminators
///    and never reads Freq.
///  - liveRanges()/interference() additionally read block frequencies, so
///    they must first be requested only after frequencies are final. The
///    pipeline guarantees this by ordering the frequency step before
///    register allocation; the manager itself cannot check it.
///  - Both ranges and interference come from one fused backward walk
///    (computeRangesAndInterference); requesting either materializes the
///    pair, the second accessor is a cache hit.
///
/// The manager owns no locks: in the parallel pipeline each instance is
/// task-local, created and destroyed inside the scheduler task that owns
/// the procedure.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_ANALYSIS_ANALYSISMANAGER_H
#define IPRA_ANALYSIS_ANALYSISMANAGER_H

#include "analysis/LiveRanges.h"
#include "analysis/Liveness.h"
#include "ir/Procedure.h"

#include <cstdint>
#include <optional>
#include <utility>

namespace ipra {

class StatCounters;

class AnalysisManager {
public:
  explicit AnalysisManager(const Procedure &Proc) : Proc(Proc) {}

  /// Content fingerprint of \p P: an FNV-1a hash over the full IR --
  /// linkage flags, parameters, frame objects and every instruction
  /// field. Two procedures with equal fingerprints compile identically
  /// given identical callee summaries (collisions aside), which is what
  /// the stale-cache assert below and the incremental compile service's
  /// cache key (driver/IncrementalService.h) both rely on. Block
  /// frequencies are deliberately excluded: they are derived data,
  /// recomputed by the pipeline after the mid-end (see the caching
  /// contract above).
  static uint64_t fingerprintIR(const Procedure &P);

  AnalysisManager(const AnalysisManager &) = delete;
  AnalysisManager &operator=(const AnalysisManager &) = delete;

  /// The procedure this manager serves.
  const Procedure &procedure() const { return Proc; }

  /// Live-variable analysis for the current IR version. Computes on the
  /// first call after construction or invalidate(); returns the cached
  /// result afterwards.
  const Liveness &liveness();

  /// Live ranges / interference graph from the fused single-walk builder.
  /// Block frequencies must be final before the first call (they feed
  /// SpillSavings and call-crossing costs).
  const LiveRangeInfo &liveRanges();
  const InterferenceGraph &interference();

  /// Drops every cached result. Call after any IR mutation (instruction
  /// insertion/removal/rewrite, block changes). Counted even when the
  /// cache was already empty so tests can observe pass behaviour.
  void invalidate();

  /// Cache behaviour observed so far; fed into the "analysis.*" stat
  /// counters. Pops/Iterations/Blocks accumulate the SolveStats of every
  /// liveness compute this manager performed.
  struct CacheStats {
    uint64_t LivenessComputes = 0;
    uint64_t LivenessCacheHits = 0;
    uint64_t RangesComputes = 0;
    uint64_t RangesCacheHits = 0;
    uint64_t Invalidations = 0;
    uint64_t LivenessPops = 0;
    uint64_t LivenessIterations = 0;
    uint64_t LivenessBlocks = 0;
  };
  const CacheStats &cacheStats() const { return Stats; }

  /// Publishes cacheStats() under "analysis.*" names into \p C.
  void addCountersTo(StatCounters &C) const;

private:
  /// Fingerprint of the IR the caches were built from, via
  /// fingerprintIR(). Content-sensitive: in-place operand/immediate
  /// rewrites that keep the shape are caught by the assert too, not only
  /// block/instruction-count changes (the shape-only hash this started
  /// as let such rewrites serve stale dataflow). Collisions only weaken
  /// the assert, never correctness of a properly-invalidating pass.
  uint64_t fingerprint() const { return fingerprintIR(Proc); }

  void materializeRangesAndInterference();

  const Procedure &Proc;
  std::optional<Liveness> LV;
  std::optional<std::pair<LiveRangeInfo, InterferenceGraph>> RangesIG;
  uint64_t CachedFP = 0;
  CacheStats Stats;
};

} // namespace ipra

#endif // IPRA_ANALYSIS_ANALYSISMANAGER_H
