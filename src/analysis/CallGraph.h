//===- analysis/CallGraph.h - Call graph, DFS order, open/closed -*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The program call graph with the two facts the paper's one-pass scheme
/// needs: a depth-first bottom-up processing order (callees before callers)
/// and the open/closed classification of Section 3. A procedure is *open*
/// when some caller is unknown or unavoidably processed before it:
/// main (called by the OS), exported procedures (unknown external callers),
/// address-taken procedures (indirect callers), externals, and members of
/// call-graph cycles (recursion, including self-recursion).
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_ANALYSIS_CALLGRAPH_H
#define IPRA_ANALYSIS_CALLGRAPH_H

#include "ir/Procedure.h"

#include <vector>

namespace ipra {

class CallGraph {
public:
  struct Node {
    /// Unique direct callee procedure ids.
    std::vector<int> Callees;
    /// True if the procedure contains any indirect call.
    bool HasIndirectCalls = false;
    /// True if the procedure participates in a call-graph cycle.
    bool InCycle = false;
    /// Open/closed classification (see file comment).
    bool Open = false;
  };

  /// SCC-collapsed task schedule for the parallel bottom-up pipeline.
  /// One task per strongly connected component (singletons included);
  /// tasks are numbered in a bottom-up topological order of the
  /// condensation, so running them 0..numTasks()-1 is a valid serial
  /// schedule. A task depends on another exactly when some member calls a
  /// *closed* procedure of the other task -- closed callees are the only
  /// procedures that publish precise summaries, hence the only
  /// cross-procedure dependence of the one-pass scheme. Open callees
  /// (main, exported, address-taken, external, cycle members) are read
  /// through the default linkage protocol and impose no ordering.
  struct Schedule {
    /// Procedure id -> owning task id.
    std::vector<int> TaskOfProc;
    /// Task id -> member procedure ids, in bottom-up processing order.
    std::vector<std::vector<int>> TaskProcs;
    /// Task id -> distinct dependent task ids released by its completion.
    std::vector<std::vector<int>> Successors;
    /// Task id -> number of distinct tasks holding closed callees of its
    /// members; the task is ready when this many predecessors finished.
    std::vector<unsigned> ReadyCounts;

    unsigned numTasks() const { return unsigned(TaskProcs.size()); }
  };

  static CallGraph build(const Module &M);

  Schedule schedule() const;

  const Node &node(int ProcId) const {
    assert(ProcId >= 0 && ProcId < int(Nodes.size()) && "bad proc id");
    return Nodes[ProcId];
  }

  bool isOpen(int ProcId) const { return node(ProcId).Open; }

  /// Procedure ids in depth-first bottom-up order: every closed procedure
  /// appears after all of its callees. Includes every procedure.
  const std::vector<int> &bottomUpOrder() const { return BottomUp; }

private:
  std::vector<Node> Nodes;
  std::vector<int> BottomUp;
  /// Tarjan component id per procedure (arbitrary numbering).
  std::vector<int> SCCId;
};

} // namespace ipra

#endif // IPRA_ANALYSIS_CALLGRAPH_H
