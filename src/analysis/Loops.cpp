//===- analysis/Loops.cpp --------------------------------------------------===//

#include "analysis/Loops.h"

#include <algorithm>
#include <cmath>

using namespace ipra;

namespace {

/// DFS edge classification state for back-edge detection.
struct DFSState {
  std::vector<char> Visited;
  std::vector<char> OnStack;
  std::vector<std::pair<int, int>> BackEdges; // (tail, header)
};

void dfs(const Procedure &Proc, int Node, DFSState &S) {
  S.Visited[Node] = 1;
  S.OnStack[Node] = 1;
  for (int Succ : Proc.block(Node)->successors()) {
    if (S.OnStack[Succ])
      S.BackEdges.push_back({Node, Succ});
    else if (!S.Visited[Succ])
      dfs(Proc, Succ, S);
  }
  S.OnStack[Node] = 0;
}

} // namespace

LoopInfo LoopInfo::compute(const Procedure &Proc) {
  LoopInfo LI;
  unsigned NumBlocks = Proc.numBlocks();
  LI.Depth.assign(NumBlocks, 0);
  if (NumBlocks == 0)
    return LI;

  DFSState S;
  S.Visited.assign(NumBlocks, 0);
  S.OnStack.assign(NumBlocks, 0);
  dfs(Proc, 0, S);

  // Natural loop of back edge (Tail -> Header): Header plus all nodes that
  // reach Tail without passing through Header (reverse reachability).
  for (auto [Tail, Header] : S.BackEdges) {
    BitVector Body(NumBlocks);
    Body.set(Header);
    std::vector<int> Work;
    if (!Body.test(Tail)) {
      Body.set(Tail);
      Work.push_back(Tail);
    }
    while (!Work.empty()) {
      int Node = Work.back();
      Work.pop_back();
      for (int Pred : Proc.block(Node)->Preds) {
        if (!Body.test(Pred)) {
          Body.set(Pred);
          Work.push_back(Pred);
        }
      }
    }
    // Merge with an existing loop that has the same header.
    auto Existing =
        std::find_if(LI.Loops.begin(), LI.Loops.end(),
                     [Header](const Loop &L) { return L.Header == Header; });
    if (Existing != LI.Loops.end()) {
      Existing->Blocks |= Body;
    } else {
      Loop L;
      L.Header = Header;
      L.Blocks = std::move(Body);
      LI.Loops.push_back(std::move(L));
    }
  }

  for (const Loop &L : LI.Loops)
    for (int B = L.Blocks.findFirst(); B >= 0; B = L.Blocks.findNext(B))
      ++LI.Depth[B];
  return LI;
}

void ipra::estimateFrequencies(Procedure &Proc, const LoopInfo &LI) {
  for (auto &BB : Proc) {
    BB->LoopDepth = LI.loopDepth(BB->id());
    // Cap the exponent so deeply nested synthetic loops cannot overflow the
    // priority arithmetic.
    int Depth = std::min(BB->LoopDepth, 8);
    BB->Freq = std::pow(10.0, Depth);
  }
}
