//===- analysis/AnalysisManager.cpp ----------------------------------------===//

#include "analysis/AnalysisManager.h"

#include "support/Statistics.h"

using namespace ipra;

uint64_t AnalysisManager::fingerprintIR(const Procedure &P) {
  // FNV-1a over the full IR content. A fast non-cryptographic mix is
  // enough for both users: collisions weaken the stale-cache assert (not
  // correctness of invalidating passes) and make the incremental service
  // recompile-or-collide on astronomically unlikely inputs.
  uint64_t H = 14695981039346656037ull;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 1099511628211ull;
  };
  Mix(P.IsExternal);
  Mix(P.AddressTaken);
  Mix(P.Exported);
  Mix(P.IsMain);
  Mix(P.NumVRegs);
  Mix(P.ParamVRegs.size());
  for (VReg R : P.ParamVRegs)
    Mix(R);
  Mix(P.FrameObjects.size());
  for (const FrameObject &F : P.FrameObjects)
    Mix(uint64_t(F.SizeWords));
  Mix(P.numBlocks());
  for (const auto &BB : P) {
    Mix(BB->Insts.size());
    for (const Instruction &I : BB->Insts) {
      Mix(uint64_t(I.Op));
      Mix(I.Dst);
      Mix(I.Src1);
      Mix(I.Src2);
      Mix(uint64_t(I.Imm));
      Mix(uint64_t(I.Global));
      Mix(uint64_t(I.Frame));
      Mix(uint64_t(I.Callee));
      Mix(uint64_t(I.Target1));
      Mix(uint64_t(I.Target2));
      Mix(I.Args.size());
      for (VReg A : I.Args)
        Mix(A);
    }
  }
  return H;
}

const Liveness &AnalysisManager::liveness() {
  if (LV) {
    assert(fingerprint() == CachedFP &&
           "stale analysis cache: IR mutated without invalidate()");
    ++Stats.LivenessCacheHits;
    return *LV;
  }
  CachedFP = fingerprint();
  LV.emplace(Liveness::compute(Proc));
  ++Stats.LivenessComputes;
  Stats.LivenessPops += LV->Solve.Pops;
  Stats.LivenessIterations += LV->Solve.Iterations;
  Stats.LivenessBlocks += LV->Solve.Blocks;
  return *LV;
}

void AnalysisManager::materializeRangesAndInterference() {
  if (RangesIG) {
    assert(fingerprint() == CachedFP &&
           "stale analysis cache: IR mutated without invalidate()");
    ++Stats.RangesCacheHits;
    return;
  }
  const Liveness &L = liveness();
  RangesIG.emplace(computeRangesAndInterference(Proc, L));
  ++Stats.RangesComputes;
}

const LiveRangeInfo &AnalysisManager::liveRanges() {
  materializeRangesAndInterference();
  return RangesIG->first;
}

const InterferenceGraph &AnalysisManager::interference() {
  materializeRangesAndInterference();
  return RangesIG->second;
}

void AnalysisManager::invalidate() {
  ++Stats.Invalidations;
  LV.reset();
  RangesIG.reset();
}

void AnalysisManager::addCountersTo(StatCounters &C) const {
  C.add("analysis.liveness_computes", Stats.LivenessComputes);
  C.add("analysis.liveness_cache_hits", Stats.LivenessCacheHits);
  C.add("analysis.ranges_interference_computes", Stats.RangesComputes);
  C.add("analysis.ranges_interference_cache_hits", Stats.RangesCacheHits);
  C.add("analysis.invalidations", Stats.Invalidations);
  C.add("analysis.liveness_pops", Stats.LivenessPops);
  C.add("analysis.liveness_iterations", Stats.LivenessIterations);
  C.add("analysis.liveness_blocks", Stats.LivenessBlocks);
}
