//===- analysis/AnalysisManager.cpp ----------------------------------------===//

#include "analysis/AnalysisManager.h"

#include "support/Statistics.h"

using namespace ipra;

uint64_t AnalysisManager::fingerprint() const {
  // FNV-1a over the IR shape. Collisions only weaken the assert, never
  // correctness, so a fast non-cryptographic mix is enough.
  uint64_t H = 14695981039346656037ull;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 1099511628211ull;
  };
  Mix(Proc.numBlocks());
  Mix(Proc.NumVRegs);
  for (const auto &BB : Proc)
    Mix(BB->Insts.size());
  return H;
}

const Liveness &AnalysisManager::liveness() {
  if (LV) {
    assert(fingerprint() == CachedFP &&
           "stale analysis cache: IR mutated without invalidate()");
    ++Stats.LivenessCacheHits;
    return *LV;
  }
  CachedFP = fingerprint();
  LV.emplace(Liveness::compute(Proc));
  ++Stats.LivenessComputes;
  Stats.LivenessPops += LV->Solve.Pops;
  Stats.LivenessIterations += LV->Solve.Iterations;
  Stats.LivenessBlocks += LV->Solve.Blocks;
  return *LV;
}

void AnalysisManager::materializeRangesAndInterference() {
  if (RangesIG) {
    assert(fingerprint() == CachedFP &&
           "stale analysis cache: IR mutated without invalidate()");
    ++Stats.RangesCacheHits;
    return;
  }
  const Liveness &L = liveness();
  RangesIG.emplace(computeRangesAndInterference(Proc, L));
  ++Stats.RangesComputes;
}

const LiveRangeInfo &AnalysisManager::liveRanges() {
  materializeRangesAndInterference();
  return RangesIG->first;
}

const InterferenceGraph &AnalysisManager::interference() {
  materializeRangesAndInterference();
  return RangesIG->second;
}

void AnalysisManager::invalidate() {
  ++Stats.Invalidations;
  LV.reset();
  RangesIG.reset();
}

void AnalysisManager::addCountersTo(StatCounters &C) const {
  C.add("analysis.liveness_computes", Stats.LivenessComputes);
  C.add("analysis.liveness_cache_hits", Stats.LivenessCacheHits);
  C.add("analysis.ranges_interference_computes", Stats.RangesComputes);
  C.add("analysis.ranges_interference_cache_hits", Stats.RangesCacheHits);
  C.add("analysis.invalidations", Stats.Invalidations);
  C.add("analysis.liveness_pops", Stats.LivenessPops);
  C.add("analysis.liveness_iterations", Stats.LivenessIterations);
  C.add("analysis.liveness_blocks", Stats.LivenessBlocks);
}
