//===- analysis/Loops.h - Natural loops and block frequencies --*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop detection via back edges, per-block loop depth, and the
/// static execution-frequency estimate (10^depth) used by priority-based
/// coloring, plus the loop-region information the shrink-wrap pass needs to
/// keep saves/restores out of loops.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_ANALYSIS_LOOPS_H
#define IPRA_ANALYSIS_LOOPS_H

#include "ir/Procedure.h"
#include "support/BitVector.h"

#include <vector>

namespace ipra {

/// One natural loop: the header plus every block in its body.
struct Loop {
  int Header = -1;
  /// Blocks in the loop, header included.
  BitVector Blocks;
};

class LoopInfo {
public:
  /// Finds natural loops of \p Proc. Loops sharing a header are merged.
  static LoopInfo compute(const Procedure &Proc);

  const std::vector<Loop> &loops() const { return Loops; }

  int loopDepth(int Block) const { return Depth[Block]; }

  /// \returns true if \p Block is inside any loop.
  bool inAnyLoop(int Block) const { return Depth[Block] > 0; }

private:
  std::vector<Loop> Loops;
  std::vector<int> Depth;
};

/// Writes Freq = 10^loopDepth (and LoopDepth) into each block of \p Proc.
/// This is the static estimate Chow's priority function uses in the absence
/// of profile data.
void estimateFrequencies(Procedure &Proc, const LoopInfo &LI);

} // namespace ipra

#endif // IPRA_ANALYSIS_LOOPS_H
