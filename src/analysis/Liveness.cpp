//===- analysis/Liveness.cpp -----------------------------------------------===//

#include "analysis/Liveness.h"

using namespace ipra;

Liveness Liveness::compute(const Procedure &Proc) {
  Liveness Result;
  unsigned NumBlocks = Proc.numBlocks();
  unsigned NumVRegs = Proc.NumVRegs;
  Result.LiveIn.assign(NumBlocks, BitVector(NumVRegs));
  Result.LiveOut.assign(NumBlocks, BitVector(NumVRegs));

  // Local GEN (upward-exposed uses) and KILL (defs) per block.
  std::vector<BitVector> Gen(NumBlocks, BitVector(NumVRegs));
  std::vector<BitVector> Kill(NumBlocks, BitVector(NumVRegs));
  for (const auto &BB : Proc) {
    BitVector &G = Gen[BB->id()];
    BitVector &K = Kill[BB->id()];
    for (const Instruction &Inst : BB->Insts) {
      Inst.forEachUse([&G, &K](VReg R) {
        if (!K.test(R))
          G.set(R);
      });
      if (VReg D = Inst.def())
        K.set(D);
    }
  }

  // Iterate to fixed point over blocks in reverse id order (a decent
  // approximation of post-order for the CFGs the front end emits).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int B = int(NumBlocks) - 1; B >= 0; --B) {
      BitVector Out(NumVRegs);
      for (int S : Proc.block(B)->successors())
        Out |= Result.LiveIn[S];
      BitVector In = Out;
      In.andNot(Kill[B]);
      In |= Gen[B];
      if (Out != Result.LiveOut[B] || In != Result.LiveIn[B]) {
        Result.LiveOut[B] = std::move(Out);
        Result.LiveIn[B] = std::move(In);
        Changed = true;
      }
    }
  }
  return Result;
}
