//===- analysis/Liveness.cpp -----------------------------------------------===//

#include "analysis/Liveness.h"

using namespace ipra;

Liveness Liveness::compute(const Procedure &Proc) {
  Liveness Result;
  unsigned NumBlocks = Proc.numBlocks();
  unsigned NumVRegs = Proc.NumVRegs;
  Result.Solve.Blocks = NumBlocks;
  Result.LiveIn.assign(NumBlocks, BitVector(NumVRegs));
  Result.LiveOut.assign(NumBlocks, BitVector(NumVRegs));
  if (NumBlocks == 0)
    return Result;

  // Local GEN (upward-exposed uses) and KILL (defs) per block.
  std::vector<BitVector> Gen(NumBlocks, BitVector(NumVRegs));
  std::vector<BitVector> Kill(NumBlocks, BitVector(NumVRegs));
  for (const auto &BB : Proc) {
    BitVector &G = Gen[BB->id()];
    BitVector &K = Kill[BB->id()];
    for (const Instruction &Inst : BB->Insts) {
      Inst.forEachUse([&G, &K](VReg R) {
        if (!K.test(R))
          G.set(R);
      });
      if (VReg D = Inst.def())
        K.set(D);
    }
  }

  // Predecessors, derived from the terminators so the analysis never
  // depends on recomputeCFG() having run.
  std::vector<std::vector<int>> Preds(NumBlocks);
  for (const auto &BB : Proc)
    for (int S : BB->successors())
      Preds[S].push_back(BB->id());

  // Worklist seeded so the first pops come out in post-order (the LIFO
  // reverses the reverse post-order), which lets the backward equations
  // converge in near one visit per block on reducible CFGs. Blocks the
  // entry cannot reach still get solved -- dead-code elimination may look
  // at them before simplifyCFG deletes them -- seeded after the reachable
  // ones, in reverse id order like the old round-robin sweep.
  std::vector<int> Worklist;
  Worklist.reserve(NumBlocks);
  BitVector Seeded(NumBlocks);
  for (int B : Proc.reversePostOrder()) {
    Worklist.push_back(B);
    Seeded.set(unsigned(B));
  }
  for (int B = int(NumBlocks) - 1; B >= 0; --B)
    if (!Seeded.test(unsigned(B))) {
      // Unreachable blocks sit at the bottom of the stack: they read the
      // reachable blocks' LiveIn, so solving them after the reachable
      // region is stable avoids re-pops.
      Worklist.insert(Worklist.begin(), B);
    }
  BitVector OnList(NumBlocks, true);

  // Fixed-point loop. Everything it touches is preallocated: Scratch is
  // the only temporary and its word storage is reused across pops, so the
  // loop itself performs no heap allocation. Change detection rides on
  // unionWithChanged -- the sets grow monotonically, so a union that adds
  // no bits is exactly "this block is stable".
  std::vector<unsigned> PopCount(NumBlocks, 0);
  BitVector Scratch(NumVRegs);
  while (!Worklist.empty()) {
    int B = Worklist.back();
    Worklist.pop_back();
    OnList.reset(unsigned(B));
    ++Result.Solve.Pops;
    if (++PopCount[B] > Result.Solve.Iterations)
      Result.Solve.Iterations = PopCount[B];

    BitVector &Out = Result.LiveOut[B];
    for (int S : Proc.block(B)->successors())
      Out.unionWithChanged(Result.LiveIn[S]);
    Scratch = Out;
    Scratch.andNot(Kill[B]);
    Scratch |= Gen[B];
    if (Result.LiveIn[B].unionWithChanged(Scratch)) {
      for (int P : Preds[B])
        if (!OnList.test(unsigned(P))) {
          OnList.set(unsigned(P));
          Worklist.push_back(P);
        }
    }
  }
  return Result;
}
