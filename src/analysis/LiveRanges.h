//===- analysis/LiveRanges.h - Live ranges and interference ----*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-virtual-register live ranges with the statistics priority-based
/// coloring needs: spill savings, span, crossed call sites, and the
/// interference graph. One live range per virtual register (the paper's
/// live-range splitting is orthogonal to the techniques reproduced here).
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_ANALYSIS_LIVERANGES_H
#define IPRA_ANALYSIS_LIVERANGES_H

#include "analysis/Liveness.h"
#include "ir/Procedure.h"
#include "support/BitVector.h"

#include <utility>
#include <vector>

namespace ipra {

/// A call site some live range spans: the register's value must survive it.
struct CallCrossing {
  int Block = -1;
  int InstIdx = -1;
  /// Direct callee procedure id, or -1 for indirect/unknown calls.
  int CalleeId = -1;
  /// Estimated execution frequency of the call.
  double Freq = 1.0;
};

struct LiveRange {
  VReg Reg = 0;
  /// Blocks in which the register is live at some point.
  BitVector LiveBlocks;
  /// Σ block frequency over all defs and uses: the memory traffic avoided
  /// per run by keeping the value in a register (Chow's "savings").
  double SpillSavings = 0;
  unsigned NumDefsUses = 0;
  /// Number of instruction points at which the range is live; the priority
  /// denominator, so short hot ranges beat long sparse ones.
  double Span = 0;
  /// Every call instruction whose execution the range spans.
  std::vector<CallCrossing> Crossings;

  bool exists() const { return NumDefsUses > 0 || !Crossings.empty(); }
  bool crossesAnyCall() const { return !Crossings.empty(); }
};

class LiveRangeInfo;
class InterferenceGraph;

/// Builds LiveRangeInfo and InterferenceGraph together in one shared
/// backward walk per block: each block's per-instruction live sets are
/// reconstructed once instead of once per analysis. Results are
/// bit-identical to running the two compute() functions, which are kept
/// as the slow two-pass oracle for the differential tests.
std::pair<LiveRangeInfo, InterferenceGraph>
computeRangesAndInterference(const Procedure &Proc, const Liveness &LV);

class LiveRangeInfo {
public:
  /// Builds live ranges for \p Proc. Block frequencies must already be
  /// estimated (see estimateFrequencies). Prefer
  /// computeRangesAndInterference when the interference graph is needed
  /// too; this two-pass entry point doubles as its test oracle.
  static LiveRangeInfo compute(const Procedure &Proc, const Liveness &LV);

  const LiveRange &range(VReg R) const {
    assert(R < Ranges.size() && "vreg out of range");
    return Ranges[R];
  }
  unsigned numVRegs() const { return Ranges.size(); }

private:
  friend std::pair<LiveRangeInfo, InterferenceGraph>
  computeRangesAndInterference(const Procedure &Proc, const Liveness &LV);

  std::vector<LiveRange> Ranges;
};

/// Symmetric interference relation over virtual registers: two ranges
/// interfere when one is live at a definition point of the other (with the
/// usual copy exception so moves do not force distinct registers).
class InterferenceGraph {
public:
  static InterferenceGraph compute(const Procedure &Proc, const Liveness &LV);

  bool interfere(VReg A, VReg B) const { return Adj[A].test(B); }
  const BitVector &neighbors(VReg R) const { return Adj[R]; }

  void addEdge(VReg A, VReg B) {
    if (A == B)
      return;
    Adj[A].set(B);
    Adj[B].set(A);
  }

private:
  friend std::pair<LiveRangeInfo, InterferenceGraph>
  computeRangesAndInterference(const Procedure &Proc, const Liveness &LV);

  explicit InterferenceGraph(unsigned NumVRegs)
      : Adj(NumVRegs, BitVector(NumVRegs)) {}

  std::vector<BitVector> Adj;
};

} // namespace ipra

#endif // IPRA_ANALYSIS_LIVERANGES_H
