//===- analysis/LiveRanges.cpp ---------------------------------------------===//

#include "analysis/LiveRanges.h"

using namespace ipra;

LiveRangeInfo LiveRangeInfo::compute(const Procedure &Proc,
                                     const Liveness &LV) {
  LiveRangeInfo Info;
  unsigned NumVRegs = Proc.NumVRegs;
  unsigned NumBlocks = Proc.numBlocks();
  Info.Ranges.assign(NumVRegs, LiveRange());
  for (VReg R = 0; R < NumVRegs; ++R) {
    Info.Ranges[R].Reg = R;
    Info.Ranges[R].LiveBlocks.resize(NumBlocks);
  }

  for (const auto &BB : Proc) {
    int B = BB->id();
    double Freq = BB->Freq;
    // Defs/uses contribute savings regardless of liveness structure.
    for (const Instruction &Inst : BB->Insts) {
      auto Tally = [&Info, Freq](VReg R) {
        Info.Ranges[R].SpillSavings += Freq;
        ++Info.Ranges[R].NumDefsUses;
      };
      if (VReg D = Inst.def())
        Tally(D);
      Inst.forEachUse(Tally);
    }
    // Point-by-point liveness: span, live blocks, call crossings.
    LV.forEachInstLiveAfter(
        Proc, B, [&](int InstIdx, const BitVector &LiveAfter) {
          const Instruction &Inst = BB->Insts[InstIdx];
          for (int R = LiveAfter.findFirst(); R >= 0;
               R = LiveAfter.findNext(R)) {
            LiveRange &LR = Info.Ranges[R];
            LR.Span += 1;
            LR.LiveBlocks.set(B);
            if (Inst.isCall() && VReg(R) != Inst.def())
              LR.Crossings.push_back({B, InstIdx, Inst.Callee, Freq});
          }
        });
    // Upward-exposed liveness marks the block too.
    const BitVector &In = LV.liveIn(B);
    for (int R = In.findFirst(); R >= 0; R = In.findNext(R))
      Info.Ranges[R].LiveBlocks.set(B);
  }
  return Info;
}

std::pair<LiveRangeInfo, InterferenceGraph>
ipra::computeRangesAndInterference(const Procedure &Proc, const Liveness &LV) {
  LiveRangeInfo Info;
  InterferenceGraph G(Proc.NumVRegs);
  unsigned NumVRegs = Proc.NumVRegs;
  unsigned NumBlocks = Proc.numBlocks();
  Info.Ranges.assign(NumVRegs, LiveRange());
  for (VReg R = 0; R < NumVRegs; ++R) {
    Info.Ranges[R].Reg = R;
    Info.Ranges[R].LiveBlocks.resize(NumBlocks);
  }

  for (const auto &BB : Proc) {
    int B = BB->id();
    double Freq = BB->Freq;
    // Defs/uses contribute savings regardless of liveness structure.
    for (const Instruction &Inst : BB->Insts) {
      auto Tally = [&Info, Freq](VReg R) {
        Info.Ranges[R].SpillSavings += Freq;
        ++Info.Ranges[R].NumDefsUses;
      };
      if (VReg D = Inst.def())
        Tally(D);
      Inst.forEachUse(Tally);
    }
    // The shared backward walk: one live-set reconstruction per block
    // feeds span/live-block/call-crossing collection and interference
    // edges at every instruction point.
    LV.forEachInstLiveAfter(
        Proc, B, [&](int InstIdx, const BitVector &LiveAfter) {
          const Instruction &Inst = BB->Insts[InstIdx];
          VReg D = Inst.def();
          bool IsCall = Inst.isCall();
          bool CopyOfSrc = Inst.Op == Opcode::Copy;
          LiveAfter.forEachSetBit([&](unsigned R) {
            LiveRange &LR = Info.Ranges[R];
            LR.Span += 1;
            LR.LiveBlocks.set(B);
            if (IsCall && VReg(R) != D)
              LR.Crossings.push_back({B, InstIdx, Inst.Callee, Freq});
            // Copy destination may share a register with its source.
            if (D && !(CopyOfSrc && VReg(R) == Inst.Src1))
              G.addEdge(D, VReg(R));
          });
        });
    // Upward-exposed liveness marks the block too.
    LV.liveIn(B).forEachSetBit(
        [&Info, B](unsigned R) { Info.Ranges[R].LiveBlocks.set(B); });
  }

  // Parameters arrive simultaneously at entry: they must not share.
  for (unsigned I = 0; I < Proc.ParamVRegs.size(); ++I)
    for (unsigned J = I + 1; J < Proc.ParamVRegs.size(); ++J)
      G.addEdge(Proc.ParamVRegs[I], Proc.ParamVRegs[J]);
  return {std::move(Info), std::move(G)};
}

InterferenceGraph InterferenceGraph::compute(const Procedure &Proc,
                                             const Liveness &LV) {
  InterferenceGraph G(Proc.NumVRegs);
  for (const auto &BB : Proc) {
    LV.forEachInstLiveAfter(
        Proc, BB->id(), [&](int InstIdx, const BitVector &LiveAfter) {
          const Instruction &Inst = BB->Insts[InstIdx];
          VReg D = Inst.def();
          if (!D)
            return;
          for (int R = LiveAfter.findFirst(); R >= 0;
               R = LiveAfter.findNext(R)) {
            // Copy destination may share a register with its source.
            if (Inst.Op == Opcode::Copy && VReg(R) == Inst.Src1)
              continue;
            G.addEdge(D, VReg(R));
          }
        });
  }
  // Parameters arrive simultaneously at entry: they must not share.
  for (unsigned I = 0; I < Proc.ParamVRegs.size(); ++I)
    for (unsigned J = I + 1; J < Proc.ParamVRegs.size(); ++J)
      G.addEdge(Proc.ParamVRegs[I], Proc.ParamVRegs[J]);
  return G;
}
