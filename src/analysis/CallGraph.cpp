//===- analysis/CallGraph.cpp ----------------------------------------------===//

#include "analysis/CallGraph.h"

#include <algorithm>

using namespace ipra;

namespace {

/// Iterative Tarjan SCC; marks nodes in non-trivial SCCs (or with self
/// edges) as cycle members.
class SCCFinder {
public:
  SCCFinder(const std::vector<CallGraph::Node> &Nodes) : Nodes(Nodes) {
    unsigned N = Nodes.size();
    Index.assign(N, -1);
    LowLink.assign(N, 0);
    OnStack.assign(N, 0);
    InCycle.assign(N, 0);
    for (unsigned I = 0; I < N; ++I)
      if (Index[I] < 0)
        strongConnect(int(I));
  }

  std::vector<char> takeResult() { return std::move(InCycle); }

private:
  void strongConnect(int Root) {
    struct Frame {
      int Node;
      unsigned NextEdge;
    };
    std::vector<Frame> CallStack{{Root, 0}};
    while (!CallStack.empty()) {
      Frame &F = CallStack.back();
      int V = F.Node;
      if (F.NextEdge == 0) {
        Index[V] = LowLink[V] = NextIndex++;
        Stack.push_back(V);
        OnStack[V] = 1;
      }
      bool Descended = false;
      while (F.NextEdge < Nodes[V].Callees.size()) {
        int W = Nodes[V].Callees[F.NextEdge++];
        if (Index[W] < 0) {
          CallStack.push_back({W, 0});
          Descended = true;
          break;
        }
        if (OnStack[W])
          LowLink[V] = std::min(LowLink[V], Index[W]);
      }
      if (Descended)
        continue;
      if (LowLink[V] == Index[V]) {
        // Pop one SCC.
        std::vector<int> Component;
        while (true) {
          int W = Stack.back();
          Stack.pop_back();
          OnStack[W] = 0;
          Component.push_back(W);
          if (W == V)
            break;
        }
        bool SelfEdge =
            std::find(Nodes[V].Callees.begin(), Nodes[V].Callees.end(), V) !=
            Nodes[V].Callees.end();
        if (Component.size() > 1 || SelfEdge)
          for (int W : Component)
            InCycle[W] = 1;
      }
      CallStack.pop_back();
      if (!CallStack.empty()) {
        int Parent = CallStack.back().Node;
        LowLink[Parent] = std::min(LowLink[Parent], LowLink[V]);
      }
    }
  }

  const std::vector<CallGraph::Node> &Nodes;
  std::vector<int> Index;
  std::vector<int> LowLink;
  std::vector<char> OnStack;
  std::vector<char> InCycle;
  std::vector<int> Stack;
  int NextIndex = 0;
};

} // namespace

CallGraph CallGraph::build(const Module &M) {
  CallGraph CG;
  unsigned N = M.numProcedures();
  CG.Nodes.assign(N, Node());

  for (unsigned P = 0; P < N; ++P) {
    const Procedure *Proc = M.procedure(int(P));
    Node &Nd = CG.Nodes[P];
    for (const auto &BB : *Proc) {
      for (const Instruction &Inst : BB->Insts) {
        if (Inst.Op == Opcode::Call) {
          if (std::find(Nd.Callees.begin(), Nd.Callees.end(), Inst.Callee) ==
              Nd.Callees.end())
            Nd.Callees.push_back(Inst.Callee);
        } else if (Inst.Op == Opcode::CallIndirect) {
          Nd.HasIndirectCalls = true;
        }
      }
    }
  }

  std::vector<char> InCycle = SCCFinder(CG.Nodes).takeResult();
  for (unsigned P = 0; P < N; ++P) {
    const Procedure *Proc = M.procedure(int(P));
    Node &Nd = CG.Nodes[P];
    Nd.InCycle = InCycle[P];
    Nd.Open = Proc->IsMain || Proc->Exported || Proc->AddressTaken ||
              Proc->IsExternal || Nd.InCycle;
  }

  // Depth-first post-order over every procedure: callees before callers
  // (except along cycle edges, whose members are open anyway).
  std::vector<char> Visited(N, 0);
  for (unsigned Root = 0; Root < N; ++Root) {
    if (Visited[Root])
      continue;
    std::vector<std::pair<int, unsigned>> Stack{{int(Root), 0}};
    Visited[Root] = 1;
    while (!Stack.empty()) {
      auto &[V, NextEdge] = Stack.back();
      if (NextEdge < CG.Nodes[V].Callees.size()) {
        int W = CG.Nodes[V].Callees[NextEdge++];
        if (!Visited[W]) {
          Visited[W] = 1;
          Stack.push_back({W, 0});
        }
      } else {
        CG.BottomUp.push_back(V);
        Stack.pop_back();
      }
    }
  }
  return CG;
}
