//===- analysis/CallGraph.cpp ----------------------------------------------===//

#include "analysis/CallGraph.h"

#include <algorithm>

using namespace ipra;

namespace {

/// Iterative Tarjan SCC; marks nodes in non-trivial SCCs (or with self
/// edges) as cycle members.
class SCCFinder {
public:
  SCCFinder(const std::vector<CallGraph::Node> &Nodes) : Nodes(Nodes) {
    unsigned N = Nodes.size();
    Index.assign(N, -1);
    LowLink.assign(N, 0);
    OnStack.assign(N, 0);
    InCycle.assign(N, 0);
    Component.assign(N, -1);
    for (unsigned I = 0; I < N; ++I)
      if (Index[I] < 0)
        strongConnect(int(I));
  }

  std::vector<char> takeResult() { return std::move(InCycle); }
  std::vector<int> takeComponents() { return std::move(Component); }

private:
  void strongConnect(int Root) {
    struct Frame {
      int Node;
      unsigned NextEdge;
    };
    std::vector<Frame> CallStack{{Root, 0}};
    while (!CallStack.empty()) {
      Frame &F = CallStack.back();
      int V = F.Node;
      if (F.NextEdge == 0) {
        Index[V] = LowLink[V] = NextIndex++;
        Stack.push_back(V);
        OnStack[V] = 1;
      }
      bool Descended = false;
      while (F.NextEdge < Nodes[V].Callees.size()) {
        int W = Nodes[V].Callees[F.NextEdge++];
        if (Index[W] < 0) {
          CallStack.push_back({W, 0});
          Descended = true;
          break;
        }
        if (OnStack[W])
          LowLink[V] = std::min(LowLink[V], Index[W]);
      }
      if (Descended)
        continue;
      if (LowLink[V] == Index[V]) {
        // Pop one SCC.
        std::vector<int> Members;
        while (true) {
          int W = Stack.back();
          Stack.pop_back();
          OnStack[W] = 0;
          Members.push_back(W);
          if (W == V)
            break;
        }
        bool SelfEdge =
            std::find(Nodes[V].Callees.begin(), Nodes[V].Callees.end(), V) !=
            Nodes[V].Callees.end();
        for (int W : Members)
          Component[W] = NumComponents;
        ++NumComponents;
        if (Members.size() > 1 || SelfEdge)
          for (int W : Members)
            InCycle[W] = 1;
      }
      CallStack.pop_back();
      if (!CallStack.empty()) {
        int Parent = CallStack.back().Node;
        LowLink[Parent] = std::min(LowLink[Parent], LowLink[V]);
      }
    }
  }

  const std::vector<CallGraph::Node> &Nodes;
  std::vector<int> Index;
  std::vector<int> LowLink;
  std::vector<char> OnStack;
  std::vector<char> InCycle;
  std::vector<int> Component;
  std::vector<int> Stack;
  int NextIndex = 0;
  int NumComponents = 0;
};

} // namespace

CallGraph CallGraph::build(const Module &M) {
  CallGraph CG;
  unsigned N = M.numProcedures();
  CG.Nodes.assign(N, Node());

  for (unsigned P = 0; P < N; ++P) {
    const Procedure *Proc = M.procedure(int(P));
    Node &Nd = CG.Nodes[P];
    for (const auto &BB : *Proc) {
      for (const Instruction &Inst : BB->Insts) {
        if (Inst.Op == Opcode::Call) {
          if (std::find(Nd.Callees.begin(), Nd.Callees.end(), Inst.Callee) ==
              Nd.Callees.end())
            Nd.Callees.push_back(Inst.Callee);
        } else if (Inst.Op == Opcode::CallIndirect) {
          Nd.HasIndirectCalls = true;
        }
      }
    }
  }

  SCCFinder Finder(CG.Nodes);
  std::vector<char> InCycle = Finder.takeResult();
  CG.SCCId = Finder.takeComponents();
  for (unsigned P = 0; P < N; ++P) {
    const Procedure *Proc = M.procedure(int(P));
    Node &Nd = CG.Nodes[P];
    Nd.InCycle = InCycle[P];
    Nd.Open = Proc->IsMain || Proc->Exported || Proc->AddressTaken ||
              Proc->IsExternal || Nd.InCycle;
  }

  // Depth-first post-order over every procedure: callees before callers
  // (except along cycle edges, whose members are open anyway).
  std::vector<char> Visited(N, 0);
  for (unsigned Root = 0; Root < N; ++Root) {
    if (Visited[Root])
      continue;
    std::vector<std::pair<int, unsigned>> Stack{{int(Root), 0}};
    Visited[Root] = 1;
    while (!Stack.empty()) {
      auto &[V, NextEdge] = Stack.back();
      if (NextEdge < CG.Nodes[V].Callees.size()) {
        int W = CG.Nodes[V].Callees[NextEdge++];
        if (!Visited[W]) {
          Visited[W] = 1;
          Stack.push_back({W, 0});
        }
      } else {
        CG.BottomUp.push_back(V);
        Stack.pop_back();
      }
    }
  }
  return CG;
}

CallGraph::Schedule CallGraph::schedule() const {
  Schedule S;
  unsigned N = Nodes.size();
  S.TaskOfProc.assign(N, -1);

  // Number tasks by first appearance of any SCC member in the bottom-up
  // order. Every cross-SCC call edge points to an earlier bottom-up
  // position (post-order property), so this numbering is a bottom-up
  // topological order of the condensation.
  std::vector<int> TaskOfSCC(N, -1);
  for (int P : BottomUp) {
    int &Task = TaskOfSCC[SCCId[P]];
    if (Task < 0) {
      Task = int(S.TaskProcs.size());
      S.TaskProcs.emplace_back();
    }
    S.TaskOfProc[P] = Task;
    S.TaskProcs[Task].push_back(P);
  }

  unsigned NumTasks = S.numTasks();
  S.Successors.assign(NumTasks, {});
  S.ReadyCounts.assign(NumTasks, 0);

  // A caller's task waits on every distinct task holding one of its
  // closed callees; open callees publish nothing precise and need no
  // ordering. Collect edges, then dedupe per predecessor.
  for (unsigned P = 0; P < N; ++P) {
    int CallerTask = S.TaskOfProc[P];
    for (int Callee : Nodes[P].Callees) {
      int CalleeTask = S.TaskOfProc[Callee];
      if (CalleeTask == CallerTask || Nodes[Callee].Open)
        continue;
      assert(CalleeTask < CallerTask && "task numbering not bottom-up");
      S.Successors[CalleeTask].push_back(CallerTask);
    }
  }
  for (unsigned T = 0; T < NumTasks; ++T) {
    std::vector<int> &Succs = S.Successors[T];
    std::sort(Succs.begin(), Succs.end());
    Succs.erase(std::unique(Succs.begin(), Succs.end()), Succs.end());
    for (int Dep : Succs)
      ++S.ReadyCounts[Dep];
  }
  return S;
}
