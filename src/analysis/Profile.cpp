//===- analysis/Profile.cpp ------------------------------------------------===//

#include "analysis/Profile.h"

#include <algorithm>

using namespace ipra;

void ipra::applyProfile(Procedure &Proc, const ProfileData &Profile) {
  assert(Profile.covers(Proc.id(), Proc.numBlocks()) &&
         "profile does not match the module");
  const std::vector<uint64_t> &Counts = Profile.BlockCounts[Proc.id()];
  double EntryCount = double(std::max<uint64_t>(Counts[0], 1));
  for (auto &BB : Proc) {
    uint64_t C = Counts[BB->id()];
    // Per-activation frequency; unexecuted blocks keep a whisper of weight
    // so correctness-relevant placement still considers them.
    BB->Freq = C ? double(C) / EntryCount : 0.01;
  }
}
