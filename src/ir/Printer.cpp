//===- ir/Printer.cpp ------------------------------------------------------===//

#include "ir/Printer.h"

#include "ir/Procedure.h"

using namespace ipra;

static std::string vr(VReg R) { return "%" + std::to_string(R); }
static std::string bb(int Id) { return "bb" + std::to_string(Id); }

std::string ipra::toString(const Instruction &I) {
  std::string Out;
  if (I.def())
    Out += vr(I.Dst) + " = ";
  Out += opcodeName(I.Op);
  switch (I.Op) {
  case Opcode::LoadImm:
    Out += " " + std::to_string(I.Imm);
    break;
  case Opcode::AddImm:
    Out += " " + vr(I.Src1) + ", " + std::to_string(I.Imm);
    break;
  case Opcode::AddrGlobal:
  case Opcode::LoadGlobal:
    Out += " @" + std::to_string(I.Global);
    break;
  case Opcode::StoreGlobal:
    Out += " @" + std::to_string(I.Global) + ", " + vr(I.Src1);
    break;
  case Opcode::AddrLocal:
    Out += " $" + std::to_string(I.Frame);
    break;
  case Opcode::Load:
    Out += " [" + vr(I.Src1) + " + " + std::to_string(I.Imm) + "]";
    break;
  case Opcode::Store:
    Out += " [" + vr(I.Src1) + " + " + std::to_string(I.Imm) + "], " +
           vr(I.Src2);
    break;
  case Opcode::FuncAddr:
    Out += " proc" + std::to_string(I.Callee);
    break;
  case Opcode::Call:
  case Opcode::CallIndirect: {
    Out += I.Op == Opcode::Call ? " proc" + std::to_string(I.Callee)
                                : " *" + vr(I.Src1);
    Out += "(";
    for (unsigned J = 0; J < I.Args.size(); ++J) {
      if (J)
        Out += ", ";
      Out += vr(I.Args[J]);
    }
    Out += ")";
    break;
  }
  case Opcode::Ret:
    if (I.Src1)
      Out += " " + vr(I.Src1);
    break;
  case Opcode::Br:
    Out += " " + bb(I.Target1);
    break;
  case Opcode::CondBr:
    Out += " " + vr(I.Src1) + ", " + bb(I.Target1) + ", " + bb(I.Target2);
    break;
  case Opcode::Neg:
  case Opcode::Not:
  case Opcode::Copy:
  case Opcode::Print:
    Out += " " + vr(I.Src1);
    break;
  default:
    assert(I.isBinaryALU() && "unhandled opcode in printer");
    Out += " " + vr(I.Src1) + ", " + vr(I.Src2);
    break;
  }
  return Out;
}

std::string ipra::toString(const Procedure &Proc) {
  std::string Out = "proc " + Proc.name() + "(";
  for (unsigned J = 0; J < Proc.ParamVRegs.size(); ++J) {
    if (J)
      Out += ", ";
    Out += vr(Proc.ParamVRegs[J]);
  }
  Out += ")";
  if (Proc.IsExternal)
    return Out + " external\n";
  if (Proc.IsMain)
    Out += " main";
  if (Proc.AddressTaken)
    Out += " addrtaken";
  if (Proc.Exported)
    Out += " exported";
  Out += " {\n";
  for (const auto &BB : Proc) {
    Out += bb(BB->id()) + ":";
    if (!BB->Preds.empty()) {
      Out += "  ; preds:";
      for (int P : BB->Preds)
        Out += " " + bb(P);
    }
    Out += "\n";
    for (const Instruction &I : BB->Insts)
      Out += "  " + toString(I) + "\n";
  }
  Out += "}\n";
  return Out;
}

std::string ipra::toString(const Module &M) {
  std::string Out;
  for (unsigned J = 0; J < M.Globals.size(); ++J) {
    const GlobalVar &G = M.Globals[J];
    Out += "global @" + std::to_string(J) + " " + G.Name + "[" +
           std::to_string(G.SizeWords) + "]\n";
  }
  for (const auto &Proc : M)
    Out += toString(*Proc);
  return Out;
}
