//===- ir/Printer.h - Textual IR dumping -----------------------*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef IPRA_IR_PRINTER_H
#define IPRA_IR_PRINTER_H

#include <string>

namespace ipra {

struct Instruction;
class Procedure;
class Module;

/// Renders one instruction, e.g. "%5 = add %3, %4".
std::string toString(const Instruction &Inst);

/// Renders a whole procedure with block labels and linkage flags.
std::string toString(const Procedure &Proc);

/// Renders globals followed by every procedure.
std::string toString(const Module &M);

} // namespace ipra

#endif // IPRA_IR_PRINTER_H
