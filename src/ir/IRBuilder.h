//===- ir/IRBuilder.h - Convenience IR construction ------------*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cursor-style builder that appends instructions to a basic block. Used
/// by the front end's lowering and by tests that construct IR by hand.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_IR_IRBUILDER_H
#define IPRA_IR_IRBUILDER_H

#include "ir/Procedure.h"

namespace ipra {

class IRBuilder {
public:
  explicit IRBuilder(Procedure *Proc) : Proc(Proc) {}

  Procedure *procedure() { return Proc; }

  void setInsertBlock(BasicBlock *Block) { BB = Block; }
  BasicBlock *insertBlock() { return BB; }

  VReg makeVReg() { return Proc->makeVReg(); }

  VReg binary(Opcode Op, VReg A, VReg B) {
    assert(Instruction(Op).isBinaryALU() && "not a binary ALU opcode");
    Instruction I(Op);
    I.Dst = makeVReg();
    I.Src1 = A;
    I.Src2 = B;
    return append(I).Dst;
  }

  VReg unary(Opcode Op, VReg A) {
    assert((Op == Opcode::Neg || Op == Opcode::Not) && "not a unary opcode");
    Instruction I(Op);
    I.Dst = makeVReg();
    I.Src1 = A;
    return append(I).Dst;
  }

  /// Emits a copy into a *specific* destination vreg (the way the non-SSA
  /// front end assigns user variables).
  void copyTo(VReg Dst, VReg Src) {
    Instruction I(Opcode::Copy);
    I.Dst = Dst;
    I.Src1 = Src;
    append(I);
  }

  VReg copy(VReg Src) {
    Instruction I(Opcode::Copy);
    I.Dst = makeVReg();
    I.Src1 = Src;
    return append(I).Dst;
  }

  VReg loadImm(int64_t Value) {
    Instruction I(Opcode::LoadImm);
    I.Dst = makeVReg();
    I.Imm = Value;
    return append(I).Dst;
  }

  void loadImmTo(VReg Dst, int64_t Value) {
    Instruction I(Opcode::LoadImm);
    I.Dst = Dst;
    I.Imm = Value;
    append(I);
  }

  VReg addImm(VReg A, int64_t Value) {
    Instruction I(Opcode::AddImm);
    I.Dst = makeVReg();
    I.Src1 = A;
    I.Imm = Value;
    return append(I).Dst;
  }

  VReg addrGlobal(int GlobalId) {
    Instruction I(Opcode::AddrGlobal);
    I.Dst = makeVReg();
    I.Global = GlobalId;
    return append(I).Dst;
  }

  VReg addrLocal(int FrameId) {
    Instruction I(Opcode::AddrLocal);
    I.Dst = makeVReg();
    I.Frame = FrameId;
    return append(I).Dst;
  }

  VReg loadGlobal(int GlobalId) {
    Instruction I(Opcode::LoadGlobal);
    I.Dst = makeVReg();
    I.Global = GlobalId;
    return append(I).Dst;
  }

  void storeGlobal(int GlobalId, VReg Value) {
    Instruction I(Opcode::StoreGlobal);
    I.Global = GlobalId;
    I.Src1 = Value;
    append(I);
  }

  VReg load(VReg Addr, int64_t Offset = 0) {
    Instruction I(Opcode::Load);
    I.Dst = makeVReg();
    I.Src1 = Addr;
    I.Imm = Offset;
    return append(I).Dst;
  }

  void store(VReg Addr, VReg Value, int64_t Offset = 0) {
    Instruction I(Opcode::Store);
    I.Src1 = Addr;
    I.Src2 = Value;
    I.Imm = Offset;
    append(I);
  }

  VReg funcAddr(int ProcId) {
    Instruction I(Opcode::FuncAddr);
    I.Dst = makeVReg();
    I.Callee = ProcId;
    return append(I).Dst;
  }

  /// Direct call. \p WantResult selects whether a result vreg is allocated.
  VReg call(int ProcId, const std::vector<VReg> &Args,
            bool WantResult = true) {
    Instruction I(Opcode::Call);
    I.Callee = ProcId;
    I.Args = Args;
    if (WantResult)
      I.Dst = makeVReg();
    return append(I).Dst;
  }

  VReg callIndirect(VReg Target, const std::vector<VReg> &Args,
                    bool WantResult = true) {
    Instruction I(Opcode::CallIndirect);
    I.Src1 = Target;
    I.Args = Args;
    if (WantResult)
      I.Dst = makeVReg();
    return append(I).Dst;
  }

  void ret(VReg Value = 0) {
    Instruction I(Opcode::Ret);
    I.Src1 = Value;
    append(I);
  }

  void br(BasicBlock *Target) {
    Instruction I(Opcode::Br);
    I.Target1 = Target->id();
    append(I);
  }

  void condBr(VReg Cond, BasicBlock *TrueBB, BasicBlock *FalseBB) {
    Instruction I(Opcode::CondBr);
    I.Src1 = Cond;
    I.Target1 = TrueBB->id();
    I.Target2 = FalseBB->id();
    append(I);
  }

  void print(VReg Value) {
    Instruction I(Opcode::Print);
    I.Src1 = Value;
    append(I);
  }

private:
  Instruction &append(Instruction I) {
    assert(BB && "no insertion block set");
    assert(!BB->hasTerminator() && "appending past a terminator");
    BB->Insts.push_back(std::move(I));
    return BB->Insts.back();
  }

  Procedure *Proc;
  BasicBlock *BB = nullptr;
};

} // namespace ipra

#endif // IPRA_IR_IRBUILDER_H
