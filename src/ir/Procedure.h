//===- ir/Procedure.h - Basic blocks, procedures, modules ------*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Containers of the IR: BasicBlock, Procedure (with frame objects and the
/// open/closed-relevant linkage flags), GlobalVar and Module.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_IR_PROCEDURE_H
#define IPRA_IR_PROCEDURE_H

#include "ir/Instruction.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace ipra {

/// A straight-line sequence of instructions ending in one terminator.
class BasicBlock {
public:
  BasicBlock(int Id) : Id(Id) {}

  int id() const { return Id; }

  std::vector<Instruction> Insts;

  /// Predecessor block ids; filled by Procedure::recomputeCFG().
  std::vector<int> Preds;

  /// Estimated execution frequency (relative, loop-nesting based); filled by
  /// analysis::estimateFrequencies. Used by allocation priorities.
  double Freq = 1.0;

  /// Loop nesting depth; filled alongside Freq.
  int LoopDepth = 0;

  friend class Procedure;

  const Instruction &terminator() const {
    assert(!Insts.empty() && Insts.back().isTerminator() &&
           "block has no terminator");
    return Insts.back();
  }

  bool hasTerminator() const {
    return !Insts.empty() && Insts.back().isTerminator();
  }

  /// Successor block ids in branch order (taken target first).
  std::vector<int> successors() const {
    const Instruction &T = terminator();
    switch (T.Op) {
    case Opcode::Ret:
      return {};
    case Opcode::Br:
      return {T.Target1};
    case Opcode::CondBr:
      return {T.Target1, T.Target2};
    default:
      assert(false && "invalid terminator");
      return {};
    }
  }

private:
  int Id;
};

/// A stack-allocated aggregate (local array) of a procedure.
struct FrameObject {
  std::string Name;
  int64_t SizeWords = 0;
};

/// A procedure: CFG + parameters + frame + linkage flags. The linkage flags
/// feed the paper's open/closed classification (Section 3): a procedure is
/// open when a caller is unknown or already processed.
class Procedure {
public:
  Procedure(std::string Name, int Id) : Name(std::move(Name)), Id(Id) {}

  const std::string &name() const { return Name; }
  int id() const { return Id; }

  /// Parameter virtual registers; params arrive pre-set in these vregs.
  std::vector<VReg> ParamVRegs;

  /// One past the highest virtual register id in use.
  VReg NumVRegs = 1;

  /// Local aggregates.
  std::vector<FrameObject> FrameObjects;

  /// True for declarations without a body (library/externals).
  bool IsExternal = false;
  /// True if the procedure's address is taken (may be called indirectly).
  bool AddressTaken = false;
  /// True if visible to other compilation units (unknown external callers).
  bool Exported = false;
  /// True for the program entry; always open (called by the OS).
  bool IsMain = false;

  VReg makeVReg() { return NumVRegs++; }

  BasicBlock *makeBlock() {
    Blocks.push_back(std::make_unique<BasicBlock>(int(Blocks.size())));
    return Blocks.back().get();
  }

  BasicBlock *entry() {
    assert(!Blocks.empty() && "procedure has no blocks");
    return Blocks.front().get();
  }
  const BasicBlock *entry() const {
    assert(!Blocks.empty() && "procedure has no blocks");
    return Blocks.front().get();
  }

  BasicBlock *block(int Id) {
    assert(Id >= 0 && Id < int(Blocks.size()) && "block id out of range");
    return Blocks[Id].get();
  }
  const BasicBlock *block(int Id) const {
    assert(Id >= 0 && Id < int(Blocks.size()) && "block id out of range");
    return Blocks[Id].get();
  }

  unsigned numBlocks() const { return Blocks.size(); }

  /// Iteration over blocks in id order.
  auto begin() { return Blocks.begin(); }
  auto end() { return Blocks.end(); }
  auto begin() const { return Blocks.begin(); }
  auto end() const { return Blocks.end(); }

  int makeFrameObject(std::string ObjName, int64_t SizeWords) {
    FrameObjects.push_back({std::move(ObjName), SizeWords});
    return int(FrameObjects.size()) - 1;
  }

  /// Recomputes predecessor lists from the terminators.
  void recomputeCFG();

  /// Replaces this procedure's entire body -- blocks (including their
  /// predecessor lists, frequencies and loop depths), virtual-register
  /// count, parameter vregs, frame objects and linkage flags -- with a
  /// deep copy of \p Src's. Name and id are untouched. The incremental
  /// compile service uses this to graft a cached post-optimization body
  /// onto a freshly parsed module when the procedure is proven unchanged.
  void adoptBodyOf(const Procedure &Src);

  /// Drops every block whose \p Keep entry is false, renumbers the
  /// survivors, and rewrites branch targets. The entry block must be kept.
  /// \returns the number of blocks removed.
  unsigned removeBlocks(const std::vector<char> &Keep);

  /// \returns block ids in reverse post-order from the entry.
  std::vector<int> reversePostOrder() const;

  /// \returns total instruction count (size metric for reports).
  unsigned instructionCount() const;

private:
  std::string Name;
  int Id;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
};

/// A module-level variable. SizeWords == 1 scalars are register-allocation
/// candidates accessed via LoadGlobal/StoreGlobal; larger objects are data
/// arrays accessed through AddrGlobal + Load/Store.
struct GlobalVar {
  std::string Name;
  int64_t SizeWords = 1;
  std::vector<int64_t> Init; // missing entries are zero
};

/// A translation unit (or, after linking, the whole program).
class Module {
public:
  Procedure *makeProcedure(const std::string &Name) {
    assert(!ProcByName.count(Name) && "duplicate procedure name");
    Procs.push_back(std::make_unique<Procedure>(Name, int(Procs.size())));
    ProcByName[Name] = Procs.back().get();
    return Procs.back().get();
  }

  int makeGlobal(const std::string &Name, int64_t SizeWords = 1) {
    Globals.push_back({Name, SizeWords, {}});
    return int(Globals.size()) - 1;
  }

  Procedure *findProcedure(const std::string &Name) {
    auto It = ProcByName.find(Name);
    return It == ProcByName.end() ? nullptr : It->second;
  }

  Procedure *procedure(int Id) {
    assert(Id >= 0 && Id < int(Procs.size()) && "procedure id out of range");
    return Procs[Id].get();
  }
  const Procedure *procedure(int Id) const {
    assert(Id >= 0 && Id < int(Procs.size()) && "procedure id out of range");
    return Procs[Id].get();
  }

  unsigned numProcedures() const { return Procs.size(); }

  auto begin() { return Procs.begin(); }
  auto end() { return Procs.end(); }
  auto begin() const { return Procs.begin(); }
  auto end() const { return Procs.end(); }

  std::vector<GlobalVar> Globals;

private:
  std::vector<std::unique_ptr<Procedure>> Procs;
  std::unordered_map<std::string, Procedure *> ProcByName;
};

} // namespace ipra

#endif // IPRA_IR_PROCEDURE_H
