//===- ir/Verifier.cpp -----------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/Printer.h"
#include "ir/Procedure.h"

#include <algorithm>

using namespace ipra;

namespace {

class VerifierImpl {
public:
  VerifierImpl(const Procedure &Proc, const Module &M, DiagnosticEngine &Diags)
      : Proc(Proc), M(M), Diags(Diags) {}

  bool run() {
    if (Proc.IsExternal) {
      if (Proc.numBlocks() != 0)
        fail("external procedure has a body");
      return OK;
    }
    if (Proc.numBlocks() == 0) {
      fail("procedure has no blocks");
      return OK;
    }
    for (VReg P : Proc.ParamVRegs)
      checkVReg(P, "parameter");
    for (const auto &BB : Proc)
      verifyBlock(*BB);
    return OK;
  }

private:
  void fail(const std::string &Message) {
    Diags.error("in " + Proc.name() + ": " + Message);
    OK = false;
  }

  void checkVReg(VReg R, const char *What) {
    if (R == 0 || R >= Proc.NumVRegs)
      fail(std::string(What) + " vreg %" + std::to_string(R) +
           " out of range");
  }

  void checkTarget(int Id) {
    if (Id < 0 || Id >= int(Proc.numBlocks()))
      fail("branch target bb" + std::to_string(Id) + " out of range");
  }

  void verifyBlock(const BasicBlock &BB) {
    if (!BB.hasTerminator()) {
      fail("bb" + std::to_string(BB.id()) + " lacks a terminator");
      return;
    }
    for (unsigned J = 0; J + 1 < BB.Insts.size(); ++J)
      if (BB.Insts[J].isTerminator())
        fail("bb" + std::to_string(BB.id()) +
             " has a terminator before the end: " + toString(BB.Insts[J]));
    for (const Instruction &I : BB.Insts)
      verifyInst(I);
  }

  void verifyInst(const Instruction &I) {
    if (VReg D = I.def())
      checkVReg(D, "defined");
    I.forEachUse([this](VReg R) { checkVReg(R, "used"); });
    switch (I.Op) {
    case Opcode::AddrGlobal:
    case Opcode::LoadGlobal:
    case Opcode::StoreGlobal:
      if (I.Global < 0 || I.Global >= int(M.Globals.size()))
        fail("global id out of range in: " + toString(I));
      else if (I.Op != Opcode::AddrGlobal &&
               M.Globals[I.Global].SizeWords != 1)
        fail("scalar access to aggregate global in: " + toString(I));
      break;
    case Opcode::AddrLocal:
      if (I.Frame < 0 || I.Frame >= int(Proc.FrameObjects.size()))
        fail("frame id out of range in: " + toString(I));
      break;
    case Opcode::Call:
    case Opcode::FuncAddr: {
      if (I.Callee < 0 || I.Callee >= int(M.numProcedures())) {
        fail("callee id out of range in: " + toString(I));
        break;
      }
      const Procedure *Callee = M.procedure(I.Callee);
      if (I.Op == Opcode::Call &&
          I.Args.size() != Callee->ParamVRegs.size() && !Callee->IsExternal)
        fail("arity mismatch calling " + Callee->name() + ": " + toString(I));
      if (I.Op == Opcode::FuncAddr && !Callee->AddressTaken)
        fail("funcaddr of " + Callee->name() + " not marked address-taken");
      break;
    }
    case Opcode::Br:
      checkTarget(I.Target1);
      break;
    case Opcode::CondBr:
      checkTarget(I.Target1);
      checkTarget(I.Target2);
      break;
    default:
      break;
    }
  }

  const Procedure &Proc;
  const Module &M;
  DiagnosticEngine &Diags;
  bool OK = true;
};

} // namespace

bool ipra::verify(const Procedure &Proc, const Module &M,
                  DiagnosticEngine &Diags) {
  return VerifierImpl(Proc, M, Diags).run();
}

bool ipra::verify(const Module &M, DiagnosticEngine &Diags) {
  bool OK = true;
  for (const auto &Proc : M)
    OK &= verify(*Proc, M, Diags);
  return OK;
}

bool ipra::verifyOpenClosed(const Module &M, const std::vector<char> &Open,
                            DiagnosticEngine &Diags) {
  unsigned N = M.numProcedures();
  if (Open.size() != N) {
    Diags.error("open/closed classification covers " +
                std::to_string(Open.size()) + " of " + std::to_string(N) +
                " procedures");
    return false;
  }

  // Direct call edges and FuncAddr references, straight off the IR.
  std::vector<std::vector<int>> Callees(N);
  std::vector<char> Referenced(N, 0);
  for (unsigned P = 0; P < N; ++P) {
    for (const auto &BB : *M.procedure(int(P))) {
      for (const Instruction &I : BB->Insts) {
        if (I.Op == Opcode::Call) {
          if (I.Callee >= 0 && I.Callee < int(N))
            Callees[P].push_back(I.Callee);
        } else if (I.Op == Opcode::FuncAddr) {
          if (I.Callee >= 0 && I.Callee < int(N))
            Referenced[I.Callee] = 1;
        }
      }
    }
  }

  // Cycle membership, recomputed independently of the call-graph pass:
  // a procedure is on a cycle exactly when it can reach itself through
  // at least one direct-call edge (per-node reachability instead of an
  // SCC pass, so the two computations share no code).
  std::vector<char> OnCycle(N, 0);
  std::vector<char> Seen(N);
  std::vector<int> Work;
  for (unsigned P = 0; P < N; ++P) {
    std::fill(Seen.begin(), Seen.end(), 0);
    Work.assign(Callees[P].begin(), Callees[P].end());
    while (!Work.empty()) {
      int V = Work.back();
      Work.pop_back();
      if (Seen[V])
        continue;
      Seen[V] = 1;
      if (V == int(P)) {
        OnCycle[P] = 1;
        break;
      }
      for (int W : Callees[V])
        if (!Seen[W])
          Work.push_back(W);
    }
  }

  bool OK = true;
  for (unsigned P = 0; P < N; ++P) {
    const Procedure *Proc = M.procedure(int(P));
    bool Expected = Proc->IsMain || Proc->Exported || Proc->IsExternal ||
                    Proc->AddressTaken || Referenced[P] || OnCycle[P];
    if (bool(Open[P]) != Expected) {
      Diags.error("procedure '" + Proc->name() + "' classified " +
                  (Open[P] ? "open" : "closed") + " but should be " +
                  (Expected ? "open" : "closed"));
      OK = false;
    }
  }
  return OK;
}
