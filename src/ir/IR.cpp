//===- ir/IR.cpp - IR container implementations ---------------------------===//

#include "ir/Procedure.h"

#include <algorithm>

using namespace ipra;

const char *ipra::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::CmpEq:
    return "cmpeq";
  case Opcode::CmpNe:
    return "cmpne";
  case Opcode::CmpLt:
    return "cmplt";
  case Opcode::CmpLe:
    return "cmple";
  case Opcode::CmpGt:
    return "cmpgt";
  case Opcode::CmpGe:
    return "cmpge";
  case Opcode::Neg:
    return "neg";
  case Opcode::Not:
    return "not";
  case Opcode::Copy:
    return "copy";
  case Opcode::LoadImm:
    return "loadimm";
  case Opcode::AddImm:
    return "addimm";
  case Opcode::AddrGlobal:
    return "addrglobal";
  case Opcode::AddrLocal:
    return "addrlocal";
  case Opcode::LoadGlobal:
    return "loadglobal";
  case Opcode::StoreGlobal:
    return "storeglobal";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::FuncAddr:
    return "funcaddr";
  case Opcode::Call:
    return "call";
  case Opcode::CallIndirect:
    return "calli";
  case Opcode::Ret:
    return "ret";
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "condbr";
  case Opcode::Print:
    return "print";
  }
  return "<bad-opcode>";
}

void Procedure::recomputeCFG() {
  for (auto &BB : Blocks)
    BB->Preds.clear();
  for (auto &BB : Blocks)
    for (int Succ : BB->successors())
      Blocks[Succ]->Preds.push_back(BB->id());
}

void Procedure::adoptBodyOf(const Procedure &Src) {
  ParamVRegs = Src.ParamVRegs;
  NumVRegs = Src.NumVRegs;
  FrameObjects = Src.FrameObjects;
  IsExternal = Src.IsExternal;
  AddressTaken = Src.AddressTaken;
  Exported = Src.Exported;
  IsMain = Src.IsMain;
  Blocks.clear();
  for (const auto &SB : Src.Blocks) {
    Blocks.push_back(std::make_unique<BasicBlock>(SB->id()));
    BasicBlock &B = *Blocks.back();
    B.Insts = SB->Insts;
    B.Preds = SB->Preds;
    B.Freq = SB->Freq;
    B.LoopDepth = SB->LoopDepth;
  }
}

std::vector<int> Procedure::reversePostOrder() const {
  std::vector<int> Order;
  if (Blocks.empty())
    return Order;
  std::vector<char> Visited(Blocks.size(), 0);
  // Iterative post-order DFS.
  std::vector<std::pair<int, unsigned>> Stack;
  Stack.push_back({0, 0});
  Visited[0] = 1;
  std::vector<std::vector<int>> Succs(Blocks.size());
  for (auto &BB : Blocks)
    Succs[BB->id()] = BB->successors();
  while (!Stack.empty()) {
    auto &[Node, NextSucc] = Stack.back();
    if (NextSucc < Succs[Node].size()) {
      int S = Succs[Node][NextSucc++];
      if (!Visited[S]) {
        Visited[S] = 1;
        Stack.push_back({S, 0});
      }
    } else {
      Order.push_back(Node);
      Stack.pop_back();
    }
  }
  std::reverse(Order.begin(), Order.end());
  return Order;
}

unsigned Procedure::removeBlocks(const std::vector<char> &Keep) {
  assert(Keep.size() == Blocks.size() && "keep mask size mismatch");
  assert(Keep[0] && "cannot remove the entry block");
  std::vector<int> NewId(Blocks.size(), -1);
  int Next = 0;
  for (unsigned I = 0; I < Blocks.size(); ++I)
    if (Keep[I])
      NewId[I] = Next++;

  unsigned Removed = Blocks.size() - unsigned(Next);
  if (Removed == 0)
    return 0;

  std::vector<std::unique_ptr<BasicBlock>> Survivors;
  Survivors.reserve(Next);
  for (unsigned I = 0; I < Blocks.size(); ++I) {
    if (!Keep[I])
      continue;
    Blocks[I]->Id = NewId[I];
    for (Instruction &Inst : Blocks[I]->Insts) {
      if (Inst.Target1 >= 0) {
        assert(NewId[Inst.Target1] >= 0 && "branch into removed block");
        Inst.Target1 = NewId[Inst.Target1];
      }
      if (Inst.Target2 >= 0) {
        assert(NewId[Inst.Target2] >= 0 && "branch into removed block");
        Inst.Target2 = NewId[Inst.Target2];
      }
    }
    Survivors.push_back(std::move(Blocks[I]));
  }
  Blocks = std::move(Survivors);
  recomputeCFG();
  return Removed;
}

unsigned Procedure::instructionCount() const {
  unsigned N = 0;
  for (const auto &BB : Blocks)
    N += BB->Insts.size();
  return N;
}
