//===- ir/Verifier.h - IR well-formedness checks ---------------*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef IPRA_IR_VERIFIER_H
#define IPRA_IR_VERIFIER_H

#include "support/Diagnostics.h"

#include <vector>

namespace ipra {

class Module;
class Procedure;

/// Checks structural invariants of \p Proc (terminators, target/operand
/// ranges, frame ids). \returns true if no errors were reported.
bool verify(const Procedure &Proc, const Module &M, DiagnosticEngine &Diags);

/// Verifies every procedure with a body, plus module-level invariants
/// (call target arities, global ids). \returns true on success.
bool verify(const Module &M, DiagnosticEngine &Diags);

/// Cross-checks an open/closed classification (one flag per procedure,
/// e.g. collected from CallGraph::isOpen) against an independent
/// recomputation from first principles: a procedure must be open exactly
/// when it is main, exported, address-taken (flagged or actually
/// referenced by a FuncAddr), external, or on a direct-call cycle.
/// \returns true when the classification matches everywhere.
bool verifyOpenClosed(const Module &M, const std::vector<char> &Open,
                      DiagnosticEngine &Diags);

} // namespace ipra

#endif // IPRA_IR_VERIFIER_H
