//===- ir/Instruction.h - Three-address IR instructions --------*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The non-SSA three-address intermediate representation. It plays the role
/// of Ucode in the paper's MIPS compiler suite: an unbounded supply of
/// virtual registers over a control-flow graph, with explicit call/return
/// and word-addressed memory. Priority-based coloring maps virtual
/// registers onto the machine register file.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_IR_INSTRUCTION_H
#define IPRA_IR_INSTRUCTION_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace ipra {

/// A virtual register id. 0 is the invalid/absent register; real virtual
/// registers are numbered from 1.
using VReg = unsigned;

/// Classification of a memory access for the pixie-style counters. The paper
/// separates "scalar loads/stores" (scalar variables, common subexpressions,
/// register saves/restores -- everything a perfect register allocator could
/// remove) from data traffic through arrays and pointers.
enum class MemKind { Scalar, Data };

enum class Opcode {
  // Arithmetic / logic, Dst = Src1 op Src2.
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  // Comparisons producing 0/1 in Dst.
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
  // Unary, Dst = op Src1.
  Neg,
  Not,
  Copy,
  // Dst = Imm.
  LoadImm,
  // Dst = Src1 + Imm.
  AddImm,
  // Dst = word address of global object #Global.
  AddrGlobal,
  // Dst = word address of frame object #Frame.
  AddrLocal,
  // Dst = value of scalar global #Global (a MemKind::Scalar access).
  LoadGlobal,
  // scalar global #Global = Src1.
  StoreGlobal,
  // Dst = mem[Src1 + Imm] (a MemKind::Data access).
  Load,
  // mem[Src1 + Imm] = Src2.
  Store,
  // Dst = "address" of procedure #Callee (for indirect calls).
  FuncAddr,
  // Dst(optional) = call procedure #Callee(Args).
  Call,
  // Dst(optional) = call *Src1(Args).
  CallIndirect,
  // Return Src1 (optional; 0 means no value).
  Ret,
  // Unconditional jump to block #Target1.
  Br,
  // If Src1 != 0 jump to #Target1 else #Target2.
  CondBr,
  // Observable output of Src1; keeps benchmark results alive.
  Print
};

/// \returns a stable mnemonic for \p Op (used by the printer and tests).
const char *opcodeName(Opcode Op);

/// One IR instruction. A plain struct: passes mutate instruction lists
/// freely and the simulator never sees this level (it runs machine code).
struct Instruction {
  Opcode Op;
  VReg Dst = 0;
  VReg Src1 = 0;
  VReg Src2 = 0;
  /// Immediate: LoadImm/AddImm value, Load/Store word offset, ...
  int64_t Imm = 0;
  /// Global object id for AddrGlobal/LoadGlobal/StoreGlobal.
  int Global = -1;
  /// Frame object id for AddrLocal.
  int Frame = -1;
  /// Procedure id for Call/FuncAddr.
  int Callee = -1;
  /// Branch targets (block ids within the procedure).
  int Target1 = -1;
  int Target2 = -1;
  /// Call arguments.
  std::vector<VReg> Args;

  Instruction() : Op(Opcode::Copy) {}
  explicit Instruction(Opcode Op) : Op(Op) {}

  bool isTerminator() const {
    return Op == Opcode::Ret || Op == Opcode::Br || Op == Opcode::CondBr;
  }
  bool isCall() const {
    return Op == Opcode::Call || Op == Opcode::CallIndirect;
  }
  bool isBinaryALU() const {
    return Op >= Opcode::Add && Op <= Opcode::CmpGe;
  }

  /// \returns the virtual register defined by this instruction, or 0.
  VReg def() const {
    switch (Op) {
    case Opcode::StoreGlobal:
    case Opcode::Store:
    case Opcode::Ret:
    case Opcode::Br:
    case Opcode::CondBr:
    case Opcode::Print:
      return 0;
    default:
      return Dst;
    }
  }

  /// Invokes \p Fn for every virtual register read by this instruction.
  template <typename CallableT> void forEachUse(CallableT Fn) const {
    switch (Op) {
    case Opcode::LoadImm:
    case Opcode::AddrGlobal:
    case Opcode::AddrLocal:
    case Opcode::LoadGlobal:
    case Opcode::FuncAddr:
    case Opcode::Br:
      break;
    case Opcode::StoreGlobal:
    case Opcode::Neg:
    case Opcode::Not:
    case Opcode::Copy:
    case Opcode::AddImm:
    case Opcode::Load:
    case Opcode::CondBr:
    case Opcode::Print:
      if (Src1)
        Fn(Src1);
      break;
    case Opcode::Store:
      if (Src1)
        Fn(Src1);
      if (Src2)
        Fn(Src2);
      break;
    case Opcode::Ret:
      if (Src1)
        Fn(Src1);
      break;
    case Opcode::Call:
      break;
    case Opcode::CallIndirect:
      if (Src1)
        Fn(Src1);
      break;
    default:
      assert(isBinaryALU() && "unhandled opcode in forEachUse");
      if (Src1)
        Fn(Src1);
      if (Src2)
        Fn(Src2);
      break;
    }
    if (isCall())
      for (VReg Arg : Args)
        Fn(Arg);
  }

  /// Collects forEachUse results into a vector (convenience for tests).
  std::vector<VReg> uses() const {
    std::vector<VReg> Out;
    forEachUse([&Out](VReg R) { Out.push_back(R); });
    return Out;
  }
};

} // namespace ipra

#endif // IPRA_IR_INSTRUCTION_H
