//===- target/Machine.cpp --------------------------------------------------===//

#include "target/Machine.h"

#include <cassert>
#include <cstdlib>

using namespace ipra;

const char *ipra::regName(unsigned Reg) {
  static const char *Names[NumPhysRegs] = {
      "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3", "$t0",
      "$t1",   "$t2", "$t3", "$t4", "$t5", "$t6", "$s0", "$s1", "$s2",
      "$s3",   "$s4", "$s5", "$s6", "$s7", "$s8", "$sp", "$ra"};
  return Reg < NumPhysRegs ? Names[Reg] : "$?";
}

int ipra::regByName(const std::string &Name) {
  std::string Bare = Name;
  if (!Bare.empty() && Bare[0] == '$')
    Bare = Bare.substr(1);
  for (unsigned Reg = 0; Reg < NumPhysRegs; ++Reg)
    if (Bare == regName(Reg) + 1)
      return static_cast<int>(Reg);
  return -1;
}

//===----------------------------------------------------------------------===//
// ConventionSpec
//===----------------------------------------------------------------------===//

ConventionSpec::ConventionSpec() {
  CalleeSaved.resize(NumPhysRegs);
  Reserved.resize(NumPhysRegs);
}

BitVector ConventionSpec::pool() {
  BitVector P;
  P.resize(NumPhysRegs);
  for (unsigned Reg = AllocPoolFirst; Reg <= AllocPoolLast; ++Reg)
    P.set(Reg);
  return P;
}

ConventionSpec ConventionSpec::defaultSpec() {
  ConventionSpec S;
  for (unsigned Reg = RegS0; Reg <= RegS8; ++Reg)
    S.CalleeSaved.set(Reg);
  S.ParamRegs = {RegA0, RegA1, RegA2, RegA3};
  return S;
}

ConventionSpec ConventionSpec::forRestriction(RegSetRestriction R) {
  return defaultSpec().restricted(R);
}

ConventionSpec ConventionSpec::restricted(RegSetRestriction R) const {
  ConventionSpec S = *this;
  BitVector Kept;
  Kept.resize(NumPhysRegs);
  switch (R) {
  case RegSetRestriction::None:
    return S;
  case RegSetRestriction::CallerOnly7:
    for (unsigned Reg : {RegA0, RegA1, RegA2, RegA3, RegT0, RegT1, RegT2})
      Kept.set(Reg);
    break;
  case RegSetRestriction::CalleeOnly7:
    for (unsigned Reg = RegS0; Reg <= RegS6; ++Reg)
      Kept.set(Reg);
    break;
  }
  BitVector Outside = pool();
  Outside.andNot(Kept);
  S.Reserved |= Outside;
  return S;
}

bool ConventionSpec::validate(std::string *Err) const {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  if (CalleeSaved.size() != NumPhysRegs || Reserved.size() != NumPhysRegs)
    return Fail("convention masks must be sized to the register file");
  const BitVector Pool = pool();
  if (!CalleeSaved.isSubsetOf(Pool))
    return Fail("callee-saved set must lie inside the allocatable pool");
  if (!Reserved.isSubsetOf(Pool))
    return Fail("reserved set must lie inside the allocatable pool");
  BitVector Seen;
  Seen.resize(NumPhysRegs);
  for (unsigned Reg : ParamRegs) {
    if (Reg >= NumPhysRegs || !Pool.test(Reg))
      return Fail("parameter register outside the allocatable pool");
    if (CalleeSaved.test(Reg))
      return Fail(std::string("parameter register ") + regName(Reg) +
                  " must be caller-saved");
    if (Seen.test(Reg))
      return Fail(std::string("duplicate parameter register ") + regName(Reg));
    Seen.set(Reg);
  }
  return true;
}

namespace {

/// Splits \p Text on \p Sep, keeping empty pieces.
std::vector<std::string> splitOn(const std::string &Text, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (true) {
    size_t End = Text.find(Sep, Start);
    Parts.push_back(Text.substr(Start, End - Start));
    if (End == std::string::npos)
      return Parts;
    Start = End + 1;
  }
}

bool parseCount(const std::string &Text, unsigned Max, unsigned &Out,
                std::string &Err) {
  if (Text.empty()) {
    Err = "empty count";
    return false;
  }
  unsigned Value = 0;
  for (char C : Text) {
    if (C < '0' || C > '9') {
      Err = "malformed count '" + Text + "'";
      return false;
    }
    Value = Value * 10 + static_cast<unsigned>(C - '0');
    if (Value > Max) {
      Err = "count '" + Text + "' exceeds " + std::to_string(Max);
      return false;
    }
  }
  Out = Value;
  return true;
}

/// Parses a comma-separated list of register names and ranges ("a0,t1-t3")
/// in listed order into \p Out (duplicates preserved for the caller to
/// diagnose). An empty string is the empty list.
bool parseRegList(const std::string &Text, std::vector<unsigned> &Out,
                  std::string &Err) {
  if (Text.empty())
    return true;
  for (const std::string &Item : splitOn(Text, ',')) {
    size_t Dash = Item.find('-');
    if (Dash == std::string::npos) {
      int Reg = regByName(Item);
      if (Reg < 0) {
        Err = "unknown register '" + Item + "'";
        return false;
      }
      Out.push_back(static_cast<unsigned>(Reg));
      continue;
    }
    int Lo = regByName(Item.substr(0, Dash));
    int Hi = regByName(Item.substr(Dash + 1));
    if (Lo < 0 || Hi < 0 || Lo > Hi) {
      Err = "malformed register range '" + Item + "'";
      return false;
    }
    for (int Reg = Lo; Reg <= Hi; ++Reg)
      Out.push_back(static_cast<unsigned>(Reg));
  }
  return true;
}

/// First \p Count caller-saved pool registers in pool order: the default
/// parameter assignment for both spellings.
std::vector<unsigned> leadingCallerSaved(const BitVector &CalleeSaved,
                                         unsigned Count) {
  std::vector<unsigned> Params;
  for (unsigned Reg = AllocPoolFirst;
       Reg <= AllocPoolLast && Params.size() < Count; ++Reg)
    if (!CalleeSaved.test(Reg))
      Params.push_back(Reg);
  return Params;
}

bool parseShortForm(const std::string &Text, ConventionSpec &Out,
                    std::string &Err) {
  bool HaveS = false, HaveP = false, HaveR = false;
  unsigned NumCallee = 0, NumParams = 0, NumReserved = 0;
  for (const std::string &Field : splitOn(Text, ',')) {
    if (Field.size() < 2 || Field[1] != ':') {
      Err = "malformed field '" + Field + "' (want s:N, p:N or r:N)";
      return false;
    }
    bool *Have;
    unsigned *Value;
    unsigned Max = AllocPoolSize;
    switch (Field[0]) {
    case 's':
      Have = &HaveS;
      Value = &NumCallee;
      break;
    case 'p':
      Have = &HaveP;
      Value = &NumParams;
      break;
    case 'r':
      Have = &HaveR;
      Value = &NumReserved;
      break;
    default:
      Err = "unknown field '" + Field + "' (want s:N, p:N or r:N)";
      return false;
    }
    if (*Have) {
      Err = std::string("duplicate field '") + Field[0] + "'";
      return false;
    }
    *Have = true;
    if (!parseCount(Field.substr(2), Max, *Value, Err))
      return false;
  }
  if (!HaveS) {
    Err = "short form needs the callee-saved count (s:N)";
    return false;
  }
  Out = ConventionSpec();
  // The last NumCallee pool registers are callee-saved; s:9 is s0-s8.
  for (unsigned I = 0; I < NumCallee; ++I)
    Out.CalleeSaved.set(AllocPoolLast - I);
  for (unsigned I = 0; I < NumReserved; ++I)
    Out.Reserved.set(AllocPoolLast - I);
  unsigned NumCaller = AllocPoolSize - NumCallee;
  if (!HaveP)
    NumParams = NumCaller < 4 ? NumCaller : 4;
  if (NumParams > NumCaller) {
    Err = "p:" + std::to_string(NumParams) + " exceeds the " +
          std::to_string(NumCaller) + " caller-saved registers";
    return false;
  }
  Out.ParamRegs = leadingCallerSaved(Out.CalleeSaved, NumParams);
  return true;
}

bool parseLongForm(const std::string &Text, ConventionSpec &Out,
                   std::string &Err) {
  bool HaveCallee = false, HaveParams = false, HaveReserved = false;
  std::vector<unsigned> Callee, Params, ReservedList;
  for (const std::string &Field : splitOn(Text, ';')) {
    size_t Eq = Field.find('=');
    if (Eq == std::string::npos) {
      Err = "malformed field '" + Field + "' (want key=list)";
      return false;
    }
    std::string Key = Field.substr(0, Eq), Value = Field.substr(Eq + 1);
    bool *Have;
    std::vector<unsigned> *List;
    if (Key == "callee") {
      Have = &HaveCallee;
      List = &Callee;
    } else if (Key == "params") {
      Have = &HaveParams;
      List = &Params;
    } else if (Key == "reserved") {
      Have = &HaveReserved;
      List = &ReservedList;
    } else {
      Err = "unknown field '" + Key + "'";
      return false;
    }
    if (*Have) {
      Err = "duplicate field '" + Key + "'";
      return false;
    }
    *Have = true;
    if (!parseRegList(Value, *List, Err))
      return false;
  }
  if (!HaveCallee) {
    Err = "explicit form needs a callee= field";
    return false;
  }
  Out = ConventionSpec();
  for (unsigned Reg : Callee)
    Out.CalleeSaved.set(Reg);
  for (unsigned Reg : ReservedList)
    Out.Reserved.set(Reg);
  if (HaveParams)
    Out.ParamRegs = Params;
  else {
    unsigned NumCaller = AllocPoolSize - Out.CalleeSaved.count();
    Out.ParamRegs =
        leadingCallerSaved(Out.CalleeSaved, NumCaller < 4 ? NumCaller : 4);
  }
  return true;
}

/// Prints a mask as compact name ranges: "a0-a3,t2".
std::string rangeList(const BitVector &Mask) {
  std::string Out;
  for (int Reg = Mask.findFirst(); Reg >= 0;) {
    int End = Reg;
    while (Mask.findNext(End) == End + 1)
      ++End;
    if (!Out.empty())
      Out += ',';
    Out += regName(Reg) + 1;
    if (End > Reg)
      Out += std::string("-") + (regName(End) + 1);
    Reg = Mask.findNext(End);
  }
  return Out;
}

} // namespace

bool ConventionSpec::parse(const std::string &Text, ConventionSpec &Out,
                           std::string &Err) {
  if (Text.empty()) {
    Err = "empty convention spec";
    return false;
  }
  bool Ok = Text.find('=') == std::string::npos
                ? parseShortForm(Text, Out, Err)
                : parseLongForm(Text, Out, Err);
  return Ok && Out.validate(&Err);
}

std::string ConventionSpec::str() const {
  // Expressible in the short form when the callee-saved and reserved sets
  // are suffixes of the pool and the parameters are the leading
  // caller-saved registers in pool order.
  unsigned NumCallee = CalleeSaved.count(), NumReserved = Reserved.count();
  bool Short = true;
  for (unsigned I = 0; I < NumCallee && Short; ++I)
    Short = CalleeSaved.test(AllocPoolLast - I);
  for (unsigned I = 0; I < NumReserved && Short; ++I)
    Short = Reserved.test(AllocPoolLast - I);
  if (Short)
    Short = ParamRegs ==
            leadingCallerSaved(CalleeSaved, (unsigned)ParamRegs.size());
  if (Short) {
    std::string Out = "s:" + std::to_string(NumCallee) +
                      ",p:" + std::to_string(ParamRegs.size());
    if (NumReserved)
      Out += ",r:" + std::to_string(NumReserved);
    return Out;
  }
  std::string Out = "callee=" + rangeList(CalleeSaved) + ";params=";
  for (unsigned I = 0; I < ParamRegs.size(); ++I) {
    if (I)
      Out += ',';
    Out += regName(ParamRegs[I]) + 1;
  }
  if (Reserved.count())
    Out += ";reserved=" + rangeList(Reserved);
  return Out;
}

//===----------------------------------------------------------------------===//
// MachineDesc
//===----------------------------------------------------------------------===//

MachineDesc::MachineDesc(RegSetRestriction R)
    : Spec(ConventionSpec::forRestriction(R)) {
  initFromSpec();
}

MachineDesc::MachineDesc(const ConventionSpec &S) : Spec(S) { initFromSpec(); }

void MachineDesc::initFromSpec() {
  std::string Err;
  if (!Spec.validate(&Err)) {
    // Constructing a machine from an invalid spec is a programming error:
    // every entry point validates before it gets here.
    assert(false && "invalid ConventionSpec");
    (void)Err;
    std::abort();
  }
  const BitVector Pool = ConventionSpec::pool();
  CalleeSavedRegs = Spec.CalleeSaved;
  CallerSavedRegs = Pool;
  CallerSavedRegs.andNot(CalleeSavedRegs);
  Alloc = Pool;
  Alloc.andNot(Spec.Reserved);

  DefaultClobberMask = CallerSavedRegs;
  DefaultClobberMask.set(RegAT);
  DefaultClobberMask.set(RegV0);
  DefaultClobberMask.set(RegV1);
}
