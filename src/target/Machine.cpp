//===- target/Machine.cpp --------------------------------------------------===//

#include "target/Machine.h"

using namespace ipra;

const char *ipra::regName(unsigned Reg) {
  static const char *Names[NumPhysRegs] = {
      "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3", "$t0",
      "$t1",   "$t2", "$t3", "$t4", "$t5", "$t6", "$s0", "$s1", "$s2",
      "$s3",   "$s4", "$s5", "$s6", "$s7", "$s8", "$sp", "$ra"};
  return Reg < NumPhysRegs ? Names[Reg] : "$?";
}

MachineDesc::MachineDesc(RegSetRestriction R) : Restriction(R) {
  CallerSavedRegs.resize(NumPhysRegs);
  CalleeSavedRegs.resize(NumPhysRegs);
  for (unsigned Reg = RegA0; Reg <= RegT6; ++Reg)
    CallerSavedRegs.set(Reg);
  for (unsigned Reg = RegS0; Reg <= RegS8; ++Reg)
    CalleeSavedRegs.set(Reg);

  Alloc.resize(NumPhysRegs);
  switch (R) {
  case RegSetRestriction::None:
    Alloc = CallerSavedRegs | CalleeSavedRegs;
    break;
  case RegSetRestriction::CallerOnly7:
    for (unsigned Reg : {RegA0, RegA1, RegA2, RegA3, RegT0, RegT1, RegT2})
      Alloc.set(Reg);
    break;
  case RegSetRestriction::CalleeOnly7:
    for (unsigned Reg = RegS0; Reg <= RegS6; ++Reg)
      Alloc.set(Reg);
    break;
  }

  DefaultClobberMask = CallerSavedRegs;
  DefaultClobberMask.set(RegAT);
  DefaultClobberMask.set(RegV0);
  DefaultClobberMask.set(RegV1);

  ParamRegs = {RegA0, RegA1, RegA2, RegA3};
}
