//===- target/Machine.h - R2000-like register file & conventions -*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine model of the paper's Section 8: an R2000-like integer
/// register file with 20 allocatable registers -- 11 caller-saved (the four
/// parameter registers a0-a3 plus the temporaries t0-t6) and 9 callee-saved
/// (s0-s8) -- plus the never-allocated specials: the hardwired zero, the
/// codegen scratch at, the return-value/scratch pair v0/v1, the stack
/// pointer and the return-address register. Floating point is omitted (the
/// paper's benchmarks "use predominantly integer data").
///
/// MachineDesc also carries the Table-2 register-set restrictions: the D
/// and E experiments rerun configuration C with the allocatable file cut to
/// 7 caller-saved (a0-a3, t0-t2) or 7 callee-saved (s0-s6) registers. A
/// restriction shrinks only what the allocator may hand out; the
/// caller-/callee-saved *classification* and the default linkage protocol
/// are properties of the convention and do not move.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_TARGET_MACHINE_H
#define IPRA_TARGET_MACHINE_H

#include "support/BitVector.h"

#include <vector>

namespace ipra {

/// Physical register numbering. The allocatable file is the contiguous
/// range [RegA0, RegS8]; everything outside it is convention machinery.
enum : unsigned {
  RegZero = 0, ///< Hardwired zero (address base for globals).
  RegAT,       ///< Codegen scratch: spill reloads, move-cycle breaking.
  RegV0,       ///< Return value; second scratch around calls.
  RegV1,       ///< Third scratch (second operand reloads, parked values).
  RegA0,       ///< First parameter register (default protocol).
  RegA1,
  RegA2,
  RegA3,
  RegT0, ///< Caller-saved temporaries.
  RegT1,
  RegT2,
  RegT3,
  RegT4,
  RegT5,
  RegT6,
  RegS0, ///< Callee-saved registers.
  RegS1,
  RegS2,
  RegS3,
  RegS4,
  RegS5,
  RegS6,
  RegS7,
  RegS8,
  RegSP, ///< Stack pointer (word-addressed, grows down).
  RegRA, ///< Return address / linkage register.
  NumPhysRegs
};

/// Printable name, e.g. "$t0".
const char *regName(unsigned Reg);

/// Table-2 experiment axes: restrict the allocatable file.
enum class RegSetRestriction {
  None,        ///< Full 11 caller-saved + 9 callee-saved file.
  CallerOnly7, ///< Configuration D: only a0-a3, t0-t2 allocatable.
  CalleeOnly7, ///< Configuration E: only s0-s6 allocatable.
};

/// The register file description handed to the allocator, code generator
/// and summary machinery. Cheap to copy; all masks are precomputed.
class MachineDesc {
public:
  MachineDesc(RegSetRestriction R = RegSetRestriction::None);

  unsigned numRegs() const { return NumPhysRegs; }
  RegSetRestriction restriction() const { return Restriction; }

  /// Registers the allocator may assign (restriction applied).
  const BitVector &allocatable() const { return Alloc; }
  bool isAllocatable(unsigned Reg) const {
    return Reg < NumPhysRegs && Alloc.test(Reg);
  }

  /// Convention classification of the full file (restriction-independent).
  const BitVector &callerSaved() const { return CallerSavedRegs; }
  const BitVector &calleeSaved() const { return CalleeSavedRegs; }
  bool isCallerSaved(unsigned Reg) const {
    return Reg < NumPhysRegs && CallerSavedRegs.test(Reg);
  }
  bool isCalleeSaved(unsigned Reg) const {
    return Reg < NumPhysRegs && CalleeSavedRegs.test(Reg);
  }

  /// What a call under the default linkage protocol may destroy: every
  /// caller-saved register plus the scratch/return registers at, v0, v1.
  const BitVector &defaultClobber() const { return DefaultClobberMask; }

  /// Default-protocol parameter registers, in argument order (a0-a3;
  /// further arguments travel on the stack).
  const std::vector<unsigned> &paramRegs() const { return ParamRegs; }

private:
  RegSetRestriction Restriction;
  BitVector Alloc;
  BitVector CallerSavedRegs;
  BitVector CalleeSavedRegs;
  BitVector DefaultClobberMask;
  std::vector<unsigned> ParamRegs;
};

} // namespace ipra

#endif // IPRA_TARGET_MACHINE_H
