//===- target/Machine.h - R2000-like register file & conventions -*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine model of the paper's Section 8: an R2000-like integer
/// register file with 20 allocatable registers plus the never-allocated
/// specials: the hardwired zero, the codegen scratch at, the
/// return-value/scratch pair v0/v1, the stack pointer and the return-
/// address register. Floating point is omitted (the paper's benchmarks
/// "use predominantly integer data").
///
/// What used to be compiled-in constants -- the caller-/callee-saved split
/// of the allocatable pool, the parameter registers of the default linkage
/// protocol, and the Table-2 register-set restrictions -- is now a runtime
/// value, ConventionSpec. The paper's convention (11 caller-saved: a0-a3
/// and t0-t6; 9 callee-saved: s0-s8; parameters in a0-a3) is merely
/// ConventionSpec::defaultSpec(), and the D/E restrictions are the special
/// case of reserving every pool register outside the restricted file.
/// MachineDesc precomputes the masks every layer queries from whatever
/// spec it is built from; nothing outside target/ may assume the split.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_TARGET_MACHINE_H
#define IPRA_TARGET_MACHINE_H

#include "support/BitVector.h"

#include <string>
#include <vector>

namespace ipra {

/// Physical register numbering. The allocatable pool is the contiguous
/// range [RegA0, RegS8]; everything outside it is machine (not
/// convention) machinery. The traditional names describe the *default*
/// convention's roles -- under a non-default ConventionSpec an "$s"
/// register may well be caller-saved.
enum : unsigned {
  RegZero = 0, ///< Hardwired zero (address base for globals).
  RegAT,       ///< Codegen scratch: spill reloads, move-cycle breaking.
  RegV0,       ///< Return value; second scratch around calls.
  RegV1,       ///< Third scratch (second operand reloads, parked values).
  RegA0,       ///< First parameter register (default protocol).
  RegA1,
  RegA2,
  RegA3,
  RegT0, ///< Caller-saved temporaries (default convention).
  RegT1,
  RegT2,
  RegT3,
  RegT4,
  RegT5,
  RegT6,
  RegS0, ///< Callee-saved registers (default convention).
  RegS1,
  RegS2,
  RegS3,
  RegS4,
  RegS5,
  RegS6,
  RegS7,
  RegS8,
  RegSP, ///< Stack pointer (word-addressed, grows down).
  RegRA, ///< Return address / linkage register.
  NumPhysRegs
};

/// The allocatable pool as a range, and the single place its layout
/// assumptions live. Code outside target/ must not spell pool registers
/// by name (see the convention-hardcode-guard ctest); it asks MachineDesc.
constexpr unsigned AllocPoolFirst = RegA0;
constexpr unsigned AllocPoolLast = RegS8;
constexpr unsigned AllocPoolSize = AllocPoolLast - AllocPoolFirst + 1;
static_assert(AllocPoolSize == 20, "the paper's 20-register pool");
static_assert(RegA0 + 3 == RegA3 && RegA3 + 1 == RegT0 &&
                  RegT0 + 6 == RegT6 && RegT6 + 1 == RegS0 &&
                  RegS0 + 8 == RegS8,
              "pool numbering must stay contiguous: a0-a3, t0-t6, s0-s8");
static_assert(RegS8 + 1 == RegSP && RegSP + 1 == RegRA &&
                  RegRA + 1 == NumPhysRegs,
              "specials follow the pool");

/// Printable name, e.g. "$t0".
const char *regName(unsigned Reg);

/// Parses a register name ("t0" or "$t0"). \returns the register number,
/// or -1 when the name is unknown.
int regByName(const std::string &Name);

/// Table-2 experiment axes: restrict the allocatable file.
enum class RegSetRestriction {
  None,        ///< Full 11 caller-saved + 9 callee-saved file.
  CallerOnly7, ///< Configuration D: only a0-a3, t0-t2 allocatable.
  CalleeOnly7, ///< Configuration E: only s0-s6 allocatable.
};

/// A calling convention as data (the ROADMAP's "a convention is data, not
/// code"): how the allocatable pool splits into caller- and callee-saved
/// registers, which registers carry the leading parameters under the
/// default linkage protocol, and which pool registers are reserved --
/// withheld from the allocator entirely. Everything else (zero/at/v0/v1/
/// sp/ra roles, the stack protocol, the return register) is machine, not
/// convention, and cannot be respecified.
///
/// Two interchangeable spellings parse and print:
///
///   short form:  "s:9,p:4"            -- the last 9 pool registers are
///                                        callee-saved, the first 4
///                                        caller-saved ones carry
///                                        parameters; optional ",r:N"
///                                        reserves the last N pool
///                                        registers
///   explicit:    "callee=s0-s8;params=a0-a3;reserved="
///                                     -- arbitrary register lists
///                                        (comma-separated names or
///                                        ranges over a0..s8)
///
/// str() prints the short form whenever the spec is expressible in it,
/// else the explicit form; parse(str()) round-trips either way.
struct ConventionSpec {
  /// Pool registers a callee must preserve. Complement (within the pool)
  /// is caller-saved. Sized NumPhysRegs.
  BitVector CalleeSaved;
  /// Pool registers withheld from allocation (Table-2 restrictions and
  /// sweep experiments). Reserved registers keep their caller/callee
  /// classification -- a reserved caller-saved register still sits in the
  /// default clobber mask, exactly as the D/E experiments behave.
  BitVector Reserved;
  /// Default-protocol parameter registers in argument order. Must be
  /// caller-saved: a callee-saved parameter register would let a caller
  /// keep a live value across the call in the very register its own
  /// argument setup overwrites. (Reserved parameter registers are legal;
  /// configuration E passes parameters in the reserved a0-a3.)
  std::vector<unsigned> ParamRegs;

  ConventionSpec();

  /// The paper's convention: s0-s8 callee-saved, parameters in a0-a3,
  /// nothing reserved.
  static ConventionSpec defaultSpec();

  /// The default convention with \p R's registers reserved: D/E as data.
  static ConventionSpec forRestriction(RegSetRestriction R);

  /// The full pool {a0..s8} as a mask sized NumPhysRegs.
  static BitVector pool();

  /// This convention with \p R's restriction layered on top (reserves
  /// every pool register outside the restricted file).
  ConventionSpec restricted(RegSetRestriction R) const;

  /// Structural soundness: masks sized and inside the pool, parameter
  /// registers distinct and caller-saved. \returns false and fills
  /// \p Err (when non-null) on the first violation.
  bool validate(std::string *Err = nullptr) const;

  /// Parses either spelling. \returns false and fills \p Err on malformed
  /// text or a spec that fails validate().
  static bool parse(const std::string &Text, ConventionSpec &Out,
                    std::string &Err);

  /// Canonical printable form; parse(str()) == *this for valid specs.
  std::string str() const;

  bool operator==(const ConventionSpec &O) const {
    return CalleeSaved == O.CalleeSaved && Reserved == O.Reserved &&
           ParamRegs == O.ParamRegs;
  }
  bool operator!=(const ConventionSpec &O) const { return !(*this == O); }
};

/// The register file description handed to the allocator, code generator
/// and summary machinery. Cheap to copy; all masks are precomputed from
/// the convention it was built with.
class MachineDesc {
public:
  MachineDesc(RegSetRestriction R = RegSetRestriction::None);
  explicit MachineDesc(const ConventionSpec &Spec);

  unsigned numRegs() const { return NumPhysRegs; }
  const ConventionSpec &convention() const { return Spec; }

  /// Registers the allocator may assign (reservations applied).
  const BitVector &allocatable() const { return Alloc; }
  bool isAllocatable(unsigned Reg) const {
    return Reg < NumPhysRegs && Alloc.test(Reg);
  }

  /// Convention classification of the full file (reservation-independent).
  const BitVector &callerSaved() const { return CallerSavedRegs; }
  const BitVector &calleeSaved() const { return CalleeSavedRegs; }
  bool isCallerSaved(unsigned Reg) const {
    return Reg < NumPhysRegs && CallerSavedRegs.test(Reg);
  }
  bool isCalleeSaved(unsigned Reg) const {
    return Reg < NumPhysRegs && CalleeSavedRegs.test(Reg);
  }

  /// What a call under the default linkage protocol may destroy: every
  /// caller-saved register plus the scratch/return registers at, v0, v1.
  const BitVector &defaultClobber() const { return DefaultClobberMask; }

  /// Default-protocol parameter registers, in argument order (further
  /// arguments travel on the stack).
  const std::vector<unsigned> &paramRegs() const { return Spec.ParamRegs; }

private:
  void initFromSpec();

  ConventionSpec Spec;
  BitVector Alloc;
  BitVector CallerSavedRegs;
  BitVector CalleeSavedRegs;
  BitVector DefaultClobberMask;
};

} // namespace ipra

#endif // IPRA_TARGET_MACHINE_H
