//===- support/CodeBuffer.h - Executable memory with W^X ------*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A page-aligned buffer that can be flipped from writable to executable
/// (never both at once: strict W^X discipline, the policy hardened
/// kernels and sanitizers expect). The JIT backend fills it while the
/// mapping is read-write, then calls makeExecutable() exactly once to
/// drop the write bit and gain execute; after that the code is sealed.
///
/// On hosts without an mmap/mprotect pair the buffer degrades to plain
/// heap memory: still usable as a byte sink (so encoder tests run
/// anywhere), but makeExecutable() reports failure with a diagnostic
/// instead of handing out a non-executable pointer. Callers own the
/// "refuse to run, don't crash" policy on top of that.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_SUPPORT_CODEBUFFER_H
#define IPRA_SUPPORT_CODEBUFFER_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace ipra {

class CodeBuffer {
public:
  CodeBuffer() = default;
  ~CodeBuffer() { reset(); }

  CodeBuffer(const CodeBuffer &) = delete;
  CodeBuffer &operator=(const CodeBuffer &) = delete;
  CodeBuffer(CodeBuffer &&O) noexcept { *this = static_cast<CodeBuffer &&>(O); }
  CodeBuffer &operator=(CodeBuffer &&O) noexcept {
    if (this != &O) {
      reset();
      Ptr = O.Ptr;
      Cap = O.Cap;
      Exec = O.Exec;
      Mapped = O.Mapped;
      O.Ptr = nullptr;
      O.Cap = 0;
      O.Exec = O.Mapped = false;
    }
    return *this;
  }

  /// True when this build can hand out genuinely executable memory
  /// (an mmap/mprotect pair exists). When false, allocate() still works
  /// but makeExecutable() always fails.
  static bool hardwareSupported();

  /// Maps \p Bytes of zeroed read-write memory (rounded up to whole
  /// pages). \returns false with a message in \p Err on failure. A
  /// previously held mapping is released first.
  bool allocate(size_t Bytes, std::string &Err);

  /// Flips the mapping from RW to RX (W^X: the write permission is gone
  /// afterwards, so the code is sealed). Idempotent once it succeeded.
  /// \returns false with a diagnostic in \p Err when execute permission
  /// cannot be granted -- the heap fallback, or a kernel refusing
  /// PROT_EXEC -- in which case the memory stays writable data.
  bool makeExecutable(std::string &Err);

  uint8_t *data() { return Ptr; }
  const uint8_t *data() const { return Ptr; }
  /// Usable size in bytes (the rounded-up allocation).
  size_t capacity() const { return Cap; }
  bool executable() const { return Exec; }

  /// Entry pointer at byte offset \p Off; null until makeExecutable()
  /// succeeded (callers must not jump into writable memory).
  const void *entry(size_t Off = 0) const {
    return Exec && Off < Cap ? Ptr + Off : nullptr;
  }

  /// Releases the mapping (automatic on destruction).
  void reset();

private:
  uint8_t *Ptr = nullptr;
  size_t Cap = 0;
  bool Exec = false;
  bool Mapped = false; ///< mmap'd (vs. the heap fallback).
};

} // namespace ipra

#endif // IPRA_SUPPORT_CODEBUFFER_H
