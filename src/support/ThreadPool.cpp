//===- support/ThreadPool.cpp ----------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <utility>

using namespace ipra;

unsigned ThreadPool::defaultThreadCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned ThreadCount) {
  Workers.reserve(ThreadCount);
  for (unsigned I = 0; I < ThreadCount; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    AllDone.wait(Lock, [this] { return Pending == 0; });
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::enqueue(std::function<void()> Task) {
  if (Workers.empty()) {
    // Inline mode: account for the task so wait() still observes the
    // Pending==0 rendezvous, then run it on the spot.
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      ++Pending;
    }
    runTask(std::move(Task));
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Pending;
    Queue.push_back(std::move(Task));
  }
  WorkAvailable.notify_one();
}

void ThreadPool::runTask(std::function<void()> Task) {
  try {
    Task();
  } catch (...) {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (!FirstError)
      FirstError = std::current_exception();
  }
  bool Idle;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Idle = --Pending == 0;
  }
  if (Idle)
    AllDone.notify_all();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    runTask(std::move(Task));
  }
}

void ThreadPool::wait() {
  std::exception_ptr Error;
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    AllDone.wait(Lock, [this] { return Pending == 0; });
    Error = std::exchange(FirstError, nullptr);
  }
  if (Error)
    std::rethrow_exception(Error);
}
