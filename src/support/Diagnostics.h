//===- support/Diagnostics.h - Source locations and error sink -*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight diagnostics used by the miniC front end and the IR verifier.
/// Errors are collected into a DiagnosticEngine instead of being thrown, so
/// library code never raises exceptions.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_SUPPORT_DIAGNOSTICS_H
#define IPRA_SUPPORT_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace ipra {

/// A 1-based line/column position in a miniC source buffer.
struct SourceLoc {
  int Line = 0;
  int Col = 0;

  bool isValid() const { return Line > 0; }
  std::string str() const {
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

/// A machine-level position: procedure / block / instruction indices into
/// an MProgram. Used by the MIR verifier's structured diagnostics; Block
/// and Inst may stay -1 for procedure-level findings.
struct MachineLoc {
  int Proc = -1;
  int Block = -1;
  int Inst = -1;
  std::string ProcName;

  bool isValid() const { return Proc >= 0; }
  /// Renders e.g. "proc 'fib' (#2) block 1 inst 4".
  std::string str() const;
};

/// One reported problem.
struct Diagnostic {
  enum class Kind { Error, Warning };
  Kind K = Kind::Error;
  SourceLoc Loc;
  std::string Message;

  std::string str() const;
};

/// Accumulates diagnostics; queried by the driver after each phase.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({Diagnostic::Kind::Error, Loc, std::move(Message)});
    ++NumErrors;
  }
  void error(std::string Message) { error(SourceLoc(), std::move(Message)); }
  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({Diagnostic::Kind::Warning, Loc, std::move(Message)});
  }

  /// Splice another engine's diagnostics onto the end of this one, in
  /// their original order. Used by the parallel pipeline to merge
  /// per-procedure buffers back into program order.
  void append(DiagnosticEngine Other) {
    for (Diagnostic &D : Other.Diags)
      Diags.push_back(std::move(D));
    NumErrors += Other.NumErrors;
  }

  bool hasErrors() const { return NumErrors > 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// All diagnostics joined with newlines, for tests and tool output.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace ipra

#endif // IPRA_SUPPORT_DIAGNOSTICS_H
