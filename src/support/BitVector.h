//===- support/BitVector.h - Dynamic bit vector ----------------*- C++ -*-===//
//
// Part of the ipra project: reproduction of F. Chow, "Minimizing Register
// Usage Penalty at Procedure Calls", PLDI 1988.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dynamically-sized bit vector used for the data-flow analyses (liveness,
/// shrink-wrap ANT/AV) where the paper encodes per-register facts "in bit
/// vector form using a word of storage".
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_SUPPORT_BITVECTOR_H
#define IPRA_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace ipra {

/// A fixed-universe set of small integers backed by 64-bit words.
class BitVector {
public:
  BitVector() = default;

  /// Creates a vector of \p N bits, all initialized to \p Value.
  explicit BitVector(unsigned N, bool Value = false) { resize(N, Value); }

  unsigned size() const { return NumBits; }

  /// Grows or shrinks to \p N bits; new bits take \p Value.
  void resize(unsigned N, bool Value = false);

  bool test(unsigned Idx) const {
    assert(Idx < NumBits && "bit index out of range");
    return (Words[Idx / 64] >> (Idx % 64)) & 1;
  }
  bool operator[](unsigned Idx) const { return test(Idx); }

  void set(unsigned Idx) {
    assert(Idx < NumBits && "bit index out of range");
    Words[Idx / 64] |= uint64_t(1) << (Idx % 64);
  }
  void reset(unsigned Idx) {
    assert(Idx < NumBits && "bit index out of range");
    Words[Idx / 64] &= ~(uint64_t(1) << (Idx % 64));
  }
  void set(unsigned Idx, bool Value) { Value ? set(Idx) : reset(Idx); }

  /// Sets all bits to false.
  void clear();
  /// Sets all bits to true.
  void setAll();

  /// \returns true if any bit is set.
  bool any() const;
  /// \returns true if no bit is set.
  bool none() const { return !any(); }
  /// \returns the number of set bits.
  unsigned count() const;

  /// \returns index of the first set bit, or -1 if none.
  int findFirst() const;
  /// \returns index of the first set bit strictly after \p Prev, or -1.
  int findNext(unsigned Prev) const;

  /// Invokes \p Fn(Idx) for every set bit in ascending order. Word-parallel:
  /// zero words are skipped 64 bits at a time and set bits are peeled with
  /// ctz, so sparse sets cost one branch per word instead of one findNext
  /// scan per element. The preferred iteration form for hot loops.
  template <typename CallableT> void forEachSetBit(CallableT Fn) const {
    for (unsigned I = 0, E = unsigned(Words.size()); I != E; ++I) {
      for (uint64_t W = Words[I]; W; W &= W - 1)
        Fn(I * 64 + unsigned(__builtin_ctzll(W)));
    }
  }

  /// \returns true if this and \p RHS share any set bit (word-parallel;
  /// avoids materializing the intersection).
  bool anyCommon(const BitVector &RHS) const;

  /// this |= RHS. \returns true if any bit actually changed, computed in
  /// the same word pass -- the change detection the data-flow fixed points
  /// use instead of a separate full comparison.
  bool unionWithChanged(const BitVector &RHS);

  BitVector &operator|=(const BitVector &RHS);
  BitVector &operator&=(const BitVector &RHS);
  /// this &= ~RHS.
  BitVector &andNot(const BitVector &RHS);

  friend BitVector operator|(BitVector LHS, const BitVector &RHS) {
    LHS |= RHS;
    return LHS;
  }
  friend BitVector operator&(BitVector LHS, const BitVector &RHS) {
    LHS &= RHS;
    return LHS;
  }

  bool operator==(const BitVector &RHS) const;
  bool operator!=(const BitVector &RHS) const { return !(*this == RHS); }

  /// \returns true if every set bit of this is also set in \p RHS.
  bool isSubsetOf(const BitVector &RHS) const;

  /// Renders e.g. "{1, 5, 9}" for debugging and test failure messages.
  std::string str() const;

private:
  void clearUnusedTail();

  unsigned NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace ipra

#endif // IPRA_SUPPORT_BITVECTOR_H
