//===- support/BitVector.cpp ----------------------------------------------===//

#include "support/BitVector.h"

using namespace ipra;

void BitVector::resize(unsigned N, bool Value) {
  unsigned OldBits = NumBits;
  NumBits = N;
  Words.resize((N + 63) / 64, Value ? ~uint64_t(0) : 0);
  if (Value && OldBits < NumBits) {
    // Bits between OldBits and the end of its word must be filled in.
    for (unsigned Idx = OldBits; Idx < NumBits && Idx % 64 != 0; ++Idx)
      Words[Idx / 64] |= uint64_t(1) << (Idx % 64);
  }
  clearUnusedTail();
}

void BitVector::clear() {
  for (uint64_t &W : Words)
    W = 0;
}

void BitVector::setAll() {
  for (uint64_t &W : Words)
    W = ~uint64_t(0);
  clearUnusedTail();
}

bool BitVector::any() const {
  for (uint64_t W : Words)
    if (W)
      return true;
  return false;
}

unsigned BitVector::count() const {
  unsigned N = 0;
  for (uint64_t W : Words)
    N += __builtin_popcountll(W);
  return N;
}

int BitVector::findFirst() const {
  for (unsigned I = 0, E = Words.size(); I != E; ++I)
    if (Words[I])
      return int(I * 64 + __builtin_ctzll(Words[I]));
  return -1;
}

int BitVector::findNext(unsigned Prev) const {
  unsigned Idx = Prev + 1;
  if (Idx >= NumBits)
    return -1;
  unsigned WordIdx = Idx / 64;
  uint64_t W = Words[WordIdx] & (~uint64_t(0) << (Idx % 64));
  while (true) {
    if (W)
      return int(WordIdx * 64 + __builtin_ctzll(W));
    if (++WordIdx == Words.size())
      return -1;
    W = Words[WordIdx];
  }
}

bool BitVector::anyCommon(const BitVector &RHS) const {
  assert(NumBits == RHS.NumBits && "bit vector size mismatch");
  for (unsigned I = 0, E = Words.size(); I != E; ++I)
    if (Words[I] & RHS.Words[I])
      return true;
  return false;
}

bool BitVector::unionWithChanged(const BitVector &RHS) {
  assert(NumBits == RHS.NumBits && "bit vector size mismatch");
  uint64_t Changed = 0;
  for (unsigned I = 0, E = Words.size(); I != E; ++I) {
    uint64_t New = Words[I] | RHS.Words[I];
    Changed |= New ^ Words[I];
    Words[I] = New;
  }
  return Changed != 0;
}

BitVector &BitVector::operator|=(const BitVector &RHS) {
  assert(NumBits == RHS.NumBits && "bit vector size mismatch");
  for (unsigned I = 0, E = Words.size(); I != E; ++I)
    Words[I] |= RHS.Words[I];
  return *this;
}

BitVector &BitVector::operator&=(const BitVector &RHS) {
  assert(NumBits == RHS.NumBits && "bit vector size mismatch");
  for (unsigned I = 0, E = Words.size(); I != E; ++I)
    Words[I] &= RHS.Words[I];
  return *this;
}

BitVector &BitVector::andNot(const BitVector &RHS) {
  assert(NumBits == RHS.NumBits && "bit vector size mismatch");
  for (unsigned I = 0, E = Words.size(); I != E; ++I)
    Words[I] &= ~RHS.Words[I];
  return *this;
}

bool BitVector::operator==(const BitVector &RHS) const {
  return NumBits == RHS.NumBits && Words == RHS.Words;
}

bool BitVector::isSubsetOf(const BitVector &RHS) const {
  assert(NumBits == RHS.NumBits && "bit vector size mismatch");
  for (unsigned I = 0, E = Words.size(); I != E; ++I)
    if (Words[I] & ~RHS.Words[I])
      return false;
  return true;
}

std::string BitVector::str() const {
  std::string Out = "{";
  bool First = true;
  for (int I = findFirst(); I >= 0; I = findNext(I)) {
    if (!First)
      Out += ", ";
    Out += std::to_string(I);
    First = false;
  }
  Out += "}";
  return Out;
}

void BitVector::clearUnusedTail() {
  if (NumBits % 64 != 0 && !Words.empty())
    Words.back() &= (uint64_t(1) << (NumBits % 64)) - 1;
}
