//===- support/Statistics.cpp - Named counters and phase tracing -----------===//

#include "support/Statistics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>

using namespace ipra;

std::string ipra::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += char(C);
      }
    }
  }
  return Out;
}

std::string StatCounters::json(unsigned Indent) const {
  std::string Pad(Indent, ' ');
  std::string Sep = Indent ? ",\n" : ", ";
  std::string Out = "{";
  if (Indent && !Counters.empty())
    Out += "\n";
  bool First = true;
  for (const auto &[Name, Value] : Counters) {
    if (!First)
      Out += Sep;
    First = false;
    Out += Pad + "\"" + jsonEscape(Name) + "\": " + std::to_string(Value);
  }
  if (Indent && !Counters.empty())
    Out += "\n";
  Out += "}";
  return Out;
}

std::string CompileStats::json() const {
  std::string Out = "{\n";
  Out += "  \"module\": " + Module.json() + ",\n";
  Out += "  \"procs\": [";
  for (unsigned I = 0; I < Procs.size(); ++I) {
    Out += I ? ",\n    " : "\n    ";
    Out += "{\"name\": \"" + jsonEscape(Procs[I].Name) +
           "\", \"counters\": " + Procs[I].Counters.json() + "}";
  }
  Out += Procs.empty() ? "],\n" : "\n  ],\n";
  Out += "  \"totals\": " + totals().json() + "\n";
  Out += "}\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// TraceRecorder / ScopedTimer
//===----------------------------------------------------------------------===//

static int64_t steadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TraceRecorder::TraceRecorder() : EpochUs(steadyNowUs()) {}

int64_t TraceRecorder::nowUs() const {
  int64_t Now = steadyNowUs() - EpochUs;
  int64_t Prev = LastUs.load(std::memory_order_relaxed);
  // Tick at least one microsecond past the high-water mark: readings
  // stay strictly increasing even when the host clock stalls within a
  // microsecond or steps backwards (cross-CPU skew under
  // virtualization). Span starts therefore never tie, so the (start,
  // thread, name) sort reproduces construction order exactly.
  while (true) {
    int64_t Next = Now > Prev ? Now : Prev + 1;
    if (LastUs.compare_exchange_weak(Prev, Next, std::memory_order_relaxed))
      return Next;
  }
}

unsigned TraceRecorder::threadIndex() {
  std::string Key =
      std::to_string(std::hash<std::thread::id>{}(std::this_thread::get_id()));
  std::lock_guard<std::mutex> Lock(Mutex);
  auto [It, Inserted] =
      ThreadIndices.emplace(Key, unsigned(ThreadIndices.size()));
  (void)Inserted;
  return It->second;
}

void TraceRecorder::record(TraceSpan Span) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Spans.push_back(std::move(Span));
}

std::vector<TraceSpan> TraceRecorder::spans() const {
  std::vector<TraceSpan> Out;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Out = Spans;
  }
  std::sort(Out.begin(), Out.end(),
            [](const TraceSpan &A, const TraceSpan &B) {
              if (A.StartUs != B.StartUs)
                return A.StartUs < B.StartUs;
              if (A.ThreadIndex != B.ThreadIndex)
                return A.ThreadIndex < B.ThreadIndex;
              return A.Name < B.Name;
            });
  return Out;
}

std::string TraceRecorder::chromeTraceJson() const {
  std::string Out = "{\"traceEvents\": [";
  bool First = true;
  for (const TraceSpan &S : spans()) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n  {\"name\": \"" + jsonEscape(S.Name) + "\", \"cat\": \"" +
           jsonEscape(S.Category) + "\", \"ph\": \"X\", \"pid\": 0, " +
           "\"tid\": " + std::to_string(S.ThreadIndex) +
           ", \"ts\": " + std::to_string(S.StartUs) +
           ", \"dur\": " + std::to_string(S.DurationUs) + "}";
  }
  Out += "\n]}\n";
  return Out;
}

ScopedTimer::ScopedTimer(TraceRecorder *Recorder, std::string Name,
                         std::string Category)
    : Recorder(Recorder) {
  if (!Recorder)
    return;
  Span.Name = std::move(Name);
  Span.Category = std::move(Category);
  Span.ThreadIndex = Recorder->threadIndex();
  Span.StartUs = Recorder->nowUs();
}

ScopedTimer::~ScopedTimer() {
  if (!Recorder)
    return;
  Span.DurationUs = Recorder->nowUs() - Span.StartUs;
  Recorder->record(std::move(Span));
}
