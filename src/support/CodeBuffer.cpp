//===- support/CodeBuffer.cpp ----------------------------------------------===//

#include "support/CodeBuffer.h"

#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define IPRA_CODEBUFFER_MMAP 1
#include <sys/mman.h>
#include <unistd.h>
#else
#define IPRA_CODEBUFFER_MMAP 0
#endif

using namespace ipra;

namespace {

size_t pageSize() {
#if IPRA_CODEBUFFER_MMAP
  long PS = sysconf(_SC_PAGESIZE);
  return PS > 0 ? size_t(PS) : 4096;
#else
  return 4096;
#endif
}

} // namespace

bool CodeBuffer::hardwareSupported() { return IPRA_CODEBUFFER_MMAP != 0; }

bool CodeBuffer::allocate(size_t Bytes, std::string &Err) {
  reset();
  if (Bytes == 0) {
    Err = "cannot allocate an empty code buffer";
    return false;
  }
  size_t PS = pageSize();
  size_t Rounded = (Bytes + PS - 1) / PS * PS;
  if (Rounded < Bytes) {
    Err = "code buffer size overflows";
    return false;
  }
#if IPRA_CODEBUFFER_MMAP
  void *P = mmap(nullptr, Rounded, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED) {
    Err = "mmap of " + std::to_string(Rounded) + " code bytes failed";
    return false;
  }
  Ptr = static_cast<uint8_t *>(P);
  Mapped = true;
#else
  Ptr = static_cast<uint8_t *>(std::calloc(Rounded, 1));
  if (!Ptr) {
    Err = "allocation of " + std::to_string(Rounded) + " code bytes failed";
    return false;
  }
  Mapped = false;
#endif
  Cap = Rounded;
  Exec = false;
  return true;
}

bool CodeBuffer::makeExecutable(std::string &Err) {
  if (!Ptr) {
    Err = "no code buffer allocated";
    return false;
  }
  if (Exec)
    return true;
#if IPRA_CODEBUFFER_MMAP
  if (Mapped) {
    if (mprotect(Ptr, Cap, PROT_READ | PROT_EXEC) != 0) {
      Err = "mprotect(PROT_READ|PROT_EXEC) refused; host policy forbids "
            "executable mappings";
      return false;
    }
    Exec = true;
    return true;
  }
#endif
  Err = "executable memory is unavailable on this host (heap fallback "
        "buffer)";
  return false;
}

void CodeBuffer::reset() {
  if (!Ptr)
    return;
#if IPRA_CODEBUFFER_MMAP
  if (Mapped)
    munmap(Ptr, Cap);
  else
    std::free(Ptr);
#else
  std::free(Ptr);
#endif
  Ptr = nullptr;
  Cap = 0;
  Exec = Mapped = false;
}
