//===- support/Statistics.h - Named counters and phase tracing -*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler-wide observability layer: LLVM-style named counters plus
/// scoped phase timers feeding a Chrome trace-event recorder.
///
/// Two determinism tiers, deliberately separated:
///
///  - *Counters* (StatCounters, CompileStats) record what the compiler
///    decided -- spills, save/restore pairs, shrink-wrap placements,
///    instructions by category. They are collected into per-procedure
///    slots owned by exactly one scheduler task and merged in program
///    order, so their values and JSON rendering are byte-identical at any
///    CompileOptions::Threads value (the same guarantee the pipeline gives
///    for machine code).
///  - *Timers* (ScopedTimer, TraceRecorder) record when it happened. Wall
///    clock is inherently schedule-dependent, so spans go only to the
///    trace report and never into CompileStats.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_SUPPORT_STATISTICS_H
#define IPRA_SUPPORT_STATISTICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace ipra {

/// Escapes \p S for inclusion in a JSON string literal (quotes,
/// backslashes, and control characters; everything else passes through
/// byte-for-byte).
std::string jsonEscape(const std::string &S);

/// A flat registry of named uint64 counters. Iteration, equality and JSON
/// rendering follow name order, so two counter sets built from the same
/// increments in any order compare and print identically. Not
/// synchronized; see SharedStatCounters for concurrent producers.
class StatCounters {
public:
  /// Registers \p Name on first use and adds \p Delta to it.
  void add(const std::string &Name, uint64_t Delta = 1) {
    Counters[Name] += Delta;
  }

  /// Overwrites \p Name with \p Value (registering it if new).
  void set(const std::string &Name, uint64_t Value) {
    Counters[Name] = Value;
  }

  /// \returns the counter's value, or 0 when it was never registered.
  uint64_t get(const std::string &Name) const {
    auto It = Counters.find(Name);
    return It == Counters.end() ? 0 : It->second;
  }

  /// True when \p Name has been registered (even at value 0).
  bool contains(const std::string &Name) const {
    return Counters.count(Name) != 0;
  }

  /// Adds every counter of \p Other into this set. Merging is commutative
  /// and associative, so any merge order yields the same set.
  void merge(const StatCounters &Other) {
    for (const auto &[Name, Value] : Other.Counters)
      Counters[Name] += Value;
  }

  bool empty() const { return Counters.empty(); }
  size_t size() const { return Counters.size(); }
  void clear() { Counters.clear(); }

  /// Name -> value, ordered by name.
  const std::map<std::string, uint64_t> &entries() const { return Counters; }

  bool operator==(const StatCounters &O) const {
    return Counters == O.Counters;
  }
  bool operator!=(const StatCounters &O) const { return !(*this == O); }

  /// Renders {"name": value, ...} with keys in name order, indented by
  /// \p Indent spaces per line (0 = single line).
  std::string json(unsigned Indent = 0) const;

private:
  std::map<std::string, uint64_t> Counters;
};

/// Mutex-guarded counter set for producers that genuinely share one
/// registry across ThreadPool workers (module-level tallies). The
/// deterministic per-procedure path does not need this -- each scheduler
/// task owns its procedures' slots exclusively.
class SharedStatCounters {
public:
  void add(const std::string &Name, uint64_t Delta = 1) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Counters.add(Name, Delta);
  }

  /// A consistent copy of the current state.
  StatCounters snapshot() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Counters;
  }

private:
  mutable std::mutex Mutex;
  StatCounters Counters;
};

/// Per-translation-unit compile-time statistics: one counter set per
/// procedure (program order) plus module-level counters, carried in
/// CompileResult. Byte-identical at any thread count.
struct CompileStats {
  struct ProcStats {
    std::string Name;
    StatCounters Counters;

    bool operator==(const ProcStats &O) const {
      return Name == O.Name && Counters == O.Counters;
    }
    bool operator!=(const ProcStats &O) const { return !(*this == O); }
  };

  /// Indexed by procedure id -- the deterministic program order.
  std::vector<ProcStats> Procs;
  /// Module-level counters (pipeline task/schedule shape etc.).
  StatCounters Module;

  /// Module counters plus the sum over every procedure.
  StatCounters totals() const {
    StatCounters T = Module;
    for (const ProcStats &P : Procs)
      T.merge(P.Counters);
    return T;
  }

  bool operator==(const CompileStats &O) const {
    return Procs == O.Procs && Module == O.Module;
  }
  bool operator!=(const CompileStats &O) const { return !(*this == O); }

  /// The machine-readable stats report:
  /// {"module": {...}, "procs": [{"name": ..., "counters": {...}}, ...],
  ///  "totals": {...}}. Deterministic: same compile decisions => same
  ///  bytes, independent of thread count.
  std::string json() const;
};

/// One completed timed span, in microseconds since the recorder's epoch.
struct TraceSpan {
  std::string Name;
  std::string Category;
  /// Dense per-recorder thread index (tid in the Chrome trace).
  unsigned ThreadIndex = 0;
  int64_t StartUs = 0;
  int64_t DurationUs = 0;
};

/// Collects TraceSpans from any thread and renders them as a Chrome
/// trace-event file (chrome://tracing, Perfetto, speedscope all read it).
/// Span *contents* are deterministic only in their names/categories; the
/// timings are wall clock and schedule-dependent by nature.
class TraceRecorder {
public:
  TraceRecorder();

  /// Thread-safe. Timestamps are taken by ScopedTimer; record() only
  /// stores the finished span.
  void record(TraceSpan Span);

  /// Microseconds since this recorder was constructed (the trace epoch).
  /// Strictly increases across calls on any thread (clamped to one past
  /// the recorder's high-water mark when the host clock stalls or steps
  /// backwards), so nested spans always lie inside their parent and span
  /// starts never tie.
  int64_t nowUs() const;

  /// Dense index for the calling thread, assigned on first use.
  unsigned threadIndex();

  /// Snapshot of everything recorded so far, sorted by (start, thread,
  /// name) so rendering does not depend on completion order.
  std::vector<TraceSpan> spans() const;

  /// The Chrome trace-event JSON document ("traceEvents" array of
  /// complete "X" events).
  std::string chromeTraceJson() const;

private:
  mutable std::mutex Mutex;
  std::vector<TraceSpan> Spans;
  std::map<std::string, unsigned> ThreadIndices; // keyed by thread-id hash
  int64_t EpochUs = 0;
  /// High-water mark backing the monotonicity guarantee of nowUs().
  mutable std::atomic<int64_t> LastUs{0};
};

/// RAII phase timer: records a span into \p Recorder (when non-null) over
/// its lifetime. Nest freely; each level records its own span. Null
/// recorder makes it a no-op, so instrumentation sites need no guards.
class ScopedTimer {
public:
  ScopedTimer(TraceRecorder *Recorder, std::string Name,
              std::string Category);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  TraceRecorder *Recorder;
  TraceSpan Span;
};

} // namespace ipra

#endif // IPRA_SUPPORT_STATISTICS_H
