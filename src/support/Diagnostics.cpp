//===- support/Diagnostics.cpp --------------------------------------------===//

#include "support/Diagnostics.h"

using namespace ipra;

std::string Diagnostic::str() const {
  std::string Out;
  if (Loc.isValid())
    Out += Loc.str() + ": ";
  Out += K == Kind::Error ? "error: " : "warning: ";
  Out += Message;
  return Out;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
