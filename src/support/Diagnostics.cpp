//===- support/Diagnostics.cpp --------------------------------------------===//

#include "support/Diagnostics.h"

using namespace ipra;

std::string MachineLoc::str() const {
  std::string Out = "proc ";
  if (!ProcName.empty())
    Out += "'" + ProcName + "' ";
  Out += "(#" + std::to_string(Proc) + ")";
  if (Block >= 0)
    Out += " block " + std::to_string(Block);
  if (Inst >= 0)
    Out += " inst " + std::to_string(Inst);
  return Out;
}

std::string Diagnostic::str() const {
  std::string Out;
  if (Loc.isValid())
    Out += Loc.str() + ": ";
  Out += K == Kind::Error ? "error: " : "warning: ";
  Out += Message;
  return Out;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
