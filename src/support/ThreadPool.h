//===- support/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool driving the parallel bottom-up pipeline.
/// Tasks are plain std::function<void()> thunks pulled from a FIFO queue by a
/// fixed set of workers. Tasks may enqueue further tasks (the DAG scheduler
/// releases a caller's compile task from inside the last callee task); wait()
/// blocks until the queue is drained *and* no task is still running, so such
/// chained submissions are always covered.
///
/// Exception policy: the first exception thrown by any task is captured and
/// rethrown from wait(); later exceptions are dropped. A pool constructed
/// with zero threads degrades to inline execution -- enqueue() runs the task
/// on the calling thread immediately (exceptions are still deferred to
/// wait() so both modes observe the same contract).
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_SUPPORT_THREADPOOL_H
#define IPRA_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ipra {

class ThreadPool {
public:
  /// Spawn \p ThreadCount workers. Zero means "no workers": tasks run
  /// inline on the enqueueing thread.
  explicit ThreadPool(unsigned ThreadCount);

  /// Joins the workers. Pending tasks are still executed (drains the
  /// queue); exceptions discovered during destruction are swallowed --
  /// call wait() first if you care.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Schedule \p Task. Never blocks (inline mode excepted, where the task
  /// body runs before enqueue returns).
  void enqueue(std::function<void()> Task);

  /// Block until every task enqueued so far -- including tasks those tasks
  /// enqueued -- has finished, then rethrow the first captured task
  /// exception, if any. The pool is reusable afterwards.
  void wait();

  unsigned threadCount() const { return unsigned(Workers.size()); }

  /// What CompileOptions::Threads defaults to: the host's hardware
  /// concurrency, with a floor of one.
  static unsigned defaultThreadCount();

private:
  void workerLoop();
  void runTask(std::function<void()> Task);

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable AllDone;
  /// Queued + currently-running tasks. wait() returns when this hits zero.
  unsigned Pending = 0;
  bool Stopping = false;
  std::exception_ptr FirstError;
};

} // namespace ipra

#endif // IPRA_SUPPORT_THREADPOOL_H
