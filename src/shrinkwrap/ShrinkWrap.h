//===- shrinkwrap/ShrinkWrap.h - Save/restore placement --------*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shrink-wrapping of callee-saved registers (Section 5 of the paper): a
/// bit-vector data-flow analysis over anticipability (ANT) and availability
/// (AV) of register uses places each register's save at the earliest blocks
/// leading into its regions of activity and the restore symmetrically,
/// instead of at procedure entry/exit.
///
/// Two refinements from the paper are implemented:
///  - *Range extension*: where the placement equations would require
///    splitting a CFG edge (Fig. 2), the APP (appearance) attribute is
///    instead propagated to the offending neighbours and the equations
///    re-solved, trading a little redundancy for no extra branches.
///  - *Loop extension*: APP is smeared over every loop it intersects so a
///    save/restore pair never lands inside a loop.
///
/// The pass is machine-representation agnostic: it consumes a CFG plus
/// per-block APP bit vectors (one bit per physical register) and produces
/// per-block save/restore placement masks.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_SHRINKWRAP_SHRINKWRAP_H
#define IPRA_SHRINKWRAP_SHRINKWRAP_H

#include "analysis/Loops.h"
#include "ir/Procedure.h"
#include "support/BitVector.h"

#include <string>
#include <vector>

namespace ipra {

/// Placement of saves and restores for one procedure.
struct ShrinkWrapResult {
  /// [block] -> registers to save at the block's entry.
  std::vector<BitVector> SaveAtEntry;
  /// [block] -> registers to restore at the block's exit (before the
  /// terminator).
  std::vector<BitVector> RestoreAtExit;
  /// Registers whose save landed at the entry block: their usage region
  /// spans the whole procedure, the signal Section 6 uses to propagate the
  /// save up the call graph instead.
  BitVector SavedAtProcEntry;
  /// Final APP after range/loop extension (diagnostics and tests).
  std::vector<BitVector> ExtendedAPP;
  /// Number of range-extension iterations the solver needed.
  int ExtensionIterations = 0;
  /// (register, block) appearance bits added by loop extension: each is a
  /// placement the solver rejected because it would have put a save or
  /// restore inside a loop.
  unsigned LoopExtendedBits = 0;
  /// (register, block) appearance bits added by range extension: each is
  /// an edge split the solver traded for a little redundancy (Fig. 2).
  unsigned RangeExtendedBits = 0;
};

/// Solver options.
struct ShrinkWrapOptions {
  /// When false, every tracked register is saved at procedure entry and
  /// restored at every exit (the classic convention; the -O2-without-SW and
  /// "shrink-wrap disabled" baselines).
  bool Enable = true;
  /// Keep save/restore pairs out of loops (paper Section 5, last part).
  bool LoopExtension = true;
};

/// Computes save/restore placement for the registers tracked in \p APP.
///
/// \param Proc  procedure providing the CFG (blocks/preds/succs).
/// \param APP   per-block register-appearance sets; bit r set in APP[b]
///              means register r is read, written, or clobbered by a call
///              in block b. Registers with no APP bit anywhere receive no
///              saves.
/// \param NumRegs width of the bit vectors.
ShrinkWrapResult placeSavesRestores(const Procedure &Proc,
                                    const std::vector<BitVector> &APP,
                                    unsigned NumRegs, const LoopInfo &LI,
                                    const ShrinkWrapOptions &Opts = {});

/// Static checker used by tests and asserts: walks the CFG with a per-
/// register save-state lattice and verifies that on every path each APP
/// block is covered by exactly one prior save, no save is duplicated while
/// active, restores only follow saves, and every path to an exit restores
/// what it saved. \returns an empty string on success, else a description
/// of the first violation.
std::string verifyPlacement(const Procedure &Proc,
                            const std::vector<BitVector> &APP,
                            unsigned NumRegs, const ShrinkWrapResult &R);

} // namespace ipra

#endif // IPRA_SHRINKWRAP_SHRINKWRAP_H
