//===- shrinkwrap/ShrinkWrap.cpp - Save/restore placement ------------------===//

#include "shrinkwrap/ShrinkWrap.h"

using namespace ipra;

namespace {

/// Is \p BB a procedure exit (terminated by Ret)?
bool isExitBlock(const BasicBlock &BB) {
  return BB.terminator().Op == Opcode::Ret;
}

/// Smears each register's APP over every loop it intersects, iterating so
/// nested/overlapping loops converge. Prevents save/restore pairs from
/// landing inside loops (Section 5).
/// \returns the number of (register, block) bits it added.
unsigned extendOverLoops(std::vector<BitVector> &APP, const LoopInfo &LI) {
  unsigned AddedBits = 0;
  BitVector Union(APP.empty() ? 0 : APP[0].size());
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const Loop &L : LI.loops()) {
      Union.clear();
      L.Blocks.forEachSetBit([&](unsigned B) { Union |= APP[B]; });
      L.Blocks.forEachSetBit([&](unsigned B) {
        unsigned Before = APP[B].count();
        if (APP[B].unionWithChanged(Union)) {
          Changed = true;
          AddedBits += APP[B].count() - Before;
        }
      });
    }
  }
  return AddedBits;
}

/// The four data-flow attributes of the paper's equations (3.1)-(3.4).
struct Dataflow {
  std::vector<BitVector> ANTIN, ANTOUT, AVIN, AVOUT;
};

/// Solves anticipability and availability of register appearances to a
/// fixed point (AND-confluence; initialized to the universal set away from
/// the boundary blocks).
Dataflow solve(const Procedure &Proc, const std::vector<BitVector> &APP,
               unsigned NumRegs) {
  unsigned N = Proc.numBlocks();
  Dataflow D;
  BitVector Top(NumRegs, true);
  D.ANTIN.assign(N, Top);
  D.ANTOUT.assign(N, Top);
  D.AVIN.assign(N, Top);
  D.AVOUT.assign(N, Top);

  // Scratch sets reused across every block and sweep; the fixed-point
  // loop performs no heap allocation (copy-assignment into same-sized
  // vectors reuses their storage).
  BitVector In(NumRegs), Out(NumRegs);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Anticipability: backward.
    for (int B = int(N) - 1; B >= 0; --B) {
      const BasicBlock *BB = Proc.block(B);
      if (isExitBlock(*BB)) {
        Out.clear();
      } else {
        Out.setAll();
        for (int S : BB->successors())
          Out &= D.ANTIN[S];
      }
      In = APP[B];
      In |= Out;
      if (Out != D.ANTOUT[B] || In != D.ANTIN[B]) {
        D.ANTOUT[B] = Out;
        D.ANTIN[B] = In;
        Changed = true;
      }
    }
    // Availability: forward.
    for (unsigned B = 0; B < N; ++B) {
      const BasicBlock *BB = Proc.block(int(B));
      if (B == 0 || BB->Preds.empty()) {
        In.clear(); // entry, or unreachable: nothing is available
      } else {
        In.setAll();
        for (int P : BB->Preds)
          In &= D.AVOUT[P];
      }
      Out = APP[B];
      Out |= In;
      if (In != D.AVIN[B] || Out != D.AVOUT[B]) {
        D.AVIN[B] = In;
        D.AVOUT[B] = Out;
        Changed = true;
      }
    }
  }
  return D;
}

} // namespace

ShrinkWrapResult ipra::placeSavesRestores(const Procedure &Proc,
                                          const std::vector<BitVector> &APP,
                                          unsigned NumRegs,
                                          const LoopInfo &LI,
                                          const ShrinkWrapOptions &Opts) {
  unsigned N = Proc.numBlocks();
  assert(APP.size() == N && "APP must have one entry per block");
  ShrinkWrapResult R;
  R.SaveAtEntry.assign(N, BitVector(NumRegs));
  R.RestoreAtExit.assign(N, BitVector(NumRegs));
  R.SavedAtProcEntry.resize(NumRegs);
  R.ExtendedAPP = APP;

  BitVector Used(NumRegs);
  for (const BitVector &A : APP)
    Used |= A;
  if (Used.none())
    return R;

  if (!Opts.Enable) {
    // Classic convention: save everything at entry, restore at every exit.
    R.SaveAtEntry[0] = Used;
    for (const auto &BB : Proc)
      if (isExitBlock(*BB))
        R.RestoreAtExit[BB->id()] = Used;
    R.SavedAtProcEntry = Used;
    return R;
  }

  std::vector<BitVector> W = APP;
  if (Opts.LoopExtension)
    R.LoopExtendedBits = extendOverLoops(W, LI);

  // Range-extension loop: solve, detect edges that would need splitting
  // (Fig. 2), widen APP there, re-solve. Each iteration strictly grows W,
  // so this terminates; the paper observes one to two iterations suffice.
  // All frontier scratch sets are hoisted out and reused.
  std::vector<BitVector> Covered(N, BitVector(NumRegs));
  BitVector SaveFront(NumRegs), RestFront(NumRegs), AnyCovered(NumRegs),
      AnyUncovered(NumRegs), NotCov(NumRegs), Mixed(NumRegs), Add(NumRegs);
  while (true) {
    ++R.ExtensionIterations;
    Dataflow D = solve(Proc, W, NumRegs);

    // Covered[b] = the register's activity region includes b (entered or
    // already passed through): ANTIN | AVOUT.
    for (unsigned B = 0; B < N; ++B) {
      Covered[B] = D.ANTIN[B];
      Covered[B] |= D.AVOUT[B];
    }

    bool Extended = false;
    for (unsigned B = 0; B < N; ++B) {
      const BasicBlock *BB = Proc.block(int(B));
      // Save frontier at B: anticipated but not yet covered from above.
      SaveFront = D.ANTIN[B];
      SaveFront.andNot(D.AVIN[B]);
      if (SaveFront.any() && !BB->Preds.empty()) {
        AnyCovered.clear();
        AnyUncovered.clear();
        for (int P : BB->Preds) {
          AnyCovered |= Covered[P];
          NotCov.setAll();
          NotCov.andNot(Covered[P]);
          AnyUncovered |= NotCov;
        }
        // Mixed predecessors: would need an edge split; extend instead.
        Mixed = SaveFront;
        Mixed &= AnyCovered;
        Mixed &= AnyUncovered;
        if (Mixed.any()) {
          for (int P : BB->Preds) {
            Add = Mixed;
            Add.andNot(Covered[P]);
            Add.andNot(W[P]);
            if (Add.any()) {
              W[P] |= Add;
              R.RangeExtendedBits += Add.count();
              Extended = true;
            }
          }
        }
      }
      // Restore frontier at B: available but no longer anticipated.
      RestFront = D.AVOUT[B];
      RestFront.andNot(D.ANTOUT[B]);
      if (RestFront.any() && !isExitBlock(*BB)) {
        AnyCovered.clear();
        AnyUncovered.clear();
        for (int S : BB->successors()) {
          AnyCovered |= Covered[S];
          NotCov.setAll();
          NotCov.andNot(Covered[S]);
          AnyUncovered |= NotCov;
        }
        Mixed = RestFront;
        Mixed &= AnyCovered;
        Mixed &= AnyUncovered;
        if (Mixed.any()) {
          for (int S : BB->successors()) {
            Add = Mixed;
            Add.andNot(Covered[S]);
            Add.andNot(W[S]);
            if (Add.any()) {
              W[S] |= Add;
              R.RangeExtendedBits += Add.count();
              Extended = true;
            }
          }
        }
      }
    }
    if (Extended)
      continue;

    // Stable: emit placement (equations (3.5)/(3.6) with the block-level
    // covered predicate).
    for (unsigned B = 0; B < N; ++B) {
      const BasicBlock *BB = Proc.block(int(B));
      BitVector Save = D.ANTIN[B];
      Save.andNot(D.AVIN[B]);
      for (int P : BB->Preds)
        Save.andNot(Covered[P]);
      // Unreachable blocks never execute; placing saves there is pointless.
      if (B != 0 && BB->Preds.empty())
        Save.clear();
      R.SaveAtEntry[B] = Save;

      BitVector Restore = D.AVOUT[B];
      Restore.andNot(D.ANTOUT[B]);
      if (!isExitBlock(*BB))
        for (int S : BB->successors())
          Restore.andNot(Covered[S]);
      R.RestoreAtExit[B] = Restore;
    }
    R.SavedAtProcEntry = R.SaveAtEntry[0];
    R.ExtendedAPP = W;
    return R;
  }
}

std::string ipra::verifyPlacement(const Procedure &Proc,
                                  const std::vector<BitVector> &APP,
                                  unsigned NumRegs,
                                  const ShrinkWrapResult &R) {
  // Per-register, per-block-entry state: 0 = unknown, 1 = not-saved,
  // 2 = saved, 3 = conflict.
  unsigned N = Proc.numBlocks();
  auto Describe = [](unsigned Reg, int Block, const char *What) {
    return "reg " + std::to_string(Reg) + " at bb" + std::to_string(Block) +
           ": " + What;
  };
  for (unsigned Reg = 0; Reg < NumRegs; ++Reg) {
    std::vector<int> State(N, 0);
    State[0] = 1;
    std::vector<int> Work{0};
    while (!Work.empty()) {
      int B = Work.back();
      Work.pop_back();
      int S = State[B];
      assert(S == 1 || S == 2);
      if (R.SaveAtEntry[B].test(Reg)) {
        if (S == 2)
          return Describe(Reg, B, "saved twice without restore");
        S = 2;
      }
      if (APP[B].test(Reg) && S != 2)
        return Describe(Reg, B, "appearance not covered by a save");
      if (R.RestoreAtExit[B].test(Reg)) {
        if (S != 2)
          return Describe(Reg, B, "restore without active save");
        S = 1;
      }
      const BasicBlock *BB = Proc.block(B);
      if (BB->terminator().Op == Opcode::Ret) {
        if (S == 2)
          return Describe(Reg, B, "exits with unrestored save");
        continue;
      }
      for (int Succ : BB->successors()) {
        if (State[Succ] == 0) {
          State[Succ] = S;
          Work.push_back(Succ);
        } else if (State[Succ] != S) {
          return Describe(Reg, Succ, "inconsistent save state at join");
        }
      }
    }
  }
  return "";
}
