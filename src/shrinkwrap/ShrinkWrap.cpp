//===- shrinkwrap/ShrinkWrap.cpp - Save/restore placement ------------------===//

#include "shrinkwrap/ShrinkWrap.h"

using namespace ipra;

namespace {

/// Is \p BB a procedure exit (terminated by Ret)?
bool isExitBlock(const BasicBlock &BB) {
  return BB.terminator().Op == Opcode::Ret;
}

/// Smears each register's APP over every loop it intersects, iterating so
/// nested/overlapping loops converge. Prevents save/restore pairs from
/// landing inside loops (Section 5).
/// \returns the number of (register, block) bits it added.
unsigned extendOverLoops(std::vector<BitVector> &APP, const LoopInfo &LI) {
  unsigned AddedBits = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const Loop &L : LI.loops()) {
      BitVector Union(APP.empty() ? 0 : APP[0].size());
      for (int B = L.Blocks.findFirst(); B >= 0; B = L.Blocks.findNext(B))
        Union |= APP[B];
      for (int B = L.Blocks.findFirst(); B >= 0; B = L.Blocks.findNext(B)) {
        BitVector Old = APP[B];
        APP[B] |= Union;
        if (Old != APP[B]) {
          Changed = true;
          AddedBits += APP[B].count() - Old.count();
        }
      }
    }
  }
  return AddedBits;
}

/// The four data-flow attributes of the paper's equations (3.1)-(3.4).
struct Dataflow {
  std::vector<BitVector> ANTIN, ANTOUT, AVIN, AVOUT;
};

/// Solves anticipability and availability of register appearances to a
/// fixed point (AND-confluence; initialized to the universal set away from
/// the boundary blocks).
Dataflow solve(const Procedure &Proc, const std::vector<BitVector> &APP,
               unsigned NumRegs) {
  unsigned N = Proc.numBlocks();
  Dataflow D;
  BitVector Top(NumRegs, true);
  BitVector Bottom(NumRegs, false);
  D.ANTIN.assign(N, Top);
  D.ANTOUT.assign(N, Top);
  D.AVIN.assign(N, Top);
  D.AVOUT.assign(N, Top);

  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Anticipability: backward.
    for (int B = int(N) - 1; B >= 0; --B) {
      const BasicBlock *BB = Proc.block(B);
      BitVector Out = isExitBlock(*BB) ? Bottom : Top;
      if (!isExitBlock(*BB))
        for (int S : BB->successors())
          Out &= D.ANTIN[S];
      BitVector In = APP[B] | Out;
      if (Out != D.ANTOUT[B] || In != D.ANTIN[B]) {
        D.ANTOUT[B] = std::move(Out);
        D.ANTIN[B] = std::move(In);
        Changed = true;
      }
    }
    // Availability: forward.
    for (unsigned B = 0; B < N; ++B) {
      const BasicBlock *BB = Proc.block(int(B));
      BitVector In = B == 0 ? Bottom : Top;
      if (B != 0) {
        if (BB->Preds.empty())
          In = Bottom; // unreachable block: nothing is available
        for (int P : BB->Preds)
          In &= D.AVOUT[P];
      }
      BitVector Out = APP[B] | In;
      if (In != D.AVIN[B] || Out != D.AVOUT[B]) {
        D.AVIN[B] = std::move(In);
        D.AVOUT[B] = std::move(Out);
        Changed = true;
      }
    }
  }
  return D;
}

} // namespace

ShrinkWrapResult ipra::placeSavesRestores(const Procedure &Proc,
                                          const std::vector<BitVector> &APP,
                                          unsigned NumRegs,
                                          const LoopInfo &LI,
                                          const ShrinkWrapOptions &Opts) {
  unsigned N = Proc.numBlocks();
  assert(APP.size() == N && "APP must have one entry per block");
  ShrinkWrapResult R;
  R.SaveAtEntry.assign(N, BitVector(NumRegs));
  R.RestoreAtExit.assign(N, BitVector(NumRegs));
  R.SavedAtProcEntry.resize(NumRegs);
  R.ExtendedAPP = APP;

  BitVector Used(NumRegs);
  for (const BitVector &A : APP)
    Used |= A;
  if (Used.none())
    return R;

  if (!Opts.Enable) {
    // Classic convention: save everything at entry, restore at every exit.
    R.SaveAtEntry[0] = Used;
    for (const auto &BB : Proc)
      if (isExitBlock(*BB))
        R.RestoreAtExit[BB->id()] = Used;
    R.SavedAtProcEntry = Used;
    return R;
  }

  std::vector<BitVector> W = APP;
  if (Opts.LoopExtension)
    R.LoopExtendedBits = extendOverLoops(W, LI);

  // Range-extension loop: solve, detect edges that would need splitting
  // (Fig. 2), widen APP there, re-solve. Each iteration strictly grows W,
  // so this terminates; the paper observes one to two iterations suffice.
  while (true) {
    ++R.ExtensionIterations;
    Dataflow D = solve(Proc, W, NumRegs);

    // Covered[b] = the register's activity region includes b (entered or
    // already passed through): ANTIN | AVOUT.
    std::vector<BitVector> Covered(N, BitVector(NumRegs));
    for (unsigned B = 0; B < N; ++B)
      Covered[B] = D.ANTIN[B] | D.AVOUT[B];

    bool Extended = false;
    for (unsigned B = 0; B < N; ++B) {
      const BasicBlock *BB = Proc.block(int(B));
      // Save frontier at B: anticipated but not yet covered from above.
      BitVector SaveFront = D.ANTIN[B];
      SaveFront.andNot(D.AVIN[B]);
      if (SaveFront.any() && !BB->Preds.empty()) {
        BitVector AnyCovered(NumRegs), AnyUncovered(NumRegs);
        for (int P : BB->Preds) {
          AnyCovered |= Covered[P];
          BitVector NotCov(NumRegs, true);
          NotCov.andNot(Covered[P]);
          AnyUncovered |= NotCov;
        }
        // Mixed predecessors: would need an edge split; extend instead.
        BitVector Mixed = SaveFront & AnyCovered & AnyUncovered;
        if (Mixed.any()) {
          for (int P : BB->Preds) {
            BitVector Add = Mixed;
            Add.andNot(Covered[P]);
            Add.andNot(W[P]);
            if (Add.any()) {
              W[P] |= Add;
              R.RangeExtendedBits += Add.count();
              Extended = true;
            }
          }
        }
      }
      // Restore frontier at B: available but no longer anticipated.
      BitVector RestFront = D.AVOUT[B];
      RestFront.andNot(D.ANTOUT[B]);
      if (RestFront.any() && !isExitBlock(*BB)) {
        BitVector AnyCovered(NumRegs), AnyUncovered(NumRegs);
        for (int S : BB->successors()) {
          AnyCovered |= Covered[S];
          BitVector NotCov(NumRegs, true);
          NotCov.andNot(Covered[S]);
          AnyUncovered |= NotCov;
        }
        BitVector Mixed = RestFront & AnyCovered & AnyUncovered;
        if (Mixed.any()) {
          for (int S : BB->successors()) {
            BitVector Add = Mixed;
            Add.andNot(Covered[S]);
            Add.andNot(W[S]);
            if (Add.any()) {
              W[S] |= Add;
              R.RangeExtendedBits += Add.count();
              Extended = true;
            }
          }
        }
      }
    }
    if (Extended)
      continue;

    // Stable: emit placement (equations (3.5)/(3.6) with the block-level
    // covered predicate).
    for (unsigned B = 0; B < N; ++B) {
      const BasicBlock *BB = Proc.block(int(B));
      BitVector Save = D.ANTIN[B];
      Save.andNot(D.AVIN[B]);
      for (int P : BB->Preds)
        Save.andNot(Covered[P]);
      // Unreachable blocks never execute; placing saves there is pointless.
      if (B != 0 && BB->Preds.empty())
        Save.clear();
      R.SaveAtEntry[B] = Save;

      BitVector Restore = D.AVOUT[B];
      Restore.andNot(D.ANTOUT[B]);
      if (!isExitBlock(*BB))
        for (int S : BB->successors())
          Restore.andNot(Covered[S]);
      R.RestoreAtExit[B] = Restore;
    }
    R.SavedAtProcEntry = R.SaveAtEntry[0];
    R.ExtendedAPP = W;
    return R;
  }
}

std::string ipra::verifyPlacement(const Procedure &Proc,
                                  const std::vector<BitVector> &APP,
                                  unsigned NumRegs,
                                  const ShrinkWrapResult &R) {
  // Per-register, per-block-entry state: 0 = unknown, 1 = not-saved,
  // 2 = saved, 3 = conflict.
  unsigned N = Proc.numBlocks();
  auto Describe = [](unsigned Reg, int Block, const char *What) {
    return "reg " + std::to_string(Reg) + " at bb" + std::to_string(Block) +
           ": " + What;
  };
  for (unsigned Reg = 0; Reg < NumRegs; ++Reg) {
    std::vector<int> State(N, 0);
    State[0] = 1;
    std::vector<int> Work{0};
    while (!Work.empty()) {
      int B = Work.back();
      Work.pop_back();
      int S = State[B];
      assert(S == 1 || S == 2);
      if (R.SaveAtEntry[B].test(Reg)) {
        if (S == 2)
          return Describe(Reg, B, "saved twice without restore");
        S = 2;
      }
      if (APP[B].test(Reg) && S != 2)
        return Describe(Reg, B, "appearance not covered by a save");
      if (R.RestoreAtExit[B].test(Reg)) {
        if (S != 2)
          return Describe(Reg, B, "restore without active save");
        S = 1;
      }
      const BasicBlock *BB = Proc.block(B);
      if (BB->terminator().Op == Opcode::Ret) {
        if (S == 2)
          return Describe(Reg, B, "exits with unrestored save");
        continue;
      }
      for (int Succ : BB->successors()) {
        if (State[Succ] == 0) {
          State[Succ] = S;
          Work.push_back(Succ);
        } else if (State[Succ] != S) {
          return Describe(Reg, Succ, "inconsistent save state at join");
        }
      }
    }
  }
  return "";
}
