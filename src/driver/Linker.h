//===- driver/Linker.h - Cross-module linking ------------------*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's compilation setting (Section 7) links the Ucode of separate
/// program units before optimization so the inter-procedural allocator
/// sees the whole call graph. This linker merges translation units:
/// procedure ids and global ids are remapped, extern declarations resolve
/// against definitions by name, and (optionally) exported procedures are
/// internalized under a whole-program assumption so only main and
/// address-taken procedures remain open.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_DRIVER_LINKER_H
#define IPRA_DRIVER_LINKER_H

#include "ir/Procedure.h"
#include "support/Diagnostics.h"

#include <memory>
#include <vector>

namespace ipra {

struct LinkOptions {
  /// Treat the linked image as the whole program: clear Exported on every
  /// procedure (their callers are all visible now). main stays open, as do
  /// address-taken and recursive procedures.
  bool InternalizeExports = true;
};

/// Links \p Units into one module. Non-exported procedures with clashing
/// names are renamed ("name$u<N>"); duplicate *exported* definitions and
/// unresolved externs that are actually called are reported as errors.
/// \returns nullptr if errors were reported.
std::unique_ptr<Module> linkModules(
    std::vector<std::unique_ptr<Module>> Units, DiagnosticEngine &Diags,
    const LinkOptions &Opts = {});

} // namespace ipra

#endif // IPRA_DRIVER_LINKER_H
