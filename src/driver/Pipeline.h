//===- driver/Pipeline.h - Whole-compiler driver ---------------*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end compilation: miniC source -> IR -> mid-end optimization ->
/// register allocation (intra- or inter-procedural, matching the paper's
/// -O2/-O3 flags) -> shrink-wrapped code generation -> machine program,
/// plus the convenience of running the result on the simulator. The
/// configuration mirrors the experiment axes of the paper's Tables 1 and 2.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_DRIVER_PIPELINE_H
#define IPRA_DRIVER_PIPELINE_H

#include "codegen/CodeGen.h"
#include "regalloc/RegAlloc.h"
#include "sim/Simulator.h"
#include "support/Diagnostics.h"
#include "support/Statistics.h"

#include <functional>
#include <memory>
#include <string>

namespace ipra {

/// What CompileOptions::Threads defaults to: the host's hardware
/// concurrency (floor of one worker).
unsigned defaultCompileThreads();

struct CompileOptions {
  /// 2 = intra-procedural allocation (-O2); 3 = inter-procedural (-O3).
  int OptLevel = 2;
  /// Shrink-wrap callee-saved saves/restores.
  bool ShrinkWrap = false;
  /// Register-set restriction (Table 2 experiments). Layered on top of
  /// Convention by reserving every pool register outside the restricted
  /// file (see ConventionSpec::restricted).
  RegSetRestriction Restriction = RegSetRestriction::None;
  /// The calling convention the back end compiles against (`ipracc
  /// --convention=`). Defaults to the paper's R2000-like convention;
  /// must satisfy ConventionSpec::validate.
  ConventionSpec Convention = ConventionSpec::defaultSpec();
  /// Section-6 combined strategy (ablation switch).
  bool CombinedStrategy = true;
  /// IPRA register parameter passing (ablation switch).
  bool RegisterParams = true;
  /// Keep shrink-wrapped pairs out of loops (ablation switch).
  bool LoopExtension = true;
  /// Run the mid-end cleanup passes ("Uopt").
  bool MidEndOpt = true;
  /// Audit the generated machine code against the published summaries,
  /// the shrink-wrap pairing discipline and the linkage protocol (see
  /// verify/MIRVerifier.h). Violations become errors in the driver's
  /// DiagnosticEngine; the compile result is still returned for
  /// debugging. Default-on; compile-time benchmarks switch it off to
  /// stay comparable with earlier measurements.
  bool VerifyMIR = true;
  /// The same discipline one level further down: statically audit the
  /// x86-64 images the native engine JITs from this compile's output
  /// (see verify/NativeVerifier.h and SimOptions::VerifyNative).
  /// compileAndRun forwards it into the simulator options; it has no
  /// effect on compilation itself or on the interpreter engines.
  /// Default-on in debug builds like VerifyMIR's machine-code audit.
#ifdef NDEBUG
  bool VerifyNative = false;
#else
  bool VerifyNative = true;
#endif
  /// Optional block profile from a training run (see compileWithProfile).
  const ProfileData *Profile = nullptr;
  /// Back-end worker threads. The per-procedure pipeline (mid-end opt,
  /// allocation, shrink-wrap, codegen) runs as one task per call-graph
  /// SCC under a dependency-counting DAG scheduler; a task becomes ready
  /// once every distinct task holding one of its closed callees has
  /// published its summaries. 0 compiles serially (the same task bodies,
  /// run inline in bottom-up task order); output is byte-identical at
  /// any thread count.
  unsigned Threads = defaultCompileThreads();
  /// Optional span recorder for `--trace-json`: when non-null the driver
  /// records front-end/back-end phases and every scheduler task (with its
  /// per-procedure sub-phases) as Chrome trace events. Timings are wall
  /// clock and therefore schedule-dependent; they never influence
  /// CompileResult::Stats, which stays byte-identical at any Threads.
  TraceRecorder *Trace = nullptr;

  RegAllocOptions regAllocOptions() const {
    RegAllocOptions O;
    O.InterProcedural = OptLevel >= 3;
    O.ShrinkWrap = ShrinkWrap;
    O.CombinedStrategy = CombinedStrategy;
    O.RegisterParams = RegisterParams;
    O.LoopExtension = LoopExtension;
    O.Profile = Profile;
    return O;
  }
};

/// The paper's experiment configurations.
/// Base: -O2 with shrink-wrap disabled (the comparison baseline).
/// A: -O2 + shrink-wrap. B: -O3 without shrink-wrap. C: -O3 + shrink-wrap.
/// D: C with only 7 caller-saved registers. E: C with only 7 callee-saved.
enum class PaperConfig { Base, A, B, C, D, E };

CompileOptions optionsFor(PaperConfig Config);
const char *paperConfigName(PaperConfig Config);

/// All compiler artifacts for one translation unit.
struct CompileResult {
  std::unique_ptr<Module> IR;
  MachineDesc Machine{RegSetRestriction::None};
  std::unique_ptr<SummaryTable> Summaries;
  std::vector<AllocationResult> Alloc;
  MProgram Program;

  /// Static-code statistics useful for reports.
  unsigned StaticInstructions = 0;

  /// Compile-time counters: one "regalloc.* / shrinkwrap.* / codegen.*"
  /// set per procedure (program order) plus module-level "pipeline.*"
  /// counters. Each scheduler task fills only its own procedures' slots,
  /// so the whole struct -- and its JSON rendering -- is byte-identical at
  /// any CompileOptions::Threads value.
  CompileStats Stats;
};

/// Compiles \p Source end to end. \returns nullptr on any front-end error
/// (details in \p Diags).
std::unique_ptr<CompileResult> compileProgram(const std::string &Source,
                                              const CompileOptions &Opts,
                                              DiagnosticEngine &Diags);

/// Per-procedure extension points for the scheduled back end, used by the
/// incremental compile service (driver/IncrementalService.h). Both hooks
/// run inside scheduler tasks, concurrently for distinct procedures; they
/// may touch only the given procedure's slots in \p Result plus state of
/// their own that is race-free under the scheduler's publish-before-
/// release ordering (the same argument that makes SummaryTable safe).
struct BackEndHooks {
  /// Called before a procedure is compiled. Return true to skip the
  /// normal mid-end/allocate/codegen path entirely -- the hook must then
  /// have installed the procedure's IR body, Alloc slot, machine code,
  /// stats slot, and published its summary itself.
  std::function<bool(int ProcId, CompileResult &Result)> TryReuse;
  /// Called after a procedure went through the normal compile path, with
  /// its summary already published.
  std::function<void(int ProcId, CompileResult &Result)> Compiled;
};

/// Runs the back end over an already-built module: IR verification,
/// open/closed cross-check, the SCC DAG schedule, per-procedure
/// allocation + codegen, and the MIR audit -- exactly what compileProgram
/// does after the front end. Takes ownership of \p IR. \p Hooks, when
/// non-null, lets the incremental service substitute cached results per
/// procedure. \returns nullptr on verification failure.
std::unique_ptr<CompileResult> compileModule(std::unique_ptr<Module> IR,
                                             const CompileOptions &Opts,
                                             DiagnosticEngine &Diags,
                                             const BackEndHooks *Hooks =
                                                 nullptr);

/// Separate compilation: compiles each source as its own translation
/// unit, links them (see driver/Linker.h), then runs the back end over
/// the linked image -- the paper's Section 7 setting. With
/// \p InternalizeExports false, exported procedures stay open across the
/// link, modelling a library boundary.
std::unique_ptr<CompileResult> compileUnits(
    const std::vector<std::string> &Sources, const CompileOptions &Opts,
    DiagnosticEngine &Diags, bool InternalizeExports = true);

/// Compile + simulate in one call. RunStats.OK is false on compile errors
/// (with Error filled in).
RunStats compileAndRun(const std::string &Source, const CompileOptions &Opts,
                       const SimOptions &SimOpts = {});

/// Profile-guided compilation (the paper's stated future work): compiles
/// \p Source, executes a training run collecting block counts, then
/// recompiles with measured frequencies driving every allocation decision.
/// \returns the final build, or nullptr on errors (including a failing
/// training run, reported through \p Diags).
std::unique_ptr<CompileResult> compileWithProfile(const std::string &Source,
                                                  CompileOptions Opts,
                                                  DiagnosticEngine &Diags);

} // namespace ipra

#endif // IPRA_DRIVER_PIPELINE_H
