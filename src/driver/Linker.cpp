//===- driver/Linker.cpp ---------------------------------------------------===//

#include "driver/Linker.h"

#include <unordered_map>

using namespace ipra;

namespace {

/// Copies the body and metadata of \p From into the fresh procedure
/// \p To, remapping global and callee ids.
void cloneProcedure(const Procedure &From, Procedure *To,
                    const std::vector<int64_t> &GlobalMap,
                    const std::vector<int> &ProcMap) {
  To->ParamVRegs = From.ParamVRegs;
  To->NumVRegs = From.NumVRegs;
  To->FrameObjects = From.FrameObjects;
  To->IsExternal = From.IsExternal;
  To->AddressTaken = From.AddressTaken;
  To->Exported = From.Exported;
  To->IsMain = From.IsMain;
  for (const auto &BB : From) {
    BasicBlock *NewBB = To->makeBlock();
    NewBB->Insts = BB->Insts;
    for (Instruction &I : NewBB->Insts) {
      if (I.Global >= 0)
        I.Global = int(GlobalMap[I.Global]);
      if (I.Callee >= 0) {
        assert(ProcMap[I.Callee] >= 0 && "callee not mapped");
        I.Callee = ProcMap[I.Callee];
      }
    }
  }
  if (!To->IsExternal)
    To->recomputeCFG();
}

} // namespace

std::unique_ptr<Module> ipra::linkModules(
    std::vector<std::unique_ptr<Module>> Units, DiagnosticEngine &Diags,
    const LinkOptions &Opts) {
  auto Out = std::make_unique<Module>();

  // Pass 1: place every definition, renaming internal (non-exported) name
  // clashes; exported names and main must be unique program-wide.
  struct Placement {
    int NewId = -1;
  };
  std::vector<std::vector<Placement>> Placed(Units.size());
  std::unordered_map<std::string, int> ExportedDefs; // name -> new id
  std::unordered_map<std::string, int> AnyName;      // uniqueness helper
  int MainCount = 0;

  for (unsigned U = 0; U < Units.size(); ++U) {
    Module &Unit = *Units[U];
    Placed[U].resize(Unit.numProcedures());
    for (unsigned Id = 0; Id < Unit.numProcedures(); ++Id) {
      const Procedure *P = Unit.procedure(int(Id));
      if (P->IsExternal)
        continue; // resolved in pass 2
      std::string Name = P->name();
      if (P->Exported || P->IsMain) {
        if (ExportedDefs.count(Name) || (P->IsMain && MainCount)) {
          Diags.error("duplicate exported symbol '" + Name + "'");
          continue;
        }
      }
      if (AnyName.count(Name))
        Name += "$u" + std::to_string(U);
      Procedure *NewProc = Out->makeProcedure(Name);
      AnyName[Name] = NewProc->id();
      Placed[U][Id].NewId = NewProc->id();
      if (P->Exported || P->IsMain)
        ExportedDefs[P->name()] = NewProc->id();
      MainCount += P->IsMain;
    }
  }
  if (MainCount == 0)
    Diags.warning({}, "linked program has no main procedure");

  // Pass 2: resolve externs against exported definitions; keep one
  // external stub per unresolved name.
  std::unordered_map<std::string, int> Unresolved;
  for (unsigned U = 0; U < Units.size(); ++U) {
    Module &Unit = *Units[U];
    for (unsigned Id = 0; Id < Unit.numProcedures(); ++Id) {
      const Procedure *P = Unit.procedure(int(Id));
      if (!P->IsExternal)
        continue;
      auto Def = ExportedDefs.find(P->name());
      if (Def != ExportedDefs.end()) {
        Placed[U][Id].NewId = Def->second;
        continue;
      }
      auto Stub = Unresolved.find(P->name());
      if (Stub != Unresolved.end()) {
        Placed[U][Id].NewId = Stub->second;
        continue;
      }
      // A file-local definition may already own this name; externs refer
      // to the (missing) exported symbol, not to it.
      std::string StubName = P->name();
      if (Out->findProcedure(StubName))
        StubName += "$ext";
      Procedure *NewProc = Out->makeProcedure(StubName);
      NewProc->IsExternal = true;
      NewProc->ParamVRegs = P->ParamVRegs;
      NewProc->NumVRegs = P->NumVRegs;
      Unresolved[P->name()] = NewProc->id();
      Placed[U][Id].NewId = NewProc->id();
      Diags.warning({}, "procedure '" + P->name() +
                            "' remains external after linking");
    }
  }
  if (Diags.hasErrors())
    return nullptr;

  // Pass 3: merge globals and clone bodies with remapped ids.
  for (unsigned U = 0; U < Units.size(); ++U) {
    Module &Unit = *Units[U];
    std::vector<int64_t> GlobalMap(Unit.Globals.size());
    for (unsigned G = 0; G < Unit.Globals.size(); ++G) {
      GlobalMap[G] = Out->Globals.size();
      Out->Globals.push_back(Unit.Globals[G]);
    }
    std::vector<int> ProcMap(Unit.numProcedures());
    for (unsigned Id = 0; Id < Unit.numProcedures(); ++Id)
      ProcMap[Id] = Placed[U][Id].NewId;
    for (unsigned Id = 0; Id < Unit.numProcedures(); ++Id) {
      const Procedure *P = Unit.procedure(int(Id));
      if (P->IsExternal)
        continue;
      cloneProcedure(*P, Out->procedure(ProcMap[Id]), GlobalMap, ProcMap);
    }
  }

  // Whole-program assumption: every caller is now visible.
  if (Opts.InternalizeExports)
    for (auto &P : *Out)
      P->Exported = false;

  return Out;
}
