//===- driver/Pipeline.cpp -------------------------------------------------===//

#include "driver/Pipeline.h"

#include "analysis/AnalysisManager.h"
#include "analysis/CallGraph.h"
#include "analysis/Loops.h"
#include "analysis/Profile.h"
#include "frontend/Frontend.h"
#include "opt/Passes.h"
#include "support/ThreadPool.h"

#include "driver/Linker.h"
#include "ir/Verifier.h"
#include "verify/MIRVerifier.h"

#include <atomic>
#include <functional>

using namespace ipra;

unsigned ipra::defaultCompileThreads() {
  return ThreadPool::defaultThreadCount();
}

CompileOptions ipra::optionsFor(PaperConfig Config) {
  CompileOptions O;
  switch (Config) {
  case PaperConfig::Base:
    O.OptLevel = 2;
    O.ShrinkWrap = false;
    break;
  case PaperConfig::A:
    O.OptLevel = 2;
    O.ShrinkWrap = true;
    break;
  case PaperConfig::B:
    O.OptLevel = 3;
    O.ShrinkWrap = false;
    break;
  case PaperConfig::C:
    O.OptLevel = 3;
    O.ShrinkWrap = true;
    break;
  case PaperConfig::D:
    O.OptLevel = 3;
    O.ShrinkWrap = true;
    O.Restriction = RegSetRestriction::CallerOnly7;
    break;
  case PaperConfig::E:
    O.OptLevel = 3;
    O.ShrinkWrap = true;
    O.Restriction = RegSetRestriction::CalleeOnly7;
    break;
  }
  return O;
}

const char *ipra::paperConfigName(PaperConfig Config) {
  switch (Config) {
  case PaperConfig::Base:
    return "base (-O2, no shrink-wrap)";
  case PaperConfig::A:
    return "A (-O2 + shrink-wrap)";
  case PaperConfig::B:
    return "B (-O3, no shrink-wrap)";
  case PaperConfig::C:
    return "C (-O3 + shrink-wrap)";
  case PaperConfig::D:
    return "D (C, 7 caller-saved regs)";
  case PaperConfig::E:
    return "E (C, 7 callee-saved regs)";
  }
  return "?";
}

namespace {

/// The whole per-procedure back end, run inside one scheduler task:
/// mid-end cleanup, frequency estimation, register allocation (which
/// publishes the summary) and code generation. Touches only this
/// procedure's IR, its Alloc/Procs slots, and -- read-only -- the
/// summaries of its own callees, all of which were published before this
/// task was released; that is what makes concurrent tasks race-free.
void compileProcedure(int ProcId, CompileResult &Result, const CallGraph &CG,
                      const CompileOptions &Opts,
                      const CodeGenOptions &CGOpts) {
  Procedure *Proc = Result.IR->procedure(ProcId);
  CompileStats::ProcStats &PS = Result.Stats.Procs[ProcId];
  PS.Name = Proc->name();
  if (Proc->IsExternal) {
    Result.Alloc[ProcId] =
        allocateProcedure(*Proc, Result.Machine, *Result.Summaries,
                          /*IsOpen=*/true, Opts.regAllocOptions());
    PS.Counters.merge(Result.Alloc[ProcId].Stats);
    MProc MP;
    MP.Name = Proc->name();
    MP.Id = ProcId;
    MP.IsExternal = true;
    // Callers of an external use the default protocol for its arity, and
    // the MIR verifier checks their argument placement against it.
    MP.NumParams = unsigned(Proc->ParamVRegs.size());
    Result.Program.Procs[ProcId] = std::move(MP);
    return;
  }
  // One analysis cache for the whole per-procedure back end. The mid-end
  // invalidates it on mutation; its final no-change round leaves liveness
  // warm, and neither recomputeCFG nor the frequency step disturbs it, so
  // regalloc and codegen below run on cache hits. Task-local by
  // construction: no synchronization.
  AnalysisManager AM(*Proc);
  {
    ScopedTimer T(Opts.Trace, "opt " + Proc->name(), "midend");
    if (Opts.MidEndOpt)
      optimize(*Proc, AM);
    Proc->recomputeCFG();
    if (Opts.Profile && Opts.Profile->covers(ProcId, Proc->numBlocks()))
      applyProfile(*Proc, *Opts.Profile);
    else
      estimateFrequencies(*Proc, LoopInfo::compute(*Proc));
  }
  {
    ScopedTimer T(Opts.Trace, "regalloc " + Proc->name(), "regalloc");
    Result.Alloc[ProcId] =
        allocateProcedure(*Proc, Result.Machine, *Result.Summaries,
                          CG.isOpen(ProcId), Opts.regAllocOptions(), &AM);
  }
  PS.Counters.merge(Result.Alloc[ProcId].Stats);
  {
    ScopedTimer T(Opts.Trace, "codegen " + Proc->name(), "codegen");
    Result.Program.Procs[ProcId] = generateProcedure(
        *Proc, Result.Alloc[ProcId], *Result.Summaries, CGOpts,
        Result.Program.GlobalOffsets, &PS.Counters, &AM);
  }
  AM.addCountersTo(PS.Counters);
}

/// Shared back end: one task per call-graph SCC, scheduled by dependency
/// counting. Threads == 0 runs the same task bodies inline in bottom-up
/// task order, so serial and parallel modes share a single code path and
/// the output is byte-identical by construction.
std::unique_ptr<CompileResult> runBackEnd(std::unique_ptr<Module> IR,
                                          const CompileOptions &Opts,
                                          DiagnosticEngine &Diags,
                                          const BackEndHooks *Hooks) {
  ScopedTimer BackendTimer(Opts.Trace, "backend", "phase");
  auto Result = std::make_unique<CompileResult>();
  Result->IR = std::move(IR);
  Module &Mod = *Result->IR;
  unsigned NumProcs = Mod.numProcedures();

  {
    std::string ConvErr;
    if (!Opts.Convention.validate(&ConvErr)) {
      Diags.error("invalid calling convention: " + ConvErr);
      return nullptr;
    }
  }
  Result->Machine = MachineDesc(Opts.Convention.restricted(Opts.Restriction));
  Result->Summaries = std::make_unique<SummaryTable>(Result->Machine,
                                                     NumProcs);
  Result->Alloc.resize(NumProcs);
  Result->Program.Procs.resize(NumProcs);
  Result->Stats.Procs.resize(NumProcs);
  layoutGlobals(Mod, Result->Program);

  CodeGenOptions CGOpts;
  CGOpts.InterMode = Opts.OptLevel >= 3;
  CGOpts.RegisterParams = Opts.RegisterParams;

  // Gate the back end on a well-formed module: the allocator and codegen
  // assume verified IR, and every pipeline entry point funnels through
  // here (compileUnits used to verify only the linked image).
  {
    ScopedTimer T(Opts.Trace, "verify-ir", "verify");
    DiagnosticEngine VerifyDiags;
    if (!verify(Mod, VerifyDiags)) {
      Diags.error("module failed IR verification:\n" + VerifyDiags.str());
      return nullptr;
    }
  }

  // The schedule comes from the pre-opt call graph. The mid-end only ever
  // removes calls (DCE keeps them, simplifyCFG can drop dead blocks), so
  // this graph is a superset of the post-opt one: every summary a task
  // reads is still covered by a dependency, and a procedure is at worst
  // classified open more conservatively -- which is always correct.
  CallGraph CG = CallGraph::build(Mod);

  // Cross-check the open/closed classification the whole one-pass scheme
  // hangs off: an independent recomputation must agree before any
  // summary is trusted.
  {
    std::vector<char> Open(NumProcs);
    for (unsigned P = 0; P < NumProcs; ++P)
      Open[P] = CG.isOpen(int(P));
    DiagnosticEngine VerifyDiags;
    if (!verifyOpenClosed(Mod, Open, VerifyDiags)) {
      Diags.error("open/closed classification failed verification:\n" +
                  VerifyDiags.str());
      return nullptr;
    }
  }
  CallGraph::Schedule Sched = CG.schedule();
  unsigned NumTasks = Sched.numTasks();

  // Diagnostics are buffered per procedure and spliced back in program
  // order below, so their order never depends on task interleaving. (The
  // back end is currently diagnostic-free; the plumbing pins the contract
  // down for passes that do report.)
  std::vector<DiagnosticEngine> ProcDiags(NumProcs);
  auto runTaskBody = [&](int Task) {
    ScopedTimer T(Opts.Trace, "task " + std::to_string(Task), "scheduler");
    for (int ProcId : Sched.TaskProcs[Task]) {
      if (Hooks && Hooks->TryReuse && Hooks->TryReuse(ProcId, *Result))
        continue;
      compileProcedure(ProcId, *Result, CG, Opts, CGOpts);
      if (Hooks && Hooks->Compiled)
        Hooks->Compiled(ProcId, *Result);
    }
  };

  if (Opts.Threads == 0 || NumTasks <= 1) {
    for (unsigned T = 0; T < NumTasks; ++T)
      runTaskBody(int(T));
  } else {
    // Dependency counting: each task holds the number of distinct
    // closed-callee tasks it still waits on; finishing a task decrements
    // its successors and enqueues those that hit zero. The pool's queue
    // synchronization orders every summary publish before any dependent
    // read, so the SummaryTable itself needs no locking.
    std::vector<std::atomic<unsigned>> PendingDeps(NumTasks);
    for (unsigned T = 0; T < NumTasks; ++T)
      PendingDeps[T].store(Sched.ReadyCounts[T], std::memory_order_relaxed);
    ThreadPool Pool(Opts.Threads);
    std::function<void(int)> runTask = [&](int Task) {
      runTaskBody(Task);
      for (int Succ : Sched.Successors[Task])
        if (PendingDeps[Succ].fetch_sub(1, std::memory_order_acq_rel) == 1)
          Pool.enqueue([&runTask, Succ] { runTask(Succ); });
    };
    for (unsigned T = 0; T < NumTasks; ++T)
      if (Sched.ReadyCounts[T] == 0)
        Pool.enqueue([&runTask, T] { runTask(int(T)); });
    Pool.wait();
  }

  // Serial epilogue in original program order: convention-checker clobber
  // masks, entry point, and the per-procedure diagnostic buffers.
  Result->Program.DefaultClobber = Result->Machine.defaultClobber();
  for (unsigned Id = 0; Id < NumProcs; ++Id) {
    const RegUsageSummary &S = Result->Summaries->lookup(int(Id));
    Result->Program.ClobberMasks.push_back(
        S.Precise ? S.Clobbered : Result->Machine.defaultClobber());
    const Procedure *P = Mod.procedure(int(Id));
    Result->Program.ParamRegMasks.push_back(Result->Summaries->paramRegMask(
        int(Id), unsigned(P->ParamVRegs.size())));
    if (P->IsMain && !P->IsExternal)
      Result->Program.MainProcId = int(Id);
  }
  for (DiagnosticEngine &PD : ProcDiags)
    Diags.append(std::move(PD));
  Result->StaticInstructions = Result->Program.instructionCount();

  // Module-level schedule-shape counters. Deliberately excludes the
  // configured thread count and any timing: CompileStats must be a pure
  // function of the input program and options axes the machine code
  // itself depends on.
  StatCounters &MS = Result->Stats.Module;
  MS.add("pipeline.procs", NumProcs);
  MS.add("pipeline.tasks", NumTasks);
  unsigned Roots = 0, Edges = 0;
  for (unsigned T = 0; T < NumTasks; ++T) {
    Roots += Sched.ReadyCounts[T] == 0;
    Edges += unsigned(Sched.Successors[T].size());
  }
  MS.add("pipeline.ready_tasks", Roots);
  MS.add("pipeline.dependency_edges", Edges);
  MS.add("pipeline.static_instructions", Result->StaticInstructions);

  // Audit the finished machine program against its published contracts.
  // Violations become driver errors but the result is still returned so
  // callers can inspect the offending code. The counters are part of
  // CompileStats (and its deterministic JSON), so they are only present
  // when the audit actually ran.
  if (Opts.VerifyMIR) {
    ScopedTimer T(Opts.Trace, "verify-mir", "verify");
    MVerifyResult V =
        verifyMachineProgram(Result->Program, *Result->Summaries);
    std::vector<MVerifyDiag> PlacementDiags = verifyPlacements(
        Mod, Result->Alloc, *Result->Summaries, Opts.OptLevel >= 3);
    for (const MVerifyDiag &D : V.Violations)
      Diags.error("MIR verifier: " + D.str());
    for (const MVerifyDiag &D : PlacementDiags)
      Diags.error("MIR verifier: " + D.str());
    MS.add("verify.procedures_checked", V.ProceduresChecked);
    MS.add("verify.violations",
           unsigned(V.Violations.size() + PlacementDiags.size()));
  }
  return Result;
}

} // namespace

std::unique_ptr<CompileResult> ipra::compileProgram(const std::string &Source,
                                                    const CompileOptions &Opts,
                                                    DiagnosticEngine &Diags) {
  std::unique_ptr<Module> IR;
  {
    ScopedTimer T(Opts.Trace, "frontend", "phase");
    IR = compileToIR(Source, Diags);
  }
  if (!IR)
    return nullptr;
  return runBackEnd(std::move(IR), Opts, Diags, nullptr);
}

std::unique_ptr<CompileResult> ipra::compileModule(std::unique_ptr<Module> IR,
                                                   const CompileOptions &Opts,
                                                   DiagnosticEngine &Diags,
                                                   const BackEndHooks *Hooks) {
  return runBackEnd(std::move(IR), Opts, Diags, Hooks);
}

std::unique_ptr<CompileResult> ipra::compileUnits(
    const std::vector<std::string> &Sources, const CompileOptions &Opts,
    DiagnosticEngine &Diags, bool InternalizeExports) {
  std::vector<std::unique_ptr<Module>> Units;
  for (const std::string &Source : Sources) {
    auto Unit = compileToIR(Source, Diags);
    if (!Unit)
      return nullptr;
    Units.push_back(std::move(Unit));
  }
  LinkOptions LOpts;
  LOpts.InternalizeExports = InternalizeExports;
  auto Linked = linkModules(std::move(Units), Diags, LOpts);
  if (!Linked)
    return nullptr;
  return runBackEnd(std::move(Linked), Opts, Diags, nullptr);
}

std::unique_ptr<CompileResult> ipra::compileWithProfile(
    const std::string &Source, CompileOptions Opts, DiagnosticEngine &Diags) {
  Opts.Profile = nullptr;
  auto Training = compileProgram(Source, Opts, Diags);
  if (!Training)
    return nullptr;
  SimOptions SimOpts;
  SimOpts.CollectBlockProfile = true;
  // The training run is the hot half of every --profile compile; the
  // decoded engine's profiled-op variants collect identical block counts
  // (differentially tested) at a fraction of the dispatch cost.
  SimOpts.Engine = SimEngine::Decoded;
  RunStats TrainingStats = runProgram(Training->Program, SimOpts);
  if (!TrainingStats.OK) {
    Diags.error("profile training run failed: " + TrainingStats.Error);
    return nullptr;
  }
  Opts.Profile = &TrainingStats.Profile;
  return compileProgram(Source, Opts, Diags);
}

RunStats ipra::compileAndRun(const std::string &Source,
                             const CompileOptions &Opts,
                             const SimOptions &SimOpts) {
  DiagnosticEngine Diags;
  auto Compiled = compileProgram(Source, Opts, Diags);
  if (!Compiled) {
    RunStats Stats;
    Stats.OK = false;
    Stats.Error = "compilation failed:\n" + Diags.str();
    return Stats;
  }
  // The compile-side audit switch reaches the native engine through the
  // sim options; either side saying "off" wins (benchmarks disable one
  // switch and expect no audits anywhere).
  SimOptions S = SimOpts;
  S.VerifyNative = SimOpts.VerifyNative && Opts.VerifyNative;
  return runProgram(Compiled->Program, S);
}
