//===- driver/Pipeline.cpp -------------------------------------------------===//

#include "driver/Pipeline.h"

#include "frontend/Frontend.h"
#include "opt/Passes.h"

#include "driver/Linker.h"
#include "ir/Verifier.h"

using namespace ipra;

CompileOptions ipra::optionsFor(PaperConfig Config) {
  CompileOptions O;
  switch (Config) {
  case PaperConfig::Base:
    O.OptLevel = 2;
    O.ShrinkWrap = false;
    break;
  case PaperConfig::A:
    O.OptLevel = 2;
    O.ShrinkWrap = true;
    break;
  case PaperConfig::B:
    O.OptLevel = 3;
    O.ShrinkWrap = false;
    break;
  case PaperConfig::C:
    O.OptLevel = 3;
    O.ShrinkWrap = true;
    break;
  case PaperConfig::D:
    O.OptLevel = 3;
    O.ShrinkWrap = true;
    O.Restriction = RegSetRestriction::CallerOnly7;
    break;
  case PaperConfig::E:
    O.OptLevel = 3;
    O.ShrinkWrap = true;
    O.Restriction = RegSetRestriction::CalleeOnly7;
    break;
  }
  return O;
}

const char *ipra::paperConfigName(PaperConfig Config) {
  switch (Config) {
  case PaperConfig::Base:
    return "base (-O2, no shrink-wrap)";
  case PaperConfig::A:
    return "A (-O2 + shrink-wrap)";
  case PaperConfig::B:
    return "B (-O3, no shrink-wrap)";
  case PaperConfig::C:
    return "C (-O3 + shrink-wrap)";
  case PaperConfig::D:
    return "D (C, 7 caller-saved regs)";
  case PaperConfig::E:
    return "E (C, 7 callee-saved regs)";
  }
  return "?";
}

namespace {

/// Shared back end: mid-end cleanup, allocation, code generation.
std::unique_ptr<CompileResult> runBackEnd(std::unique_ptr<Module> IR,
                                          const CompileOptions &Opts) {
  auto Result = std::make_unique<CompileResult>();
  Result->IR = std::move(IR);
  if (Opts.MidEndOpt)
    optimize(*Result->IR);

  Result->Machine = MachineDesc(Opts.Restriction);
  Result->Summaries = std::make_unique<SummaryTable>(
      Result->Machine, Result->IR->numProcedures());
  Result->Alloc = allocateModule(*Result->IR, Result->Machine,
                                 *Result->Summaries, Opts.regAllocOptions());

  CodeGenOptions CGOpts;
  CGOpts.InterMode = Opts.OptLevel >= 3;
  CGOpts.RegisterParams = Opts.RegisterParams;
  Result->Program = generateCode(*Result->IR, Result->Alloc,
                                 *Result->Summaries, CGOpts);
  Result->StaticInstructions = Result->Program.instructionCount();
  return Result;
}

} // namespace

std::unique_ptr<CompileResult> ipra::compileProgram(const std::string &Source,
                                                    const CompileOptions &Opts,
                                                    DiagnosticEngine &Diags) {
  auto IR = compileToIR(Source, Diags);
  if (!IR)
    return nullptr;
  return runBackEnd(std::move(IR), Opts);
}

std::unique_ptr<CompileResult> ipra::compileUnits(
    const std::vector<std::string> &Sources, const CompileOptions &Opts,
    DiagnosticEngine &Diags, bool InternalizeExports) {
  std::vector<std::unique_ptr<Module>> Units;
  for (const std::string &Source : Sources) {
    auto Unit = compileToIR(Source, Diags);
    if (!Unit)
      return nullptr;
    Units.push_back(std::move(Unit));
  }
  LinkOptions LOpts;
  LOpts.InternalizeExports = InternalizeExports;
  auto Linked = linkModules(std::move(Units), Diags, LOpts);
  if (!Linked)
    return nullptr;
  {
    DiagnosticEngine VerifyDiags;
    if (!verify(*Linked, VerifyDiags)) {
      Diags.error("linked module failed verification:\n" +
                  VerifyDiags.str());
      return nullptr;
    }
  }
  return runBackEnd(std::move(Linked), Opts);
}

std::unique_ptr<CompileResult> ipra::compileWithProfile(
    const std::string &Source, CompileOptions Opts, DiagnosticEngine &Diags) {
  Opts.Profile = nullptr;
  auto Training = compileProgram(Source, Opts, Diags);
  if (!Training)
    return nullptr;
  SimOptions SimOpts;
  SimOpts.CollectBlockProfile = true;
  RunStats TrainingStats = runProgram(Training->Program, SimOpts);
  if (!TrainingStats.OK) {
    Diags.error("profile training run failed: " + TrainingStats.Error);
    return nullptr;
  }
  Opts.Profile = &TrainingStats.Profile;
  return compileProgram(Source, Opts, Diags);
}

RunStats ipra::compileAndRun(const std::string &Source,
                             const CompileOptions &Opts,
                             const SimOptions &SimOpts) {
  DiagnosticEngine Diags;
  auto Compiled = compileProgram(Source, Opts, Diags);
  if (!Compiled) {
    RunStats Stats;
    Stats.OK = false;
    Stats.Error = "compilation failed:\n" + Diags.str();
    return Stats;
  }
  return runProgram(Compiled->Program, SimOpts);
}
