//===- driver/IncrementalService.h - Edit-recompile compile cache *- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent in-process compile service for the edit-recompile loop:
/// the same module is compiled over and over with small edits, and the
/// one-pass IPRA invariant tells us exactly what an edit invalidates.
///
/// Invalidation contract (DESIGN.md section 13). A procedure's back-end
/// result -- post-opt IR, allocation, published RegUsageSummary, machine
/// code and stat counters -- is a pure function of
///
///   (its own pre-opt IR, the published summaries of its closed callees,
///    its open/closed classification, the module's global layout, the
///    compile options).
///
/// So after an edit, a procedure must be recompiled iff
///
///   (a) its own pre-opt IR content fingerprint changed
///       (AnalysisManager::fingerprintIR), or
///   (b) its open/closed classification changed, or
///   (c) a callee's open/closed classification changed (the summary the
///       caller consumes switches between the precise one and the default
///       linkage protocol), or
///   (d) some still-closed callee was recompiled and its newly published
///       summary differs from the one it published last time.
///
/// Rule (d) is evaluated bottom-up over the SCC DAG schedule, so the
/// dirty set grows into exactly the summary-changed ancestor frontier
/// and nothing else: a summary-neutral edit recompiles one procedure.
/// Everything outside the frontier is installed from the cache, which
/// makes the incremental result byte-identical to a cold compile of the
/// edited module -- machine code, summaries, clobber masks, stats JSON,
/// diagnostics and (a fortiori) simulator behaviour. The differential
/// harness (tests/IncrementalDifferentialTest.cpp) and the default-on
/// MIR verifier, which reruns over every incremental result, enforce
/// this byte-identity; they are the safety net, not the mechanism.
///
/// Edits that change the module's *shape* -- procedure set, name-to-id
/// mapping, global variable names/sizes, or the compile options -- fall
/// back to a full rebuild that reprimes the cache (observable through
/// `incremental.full_rebuild`).
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_DRIVER_INCREMENTALSERVICE_H
#define IPRA_DRIVER_INCREMENTALSERVICE_H

#include "driver/Pipeline.h"

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace ipra {

/// What one recompile() did, for observability and the frontier tests.
/// counters() publishes the scalar facts under "incremental.*" names;
/// the per-procedure flag vectors let tests assert frontier minimality
/// and ancestor closure exactly.
struct IncrementalStats {
  /// Procedures in the module.
  unsigned Procs = 0;
  /// Procedures served from the cache.
  unsigned Reused = 0;
  /// Procedures recompiled (the frontier). Reused + Frontier == Procs.
  unsigned Frontier = 0;
  /// Frontier members whose own IR fingerprint changed (the dirty seed).
  unsigned SelfChanged = 0;
  /// Frontier members whose newly published summary differs from the
  /// cached one (these dirty their closed callers).
  unsigned SummaryChanged = 0;
  /// Procedures that changed but were missing from the caller's
  /// changed-procedures hint (the fingerprints are authoritative; a bad
  /// hint can never cause stale output, only this counter).
  unsigned HintMisses = 0;
  /// True when a shape or options change forced a cold rebuild.
  bool FullRebuild = false;

  /// Per-procedure-id flags (empty after a full rebuild's reprime).
  std::vector<char> RecompiledFlags;
  std::vector<char> SelfChangedFlags;
  std::vector<char> SummaryChangedFlags;

  /// The scalar facts as "incremental.*" counters. Kept out of
  /// CompileStats on purpose: the compile result of an incremental run
  /// must stay byte-identical to a cold compile, counters included.
  StatCounters counters() const;
};

/// The persistent service: owns the options, the previous compile result
/// and the per-procedure fingerprints that key reuse. One instance per
/// module being served; instances are single-threaded externally (the
/// internal back end still fans out over CompileOptions::Threads).
class IncrementalService {
public:
  /// \p Opts are fixed for the service's lifetime (an options change is a
  /// different cache). Profile-guided compilation feeds compile results
  /// back into compile options and is not supported here.
  explicit IncrementalService(CompileOptions Opts);
  ~IncrementalService();

  IncrementalService(IncrementalService &&) = default;
  IncrementalService &operator=(IncrementalService &&) = default;

  /// Cold-compiles \p Source and primes the cache. \returns the compile
  /// result (owned by the service, valid until the next compile/recompile
  /// call), or nullptr on front-end/verification errors -- the previously
  /// loaded state, if any, stays untouched and servable in that case.
  const CompileResult *compile(const std::string &Source,
                               DiagnosticEngine &Diags);
  /// Same, from an already-built module.
  const CompileResult *compileIR(std::unique_ptr<Module> IR,
                                 DiagnosticEngine &Diags);

  /// Recompiles after an edit: re-runs the front end on the new source,
  /// diffs per-procedure fingerprints against the cache, and re-runs the
  /// back end over only the dirty set plus its summary-changed ancestor
  /// frontier. \p ChangedProcs, when non-null, is the caller's claim of
  /// what was edited: every name must exist in the new module (else an
  /// error and the previous state is kept), and any actually-changed
  /// procedure missing from it is still recompiled (and counted in
  /// IncrementalStats::HintMisses). \returns the new result, or nullptr
  /// on errors; on any error the previously cached state is kept -- a
  /// failed edit never corrupts or replaces the last good build.
  const CompileResult *recompile(const std::string &Source,
                                 DiagnosticEngine &Diags,
                                 const std::vector<std::string> *ChangedProcs
                                 = nullptr);
  /// Same, from an already-built module (ids instead of names).
  const CompileResult *recompileIR(std::unique_ptr<Module> IR,
                                   DiagnosticEngine &Diags,
                                   const std::vector<int> *ChangedProcs =
                                       nullptr);

  /// True once compile() succeeded and results can be served.
  bool loaded() const { return Current != nullptr; }

  /// The last successful compile result (nullptr before the first load).
  const CompileResult *current() const { return Current.get(); }

  /// What the last recompile() did. Reset by compile() to a full-rebuild
  /// record covering every procedure.
  const IncrementalStats &lastStats() const { return Last; }

  const CompileOptions &options() const { return Opts; }

private:
  struct ProcKey {
    uint64_t PreFP = 0; ///< pre-opt IR content fingerprint
    bool Open = false;  ///< call-graph classification at compile time
  };

  const CompileResult *rebuild(std::unique_ptr<Module> IR,
                               DiagnosticEngine &Diags);
  /// True when \p IR has the same procedure set (names, order) and global
  /// layout (names, sizes) as the cached module, i.e. per-procedure reuse
  /// is meaningful at all.
  bool sameShape(const Module &IR) const;

  CompileOptions Opts;
  std::unique_ptr<CompileResult> Current;
  std::vector<ProcKey> Keys;
  IncrementalStats Last;
};

/// The `ipracc --serve` line-oriented batch-request protocol. Requests
/// are read from \p In and answered on \p Out, one session per call:
///
///   load <module>                 (source lines follow, ended by ".")
///   recompile <module> [proc...]  (new full source follows, ended by ".")
///   emit <module>                 print the machine code, ended by "."
///   stats <module>                compile + incremental counters, "."-ended
///   run <module>                  simulate; prints output and exit value
///   quit
///
/// Every request is answered by exactly one "ok ..." line (optionally
/// followed by a payload terminated by a line containing only ".") or one
/// "error ..." line; malformed requests, unknown modules/procedures and
/// compile failures produce errors and leave the addressed module's last
/// good state untouched -- a failed edit never serves stale code as if it
/// were new. \returns the process exit code: 0 iff no request errored.
int serveLoop(std::istream &In, std::ostream &Out,
              const CompileOptions &Opts);

} // namespace ipra

#endif // IPRA_DRIVER_INCREMENTALSERVICE_H
