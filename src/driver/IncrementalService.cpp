//===- driver/IncrementalService.cpp ---------------------------------------===//

#include "driver/IncrementalService.h"

#include "analysis/AnalysisManager.h"
#include "analysis/CallGraph.h"
#include "frontend/Frontend.h"

#include <cassert>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <unordered_set>

using namespace ipra;

StatCounters IncrementalStats::counters() const {
  StatCounters C;
  C.set("incremental.procs", Procs);
  C.set("incremental.procs_reused", Reused);
  C.set("incremental.frontier_size", Frontier);
  C.set("incremental.self_changed", SelfChanged);
  C.set("incremental.summary_changed", SummaryChanged);
  C.set("incremental.hint_misses", HintMisses);
  C.set("incremental.full_rebuild", FullRebuild ? 1 : 0);
  return C;
}

namespace {

/// Published-summary equality as callers observe it: two non-precise
/// summaries are interchangeable (callers use the default protocol for
/// both); precise summaries must agree on every field a caller reads.
bool summariesEqual(const RegUsageSummary &A, const RegUsageSummary &B) {
  if (A.Precise != B.Precise)
    return false;
  if (!A.Precise)
    return true;
  return A.Clobbered == B.Clobbered && A.ParamLocs == B.ParamLocs;
}

/// A full-rebuild stats record: every procedure recompiled, nothing
/// reused, no per-procedure change attribution.
IncrementalStats fullRebuildStats(unsigned NumProcs) {
  IncrementalStats S;
  S.Procs = NumProcs;
  S.Frontier = NumProcs;
  S.FullRebuild = true;
  S.RecompiledFlags.assign(NumProcs, 1);
  return S;
}

} // namespace

IncrementalService::IncrementalService(CompileOptions Opts)
    : Opts(std::move(Opts)) {
  // Profile-guided compilation feeds a training *run* back into the
  // options; the cache key deliberately covers only IR and summaries.
  assert(this->Opts.Profile == nullptr &&
         "incremental service does not support profile-guided options");
}

IncrementalService::~IncrementalService() = default;

bool IncrementalService::sameShape(const Module &IR) const {
  const Module &Old = *Current->IR;
  if (IR.numProcedures() != Old.numProcedures())
    return false;
  for (unsigned I = 0; I < IR.numProcedures(); ++I)
    if (IR.procedure(int(I))->name() != Old.procedure(int(I))->name())
      return false;
  if (IR.Globals.size() != Old.Globals.size())
    return false;
  for (unsigned G = 0; G < IR.Globals.size(); ++G)
    if (IR.Globals[G].Name != Old.Globals[G].Name ||
        IR.Globals[G].SizeWords != Old.Globals[G].SizeWords)
      return false;
  return true;
}

const CompileResult *IncrementalService::rebuild(std::unique_ptr<Module> IR,
                                                 DiagnosticEngine &Diags) {
  unsigned NumProcs = IR->numProcedures();
  // Key the cache off the *pre-optimization* IR: the back end mutates the
  // module in place, and reuse decisions compare against what the front
  // end produces, not what the mid-end left behind.
  std::vector<ProcKey> NewKeys(NumProcs);
  {
    CallGraph CG = CallGraph::build(*IR);
    for (unsigned P = 0; P < NumProcs; ++P) {
      NewKeys[P].PreFP = AnalysisManager::fingerprintIR(*IR->procedure(int(P)));
      NewKeys[P].Open = CG.isOpen(int(P));
    }
  }
  auto Result = compileModule(std::move(IR), Opts, Diags);
  if (!Result)
    return nullptr; // previous state, if any, stays servable
  Current = std::move(Result);
  Keys = std::move(NewKeys);
  Last = fullRebuildStats(NumProcs);
  return Current.get();
}

const CompileResult *IncrementalService::compile(const std::string &Source,
                                                 DiagnosticEngine &Diags) {
  auto IR = compileToIR(Source, Diags);
  if (!IR)
    return nullptr;
  return rebuild(std::move(IR), Diags);
}

const CompileResult *IncrementalService::compileIR(std::unique_ptr<Module> IR,
                                                   DiagnosticEngine &Diags) {
  return rebuild(std::move(IR), Diags);
}

const CompileResult *IncrementalService::recompile(
    const std::string &Source, DiagnosticEngine &Diags,
    const std::vector<std::string> *ChangedProcs) {
  auto IR = compileToIR(Source, Diags);
  if (!IR)
    return nullptr;
  std::vector<int> Ids;
  if (ChangedProcs) {
    for (const std::string &Name : *ChangedProcs) {
      Procedure *P = IR->findProcedure(Name);
      if (!P) {
        Diags.error("unknown procedure '" + Name + "' in changed set");
        return nullptr;
      }
      Ids.push_back(P->id());
    }
  }
  return recompileIR(std::move(IR), Diags,
                     ChangedProcs ? &Ids : nullptr);
}

const CompileResult *IncrementalService::recompileIR(
    std::unique_ptr<Module> IR, DiagnosticEngine &Diags,
    const std::vector<int> *ChangedProcs) {
  unsigned NumProcs = IR->numProcedures();
  if (ChangedProcs)
    for (int Id : *ChangedProcs)
      if (Id < 0 || Id >= int(NumProcs)) {
        Diags.error("changed-set procedure id " + std::to_string(Id) +
                    " out of range");
        return nullptr;
      }
  if (!Current || !sameShape(*IR))
    return rebuild(std::move(IR), Diags);

  // Diff the edit against the cache. Fingerprints are authoritative: the
  // caller's changed-set hint is only cross-checked, never trusted.
  std::vector<ProcKey> NewKeys(NumProcs);
  std::vector<char> SelfChanged(NumProcs, 0), OpenChanged(NumProcs, 0);
  CallGraph CG = CallGraph::build(*IR);
  for (unsigned P = 0; P < NumProcs; ++P) {
    NewKeys[P].PreFP = AnalysisManager::fingerprintIR(*IR->procedure(int(P)));
    NewKeys[P].Open = CG.isOpen(int(P));
    SelfChanged[P] = NewKeys[P].PreFP != Keys[P].PreFP;
    OpenChanged[P] = NewKeys[P].Open != Keys[P].Open;
  }
  unsigned HintMisses = 0;
  if (ChangedProcs) {
    std::unordered_set<int> Hinted(ChangedProcs->begin(),
                                   ChangedProcs->end());
    for (unsigned P = 0; P < NumProcs; ++P)
      HintMisses += SelfChanged[P] && !Hinted.count(int(P));
  }

  // Per-procedure decisions, made inside the scheduler's tasks. A flag a
  // caller task reads was finalized by a closed-callee task it waited on,
  // so the plain byte vectors need no locking -- the same
  // publish-before-release argument that keeps SummaryTable lock-free.
  const CompileResult &Prev = *Current;
  std::vector<char> Recompiled(NumProcs, 0), SummaryChanged(NumProcs, 0);
  BackEndHooks Hooks;
  Hooks.TryReuse = [&](int Id, CompileResult &Result) {
    // A caller consumes its callee's *published* summary: the precise one
    // for closed callees, the default protocol for open ones. So it is
    // dirty when a callee's classification flipped (the consumed summary
    // switches between precise and default -- decidable before the
    // schedule runs, which matters because open callees impose no task
    // ordering) or when a still-closed callee republished a different
    // precise summary (its task provably ran first).
    bool Dirty = SelfChanged[Id] || OpenChanged[Id];
    if (!Dirty)
      for (int C : CG.node(Id).Callees)
        if (OpenChanged[C] || (!CG.isOpen(C) && SummaryChanged[C])) {
          Dirty = true;
          break;
        }
    if (Dirty)
      return false;
    // Clean: install the cached artifacts. The grafted body is the
    // cached post-opt IR -- the mid-end is a pure per-procedure function
    // of the (unchanged) pre-opt body, so this is byte-for-byte what a
    // cold compile would have produced, and the MIR verifier re-audits
    // the whole program either way.
    Result.IR->procedure(Id)->adoptBodyOf(*Prev.IR->procedure(Id));
    Result.Alloc[Id] = Prev.Alloc[Id];
    Result.Program.Procs[Id] = Prev.Program.Procs[Id];
    Result.Stats.Procs[Id] = Prev.Stats.Procs[Id];
    Result.Summaries->publish(Id, Prev.Summaries->lookup(Id));
    return true;
  };
  Hooks.Compiled = [&](int Id, CompileResult &Result) {
    Recompiled[Id] = 1;
    SummaryChanged[Id] = !summariesEqual(Result.Summaries->lookup(Id),
                                         Prev.Summaries->lookup(Id));
  };

  auto NewResult = compileModule(std::move(IR), Opts, Diags, &Hooks);
  if (!NewResult)
    return nullptr; // previous state stays servable

  IncrementalStats S;
  S.Procs = NumProcs;
  S.HintMisses = HintMisses;
  for (unsigned P = 0; P < NumProcs; ++P) {
    S.Frontier += Recompiled[P];
    S.Reused += !Recompiled[P];
    S.SelfChanged += SelfChanged[P];
    S.SummaryChanged += SummaryChanged[P];
  }
  S.RecompiledFlags = std::move(Recompiled);
  S.SelfChangedFlags = std::move(SelfChanged);
  S.SummaryChangedFlags = std::move(SummaryChanged);

  Current = std::move(NewResult);
  Keys = std::move(NewKeys);
  Last = std::move(S);
  return Current.get();
}

//===----------------------------------------------------------------------===//
// The --serve protocol
//===----------------------------------------------------------------------===//

namespace {

/// Diagnostics are multi-line; protocol errors are one line.
std::string squash(const std::string &S) {
  std::string Out;
  for (char C : S)
    Out += C == '\n' ? ';' : C;
  while (!Out.empty() && Out.back() == ';')
    Out.pop_back();
  return Out;
}

/// Reads source lines until a line containing only ".". \returns false on
/// EOF before the terminator.
bool readSource(std::istream &In, std::string &Out) {
  Out.clear();
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line == ".")
      return true;
    Out += Line;
    Out += '\n';
  }
  return false;
}

std::vector<std::string> tokenize(const std::string &Line) {
  std::vector<std::string> Toks;
  std::istringstream SS(Line);
  std::string T;
  while (SS >> T)
    Toks.push_back(T);
  return Toks;
}

} // namespace

int ipra::serveLoop(std::istream &In, std::ostream &Out,
                    const CompileOptions &Opts) {
  assert(Opts.Profile == nullptr && "--serve is incompatible with --profile");
  std::map<std::string, IncrementalService> Services;
  bool HadError = false;
  auto Error = [&](const std::string &Msg) {
    Out << "error " << Msg << "\n";
    HadError = true;
  };
  // Find a module that is loaded and servable, or report why not.
  auto Lookup = [&](const std::string &Name) -> IncrementalService * {
    auto It = Services.find(Name);
    if (It == Services.end() || !It->second.loaded()) {
      Error("unknown module '" + Name + "'");
      return nullptr;
    }
    return &It->second;
  };

  std::string Line;
  while (std::getline(In, Line)) {
    std::vector<std::string> Toks = tokenize(Line);
    if (Toks.empty())
      continue; // blank lines are keep-alives
    const std::string &Cmd = Toks[0];

    if (Cmd == "quit") {
      Out << "ok bye\n";
      break;
    }

    if (Cmd == "load" || Cmd == "recompile") {
      if (Toks.size() < 2) {
        Error(Cmd + " needs a module name");
        continue;
      }
      if (Cmd == "load" && Toks.size() > 2) {
        Error("load takes exactly one module name");
        continue;
      }
      const std::string &Name = Toks[1];
      std::string Source;
      if (!readSource(In, Source)) {
        Error("unterminated source for '" + Cmd + " " + Name + "'");
        break; // the stream is exhausted; nothing more can be parsed
      }
      if (Cmd == "load") {
        auto [It, Inserted] =
            Services.try_emplace(Name, IncrementalService(Opts));
        (void)Inserted;
        DiagnosticEngine Diags;
        const CompileResult *R = It->second.compile(Source, Diags);
        if (!R || Diags.hasErrors()) {
          Error("load failed: " + squash(Diags.str()));
          if (!It->second.loaded())
            Services.erase(It);
          continue;
        }
        Out << "ok loaded " << Name << " procs=" << R->IR->numProcedures()
            << " static=" << R->StaticInstructions << "\n";
        continue;
      }
      // recompile
      auto It = Services.find(Name);
      if (It == Services.end() || !It->second.loaded()) {
        Error("unknown module '" + Name + "'");
        continue;
      }
      std::vector<std::string> Hint(Toks.begin() + 2, Toks.end());
      DiagnosticEngine Diags;
      const CompileResult *R = It->second.recompile(
          Source, Diags, Hint.empty() ? nullptr : &Hint);
      if (!R || Diags.hasErrors()) {
        Error("recompile failed: " + squash(Diags.str()));
        continue; // last good state stays loaded and addressable
      }
      const IncrementalStats &S = It->second.lastStats();
      Out << "ok recompiled " << Name << " procs=" << S.Procs
          << " reused=" << S.Reused << " frontier=" << S.Frontier
          << " summary_changed=" << S.SummaryChanged
          << " hint_misses=" << S.HintMisses
          << " full_rebuild=" << (S.FullRebuild ? 1 : 0) << "\n";
      continue;
    }

    if (Cmd == "emit" || Cmd == "stats" || Cmd == "run") {
      if (Toks.size() != 2) {
        Error(Cmd + " takes exactly one module name");
        continue;
      }
      IncrementalService *Svc = Lookup(Toks[1]);
      if (!Svc)
        continue;
      const CompileResult &R = *Svc->current();
      if (Cmd == "emit") {
        Out << "ok emit " << Toks[1] << "\n";
        for (const MProc &P : R.Program.Procs)
          if (!P.IsExternal)
            Out << toString(P);
        Out << ".\n";
      } else if (Cmd == "stats") {
        Out << "ok stats " << Toks[1] << "\n";
        StatCounters Totals = R.Stats.totals();
        Totals.merge(Svc->lastStats().counters());
        for (const auto &[CounterName, Value] : Totals.entries())
          Out << CounterName << " " << Value << "\n";
        Out << ".\n";
      } else {
        SimOptions SOpts;
        SOpts.MaxSteps = 100 * 1000 * 1000;
        RunStats Stats = runProgram(R.Program, SOpts);
        if (!Stats.OK) {
          Error("runtime: " + squash(Stats.Error));
          continue;
        }
        Out << "ok run " << Toks[1] << " exit=" << Stats.ExitValue
            << " cycles=" << Stats.Cycles << "\n";
        for (int64_t V : Stats.Output)
          Out << V << "\n";
        Out << ".\n";
      }
      continue;
    }

    Error("unknown command '" + Cmd + "'");
  }
  return HadError ? 1 : 0;
}
