//===- verify/MIRVerifier.h - Machine-code convention auditor --*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A static analysis over the generated MProgram that proves the emitted
/// machine code honors the conventions the whole IPRA scheme rests on:
///
///  - *Summary soundness*: the may-clobber set computed by a bottom-up
///    fixed point over the emitted code (registers whose entry values some
///    return path fails to preserve, with callee effects taken from the
///    same fixed point) is a subset of the published
///    RegUsageSummary::Clobbered for every closed procedure.
///  - *Shrink-wrap pairing*: a forward dataflow over the MIR CFG tracking
///    which registers still (or again) hold their procedure-entry values
///    and which frame slots hold saved entry values; every path that
///    clobbers a callee-saved register outside the procedure's contract
///    mask must save it first and restore it from the same slot before
///    any return.
///  - *Linkage conformance*: open procedures preserve all callee-saved
///    registers and take parameters in a0..a3 (the default protocol);
///    callers have every register the callee's ParamLocs expects defined
///    at the call; Prog.ClobberMasks matches the published summaries.
///  - *Def-before-use* of physical registers along all paths from entry,
///    plus stack discipline (SP only moves by the prologue/epilogue
///    adjustments and is back at its entry value at every return, frame
///    accesses stay inside the frame) and structural well-formedness.
///
/// Modelling notes. The analysis is assume-guarantee: each procedure is
/// verified against its own contract (the published precise summary, or
/// the default linkage protocol) while call effects are taken from the
/// callee's contract -- so a broken procedure is reported at its own
/// definition, not at every caller. Calls are assumed to preserve the
/// caller's frame slots (callees operate below the caller's SP), and
/// non-SP-based memory traffic is assumed not to alias SP-relative save
/// slots (codegen addresses frame slots exclusively through SP). The
/// return-address register follows the linkage discipline (every call
/// conceptually clobbers RA, so procedures that call must save/restore
/// it) even though the simulator keeps the call stack host-side.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_VERIFY_MIRVERIFIER_H
#define IPRA_VERIFY_MIRVERIFIER_H

#include "codegen/MIR.h"
#include "regalloc/RegAlloc.h"
#include "regalloc/Summary.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace ipra {

/// Diagnostic codes, one per violated invariant class. The mutation
/// harness asserts each planted defect is reported under the right code.
enum class MVCode {
  /// Malformed MIR: bad block ids, missing/misplaced terminators,
  /// out-of-range registers, branch targets or callee ids.
  Structure,
  /// An instruction writes the hardwired zero register.
  WriteToZero,
  /// A physical register is read on some path before anything defined it.
  DefBeforeUse,
  /// SP is written outside the prologue/epilogue pattern, moves by an
  /// unknown amount, or is misadjusted at a return.
  StackDiscipline,
  /// An SP-relative access lands outside the procedure's frame.
  FrameBounds,
  /// A callee-saved register outside the contract mask does not hold its
  /// entry value at a return (missing or mispaired save/restore).
  CalleeSavedNotPreserved,
  /// The return-address register does not hold its entry value at a
  /// return in a procedure that makes calls.
  RANotPreserved,
  /// The code may clobber a register the published summary (or default
  /// protocol) promises to preserve -- the summary under-reports.
  SummaryClobberMismatch,
  /// MProgram::ClobberMasks disagrees with the published summaries.
  ClobberMaskMismatch,
  /// A register the callee's ParamLocs expects an argument in is not
  /// defined at the call site.
  ParamRegUndefinedAtCall,
  /// A precise summary's ParamLocs arity disagrees with the callee's
  /// parameter count.
  ParamArityMismatch,
  /// shrinkwrap::verifyPlacement rejected the allocator's save/restore
  /// placement (double save, restore without save, uncovered APP block).
  PlacementViolation,
};

/// Short stable name, e.g. "callee-saved-not-preserved".
const char *mvCodeName(MVCode Code);

/// One verifier finding: code + machine location + human-readable detail.
struct MVerifyDiag {
  MVCode Code;
  MachineLoc Loc;
  std::string Message;

  std::string str() const;
};

struct MVerifyOptions {
  /// Stop reporting (but keep analyzing) after this many violations.
  unsigned MaxViolations = 64;
};

struct MVerifyResult {
  std::vector<MVerifyDiag> Violations;
  /// Procedures examined (externals count: their emptiness is checked).
  unsigned ProceduresChecked = 0;
  /// Per-procedure may-clobber sets from the bottom-up fixed point over
  /// the emitted code (externals hold the default protocol mask).
  /// Exposed for tests and the mutation harness.
  std::vector<BitVector> ComputedClobber;

  bool ok() const { return Violations.empty(); }
  bool hasCode(MVCode Code) const {
    for (const MVerifyDiag &D : Violations)
      if (D.Code == Code)
        return true;
    return false;
  }
  /// All findings joined with newlines.
  std::string str() const;
};

/// Verifies \p Prog against the contracts in \p Summaries (see file
/// comment). Pure; safe to call on mutated programs in tests.
MVerifyResult verifyMachineProgram(const MProgram &Prog,
                                   const SummaryTable &Summaries,
                                   const MVerifyOptions &Opts = {});

/// Placement-level shrink-wrap audit: recomputes each procedure's APP
/// sets and replays shrinkwrap::verifyPlacement over the allocator's
/// chosen placement. Complements the MIR-level dataflow (which proves
/// the *emitted* saves/restores preserve values) with the pairing /
/// no-double-save discipline stated on the placement itself.
std::vector<MVerifyDiag> verifyPlacements(
    const Module &Mod, const std::vector<AllocationResult> &Alloc,
    const SummaryTable &Summaries, bool InterMode);

} // namespace ipra

#endif // IPRA_VERIFY_MIRVERIFIER_H
