//===- verify/NativeVerifier.h - JIT machine-code auditor ------*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MIRVerifier's discipline carried down to the bytes the native
/// backend actually emits: a static audit of a sealed NativeCodeGen
/// image. Where MIRVerifier proves the *compiler's* code honors the
/// published register-usage summaries, this verifier proves the *JIT's
/// re-lowering* of that code still does -- without running it. Per
/// emitted procedure (plus the trampoline and raw mode's shared budget
/// stub) it establishes:
///
///  (a) every byte decodes (X64Decoder, canonical-strict) and the
///      decoded form re-encodes to the identical bytes;
///  (b) pinned guest registers are written only through their register
///      map slots (a NativeEnv::Regs slot of a pinned guest register
///      may be stored only from its mapped host register), and the
///      guest registers whose canonical location may not hold its
///      entry value at a return form a subset of the procedure's
///      published clobber mask -- the paper's invariant at machine
///      level;
///  (c) SysV callee-saved host registers are preserved on every path:
///      the trampoline's ret restores rbx/rbp/r12/r13/r14/r15 and the
///      entry rsp, and procedure bodies never leak a modified unpinned
///      callee-saved host (forward dataflow with the MIRVerifier's
///      path-intersection join);
///  (d) every memory write lands in a region the runtime contract
///      sanctions: the NativeEnv block (r15-relative), the host stack
///      (push), guest memory through r14 with a dominating bounds
///      check, the shadow stack through a cursor checked against
///      ShadowLimit, or the profile array through ProfBase within the
///      procedure's counter window -- no stray stores;
///  (e) a budget check dominates every procedure entry and layout
///      back-edge target (raw mode: the r12 compare branching to the
///      shared budget stub; instrumented: the hoisted remaining-budget
///      test), and raw mode's step/call accumulators r12/r13 are
///      written only by accounting code.
///
/// Modelling notes. Like MIRVerifier the analysis is assume-guarantee:
/// call effects come from the callee's contract (MProgram::ClobberMasks
/// for direct calls, MProgram::DefaultClobber for indirect ones --
/// sound because address-taken procedures are forced open), so a broken
/// procedure is reported at its own definition. C++ helper calls
/// (FnPrint/FnSnapshot/FnCheckRet) clobber exactly the SysV
/// caller-saved host registers and preserve NativeEnv; FnError/FnBail
/// are noreturn terminators. Callees are assumed to operate below the
/// caller's host rsp and guest sp, so host stack slots and sp-relative
/// guest frame saves survive calls; guest memory traffic whose index is
/// not sp-derived is assumed not to alias the sp-relative save slots
/// (codegen addresses frame slots exclusively through the guest sp) --
/// the exact assumptions MIRVerifier states one level up.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_VERIFY_NATIVEVERIFIER_H
#define IPRA_VERIFY_NATIVEVERIFIER_H

#include "codegen/MIR.h"
#include "x64/NativeCodeGen.h"

#include <cstddef>
#include <string>
#include <vector>

namespace ipra {
namespace x64 {

/// Diagnostic codes, one per violated invariant class. The mutation
/// harness (tests/NativeVerifierTest.cpp) asserts each planted defect
/// is reported under the right code.
enum class NVCode {
  /// A byte sequence the assembler cannot have produced: an unknown or
  /// non-canonical encoding, a branch into the middle of an
  /// instruction, or a branch/call to an illegal target.
  Decode,
  /// A decoded instruction re-encodes to different bytes (a decodable
  /// but non-canonical form, e.g. a movabs of a small immediate).
  Encoding,
  /// The image's shape breaks the emitter contract: bad entry offsets,
  /// an unexpected helper-call form, stack-pointer abuse, or a
  /// rel32/indirect call that is not a procedure entry or helper.
  Structure,
  /// A pinned guest register's NativeEnv::Regs slot is stored from
  /// something other than its mapped host register.
  PinnedSlotBypass,
  /// A guest register outside the procedure's published clobber mask
  /// may not hold its entry value at a return.
  GuestClobberBeyondSummary,
  /// A SysV callee-saved host register (or rsp, or the pinned r14/r15
  /// bases) is not provably restored at a return.
  HostCalleeSavedNotPreserved,
  /// A memory write outside every sanctioned region.
  StrayStore,
  /// A guest-memory access (r14-scaled) or shadow-stack store whose
  /// pointer lacks the dominating range check on this path.
  UncheckedMemAccess,
  /// A procedure entry or back-edge target without its budget test.
  MissingBudgetCheck,
  /// Raw mode's step/call accumulator (r12/r13) written by
  /// non-accounting code.
  CounterClobbered,
  /// Per-procedure maps: a pinned guest register whose host copy is
  /// newer than its NativeEnv::Regs slot reaches a point where the
  /// slot is the canonical value -- a guest call whose callee's summary
  /// covers the register, a register-file-reading helper call
  /// (FnSnapshot/FnCheckRet/FnBail), or a return -- without the
  /// required write-back.
  CallSyncMissing,
  /// Per-procedure maps: an instruction consumes a pinned host register
  /// after a call destroyed or may have redefined the cached guest
  /// value, without the post-call reload.
  StaleCachedValue,
};

/// Short stable name, e.g. "missing-budget-check".
const char *nvCodeName(NVCode Code);

/// One verifier finding, located by procedure and byte offset into the
/// sealed image (Proc -1 = trampoline, -2 = raw budget stub).
struct NVerifyDiag {
  NVCode Code;
  int Proc = -1;
  size_t Offset = 0;
  std::string Message;

  std::string str() const;
};

struct NVerifyOptions {
  /// Stop reporting (but keep analyzing) after this many violations.
  unsigned MaxViolations = 64;
};

struct NVerifyResult {
  std::vector<NVerifyDiag> Violations;
  /// Emitted procedure bodies examined.
  unsigned ProceduresChecked = 0;
  /// Instructions decoded across all regions.
  uint64_t InstructionsDecoded = 0;

  bool ok() const { return Violations.empty(); }
  bool hasCode(NVCode Code) const {
    for (const NVerifyDiag &D : Violations)
      if (D.Code == Code)
        return true;
    return false;
  }
  /// All findings joined with newlines.
  std::string str() const;
};

/// Audits \p Code, the sealed image emitNativeProgram produced for
/// \p Prog under \p Opts / \p Maps / \p ProfOff (the verifier needs the
/// exact same inputs to know the register maps, the budget constants
/// and the profile windows). Under per-procedure maps each body region
/// is audited against its own map plus the call-boundary sync protocol
/// (NativeRuntime.h): slot-vs-host staleness is tracked per pinned
/// guest register, every required call-site write-back and post-call
/// reload is checked against the callee's summary-derived masks, and
/// returns must leave every slot canonical. Pure; safe to call on
/// mutated images in tests.
NVerifyResult verifyNativeCode(const MProgram &Prog,
                               const NativeCodeGenOptions &Opts,
                               const RegMapTable &Maps,
                               const std::vector<size_t> &ProfOff,
                               const NativeCode &Code,
                               const NVerifyOptions &VO = {});

} // namespace x64
} // namespace ipra

#endif // IPRA_VERIFY_NATIVEVERIFIER_H
