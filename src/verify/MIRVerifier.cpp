//===- verify/MIRVerifier.cpp ----------------------------------------------===//

#include "verify/MIRVerifier.h"

#include "ir/Procedure.h"
#include "shrinkwrap/ShrinkWrap.h"

#include <map>

using namespace ipra;

const char *ipra::mvCodeName(MVCode Code) {
  switch (Code) {
  case MVCode::Structure:
    return "structure";
  case MVCode::WriteToZero:
    return "write-to-zero";
  case MVCode::DefBeforeUse:
    return "def-before-use";
  case MVCode::StackDiscipline:
    return "stack-discipline";
  case MVCode::FrameBounds:
    return "frame-bounds";
  case MVCode::CalleeSavedNotPreserved:
    return "callee-saved-not-preserved";
  case MVCode::RANotPreserved:
    return "ra-not-preserved";
  case MVCode::SummaryClobberMismatch:
    return "summary-clobber-mismatch";
  case MVCode::ClobberMaskMismatch:
    return "clobber-mask-mismatch";
  case MVCode::ParamRegUndefinedAtCall:
    return "param-reg-undefined-at-call";
  case MVCode::ParamArityMismatch:
    return "param-arity-mismatch";
  case MVCode::PlacementViolation:
    return "placement-violation";
  }
  return "?";
}

std::string MVerifyDiag::str() const {
  std::string Out = Loc.isValid() ? Loc.str() : std::string("program");
  Out += ": ";
  Out += mvCodeName(Code);
  Out += ": ";
  Out += Message;
  return Out;
}

std::string MVerifyResult::str() const {
  std::string Out;
  for (const MVerifyDiag &D : Violations) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}

namespace {

/// True when \p Op writes its Rd field.
bool definesRd(MOpcode Op) {
  switch (Op) {
  case MOpcode::Store:
  case MOpcode::Call:
  case MOpcode::CallInd:
  case MOpcode::Ret:
  case MOpcode::Br:
  case MOpcode::CondBr:
  case MOpcode::Print:
    return false;
  default:
    return true;
  }
}

/// Registers \p I reads, written into \p U. \returns how many.
unsigned usesOf(const MInst &I, unsigned U[2]) {
  switch (I.Op) {
  case MOpcode::LoadImm:
  case MOpcode::Call:
  case MOpcode::Ret:
  case MOpcode::Br:
    return 0;
  case MOpcode::Neg:
  case MOpcode::Not:
  case MOpcode::Move:
  case MOpcode::AddImm:
  case MOpcode::Load:
  case MOpcode::CallInd:
  case MOpcode::CondBr:
  case MOpcode::Print:
    U[0] = I.Rs;
    return 1;
  case MOpcode::Store:
    U[0] = I.Rs;
    U[1] = I.Rt;
    return 2;
  default: // binary ALU
    U[0] = I.Rs;
    U[1] = I.Rt;
    return 2;
  }
}

/// The forward dataflow fact at a block boundary. All components shrink
/// under the join (path intersection), so the fixed point terminates.
struct BlockState {
  bool Reached = false;
  /// Must-defined registers: every path from entry wrote them (or they
  /// arrive meaningful: zero/sp/ra, callee-saved, own parameter regs).
  BitVector Defined;
  /// Registers that definitely still (or again) hold their own
  /// procedure-entry values.
  BitVector HoldsEntry;
  /// Entry-SP-relative frame offsets holding the entry value of a
  /// register (written by a save while the register still held it).
  std::map<int64_t, unsigned> Slots;
  /// SP displacement from its entry value, when statically known.
  int64_t SPDelta = 0;
  bool SPKnown = true;
};

/// Drops every slot fact not present (with the same register) in \p Src.
bool intersectSlots(std::map<int64_t, unsigned> &Dst,
                    const std::map<int64_t, unsigned> &Src) {
  bool Changed = false;
  for (auto It = Dst.begin(); It != Dst.end();) {
    auto SIt = Src.find(It->first);
    if (SIt == Src.end() || SIt->second != It->second) {
      It = Dst.erase(It);
      Changed = true;
    } else {
      ++It;
    }
  }
  return Changed;
}

/// Path-intersection join. \returns true when \p Dst changed.
bool joinInto(BlockState &Dst, const BlockState &Src) {
  if (!Dst.Reached) {
    Dst = Src;
    Dst.Reached = true;
    return true;
  }
  bool Changed = false;
  BitVector D = Dst.Defined;
  D &= Src.Defined;
  if (D != Dst.Defined) {
    Dst.Defined = std::move(D);
    Changed = true;
  }
  BitVector H = Dst.HoldsEntry;
  H &= Src.HoldsEntry;
  if (H != Dst.HoldsEntry) {
    Dst.HoldsEntry = std::move(H);
    Changed = true;
  }
  Changed |= intersectSlots(Dst.Slots, Src.Slots);
  if (Dst.SPKnown && (!Src.SPKnown || Src.SPDelta != Dst.SPDelta)) {
    Dst.SPKnown = false;
    Changed = true;
  }
  return Changed;
}

class Checker {
public:
  Checker(const MProgram &Prog, const SummaryTable &Summaries,
          const MVerifyOptions &Opts)
      : Prog(Prog), Summaries(Summaries), M(Summaries.machine()), Opts(Opts) {
  }

  MVerifyResult run() {
    unsigned NumProcs = unsigned(Prog.Procs.size());
    R.ProceduresChecked = NumProcs;
    StructOK.assign(NumProcs, 1);
    FlaggedRegs.assign(NumProcs, BitVector(M.numRegs()));

    for (unsigned P = 0; P < NumProcs; ++P)
      checkStructure(int(P));
    if (Prog.MainProcId >= int(NumProcs))
      diag(MVCode::Structure, MachineLoc(),
           "main procedure id " + std::to_string(Prog.MainProcId) +
               " out of range");

    // Bottom-up may-clobber fixed point over the emitted code. Masks only
    // ever grow, preserved-register facts only shrink, so iterating to
    // stability from the empty sets is a monotone ascent; the register
    // universe bounds it.
    R.ComputedClobber.assign(NumProcs, BitVector(M.numRegs()));
    for (unsigned P = 0; P < NumProcs; ++P)
      if (Prog.Procs[P].IsExternal || !StructOK[P])
        R.ComputedClobber[P] = M.defaultClobber();
    for (bool Changed = true; Changed;) {
      Changed = false;
      for (unsigned P = 0; P < NumProcs; ++P) {
        if (Prog.Procs[P].IsExternal || !StructOK[P])
          continue;
        BitVector C =
            analyzeProc(int(P), R.ComputedClobber, /*Contract=*/nullptr);
        if (C != R.ComputedClobber[P]) {
          R.ComputedClobber[P] = std::move(C);
          Changed = true;
        }
      }
    }

    // Contract (assume-guarantee) pass: verify each procedure against its
    // own published contract while trusting every callee's.
    std::vector<BitVector> Contracts(NumProcs);
    for (unsigned P = 0; P < NumProcs; ++P)
      Contracts[P] = contractMask(int(P));
    for (unsigned P = 0; P < NumProcs; ++P) {
      if (Prog.Procs[P].IsExternal || !StructOK[P])
        continue;
      analyzeProc(int(P), Contracts, &Contracts[P]);
      // Summary soundness, proc-level view: the fixed-point may-clobber
      // set must lie inside the contract. Registers already reported at a
      // specific return are not repeated here.
      BitVector Extra = R.ComputedClobber[P];
      Extra.andNot(Contracts[P]);
      Extra.andNot(FlaggedRegs[P]);
      Extra.forEachSetBit([&](unsigned Reg) {
        diag(MVCode::SummaryClobberMismatch, procLoc(int(P)),
             std::string("emitted code may clobber ") + regName(Reg) +
                 ", which the " +
                 (Summaries.lookup(int(P)).Precise ? "published summary"
                                                   : "default protocol") +
                 " promises to preserve");
      });
    }

    // The masks the simulator's dynamic convention checker uses must
    // mirror the published summaries (hand-built programs without masks
    // are exempt, matching the simulator).
    if (!Prog.ClobberMasks.empty()) {
      if (Prog.ClobberMasks.size() != NumProcs) {
        diag(MVCode::Structure, MachineLoc(),
             "ClobberMasks has " + std::to_string(Prog.ClobberMasks.size()) +
                 " entries for " + std::to_string(NumProcs) + " procedures");
      } else {
        for (unsigned P = 0; P < NumProcs; ++P)
          if (Prog.ClobberMasks[P] != Contracts[P])
            diag(MVCode::ClobberMaskMismatch, procLoc(int(P)),
                 "ClobberMasks entry " + Prog.ClobberMasks[P].str() +
                     " != contract " + Contracts[P].str());
      }
    }
    return std::move(R);
  }

private:
  MachineLoc procLoc(int ProcId, int Block = -1, int Inst = -1) const {
    MachineLoc L;
    L.Proc = ProcId;
    L.Block = Block;
    L.Inst = Inst;
    L.ProcName = Prog.Procs[ProcId].Name;
    return L;
  }

  void diag(MVCode Code, MachineLoc Loc, std::string Message) {
    if (R.Violations.size() < Opts.MaxViolations)
      R.Violations.push_back({Code, std::move(Loc), std::move(Message)});
  }

  /// The register-preservation contract of \p ProcId: its precise
  /// published clobber set, else the default linkage protocol.
  BitVector contractMask(int ProcId) const {
    const RegUsageSummary &S = Summaries.lookup(ProcId);
    return S.Precise ? S.Clobbered : M.defaultClobber();
  }

  /// Arrival locations of \p ProcId's own parameters under its contract.
  std::vector<unsigned> contractParamLocs(int ProcId) const {
    const RegUsageSummary &S = Summaries.lookup(ProcId);
    if (S.Precise)
      return S.ParamLocs;
    return Summaries.makeDefault(Prog.Procs[ProcId].NumParams).ParamLocs;
  }

  //===------------------------------------------------------------------===//
  // Structural checks
  //===------------------------------------------------------------------===//

  void checkStructure(int ProcId) {
    const MProc &P = Prog.Procs[ProcId];
    auto Bad = [&](int Block, int Inst, std::string Msg) {
      diag(MVCode::Structure, procLoc(ProcId, Block, Inst), std::move(Msg));
      StructOK[ProcId] = 0;
    };
    if (P.IsExternal) {
      if (!P.Blocks.empty())
        Bad(-1, -1, "external procedure has a body");
      return;
    }
    if (P.Blocks.empty()) {
      Bad(-1, -1, "procedure has no blocks");
      return;
    }
    if (P.FrameWords < 0)
      Bad(-1, -1, "negative frame size");
    for (unsigned B = 0; B < P.Blocks.size(); ++B) {
      const MBlock &MB = P.Blocks[B];
      if (MB.Id != int(B))
        Bad(int(B), -1, "block id " + std::to_string(MB.Id) +
                            " at position " + std::to_string(B));
      if (MB.Insts.empty() || !MB.Insts.back().isTerminator()) {
        Bad(int(B), -1, "block lacks a terminator");
        continue;
      }
      for (unsigned I = 0; I < MB.Insts.size(); ++I) {
        const MInst &In = MB.Insts[I];
        if (In.isTerminator() && I + 1 != MB.Insts.size())
          Bad(int(B), int(I), "terminator before the end of the block");
        if (In.Rd >= M.numRegs() || In.Rs >= M.numRegs() ||
            In.Rt >= M.numRegs())
          Bad(int(B), int(I), "register operand out of range");
        if (definesRd(In.Op) && In.Rd == RegZero)
          diag(MVCode::WriteToZero, procLoc(ProcId, int(B), int(I)),
               "instruction writes the hardwired zero register");
        switch (In.Op) {
        case MOpcode::Call:
          if (In.Callee < 0 || In.Callee >= int(Prog.Procs.size()))
            Bad(int(B), int(I), "callee id out of range");
          break;
        case MOpcode::Br:
          if (In.Target1 < 0 || In.Target1 >= int(P.Blocks.size()))
            Bad(int(B), int(I), "branch target out of range");
          break;
        case MOpcode::CondBr:
          if (In.Target1 < 0 || In.Target1 >= int(P.Blocks.size()) ||
              In.Target2 < 0 || In.Target2 >= int(P.Blocks.size()))
            Bad(int(B), int(I), "branch target out of range");
          break;
        default:
          break;
        }
      }
    }
  }

  //===------------------------------------------------------------------===//
  // Per-procedure forward dataflow
  //===------------------------------------------------------------------===//

  /// Runs the forward analysis over \p ProcId with call effects taken
  /// from \p CallMasks. With \p Contract null this is the silent
  /// clobber-computation mode; non-null enables reporting against that
  /// contract. \returns the observed may-clobber set (registers some
  /// return path fails to preserve), never including zero/sp/ra.
  BitVector analyzeProc(int ProcId, const std::vector<BitVector> &CallMasks,
                        const BitVector *Contract) {
    const MProc &P = Prog.Procs[ProcId];
    unsigned NumBlocks = unsigned(P.Blocks.size());
    std::vector<BlockState> In(NumBlocks);
    In[0] = entryState(ProcId);

    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (unsigned B = 0; B < NumBlocks; ++B) {
        if (!In[B].Reached)
          continue;
        BlockState S = In[B];
        for (const MInst &I : P.Blocks[B].Insts)
          step(ProcId, I, S, CallMasks, /*Loc=*/nullptr, nullptr, nullptr);
        const MInst &T = P.Blocks[B].Insts.back();
        if (T.Op == MOpcode::Br) {
          Changed |= joinInto(In[T.Target1], S);
        } else if (T.Op == MOpcode::CondBr) {
          Changed |= joinInto(In[T.Target1], S);
          Changed |= joinInto(In[T.Target2], S);
        }
      }
    }

    // Converged: one collection walk per reached block. Reporting only
    // happens in contract mode -- the silent clobber-computation mode is
    // re-run to a fixed point and must not duplicate findings.
    BitVector Clobber(M.numRegs());
    for (unsigned B = 0; B < NumBlocks; ++B) {
      if (!In[B].Reached)
        continue;
      BlockState S = In[B];
      for (unsigned I = 0; I < P.Blocks[B].Insts.size(); ++I) {
        MachineLoc Loc;
        if (Contract)
          Loc = procLoc(ProcId, int(B), int(I));
        step(ProcId, P.Blocks[B].Insts[I], S, CallMasks,
             Contract ? &Loc : nullptr, Contract, &Clobber);
      }
    }
    return Clobber;
  }

  BlockState entryState(int ProcId) const {
    BlockState S;
    S.Reached = true;
    S.Defined.resize(M.numRegs());
    S.Defined.set(RegZero);
    S.Defined.set(RegSP);
    S.Defined.set(RegRA);
    S.Defined |= M.calleeSaved();
    for (unsigned Loc : contractParamLocs(ProcId))
      if (Loc != StackParamLoc)
        S.Defined.set(Loc);
    S.HoldsEntry.resize(M.numRegs());
    S.HoldsEntry.setAll();
    return S;
  }

  /// Transfer function for one instruction. \p Loc null = silent fixed-
  /// point mode; non-null enables reporting (DefBeforeUse and frame/stack
  /// findings; return-contract findings additionally need \p Contract)
  /// and \p Clobber collection at returns.
  void step(int ProcId, const MInst &I, BlockState &S,
            const std::vector<BitVector> &CallMasks, const MachineLoc *Loc,
            const BitVector *Contract, BitVector *Clobber) {
    unsigned U[2];
    unsigned NumUses = usesOf(I, U);
    for (unsigned J = 0; J < NumUses; ++J) {
      if (Loc && !S.Defined.test(U[J])) {
        diag(MVCode::DefBeforeUse, *Loc,
             std::string(regName(U[J])) +
                 " read before any definition reaches it: " + toString(I));
        S.Defined.set(U[J]); // suppress cascades within the block
      }
    }

    auto Def = [&](unsigned Reg) {
      S.Defined.set(Reg);
      S.HoldsEntry.reset(Reg);
    };

    // Stack-pointer writes: only the prologue/epilogue "sp += imm" form.
    if (definesRd(I.Op) && I.Rd == RegSP) {
      if (I.Op == MOpcode::AddImm && I.Rs == RegSP) {
        if (S.SPKnown)
          S.SPDelta += I.Imm;
      } else {
        if (Loc)
          diag(MVCode::StackDiscipline, *Loc,
               "sp written outside the frame adjustment pattern: " +
                   toString(I));
        S.SPKnown = false;
        S.Slots.clear();
      }
      return;
    }

    switch (I.Op) {
    case MOpcode::Load:
      if (I.Rs == RegSP && S.SPKnown) {
        if (Loc && I.Imm < 0)
          diag(MVCode::FrameBounds, *Loc,
               "load below the stack pointer: " + toString(I));
        int64_t Off = S.SPDelta + I.Imm;
        auto It = S.Slots.find(Off);
        if (It != S.Slots.end() && It->second == I.Rd) {
          // A restore: the register regains its entry value.
          S.Defined.set(I.Rd);
          S.HoldsEntry.set(I.Rd);
          return;
        }
      }
      Def(I.Rd);
      return;
    case MOpcode::Store:
      if (I.Rs == RegSP) {
        if (!S.SPKnown)
          return;
        int64_t Off = S.SPDelta + I.Imm;
        if (Loc && (I.Imm < 0 || Off >= 0))
          diag(MVCode::FrameBounds, *Loc,
               "store outside the procedure's frame: " + toString(I));
        if (S.HoldsEntry.test(I.Rt))
          S.Slots[Off] = I.Rt;
        else
          S.Slots.erase(Off);
      }
      return;
    case MOpcode::Call:
    case MOpcode::CallInd: {
      const BitVector *Mask = &M.defaultClobber();
      if (I.Op == MOpcode::Call) {
        Mask = &CallMasks[I.Callee];
        if (Loc) {
          // Linkage conformance at the call site: every register the
          // callee expects a parameter in must be defined here. (MIR
          // carries no argument list, so presence-of-a-defined-value is
          // the checkable projection of "placed where ParamLocs says".)
          const MProc &Callee = Prog.Procs[I.Callee];
          const RegUsageSummary &CS = Summaries.lookup(I.Callee);
          if (CS.Precise && CS.ParamLocs.size() != Callee.NumParams)
            diag(MVCode::ParamArityMismatch, *Loc,
                 "summary of '" + Callee.Name + "' carries " +
                     std::to_string(CS.ParamLocs.size()) +
                     " parameter locations for " +
                     std::to_string(Callee.NumParams) + " parameters");
          for (unsigned ParamLoc : contractParamLocs(I.Callee))
            if (ParamLoc != StackParamLoc && !S.Defined.test(ParamLoc)) {
              diag(MVCode::ParamRegUndefinedAtCall, *Loc,
                   "call to '" + Callee.Name + "' expects a parameter in " +
                       regName(ParamLoc) + ", which is not defined here");
              S.Defined.set(ParamLoc);
            }
        }
      }
      S.Defined.andNot(*Mask);
      S.HoldsEntry.andNot(*Mask);
      // The linkage discipline: a call conceptually writes the return
      // address and delivers a value in v0. Frame slots survive: callees
      // work strictly below this frame.
      S.HoldsEntry.reset(RegRA);
      S.Defined.set(RegRA);
      S.Defined.set(RegV0);
      return;
    }
    case MOpcode::Ret: {
      if (Clobber) {
        for (unsigned Reg = 0; Reg < M.numRegs(); ++Reg) {
          if (Reg == RegZero || Reg == RegSP || Reg == RegRA)
            continue;
          if (!S.HoldsEntry.test(Reg))
            Clobber->set(Reg);
        }
      }
      if (Loc && Contract) {
        if (!S.SPKnown || S.SPDelta != 0)
          diag(MVCode::StackDiscipline, *Loc,
               !S.SPKnown ? std::string("sp not statically known at return")
                          : "sp off by " + std::to_string(S.SPDelta) +
                                " words at return");
        if (!S.HoldsEntry.test(RegRA))
          diag(MVCode::RANotPreserved, *Loc,
               "return address not restored on this path");
        for (unsigned Reg = 0; Reg < M.numRegs(); ++Reg) {
          if (Reg == RegZero || Reg == RegSP || Reg == RegRA)
            continue;
          if (S.HoldsEntry.test(Reg) || Contract->test(Reg))
            continue;
          FlaggedRegs[ProcId].set(Reg);
          if (M.isCalleeSaved(Reg))
            diag(MVCode::CalleeSavedNotPreserved, *Loc,
                 std::string(regName(Reg)) +
                     " may not hold its entry value at this return");
          else
            diag(MVCode::SummaryClobberMismatch, *Loc,
                 std::string(regName(Reg)) +
                     " may be clobbered on this path but the " +
                     (Summaries.lookup(ProcId).Precise ? "published summary"
                                                       : "default protocol") +
                     " promises to preserve it");
        }
      }
      return;
    }
    default:
      if (definesRd(I.Op))
        Def(I.Rd);
      return;
    }
  }

  const MProgram &Prog;
  const SummaryTable &Summaries;
  const MachineDesc &M;
  MVerifyOptions Opts;
  MVerifyResult R;
  std::vector<char> StructOK;
  /// Registers already reported at a specific return, per procedure;
  /// suppresses the duplicate proc-level summary finding.
  std::vector<BitVector> FlaggedRegs;
};

} // namespace

MVerifyResult ipra::verifyMachineProgram(const MProgram &Prog,
                                         const SummaryTable &Summaries,
                                         const MVerifyOptions &Opts) {
  return Checker(Prog, Summaries, Opts).run();
}

std::vector<MVerifyDiag> ipra::verifyPlacements(
    const Module &Mod, const std::vector<AllocationResult> &Alloc,
    const SummaryTable &Summaries, bool InterMode) {
  std::vector<MVerifyDiag> Out;
  unsigned NumRegs = Summaries.machine().numRegs();
  for (unsigned Id = 0; Id < Mod.numProcedures() && Id < Alloc.size(); ++Id) {
    const Procedure *P = Mod.procedure(int(Id));
    if (P->IsExternal)
      continue;
    const AllocationResult &A = Alloc[Id];
    MachineLoc Loc;
    Loc.Proc = int(Id);
    Loc.ProcName = P->name();
    if (A.Assignment.size() < P->NumVRegs ||
        A.Placement.SaveAtEntry.size() != P->numBlocks() ||
        A.Placement.RestoreAtExit.size() != P->numBlocks()) {
      Out.push_back({MVCode::PlacementViolation, Loc,
                     "allocation result does not cover the procedure"});
      continue;
    }
    // The placement only covers the registers the allocator decided to
    // preserve locally; caller-saved damage and propagated callee-saved
    // registers (Section 6) deliberately receive no saves, so mask the
    // recomputed appearance sets down to the preserved set first.
    std::vector<BitVector> APP =
        computeAPP(*P, A.Assignment, Summaries, InterMode);
    for (BitVector &B : APP)
      B &= A.CalleeSavedToPreserve;
    std::string Err = verifyPlacement(*P, APP, NumRegs, A.Placement);
    if (!Err.empty())
      Out.push_back({MVCode::PlacementViolation, Loc, std::move(Err)});
  }
  return Out;
}
