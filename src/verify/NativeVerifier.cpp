//===- verify/NativeVerifier.cpp - JIT machine-code auditor ----------------===//
//
// Implementation notes.
//
// The image is partitioned into regions (trampoline, raw mode's shared
// budget stub, one region per emitted procedure body) that tile the
// byte range by construction: regions are sorted by entry offset and
// each ends where the next begins. Each region is decoded with
// X64Decoder's canonical-strict decoder (obligation (a): every byte
// decodes, and per instruction encode(decode(bytes)) == bytes), then
// audited by a forward abstract interpretation over the reconstructed
// basic-block graph with a path-intersection join -- the MIRVerifier's
// discipline one level down.
//
// The abstract domain tracks, per host register and per NativeEnv::Regs
// slot, a small symbolic value: "guest register g's entry value plus a
// known delta", "this host register's own region-entry value", "the
// NativeEnv pointer", "the guest memory base", "the shadow cursor",
// "a range-checked index", and so on. Memory writes are classified
// against that domain (obligation (d)); the register-map discipline and
// the published clobber masks are checked at every ret (obligations (b)
// and (c)) against the callee-contract call effects described in the
// header. Budget placement (obligation (e)) is a separate syntactic
// scan: the exact compare-and-branch shapes NativeCodeGen emits must
// appear at the region entry and at every backward branch target
// (backward in bytes iff a layout back edge: blocks are emitted in
// layout order and every other intra-procedure branch is forward).
//
// The fixpoint runs silently; violations are reported in a single
// deterministic pass over the final block-entry states, so a defect on
// a loop path is reported once, not once per worklist visit.
//
//===----------------------------------------------------------------------===//

#include "verify/NativeVerifier.h"

#include "x64/NativeRuntime.h"
#include "x64/X64Decoder.h"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>

using namespace ipra;
using namespace ipra::x64;

namespace {

const char *HostNames[16] = {"rax", "rcx", "rdx", "rbx", "rsp", "rbp",
                             "rsi", "rdi", "r8",  "r9",  "r10", "r11",
                             "r12", "r13", "r14", "r15"};

std::string hexOff(size_t Off) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%zx", Off);
  return Buf;
}

constexpr size_t RegsOff = offsetof(NativeEnv, Regs);
constexpr size_t RegsEnd = RegsOff + 8 * NumPhysRegs;

//===----------------------------------------------------------------------===//
// Abstract values
//===----------------------------------------------------------------------===//

/// What a 64-bit value is known to be on every path reaching a point.
enum class VK : uint8_t {
  Top,          ///< Anything.
  Const,        ///< The constant A.
  EnvPtr,       ///< The NativeEnv pointer (r15's pinned value).
  MemBase,      ///< NativeEnv::Mem (r14's pinned value).
  GuestEntry,   ///< Guest register A's region-entry value, plus D.
  ProcEntryHost,///< Host register A's own procedure-entry value.
  HostEntry,    ///< Host register A's trampoline-entry value.
  ShadowPtr,    ///< NativeEnv::ShadowPtr as last loaded, plus D.
  ProfBase,     ///< NativeEnv::ProfBase.
  CheckedIdx,   ///< An index proven < Procs.size() on this path.
  Idx16,        ///< A CheckedIdx shifted left by 4 (table row offset).
  ProcTabPtr,   ///< ProcTable + Idx16 (one dispatch row).
};

struct AbsVal {
  VK K = VK::Top;
  int64_t A = 0;
  int64_t D = 0;
  /// Proven < MemWords (unsigned) on this path; survives joins only
  /// when both sides are bounded.
  bool Bounded = false;

  bool sameValue(const AbsVal &O) const {
    return K == O.K && A == O.A && D == O.D;
  }
  bool operator==(const AbsVal &O) const {
    return sameValue(O) && Bounded == O.Bounded;
  }
  bool operator!=(const AbsVal &O) const { return !(*this == O); }
};

AbsVal mkVal(VK K, int64_t A = 0, int64_t D = 0) {
  AbsVal V;
  V.K = K;
  V.A = A;
  V.D = D;
  return V;
}

/// Path-intersection join; \returns true when \p Dst changed.
bool joinVal(AbsVal &Dst, const AbsVal &Src) {
  bool B = Dst.Bounded && Src.Bounded;
  AbsVal New = Dst.sameValue(Src) ? Dst : AbsVal{};
  New.Bounded = B;
  if (New != Dst) {
    Dst = New;
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Abstract state
//===----------------------------------------------------------------------===//

struct AbsState {
  bool Reachable = false;
  AbsVal Host[16];
  AbsVal Slot[NumPhysRegs];
  AbsVal ScratchA;
  /// Host stack: bytes-below-region-entry-rsp at push time -> value.
  std::map<int64_t, AbsVal> Stack;
  /// Guest frame saves: word delta off the guest sp's entry value ->
  /// value (the callees-below-sp / no-alias assumptions make these
  /// survive calls and non-sp-indexed guest memory traffic).
  std::map<int64_t, AbsVal> GuestSaves;
  int64_t SPDelta = 0;
  bool SPKnown = true;
  /// env.ShadowPtr < env.ShadowLimit proven on this path.
  bool ShadowChecked = false;
  /// Per-procedure maps only; bit g is pinned guest register g.
  /// HostStale: the host copy does not hold g's current value (entry
  /// before the prologue load, after a call destroyed/redefined it).
  /// SlotStale: the host copy is newer than the NativeEnv::Regs slot
  /// (a dirty pin that a sync point must write back). May-facts, so
  /// the join is union, not intersection.
  uint32_t HostStale = 0;
  uint32_t SlotStale = 0;
};

bool joinMap(std::map<int64_t, AbsVal> &Dst,
             const std::map<int64_t, AbsVal> &Src) {
  bool Ch = false;
  for (auto It = Dst.begin(); It != Dst.end();) {
    auto Jt = Src.find(It->first);
    if (Jt == Src.end()) {
      It = Dst.erase(It);
      Ch = true;
      continue;
    }
    Ch |= joinVal(It->second, Jt->second);
    ++It;
  }
  return Ch;
}

bool joinState(AbsState &Dst, const AbsState &Src) {
  if (!Src.Reachable)
    return false;
  if (!Dst.Reachable) {
    Dst = Src;
    return true;
  }
  bool Ch = false;
  for (unsigned H = 0; H < 16; ++H)
    Ch |= joinVal(Dst.Host[H], Src.Host[H]);
  for (unsigned G = 0; G < NumPhysRegs; ++G)
    Ch |= joinVal(Dst.Slot[G], Src.Slot[G]);
  Ch |= joinVal(Dst.ScratchA, Src.ScratchA);
  Ch |= joinMap(Dst.Stack, Src.Stack);
  Ch |= joinMap(Dst.GuestSaves, Src.GuestSaves);
  if (Dst.SPKnown && (!Src.SPKnown || Src.SPDelta != Dst.SPDelta)) {
    Dst.SPKnown = false;
    Ch = true;
  }
  if (Dst.ShadowChecked && !Src.ShadowChecked) {
    Dst.ShadowChecked = false;
    Ch = true;
  }
  uint32_t HS = Dst.HostStale | Src.HostStale;
  uint32_t SS = Dst.SlotStale | Src.SlotStale;
  Ch |= HS != Dst.HostStale || SS != Dst.SlotStale;
  Dst.HostStale = HS;
  Dst.SlotStale = SS;
  return Ch;
}

/// Compare-instruction fact carried to the block's terminating jcc.
/// Every pattern the refinements rely on keeps the compare and the
/// branch inside one decoded block (no labels bind between them).
struct FlagsFact {
  enum Tag : uint8_t { None, RegImm, RegEnv } T = None;
  Reg R = RAX;
  uint64_t Imm = 0;
  int32_t Disp = 0;
};

/// Forms that leave the hardware flags untouched (the compare facts
/// survive them; everything else clears the fact).
bool preservesFlags(IForm F) {
  switch (F) {
  case IForm::MovRR:
  case IForm::MovRM:
  case IForm::MovMR:
  case IForm::MovRI32:
  case IForm::MovRI64:
  case IForm::MovMI:
  case IForm::MovRMScaled8:
  case IForm::MovMRScaled8:
  case IForm::MovsxdRR:
  case IForm::MovzxRR8:
  case IForm::SetccR8:
  case IForm::Cqo:
  case IForm::PushR:
  case IForm::PopR:
    return true;
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// The auditor
//===----------------------------------------------------------------------===//

struct RegionSpec {
  size_t Begin = 0;
  size_t End = 0;
  /// >= 0: procedure id; -1: trampoline; -2: raw budget stub.
  int Proc = -1;
};

class Auditor {
public:
  Auditor(const MProgram &Prog, const NativeCodeGenOptions &Opts,
          const RegMapTable &Table, const std::vector<size_t> &ProfOff,
          const NativeCode &Code, const NVerifyOptions &VO)
      : Prog(Prog), Opts(Opts), Table(Table), ProfOff(ProfOff), Code(Code),
        VO(VO), PP(Table.PerProc) {
    for (unsigned G = 0; G < NumPhysRegs; ++G)
      Empty.GuestToHost[G] = -1;
  }

  NVerifyResult run() {
    for (unsigned P = 0; P < Code.ProcEntry.size(); ++P)
      if (Code.ProcEntry[P] != size_t(-1))
        EntryToProc[Code.ProcEntry[P]] = int(P);

    std::vector<RegionSpec> Specs;
    Specs.push_back({Code.TrampolineOff, 0, -1});
    if (Code.RawStubOff != size_t(-1))
      Specs.push_back({Code.RawStubOff, 0, -2});
    for (const auto &[Off, P] : EntryToProc)
      Specs.push_back({Off, 0, P});
    std::sort(Specs.begin(), Specs.end(),
              [](const RegionSpec &A, const RegionSpec &B) {
                return A.Begin < B.Begin;
              });
    for (size_t N = 0; N < Specs.size(); ++N)
      Specs[N].End =
          N + 1 < Specs.size() ? Specs[N + 1].Begin : Code.Bytes.size();
    if (!Specs.empty() && Specs[0].Begin != 0)
      report(NVCode::Structure, -1, 0,
             "image does not begin with the trampoline");

    for (const RegionSpec &R : Specs)
      auditRegion(R);
    return std::move(Res);
  }

private:
  const MProgram &Prog;
  const NativeCodeGenOptions &Opts;
  const RegMapTable &Table;
  const std::vector<size_t> &ProfOff;
  const NativeCode &Code;
  const NVerifyOptions &VO;
  const bool PP; ///< Per-procedure map policy.
  RegisterMap Empty; ///< All-slot map (per-proc trampoline/raw stub).

  NVerifyResult Res;
  std::map<size_t, int> EntryToProc;

  // Per-region analysis context.
  int CurProc = -1;
  const RegisterMap *RM = nullptr; ///< This region's map.
  uint32_t PinMask = 0;    ///< Bit g: guest g pinned in this region.
  uint32_t VolPinMask = 0; ///< Pins whose host is SysV caller-saved.
  const DecodedRegion *Reg_ = nullptr;
  bool Reporting = false;
  std::vector<AbsState> In;
  std::set<unsigned> Work;

  void report(NVCode C, int Proc, size_t Off, std::string Msg) {
    if (Res.Violations.size() >= VO.MaxViolations)
      return;
    NVerifyDiag D;
    D.Code = C;
    D.Proc = Proc;
    D.Offset = Off;
    D.Message = std::move(Msg);
    Res.Violations.push_back(std::move(D));
  }

  /// Reporting-pass-only variant used inside the transfer function.
  void flag(NVCode C, size_t Off, std::string Msg) {
    if (Reporting)
      report(C, CurProc, Off, std::move(Msg));
  }

  bool pinnedHost(Reg H) const { return guestOfHost(H) >= 0; }

  int guestOfHost(Reg H) const {
    for (unsigned G = 0; G < NumPhysRegs; ++G)
      if (RM->GuestToHost[G] == int(H))
        return int(G);
    return -1;
  }

  bool rawCounter(Reg H) const {
    return Opts.Raw && (H == R12 || H == R13);
  }

  bool masked(const BitVector *Mask, unsigned G) const {
    return !Mask || G >= Mask->size() || Mask->test(G);
  }

  //===--------------------------------------------------------------------===//
  // Region driver
  //===--------------------------------------------------------------------===//

  static bool isNoReturnCall(const DecodedInst &I) {
    return I.Form == IForm::CallM && I.M.Base == R15 &&
           (size_t(I.M.Disp) == offsetof(NativeEnv, FnError) ||
            size_t(I.M.Disp) == offsetof(NativeEnv, FnBail));
  }

  void auditRegion(const RegionSpec &Spec) {
    CurProc = Spec.Proc;
    if (CurProc >= 0)
      ++Res.ProceduresChecked;

    // Each region audits against its own map. Under per-procedure maps
    // the trampoline and the raw budget stub pin nothing: they see the
    // register file purely through its canonical NativeEnv slots.
    RM = PP ? (CurProc >= 0 ? &Table.Maps[CurProc] : &Empty) : &Table.Global;
    PinMask = VolPinMask = 0;
    for (unsigned G = 0; G < NumPhysRegs; ++G) {
      int H = RM->GuestToHost[G];
      if (H < 0)
        continue;
      PinMask |= 1u << G;
      if (!(H == RBX || H == RBP || H == R12 || H == R13))
        VolPinMask |= 1u << G;
    }

    CFGPolicy Policy;
    Policy.IsNoReturnCall = [](const DecodedInst &I) {
      return isNoReturnCall(I);
    };
    if (Code.RawStubOff != size_t(-1) && CurProc >= 0)
      Policy.ExternalTargets.push_back(Code.RawStubOff);
    for (const auto &[Off, P] : EntryToProc) {
      (void)P;
      Policy.CallTargets.push_back(Off);
    }

    DecodedRegion R;
    std::string Why;
    if (!decodeRegion(Code.Bytes.data(), Code.Bytes.size(), Spec.Begin,
                      Spec.End, Policy, R, Why)) {
      report(NVCode::Decode, CurProc, Spec.Begin, Why);
      return;
    }
    Res.InstructionsDecoded += R.Insts.size();
    Reg_ = &R;

    roundTrip(R);

    // Fixpoint, then one deterministic reporting pass.
    In.assign(R.Blocks.size(), AbsState());
    Work.clear();
    if (!R.Blocks.empty()) {
      In[0] = entryState();
      Work.insert(0);
    }
    Reporting = false;
    while (!Work.empty()) {
      unsigned B = *Work.begin();
      Work.erase(Work.begin());
      AbsState S = In[B];
      runBlock(R, B, S);
    }
    Reporting = true;
    for (unsigned B = 0; B < R.Blocks.size(); ++B) {
      if (!In[B].Reachable)
        continue;
      AbsState S = In[B];
      runBlock(R, B, S);
    }
    Reporting = false;

    if (CurProc >= 0)
      budgetScan(R);
    Reg_ = nullptr;
  }

  /// Per-instruction re-encode: the decoded stream must reproduce the
  /// image byte for byte (obligation (a), second half).
  void roundTrip(const DecodedRegion &R) {
    Assembler A;
    size_t Prev = 0;
    for (const DecodedInst &I : R.Insts) {
      reencode(I, A);
      const std::vector<uint8_t> &B = A.code();
      if (B.size() - Prev != I.Len ||
          std::memcmp(B.data() + Prev, Code.Bytes.data() + I.Offset,
                      I.Len) != 0) {
        report(NVCode::Encoding, CurProc, I.Offset,
               std::string("non-canonical encoding of ") +
                   formName(I.Form));
      }
      Prev = B.size();
    }
  }

  AbsState entryState() {
    AbsState S;
    S.Reachable = true;
    if (CurProc == -1) {
      // Trampoline: the C++ caller's registers, NativeEnv in rdi, and
      // every guest slot at its run-entry value.
      for (unsigned H = 0; H < 16; ++H)
        if (H != RSP)
          S.Host[H] = mkVal(VK::HostEntry, H);
      S.Host[RDI] = mkVal(VK::EnvPtr);
      for (unsigned G = 0; G < NumPhysRegs; ++G)
        S.Slot[G] = mkVal(VK::GuestEntry, G);
      return S;
    }
    // Procedure bodies and the raw budget stub run under the pinned
    // bases. Global map: pinned guest registers arrive in their hosts,
    // unpinned ones in their slots (a pinned register's slot is stale).
    // Per-procedure maps: every slot is canonical at the boundary and
    // every pinned host is stale until the prologue load.
    S.Host[R15] = mkVal(VK::EnvPtr);
    S.Host[R14] = mkVal(VK::MemBase);
    if (CurProc >= 0) {
      if (PP) {
        for (unsigned G = 0; G < NumPhysRegs; ++G)
          S.Slot[G] = mkVal(VK::GuestEntry, G);
        for (Reg H : {RBX, RBP, R12, R13})
          if (!rawCounter(H))
            S.Host[H] = mkVal(VK::ProcEntryHost, H);
        S.HostStale = PinMask;
      } else {
        for (unsigned G = 0; G < NumPhysRegs; ++G) {
          int H = RM->GuestToHost[G];
          if (H >= 0)
            S.Host[H] = mkVal(VK::GuestEntry, G);
          else
            S.Slot[G] = mkVal(VK::GuestEntry, G);
        }
        for (Reg H : {RBX, RBP, R12, R13})
          if (!pinnedHost(H) && !rawCounter(H))
            S.Host[H] = mkVal(VK::ProcEntryHost, H);
      }
    }
    return S;
  }

  void propagate(int Succ, const AbsState &S) {
    if (Succ < 0 || Reporting)
      return;
    if (joinState(In[Succ], S))
      Work.insert(unsigned(Succ));
  }

  void runBlock(const DecodedRegion &R, unsigned B, AbsState &S) {
    const DecodedRegion::Block &Blk = R.Blocks[B];
    FlagsFact F;
    for (unsigned N = 0; N < Blk.NumInsts; ++N) {
      const DecodedInst &I = R.Insts[Blk.FirstInst + N];
      switch (I.Form) {
      case IForm::Jmp:
        // External targets (the raw budget stub) were validated by the
        // decoder; in-region targets propagate.
        propagate(Blk.Succ1, S);
        return;
      case IForm::Jcc: {
        propagate(Blk.Succ1, S);
        if (Blk.Succ2 >= 0) {
          AbsState FT = S;
          refine(FT, F, I.CC);
          propagate(Blk.Succ2, FT);
        } else if (Blk.FirstInst + N + 1 >= R.Insts.size()) {
          flag(NVCode::Structure, I.Offset,
               "conditional branch falls off the region end");
        }
        return;
      }
      case IForm::Ret:
        if (Reporting)
          retChecks(S, I);
        return;
      default:
        break;
      }
      FlagsFact Saved = F;
      F = FlagsFact();
      exec(I, S, F);
      if (F.T == FlagsFact::None && preservesFlags(I.Form))
        F = Saved;
      if (isNoReturnCall(I))
        return; // terminator (the decoder ended the block here)
    }
    // Plain fallthrough into the next block.
    if (Blk.Succ1 >= 0) {
      propagate(Blk.Succ1, S);
    } else {
      flag(NVCode::Structure,
           R.Insts[Blk.FirstInst + Blk.NumInsts - 1].Offset,
           "control falls off the region end");
    }
  }

  /// Path-sensitive facts on the not-taken edge of the emitter's
  /// check-and-branch-to-stub patterns.
  void refine(AbsState &S, const FlagsFact &F, Cond CC) {
    if (CC != Cond::AE)
      return;
    if (F.T == FlagsFact::RegImm) {
      AbsVal &V = S.Host[F.R];
      if (F.Imm == Opts.MemWords)
        V.Bounded = true;
      if (F.Imm == uint64_t(Prog.Procs.size()) && V.K == VK::Top)
        V.K = VK::CheckedIdx;
    } else if (F.T == FlagsFact::RegEnv &&
               size_t(F.Disp) == offsetof(NativeEnv, ShadowLimit) &&
               S.Host[F.R].K == VK::ShadowPtr && S.Host[F.R].D == 0) {
      S.ShadowChecked = true;
    }
  }

  //===--------------------------------------------------------------------===//
  // Transfer function
  //===--------------------------------------------------------------------===//

  AbsVal readHost(const AbsState &S, Reg R) const {
    return R == RSP ? AbsVal{} : S.Host[R];
  }

  void writeHost(AbsState &S, Reg R, AbsVal V, const DecodedInst &I,
                 bool Accounting = false) {
    if (R == RSP) {
      flag(NVCode::Structure, I.Offset, "unexpected write to rsp");
      S.SPKnown = false;
      return;
    }
    if (CurProc != -1 && (R == R14 || R == R15))
      flag(NVCode::HostCalleeSavedNotPreserved, I.Offset,
           std::string("write to pinned base ") + HostNames[R]);
    if (rawCounter(R) && CurProc != -1 && !Accounting)
      flag(NVCode::CounterClobbered, I.Offset,
           std::string(HostNames[R]) +
               " written outside the accounting pattern");
    if (PP) {
      // By emitter convention a value written into a pinned host IS
      // guest g's current value: the host copy is fresh again and the
      // slot falls behind until a sync store. MovRM reloads and PopR
      // restores override this in exec().
      int G = guestOfHost(R);
      if (G >= 0) {
        S.HostStale &= ~(1u << G);
        S.SlotStale |= 1u << G;
      }
    }
    S.Host[R] = V;
  }

  /// StaleCachedValue: no instruction may consume a pinned host whose
  /// cached guest value a call destroyed (per-procedure maps). PushR is
  /// exempt -- the epilogue-paired pushes save the *host's* value.
  void checkStaleReads(const DecodedInst &I, const AbsState &S) {
    if (!PP || !S.HostStale)
      return;
    Reg Rs[4];
    unsigned N = 0;
    switch (I.Form) {
    case IForm::MovRR:
    case IForm::MovsxdRR:
    case IForm::MovzxRR8:
      Rs[N++] = I.R2;
      break;
    case IForm::MovRM:
    case IForm::MovMI:
    case IForm::AluMI:
    case IForm::CallM:
      Rs[N++] = I.M.Base;
      break;
    case IForm::MovMR:
    case IForm::AluRM:
    case IForm::AluMR:
      Rs[N++] = I.R1;
      Rs[N++] = I.M.Base;
      break;
    case IForm::MovRMScaled8:
      Rs[N++] = I.R2;
      Rs[N++] = I.M.Base;
      break;
    case IForm::MovMRScaled8:
      Rs[N++] = I.R1;
      Rs[N++] = I.R2;
      Rs[N++] = I.M.Base;
      break;
    case IForm::NegR:
    case IForm::NotR:
    case IForm::ShlRI:
    case IForm::AluRI:
      Rs[N++] = I.R1;
      break;
    case IForm::ShlCL:
    case IForm::SarCL:
      Rs[N++] = I.R1;
      Rs[N++] = RCX;
      break;
    case IForm::ImulRR:
    case IForm::TestRR:
    case IForm::AluRR:
      Rs[N++] = I.R1;
      Rs[N++] = I.R2;
      break;
    case IForm::IdivR:
      Rs[N++] = I.R1;
      Rs[N++] = RAX;
      Rs[N++] = RDX;
      break;
    case IForm::Cqo:
      Rs[N++] = RAX;
      break;
    default:
      break; // MovRI/SetccR8/PushR/PopR/Call/Jmp/Jcc/Ret
    }
    for (unsigned K = 0; K < N; ++K) {
      int G = guestOfHost(Rs[K]);
      if (G >= 0 && (S.HostStale & (1u << G)))
        flag(NVCode::StaleCachedValue, I.Offset,
             std::string(HostNames[Rs[K]]) + " read while its cached " +
                 regName(unsigned(G)) +
                 " is stale (missing post-call reload)");
    }
  }

  enum class StoreSrc { FromReg, FromImm, Rmw };

  void exec(const DecodedInst &I, AbsState &S, FlagsFact &F) {
    checkStaleReads(I, S);
    switch (I.Form) {
    case IForm::MovRR:
      writeHost(S, I.R1, readHost(S, I.R2), I);
      break;
    case IForm::MovRI32:
    case IForm::MovRI64: {
      AbsVal V = mkVal(VK::Const, I.Imm);
      writeHost(S, I.R1, V, I);
      break;
    }
    case IForm::MovRM: {
      AbsVal V;
      int OwnSlot = -1;
      if (S.Host[I.M.Base].K == VK::EnvPtr) {
        V = envLoad(S, I);
        size_t D = size_t(I.M.Disp);
        if (PP && I.M.Disp >= 0 && D >= RegsOff && D < RegsEnd &&
            (D - RegsOff) % 8 == 0) {
          unsigned G = unsigned((D - RegsOff) / 8);
          if (RM->GuestToHost[G] == int(I.R1))
            OwnSlot = int(G);
        }
      } else {
        flag(NVCode::UncheckedMemAccess, I.Offset,
             std::string("load through unclassified pointer in ") +
                 HostNames[I.M.Base]);
      }
      writeHost(S, I.R1, V, I);
      if (OwnSlot >= 0) {
        // A reload from g's own slot leaves host and slot equal:
        // nothing stale in either direction.
        S.HostStale &= ~(1u << OwnSlot);
        S.SlotStale &= ~(1u << OwnSlot);
      }
      break;
    }
    case IForm::MovMR:
      doStore(I, S, readHost(S, I.R1), StoreSrc::FromReg, I.R1);
      break;
    case IForm::MovMI:
      doStore(I, S, mkVal(VK::Const, I.Imm), StoreSrc::FromImm, RAX);
      break;
    case IForm::MovRMScaled8: {
      AbsVal V;
      const AbsVal &X = S.Host[I.R2];
      if (S.Host[I.M.Base].K != VK::MemBase)
        flag(NVCode::UncheckedMemAccess, I.Offset,
             "guest-memory load through a base that is not the pinned "
             "memory base");
      else if (!X.Bounded)
        flag(NVCode::UncheckedMemAccess, I.Offset,
             "guest-memory load whose index lacks a dominating bounds "
             "check");
      if (X.K == VK::GuestEntry && X.A == RegSP) {
        auto It = S.GuestSaves.find(X.D);
        if (It != S.GuestSaves.end())
          V = It->second;
      }
      writeHost(S, I.R1, V, I);
      break;
    }
    case IForm::MovMRScaled8: {
      const AbsVal &X = S.Host[I.R2];
      if (S.Host[I.M.Base].K != VK::MemBase) {
        flag(NVCode::StrayStore, I.Offset,
             "guest-memory store through a base that is not the pinned "
             "memory base");
      } else if (!X.Bounded) {
        flag(NVCode::UncheckedMemAccess, I.Offset,
             "guest-memory store whose index lacks a dominating bounds "
             "check");
      } else if (X.K == VK::GuestEntry && X.A == RegSP) {
        S.GuestSaves[X.D] = readHost(S, I.R1);
      }
      break;
    }
    case IForm::MovsxdRR:
    case IForm::MovzxRR8:
    case IForm::SetccR8:
    case IForm::NegR:
    case IForm::NotR:
    case IForm::ShlCL:
    case IForm::SarCL:
      writeHost(S, I.R1, AbsVal{}, I);
      break;
    case IForm::ImulRR:
      writeHost(S, I.R1, AbsVal{}, I);
      break;
    case IForm::Cqo:
      writeHost(S, RDX, AbsVal{}, I);
      break;
    case IForm::IdivR:
      writeHost(S, RAX, AbsVal{}, I);
      writeHost(S, RDX, AbsVal{}, I);
      break;
    case IForm::ShlRI: {
      AbsVal V;
      if (I.Imm == 4 && S.Host[I.R1].K == VK::CheckedIdx)
        V = mkVal(VK::Idx16);
      writeHost(S, I.R1, V, I);
      break;
    }
    case IForm::TestRR:
      break;
    case IForm::AluRR: {
      if (I.Op == Alu::Cmp) {
        const AbsVal &Src = readHost(S, I.R2);
        if (Src.K == VK::Const) {
          F.T = FlagsFact::RegImm;
          F.R = I.R1;
          F.Imm = uint64_t(Src.A);
        }
        break;
      }
      AbsVal V;
      const AbsVal &Cur = S.Host[I.R1];
      const AbsVal &Src = readHost(S, I.R2);
      if (I.Op == Alu::Xor && I.R1 == I.R2) {
        V = mkVal(VK::Const, 0);
      } else if (I.Op == Alu::Add && Cur.K == VK::GuestEntry &&
                 Src.K == VK::Const) {
        V = Cur;
        V.D += Src.A;
        V.Bounded = false;
      }
      writeHost(S, I.R1, V, I,
                /*Accounting=*/rawCounter(I.R1) && I.Op == Alu::Xor &&
                    I.R1 == I.R2 && CurProc == -1);
      break;
    }
    case IForm::AluRI:
      execAluRI(I, S, F);
      break;
    case IForm::AluRM: {
      size_t Disp = size_t(I.M.Disp);
      if (S.Host[I.M.Base].K != VK::EnvPtr)
        flag(NVCode::UncheckedMemAccess, I.Offset,
             std::string("memory operand through unclassified pointer "
                         "in ") +
                 HostNames[I.M.Base]);
      else if (I.M.Disp < 0 || Disp + 8 > sizeof(NativeEnv))
        flag(NVCode::UncheckedMemAccess, I.Offset,
             "memory operand outside the NativeEnv region");
      if (I.Op == Alu::Cmp) {
        F.T = FlagsFact::RegEnv;
        F.R = I.R1;
        F.Disp = I.M.Disp;
        break;
      }
      AbsVal V;
      if (I.Op == Alu::Add && S.Host[I.R1].K == VK::Idx16 &&
          Disp == offsetof(NativeEnv, ProcTable))
        V = mkVal(VK::ProcTabPtr);
      writeHost(S, I.R1, V, I);
      break;
    }
    case IForm::AluMR:
      if (I.Op == Alu::Cmp) {
        if (S.Host[I.M.Base].K != VK::EnvPtr || I.M.Disp < 0 ||
            size_t(I.M.Disp) + 8 > sizeof(NativeEnv))
          flag(NVCode::UncheckedMemAccess, I.Offset,
               "compare against memory outside the NativeEnv region");
        break;
      }
      doStore(I, S, AbsVal{}, StoreSrc::Rmw, RAX);
      break;
    case IForm::AluMI: {
      if (I.Op == Alu::Cmp) {
        const AbsVal &B = S.Host[I.M.Base];
        bool Ok =
            (B.K == VK::EnvPtr && I.M.Disp >= 0 &&
             size_t(I.M.Disp) + 8 <= sizeof(NativeEnv)) ||
            (B.K == VK::ProcTabPtr && (I.M.Disp == 0 || I.M.Disp == 8));
        if (!Ok)
          flag(NVCode::UncheckedMemAccess, I.Offset,
               "compare against memory outside every sanctioned region");
        break;
      }
      doStore(I, S, AbsVal{}, StoreSrc::Rmw, RAX);
      break;
    }
    case IForm::PushR: {
      AbsVal V = readHost(S, I.R1);
      if (S.SPKnown) {
        S.SPDelta += 8;
        S.Stack[S.SPDelta] = V;
      }
      break;
    }
    case IForm::PopR: {
      AbsVal V;
      if (S.SPKnown) {
        auto It = S.Stack.find(S.SPDelta);
        if (It != S.Stack.end()) {
          V = It->second;
          S.Stack.erase(It);
        }
        S.SPDelta -= 8;
        if (S.SPDelta < 0) {
          flag(NVCode::Structure, I.Offset, "pop below the entry rsp");
          S.SPKnown = false;
        }
      }
      uint32_t SavedSlotStale = S.SlotStale;
      writeHost(S, I.R1, V, I);
      if (PP) {
        // An epilogue pop restores the caller's host value, not guest
        // g's: the host copy is stale again, and the pop must not mask
        // a sync the ret check still owes (keep SlotStale as it was).
        int G = guestOfHost(I.R1);
        if (G >= 0) {
          S.HostStale |= 1u << G;
          S.SlotStale = SavedSlotStale;
        }
      }
      break;
    }
    case IForm::Call:
      execCall(I, S);
      break;
    case IForm::CallM:
      execCallM(I, S);
      break;
    case IForm::Jmp:
    case IForm::Jcc:
    case IForm::Ret:
      break; // handled by runBlock
    }
  }

  void execAluRI(const DecodedInst &I, AbsState &S, FlagsFact &F) {
    if (I.Op == Alu::Cmp) {
      F.T = FlagsFact::RegImm;
      F.R = I.R1;
      F.Imm = uint64_t(I.Imm);
      return;
    }
    if (I.R1 == RSP) {
      if (I.Op == Alu::Sub) {
        if (S.SPKnown)
          S.SPDelta += I.Imm;
      } else if (I.Op == Alu::Add) {
        if (S.SPKnown) {
          S.SPDelta -= I.Imm;
          if (S.SPDelta < 0) {
            flag(NVCode::Structure, I.Offset,
                 "rsp adjusted above the region entry");
            S.SPKnown = false;
          } else {
            // Bytes freed by the add are dead.
            S.Stack.erase(S.Stack.upper_bound(S.SPDelta), S.Stack.end());
          }
        }
      } else {
        flag(NVCode::Structure, I.Offset, "unexpected ALU op on rsp");
        S.SPKnown = false;
      }
      return;
    }
    if (rawCounter(I.R1) && CurProc != -1) {
      // Raw mode's dedicated step/call accumulators: accounting adds
      // only (obligation (e), second half).
      if (I.Op != Alu::Add)
        flag(NVCode::CounterClobbered, I.Offset,
             std::string(HostNames[I.R1]) +
                 " written outside the accounting pattern");
      writeHost(S, I.R1, AbsVal{}, I, /*Accounting=*/true);
      return;
    }
    AbsVal V;
    const AbsVal &Cur = S.Host[I.R1];
    if ((Cur.K == VK::GuestEntry || Cur.K == VK::ShadowPtr) &&
        (I.Op == Alu::Add || I.Op == Alu::Sub)) {
      V = Cur;
      V.D += I.Op == Alu::Add ? I.Imm : -I.Imm;
      V.Bounded = false;
    }
    writeHost(S, I.R1, V, I);
  }

  //===--------------------------------------------------------------------===//
  // Memory
  //===--------------------------------------------------------------------===//

  AbsVal envLoad(AbsState &S, const DecodedInst &I) {
    if (I.M.Disp < 0 || size_t(I.M.Disp) + 8 > sizeof(NativeEnv)) {
      flag(NVCode::UncheckedMemAccess, I.Offset,
           "load outside the NativeEnv region");
      return AbsVal{};
    }
    size_t D = size_t(I.M.Disp);
    if (D >= RegsOff && D < RegsEnd && (D - RegsOff) % 8 == 0)
      return S.Slot[(D - RegsOff) / 8];
    if (D == offsetof(NativeEnv, Mem))
      return mkVal(VK::MemBase);
    if (D == offsetof(NativeEnv, ShadowPtr))
      return mkVal(VK::ShadowPtr);
    if (D == offsetof(NativeEnv, ProfBase))
      return mkVal(VK::ProfBase);
    if (D == offsetof(NativeEnv, ScratchA))
      return S.ScratchA;
    return AbsVal{};
  }

  void doStore(const DecodedInst &I, AbsState &S, AbsVal Val, StoreSrc Src,
               Reg SrcReg) {
    const AbsVal B = S.Host[I.M.Base];
    switch (B.K) {
    case VK::EnvPtr:
      envStore(I, S, Val, Src, SrcReg);
      return;
    case VK::ShadowPtr:
      if (B.D != 0 || !S.ShadowChecked)
        flag(NVCode::UncheckedMemAccess, I.Offset,
             "shadow-stack store without a dominating depth check");
      else if (I.M.Disp != 0 && I.M.Disp != 8)
        flag(NVCode::StrayStore, I.Offset,
             "shadow-stack store outside the frame being pushed");
      return;
    case VK::ProfBase: {
      bool Ok = false;
      if (Opts.Profile && CurProc >= 0 &&
          size_t(CurProc) < ProfOff.size()) {
        int64_t Lo = int64_t(ProfOff[CurProc]) * 8;
        int64_t Hi =
            Lo + int64_t(Prog.Procs[CurProc].Blocks.size()) * 8;
        Ok = I.M.Disp >= Lo && I.M.Disp < Hi && (I.M.Disp - Lo) % 8 == 0;
      }
      if (!Ok)
        flag(NVCode::StrayStore, I.Offset,
             "profile-counter store outside this procedure's window");
      return;
    }
    default:
      flag(NVCode::StrayStore, I.Offset,
           std::string("store through unclassified pointer in ") +
               HostNames[I.M.Base]);
      return;
    }
  }

  void envStore(const DecodedInst &I, AbsState &S, AbsVal Val, StoreSrc Src,
                Reg SrcReg) {
    if (I.M.Disp < 0 || size_t(I.M.Disp) + 8 > sizeof(NativeEnv)) {
      flag(NVCode::StrayStore, I.Offset,
           "store outside the NativeEnv region (r15" +
               std::string(I.M.Disp >= 0 ? "+" : "") +
               std::to_string(I.M.Disp) + ")");
      return;
    }
    size_t D = size_t(I.M.Disp);
    if (D >= RegsOff && D < RegsEnd) {
      if ((D - RegsOff) % 8 != 0) {
        flag(NVCode::StrayStore, I.Offset,
             "misaligned store into the guest register file");
        return;
      }
      unsigned G = unsigned((D - RegsOff) / 8);
      int H = RM->GuestToHost[G];
      if (H >= 0 && !(Src == StoreSrc::FromReg && SrcReg == Reg(H) &&
                      I.Form == IForm::MovMR))
        flag(NVCode::PinnedSlotBypass, I.Offset,
             std::string("slot of pinned ") + regName(G) +
                 " stored from something other than its host " +
                 HostNames[H]);
      else if (PP && H >= 0)
        S.SlotStale &= ~(1u << G); // sync store: slot is canonical again
      S.Slot[G] = Src == StoreSrc::Rmw ? AbsVal{} : Val;
      return;
    }
    if (D == offsetof(NativeEnv, ShadowPtr) ||
        D == offsetof(NativeEnv, ShadowBase) ||
        D == offsetof(NativeEnv, ShadowLimit)) {
      // The cursor (or its bounds) moved: every held cursor copy and
      // the dominating check are stale.
      S.ShadowChecked = false;
      for (unsigned H = 0; H < 16; ++H)
        if (S.Host[H].K == VK::ShadowPtr)
          S.Host[H] = AbsVal{};
      if (S.ScratchA.K == VK::ShadowPtr)
        S.ScratchA = AbsVal{};
    }
    if (D == offsetof(NativeEnv, ScratchA))
      S.ScratchA = Src == StoreSrc::Rmw ? AbsVal{} : Val;
  }

  //===--------------------------------------------------------------------===//
  // Calls
  //===--------------------------------------------------------------------===//

  /// CallSyncMissing at a point where NativeEnv::Regs must be current
  /// for the guest registers in \p Req: any still-dirty pin there
  /// missed its required write-back.
  void checkSynced(const DecodedInst &I, const AbsState &S, uint32_t Req,
                   const char *What) {
    if (!PP)
      return;
    uint32_t Bad = S.SlotStale & Req;
    if (!Bad)
      return;
    unsigned G = unsigned(__builtin_ctz(Bad));
    flag(NVCode::CallSyncMissing, I.Offset,
         std::string("dirty pinned ") + regName(G) +
             " not written back before " + What);
  }

  void execCall(const DecodedInst &I, AbsState &S) {
    auto It = EntryToProc.find(I.target());
    if (It == EntryToProc.end()) {
      // decodeRegion validated call targets; defensive only.
      flag(NVCode::Structure, I.Offset,
           "call to an offset that is no procedure entry");
      checkSynced(I, S, ~0u, "a guest call");
      guestCallEffect(S, nullptr, -1);
      return;
    }
    // Required sync set: raw mode trusts the callee's published masks
    // plus the host-clobber boundary (volatile pins the callee may
    // overwrite, same-host agreements whose entry reload reads the
    // slot); instrumented mode must leave every slot canonical because
    // a bailing callee's careful tail reads NativeEnv::Regs as truth.
    uint32_t Req = ~0u;
    if (Opts.Raw && size_t(It->second) < Table.CallSync.size())
      Req = x64::rawCallBoundary(*RM, Table.CallSync[It->second],
                                 Table.CallReload[It->second],
                                 Table.HostClobber[It->second],
                                 Table.agreementMapFor(It->second))
                .SyncNeed;
    checkSynced(I, S, Req, "a guest call");
    const BitVector *Mask = nullptr;
    if (!Prog.ClobberMasks.empty() &&
        size_t(It->second) < Prog.ClobberMasks.size())
      Mask = &Prog.ClobberMasks[It->second];
    guestCallEffect(S, Mask, int(It->second));
  }

  void execCallM(const DecodedInst &I, AbsState &S) {
    const AbsVal B = S.Host[I.M.Base];
    size_t D = size_t(I.M.Disp);
    if (B.K == VK::EnvPtr) {
      if (D == offsetof(NativeEnv, FnPrint)) {
        helperEffect(S);
      } else if (D == offsetof(NativeEnv, FnSnapshot) ||
                 D == offsetof(NativeEnv, FnCheckRet)) {
        // These helpers read the guest register file.
        checkSynced(I, S, ~0u, "a register-file-reading helper call");
        helperEffect(S);
      } else if (D == offsetof(NativeEnv, FnBail)) {
        // noreturn; the careful tail resumes from NativeEnv::Regs.
        checkSynced(I, S, ~0u, "the bailout helper");
      } else if (D == offsetof(NativeEnv, FnError)) {
        // noreturn: runBlock ends the block here.
      } else {
        flag(NVCode::Structure, I.Offset,
             "call through an unexpected NativeEnv field (r15+" +
                 std::to_string(I.M.Disp) + ")");
      }
      return;
    }
    if (B.K == VK::ProcTabPtr && I.M.Disp == 0) {
      uint32_t Req = ~0u;
      if (Opts.Raw && PP)
        Req = x64::rawCallBoundary(*RM, Table.IndSync, Table.IndReload,
                                   Table.IndHostClobber, nullptr)
                  .SyncNeed;
      checkSynced(I, S, Req, "an indirect guest call");
      guestCallEffect(S, Prog.DefaultClobber.size() ? &Prog.DefaultClobber
                                                    : nullptr,
                      -1);
      return;
    }
    flag(NVCode::Structure, I.Offset,
         std::string("indirect call through unclassified pointer in ") +
             HostNames[I.M.Base]);
    checkSynced(I, S, ~0u, "a guest call");
    guestCallEffect(S, nullptr, -1);
  }

  /// A guest procedure call under the callee's contract \p Mask (null:
  /// no contract, clobber everything); \p Callee is the direct callee's
  /// procedure id, or -1 (indirect / unresolved: assume the default
  /// contract). Guest registers outside the mask keep their canonical
  /// location's value; pinned hosts of masked registers and everything
  /// scratch go to Top. Host stack slots and sp-relative guest saves
  /// survive (callees run below both pointers).
  void guestCallEffect(AbsState &S, const BitVector *Mask, int Callee) {
    S.Host[RAX] = S.Host[RCX] = S.Host[RDX] = AbsVal{};
    if (Opts.Raw) {
      // The callee accumulates into the dedicated counters.
      S.Host[R12] = AbsVal{};
      S.Host[R13] = AbsVal{};
    }
    if (PP && Opts.Raw) {
      // Raw per-procedure maps mirror rawCallBoundary exactly: a
      // volatile pin outside the callee's host-clobber summary is
      // carried -- host value and staleness both ride through the call.
      // A same-host agreement (callee pins this guest in this host)
      // leaves the host holding the guest's current value at ret, so
      // the host goes to Top without becoming stale.
      bool Known = Callee >= 0 && size_t(Callee) < Table.HostClobber.size();
      x64::CallBoundary B =
          Known ? x64::rawCallBoundary(*RM, Table.CallSync[Callee],
                                       Table.CallReload[Callee],
                                       Table.HostClobber[Callee],
                                       Table.agreementMapFor(Callee))
                : x64::rawCallBoundary(*RM, Table.IndSync, Table.IndReload,
                                       Table.IndHostClobber, nullptr);
      // Unpinned volatile hosts die unconditionally. Pinned ones are
      // governed entirely by the per-guest loop below: a host in the
      // callee's clobber summary is wiped through ReloadNeed, while a
      // same-host agreement (the callee pins the same guest there, so
      // its epilogue leaves the guest's current value in place) and a
      // carried pin (the callee provably never touches the host) both
      // keep their abstract value -- wiping them here would erase
      // exactly the facts the carried protocol exists to preserve.
      S.Host[RSI] = S.Host[RDI] = AbsVal{};
      for (Reg H : {R8, R9, R10, R11})
        if (!pinnedHost(H))
          S.Host[H] = AbsVal{};
      for (unsigned G = 0; G < NumPhysRegs; ++G) {
        int H = RM->GuestToHost[G];
        bool Clobbered = masked(Mask, G);
        if (Clobbered) {
          S.Slot[G] = AbsVal{};
          S.SlotStale &= ~(1u << G); // the callee's value supersedes ours
        }
        if (H < 0)
          continue;
        if (B.ReloadNeed & (1u << G)) {
          S.Host[H] = AbsVal{};
          S.HostStale |= 1u << G;
        } else if (Clobbered) {
          S.Host[H] = AbsVal{}; // same-host pin: new value, not stale
        }
      }
    } else if (PP) {
      // Instrumented per-procedure maps: the callee's prologue/epilogue
      // keeps every slot canonical at the boundary -- a masked slot
      // holds whatever the callee left (Top), an unmasked one provably
      // its pre-call value (a callee writing outside its mask must
      // restore it, and its ret sync then stores the entry value back).
      // Volatile hosts die outright; callee-saved hosts of unmasked
      // pins survive.
      for (Reg H : {RSI, RDI, R8, R9, R10, R11})
        S.Host[H] = AbsVal{};
      for (unsigned G = 0; G < NumPhysRegs; ++G) {
        int H = RM->GuestToHost[G];
        bool Clobbered = masked(Mask, G);
        if (Clobbered) {
          S.Slot[G] = AbsVal{};
          S.SlotStale &= ~(1u << G); // the callee's value supersedes ours
        }
        if (H < 0)
          continue;
        if (Clobbered || (VolPinMask & (1u << G))) {
          S.Host[H] = AbsVal{};
          S.HostStale |= 1u << G;
        }
      }
    } else {
      for (Reg H : {RSI, RDI, R8, R9, R10, R11})
        if (!pinnedHost(H))
          S.Host[H] = AbsVal{};
      for (unsigned G = 0; G < NumPhysRegs; ++G) {
        int H = RM->GuestToHost[G];
        if (H >= 0) {
          if (masked(Mask, G))
            S.Host[H] = AbsVal{};
          S.Slot[G] = AbsVal{}; // pinned slots may be synced stale
        } else if (masked(Mask, G)) {
          S.Slot[G] = AbsVal{};
        }
      }
    }
    S.ScratchA = AbsVal{};
    S.ShadowChecked = false;
  }

  /// FnPrint / FnSnapshot / FnCheckRet: plain C++ functions -- they
  /// clobber exactly the SysV caller-saved hosts and leave NativeEnv's
  /// JIT-owned fields (slots, ScratchA, the shadow cursor) alone.
  void helperEffect(AbsState &S) {
    for (Reg H : {RAX, RCX, RDX, RSI, RDI, R8, R9, R10, R11})
      S.Host[H] = AbsVal{};
    if (PP)
      S.HostStale |= VolPinMask; // volatile-hosted pins died with them
  }

  //===--------------------------------------------------------------------===//
  // Return checks (obligations (b) and (c))
  //===--------------------------------------------------------------------===//

  void retChecks(const AbsState &S, const DecodedInst &I) {
    if (!S.SPKnown || S.SPDelta != 0)
      report(NVCode::HostCalleeSavedNotPreserved, CurProc, I.Offset,
             "rsp not provably restored at ret");
    if (CurProc == -1) {
      for (Reg H : {RBX, RBP, R12, R13, R14, R15}) {
        const AbsVal &V = S.Host[H];
        if (!(V.K == VK::HostEntry && V.A == int64_t(H)))
          report(NVCode::HostCalleeSavedNotPreserved, CurProc, I.Offset,
                 std::string("callee-saved ") + HostNames[H] +
                     " not restored by the trampoline");
      }
      return;
    }
    if (S.Host[R15].K != VK::EnvPtr)
      report(NVCode::HostCalleeSavedNotPreserved, CurProc, I.Offset,
             "r15 no longer holds the NativeEnv pointer at ret");
    if (S.Host[R14].K != VK::MemBase)
      report(NVCode::HostCalleeSavedNotPreserved, CurProc, I.Offset,
             "r14 no longer holds the guest memory base at ret");
    for (Reg H : {RBX, RBP, R12, R13}) {
      // Per-procedure maps restore pinned callee-saved hosts through
      // the epilogue pops, so they owe the check too; the global map
      // dedicates them to their guests for the whole run.
      if ((!PP && pinnedHost(H)) || rawCounter(H))
        continue;
      const AbsVal &V = S.Host[H];
      if (!(V.K == VK::ProcEntryHost && V.A == int64_t(H)))
        report(NVCode::HostCalleeSavedNotPreserved, CurProc, I.Offset,
               std::string("callee-saved ") + HostNames[H] +
                   " not preserved at ret");
    }
    if (PP && S.SlotStale) {
      unsigned G = unsigned(__builtin_ctz(S.SlotStale));
      report(NVCode::CallSyncMissing, CurProc, I.Offset,
             std::string("dirty pinned ") + regName(G) +
                 " not written back before ret");
    }
    if (Prog.ClobberMasks.empty() ||
        size_t(CurProc) >= Prog.ClobberMasks.size())
      return; // no contracts published (hand-built program)
    const BitVector &Mask = Prog.ClobberMasks[CurProc];
    for (unsigned G = 0; G < NumPhysRegs; ++G) {
      if (G == RegZero || G == RegSP || G == RegRA)
        continue;
      if (G < Mask.size() && Mask.test(G))
        continue;
      int H = RM->GuestToHost[G];
      // Per-procedure maps: the slot is the canonical location at ret
      // (the epilogue popped the hosts); global map: a pinned register
      // lives in its host.
      const AbsVal &V = (!PP && H >= 0) ? S.Host[H] : S.Slot[G];
      if (!(V.K == VK::GuestEntry && V.A == int64_t(G) && V.D == 0))
        report(NVCode::GuestClobberBeyondSummary, CurProc, I.Offset,
               std::string(regName(G)) +
                   " may not hold its entry value at ret but is outside "
                   "the published clobber mask");
    }
  }

  //===--------------------------------------------------------------------===//
  // Budget placement (obligation (e))
  //===--------------------------------------------------------------------===//

  static int indexAt(const DecodedRegion &R, size_t Off) {
    size_t Lo = 0, Hi = R.Insts.size();
    while (Lo < Hi) {
      size_t Mid = (Lo + Hi) / 2;
      if (R.Insts[Mid].Offset < Off)
        Lo = Mid + 1;
      else
        Hi = Mid;
    }
    if (Lo < R.Insts.size() && R.Insts[Lo].Offset == Off)
      return int(Lo);
    return -1;
  }

  void budgetScan(const DecodedRegion &R) {
    // A backward byte branch is exactly a layout back edge: blocks are
    // emitted in layout order and every other intra-procedure branch
    // (stub exits, the div/shift internal labels) is forward.
    std::set<size_t> Targets;
    Targets.insert(R.Begin);
    for (const DecodedInst &I : R.Insts)
      if (I.isBranch()) {
        size_t Tgt = I.target();
        if (Tgt >= R.Begin && Tgt < R.End && Tgt <= I.Offset)
          Targets.insert(Tgt);
      }
    for (size_t T : Targets)
      if (!matchBudget(R, T))
        report(NVCode::MissingBudgetCheck, CurProc, T,
               T == R.Begin
                   ? "procedure entry without its budget check"
                   : "back-edge target without its budget check");
  }

  bool matchBudget(const DecodedRegion &R, size_t T) {
    int N = indexAt(R, T);
    if (N < 0)
      return false;
    size_t I = size_t(N);
    auto At = [&](size_t K) -> const DecodedInst * {
      return K < R.Insts.size() ? &R.Insts[K] : nullptr;
    };
    // The procedure prologue precedes the first block's head: under
    // per-procedure maps [push host]*, the optional alignment pad, then
    // the pinned-register loads from their own slots; under the global
    // map just the pad.
    const DecodedInst *P = At(I);
    if (T == R.Begin && PP && CurProc >= 0)
      while (P && P->Form == IForm::PushR)
        P = At(++I);
    if (T == R.Begin && P && P->Form == IForm::AluRI &&
        P->Op == Alu::Sub && P->R1 == RSP && P->Imm == 8)
      P = At(++I);
    if (T == R.Begin && PP && CurProc >= 0) {
      auto IsOwnSlotLoad = [&](const DecodedInst *Q) {
        if (!Q || Q->Form != IForm::MovRM || Q->M.Base != R15 ||
            Q->M.Disp < 0)
          return false;
        size_t D = size_t(Q->M.Disp);
        if (D < RegsOff || D >= RegsEnd || (D - RegsOff) % 8 != 0)
          return false;
        return RM->GuestToHost[(D - RegsOff) / 8] == int(Q->R1);
      };
      while (IsOwnSlotLoad(P))
        P = At(++I);
    }
    if (!P)
      return false;
    if (!Opts.Raw) {
      // movri rax, MaxSteps; sub rax, [r15+Steps]; cmp rax, cost; jb bail
      if (!((P->Form == IForm::MovRI32 || P->Form == IForm::MovRI64) &&
            P->R1 == RAX && uint64_t(P->Imm) == Opts.MaxSteps))
        return false;
      P = At(++I);
      if (!(P && P->Form == IForm::AluRM && P->Op == Alu::Sub &&
            P->R1 == RAX && P->M.Base == R15 &&
            size_t(P->M.Disp) == offsetof(NativeEnv, Steps)))
        return false;
      P = At(++I);
      if (!(P && P->Form == IForm::AluRI && P->Op == Alu::Cmp &&
            P->R1 == RAX))
        return false;
      P = At(++I);
      return P && P->Form == IForm::Jcc && P->CC == Cond::B &&
             P->target() >= R.Begin && P->target() < R.End;
    }
    // add r12, cost; [mem-counter adds]; [add r13, calls];
    // (cmp r12, MaxSteps | movri rax, MaxSteps; cmp r12, rax); jae stub
    if (!(P->Form == IForm::AluRI && P->Op == Alu::Add && P->R1 == R12))
      return false;
    P = At(++I);
    while (P && P->Form == IForm::AluMI && P->Op == Alu::Add &&
           P->M.Base == R15)
      P = At(++I);
    if (P && P->Form == IForm::AluRI && P->Op == Alu::Add && P->R1 == R13)
      P = At(++I);
    if (!P)
      return false;
    if (P->Form == IForm::AluRI && P->Op == Alu::Cmp && P->R1 == R12 &&
        uint64_t(P->Imm) == Opts.MaxSteps) {
      P = At(++I);
    } else if ((P->Form == IForm::MovRI32 || P->Form == IForm::MovRI64) &&
               P->R1 == RAX && uint64_t(P->Imm) == Opts.MaxSteps) {
      P = At(++I);
      if (!(P && P->Form == IForm::AluRR && P->Op == Alu::Cmp &&
            P->R1 == R12 && P->R2 == RAX))
        return false;
      P = At(++I);
    } else {
      return false;
    }
    return P && P->Form == IForm::Jcc && P->CC == Cond::AE &&
           P->target() == Code.RawStubOff;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Public surface
//===----------------------------------------------------------------------===//

const char *ipra::x64::nvCodeName(NVCode Code) {
  switch (Code) {
  case NVCode::Decode:
    return "decode";
  case NVCode::Encoding:
    return "encoding";
  case NVCode::Structure:
    return "structure";
  case NVCode::PinnedSlotBypass:
    return "pinned-slot-bypass";
  case NVCode::GuestClobberBeyondSummary:
    return "guest-clobber-beyond-summary";
  case NVCode::HostCalleeSavedNotPreserved:
    return "host-callee-saved-not-preserved";
  case NVCode::StrayStore:
    return "stray-store";
  case NVCode::UncheckedMemAccess:
    return "unchecked-mem-access";
  case NVCode::MissingBudgetCheck:
    return "missing-budget-check";
  case NVCode::CounterClobbered:
    return "counter-clobbered";
  case NVCode::CallSyncMissing:
    return "call-sync-missing";
  case NVCode::StaleCachedValue:
    return "stale-cached-value";
  }
  return "?";
}

std::string ipra::x64::NVerifyDiag::str() const {
  std::string Where;
  if (Proc == -1)
    Where = "trampoline";
  else if (Proc == -2)
    Where = "raw-budget-stub";
  else
    Where = "proc #" + std::to_string(Proc);
  return "[" + std::string(nvCodeName(Code)) + "] " + Where + " +" +
         hexOff(Offset) + ": " + Message;
}

std::string ipra::x64::NVerifyResult::str() const {
  std::string Out;
  for (const NVerifyDiag &D : Violations) {
    if (!Out.empty())
      Out += '\n';
    Out += D.str();
  }
  return Out;
}

NVerifyResult ipra::x64::verifyNativeCode(const MProgram &Prog,
                                          const NativeCodeGenOptions &Opts,
                                          const RegMapTable &Maps,
                                          const std::vector<size_t> &ProfOff,
                                          const NativeCode &Code,
                                          const NVerifyOptions &VO) {
  return Auditor(Prog, Opts, Maps, ProfOff, Code, VO).run();
}
