//===- programs/Programs.cpp - Benchmark registry --------------------------===//

#include "programs/Programs.h"

#include <algorithm>

namespace ipra {
// Defined in ProgramsSmall/Medium/Large.cpp.
extern const char *NimSource;
extern const char *MapSource;
extern const char *CalccSource;
extern const char *DiffSource;
extern const char *DhrystoneSource;
extern const char *StanfordSource;
extern const char *PfSource;
extern const char *AwkSource;
extern const char *TexSource;
extern const char *CcomSource;
extern const char *As1Source;
extern const char *UpasSource;
extern const char *UoptSource;
} // namespace ipra

using namespace ipra;

int BenchmarkProgram::sourceLines() const {
  return int(std::count(Source, Source + std::string(Source).size(), '\n'));
}

const std::vector<BenchmarkProgram> &ipra::benchmarkSuite() {
  static const std::vector<BenchmarkProgram> Suite = {
      {"nim", "Pascal", "a program to play the game of Nim", NimSource},
      {"map", "Pascal", "a program to find a 4-coloring for a map",
       MapSource},
      {"calcc", "Pascal",
       "a program that manipulates dynamic and variable-length strings",
       CalccSource},
      {"diff", "C", "the UNIX file comparison utility", DiffSource},
      {"dhrystone", "C", "a synthetic benchmark by Reinhold Weicker",
       DhrystoneSource},
      {"stanford", "Pascal", "a benchmark suite collected by John Hennessy",
       StanfordSource},
      {"pf", "Pascal", "a Pascal pretty-printer written by Larry Weber",
       PfSource},
      {"awk", "C",
       "the Awk pattern processing and scanning utility from UNIX",
       AwkSource},
      {"tex", "Pascal", "virtex from the TeX typesetting package", TexSource},
      {"ccom", "C", "first pass of the MIPS C compiler", CcomSource},
      {"as1", "Pascal/C", "the MIPS assembler/reorganizer", As1Source},
      {"upas", "Pascal", "first pass of the MIPS Pascal compiler",
       UpasSource},
      {"uopt", "Pascal",
       "the MIPS Ucode global optimizer, including the register allocator",
       UoptSource},
  };
  return Suite;
}

const BenchmarkProgram *ipra::findBenchmark(const std::string &Name) {
  for (const BenchmarkProgram &P : benchmarkSuite())
    if (Name == P.Name)
      return &P;
  return nullptr;
}
