//===- programs/ProgramsSmall.cpp - nim, map, calcc, diff, dhrystone ------===//
//
// The five smallest benchmarks of the paper's suite. Each is call-
// intensive with mostly-closed call graphs, the regime where the paper's
// smaller programs saw the largest inter-procedural wins.
//
//===----------------------------------------------------------------------===//

#include "programs/Programs.h"

namespace ipra {

/// nim: plays the game of Nim (optimal xor strategy vs. a greedy player)
/// over all small initial positions. Mirrors the paper's Stanford course
/// program: tiny leaf-heavy helpers called in tight loops.
const char *NimSource = R"MC(
// nim -- play the game of Nim over all small three-heap positions.
var winsOptimal;
var winsGreedy;

func bitXor(a, b) {
  var result = 0;
  var bit = 1;
  while (a > 0 || b > 0) {
    if (a % 2 != b % 2) { result = result + bit; }
    a = a / 2;
    b = b / 2;
    bit = bit * 2;
  }
  return result;
}

func nimSum(h) {
  var s = bitXor(h[0], h[1]);
  return bitXor(s, h[2]);
}

func largestHeap(h) {
  var best = 0;
  if (h[1] > h[best]) { best = 1; }
  if (h[2] > h[best]) { best = 2; }
  return best;
}

func takeOptimal(h) {
  var s = nimSum(h);
  if (s == 0) {
    var i = largestHeap(h);
    if (h[i] > 0) { h[i] = h[i] - 1; }
    return 0;
  }
  for (var i = 0; i < 3; i = i + 1) {
    var target = bitXor(s, h[i]);
    if (target < h[i]) {
      h[i] = target;
      return 1;
    }
  }
  return 0;
}

func takeGreedy(h, seed) {
  for (var i = 0; i < 3; i = i + 1) {
    if (h[i] > 0) {
      h[i] = h[i] - (seed % h[i] + 1);
      return 1;
    }
  }
  return 0;
}

func isEmpty(h) {
  return h[0] == 0 && h[1] == 0 && h[2] == 0;
}

func playGame(a, b, c, seed) {
  var h[3];
  h[0] = a; h[1] = b; h[2] = c;
  var turn = 0;
  while (!isEmpty(h)) {
    if (turn == 0) { takeOptimal(h); }
    else {
      takeGreedy(h, seed);
      seed = (seed * 131 + 7) % 1000;
    }
    if (isEmpty(h)) { return turn; }
    turn = 1 - turn;
  }
  return turn;
}

func main() {
  winsOptimal = 0;
  winsGreedy = 0;
  for (var a = 1; a <= 8; a = a + 1) {
    for (var b = 1; b <= 8; b = b + 1) {
      for (var c = 1; c <= 8; c = c + 1) {
        if (playGame(a, b, c, a * 64 + b * 8 + c) == 0) {
          winsOptimal = winsOptimal + 1;
        } else {
          winsGreedy = winsGreedy + 1;
        }
      }
    }
  }
  print(winsOptimal);
  print(winsGreedy);
  return 0;
}
)MC";

/// map: finds 4-colorings of a planar-ish region graph by backtracking.
/// The recursive search makes the upper call graph open, while the
/// conflict checks are closed leaves.
const char *MapSource = R"MC(
// map -- count 4-colorings of a 6x6 grid map with extra diagonal borders.
var color[36];
var solutions;

func regionOf(row, col) { return row * 6 + col; }

func bordersConflict(r, c, candidate) {
  // Orthogonal neighbours already colored (left and up).
  if (c > 0 && color[regionOf(r, c - 1)] == candidate) { return 1; }
  if (r > 0 && color[regionOf(r - 1, c)] == candidate) { return 1; }
  // One diagonal border per odd region keeps the map from being bipartite.
  if (r > 0 && c > 0 && (r + c) % 2 == 1) {
    if (color[regionOf(r - 1, c - 1)] == candidate) { return 1; }
  }
  return 0;
}

func countFromRegion(region) {
  if (region == 36) { return 1; }
  var r = region / 6;
  var c = region % 6;
  var total = 0;
  for (var candidate = 1; candidate <= 4; candidate = candidate + 1) {
    if (!bordersConflict(r, c, candidate)) {
      color[region] = candidate;
      total = total + countFromRegion(region + 1);
      color[region] = 0;
    }
  }
  // Bound the count so the search explores without exploding.
  if (total > 100000) { total = 100000; }
  return total;
}

func checksumColors() {
  var sum = 0;
  for (var i = 0; i < 36; i = i + 1) { sum = sum + color[i] * (i + 1); }
  return sum;
}

func firstSolution(region) {
  if (region == 36) { return 1; }
  var r = region / 6;
  var c = region % 6;
  for (var candidate = 1; candidate <= 4; candidate = candidate + 1) {
    if (!bordersConflict(r, c, candidate)) {
      color[region] = candidate;
      if (firstSolution(region + 1)) { return 1; }
      color[region] = 0;
    }
  }
  return 0;
}

func verifyColoring() {
  // Re-check every border of the found coloring independently.
  var bad = 0;
  for (var r = 0; r < 6; r = r + 1) {
    for (var c = 0; c < 6; c = c + 1) {
      var me = color[regionOf(r, c)];
      if (me == 0) { bad = bad + 1; }
      if (c > 0 && color[regionOf(r, c - 1)] == me) { bad = bad + 1; }
      if (r > 0 && color[regionOf(r - 1, c)] == me) { bad = bad + 1; }
      if (r > 0 && c > 0 && (r + c) % 2 == 1) {
        if (color[regionOf(r - 1, c - 1)] == me) { bad = bad + 1; }
      }
    }
  }
  return bad;
}

func colorHistogram() {
  var counts[5];
  for (var k = 0; k <= 4; k = k + 1) { counts[k] = 0; }
  for (var i = 0; i < 36; i = i + 1) {
    counts[color[i]] = counts[color[i]] + 1;
  }
  return counts[1] * 1000000 + counts[2] * 10000 + counts[3] * 100 +
         counts[4];
}

func main() {
  for (var i = 0; i < 36; i = i + 1) { color[i] = 0; }
  if (firstSolution(0)) { print(checksumColors()); } else { print(-1); }
  print(verifyColoring());
  print(colorHistogram());
  solutions = 0;
  // Count colorings of the top two rows only (12 regions).
  for (var i = 0; i < 36; i = i + 1) { color[i] = 0; }
  solutions = countPartial(0);
  print(solutions);
  return 0;
}

func countPartial(region) {
  if (region == 12) { return 1; }
  var r = region / 6;
  var c = region % 6;
  var total = 0;
  for (var candidate = 1; candidate <= 4; candidate = candidate + 1) {
    if (!bordersConflict(r, c, candidate)) {
      color[region] = candidate;
      total = total + countPartial(region + 1);
      color[region] = 0;
    }
  }
  return total;
}
)MC";

/// calcc: dynamic variable-length "string" manipulation, strings being
/// length-prefixed word arrays. Leaf-heavy closed helpers dominate.
const char *CalccSource = R"MC(
// calcc -- dynamic and variable-length string manipulation.
var heap[4096];
var heapTop;

func newString(capacity) {
  var handle = heapTop;
  heap[handle] = 0;
  heapTop = heapTop + capacity + 1;
  return handle;
}

func strLen(s) { return heap[s]; }

func strChar(s, i) { return heap[s + 1 + i]; }

func strPut(s, i, ch) {
  heap[s + 1 + i] = ch;
  if (i + 1 > heap[s]) { heap[s] = i + 1; }
  return 0;
}

func strClear(s) { heap[s] = 0; return 0; }

func strCopy(dst, src) {
  strClear(dst);
  var n = strLen(src);
  for (var i = 0; i < n; i = i + 1) { strPut(dst, i, strChar(src, i)); }
  return dst;
}

func strCat(dst, src) {
  var base = strLen(dst);
  var n = strLen(src);
  for (var i = 0; i < n; i = i + 1) {
    strPut(dst, base + i, strChar(src, i));
  }
  return dst;
}

func strReverse(s) {
  var i = 0;
  var j = strLen(s) - 1;
  while (i < j) {
    var tmp = strChar(s, i);
    strPut(s, i, strChar(s, j));
    strPut(s, j, tmp);
    i = i + 1;
    j = j - 1;
  }
  return s;
}

func strCompare(a, b) {
  var la = strLen(a);
  var lb = strLen(b);
  var n = la;
  if (lb < n) { n = lb; }
  for (var i = 0; i < n; i = i + 1) {
    var d = strChar(a, i) - strChar(b, i);
    if (d != 0) { return d; }
  }
  return la - lb;
}

func strHash(s) {
  var h = 5381;
  var n = strLen(s);
  for (var i = 0; i < n; i = i + 1) {
    h = (h * 33 + strChar(s, i)) % 1000000007;
  }
  return h;
}

func strFind(haystack, needle) {
  var n = strLen(haystack);
  var m = strLen(needle);
  for (var start = 0; start + m <= n; start = start + 1) {
    var ok = 1;
    for (var i = 0; i < m && ok; i = i + 1) {
      if (strChar(haystack, start + i) != strChar(needle, i)) { ok = 0; }
    }
    if (ok) { return start; }
  }
  return -1;
}

func strRotate(s, by) {
  var n = strLen(s);
  if (n == 0) { return s; }
  by = by % n;
  for (var round = 0; round < by; round = round + 1) {
    var first = strChar(s, 0);
    for (var i = 0; i + 1 < n; i = i + 1) {
      strPut(s, i, strChar(s, i + 1));
    }
    strPut(s, n - 1, first);
  }
  return s;
}

func strTail(dst, src, from) {
  strClear(dst);
  var n = strLen(src);
  for (var i = from; i < n; i = i + 1) {
    strPut(dst, i - from, strChar(src, i));
  }
  return dst;
}

func fillPattern(s, seed, len) {
  strClear(s);
  for (var i = 0; i < len; i = i + 1) {
    seed = (seed * 1103 + 12345) % 65536;
    strPut(s, i, seed % 26 + 97);
  }
  return s;
}

func main() {
  heapTop = 0;
  var a = newString(64);
  var b = newString(64);
  var c = newString(192);
  var t = newString(192);
  var checksum = 0;
  var found = 0;
  for (var round = 1; round <= 60; round = round + 1) {
    fillPattern(a, round, 10 + round % 20);
    fillPattern(b, round * 7, 5 + round % 30);
    strCopy(c, a);
    strCat(c, b);
    strReverse(c);
    strRotate(c, round % 11);
    if (strFind(c, b) >= 0) { found = found + 1; }
    strTail(t, c, round % 7);
    checksum = checksum + strHash(c) + strHash(t);
    if (strCompare(a, b) > 0) { checksum = checksum + 1; }
    checksum = checksum % 1000000007;
  }
  print(checksum);
  print(found);
  print(strLen(c));
  return 0;
}
)MC";

/// diff: longest-common-subsequence comparison of two synthetic "files"
/// of line hashes, the core of the UNIX diff utility.
const char *DiffSource = R"MC(
// diff -- LCS-based comparison of two synthetic files of line hashes.
var fileA[80];
var fileB[80];
var lcs[6561];   // (80+1)^2 is too big; use 81*81 = 6561
var lenA;
var lenB;

func lineHash(fileId, n) {
  return (fileId * 2654435761 + n * 40503) % 9973;
}

func makeFiles() {
  lenA = 70;
  lenB = 75;
  // Common prefix, a changed hunk, common middle, an inserted hunk, tail.
  for (var i = 0; i < lenA; i = i + 1) {
    if (i < 20 || (i >= 30 && i < 55)) { fileA[i] = lineHash(0, i); }
    else { fileA[i] = lineHash(1, i); }
  }
  for (var i = 0; i < lenB; i = i + 1) {
    if (i < 20) { fileB[i] = lineHash(0, i); }
    else if (i >= 25 && i < 50) { fileB[i] = lineHash(0, i + 5); }
    else { fileB[i] = lineHash(2, i); }
  }
  return 0;
}

func cell(i, j) { return i * 81 + j; }

func maxOf(a, b) {
  if (a > b) { return a; }
  return b;
}

func equalLines(i, j) { return fileA[i] == fileB[j]; }

func computeLCS() {
  for (var i = 0; i <= lenA; i = i + 1) { lcs[cell(i, 0)] = 0; }
  for (var j = 0; j <= lenB; j = j + 1) { lcs[cell(0, j)] = 0; }
  for (var i = 1; i <= lenA; i = i + 1) {
    for (var j = 1; j <= lenB; j = j + 1) {
      if (equalLines(i - 1, j - 1)) {
        lcs[cell(i, j)] = lcs[cell(i - 1, j - 1)] + 1;
      } else {
        lcs[cell(i, j)] = maxOf(lcs[cell(i - 1, j)], lcs[cell(i, j - 1)]);
      }
    }
  }
  return lcs[cell(lenA, lenB)];
}

func countEdits(common) {
  return (lenA - common) + (lenB - common);
}

// Edit script: 1 = keep, 2 = delete from A, 3 = insert from B.
var script[200];
var scriptLen;

func pushOp(op) {
  script[scriptLen] = op;
  scriptLen = scriptLen + 1;
  return 0;
}

func reverseScript() {
  var i = 0;
  var j = scriptLen - 1;
  while (i < j) {
    var t = script[i];
    script[i] = script[j];
    script[j] = t;
    i = i + 1;
    j = j - 1;
  }
  return 0;
}

func buildScript() {
  scriptLen = 0;
  var i = lenA;
  var j = lenB;
  while (i > 0 || j > 0) {
    if (i > 0 && j > 0 && equalLines(i - 1, j - 1)) {
      pushOp(1);
      i = i - 1;
      j = j - 1;
    } else if (j > 0 &&
               (i == 0 || lcs[cell(i, j - 1)] >= lcs[cell(i - 1, j)])) {
      pushOp(3);
      j = j - 1;
    } else {
      pushOp(2);
      i = i - 1;
    }
  }
  reverseScript();
  return scriptLen;
}

func countHunks() {
  // A hunk is a maximal run of non-keep operations.
  var hunks = 0;
  var inHunk = 0;
  for (var k = 0; k < scriptLen; k = k + 1) {
    if (script[k] != 1) {
      if (!inHunk) { hunks = hunks + 1; }
      inHunk = 1;
    } else {
      inHunk = 0;
    }
  }
  return hunks;
}

func scriptStats() {
  var dels = 0;
  var inss = 0;
  var keeps = 0;
  for (var k = 0; k < scriptLen; k = k + 1) {
    if (script[k] == 1) { keeps = keeps + 1; }
    else if (script[k] == 2) { dels = dels + 1; }
    else { inss = inss + 1; }
  }
  return keeps * 1000000 + dels * 1000 + inss;
}

func similarityPermille(common) {
  // 1000 * 2*common / (lenA + lenB), the classic similarity ratio.
  return 1000 * 2 * common / (lenA + lenB);
}

func largestHunk() {
  var best = 0;
  var run = 0;
  for (var k = 0; k < scriptLen; k = k + 1) {
    if (script[k] != 1) { run = run + 1; }
    else { run = 0; }
    if (run > best) { best = run; }
  }
  return best;
}

func main() {
  makeFiles();
  var common = computeLCS();
  print(common);
  print(countEdits(common));
  buildScript();
  print(countHunks());
  print(scriptStats());
  print(similarityPermille(common));
  print(largestHunk());
  return 0;
}
)MC";

/// dhrystone: a faithful structural analogue of Weicker's synthetic
/// benchmark: a fixed mix of assignments, control flow and many calls to
/// small procedures, iterated.
const char *DhrystoneSource = R"MC(
// dhrystone -- synthetic procedure-call workload (Weicker's mix).
var intGlob;
var boolGlob;
var charGlob1;
var charGlob2;
var array1Glob[50];
var array2Glob[128];   // treated as 8x16 matrix
var recordGlob[8];     // record: [discr, enumComp, intComp, stringHash]
var nextRecordGlob[8];

func func1(ch1, ch2) {
  var chLoc = ch1;
  if (chLoc != ch2) { return 0; }
  charGlob1 = chLoc;
  return 1;
}

func func2(strHash1, strHash2) {
  var intLoc = 2;
  while (intLoc <= 2) {
    if (func1(intLoc % 3, intLoc % 2) == 0) { intLoc = intLoc + 1; }
    else { intLoc = intLoc + 3; }
  }
  if (strHash1 != strHash2) { intGlob = intLoc; return 1; }
  return 0;
}

func func3(enumParam) {
  var enumLoc = enumParam;
  if (enumLoc == 2) { return 1; }
  return 0;
}

func proc7(int1, int2, result) {
  var intLoc = int1 + 2;
  heapStore(result, int2 + intLoc);
  return 0;
}

var resultCell[4];

func heapStore(cellAddr, value) {
  cellAddr[0] = value;
  return 0;
}

func proc8(arr1, arr2, int1, int2) {
  var intLoc = int1 + 5;
  arr1[intLoc] = int2;
  arr1[intLoc + 1] = arr1[intLoc];
  arr1[intLoc + 30] = intLoc;
  for (var idx = intLoc; idx <= intLoc + 1; idx = idx + 1) {
    arr2[intLoc * 8 + idx] = intLoc;
  }
  arr2[intLoc * 8 + intLoc - 1] = arr2[intLoc * 8 + intLoc - 1] + 1;
  arr2[(intLoc + 2) * 8 + intLoc] = arr1[intLoc];
  intGlob = 5;
  return 0;
}

func proc6(enumVal, enumRef) {
  heapStore(enumRef, enumVal);
  if (!func3(enumVal)) { heapStore(enumRef, 3); }
  if (enumVal == 0) { heapStore(enumRef, 0); }
  else if (enumVal == 1) {
    if (intGlob > 100) { heapStore(enumRef, 0); }
    else { heapStore(enumRef, 3); }
  }
  else if (enumVal == 2) { heapStore(enumRef, 1); }
  else if (enumVal == 4) { heapStore(enumRef, 2); }
  return 0;
}

func proc5() {
  charGlob1 = 65;
  boolGlob = 0;
  return 0;
}

func proc4() {
  var boolLoc = charGlob1 == 65;
  boolLoc = boolLoc || boolGlob;
  charGlob2 = 66;
  return 0;
}

func proc3(ptrRef) {
  heapStore(ptrRef, intGlob + 10);
  proc7(10, intGlob, resultCell);
  intGlob = resultCell[0];
  return 0;
}

func proc2(intRef) {
  var intLoc = intRef[0] + 10;
  var enumLoc = 0;
  var done = 0;
  while (!done) {
    if (charGlob1 == 65) {
      intLoc = intLoc - 1;
      heapStore(intRef, intLoc - intGlob);
      enumLoc = 1;
    }
    if (enumLoc == 1) { done = 1; }
  }
  return 0;
}

func proc1(recIdx) {
  // Copy the global record into the "next" record, then mutate.
  for (var i = 0; i < 4; i = i + 1) {
    nextRecordGlob[i] = recordGlob[i];
  }
  recordGlob[2] = 5;
  nextRecordGlob[2] = recordGlob[2];
  proc3(resultCell);
  nextRecordGlob[3] = resultCell[0];
  if (nextRecordGlob[0] == 0) {
    nextRecordGlob[2] = 6;
    proc6(recIdx % 5, resultCell);
    nextRecordGlob[1] = resultCell[0];
    nextRecordGlob[3] = recordGlob[3];
  } else {
    for (var i = 0; i < 4; i = i + 1) {
      recordGlob[i] = nextRecordGlob[i];
    }
  }
  return 0;
}

func main() {
  intGlob = 0;
  boolGlob = 0;
  charGlob1 = 0;
  charGlob2 = 0;
  var intLoc1 = 0;
  var intLoc2 = 0;
  var intLoc3 = 0;
  var checksum = 0;
  for (var run = 1; run <= 300; run = run + 1) {
    proc5();
    proc4();
    // proc2 spins until charGlob1 is 'A'; call it while proc5's effect
    // still holds (func1 below overwrites charGlob1).
    proc2(resultCell);
    intLoc1 = 2;
    intLoc2 = 3;
    var strHash1 = 1234 + run;
    var strHash2 = 1234;
    var enumLoc = 1;
    boolGlob = !func2(strHash1, strHash2);
    while (intLoc1 < intLoc2) {
      intLoc3 = 5 * intLoc1 - intLoc2;
      proc7(intLoc1, intLoc2, resultCell);
      intLoc3 = resultCell[0];
      intLoc1 = intLoc1 + 1;
    }
    proc8(array1Glob, array2Glob, intLoc1, intLoc3);
    proc1(run);
    var chIndex = 65;
    while (chIndex <= 67) {
      if (enumLoc == func1(chIndex % 4, 2)) {
        proc6(0, resultCell);
        enumLoc = resultCell[0];
      }
      chIndex = chIndex + 1;
    }
    intLoc3 = intLoc2 * intLoc1;
    intLoc2 = intLoc3 / 3;
    intLoc2 = 7 * (intLoc3 - intLoc2) - intLoc1;
    checksum = (checksum + intGlob + intLoc1 + intLoc2 + intLoc3 +
                charGlob1 + charGlob2 + boolGlob) % 1000000007;
  }
  print(checksum);
  print(intGlob);
  return 0;
}
)MC";

} // namespace ipra
