//===- programs/Programs.h - The 13-program benchmark suite ----*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// miniC analogues of the paper's 13 benchmark programs (Appendix + Table
/// 1). Absolute source sizes are scaled down uniformly; what the suite
/// preserves is the paper's size *ordering*, call intensity, and the
/// open/closed mix (recursion, indirect calls, exported entry points) that
/// drive the inter-procedural allocator's behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_PROGRAMS_PROGRAMS_H
#define IPRA_PROGRAMS_PROGRAMS_H

#include <string>
#include <vector>

namespace ipra {

struct BenchmarkProgram {
  /// Paper benchmark this stands in for (nim, map, ...).
  const char *Name;
  /// Source language of the paper's original ("Pascal", "C", "Pascal/C").
  const char *Language;
  /// What the program computes.
  const char *Description;
  /// miniC source text.
  const char *Source;

  /// Number of source lines (the Table 1 "source lines" column analog).
  int sourceLines() const;
};

/// The benchmarks in the paper's Table 1 order (increasing original size).
const std::vector<BenchmarkProgram> &benchmarkSuite();

/// Finds a benchmark by name; nullptr if absent.
const BenchmarkProgram *findBenchmark(const std::string &Name);

} // namespace ipra

#endif // IPRA_PROGRAMS_PROGRAMS_H
