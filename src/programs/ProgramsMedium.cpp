//===- programs/ProgramsMedium.cpp - stanford, pf, awk --------------------===//
//
// The middle of the suite: Hennessy's benchmark collection, a Pascal
// pretty-printer (closed, stack-based), and an awk-like record processor
// whose pattern dispatch uses indirect calls (address-taken = open).
//
//===----------------------------------------------------------------------===//

#include "programs/Programs.h"

namespace ipra {

/// stanford: the classic collection — permutations, towers of Hanoi,
/// eight queens, integer matrix multiply, bubble sort and quicksort.
/// Recursion-heavy, so much of the call graph is open.
const char *StanfordSource = R"MC(
// stanford -- Hennessy's benchmark collection (integer subset).
var permArray[12];
var permCount;

func swapPerm(i, j) {
  var t = permArray[i];
  permArray[i] = permArray[j];
  permArray[j] = t;
  return 0;
}

func permute(n) {
  permCount = permCount + 1;
  if (n != 1) {
    permute(n - 1);
    for (var k = n - 1; k >= 1; k = k - 1) {
      swapPerm(n - 1, k - 1);
      permute(n - 1);
      swapPerm(n - 1, k - 1);
    }
  }
  return 0;
}

func runPerm() {
  permCount = 0;
  for (var i = 0; i < 7; i = i + 1) { permArray[i] = i; }
  permute(7);
  return permCount;
}

var moveCount;

func hanoi(n, from, to, via) {
  if (n == 0) { return 0; }
  hanoi(n - 1, from, via, to);
  moveCount = moveCount + 1;
  hanoi(n - 1, via, to, from);
  return 0;
}

func runTowers() {
  moveCount = 0;
  hanoi(12, 1, 3, 2);
  return moveCount;
}

var queenRow[8];
var queenSolutions;

func queenSafe(col, row) {
  for (var c = 0; c < col; c = c + 1) {
    var r = queenRow[c];
    if (r == row) { return 0; }
    if (r - c == row - col) { return 0; }
    if (r + c == row + col) { return 0; }
  }
  return 1;
}

func placeQueen(col) {
  if (col == 8) {
    queenSolutions = queenSolutions + 1;
    return 0;
  }
  for (var row = 0; row < 8; row = row + 1) {
    if (queenSafe(col, row)) {
      queenRow[col] = row;
      placeQueen(col + 1);
    }
  }
  return 0;
}

func runQueens() {
  queenSolutions = 0;
  placeQueen(0);
  return queenSolutions;
}

var matA[256];
var matB[256];
var matC[256];

func matInit(m, seed) {
  for (var i = 0; i < 256; i = i + 1) {
    m[i] = (seed * i + 17) % 11 - 5;
  }
  return 0;
}

func matDot(row, col) {
  var s = 0;
  for (var k = 0; k < 16; k = k + 1) {
    s = s + matA[row * 16 + k] * matB[k * 16 + col];
  }
  return s;
}

func runIntmm() {
  matInit(matA, 3);
  matInit(matB, 7);
  for (var i = 0; i < 16; i = i + 1) {
    for (var j = 0; j < 16; j = j + 1) {
      matC[i * 16 + j] = matDot(i, j);
    }
  }
  var trace = 0;
  for (var i = 0; i < 16; i = i + 1) { trace = trace + matC[i * 16 + i]; }
  return trace;
}

var sortData[200];

func sortInit(seed) {
  for (var i = 0; i < 200; i = i + 1) {
    seed = (seed * 1309 + 13849) % 65536;
    sortData[i] = seed % 1000;
  }
  return 0;
}

func runBubble() {
  sortInit(11);
  for (var i = 0; i < 199; i = i + 1) {
    for (var j = 0; j < 199 - i; j = j + 1) {
      if (sortData[j] > sortData[j + 1]) {
        var t = sortData[j];
        sortData[j] = sortData[j + 1];
        sortData[j + 1] = t;
      }
    }
  }
  return sortData[0] + sortData[100] * 7 + sortData[199] * 13;
}

func quickSort(lo, hi) {
  if (lo >= hi) { return 0; }
  var pivot = sortData[(lo + hi) / 2];
  var i = lo;
  var j = hi;
  while (i <= j) {
    while (sortData[i] < pivot) { i = i + 1; }
    while (sortData[j] > pivot) { j = j - 1; }
    if (i <= j) {
      var t = sortData[i];
      sortData[i] = sortData[j];
      sortData[j] = t;
      i = i + 1;
      j = j - 1;
    }
  }
  quickSort(lo, j);
  quickSort(i, hi);
  return 0;
}

func runQuick() {
  sortInit(23);
  quickSort(0, 199);
  return sortData[0] + sortData[100] * 7 + sortData[199] * 13;
}

var treeKey[512];
var treeLeft[512];
var treeRight[512];
var treeNodes;
var traverseSum;

func treeInsert(node, key) {
  if (node < 0) {
    treeKey[treeNodes] = key;
    treeLeft[treeNodes] = -1;
    treeRight[treeNodes] = -1;
    treeNodes = treeNodes + 1;
    return treeNodes - 1;
  }
  if (key < treeKey[node]) {
    treeLeft[node] = treeInsert(treeLeft[node], key);
  } else {
    treeRight[node] = treeInsert(treeRight[node], key);
  }
  return node;
}

func traverse(node, rank) {
  if (node < 0) { return rank; }
  rank = traverse(treeLeft[node], rank);
  traverseSum = traverseSum + treeKey[node] * rank;
  rank = rank + 1;
  return traverse(treeRight[node], rank);
}

func runTreesort() {
  sortInit(37);
  treeNodes = 0;
  var root = -1;
  for (var i = 0; i < 200; i = i + 1) {
    root = treeInsert(root, sortData[i]);
  }
  traverseSum = 0;
  traverse(root, 1);
  return traverseSum % 1000000007;
}

func main() {
  print(runPerm());
  print(runTowers());
  print(runQueens());
  print(runIntmm());
  print(runBubble());
  print(runQuick());
  print(runTreesort());
  return 0;
}
)MC";

/// pf: a pretty-printer in the style of Weber's Pascal formatter. Entirely
/// iterative with an explicit nesting stack, so the call graph is almost
/// completely closed -- the regime where the paper's pf saw a 50% cut in
/// scalar memory traffic.
const char *PfSource = R"MC(
// pf -- pretty-print a synthetic token stream, tracking indentation.
// Token codes: 1=begin 2=end 3=if 4=then 5=else 6=ident 7=assign
// 8=semi 9=while 10=do 11=number 12=lparen 13=rparen 14=plus
var tokens[3000];
var numTokens;
var outHash;
var outCol;
var outLine;
var indent;
var nestStack[64];
var nestTop;

func emitChar(ch) {
  outHash = (outHash * 31 + ch) % 1000000007;
  outCol = outCol + 1;
  return 0;
}

func emitNewline() {
  outHash = (outHash * 31 + 10) % 1000000007;
  outLine = outLine + 1;
  outCol = 0;
  return 0;
}

func emitIndent() {
  for (var i = 0; i < indent; i = i + 1) { emitChar(32); }
  return 0;
}

func emitWord(code, len) {
  for (var i = 0; i < len; i = i + 1) { emitChar(97 + (code + i) % 26); }
  emitChar(32);
  return 0;
}

func tokenWidth(tok) {
  if (tok == 1) { return 5; }
  if (tok == 2) { return 3; }
  if (tok == 3) { return 2; }
  if (tok == 4) { return 4; }
  if (tok == 5) { return 4; }
  if (tok == 9) { return 5; }
  if (tok == 10) { return 2; }
  return 1;
}

func pushNest(kind) {
  nestStack[nestTop] = kind;
  nestTop = nestTop + 1;
  indent = indent + 2;
  return 0;
}

func popNest() {
  if (nestTop > 0) {
    nestTop = nestTop - 1;
    indent = indent - 2;
  }
  return nestStack[nestTop];
}

func breakIfLong() {
  if (outCol > 60) {
    emitNewline();
    emitIndent();
  }
  return 0;
}

func formatToken(tok, value) {
  breakIfLong();
  if (tok == 1) {           // begin
    emitNewline(); emitIndent();
    emitWord(tok, tokenWidth(tok));
    pushNest(1);
    emitNewline(); emitIndent();
    return 0;
  }
  if (tok == 2) {           // end
    popNest();
    emitNewline(); emitIndent();
    emitWord(tok, tokenWidth(tok));
    return 0;
  }
  if (tok == 3 || tok == 9) { // if / while
    emitNewline(); emitIndent();
    emitWord(tok, tokenWidth(tok));
    return 0;
  }
  if (tok == 8) {           // semicolon
    emitChar(59);
    emitNewline(); emitIndent();
    return 0;
  }
  if (tok == 6) {           // identifier
    emitWord(value, 3 + value % 5);
    return 0;
  }
  if (tok == 11) {          // number literal
    var v = value;
    if (v == 0) { emitChar(48); }
    while (v > 0) {
      emitChar(48 + v % 10);
      v = v / 10;
    }
    emitChar(32);
    return 0;
  }
  emitWord(tok, tokenWidth(tok));
  return 0;
}

func genTokens() {
  // A deterministic "program": nested begin/end with statements.
  var n = 0;
  var seed = 99;
  var depth = 0;
  while (n < 2900) {
    seed = (seed * 5167 + 111) % 65536;
    var choice = seed % 10;
    if (choice < 2 && depth < 20) {
      tokens[n] = 1; n = n + 1;       // begin
      depth = depth + 1;
    } else if (choice < 3 && depth > 0) {
      tokens[n] = 2; n = n + 1;       // end
      depth = depth - 1;
    } else if (choice < 5) {
      tokens[n] = 3; n = n + 1;       // if ident then stmt
      tokens[n] = 6; n = n + 1;
      tokens[n] = 4; n = n + 1;
    } else if (choice < 6) {
      tokens[n] = 9; n = n + 1;       // while ident do
      tokens[n] = 6; n = n + 1;
      tokens[n] = 10; n = n + 1;
    } else {
      tokens[n] = 6; n = n + 1;       // ident := number ;
      tokens[n] = 7; n = n + 1;
      tokens[n] = 11; n = n + 1;
      tokens[n] = 8; n = n + 1;
    }
  }
  while (depth > 0) {
    tokens[n] = 2; n = n + 1;
    depth = depth - 1;
  }
  numTokens = n;
  return 0;
}

var longestLine;
var statementCount;
var commentCount;

func emitComment(seed) {
  // { ... } comments re-flowed to the current indentation.
  emitNewline();
  emitIndent();
  emitChar(123);
  var words = 2 + seed % 4;
  for (var w = 0; w < words; w = w + 1) {
    emitWord(seed + w, 3 + (seed + w) % 4);
    breakIfLong();
  }
  emitChar(125);
  emitNewline();
  emitIndent();
  commentCount = commentCount + 1;
  return 0;
}

func trackLineStats() {
  if (outCol > longestLine) { longestLine = outCol; }
  return 0;
}

var tokenKindCount[16];

func tallyToken(tok) {
  if (tok >= 0 && tok < 16) {
    tokenKindCount[tok] = tokenKindCount[tok] + 1;
  }
  return 0;
}

func tokenStatsChecksum() {
  var h = 0;
  for (var k = 0; k < 16; k = k + 1) {
    h = (h * 101 + tokenKindCount[k]) % 1000000007;
  }
  return h;
}

func averageIndentTimes100() {
  // Re-walk the token stream, tracking indentation as formatToken does.
  var depth = 0;
  var total = 0;
  var samples = 0;
  for (var i = 0; i < numTokens; i = i + 1) {
    if (tokens[i] == 1) { depth = depth + 1; }
    if (tokens[i] == 2 && depth > 0) { depth = depth - 1; }
    total = total + depth;
    samples = samples + 1;
  }
  if (samples == 0) { return 0; }
  return total * 100 / samples;
}

func countStatement(tok) {
  if (tok == 8 || tok == 2) { statementCount = statementCount + 1; }
  return 0;
}

func main() {
  genTokens();
  outHash = 0; outCol = 0; outLine = 0; indent = 0; nestTop = 0;
  longestLine = 0; statementCount = 0; commentCount = 0;
  for (var k = 0; k < 16; k = k + 1) { tokenKindCount[k] = 0; }
  var value = 1;
  for (var i = 0; i < numTokens; i = i + 1) {
    formatToken(tokens[i], value);
    trackLineStats();
    countStatement(tokens[i]);
    tallyToken(tokens[i]);
    if (i % 97 == 0) { emitComment(value); }
    value = (value * 7 + 3) % 997;
  }
  print(outHash);
  print(outLine);
  print(longestLine);
  print(statementCount);
  print(commentCount);
  print(tokenStatsChecksum());
  print(averageIndentTimes100());
  print(nestTop);
  return 0;
}
)MC";

/// awk: a pattern-scanning record processor. Patterns and actions are
/// dispatched through function pointers, so all handlers are address-taken
/// and hence open -- matching the paper's awk, which benefited least among
/// the mid-sized programs.
const char *AwkSource = R"MC(
// awk -- scan records, match patterns, run actions via function pointers.
var records[2400];  // 300 records x 8 fields
var numRecords;
var sumAccum;
var countAccum;
var maxAccum;
var concatHash;

func field(rec, f) { return records[rec * 8 + f]; }

func genRecords() {
  numRecords = 300;
  var seed = 7;
  for (var r = 0; r < numRecords; r = r + 1) {
    for (var f = 0; f < 8; f = f + 1) {
      seed = (seed * 2311 + 531) % 65536;
      records[r * 8 + f] = seed % 500;
    }
  }
  return 0;
}

// Patterns: return nonzero when the record matches.
func patBigFirst(rec) { return field(rec, 0) > 250; }
func patEvenSum(rec) {
  var s = 0;
  for (var f = 0; f < 8; f = f + 1) { s = s + field(rec, f); }
  return s % 2 == 0;
}
func patAscending(rec) {
  // First three fields non-decreasing.
  for (var f = 0; f + 1 < 3; f = f + 1) {
    if (field(rec, f) > field(rec, f + 1)) { return 0; }
  }
  return 1;
}
func patRange(rec) {
  var v = field(rec, 3);
  return v >= 100 && v < 200;
}
func isPrime(v) {
  if (v < 2) { return 0; }
  for (var d = 2; d * d <= v; d = d + 1) {
    if (v % d == 0) { return 0; }
  }
  return 1;
}
func patPrimeKey(rec) { return isPrime(field(rec, 0)); }
func patAllSmall(rec) {
  for (var f = 0; f < 8; f = f + 1) {
    if (field(rec, f) >= 400) { return 0; }
  }
  return 1;
}

// Actions.
func actSum(rec) {
  sumAccum = sumAccum + field(rec, 1);
  return 0;
}
func actCount(rec) {
  countAccum = countAccum + 1;
  return 0;
}
func actMax(rec) {
  for (var f = 0; f < 8; f = f + 1) {
    if (field(rec, f) > maxAccum) { maxAccum = field(rec, f); }
  }
  return 0;
}
func actConcat(rec) {
  for (var f = 0; f < 8; f = f + 1) {
    concatHash = (concatHash * 33 + field(rec, f)) % 1000000007;
  }
  return 0;
}

var histogram[10];

func actHistogram(rec) {
  var bucket = field(rec, 2) / 50;
  if (bucket > 9) { bucket = 9; }
  histogram[bucket] = histogram[bucket] + 1;
  return 0;
}

var fieldTotals[8];

func actFieldTotals(rec) {
  for (var f = 0; f < 8; f = f + 1) {
    fieldTotals[f] = fieldTotals[f] + field(rec, f);
  }
  return 0;
}

var patterns[6];
var actions[6];

func setupRules() {
  patterns[0] = &patBigFirst;  actions[0] = &actSum;
  patterns[1] = &patEvenSum;   actions[1] = &actCount;
  patterns[2] = &patAscending; actions[2] = &actMax;
  patterns[3] = &patRange;     actions[3] = &actConcat;
  patterns[4] = &patPrimeKey;  actions[4] = &actHistogram;
  patterns[5] = &patAllSmall;  actions[5] = &actFieldTotals;
  return 0;
}

func runRules(rec) {
  var fired = 0;
  for (var rule = 0; rule < 6; rule = rule + 1) {
    var pat = patterns[rule];
    if (pat(rec)) {
      var act = actions[rule];
      act(rec);
      tallyRule(rule);
      fired = fired + 1;
    }
  }
  insertTopKey(field(rec, 0));
  return fired;
}

func histogramChecksum() {
  var h = 0;
  for (var b = 0; b < 10; b = b + 1) {
    h = (h * 100 + histogram[b] % 100) % 1000000007;
  }
  return h;
}

var topKeys[8];

func insertTopKey(v) {
  // Keep the eight largest first-field values, insertion-sort style.
  var pos = 8 - 1;
  if (v <= topKeys[pos]) { return 0; }
  while (pos > 0 && topKeys[pos - 1] < v) {
    topKeys[pos] = topKeys[pos - 1];
    pos = pos - 1;
  }
  topKeys[pos] = v;
  return 0;
}

func topKeyChecksum() {
  var h = 0;
  for (var k = 0; k < 8; k = k + 1) {
    h = (h * 1009 + topKeys[k]) % 1000000007;
  }
  return h;
}

var ruleFires[6];

func tallyRule(rule) {
  ruleFires[rule] = ruleFires[rule] + 1;
  return 0;
}

func ruleFireChecksum() {
  var h = 0;
  for (var rule = 0; rule < 6; rule = rule + 1) {
    h = h * 1000 + ruleFires[rule] % 1000;
  }
  return h;
}

func medianOfThree(a, b, c) {
  if (a > b) { var t = a; a = b; b = t; }
  if (b > c) { var t2 = b; b = c; c = t2; }
  if (a > b) { var t3 = a; a = b; b = t3; }
  return b;
}

func fieldSpread(rec) {
  var lo = field(rec, 0);
  var hi = lo;
  for (var f = 1; f < 8; f = f + 1) {
    var v = field(rec, f);
    if (v < lo) { lo = v; }
    if (v > hi) { hi = v; }
  }
  return hi - lo;
}

func fieldTotalChecksum() {
  var h = 0;
  for (var f = 0; f < 8; f = f + 1) {
    h = (h * 131 + fieldTotals[f]) % 1000000007;
  }
  return h;
}

func beginBlock() {
  // awk's BEGIN rule: seed the accumulators and emit a header marker.
  sumAccum = 0;
  countAccum = 0;
  maxAccum = -1;
  concatHash = 0;
  return 0;
}

func endBlock() {
  // awk's END rule: derived statistics over the whole input.
  var mean = 0;
  if (countAccum > 0) { mean = sumAccum / countAccum; }
  print(mean);
  return 0;
}

func report() {
  print(sumAccum);
  print(countAccum);
  print(maxAccum);
  print(concatHash);
  print(histogramChecksum());
  print(fieldTotalChecksum());
  print(topKeyChecksum());
  print(ruleFireChecksum());
  return 0;
}

func main() {
  genRecords();
  setupRules();
  beginBlock();
  for (var b = 0; b < 10; b = b + 1) { histogram[b] = 0; }
  for (var f = 0; f < 8; f = f + 1) { fieldTotals[f] = 0; }
  for (var k = 0; k < 8; k = k + 1) { topKeys[k] = -1; }
  for (var rule = 0; rule < 6; rule = rule + 1) { ruleFires[rule] = 0; }
  var totalFired = 0;
  var spreadSum = 0;
  for (var r = 0; r < numRecords; r = r + 1) {
    totalFired = totalFired + runRules(r);
    spreadSum = spreadSum +
                medianOfThree(fieldSpread(r), field(r, 0), field(r, 7));
  }
  report();
  endBlock();
  print(totalFired);
  print(spreadSum);
  return 0;
}
)MC";

} // namespace ipra
