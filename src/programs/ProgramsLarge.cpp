//===- programs/ProgramsLarge.cpp - tex, ccom, as1, upas, uopt ------------===//
//
// The large end of the suite: a paragraph line-breaker (tex), a small
// expression compiler whose hot upper region is a recursive parser (ccom
// -- the paper's one slowdown case), a two-pass assembler (as1), a Pascal
// scanner/parser first pass (upas) and a data-flow optimizer (uopt).
//
//===----------------------------------------------------------------------===//

#include "programs/Programs.h"

namespace ipra {

/// tex: paragraph building and line breaking with badness and penalties,
/// the hot inner loops of virtex.
const char *TexSource = R"MC(
// tex -- break synthetic paragraphs into lines, minimizing badness.
var wordWidth[500];
var wordCount;
var lineWidth;
var totalBadness;
var totalLines;
var totalHyphens;

func genParagraph(seed, n) {
  wordCount = n;
  for (var i = 0; i < n; i = i + 1) {
    seed = (seed * 7741 + 913) % 65536;
    wordWidth[i] = 2 + seed % 9;
  }
  return seed;
}

func spaceNeeded(pos) {
  if (pos == 0) { return 0; }
  return 1;
}

func stretchBadness(slack) {
  // badness ~ cube of relative slack, scaled.
  var b = slack * slack * slack;
  if (b > 10000) { b = 10000; }
  return b;
}

func hyphenate(width, room) {
  // Split a word that does not fit: return the part that fits (>=2),
  // or 0 when the word cannot be split.
  if (room < 3) { return 0; }
  if (width < 4) { return 0; }
  var head = room - 1;        // leave space for the hyphen
  if (head > width - 2) { head = width - 2; }
  if (head < 2) { return 0; }
  return head;
}

func linePenalty(used, isLast) {
  if (isLast) { return 0; }
  var slack = lineWidth - used;
  return stretchBadness(slack);
}

func breakParagraph() {
  var i = 0;
  var used = 0;
  var lines = 0;
  var badness = 0;
  var hyphens = 0;
  while (i < wordCount) {
    var need = spaceNeeded(used) + wordWidth[i];
    if (used + need <= lineWidth) {
      used = used + need;
      i = i + 1;
    } else {
      var head = hyphenate(wordWidth[i], lineWidth - used - spaceNeeded(used));
      if (head > 0) {
        used = used + spaceNeeded(used) + head + 1;
        wordWidth[i] = wordWidth[i] - head;
        hyphens = hyphens + 1;
      }
      badness = badness + linePenalty(used, 0);
      lines = lines + 1;
      used = 0;
    }
  }
  if (used > 0) {
    badness = badness + linePenalty(used, 1);
    lines = lines + 1;
  }
  totalBadness = totalBadness + badness;
  totalLines = totalLines + lines;
  totalHyphens = totalHyphens + hyphens;
  return badness;
}

func glueChecksum() {
  var g = 0;
  for (var i = 0; i < wordCount; i = i + 1) {
    g = (g * 17 + wordWidth[i]) % 1000003;
  }
  return g;
}

// Second pass: break the stream of paragraph line counts into pages,
// charging widow/orphan penalties, exactly as TeX's page builder does on
// a much grander scale.
var paraLines[130];
var paraCount;
var pageHeight;
var totalPages;
var totalPagePenalty;

func widowPenalty(linesOnPage, paraLen) {
  // A single leading or trailing line of a paragraph on a page is bad.
  if (linesOnPage == 1 && paraLen > 1) { return 150; }
  return 0;
}

func orphanPenalty(remaining) {
  if (remaining == 1) { return 150; }
  return 0;
}

func placeParagraph(room, lines) {
  // Returns how many of the paragraph's lines fit in the remaining room,
  // nudged to avoid widows and orphans.
  if (lines <= room) { return lines; }
  var take = room;
  if (take > 0 && orphanPenalty(lines - take) > 0) { take = take - 1; }
  if (take == 1 && widowPenalty(take, lines) > 0) { take = 0; }
  return take;
}

func buildPages() {
  totalPages = 0;
  totalPagePenalty = 0;
  var room = pageHeight;
  for (var p = 0; p < paraCount; p = p + 1) {
    var remaining = paraLines[p];
    while (remaining > 0) {
      var take = placeParagraph(room, remaining);
      if (take == 0) {
        totalPages = totalPages + 1;
        totalPagePenalty = totalPagePenalty + room; // wasted space
        room = pageHeight;
      } else {
        totalPagePenalty = totalPagePenalty +
                           widowPenalty(take, paraLines[p]) +
                           orphanPenalty(remaining - take);
        remaining = remaining - take;
        room = room - take;
        if (room == 0) {
          totalPages = totalPages + 1;
          room = pageHeight;
        }
      }
    }
  }
  if (room < pageHeight) { totalPages = totalPages + 1; }
  return totalPages;
}

// Ragged-right mode: no stretching badness, only a per-line end penalty
// proportional to leftover space; TeX's \raggedright analogue. Used to
// compare justified vs. ragged layout of the same paragraphs.
var raggedPenaltyTotal;
var raggedLines;

func raggedLinePenalty(used) {
  var slack = lineWidth - used;
  return slack * 2;
}

// Word-width frequency table over the whole document; feeds the
// interword-glue choice the way TeX's font dimension tables do.
var widthFreq[12];

func tallyWidths() {
  for (var i = 0; i < wordCount; i = i + 1) {
    var w = wordWidth[i];
    if (w > 11) { w = 11; }
    widthFreq[w] = widthFreq[w] + 1;
  }
  return 0;
}

func dominantWidth() {
  var best = 0;
  for (var w = 1; w < 12; w = w + 1) {
    if (widthFreq[w] > widthFreq[best]) { best = w; }
  }
  return best;
}

func widthTableChecksum() {
  var h = 0;
  for (var w = 0; w < 12; w = w + 1) {
    h = (h * 131 + widthFreq[w]) % 1000000007;
  }
  return h;
}

func breakRagged() {
  var i = 0;
  var used = 0;
  while (i < wordCount) {
    var need = spaceNeeded(used) + wordWidth[i];
    if (used + need <= lineWidth) {
      used = used + need;
      i = i + 1;
    } else {
      raggedPenaltyTotal = raggedPenaltyTotal + raggedLinePenalty(used);
      raggedLines = raggedLines + 1;
      used = 0;
    }
  }
  if (used > 0) { raggedLines = raggedLines + 1; }
  return 0;
}

func compareModes(justifiedBadness) {
  // Positive when justified text paid more badness than ragged layout
  // paid in end-of-line penalties for this paragraph.
  if (justifiedBadness > raggedPenaltyTotal) { return 1; }
  if (justifiedBadness < raggedPenaltyTotal) { return -1; }
  return 0;
}

func main() {
  lineWidth = 34;
  totalBadness = 0;
  totalLines = 0;
  totalHyphens = 0;
  paraCount = 0;
  raggedPenaltyTotal = 0;
  raggedLines = 0;
  var seed = 271828;
  var glue = 0;
  var modeVotes = 0;
  for (var w = 0; w < 12; w = w + 1) { widthFreq[w] = 0; }
  for (var para = 0; para < 120; para = para + 1) {
    seed = genParagraph(seed, 60 + para % 200);
    tallyWidths();
    var before = totalLines;
    var badness = breakParagraph();
    paraLines[paraCount] = totalLines - before;
    paraCount = paraCount + 1;
    breakRagged();
    modeVotes = modeVotes + compareModes(badness);
    glue = (glue + glueChecksum()) % 1000003;
  }
  pageHeight = 45;
  buildPages();
  print(totalLines);
  print(totalBadness % 1000000007);
  print(totalHyphens);
  print(glue);
  print(totalPages);
  print(totalPagePenalty);
  print(raggedLines);
  print(modeVotes);
  print(dominantWidth());
  print(widthTableChecksum());
  return 0;
}
)MC";

/// ccom: compiles a stream of synthetic expression/statement programs with
/// a recursive-descent parser into stack-machine code, then executes that
/// code. The recursive parser keeps the frequently-executed upper region
/// open -- the structure behind the paper's ccom slowdown.
const char *CcomSource = R"MC(
// ccom -- compile synthetic expressions to stack code and run them.
// Token codes: 0=eof 1=number 2=ident 3=plus 4=minus 5=star 6=slash
// 7=lparen 8=rparen 9=assign 10=semi
var toks[4000];
var tokVals[4000];
var numToks;
var pos;
var code[8000];     // opcode stream: 1=push 2=load 3=store 4..7=ops
var codeVals[8000];
var codeLen;
var vars[26];
var parseErrors;

func peekTok() { return toks[pos]; }
func nextTok() {
  var t = toks[pos];
  pos = pos + 1;
  return t;
}
func tokValue() { return tokVals[pos - 1]; }

func emitOp(op, val) {
  code[codeLen] = op;
  codeVals[codeLen] = val;
  codeLen = codeLen + 1;
  return 0;
}

func parsePrimary() {
  var t = nextTok();
  if (t == 1) {              // number
    emitOp(1, tokValue());
    return 0;
  }
  if (t == 2) {              // ident
    emitOp(2, tokValue());
    return 0;
  }
  if (t == 7) {              // ( expr )
    parseExpr();
    if (nextTok() != 8) { parseErrors = parseErrors + 1; }
    return 0;
  }
  parseErrors = parseErrors + 1;
  return 0;
}

func parseTerm() {
  parsePrimary();
  while (peekTok() == 5 || peekTok() == 6) {
    var op = nextTok();
    parsePrimary();
    if (op == 5) { emitOp(6, 0); } else { emitOp(7, 0); }
  }
  return 0;
}

func parseExpr() {
  parseTerm();
  while (peekTok() == 3 || peekTok() == 4) {
    var op = nextTok();
    parseTerm();
    if (op == 3) { emitOp(4, 0); } else { emitOp(5, 0); }
  }
  return 0;
}

func parseStmt() {
  // ident = expr ;
  if (peekTok() != 2) { parseErrors = parseErrors + 1; nextTok(); return 0; }
  nextTok();
  var target = tokValue();
  if (nextTok() != 9) { parseErrors = parseErrors + 1; }
  parseExpr();
  emitOp(3, target);
  if (peekTok() == 10) { nextTok(); }
  return 0;
}

func parseProgram() {
  codeLen = 0;
  pos = 0;
  while (peekTok() != 0) { parseStmt(); }
  return codeLen;
}

// Peephole optimizer over the emitted stack code: folds push/push/op
// triples into a single push, the way ccom's back end folds constants.
var folded[8000];
var foldedVals[8000];
var foldedLen;
var foldCount;

func applyOp(op, a, b) {
  if (op == 4) { return a + b; }
  if (op == 5) { return a - b; }
  if (op == 6) { return a * b; }
  if (b == 0) { b = 1; }
  return a / b;
}

func emitFolded(op, val) {
  folded[foldedLen] = op;
  foldedVals[foldedLen] = val;
  foldedLen = foldedLen + 1;
  return 0;
}

func tryFoldAt() {
  // Look at the last two emitted folded ops: if both are pushes and the
  // next source op is arithmetic, fold.
  return foldedLen >= 2 && folded[foldedLen - 1] == 1 &&
         folded[foldedLen - 2] == 1;
}

func peephole() {
  foldedLen = 0;
  foldCount = 0;
  for (var pc = 0; pc < codeLen; pc = pc + 1) {
    var op = code[pc];
    if (op >= 4 && tryFoldAt()) {
      var b = foldedVals[foldedLen - 1];
      var a = foldedVals[foldedLen - 2];
      foldedLen = foldedLen - 2;
      emitFolded(1, applyOp(op, a, b));
      foldCount = foldCount + 1;
    } else {
      emitFolded(op, codeVals[pc]);
    }
  }
  // Copy back.
  for (var i = 0; i < foldedLen; i = i + 1) {
    code[i] = folded[i];
    codeVals[i] = foldedVals[i];
  }
  codeLen = foldedLen;
  return foldCount;
}

func listingChecksum() {
  var h = 0;
  for (var i = 0; i < codeLen; i = i + 1) {
    h = (h * 37 + code[i] * 101 + codeVals[i] % 1000) % 1000000007;
  }
  return h;
}

func codeDensityPercent() {
  // Emitted ops per hundred source tokens: the compiler's own metric for
  // how much the front end shrank the program.
  return codeLen * 100 / (numToks + 1);
}

var stack[256];
var maxStackDepth;

func noteDepth(sp) {
  if (sp > maxStackDepth) { maxStackDepth = sp; }
  return 0;
}

func execute() {
  var sp = 0;
  for (var pc = 0; pc < codeLen; pc = pc + 1) {
    noteDepth(sp);
    var op = code[pc];
    if (op == 1) { stack[sp] = codeVals[pc]; sp = sp + 1; }
    else if (op == 2) { stack[sp] = vars[codeVals[pc]]; sp = sp + 1; }
    else if (op == 3) { sp = sp - 1; vars[codeVals[pc]] = stack[sp]; }
    else {
      sp = sp - 1;
      var b = stack[sp];
      var a = stack[sp - 1];
      if (op == 4) { stack[sp - 1] = a + b; }
      else if (op == 5) { stack[sp - 1] = a - b; }
      else if (op == 6) { stack[sp - 1] = a * b; }
      else {
        if (b == 0) { b = 1; }
        stack[sp - 1] = a / b;
      }
    }
  }
  return 0;
}

func genSource(seed) {
  // Emit "ident = expr ;" statements with nested parentheses.
  var n = 0;
  var stmts = 0;
  while (stmts < 60 && n < 3800) {
    toks[n] = 2; tokVals[n] = stmts % 26; n = n + 1;
    toks[n] = 9; n = n + 1;
    var depth = 0;
    var terms = 1 + seed % 5;
    seed = (seed * 3121 + 71) % 65536;
    for (var t = 0; t < terms; t = t + 1) {
      if (seed % 4 == 0 && depth < 6) {
        toks[n] = 7; n = n + 1;
        depth = depth + 1;
      }
      seed = (seed * 3121 + 71) % 65536;
      if (seed % 3 == 0) {
        toks[n] = 1; tokVals[n] = seed % 100; n = n + 1;
      } else {
        toks[n] = 2; tokVals[n] = seed % 26; n = n + 1;
      }
      seed = (seed * 3121 + 71) % 65536;
      while (seed % 5 == 0 && depth > 0) {
        toks[n] = 8; n = n + 1;
        depth = depth - 1;
        seed = (seed * 3121 + 71) % 65536;
      }
      if (t + 1 < terms) {
        toks[n] = 3 + seed % 4; n = n + 1;  // + - * /
        seed = (seed * 3121 + 71) % 65536;
      }
    }
    while (depth > 0) {
      toks[n] = 8; n = n + 1;
      depth = depth - 1;
    }
    toks[n] = 10; n = n + 1;
    stmts = stmts + 1;
  }
  toks[n] = 0;
  numToks = n + 1;
  return seed;
}

func main() {
  parseErrors = 0;
  maxStackDepth = 0;
  var seed = 31415;
  var checksum = 0;
  for (var v = 0; v < 26; v = v + 1) { vars[v] = v; }
  var totalFolds = 0;
  var listing = 0;
  for (var unit = 0; unit < 40; unit = unit + 1) {
    seed = genSource(seed);
    parseProgram();
    totalFolds = totalFolds + peephole();
    listing = (listing + listingChecksum()) % 1000000007;
    execute();
    for (var v = 0; v < 26; v = v + 1) {
      checksum = (checksum * 31 + vars[v] % 1000) % 1000000007;
    }
  }
  print(checksum);
  print(parseErrors);
  print(codeLen);
  print(totalFolds);
  print(listing);
  print(maxStackDepth);
  print(codeDensityPercent());
  return 0;
}
)MC";

/// as1: a two-pass assembler/reorganizer: pass one collects labels into a
/// hash table, pass two encodes instructions by format.
const char *As1Source = R"MC(
// as1 -- two-pass assembler for a synthetic instruction stream.
// Line formats: 0=label 1=reg3 2=reg2imm 3=branch 4=jump 5=nop
var lineKind[1500];
var lineA[1500];
var lineB[1500];
var lineC[1500];
var numLines;
var symKeys[512];
var symVals[512];
var emitted[1500];
var emitCount;
var relocCount;

func hashKey(key) {
  var h = (key * 2654435761) % 512;
  if (h < 0) { h = h + 512; }
  return h;
}

func symInsert(key, value) {
  var h = hashKey(key);
  while (symKeys[h] != 0 && symKeys[h] != key) {
    h = (h + 1) % 512;
  }
  symKeys[h] = key;
  symVals[h] = value;
  return h;
}

func symLookup(key) {
  var h = hashKey(key);
  while (symKeys[h] != 0) {
    if (symKeys[h] == key) { return symVals[h]; }
    h = (h + 1) % 512;
  }
  return -1;
}

func genLines(seed) {
  numLines = 1400;
  var label = 1;
  for (var i = 0; i < numLines; i = i + 1) {
    seed = (seed * 4093 + 577) % 65536;
    var k = seed % 12;
    if (k == 0) {
      lineKind[i] = 0;          // label definition
      lineA[i] = label;
      label = label + 1;
    } else if (k < 5) {
      lineKind[i] = 1;          // op rd, rs, rt
      lineA[i] = seed % 32;
      lineB[i] = (seed / 32) % 32;
      lineC[i] = (seed / 1024) % 32;
    } else if (k < 8) {
      lineKind[i] = 2;          // op rd, rs, imm
      lineA[i] = seed % 32;
      lineB[i] = (seed / 32) % 32;
      lineC[i] = seed % 4096 - 2048;
    } else if (k < 10 && label > 1) {
      lineKind[i] = 3;          // branch to a previously seen label
      lineA[i] = seed % 32;
      lineB[i] = 1 + seed % (label - 1);
    } else if (k == 10 && label > 1) {
      lineKind[i] = 4;          // jump
      lineA[i] = 1 + seed % (label - 1);
    } else {
      lineKind[i] = 5;          // nop
    }
  }
  return 0;
}

func passOne() {
  var addr = 0;
  for (var i = 0; i < numLines; i = i + 1) {
    if (lineKind[i] == 0) {
      symInsert(lineA[i], addr);
    } else {
      addr = addr + 1;
    }
  }
  return addr;
}

func encodeReg3(rd, rs, rt) {
  return 1000000 + rd * 1024 + rs * 32 + rt;
}

func encodeReg2Imm(rd, rs, imm) {
  return 2000000 + rd * 131072 + rs * 4096 + (imm + 2048);
}

func encodeBranch(rs, target, here) {
  var delta = target - here;
  relocCount = relocCount + 1;
  return 3000000 + rs * 65536 + (delta + 32768);
}

func encodeJump(target) {
  relocCount = relocCount + 1;
  return 4000000 + target;
}

func passTwo() {
  emitCount = 0;
  relocCount = 0;
  for (var i = 0; i < numLines; i = i + 1) {
    var k = lineKind[i];
    if (k == 0) { continue; }
    var word = 0;
    if (k == 1) { word = encodeReg3(lineA[i], lineB[i], lineC[i]); }
    else if (k == 2) { word = encodeReg2Imm(lineA[i], lineB[i], lineC[i]); }
    else if (k == 3) {
      word = encodeBranch(lineA[i], symLookup(lineB[i]), emitCount);
    }
    else if (k == 4) { word = encodeJump(symLookup(lineA[i])); }
    else { word = 5000000; }
    emitted[emitCount] = word;
    emitCount = emitCount + 1;
  }
  return emitCount;
}

func checksumWords() {
  var h = 0;
  for (var i = 0; i < emitCount; i = i + 1) {
    h = (h * 131 + emitted[i]) % 1000000007;
  }
  return h;
}

// Disassembler: decode the emitted words back into fields and verify the
// round trip, producing a listing hash (the reorganizer half of as1).
var listingHash;
var decodeErrors;
var farBranches;

func decodeFormat(word) { return word / 1000000; }

func formatName(fmt) {
  // A stable small code per format for the listing stream.
  if (fmt == 1) { return 82; }   // 'R'
  if (fmt == 2) { return 73; }   // 'I'
  if (fmt == 3) { return 66; }   // 'B'
  if (fmt == 4) { return 74; }   // 'J'
  return 78;                     // 'N'
}

func listField(v) {
  listingHash = (listingHash * 33 + v) % 1000000007;
  return 0;
}

func disasmReg3(word) {
  var body = word % 1000000;
  listField(body / 1024);
  listField((body / 32) % 32);
  listField(body % 32);
  return 0;
}

func disasmReg2Imm(word) {
  var body = word % 1000000;
  var rd = body / 131072;
  var rs = (body / 4096) % 32;
  var imm = body % 4096 - 2048;
  listField(rd);
  listField(rs);
  listField(imm + 5000);
  if (rd >= 32 || rs >= 32) { decodeErrors = decodeErrors + 1; }
  return 0;
}

func disasmBranch(word) {
  var body = word % 1000000;
  var rs = body / 65536;
  var delta = body % 65536 - 32768;
  listField(rs);
  listField(delta + 40000);
  // Branch relaxation check: |delta| beyond the short range would need a
  // jump trampoline.
  if (delta > 512 || delta < -512) { farBranches = farBranches + 1; }
  return 0;
}

func disasmJump(word) {
  listField(word % 1000000);
  return 0;
}

func disassemble() {
  listingHash = 0;
  decodeErrors = 0;
  farBranches = 0;
  for (var i = 0; i < emitCount; i = i + 1) {
    var fmt = decodeFormat(emitted[i]);
    listField(formatName(fmt));
    if (fmt == 1) { disasmReg3(emitted[i]); }
    else if (fmt == 2) { disasmReg2Imm(emitted[i]); }
    else if (fmt == 3) { disasmBranch(emitted[i]); }
    else if (fmt == 4) { disasmJump(emitted[i]); }
    else if (fmt != 5) { decodeErrors = decodeErrors + 1; }
  }
  return listingHash;
}

// Symbol-table quality statistics: occupancy and average probe length,
// the assembler's hash diagnostics.
func symOccupancy() {
  var used = 0;
  for (var i = 0; i < 512; i = i + 1) {
    if (symKeys[i] != 0) { used = used + 1; }
  }
  return used;
}

func probeLengthFor(key) {
  var h = hashKey(key);
  var probes = 1;
  while (symKeys[h] != 0 && symKeys[h] != key) {
    h = (h + 1) % 512;
    probes = probes + 1;
  }
  return probes;
}

func totalProbeLength() {
  var total = 0;
  for (var i = 0; i < 512; i = i + 1) {
    if (symKeys[i] != 0) {
      total = total + probeLengthFor(symKeys[i]);
    }
  }
  return total;
}

func main() {
  for (var i = 0; i < 512; i = i + 1) { symKeys[i] = 0; }
  var total = 0;
  var listTotal = 0;
  var farTotal = 0;
  var occTotal = 0;
  var probeTotal = 0;
  for (var round = 0; round < 8; round = round + 1) {
    for (var i = 0; i < 512; i = i + 1) { symKeys[i] = 0; }
    genLines(round * 7919 + 13);
    passOne();
    passTwo();
    total = (total + checksumWords()) % 1000000007;
    listTotal = (listTotal + disassemble()) % 1000000007;
    farTotal = farTotal + farBranches;
    occTotal = occTotal + symOccupancy();
    probeTotal = probeTotal + totalProbeLength();
  }
  print(total);
  print(emitCount);
  print(relocCount);
  print(listTotal);
  print(decodeErrors);
  print(farTotal);
  print(occTotal);
  print(probeTotal);
  return 0;
}
)MC";

/// upas: the scanner and declaration/statement structure checker of a
/// Pascal front pass, driven over synthetic source text.
const char *UpasSource = R"MC(
// upas -- scan and structure-check synthetic Pascal-like source text.
// Characters are ASCII codes in a word array.
var src[6000];
var srcLen;
var curPos;
var curTok;      // 0=eof 1=ident 2=number 3=punct 4=keyword
var curValue;
var identCount;
var numberCount;
var keywordCount;
var punctCount;
var scopeDepth;
var maxScopeDepth;
var structErrors;
var symHash;

func isLetter(ch) { return ch >= 97 && ch <= 122; }
func isDigit(ch) { return ch >= 48 && ch <= 57; }
func isSpace(ch) { return ch == 32 || ch == 10; }

func peekChar() {
  if (curPos >= srcLen) { return 0; }
  return src[curPos];
}

func nextChar() {
  var ch = peekChar();
  curPos = curPos + 1;
  return ch;
}

func skipSpaces() {
  while (isSpace(peekChar())) { nextChar(); }
  return 0;
}

// Keywords are spelled as runs of one repeated letter:
// bb=begin ee=end ii=if tt=then ww=while dd=do vv=var pp=proc
func classifyWord(letter, len) {
  if (len >= 2) {
    if (letter == 98) { return 1; }   // begin
    if (letter == 101) { return 2; }  // end
    if (letter == 105) { return 3; }  // if
    if (letter == 116) { return 4; }  // then
    if (letter == 119) { return 5; }  // while
    if (letter == 100) { return 6; }  // do
    if (letter == 118) { return 7; }  // var
    if (letter == 112) { return 8; }  // proc
  }
  return 0;
}

func scanWord() {
  var first = peekChar();
  var len = 0;
  var same = 1;
  var hash = 0;
  while (isLetter(peekChar())) {
    var ch = nextChar();
    if (ch != first) { same = 0; }
    hash = (hash * 31 + ch) % 1000000007;
    len = len + 1;
  }
  if (same) {
    var kw = classifyWord(first, len);
    if (kw != 0) {
      curTok = 4;
      curValue = kw;
      keywordCount = keywordCount + 1;
      return 0;
    }
  }
  curTok = 1;
  curValue = hash;
  identCount = identCount + 1;
  symHash = (symHash + hash) % 1000000007;
  return 0;
}

func scanNumber() {
  var v = 0;
  while (isDigit(peekChar())) {
    v = v * 10 + (nextChar() - 48);
  }
  curTok = 2;
  curValue = v;
  numberCount = numberCount + 1;
  return 0;
}

func nextToken() {
  skipSpaces();
  var ch = peekChar();
  if (ch == 0) { curTok = 0; curValue = 0; return 0; }
  if (isLetter(ch)) { return scanWord(); }
  if (isDigit(ch)) { return scanNumber(); }
  nextChar();
  curTok = 3;
  curValue = ch;
  punctCount = punctCount + 1;
  return 0;
}

func enterScope() {
  scopeDepth = scopeDepth + 1;
  if (scopeDepth > maxScopeDepth) { maxScopeDepth = scopeDepth; }
  return 0;
}

func leaveScope() {
  if (scopeDepth == 0) { structErrors = structErrors + 1; return 0; }
  scopeDepth = scopeDepth - 1;
  return 0;
}

func checkStructure() {
  // begin/end must nest; if needs then; while needs do.
  var expectThen = 0;
  var expectDo = 0;
  nextToken();
  while (curTok != 0) {
    if (curTok == 4) {
      if (curValue == 1) { enterScope(); }
      else if (curValue == 2) { leaveScope(); }
      else if (curValue == 3) { expectThen = expectThen + 1; }
      else if (curValue == 4) {
        if (expectThen == 0) { structErrors = structErrors + 1; }
        else { expectThen = expectThen - 1; }
      }
      else if (curValue == 5) { expectDo = expectDo + 1; }
      else if (curValue == 6) {
        if (expectDo == 0) { structErrors = structErrors + 1; }
        else { expectDo = expectDo - 1; }
      }
    }
    nextToken();
  }
  structErrors = structErrors + expectThen + expectDo + scopeDepth;
  return 0;
}

func putChar(ch) {
  src[srcLen] = ch;
  srcLen = srcLen + 1;
  return 0;
}

func putWord(letter, len) {
  for (var i = 0; i < len; i = i + 1) { putChar(letter); }
  putChar(32);
  return 0;
}

func putIdent(seed) {
  var len = 3 + seed % 6;
  for (var i = 0; i < len; i = i + 1) {
    putChar(97 + (seed + i * 7) % 26);
  }
  putChar(32);
  return 0;
}

func putNumber(v) {
  if (v == 0) { putChar(48); }
  var digits[12];
  var n = 0;
  while (v > 0) {
    digits[n] = v % 10;
    v = v / 10;
    n = n + 1;
  }
  while (n > 0) {
    n = n - 1;
    putChar(48 + digits[n]);
  }
  putChar(32);
  return 0;
}

func genSource(seed) {
  srcLen = 0;
  var depth = 0;
  while (srcLen < 5500) {
    seed = (seed * 6007 + 991) % 65536;
    var c = seed % 10;
    if (c < 2 && depth < 15) {
      putWord(98, 2 + seed % 3);       // begin
      depth = depth + 1;
    } else if (c < 3 && depth > 0) {
      putWord(101, 2 + seed % 3);      // end
      putChar(59);
      depth = depth - 1;
    } else if (c < 5) {
      putWord(105, 2); putIdent(seed); // if x then y := n;
      putWord(116, 2); putIdent(seed / 7);
      putChar(58); putChar(61);
      putNumber(seed % 1000);
      putChar(59);
    } else if (c < 6) {
      putWord(119, 2); putIdent(seed); // while x do
      putWord(100, 2);
    } else if (c < 7) {
      putWord(118, 2); putIdent(seed); // var x;
      putChar(59);
    } else {
      putIdent(seed);                  // x := y + n;
      putChar(58); putChar(61);
      putIdent(seed / 11);
      putChar(43);
      putNumber(seed % 100);
      putChar(59);
    }
  }
  while (depth > 0) {
    putWord(101, 2);
    depth = depth - 1;
  }
  return seed;
}

// Assignment-shape checker: after ':' '=' there must be an operand,
// optionally followed by operator/operand pairs, ending at ';'.
var assignCount;
var exprErrors;
var operandCount;

func isOperandTok() { return curTok == 1 || curTok == 2; }

func isOperatorChar(ch) {
  return ch == 43 || ch == 45 || ch == 42 || ch == 47;
}

func checkExprTail() {
  // Called with curTok at the first token after ':='.
  if (!isOperandTok()) {
    exprErrors = exprErrors + 1;
    return 0;
  }
  operandCount = operandCount + 1;
  nextToken();
  while (curTok == 3 && isOperatorChar(curValue)) {
    nextToken();
    if (!isOperandTok()) {
      exprErrors = exprErrors + 1;
      return 0;
    }
    operandCount = operandCount + 1;
    nextToken();
  }
  if (!(curTok == 3 && curValue == 59)) {
    exprErrors = exprErrors + 1;
  }
  return 0;
}

func checkAssignments() {
  curPos = 0;
  nextToken();
  while (curTok != 0) {
    if (curTok == 3 && curValue == 58) {     // ':'
      nextToken();
      if (curTok == 3 && curValue == 61) {   // '='
        assignCount = assignCount + 1;
        nextToken();
        checkExprTail();
      }
    } else {
      nextToken();
    }
  }
  return 0;
}

func main() {
  identCount = 0; numberCount = 0; keywordCount = 0; punctCount = 0;
  structErrors = 0; maxScopeDepth = 0; symHash = 0;
  assignCount = 0; exprErrors = 0; operandCount = 0;
  var seed = 5381;
  for (var unit = 0; unit < 25; unit = unit + 1) {
    seed = genSource(seed);
    curPos = 0;
    scopeDepth = 0;
    checkStructure();
    checkAssignments();
  }
  print(identCount);
  print(numberCount);
  print(keywordCount);
  print(structErrors);
  print(maxScopeDepth);
  print(symHash);
  print(assignCount);
  print(exprErrors);
  print(operandCount);
  return 0;
}
)MC";

/// uopt: the global optimizer operating on itself in the paper; here, an
/// iterative live-variable solver plus a priority-driven register
/// assigner run over many small synthetic flow graphs. Bit vectors are
/// emulated with arithmetic helpers, making the analysis call-intensive.
const char *UoptSource = R"MC(
// uopt -- data-flow analysis and priority allocation over synthetic CFGs.
var succ1[64];
var succ2[64];
var gen[64];
var kill[64];
var liveIn[64];
var liveOut[64];
var numBlocks;
var prio[32];
var assigned[32];
var conflictRow[32];   // conflict masks between 32 "variables"
var allocChecksum;
var dfaIterations;

func bitGet(mask, bit) {
  var m = mask;
  for (var i = 0; i < bit; i = i + 1) { m = m / 2; }
  return m % 2;
}

func bitSet(mask, bit) {
  if (bitGet(mask, bit)) { return mask; }
  var p = 1;
  for (var i = 0; i < bit; i = i + 1) { p = p * 2; }
  return mask + p;
}

func maskOr(a, b) {
  var result = 0;
  var p = 1;
  while (a > 0 || b > 0) {
    if (a % 2 == 1 || b % 2 == 1) { result = result + p; }
    a = a / 2;
    b = b / 2;
    p = p * 2;
  }
  return result;
}

func maskAndNot(a, b) {
  var result = 0;
  var p = 1;
  while (a > 0) {
    if (a % 2 == 1 && b % 2 == 0) { result = result + p; }
    a = a / 2;
    b = b / 2;
    p = p * 2;
  }
  return result;
}

func maskCount(a) {
  var n = 0;
  while (a > 0) {
    n = n + a % 2;
    a = a / 2;
  }
  return n;
}

func genCFG(seed) {
  numBlocks = 24;
  for (var b = 0; b < numBlocks; b = b + 1) {
    seed = (seed * 8191 + 331) % 65536;
    if (b + 1 < numBlocks) { succ1[b] = b + 1; } else { succ1[b] = -1; }
    if (seed % 3 == 0 && b + 2 < numBlocks) {
      succ2[b] = (seed / 3) % numBlocks;
    } else {
      succ2[b] = -1;
    }
    gen[b] = seed % 4096;
    seed = (seed * 8191 + 331) % 65536;
    kill[b] = seed % 4096;
    liveIn[b] = 0;
    liveOut[b] = 0;
  }
  return seed;
}

func blockOut(b) {
  var out = 0;
  if (succ1[b] >= 0) { out = maskOr(out, liveIn[succ1[b]]); }
  if (succ2[b] >= 0) { out = maskOr(out, liveIn[succ2[b]]); }
  return out;
}

func solveLiveness() {
  var changed = 1;
  var rounds = 0;
  while (changed) {
    changed = 0;
    rounds = rounds + 1;
    for (var b = numBlocks - 1; b >= 0; b = b - 1) {
      var out = blockOut(b);
      var in = maskOr(gen[b], maskAndNot(out, kill[b]));
      if (out != liveOut[b] || in != liveIn[b]) {
        liveOut[b] = out;
        liveIn[b] = in;
        changed = 1;
      }
    }
  }
  dfaIterations = dfaIterations + rounds;
  return rounds;
}

func blockLoopDepth(b) {
  // A block targeted by a backward edge is treated as a loop head; blocks
  // after it until the edge source get depth 1 (a crude interval guess).
  for (var p = b; p < numBlocks; p = p + 1) {
    if (succ2[p] >= 0 && succ2[p] <= b && succ2[p] + 4 > b - 4) {
      if (succ2[p] <= b && p >= b) { return 1; }
    }
  }
  return 0;
}

func computePriorities() {
  for (var v = 0; v < 12; v = v + 1) {
    var uses = 0;
    var span = 1;
    for (var b = 0; b < numBlocks; b = b + 1) {
      var weight = 2 + 8 * blockLoopDepth(b);
      if (bitGet(gen[b], v)) { uses = uses + weight; }
      if (bitGet(liveIn[b], v)) { span = span + 1; }
    }
    prio[v] = uses * 100 / span;
  }
  return 0;
}

func buildConflicts() {
  for (var v = 0; v < 12; v = v + 1) { conflictRow[v] = 0; }
  for (var b = 0; b < numBlocks; b = b + 1) {
    for (var v = 0; v < 12; v = v + 1) {
      if (!bitGet(liveIn[b], v)) { continue; }
      for (var w = 0; w < 12; w = w + 1) {
        if (w != v && bitGet(liveIn[b], w)) {
          conflictRow[v] = bitSet(conflictRow[v], w);
        }
      }
    }
  }
  return 0;
}

func pickBest() {
  var best = -1;
  for (var v = 0; v < 12; v = v + 1) {
    if (assigned[v] != -1) { continue; }   // -2 means "spilled", done
    if (best < 0 || prio[v] > prio[best]) { best = v; }
  }
  return best;
}

func regFreeFor(v, reg) {
  for (var w = 0; w < 12; w = w + 1) {
    if (w != v && assigned[w] == reg && bitGet(conflictRow[v], w)) {
      return 0;
    }
  }
  return 1;
}

func allocate() {
  for (var v = 0; v < 12; v = v + 1) { assigned[v] = -1; }
  var placed = 0;
  var v = pickBest();
  while (v >= 0) {
    var got = -2;
    for (var reg = 0; reg < 6; reg = reg + 1) {
      if (regFreeFor(v, reg)) { got = reg; reg = 6; }
    }
    assigned[v] = got;
    if (got >= 0) { placed = placed + 1; }
    v = pickBest();
  }
  return placed;
}

// Dead-store elimination: a definition (kill bit) whose variable is not
// live out of the block and not regenerated below is removable.
var deadStores;

func maskAnd(a, b) {
  var result = 0;
  var p = 1;
  while (a > 0 && b > 0) {
    if (a % 2 == 1 && b % 2 == 1) { result = result + p; }
    a = a / 2;
    b = b / 2;
    p = p * 2;
  }
  return result;
}

func eliminateDeadStores() {
  var removed = 0;
  for (var b = 0; b < numBlocks; b = b + 1) {
    // Defs neither used locally (gen) nor live out are dead.
    var dead = maskAndNot(maskAndNot(kill[b], liveOut[b]), gen[b]);
    removed = removed + maskCount(dead);
    kill[b] = maskAndNot(kill[b], dead);
  }
  deadStores = deadStores + removed;
  return removed;
}

// Availability of expressions: a forward AND-confluence pass over the
// same graphs (the second solver Uopt runs).
var availIn[64];
var availOut[64];

func predAvail(b) {
  // Our synthetic CFGs store successors only; treat block b-1 and any
  // block naming b as a second successor as predecessors.
  var acc = -1;
  for (var p = 0; p < numBlocks; p = p + 1) {
    if (succ1[p] == b || succ2[p] == b) {
      if (acc == -1) { acc = availOut[p]; }
      else { acc = maskAnd(acc, availOut[p]); }
    }
  }
  if (acc == -1) { return 0; }
  return acc;
}

func solveAvailability() {
  for (var b = 0; b < numBlocks; b = b + 1) {
    availIn[b] = 0;
    availOut[b] = 0;
  }
  var changed = 1;
  var rounds = 0;
  while (changed) {
    changed = 0;
    rounds = rounds + 1;
    for (var b = 0; b < numBlocks; b = b + 1) {
      var in = predAvail(b);
      var out = maskOr(gen[b], maskAndNot(in, kill[b]));
      if (in != availIn[b] || out != availOut[b]) {
        availIn[b] = in;
        availOut[b] = out;
        changed = 1;
      }
    }
  }
  return rounds;
}

func availChecksum() {
  var h = 0;
  for (var b = 0; b < numBlocks; b = b + 1) {
    h = (h * 31 + availOut[b]) % 1000000007;
  }
  return h;
}

func redundantExprs() {
  // Expressions generated in a block that were already available at its
  // entry are fully redundant (Morel-Renvoise's easy case).
  var redundant = 0;
  for (var b = 0; b < numBlocks; b = b + 1) {
    redundant = redundant + maskCount(maskAnd(gen[b], availIn[b]));
  }
  return redundant;
}

func main() {
  allocChecksum = 0;
  dfaIterations = 0;
  deadStores = 0;
  var seed = 42;
  var placedTotal = 0;
  var liveTotal = 0;
  var availTotal = 0;
  for (var round = 0; round < 60; round = round + 1) {
    seed = genCFG(seed);
    solveLiveness();
    for (var b = 0; b < numBlocks; b = b + 1) {
      liveTotal = liveTotal + maskCount(liveIn[b]);
    }
    eliminateDeadStores();
    solveAvailability();
    availTotal = (availTotal + availChecksum() + redundantExprs()) %
                 1000000007;
    computePriorities();
    buildConflicts();
    placedTotal = placedTotal + allocate();
    for (var v = 0; v < 12; v = v + 1) {
      allocChecksum = (allocChecksum * 7 + assigned[v] + 2) % 1000000007;
    }
  }
  print(dfaIterations);
  print(liveTotal);
  print(placedTotal);
  print(allocChecksum);
  print(deadStores);
  print(availTotal);
  return 0;
}
)MC";

} // namespace ipra
