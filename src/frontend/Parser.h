//===- frontend/Parser.h - miniC recursive-descent parser ------*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef IPRA_FRONTEND_PARSER_H
#define IPRA_FRONTEND_PARSER_H

#include "frontend/AST.h"

namespace ipra {

/// Parses a token stream into a Program. Syntax errors are reported to the
/// diagnostic engine; the parser recovers by skipping to the next ';' or '}'.
class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  /// \returns the parsed program; check Diags.hasErrors() before using it.
  Program parseProgram();

private:
  const Token &peek(unsigned Ahead = 0) const {
    unsigned Idx = Pos + Ahead;
    return Idx < Tokens.size() ? Tokens[Idx] : Tokens.back();
  }
  const Token &advance() {
    const Token &T = Tokens[Pos];
    if (Pos + 1 < Tokens.size())
      ++Pos;
    return T;
  }
  bool check(TokKind K) const { return peek().Kind == K; }
  bool accept(TokKind K) {
    if (!check(K))
      return false;
    advance();
    return true;
  }
  /// Consumes a token of kind \p K or reports an error. \returns the token.
  const Token &expect(TokKind K, const char *Context);
  void syncToStmtBoundary();

  void parseGlobal(Program &P);
  void parseFunc(Program &P, bool IsExtern, bool IsExport);

  StmtPtr parseStmt();
  StmtPtr parseBlock();
  StmtPtr parseVarDecl();
  StmtPtr parseIf();
  StmtPtr parseWhile();
  StmtPtr parseFor();
  /// Assignment or expression statement, without the trailing ';'.
  StmtPtr parseSimpleStmt();

  ExprPtr parseExpr();
  ExprPtr parseBinaryRHS(int MinPrec, ExprPtr LHS);
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  unsigned Pos = 0;
};

} // namespace ipra

#endif // IPRA_FRONTEND_PARSER_H
