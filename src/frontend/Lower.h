//===- frontend/Lower.h - AST to IR lowering -------------------*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef IPRA_FRONTEND_LOWER_H
#define IPRA_FRONTEND_LOWER_H

#include "frontend/AST.h"
#include "ir/Procedure.h"

namespace ipra {

/// Lowers an analyzed \p P into \p M: one global per GlobalDecl (ids match
/// symbol indices) and one procedure per FuncDecl. Requires analyze() to
/// have succeeded. \returns true on success (errors go to \p Diags).
bool lower(Program &P, Module &M, DiagnosticEngine &Diags);

} // namespace ipra

#endif // IPRA_FRONTEND_LOWER_H
