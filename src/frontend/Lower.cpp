//===- frontend/Lower.cpp --------------------------------------------------===//

#include "frontend/Lower.h"

#include "ir/IRBuilder.h"

using namespace ipra;

namespace {

class LowerImpl {
public:
  LowerImpl(Program &P, Module &M, DiagnosticEngine &Diags)
      : P(P), M(M), Diags(Diags) {}

  bool run() {
    for (GlobalDecl &G : P.Globals) {
      int Id = M.makeGlobal(G.Name, G.ArraySize >= 0 ? G.ArraySize : 1);
      assert((!G.Sym || G.Sym->Index == Id) && "global id drifted from sema");
      if (G.ArraySize < 0 && G.ScalarInit != 0)
        M.Globals[Id].Init = {G.ScalarInit};
    }
    // Create all procedures first so call sites can reference ids.
    for (FuncDecl &F : P.Funcs) {
      Procedure *Proc = M.makeProcedure(F.Name);
      assert((!F.Sym || F.Sym->Index == Proc->id()) && "proc id drifted");
      Proc->IsExternal = F.IsExtern;
      Proc->Exported = F.IsExport;
      Proc->IsMain = F.Name == "main";
    }
    for (FuncDecl &F : P.Funcs)
      if (!F.IsExtern)
        lowerFunction(F);
    return !Diags.hasErrors();
  }

private:
  void lowerFunction(FuncDecl &F) {
    Proc = M.procedure(F.Sym->Index);
    Builder = std::make_unique<IRBuilder>(Proc);
    Builder->setInsertBlock(Proc->makeBlock());
    for (ParamDecl &PD : F.Params) {
      VReg R = Proc->makeVReg();
      PD.Sym->Reg = R;
      Proc->ParamVRegs.push_back(R);
    }
    lowerStmt(*F.Body);
    // Any block left unterminated (fall off the end, or an empty join)
    // returns without a value.
    for (auto &BB : *Proc) {
      if (!BB->hasTerminator()) {
        Builder->setInsertBlock(BB.get());
        Builder->ret();
      }
    }
    Proc->recomputeCFG();
  }

  /// Starts a fresh block if the current one is already terminated (code
  /// after return/break; becomes unreachable and is cleaned up by opt).
  void ensureOpenBlock() {
    if (Builder->insertBlock()->hasTerminator())
      Builder->setInsertBlock(Proc->makeBlock());
  }

  void lowerStmt(Stmt &S) {
    ensureOpenBlock();
    switch (S.K) {
    case Stmt::Kind::Block: {
      for (StmtPtr &Sub : static_cast<BlockStmt &>(S).Stmts)
        lowerStmt(*Sub);
      return;
    }
    case Stmt::Kind::VarDecl: {
      auto &D = static_cast<VarDeclStmt &>(S);
      if (D.Sym->K == Symbol::Kind::LocalArray) {
        D.Sym->Index = Proc->makeFrameObject(D.Name, D.ArraySize);
        return;
      }
      D.Sym->Reg = Proc->makeVReg();
      if (D.Init)
        Builder->copyTo(D.Sym->Reg, lowerExpr(*D.Init));
      return;
    }
    case Stmt::Kind::Assign: {
      auto &A = static_cast<AssignStmt &>(S);
      lowerAssign(*A.Target, *A.Value);
      return;
    }
    case Stmt::Kind::If: {
      auto &I = static_cast<IfStmt &>(S);
      BasicBlock *ThenBB = Proc->makeBlock();
      BasicBlock *ElseBB = I.Else ? Proc->makeBlock() : nullptr;
      BasicBlock *MergeBB = Proc->makeBlock();
      lowerCondBranch(*I.Cond, ThenBB, ElseBB ? ElseBB : MergeBB);
      Builder->setInsertBlock(ThenBB);
      lowerStmt(*I.Then);
      if (!Builder->insertBlock()->hasTerminator())
        Builder->br(MergeBB);
      if (I.Else) {
        Builder->setInsertBlock(ElseBB);
        lowerStmt(*I.Else);
        if (!Builder->insertBlock()->hasTerminator())
          Builder->br(MergeBB);
      }
      Builder->setInsertBlock(MergeBB);
      return;
    }
    case Stmt::Kind::While: {
      auto &W = static_cast<WhileStmt &>(S);
      BasicBlock *CondBB = Proc->makeBlock();
      BasicBlock *BodyBB = Proc->makeBlock();
      BasicBlock *ExitBB = Proc->makeBlock();
      Builder->br(CondBB);
      Builder->setInsertBlock(CondBB);
      lowerCondBranch(*W.Cond, BodyBB, ExitBB);
      BreakTargets.push_back(ExitBB);
      ContinueTargets.push_back(CondBB);
      Builder->setInsertBlock(BodyBB);
      lowerStmt(*W.Body);
      if (!Builder->insertBlock()->hasTerminator())
        Builder->br(CondBB);
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      Builder->setInsertBlock(ExitBB);
      return;
    }
    case Stmt::Kind::For: {
      auto &F = static_cast<ForStmt &>(S);
      if (F.Init)
        lowerStmt(*F.Init);
      BasicBlock *CondBB = Proc->makeBlock();
      BasicBlock *BodyBB = Proc->makeBlock();
      BasicBlock *StepBB = Proc->makeBlock();
      BasicBlock *ExitBB = Proc->makeBlock();
      ensureOpenBlock();
      Builder->br(CondBB);
      Builder->setInsertBlock(CondBB);
      if (F.Cond)
        lowerCondBranch(*F.Cond, BodyBB, ExitBB);
      else
        Builder->br(BodyBB);
      BreakTargets.push_back(ExitBB);
      ContinueTargets.push_back(StepBB);
      Builder->setInsertBlock(BodyBB);
      lowerStmt(*F.Body);
      if (!Builder->insertBlock()->hasTerminator())
        Builder->br(StepBB);
      Builder->setInsertBlock(StepBB);
      if (F.Step)
        lowerStmt(*F.Step);
      if (!Builder->insertBlock()->hasTerminator())
        Builder->br(CondBB);
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      Builder->setInsertBlock(ExitBB);
      return;
    }
    case Stmt::Kind::Return: {
      auto &R = static_cast<ReturnStmt &>(S);
      Builder->ret(R.Value ? lowerExpr(*R.Value) : 0);
      return;
    }
    case Stmt::Kind::Print: {
      Builder->print(lowerExpr(*static_cast<PrintStmt &>(S).Value));
      return;
    }
    case Stmt::Kind::ExprStmt: {
      lowerExpr(*static_cast<ExprStmt &>(S).E);
      return;
    }
    case Stmt::Kind::Break: {
      assert(!BreakTargets.empty() && "sema lets no stray break through");
      Builder->br(BreakTargets.back());
      return;
    }
    case Stmt::Kind::Continue: {
      assert(!ContinueTargets.empty() && "sema checked continue placement");
      Builder->br(ContinueTargets.back());
      return;
    }
    }
  }

  void lowerAssign(Expr &Target, Expr &Value) {
    if (Target.K == Expr::Kind::VarRef) {
      Symbol *Sym = static_cast<VarRefExpr &>(Target).Sym;
      VReg V = lowerExpr(Value);
      if (Sym->K == Symbol::Kind::GlobalScalar)
        Builder->storeGlobal(Sym->Index, V);
      else
        Builder->copyTo(Sym->Reg, V);
      return;
    }
    assert(Target.K == Expr::Kind::Index && "sema checked lvalue kinds");
    auto &I = static_cast<IndexExpr &>(Target);
    VReg Addr = lowerElementAddr(I);
    VReg V = lowerExpr(Value);
    Builder->store(Addr, V);
  }

  /// Computes the word address of Base[Idx].
  VReg lowerElementAddr(IndexExpr &I) {
    VReg Base = lowerExpr(*I.Base);
    if (I.Idx->K == Expr::Kind::IntLit) {
      // Constant index folds into the memory-op offset via AddImm-free form.
      int64_t Off = static_cast<IntLitExpr &>(*I.Idx).Value;
      return Builder->addImm(Base, Off);
    }
    VReg Idx = lowerExpr(*I.Idx);
    return Builder->binary(Opcode::Add, Base, Idx);
  }

  static bool isShortCircuit(const Expr &E) {
    if (E.K == Expr::Kind::Binary) {
      TokKind Op = static_cast<const BinaryExpr &>(E).Op;
      return Op == TokKind::AmpAmp || Op == TokKind::PipePipe;
    }
    return false;
  }

  VReg lowerExpr(Expr &E) {
    switch (E.K) {
    case Expr::Kind::IntLit:
      return Builder->loadImm(static_cast<IntLitExpr &>(E).Value);
    case Expr::Kind::VarRef: {
      Symbol *Sym = static_cast<VarRefExpr &>(E).Sym;
      switch (Sym->K) {
      case Symbol::Kind::LocalScalar:
        return Sym->Reg;
      case Symbol::Kind::GlobalScalar:
        return Builder->loadGlobal(Sym->Index);
      case Symbol::Kind::GlobalArray:
        return Builder->addrGlobal(Sym->Index);
      case Symbol::Kind::LocalArray:
        return Builder->addrLocal(Sym->Index);
      case Symbol::Kind::Function:
        assert(false && "sema rejects functions as values");
        return 0;
      }
      return 0;
    }
    case Expr::Kind::Index: {
      VReg Addr = lowerElementAddr(static_cast<IndexExpr &>(E));
      return Builder->load(Addr);
    }
    case Expr::Kind::Unary: {
      auto &U = static_cast<UnaryExpr &>(E);
      if (U.Op == TokKind::Minus)
        return Builder->unary(Opcode::Neg, lowerExpr(*U.Sub));
      assert(U.Op == TokKind::Bang && "unknown unary operator");
      VReg Zero = Builder->loadImm(0);
      return Builder->binary(Opcode::CmpEq, lowerExpr(*U.Sub), Zero);
    }
    case Expr::Kind::Binary: {
      auto &B = static_cast<BinaryExpr &>(E);
      if (isShortCircuit(B))
        return materializeBool(B);
      return Builder->binary(binOpcode(B.Op), lowerExpr(*B.LHS),
                             lowerExpr(*B.RHS));
    }
    case Expr::Kind::Call:
      return lowerCall(static_cast<CallExpr &>(E));
    case Expr::Kind::AddrOf: {
      auto &A = static_cast<AddrOfExpr &>(E);
      M.procedure(A.Sym->Index)->AddressTaken = true;
      return Builder->funcAddr(A.Sym->Index);
    }
    }
    return 0;
  }

  VReg lowerCall(CallExpr &C) {
    std::vector<VReg> Args;
    Args.reserve(C.Args.size());
    for (ExprPtr &Arg : C.Args)
      Args.push_back(lowerExpr(*Arg));
    if (C.Callee->K == Expr::Kind::VarRef) {
      Symbol *Sym = static_cast<VarRefExpr &>(*C.Callee).Sym;
      if (Sym->K == Symbol::Kind::Function)
        return Builder->call(Sym->Index, Args);
    }
    return Builder->callIndirect(lowerExpr(*C.Callee), Args);
  }

  /// Lowers a short-circuit operator in value context: 0/1 into a vreg.
  VReg materializeBool(Expr &E) {
    VReg Result = Proc->makeVReg();
    BasicBlock *TrueBB = Proc->makeBlock();
    BasicBlock *FalseBB = Proc->makeBlock();
    BasicBlock *MergeBB = Proc->makeBlock();
    lowerCondBranch(E, TrueBB, FalseBB);
    Builder->setInsertBlock(TrueBB);
    Builder->loadImmTo(Result, 1);
    Builder->br(MergeBB);
    Builder->setInsertBlock(FalseBB);
    Builder->loadImmTo(Result, 0);
    Builder->br(MergeBB);
    Builder->setInsertBlock(MergeBB);
    return Result;
  }

  /// Lowers \p E as a branch condition with short-circuit evaluation.
  void lowerCondBranch(Expr &E, BasicBlock *TrueBB, BasicBlock *FalseBB) {
    if (E.K == Expr::Kind::Binary) {
      auto &B = static_cast<BinaryExpr &>(E);
      if (B.Op == TokKind::AmpAmp) {
        BasicBlock *MidBB = Proc->makeBlock();
        lowerCondBranch(*B.LHS, MidBB, FalseBB);
        Builder->setInsertBlock(MidBB);
        lowerCondBranch(*B.RHS, TrueBB, FalseBB);
        return;
      }
      if (B.Op == TokKind::PipePipe) {
        BasicBlock *MidBB = Proc->makeBlock();
        lowerCondBranch(*B.LHS, TrueBB, MidBB);
        Builder->setInsertBlock(MidBB);
        lowerCondBranch(*B.RHS, TrueBB, FalseBB);
        return;
      }
    }
    if (E.K == Expr::Kind::Unary &&
        static_cast<UnaryExpr &>(E).Op == TokKind::Bang) {
      lowerCondBranch(*static_cast<UnaryExpr &>(E).Sub, FalseBB, TrueBB);
      return;
    }
    Builder->condBr(lowerExpr(E), TrueBB, FalseBB);
  }

  static Opcode binOpcode(TokKind Op) {
    switch (Op) {
    case TokKind::Plus:
      return Opcode::Add;
    case TokKind::Minus:
      return Opcode::Sub;
    case TokKind::Star:
      return Opcode::Mul;
    case TokKind::Slash:
      return Opcode::Div;
    case TokKind::Percent:
      return Opcode::Rem;
    case TokKind::EqEq:
      return Opcode::CmpEq;
    case TokKind::BangEq:
      return Opcode::CmpNe;
    case TokKind::Lt:
      return Opcode::CmpLt;
    case TokKind::Le:
      return Opcode::CmpLe;
    case TokKind::Gt:
      return Opcode::CmpGt;
    case TokKind::Ge:
      return Opcode::CmpGe;
    default:
      assert(false && "not a value binary operator");
      return Opcode::Add;
    }
  }

  Program &P;
  Module &M;
  DiagnosticEngine &Diags;
  Procedure *Proc = nullptr;
  std::unique_ptr<IRBuilder> Builder;
  std::vector<BasicBlock *> BreakTargets;
  std::vector<BasicBlock *> ContinueTargets;
};

} // namespace

bool ipra::lower(Program &P, Module &M, DiagnosticEngine &Diags) {
  return LowerImpl(P, M, Diags).run();
}
