//===- frontend/Sema.cpp ---------------------------------------------------===//

#include "frontend/Sema.h"

#include <unordered_map>

using namespace ipra;

namespace {

class SemaImpl {
public:
  SemaImpl(Program &P, DiagnosticEngine &Diags) : P(P), Diags(Diags) {}

  bool run() {
    declareGlobals();
    declareFunctions();
    for (FuncDecl &F : P.Funcs)
      checkFunction(F);
    return !Diags.hasErrors();
  }

private:
  using Scope = std::unordered_map<std::string, Symbol *>;

  Symbol *makeSymbol(Symbol::Kind K, const std::string &Name) {
    P.Symbols.push_back(std::make_unique<Symbol>());
    Symbol *S = P.Symbols.back().get();
    S->K = K;
    S->Name = Name;
    return S;
  }

  void declareGlobals() {
    int NextGlobalId = 0;
    for (GlobalDecl &G : P.Globals) {
      if (GlobalScope.count(G.Name)) {
        Diags.error(G.Loc, "redefinition of '" + G.Name + "'");
        continue;
      }
      Symbol *S = makeSymbol(G.ArraySize >= 0 ? Symbol::Kind::GlobalArray
                                              : Symbol::Kind::GlobalScalar,
                             G.Name);
      S->Index = NextGlobalId++;
      G.Sym = S;
      GlobalScope[G.Name] = S;
    }
  }

  void declareFunctions() {
    int NextFuncId = 0;
    for (FuncDecl &F : P.Funcs) {
      if (GlobalScope.count(F.Name)) {
        Diags.error(F.Loc, "redefinition of '" + F.Name + "'");
        continue;
      }
      Symbol *S = makeSymbol(Symbol::Kind::Function, F.Name);
      S->Index = NextFuncId++;
      S->ParamCount = int(F.Params.size());
      S->IsExtern = F.IsExtern;
      S->IsExport = F.IsExport;
      F.Sym = S;
      GlobalScope[F.Name] = S;
    }
  }

  Symbol *lookup(const std::string &Name) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    auto Found = GlobalScope.find(Name);
    return Found == GlobalScope.end() ? nullptr : Found->second;
  }

  void declareLocal(SourceLoc Loc, const std::string &Name, Symbol *S) {
    if (Scopes.back().count(Name)) {
      Diags.error(Loc, "redefinition of '" + Name + "'");
      return;
    }
    Scopes.back()[Name] = S;
  }

  void checkFunction(FuncDecl &F) {
    if (F.IsExtern)
      return;
    Scopes.clear();
    Scopes.emplace_back();
    LoopDepth = 0;
    for (ParamDecl &PD : F.Params) {
      Symbol *S = makeSymbol(Symbol::Kind::LocalScalar, PD.Name);
      PD.Sym = S;
      declareLocal(PD.Loc, PD.Name, S);
    }
    checkStmt(*F.Body);
    Scopes.pop_back();
  }

  void checkStmt(Stmt &S) {
    switch (S.K) {
    case Stmt::Kind::Block: {
      auto &B = static_cast<BlockStmt &>(S);
      Scopes.emplace_back();
      for (StmtPtr &Sub : B.Stmts)
        checkStmt(*Sub);
      Scopes.pop_back();
      return;
    }
    case Stmt::Kind::VarDecl: {
      auto &D = static_cast<VarDeclStmt &>(S);
      if (D.Init)
        checkValueExpr(*D.Init);
      Symbol *Sym = makeSymbol(D.ArraySize >= 0 ? Symbol::Kind::LocalArray
                                                : Symbol::Kind::LocalScalar,
                               D.Name);
      D.Sym = Sym;
      declareLocal(D.Loc, D.Name, Sym);
      if (D.ArraySize == 0)
        Diags.error(D.Loc, "array '" + D.Name + "' has zero size");
      return;
    }
    case Stmt::Kind::Assign: {
      auto &A = static_cast<AssignStmt &>(S);
      checkLValue(*A.Target);
      checkValueExpr(*A.Value);
      return;
    }
    case Stmt::Kind::If: {
      auto &I = static_cast<IfStmt &>(S);
      checkValueExpr(*I.Cond);
      checkStmt(*I.Then);
      if (I.Else)
        checkStmt(*I.Else);
      return;
    }
    case Stmt::Kind::While: {
      auto &W = static_cast<WhileStmt &>(S);
      checkValueExpr(*W.Cond);
      ++LoopDepth;
      checkStmt(*W.Body);
      --LoopDepth;
      return;
    }
    case Stmt::Kind::For: {
      auto &F = static_cast<ForStmt &>(S);
      Scopes.emplace_back(); // for-init declarations scope over the loop
      if (F.Init)
        checkStmt(*F.Init);
      if (F.Cond)
        checkValueExpr(*F.Cond);
      ++LoopDepth;
      if (F.Step)
        checkStmt(*F.Step);
      checkStmt(*F.Body);
      --LoopDepth;
      Scopes.pop_back();
      return;
    }
    case Stmt::Kind::Return: {
      auto &R = static_cast<ReturnStmt &>(S);
      if (R.Value)
        checkValueExpr(*R.Value);
      return;
    }
    case Stmt::Kind::Print: {
      checkValueExpr(*static_cast<PrintStmt &>(S).Value);
      return;
    }
    case Stmt::Kind::ExprStmt: {
      auto &E = static_cast<ExprStmt &>(S);
      if (E.E->K != Expr::Kind::Call)
        Diags.warning(E.Loc, "expression statement has no effect");
      checkValueExpr(*E.E);
      return;
    }
    case Stmt::Kind::Break:
      if (LoopDepth == 0)
        Diags.error(S.Loc, "'break' outside of a loop");
      return;
    case Stmt::Kind::Continue:
      if (LoopDepth == 0)
        Diags.error(S.Loc, "'continue' outside of a loop");
      return;
    }
  }

  void checkLValue(Expr &E) {
    if (E.K == Expr::Kind::VarRef) {
      auto &V = static_cast<VarRefExpr &>(E);
      resolveVarRef(V);
      if (V.Sym && !V.Sym->isScalarValue())
        Diags.error(E.Loc, "cannot assign to '" + V.Name + "'");
      return;
    }
    if (E.K == Expr::Kind::Index) {
      auto &I = static_cast<IndexExpr &>(E);
      checkValueExpr(*I.Base);
      checkValueExpr(*I.Idx);
      return;
    }
    Diags.error(E.Loc, "assignment target is not an lvalue");
  }

  void resolveVarRef(VarRefExpr &V) {
    V.Sym = lookup(V.Name);
    if (!V.Sym)
      Diags.error(V.Loc, "use of undeclared identifier '" + V.Name + "'");
  }

  /// Checks \p E in a context that needs a scalar value. Arrays decay to
  /// their address; bare function names are not values (use '&').
  void checkValueExpr(Expr &E) {
    switch (E.K) {
    case Expr::Kind::IntLit:
      return;
    case Expr::Kind::VarRef: {
      auto &V = static_cast<VarRefExpr &>(E);
      resolveVarRef(V);
      if (V.Sym && V.Sym->K == Symbol::Kind::Function)
        Diags.error(E.Loc, "function '" + V.Name +
                               "' is not a value; use '&" + V.Name + "'");
      return;
    }
    case Expr::Kind::Index: {
      auto &I = static_cast<IndexExpr &>(E);
      checkValueExpr(*I.Base);
      checkValueExpr(*I.Idx);
      return;
    }
    case Expr::Kind::Unary: {
      checkValueExpr(*static_cast<UnaryExpr &>(E).Sub);
      return;
    }
    case Expr::Kind::Binary: {
      auto &B = static_cast<BinaryExpr &>(E);
      checkValueExpr(*B.LHS);
      checkValueExpr(*B.RHS);
      return;
    }
    case Expr::Kind::Call: {
      auto &C = static_cast<CallExpr &>(E);
      // Direct call through a function name; anything else is indirect.
      if (C.Callee->K == Expr::Kind::VarRef) {
        auto &V = static_cast<VarRefExpr &>(*C.Callee);
        resolveVarRef(V);
        if (V.Sym && V.Sym->K == Symbol::Kind::Function &&
            int(C.Args.size()) != V.Sym->ParamCount)
          Diags.error(C.Loc, "call to '" + V.Name + "' with " +
                                 std::to_string(C.Args.size()) +
                                 " arguments; expected " +
                                 std::to_string(V.Sym->ParamCount));
        if (V.Sym && V.Sym->isArray())
          Diags.error(C.Loc, "'" + V.Name + "' is not callable");
      } else {
        checkValueExpr(*C.Callee);
      }
      for (ExprPtr &Arg : C.Args)
        checkValueExpr(*Arg);
      return;
    }
    case Expr::Kind::AddrOf: {
      auto &A = static_cast<AddrOfExpr &>(E);
      A.Sym = lookup(A.Name);
      if (!A.Sym)
        Diags.error(A.Loc, "use of undeclared identifier '" + A.Name + "'");
      else if (A.Sym->K != Symbol::Kind::Function)
        Diags.error(A.Loc, "'&' requires a function name");
      return;
    }
    }
  }

  Program &P;
  DiagnosticEngine &Diags;
  Scope GlobalScope;
  std::vector<Scope> Scopes;
  int LoopDepth = 0;
};

} // namespace

bool ipra::analyze(Program &P, DiagnosticEngine &Diags) {
  return SemaImpl(P, Diags).run();
}
