//===- frontend/Parser.cpp -------------------------------------------------===//

#include "frontend/Parser.h"

using namespace ipra;

const Token &Parser::expect(TokKind K, const char *Context) {
  if (check(K))
    return advance();
  Diags.error(peek().Loc, std::string("expected ") + tokKindName(K) +
                              " in " + Context + ", found " +
                              tokKindName(peek().Kind));
  return peek();
}

void Parser::syncToStmtBoundary() {
  while (!check(TokKind::Eof) && !check(TokKind::Semi) &&
         !check(TokKind::RBrace))
    advance();
  accept(TokKind::Semi);
}

Program Parser::parseProgram() {
  Program P;
  while (!check(TokKind::Eof)) {
    if (check(TokKind::KwVar)) {
      parseGlobal(P);
      continue;
    }
    bool IsExtern = accept(TokKind::KwExtern);
    bool IsExport = !IsExtern && accept(TokKind::KwExport);
    if (check(TokKind::KwFunc)) {
      parseFunc(P, IsExtern, IsExport);
      continue;
    }
    Diags.error(peek().Loc, std::string("expected declaration, found ") +
                                tokKindName(peek().Kind));
    syncToStmtBoundary();
  }
  return P;
}

void Parser::parseGlobal(Program &P) {
  GlobalDecl G;
  G.Loc = advance().Loc; // 'var'
  G.Name = expect(TokKind::Ident, "global declaration").Text;
  if (accept(TokKind::LBracket)) {
    G.ArraySize = expect(TokKind::IntLit, "array size").IntValue;
    expect(TokKind::RBracket, "array declaration");
  } else if (accept(TokKind::Assign)) {
    bool Negative = accept(TokKind::Minus);
    int64_t V = expect(TokKind::IntLit, "global initializer").IntValue;
    G.ScalarInit = Negative ? -V : V;
  }
  expect(TokKind::Semi, "global declaration");
  P.Globals.push_back(std::move(G));
}

void Parser::parseFunc(Program &P, bool IsExtern, bool IsExport) {
  FuncDecl F;
  F.IsExtern = IsExtern;
  F.IsExport = IsExport;
  F.Loc = advance().Loc; // 'func'
  F.Name = expect(TokKind::Ident, "function declaration").Text;
  expect(TokKind::LParen, "function declaration");
  if (!check(TokKind::RParen)) {
    do {
      ParamDecl PD;
      const Token &T = expect(TokKind::Ident, "parameter list");
      PD.Name = T.Text;
      PD.Loc = T.Loc;
      F.Params.push_back(std::move(PD));
    } while (accept(TokKind::Comma));
  }
  expect(TokKind::RParen, "function declaration");
  if (IsExtern)
    expect(TokKind::Semi, "extern declaration");
  else
    F.Body = parseBlock();
  P.Funcs.push_back(std::move(F));
}

StmtPtr Parser::parseBlock() {
  SourceLoc Loc = expect(TokKind::LBrace, "block").Loc;
  auto Block = std::make_unique<BlockStmt>(Loc);
  while (!check(TokKind::RBrace) && !check(TokKind::Eof))
    if (StmtPtr S = parseStmt())
      Block->Stmts.push_back(std::move(S));
  expect(TokKind::RBrace, "block");
  return Block;
}

StmtPtr Parser::parseStmt() {
  switch (peek().Kind) {
  case TokKind::LBrace:
    return parseBlock();
  case TokKind::KwVar:
    return parseVarDecl();
  case TokKind::KwIf:
    return parseIf();
  case TokKind::KwWhile:
    return parseWhile();
  case TokKind::KwFor:
    return parseFor();
  case TokKind::KwReturn: {
    SourceLoc Loc = advance().Loc;
    ExprPtr Value;
    if (!check(TokKind::Semi))
      Value = parseExpr();
    expect(TokKind::Semi, "return statement");
    return std::make_unique<ReturnStmt>(Loc, std::move(Value));
  }
  case TokKind::KwPrint: {
    SourceLoc Loc = advance().Loc;
    expect(TokKind::LParen, "print statement");
    ExprPtr Value = parseExpr();
    expect(TokKind::RParen, "print statement");
    expect(TokKind::Semi, "print statement");
    return std::make_unique<PrintStmt>(Loc, std::move(Value));
  }
  case TokKind::KwBreak: {
    SourceLoc Loc = advance().Loc;
    expect(TokKind::Semi, "break statement");
    return std::make_unique<BreakStmt>(Loc);
  }
  case TokKind::KwContinue: {
    SourceLoc Loc = advance().Loc;
    expect(TokKind::Semi, "continue statement");
    return std::make_unique<ContinueStmt>(Loc);
  }
  default: {
    StmtPtr S = parseSimpleStmt();
    if (!S) {
      syncToStmtBoundary();
      return nullptr;
    }
    expect(TokKind::Semi, "statement");
    return S;
  }
  }
}

StmtPtr Parser::parseVarDecl() {
  SourceLoc Loc = advance().Loc; // 'var'
  std::string Name = expect(TokKind::Ident, "variable declaration").Text;
  int64_t ArraySize = -1;
  ExprPtr Init;
  if (accept(TokKind::LBracket)) {
    ArraySize = expect(TokKind::IntLit, "array size").IntValue;
    expect(TokKind::RBracket, "array declaration");
  } else if (accept(TokKind::Assign)) {
    Init = parseExpr();
  }
  expect(TokKind::Semi, "variable declaration");
  return std::make_unique<VarDeclStmt>(Loc, std::move(Name), ArraySize,
                                       std::move(Init));
}

StmtPtr Parser::parseIf() {
  SourceLoc Loc = advance().Loc; // 'if'
  expect(TokKind::LParen, "if statement");
  ExprPtr Cond = parseExpr();
  expect(TokKind::RParen, "if statement");
  StmtPtr Then = parseStmt();
  StmtPtr Else;
  if (accept(TokKind::KwElse))
    Else = parseStmt();
  return std::make_unique<IfStmt>(Loc, std::move(Cond), std::move(Then),
                                  std::move(Else));
}

StmtPtr Parser::parseWhile() {
  SourceLoc Loc = advance().Loc; // 'while'
  expect(TokKind::LParen, "while statement");
  ExprPtr Cond = parseExpr();
  expect(TokKind::RParen, "while statement");
  StmtPtr Body = parseStmt();
  return std::make_unique<WhileStmt>(Loc, std::move(Cond), std::move(Body));
}

StmtPtr Parser::parseFor() {
  SourceLoc Loc = advance().Loc; // 'for'
  expect(TokKind::LParen, "for statement");
  StmtPtr Init;
  if (!check(TokKind::Semi)) {
    if (check(TokKind::KwVar))
      Init = parseVarDecl(); // consumes its own ';'
    else {
      Init = parseSimpleStmt();
      expect(TokKind::Semi, "for statement");
    }
  } else {
    advance();
  }
  ExprPtr Cond;
  if (!check(TokKind::Semi))
    Cond = parseExpr();
  expect(TokKind::Semi, "for statement");
  StmtPtr Step;
  if (!check(TokKind::RParen))
    Step = parseSimpleStmt();
  expect(TokKind::RParen, "for statement");
  StmtPtr Body = parseStmt();
  return std::make_unique<ForStmt>(Loc, std::move(Init), std::move(Cond),
                                   std::move(Step), std::move(Body));
}

StmtPtr Parser::parseSimpleStmt() {
  SourceLoc Loc = peek().Loc;
  ExprPtr E = parseExpr();
  if (!E)
    return nullptr;
  if (accept(TokKind::Assign)) {
    ExprPtr Value = parseExpr();
    return std::make_unique<AssignStmt>(Loc, std::move(E), std::move(Value));
  }
  return std::make_unique<ExprStmt>(Loc, std::move(E));
}

/// Binary operator precedence; higher binds tighter. -1 = not a binop.
static int precedence(TokKind K) {
  switch (K) {
  case TokKind::PipePipe:
    return 1;
  case TokKind::AmpAmp:
    return 2;
  case TokKind::EqEq:
  case TokKind::BangEq:
    return 3;
  case TokKind::Lt:
  case TokKind::Le:
  case TokKind::Gt:
  case TokKind::Ge:
    return 4;
  case TokKind::Plus:
  case TokKind::Minus:
    return 5;
  case TokKind::Star:
  case TokKind::Slash:
  case TokKind::Percent:
    return 6;
  default:
    return -1;
  }
}

ExprPtr Parser::parseExpr() {
  ExprPtr LHS = parseUnary();
  if (!LHS)
    return nullptr;
  return parseBinaryRHS(1, std::move(LHS));
}

ExprPtr Parser::parseBinaryRHS(int MinPrec, ExprPtr LHS) {
  while (true) {
    int Prec = precedence(peek().Kind);
    if (Prec < MinPrec)
      return LHS;
    Token Op = advance();
    ExprPtr RHS = parseUnary();
    if (!RHS)
      return LHS;
    int NextPrec = precedence(peek().Kind);
    if (NextPrec > Prec)
      RHS = parseBinaryRHS(Prec + 1, std::move(RHS));
    LHS = std::make_unique<BinaryExpr>(Op.Loc, Op.Kind, std::move(LHS),
                                       std::move(RHS));
  }
}

ExprPtr Parser::parseUnary() {
  if (check(TokKind::Minus) || check(TokKind::Bang)) {
    Token Op = advance();
    ExprPtr Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return std::make_unique<UnaryExpr>(Op.Loc, Op.Kind, std::move(Sub));
  }
  if (check(TokKind::Amp)) {
    SourceLoc Loc = advance().Loc;
    std::string Name = expect(TokKind::Ident, "address-of expression").Text;
    return std::make_unique<AddrOfExpr>(Loc, std::move(Name));
  }
  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  while (E) {
    if (check(TokKind::LBracket)) {
      SourceLoc Loc = advance().Loc;
      ExprPtr Idx = parseExpr();
      expect(TokKind::RBracket, "index expression");
      E = std::make_unique<IndexExpr>(Loc, std::move(E), std::move(Idx));
      continue;
    }
    if (check(TokKind::LParen)) {
      SourceLoc Loc = advance().Loc;
      std::vector<ExprPtr> Args;
      if (!check(TokKind::RParen)) {
        do {
          if (ExprPtr Arg = parseExpr())
            Args.push_back(std::move(Arg));
          else
            break;
        } while (accept(TokKind::Comma));
      }
      expect(TokKind::RParen, "call expression");
      E = std::make_unique<CallExpr>(Loc, std::move(E), std::move(Args));
      continue;
    }
    break;
  }
  return E;
}

ExprPtr Parser::parsePrimary() {
  switch (peek().Kind) {
  case TokKind::IntLit: {
    const Token &T = advance();
    return std::make_unique<IntLitExpr>(T.Loc, T.IntValue);
  }
  case TokKind::Ident: {
    const Token &T = advance();
    return std::make_unique<VarRefExpr>(T.Loc, T.Text);
  }
  case TokKind::LParen: {
    advance();
    ExprPtr E = parseExpr();
    expect(TokKind::RParen, "parenthesized expression");
    return E;
  }
  default:
    Diags.error(peek().Loc, std::string("expected expression, found ") +
                                tokKindName(peek().Kind));
    return nullptr;
  }
}
