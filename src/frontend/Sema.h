//===- frontend/Sema.h - miniC semantic analysis ---------------*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef IPRA_FRONTEND_SEMA_H
#define IPRA_FRONTEND_SEMA_H

#include "frontend/AST.h"

namespace ipra {

/// Resolves names, builds the symbol table inside \p P, and checks static
/// rules (arity, lvalues, break/continue placement, duplicate/undefined
/// names). \returns true if no errors were reported.
bool analyze(Program &P, DiagnosticEngine &Diags);

} // namespace ipra

#endif // IPRA_FRONTEND_SEMA_H
