//===- frontend/Frontend.cpp -----------------------------------------------===//

#include "frontend/Frontend.h"

#include "frontend/Lexer.h"
#include "frontend/Lower.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "ir/Verifier.h"

using namespace ipra;

std::unique_ptr<Module> ipra::compileToIR(const std::string &Source,
                                          DiagnosticEngine &Diags) {
  Lexer Lex(Source, Diags);
  std::vector<Token> Tokens = Lex.lex();
  if (Diags.hasErrors())
    return nullptr;
  Parser P(std::move(Tokens), Diags);
  Program Prog = P.parseProgram();
  if (Diags.hasErrors())
    return nullptr;
  if (!analyze(Prog, Diags))
    return nullptr;
  auto M = std::make_unique<Module>();
  if (!lower(Prog, *M, Diags))
    return nullptr;
  if (!verify(*M, Diags))
    return nullptr;
  return M;
}
