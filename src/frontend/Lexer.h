//===- frontend/Lexer.h - miniC tokenizer ----------------------*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for miniC, the small imperative language this repo's benchmark
/// suite is written in (standing in for the paper's Pascal/C front ends).
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_FRONTEND_LEXER_H
#define IPRA_FRONTEND_LEXER_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ipra {

enum class TokKind {
  Eof,
  Ident,
  IntLit,
  // Keywords.
  KwVar,
  KwFunc,
  KwExtern,
  KwExport,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwPrint,
  KwBreak,
  KwContinue,
  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  // Operators.
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Bang,
  Amp,
  AmpAmp,
  PipePipe,
  EqEq,
  BangEq,
  Lt,
  Le,
  Gt,
  Ge,
  Assign
};

/// \returns a human-readable spelling for diagnostics ("'&&'", "identifier").
const char *tokKindName(TokKind K);

struct Token {
  TokKind Kind = TokKind::Eof;
  SourceLoc Loc;
  std::string Text;   // identifier spelling
  int64_t IntValue = 0;
};

/// Tokenizes an entire buffer up front. Lexical errors are reported to the
/// diagnostic engine and the offending characters skipped.
class Lexer {
public:
  Lexer(std::string Source, DiagnosticEngine &Diags);

  /// \returns all tokens, ending with one Eof token.
  std::vector<Token> lex();

private:
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Src.size(); }
  SourceLoc here() const { return {Line, Col}; }

  std::string Src;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  int Line = 1;
  int Col = 1;
};

} // namespace ipra

#endif // IPRA_FRONTEND_LEXER_H
