//===- frontend/Lexer.cpp --------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace ipra;

const char *ipra::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::Ident:
    return "identifier";
  case TokKind::IntLit:
    return "integer literal";
  case TokKind::KwVar:
    return "'var'";
  case TokKind::KwFunc:
    return "'func'";
  case TokKind::KwExtern:
    return "'extern'";
  case TokKind::KwExport:
    return "'export'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwFor:
    return "'for'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwPrint:
    return "'print'";
  case TokKind::KwBreak:
    return "'break'";
  case TokKind::KwContinue:
    return "'continue'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Semi:
    return "';'";
  case TokKind::Comma:
    return "','";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::Bang:
    return "'!'";
  case TokKind::Amp:
    return "'&'";
  case TokKind::AmpAmp:
    return "'&&'";
  case TokKind::PipePipe:
    return "'||'";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::BangEq:
    return "'!='";
  case TokKind::Lt:
    return "'<'";
  case TokKind::Le:
    return "'<='";
  case TokKind::Gt:
    return "'>'";
  case TokKind::Ge:
    return "'>='";
  case TokKind::Assign:
    return "'='";
  }
  return "<bad-token>";
}

Lexer::Lexer(std::string Source, DiagnosticEngine &Diags)
    : Src(std::move(Source)), Diags(Diags) {}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = Src[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

static const std::unordered_map<std::string, TokKind> &keywordTable() {
  static const std::unordered_map<std::string, TokKind> Table = {
      {"var", TokKind::KwVar},         {"func", TokKind::KwFunc},
      {"extern", TokKind::KwExtern},   {"export", TokKind::KwExport},
      {"if", TokKind::KwIf},           {"else", TokKind::KwElse},
      {"while", TokKind::KwWhile},     {"for", TokKind::KwFor},
      {"return", TokKind::KwReturn},   {"print", TokKind::KwPrint},
      {"break", TokKind::KwBreak},     {"continue", TokKind::KwContinue}};
  return Table;
}

std::vector<Token> Lexer::lex() {
  std::vector<Token> Out;
  auto Emit = [&Out](TokKind K, SourceLoc Loc) {
    Token T;
    T.Kind = K;
    T.Loc = Loc;
    Out.push_back(std::move(T));
  };

  while (!atEnd()) {
    char C = peek();
    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    // Line comments.
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    SourceLoc Loc = here();
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(C))) {
      int64_t Value = 0;
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        Value = Value * 10 + (advance() - '0');
      Token T;
      T.Kind = TokKind::IntLit;
      T.Loc = Loc;
      T.IntValue = Value;
      Out.push_back(std::move(T));
      continue;
    }
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Text;
      while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                          peek() == '_'))
        Text += advance();
      auto It = keywordTable().find(Text);
      Token T;
      T.Loc = Loc;
      if (It != keywordTable().end()) {
        T.Kind = It->second;
      } else {
        T.Kind = TokKind::Ident;
        T.Text = std::move(Text);
      }
      Out.push_back(std::move(T));
      continue;
    }
    advance();
    switch (C) {
    case '(':
      Emit(TokKind::LParen, Loc);
      break;
    case ')':
      Emit(TokKind::RParen, Loc);
      break;
    case '{':
      Emit(TokKind::LBrace, Loc);
      break;
    case '}':
      Emit(TokKind::RBrace, Loc);
      break;
    case '[':
      Emit(TokKind::LBracket, Loc);
      break;
    case ']':
      Emit(TokKind::RBracket, Loc);
      break;
    case ';':
      Emit(TokKind::Semi, Loc);
      break;
    case ',':
      Emit(TokKind::Comma, Loc);
      break;
    case '+':
      Emit(TokKind::Plus, Loc);
      break;
    case '-':
      Emit(TokKind::Minus, Loc);
      break;
    case '*':
      Emit(TokKind::Star, Loc);
      break;
    case '/':
      Emit(TokKind::Slash, Loc);
      break;
    case '%':
      Emit(TokKind::Percent, Loc);
      break;
    case '!':
      if (peek() == '=') {
        advance();
        Emit(TokKind::BangEq, Loc);
      } else {
        Emit(TokKind::Bang, Loc);
      }
      break;
    case '&':
      if (peek() == '&') {
        advance();
        Emit(TokKind::AmpAmp, Loc);
      } else {
        Emit(TokKind::Amp, Loc);
      }
      break;
    case '|':
      if (peek() == '|') {
        advance();
        Emit(TokKind::PipePipe, Loc);
      } else {
        Diags.error(Loc, "unexpected character '|'");
      }
      break;
    case '=':
      if (peek() == '=') {
        advance();
        Emit(TokKind::EqEq, Loc);
      } else {
        Emit(TokKind::Assign, Loc);
      }
      break;
    case '<':
      if (peek() == '=') {
        advance();
        Emit(TokKind::Le, Loc);
      } else {
        Emit(TokKind::Lt, Loc);
      }
      break;
    case '>':
      if (peek() == '=') {
        advance();
        Emit(TokKind::Ge, Loc);
      } else {
        Emit(TokKind::Gt, Loc);
      }
      break;
    default:
      Diags.error(Loc, std::string("unexpected character '") + C + "'");
      break;
    }
  }
  Token Eof;
  Eof.Kind = TokKind::Eof;
  Eof.Loc = here();
  Out.push_back(std::move(Eof));
  return Out;
}
