//===- frontend/AST.h - miniC abstract syntax tree -------------*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST node definitions for miniC. Nodes carry a Kind discriminator in the
/// LLVM style; Sema annotates name references with resolved Symbol pointers
/// that lowering consumes.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_FRONTEND_AST_H
#define IPRA_FRONTEND_AST_H

#include "frontend/Lexer.h"

#include <memory>
#include <string>
#include <vector>

namespace ipra {

/// A resolved program entity. Owned by the Sema-built symbol table; AST
/// nodes reference symbols without owning them.
struct Symbol {
  enum class Kind {
    GlobalScalar,
    GlobalArray,
    LocalScalar, // includes parameters
    LocalArray,
    Function
  };
  Kind K;
  std::string Name;
  /// GlobalScalar/GlobalArray: module global id. Function: procedure id.
  /// LocalArray: frame object id. Assigned during lowering for locals.
  int Index = -1;
  /// LocalScalar: the dedicated virtual register. Assigned during lowering.
  unsigned Reg = 0;
  /// Function symbols: declared parameter count, extern/export flags.
  int ParamCount = 0;
  bool IsExtern = false;
  bool IsExport = false;

  bool isScalarValue() const {
    return K == Kind::GlobalScalar || K == Kind::LocalScalar;
  }
  bool isArray() const {
    return K == Kind::GlobalArray || K == Kind::LocalArray;
  }
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

struct Expr {
  enum class Kind { IntLit, VarRef, Index, Unary, Binary, Call, AddrOf };
  const Kind K;
  SourceLoc Loc;

  virtual ~Expr() = default;

protected:
  Expr(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLitExpr : Expr {
  int64_t Value;
  IntLitExpr(SourceLoc Loc, int64_t Value)
      : Expr(Kind::IntLit, Loc), Value(Value) {}
};

/// A bare name: scalar variable, array (decays to its address), or function
/// (only valid as a call target or under '&').
struct VarRefExpr : Expr {
  std::string Name;
  Symbol *Sym = nullptr; // filled by Sema
  VarRefExpr(SourceLoc Loc, std::string Name)
      : Expr(Kind::VarRef, Loc), Name(std::move(Name)) {}
};

/// Base[Idx] where Base evaluates to a word address.
struct IndexExpr : Expr {
  ExprPtr Base;
  ExprPtr Idx;
  IndexExpr(SourceLoc Loc, ExprPtr Base, ExprPtr Idx)
      : Expr(Kind::Index, Loc), Base(std::move(Base)), Idx(std::move(Idx)) {}
};

struct UnaryExpr : Expr {
  TokKind Op; // Minus or Bang
  ExprPtr Sub;
  UnaryExpr(SourceLoc Loc, TokKind Op, ExprPtr Sub)
      : Expr(Kind::Unary, Loc), Op(Op), Sub(std::move(Sub)) {}
};

struct BinaryExpr : Expr {
  TokKind Op;
  ExprPtr LHS;
  ExprPtr RHS;
  BinaryExpr(SourceLoc Loc, TokKind Op, ExprPtr LHS, ExprPtr RHS)
      : Expr(Kind::Binary, Loc), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}
};

/// Callee(Args...). If Callee resolves to a function symbol this is a direct
/// call; if it resolves to a scalar variable the call is indirect through
/// the function address stored in it.
struct CallExpr : Expr {
  ExprPtr Callee;
  std::vector<ExprPtr> Args;
  CallExpr(SourceLoc Loc, ExprPtr Callee, std::vector<ExprPtr> Args)
      : Expr(Kind::Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
};

/// &func — takes the address of a function for later indirect calls.
struct AddrOfExpr : Expr {
  std::string Name;
  Symbol *Sym = nullptr; // filled by Sema; must be a Function
  AddrOfExpr(SourceLoc Loc, std::string Name)
      : Expr(Kind::AddrOf, Loc), Name(std::move(Name)) {}
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

struct Stmt {
  enum class Kind {
    Block,
    VarDecl,
    Assign,
    If,
    While,
    For,
    Return,
    Print,
    ExprStmt,
    Break,
    Continue
  };
  const Kind K;
  SourceLoc Loc;

  virtual ~Stmt() = default;

protected:
  Stmt(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}
};

using StmtPtr = std::unique_ptr<Stmt>;

struct BlockStmt : Stmt {
  std::vector<StmtPtr> Stmts;
  explicit BlockStmt(SourceLoc Loc) : Stmt(Kind::Block, Loc) {}
};

/// var x; / var x = init; / var a[N];
struct VarDeclStmt : Stmt {
  std::string Name;
  int64_t ArraySize; // -1 for scalars
  ExprPtr Init;      // scalars only, may be null
  Symbol *Sym = nullptr;
  VarDeclStmt(SourceLoc Loc, std::string Name, int64_t ArraySize, ExprPtr Init)
      : Stmt(Kind::VarDecl, Loc), Name(std::move(Name)), ArraySize(ArraySize),
        Init(std::move(Init)) {}
};

/// Target = Value; Target is a VarRef (scalar) or Index expression.
struct AssignStmt : Stmt {
  ExprPtr Target;
  ExprPtr Value;
  AssignStmt(SourceLoc Loc, ExprPtr Target, ExprPtr Value)
      : Stmt(Kind::Assign, Loc), Target(std::move(Target)),
        Value(std::move(Value)) {}
};

struct IfStmt : Stmt {
  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else; // may be null
  IfStmt(SourceLoc Loc, ExprPtr Cond, StmtPtr Then, StmtPtr Else)
      : Stmt(Kind::If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}
};

struct WhileStmt : Stmt {
  ExprPtr Cond;
  StmtPtr Body;
  WhileStmt(SourceLoc Loc, ExprPtr Cond, StmtPtr Body)
      : Stmt(Kind::While, Loc), Cond(std::move(Cond)), Body(std::move(Body)) {}
};

struct ForStmt : Stmt {
  StmtPtr Init; // may be null; Assign or VarDecl
  ExprPtr Cond; // may be null (infinite)
  StmtPtr Step; // may be null; Assign or ExprStmt
  StmtPtr Body;
  ForStmt(SourceLoc Loc, StmtPtr Init, ExprPtr Cond, StmtPtr Step,
          StmtPtr Body)
      : Stmt(Kind::For, Loc), Init(std::move(Init)), Cond(std::move(Cond)),
        Step(std::move(Step)), Body(std::move(Body)) {}
};

struct ReturnStmt : Stmt {
  ExprPtr Value; // may be null
  ReturnStmt(SourceLoc Loc, ExprPtr Value)
      : Stmt(Kind::Return, Loc), Value(std::move(Value)) {}
};

struct PrintStmt : Stmt {
  ExprPtr Value;
  PrintStmt(SourceLoc Loc, ExprPtr Value)
      : Stmt(Kind::Print, Loc), Value(std::move(Value)) {}
};

struct ExprStmt : Stmt {
  ExprPtr E;
  ExprStmt(SourceLoc Loc, ExprPtr E) : Stmt(Kind::ExprStmt, Loc), E(std::move(E)) {}
};

struct BreakStmt : Stmt {
  explicit BreakStmt(SourceLoc Loc) : Stmt(Kind::Break, Loc) {}
};

struct ContinueStmt : Stmt {
  explicit ContinueStmt(SourceLoc Loc) : Stmt(Kind::Continue, Loc) {}
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

struct ParamDecl {
  std::string Name;
  SourceLoc Loc;
  Symbol *Sym = nullptr;
};

struct FuncDecl {
  SourceLoc Loc;
  std::string Name;
  std::vector<ParamDecl> Params;
  StmtPtr Body; // null for extern declarations
  bool IsExtern = false;
  bool IsExport = false;
  Symbol *Sym = nullptr;
};

struct GlobalDecl {
  SourceLoc Loc;
  std::string Name;
  int64_t ArraySize = -1;  // -1 for scalars
  int64_t ScalarInit = 0;  // constant initializer for scalars
  Symbol *Sym = nullptr;
};

/// A parsed translation unit.
struct Program {
  std::vector<GlobalDecl> Globals;
  std::vector<FuncDecl> Funcs;
  /// Symbol storage (stable addresses); populated by Sema.
  std::vector<std::unique_ptr<Symbol>> Symbols;
};

} // namespace ipra

#endif // IPRA_FRONTEND_AST_H
