//===- frontend/Frontend.h - One-call compilation entry point --*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef IPRA_FRONTEND_FRONTEND_H
#define IPRA_FRONTEND_FRONTEND_H

#include "ir/Procedure.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>

namespace ipra {

/// Compiles miniC \p Source through lex/parse/sema/lower into a fresh
/// module. \returns nullptr if any phase reported errors.
std::unique_ptr<Module> compileToIR(const std::string &Source,
                                    DiagnosticEngine &Diags);

} // namespace ipra

#endif // IPRA_FRONTEND_FRONTEND_H
