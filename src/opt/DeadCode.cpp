//===- opt/DeadCode.cpp - Dead code elimination ----------------------------===//

#include "opt/Passes.h"

#include "analysis/AnalysisManager.h"
#include "analysis/Liveness.h"

#include <algorithm>

using namespace ipra;

namespace {

/// True if removing the instruction (given a dead result) cannot change
/// observable behaviour. Calls stay: callees may print or write globals.
bool isRemovableWhenDead(const Instruction &I) {
  switch (I.Op) {
  case Opcode::StoreGlobal:
  case Opcode::Store:
  case Opcode::Call:
  case Opcode::CallIndirect:
  case Opcode::Ret:
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::Print:
    return false;
  default:
    return true;
  }
}

} // namespace

bool ipra::eliminateDeadCode(Procedure &Proc) {
  AnalysisManager AM(Proc);
  return eliminateDeadCode(Proc, AM);
}

bool ipra::eliminateDeadCode(Procedure &Proc, AnalysisManager &AM) {
  bool EverChanged = false;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    const Liveness &LV = AM.liveness();
    for (auto &BB : Proc) {
      std::vector<char> Dead(BB->Insts.size(), 0);
      LV.forEachInstLiveAfter(Proc, BB->id(), [&](int InstIdx,
                                                  const BitVector &LiveAfter) {
        const Instruction &I = BB->Insts[InstIdx];
        VReg D = I.def();
        if (D && !LiveAfter.test(D) && isRemovableWhenDead(I))
          Dead[InstIdx] = 1;
      });
      // forEachInstLiveAfter treats removed defs as still live within this
      // sweep; that only delays removal to the next iteration.
      if (std::find(Dead.begin(), Dead.end(), 1) == Dead.end())
        continue;
      std::vector<Instruction> Kept;
      Kept.reserve(BB->Insts.size());
      for (unsigned J = 0; J < BB->Insts.size(); ++J)
        if (!Dead[J])
          Kept.push_back(std::move(BB->Insts[J]));
      BB->Insts = std::move(Kept);
      Changed = true;
    }
    if (Changed)
      AM.invalidate();
    EverChanged |= Changed;
  }
  return EverChanged;
}

void ipra::optimize(Procedure &Proc) {
  AnalysisManager AM(Proc);
  optimize(Proc, AM);
}

void ipra::optimize(Procedure &Proc, AnalysisManager &AM) {
  if (Proc.IsExternal || Proc.numBlocks() == 0)
    return;
  // Bounded fixed point; each pass is cheap and the benchmarks are small.
  for (int Round = 0; Round < 8; ++Round) {
    bool Changed = false;
    bool Mutated = foldConstants(Proc);
    Mutated |= propagateCopies(Proc);
    Mutated |= simplifyCFG(Proc);
    if (Mutated)
      AM.invalidate();
    Changed |= Mutated;
    Changed |= eliminateDeadCode(Proc, AM);
    if (!Changed)
      break;
  }
  // Only predecessor lists change here; cached liveness stays valid (it
  // derives the CFG from terminators).
  Proc.recomputeCFG();
}

void ipra::optimize(Module &M) {
  for (auto &Proc : M)
    optimize(*Proc);
}
