//===- opt/Passes.h - Mid-end cleanup passes -------------------*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "Uopt" stand-in: a small set of machine-independent cleanups run
/// before register allocation so the -O2 baseline is competent (the paper
/// stresses that its base already removed most scalar memory traffic).
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_OPT_PASSES_H
#define IPRA_OPT_PASSES_H

#include "ir/Procedure.h"

namespace ipra {

class AnalysisManager;

/// Removes blocks unreachable from the entry, folds constant conditional
/// branches, collapses condbr with identical targets, and merges
/// single-successor/single-predecessor block pairs. \returns true if
/// anything changed.
bool simplifyCFG(Procedure &Proc);

/// Block-local constant folding: propagates LoadImm values through ALU
/// operations and copies. \returns true if anything changed.
bool foldConstants(Procedure &Proc);

/// Block-local copy propagation: rewrites uses of copy destinations to the
/// source while both stay unchanged. \returns true if anything changed.
bool propagateCopies(Procedure &Proc);

/// Removes side-effect-free instructions whose results are dead (uses
/// liveness; iterates to a fixed point). \returns true if anything changed.
/// The \p AM overload reads liveness through the cache and calls
/// invalidate() after each round that deleted instructions, so a
/// no-change final round leaves the manager holding valid liveness.
bool eliminateDeadCode(Procedure &Proc);
bool eliminateDeadCode(Procedure &Proc, AnalysisManager &AM);

/// Runs the full cleanup pipeline to a fixed point (bounded). The \p AM
/// overload invalidates the manager after every mutating pass; on return
/// the manager's cached liveness (if any) is valid for the final IR.
void optimize(Procedure &Proc);
void optimize(Procedure &Proc, AnalysisManager &AM);

/// optimize() on every procedure with a body.
void optimize(Module &M);

} // namespace ipra

#endif // IPRA_OPT_PASSES_H
