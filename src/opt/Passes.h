//===- opt/Passes.h - Mid-end cleanup passes -------------------*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "Uopt" stand-in: a small set of machine-independent cleanups run
/// before register allocation so the -O2 baseline is competent (the paper
/// stresses that its base already removed most scalar memory traffic).
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_OPT_PASSES_H
#define IPRA_OPT_PASSES_H

#include "ir/Procedure.h"

namespace ipra {

/// Removes blocks unreachable from the entry, folds constant conditional
/// branches, collapses condbr with identical targets, and merges
/// single-successor/single-predecessor block pairs. \returns true if
/// anything changed.
bool simplifyCFG(Procedure &Proc);

/// Block-local constant folding: propagates LoadImm values through ALU
/// operations and copies. \returns true if anything changed.
bool foldConstants(Procedure &Proc);

/// Block-local copy propagation: rewrites uses of copy destinations to the
/// source while both stay unchanged. \returns true if anything changed.
bool propagateCopies(Procedure &Proc);

/// Removes side-effect-free instructions whose results are dead (uses
/// liveness; iterates to a fixed point). \returns true if anything changed.
bool eliminateDeadCode(Procedure &Proc);

/// Runs the full cleanup pipeline to a fixed point (bounded).
void optimize(Procedure &Proc);

/// optimize() on every procedure with a body.
void optimize(Module &M);

} // namespace ipra

#endif // IPRA_OPT_PASSES_H
