//===- opt/LocalOpt.cpp - Constant folding and copy propagation -----------===//

#include "opt/Passes.h"

#include <optional>
#include <unordered_map>

using namespace ipra;

namespace {

int64_t evalBinary(Opcode Op, int64_t A, int64_t B) {
  // Two's-complement wrap-around semantics, matching the simulator.
  switch (Op) {
  case Opcode::Add:
    return int64_t(uint64_t(A) + uint64_t(B));
  case Opcode::Sub:
    return int64_t(uint64_t(A) - uint64_t(B));
  case Opcode::Mul:
    return int64_t(uint64_t(A) * uint64_t(B));
  case Opcode::Div:
    if (B == 0)
      return 0;
    return (A == INT64_MIN && B == -1) ? A : A / B;
  case Opcode::Rem:
    if (B == 0)
      return 0;
    return (A == INT64_MIN && B == -1) ? 0 : A % B;
  case Opcode::And:
    return A & B;
  case Opcode::Or:
    return A | B;
  case Opcode::Xor:
    return A ^ B;
  case Opcode::Shl:
    return B < 0 || B > 62 ? 0 : A << B;
  case Opcode::Shr:
    return B < 0 || B > 62 ? 0 : A >> B;
  case Opcode::CmpEq:
    return A == B;
  case Opcode::CmpNe:
    return A != B;
  case Opcode::CmpLt:
    return A < B;
  case Opcode::CmpLe:
    return A <= B;
  case Opcode::CmpGt:
    return A > B;
  case Opcode::CmpGe:
    return A >= B;
  default:
    assert(false && "not a foldable binary opcode");
    return 0;
  }
}

} // namespace

bool ipra::foldConstants(Procedure &Proc) {
  bool Changed = false;
  for (auto &BB : Proc) {
    std::unordered_map<VReg, int64_t> Known;
    for (Instruction &I : BB->Insts) {
      auto Const = [&Known](VReg R) -> std::optional<int64_t> {
        auto It = Known.find(R);
        if (It == Known.end())
          return std::nullopt;
        return It->second;
      };
      std::optional<int64_t> Folded;
      if (I.isBinaryALU()) {
        auto A = Const(I.Src1);
        auto B = Const(I.Src2);
        if (A && B) {
          Folded = evalBinary(I.Op, *A, *B);
        }
      } else if (I.Op == Opcode::AddImm) {
        if (auto A = Const(I.Src1))
          Folded = int64_t(uint64_t(*A) + uint64_t(I.Imm));
      } else if (I.Op == Opcode::Neg) {
        if (auto A = Const(I.Src1))
          Folded = int64_t(0 - uint64_t(*A));
      } else if (I.Op == Opcode::Not) {
        if (auto A = Const(I.Src1))
          Folded = ~*A;
      } else if (I.Op == Opcode::Copy) {
        if (auto A = Const(I.Src1))
          Folded = *A;
      }
      if (Folded) {
        I.Op = Opcode::LoadImm;
        I.Imm = *Folded;
        I.Src1 = I.Src2 = 0;
        Changed = true;
      }
      // Update the known-constants map after the (possibly rewritten) def.
      if (VReg D = I.def()) {
        if (I.Op == Opcode::LoadImm)
          Known[D] = I.Imm;
        else
          Known.erase(D);
      }
    }
  }
  return Changed;
}

bool ipra::propagateCopies(Procedure &Proc) {
  bool Changed = false;
  for (auto &BB : Proc) {
    // CopyOf[d] = s when "d = copy s" holds at this point.
    std::unordered_map<VReg, VReg> CopyOf;
    auto InvalidateDef = [&CopyOf](VReg D) {
      CopyOf.erase(D);
      // Any mapping whose source is overwritten is stale.
      for (auto It = CopyOf.begin(); It != CopyOf.end();) {
        if (It->second == D)
          It = CopyOf.erase(It);
        else
          ++It;
      }
    };
    for (Instruction &I : BB->Insts) {
      auto Rewrite = [&CopyOf, &Changed](VReg &R) {
        auto It = CopyOf.find(R);
        if (It != CopyOf.end() && It->second != R) {
          R = It->second;
          Changed = true;
        }
      };
      if (I.Src1)
        Rewrite(I.Src1);
      if (I.Src2)
        Rewrite(I.Src2);
      for (VReg &Arg : I.Args)
        Rewrite(Arg);
      if (VReg D = I.def()) {
        InvalidateDef(D);
        if (I.Op == Opcode::Copy && I.Src1 != D)
          CopyOf[D] = I.Src1;
      }
    }
  }
  return Changed;
}
