//===- opt/SimplifyCFG.cpp - CFG cleanup -----------------------------------===//

#include "opt/Passes.h"

using namespace ipra;

namespace {

/// Folds CondBr with statically-known condition or equal targets into Br.
/// The condition is known when the defining instruction in the same block
/// is a LoadImm (the common shape after foldConstants).
bool foldBranches(Procedure &Proc) {
  bool Changed = false;
  for (auto &BB : Proc) {
    if (BB->Insts.empty())
      continue;
    Instruction &T = BB->Insts.back();
    if (T.Op != Opcode::CondBr)
      continue;
    if (T.Target1 == T.Target2) {
      T.Op = Opcode::Br;
      T.Src1 = 0;
      T.Target2 = -1;
      Changed = true;
      continue;
    }
    // Scan backwards for the definition of the condition in this block.
    for (int I = int(BB->Insts.size()) - 2; I >= 0; --I) {
      const Instruction &Def = BB->Insts[I];
      if (Def.def() != T.Src1)
        continue;
      if (Def.Op == Opcode::LoadImm) {
        T.Target1 = Def.Imm != 0 ? T.Target1 : T.Target2;
        T.Op = Opcode::Br;
        T.Src1 = 0;
        T.Target2 = -1;
        Changed = true;
      }
      break;
    }
  }
  return Changed;
}

bool removeUnreachable(Procedure &Proc) {
  unsigned NumBlocks = Proc.numBlocks();
  std::vector<char> Reachable(NumBlocks, 0);
  std::vector<int> Work{0};
  Reachable[0] = 1;
  while (!Work.empty()) {
    int B = Work.back();
    Work.pop_back();
    for (int S : Proc.block(B)->successors()) {
      if (!Reachable[S]) {
        Reachable[S] = 1;
        Work.push_back(S);
      }
    }
  }
  return Proc.removeBlocks(Reachable) > 0;
}

/// Merges B into its unique predecessor P when P's terminator is an
/// unconditional branch to B and B is P's only way in.
bool mergeChains(Procedure &Proc) {
  Proc.recomputeCFG();
  bool Changed = false;
  std::vector<char> Keep(Proc.numBlocks(), 1);
  for (unsigned B = 1; B < Proc.numBlocks(); ++B) {
    BasicBlock *BB = Proc.block(int(B));
    if (!Keep[B] || BB->Preds.size() != 1)
      continue;
    int P = BB->Preds[0];
    if (!Keep[P] || P == int(B))
      continue;
    BasicBlock *Pred = Proc.block(P);
    const Instruction &T = Pred->terminator();
    if (T.Op != Opcode::Br || T.Target1 != int(B))
      continue;
    // Splice: drop Pred's Br, append B's instructions.
    Pred->Insts.pop_back();
    for (Instruction &I : BB->Insts)
      Pred->Insts.push_back(std::move(I));
    BB->Insts.clear();
    // B must keep a terminator until removal; give it an unreachable Ret
    // and make it unreachable by marking for removal.
    Instruction RetI(Opcode::Ret);
    BB->Insts.push_back(RetI);
    Keep[B] = 0;
    Changed = true;
    // Pred's preds list is stale now, but we only consult Preds of blocks
    // we have not merged yet; recompute below.
    Proc.recomputeCFG();
  }
  if (Changed)
    Proc.removeBlocks(Keep);
  return Changed;
}

} // namespace

bool ipra::simplifyCFG(Procedure &Proc) {
  if (Proc.numBlocks() == 0)
    return false;
  bool Changed = foldBranches(Proc);
  Changed |= removeUnreachable(Proc);
  Changed |= mergeChains(Proc);
  Proc.recomputeCFG();
  return Changed;
}
