//===- x64/X64Decoder.h - Decoder for the JIT's instruction set -*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inverse of X64Assembler: decodes sealed code images back into a
/// typed instruction stream and reconstructs the control-flow graph of
/// each region. The decoder is deliberately exact-inverse rather than
/// general-purpose: it accepts only the canonical encodings the
/// assembler produces (memory operands as [base+disp32] with mod=10,
/// scaled guest accesses as mod=00 SIB scale=8, mandatory REX.W on
/// every 64-bit form) and reports anything else as a decode failure
/// with the offending byte offset. That strictness is the point -- the
/// native verifier (verify/NativeVerifier) proves
/// `encode(decode(bytes)) == bytes` per instruction, so a decoded
/// stream is a faithful, loss-free model of the emitted code.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_X64_X64DECODER_H
#define IPRA_X64_X64DECODER_H

#include "x64/X64Assembler.h"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ipra {
namespace x64 {

/// One instruction form per Assembler emission method (MovRI splits in
/// two because the imm32 and movabs encodings decode differently).
enum class IForm : uint8_t {
  MovRR,        ///< mov r64, r64            R1=dst, R2=src
  MovRM,        ///< mov r64, [base+disp32]  R1=dst, M
  MovMR,        ///< mov [base+disp32], r64  M, R1=src
  MovRI32,      ///< mov r64, simm32         R1, Imm
  MovRI64,      ///< movabs r64, imm64       R1, Imm
  MovMI,        ///< mov qword [m], simm32   M, Imm
  MovRMScaled8, ///< mov r64, [base+idx*8]   R1=dst, M.Base, R2=index
  MovMRScaled8, ///< mov [base+idx*8], r64   M.Base, R2=index, R1=src
  MovsxdRR,     ///< movsxd r64, r32         R1=dst, R2=src
  MovzxRR8,     ///< movzx r64, r8-low       R1=dst, R2=src
  AluRR,        ///< op r64, r64             Op, R1=dst, R2=src
  AluRM,        ///< op r64, [m]             Op, R1=dst, M
  AluMR,        ///< op [m], r64             Op, M, R1=src
  AluRI,        ///< op r64, simm32          Op, R1, Imm
  AluMI,        ///< op qword [m], simm32    Op, M, Imm
  ImulRR,       ///< imul r64, r64           R1=dst, R2=src
  Cqo,          ///< cqo
  IdivR,        ///< idiv r64                R1
  NegR,         ///< neg r64                 R1
  NotR,         ///< not r64                 R1
  ShlCL,        ///< shl r64, cl             R1
  SarCL,        ///< sar r64, cl             R1
  ShlRI,        ///< shl r64, imm8           R1, Imm
  TestRR,       ///< test r64, r64           R1, R2 (testRR(R1, R2))
  SetccR8,      ///< setcc r8-low            CC, R1
  Jmp,          ///< jmp rel32               Rel
  Jcc,          ///< jcc rel32               CC, Rel
  Call,         ///< call rel32              Rel
  CallM,        ///< call qword [m]          M
  Ret,          ///< ret
  PushR,        ///< push r64                R1
  PopR,         ///< pop r64                 R1
};

/// Short stable name, e.g. "mov-rm-scaled8".
const char *formName(IForm F);

/// One decoded instruction. Operand roles per form are documented on
/// IForm; fields not used by a form are zero.
struct DecodedInst {
  IForm Form = IForm::Ret;
  size_t Offset = 0; ///< Byte offset within the decoded image.
  uint8_t Len = 0;   ///< Encoded length in bytes.
  Reg R1 = RAX;
  Reg R2 = RAX;
  Mem M{RAX, 0};
  Alu Op = Alu::Add;
  Cond CC = Cond::O;
  int64_t Imm = 0;
  int32_t Rel = 0; ///< Branch/call displacement (rel32 forms).

  bool isBranch() const { return Form == IForm::Jmp || Form == IForm::Jcc; }
  bool isCall() const { return Form == IForm::Call || Form == IForm::CallM; }
  /// Absolute byte target of a rel32 branch or call.
  size_t target() const {
    return size_t(int64_t(Offset) + int64_t(Len) + int64_t(Rel));
  }
};

/// Decodes the instruction at \p Off. \returns false (with the reason
/// in \p Why) on any byte sequence the assembler cannot have produced.
bool decodeInst(const uint8_t *Buf, size_t Size, size_t Off, DecodedInst &Out,
                std::string &Why);

/// Re-emits \p I through \p A in the assembler's canonical encoding.
/// decodeInst(bytes) followed by reencode() reproduces the input bytes
/// exactly for every canonical encoding (the round-trip property the
/// encoder/decoder tests and the native verifier rest on).
void reencode(const DecodedInst &I, Assembler &A);

/// A decoded byte range [Begin, End) partitioned into basic blocks.
struct DecodedRegion {
  size_t Begin = 0;
  size_t End = 0;
  std::vector<DecodedInst> Insts;

  struct Block {
    unsigned FirstInst = 0; ///< Index into Insts.
    unsigned NumInsts = 0;
    /// Successor block ids within the region; -1 when absent. Branch
    /// targets outside the region (accepted only when listed in
    /// CFGPolicy::ExternalTargets) do not appear here.
    int Succ1 = -1;
    int Succ2 = -1;
  };
  std::vector<Block> Blocks;

  /// Maps an instruction index to its block id.
  std::vector<int> BlockOf;

  /// Block id whose first instruction sits at byte offset \p Off, or -1.
  int blockAt(size_t Off) const;
};

/// Region-shape policy for CFG reconstruction.
struct CFGPolicy {
  /// Calls treated as terminators (the JIT's noreturn error/bail
  /// helpers): the block ends and falls through nowhere.
  std::function<bool(const DecodedInst &)> IsNoReturnCall;
  /// Byte offsets outside [Begin, End) that branches may legally
  /// target (raw mode's shared budget stub).
  std::vector<size_t> ExternalTargets;
  /// Byte offsets rel32 calls may target (procedure entries). When
  /// empty, call targets are not constrained.
  std::vector<size_t> CallTargets;
};

/// Decodes every byte of [Begin, End) and reconstructs the basic-block
/// graph: leaders are the region start and all intra-region branch
/// targets; terminators are ret, jmp, jcc and noreturn calls. Fails
/// (with \p Why naming the byte offset) when a byte fails to decode,
/// when a branch targets a non-instruction boundary or an unlisted
/// external offset, or when a rel32 call misses every CallTargets
/// entry.
bool decodeRegion(const uint8_t *Buf, size_t Size, size_t Begin, size_t End,
                  const CFGPolicy &Policy, DecodedRegion &Out,
                  std::string &Why);

} // namespace x64
} // namespace ipra

#endif // IPRA_X64_X64DECODER_H
