//===- x64/NativeEngine.cpp - JIT execution engine -------------------------===//
//
// The C++ half of the native backend. Responsibilities:
//
//  * Guard rails: main-procedure diagnostics identical to the
//    interpreters, then clean refusals (never crashes) when the host
//    cannot execute natively, when raw mode is combined with
//    instrumentation-only features, or when MaxCallDepth exceeds the
//    host-stack budget.
//
//  * Run setup: register-map selection, code emission, the W^X
//    CodeBuffer flip, the indirect-call procedure table, guest memory
//    (calloc, like the decoded engine, for lazy zero pages) and the
//    NativeEnv wiring. Compiled images are memoized in a process-wide
//    cache keyed by a fingerprint of the MIR and the codegen options,
//    so repeat runs of one program pay only execution.
//
//  * The helper surface JIT code calls through NativeEnv function
//    pointers: Print, convention snapshot/check, the noreturn error
//    exit, and the budget bailout that switches to the careful tail.
//
//  * The careful tail interpreter: once the remaining budget no longer
//    covers a whole block, execution leaves native code for good and
//    this per-instruction loop -- a faithful copy of the reference
//    Machine's slow path -- finishes the run with exact budget checks,
//    unwinding through native frames via the shadow call stack and
//    longjmp'ing back to runNativeProgram when done.
//
//===----------------------------------------------------------------------===//

#include "x64/NativeEngine.h"

#include "sim/ConventionCheck.h"
#include "support/CodeBuffer.h"
#include "verify/NativeVerifier.h"
#include "x64/NativeCodeGen.h"
#include "x64/NativeRuntime.h"

#include <csetjmp>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>

using namespace ipra;
using namespace ipra::x64;

namespace ipra {
namespace x64 {

/// C++-side run state reachable from helpers via NativeEnv::Ctx.
struct NativeContext {
  const MProgram *Prog = nullptr;
  bool Profile = false;
  bool Check = false;
  uint64_t MaxCallDepth = 0;

  std::vector<int64_t> Output;
  std::vector<sim::CallRecord> CallRecords;
  /// Shadow-stack backing store (instrumented). Default-initialized on
  /// purpose: frames are only ever read below the cursor, i.e. after
  /// being written, and zeroing the worst-case 1.6 MiB costs more than
  /// running a small program.
  std::unique_ptr<ShadowFrame[]> Shadow;
  std::vector<uint64_t> Prof;      ///< Flat per-(proc,block) counters.
  std::vector<size_t> ProfOff;

  std::string PendingError; ///< Convention message from FnCheckRet.
  uint64_t Bailouts = 0;

  /// Careful-tail outcome (valid after a longjmp with code 2).
  bool CarefulOK = false;
  int64_t CarefulExit = 0;
  std::string CarefulError;

  std::jmp_buf Jb;
};

} // namespace x64
} // namespace ipra

namespace {

int64_t wrap(uint64_t V) { return int64_t(V); }

/// The per-instruction slow path. Entered once the native code's
/// hoisted budget test fails; never returns to native code. Mirrors the
/// reference Machine's dispatch loop statement for statement so the
/// final counters and diagnostics are byte-identical.
void carefulRun(NativeEnv &E) {
  NativeContext &C = *E.Ctx;
  const MProgram &Prog = *C.Prog;
  int64_t *R = E.Regs;
  int64_t *M = E.Mem;
  unsigned Proc = unsigned(E.BailProc);
  unsigned Block = unsigned(E.BailBlock);
  size_t Inst = size_t(E.BailInst);

  auto Fail = [&C](std::string Why) {
    C.CarefulOK = false;
    C.CarefulError = std::move(Why);
  };
  auto ErrorOut = [&](std::string Why) {
    Fail(std::move(Why) + " (in " + Prog.Procs[Proc].Name + ", block " +
         std::to_string(Block) + ")");
  };
  auto Depth = [&E] {
    return size_t((E.ShadowPtr - E.ShadowBase) / sizeof(ShadowFrame));
  };
  // Budget test, then the profile count: the order the reference
  // interpreter uses at every block visit.
  auto EnterBlock = [&]() -> bool {
    if (E.Steps >= E.MaxSteps) {
      Fail("execution budget exceeded (infinite loop?)");
      return false;
    }
    if (C.Profile)
      ++C.Prof[C.ProfOff[Proc] + Block];
    return true;
  };
  auto AddrOK = [&E](int64_t Addr) {
    return Addr >= 0 && uint64_t(Addr) < E.MemWords;
  };

  if (E.BailEntry && !EnterBlock())
    return;

  while (true) {
    if (E.Steps >= E.MaxSteps) {
      Fail("execution budget exceeded (infinite loop?)");
      return;
    }
    const MInst &I = Prog.Procs[Proc].Blocks[Block].Insts[Inst];
    ++E.Steps;
    int64_t &RD = R[I.Rd];
    int64_t RS = R[I.Rs];
    int64_t RT = R[I.Rt];
    switch (I.Op) {
    case MOpcode::Add:
      RD = wrap(uint64_t(RS) + uint64_t(RT));
      break;
    case MOpcode::Sub:
      RD = wrap(uint64_t(RS) - uint64_t(RT));
      break;
    case MOpcode::Mul:
      RD = wrap(uint64_t(RS) * uint64_t(RT));
      break;
    case MOpcode::Div:
      if (RT == 0)
        return ErrorOut("division by zero");
      if (RS == INT64_MIN && RT == -1)
        RD = RS;
      else
        RD = RS / RT;
      break;
    case MOpcode::Rem:
      if (RT == 0)
        return ErrorOut("remainder by zero");
      if (RS == INT64_MIN && RT == -1)
        RD = 0;
      else
        RD = RS % RT;
      break;
    case MOpcode::And:
      RD = RS & RT;
      break;
    case MOpcode::Or:
      RD = RS | RT;
      break;
    case MOpcode::Xor:
      RD = RS ^ RT;
      break;
    case MOpcode::Shl:
      RD = (RT < 0 || RT > 62) ? 0 : wrap(uint64_t(RS) << RT);
      break;
    case MOpcode::Shr:
      RD = (RT < 0 || RT > 62) ? 0 : RS >> RT;
      break;
    case MOpcode::CmpEq:
      RD = RS == RT;
      break;
    case MOpcode::CmpNe:
      RD = RS != RT;
      break;
    case MOpcode::CmpLt:
      RD = RS < RT;
      break;
    case MOpcode::CmpLe:
      RD = RS <= RT;
      break;
    case MOpcode::CmpGt:
      RD = RS > RT;
      break;
    case MOpcode::CmpGe:
      RD = RS >= RT;
      break;
    case MOpcode::Neg:
      RD = wrap(0 - uint64_t(RS));
      break;
    case MOpcode::Not:
      RD = ~RS;
      break;
    case MOpcode::Move:
      RD = RS;
      break;
    case MOpcode::LoadImm:
      RD = I.Imm;
      break;
    case MOpcode::AddImm:
      RD = wrap(uint64_t(RS) + uint64_t(I.Imm));
      break;
    case MOpcode::Load: {
      int64_t Addr = RS + I.Imm;
      if (!AddrOK(Addr))
        return ErrorOut("load out of bounds at word " + std::to_string(Addr));
      RD = M[Addr];
      if (I.Mem == MemKind::Scalar)
        ++E.ScalarLoads;
      else
        ++E.DataLoads;
      break;
    }
    case MOpcode::Store: {
      int64_t Addr = RS + I.Imm;
      if (!AddrOK(Addr))
        return ErrorOut("store out of bounds at word " + std::to_string(Addr));
      M[Addr] = RT;
      if (I.Mem == MemKind::Scalar)
        ++E.ScalarStores;
      else
        ++E.DataStores;
      break;
    }
    case MOpcode::Call:
    case MOpcode::CallInd: {
      int Callee = I.Op == MOpcode::Call ? I.Callee : int(RS);
      ++E.Calls;
      if (Callee < 0 || Callee >= int(Prog.Procs.size()))
        return ErrorOut("call to invalid procedure id " +
                        std::to_string(Callee));
      const MProc &P = Prog.Procs[Callee];
      if (P.IsExternal || P.Blocks.empty())
        return ErrorOut("call to external procedure '" + P.Name + "'");
      if (Depth() >= C.MaxCallDepth)
        return ErrorOut("call depth exceeded");
      if (C.Check)
        C.CallRecords.push_back(sim::snapshotCall(Prog, Callee, R));
      auto *F = reinterpret_cast<ShadowFrame *>(uintptr_t(E.ShadowPtr));
      F->Proc = Proc;
      F->Block = Block;
      F->Inst = Inst + 1;
      E.ShadowPtr += sizeof(ShadowFrame);
      Proc = unsigned(Callee);
      Block = 0;
      Inst = 0;
      if (!EnterBlock())
        return;
      continue;
    }
    case MOpcode::Ret: {
      if (C.Check && !C.CallRecords.empty()) {
        std::string Msg =
            sim::checkCallConvention(Prog, C.CallRecords.back(), R);
        if (!Msg.empty())
          return ErrorOut(std::move(Msg));
        C.CallRecords.pop_back();
      }
      if (Depth() == 0) {
        C.CarefulOK = true;
        C.CarefulExit = R[RegV0];
        return;
      }
      E.ShadowPtr -= sizeof(ShadowFrame);
      const auto *F =
          reinterpret_cast<const ShadowFrame *>(uintptr_t(E.ShadowPtr));
      Proc = F->Proc;
      Block = F->Block;
      Inst = size_t(F->Inst);
      continue; // mid-block resume: no block entry bookkeeping
    }
    case MOpcode::Br:
      Block = unsigned(I.Target1);
      Inst = 0;
      if (!EnterBlock())
        return;
      continue;
    case MOpcode::CondBr:
      Block = unsigned(RS != 0 ? I.Target1 : I.Target2);
      Inst = 0;
      if (!EnterBlock())
        return;
      continue;
    case MOpcode::Print:
      C.Output.push_back(RS);
      break;
    }
    ++Inst;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Helpers called from JIT code
//===----------------------------------------------------------------------===//

extern "C" {

static void ipraNativePrint(NativeEnv *E, int64_t V) {
  E->Ctx->Output.push_back(V);
}

static void ipraNativeSnapshot(NativeEnv *E, int64_t CalleeId) {
  NativeContext &C = *E->Ctx;
  C.CallRecords.push_back(sim::snapshotCall(*C.Prog, int(CalleeId), E->Regs));
}

/// \returns 0 when the convention holds (record popped), 1 when it was
/// violated (message parked for the error stub).
static uint64_t ipraNativeCheckRet(NativeEnv *E) {
  NativeContext &C = *E->Ctx;
  if (C.CallRecords.empty())
    return 0;
  std::string Msg = sim::checkCallConvention(*C.Prog, C.CallRecords.back(),
                                             E->Regs);
  if (Msg.empty()) {
    C.CallRecords.pop_back();
    return 0;
  }
  C.PendingError = std::move(Msg);
  return 1;
}

[[noreturn]] static void ipraNativeError(NativeEnv *E) {
  std::longjmp(E->Ctx->Jb, 1);
}

[[noreturn]] static void ipraNativeBail(NativeEnv *E) {
  ++E->Ctx->Bailouts;
  carefulRun(*E);
  std::longjmp(E->Ctx->Jb, 2);
}

} // extern "C"

//===----------------------------------------------------------------------===//
// Engine entry
//===----------------------------------------------------------------------===//

bool ipra::nativeEngineSupported(std::string *Why) {
#if !defined(__x86_64__) && !defined(_M_X64)
  if (Why)
    *Why = "native engine requires an x86-64 host";
  return false;
#else
  if (const char *V = std::getenv("IPRA_NATIVE_DISABLE");
      V && V[0] && !(V[0] == '0' && V[1] == '\0')) {
    if (Why)
      *Why = "native engine disabled by IPRA_NATIVE_DISABLE";
    return false;
  }
  if (!CodeBuffer::hardwareSupported()) {
    if (Why)
      *Why = "native engine requires executable memory (mmap/mprotect), "
             "which this build does not provide";
    return false;
  }
  return true;
#endif
}

namespace {

//===----------------------------------------------------------------------===//
// Code cache
//===----------------------------------------------------------------------===//
//
// Compilation is the native engine's only per-run fixed cost that does
// not shrink with the program's runtime, and the common callers
// (BatchRunner sweeps, benchmarks, the differential tests) run one
// program many times under the same options. Images are immutable once
// published -- the buffer is sealed RX and the entry table never
// changes -- so concurrent threads may execute one image simultaneously;
// the mutex only guards the map itself. Set IPRA_NATIVE_NOCACHE=1 to
// force a fresh compile per run (e.g. when measuring cold costs).

/// One compiled image, shared by every run of a structurally identical
/// program under identical codegen options.
struct CachedImage {
  CodeBuffer Buf;
  std::vector<size_t> ProcEntry;
  size_t TrampolineOff = 0;
  uint64_t ProcsEmitted = 0;
  uint64_t NumBytes = 0;
  uint64_t Check = 0; ///< Secondary fingerprint (collision guard).
  /// Static register-map counters, copied out of NativeCode so cache
  /// hits report the same sim.native.map.* numbers as the compiling run.
  uint64_t MapPins = 0;
  uint64_t CallSyncStores = 0;
  uint64_t CallReloadLoads = 0;
  uint64_t CallSyncsAvoided = 0;
  /// Native-verifier verdict, established before the image was published
  /// (images are immutable, so one clean audit covers every later run).
  /// A hit that is not Verified under a VerifyNative run is treated as a
  /// miss: the program recompiles, audits, and replaces the entry.
  bool Verified = false;
  uint64_t VerifiedProcs = 0;
};

struct Fingerprint {
  uint64_t Key = 0;   ///< Cache index (FNV-1a).
  uint64_t Check = 0; ///< Independent second hash.
};

/// Hashes every input the emitted bytes depend on: the whole MIR
/// instruction stream, the block/procedure shape (which also fixes the
/// profile-slot offsets and the register maps), the main id, the
/// codegen options (MaxSteps and the memory bound become immediates;
/// the map policy picks the emitter's whole call-boundary protocol),
/// the published clobber/param summaries the per-procedure sync sets
/// derive from, and whether the image was built for a verifying run
/// (so an unaudited image is never served where an audited one is
/// expected, independent of the CachedImage::Verified fallback).
/// Procedure names, the global image and MaxCallDepth are runtime
/// inputs and deliberately excluded. Two independent 64-bit hashes are
/// compared on lookup, so a false hit needs a simultaneous collision
/// in both.
Fingerprint fingerprintProgram(const MProgram &Prog,
                               const NativeCodeGenOptions &CG, bool PerProc,
                               bool VerifyNative) {
  uint64_t H1 = 1469598103934665603ull;
  uint64_t H2 = 0x9e3779b97f4a7c15ull;
  auto Mix = [&H1, &H2](uint64_t V) {
    H1 = (H1 ^ V) * 1099511628211ull;
    H2 = (H2 ^ (V + (H2 << 6) + (H2 >> 2))) * 0xff51afd7ed558ccdull;
  };
  auto MixMask = [&Mix](const BitVector &M) {
    uint64_t W = 1; // non-empty masks never hash like an absent one
    for (unsigned B = 0; B < M.size(); ++B)
      W = (W << 1) | uint64_t(M.test(B));
    Mix(W);
  };
  Mix(uint64_t(CG.Raw) | uint64_t(CG.Profile) << 1 |
      uint64_t(CG.Check) << 2 | uint64_t(PerProc) << 3 |
      uint64_t(VerifyNative) << 4);
  Mix(CG.MaxSteps);
  Mix(CG.MemWords);
  Mix(uint64_t(int64_t(Prog.MainProcId)));
  Mix(Prog.Procs.size());
  Mix(Prog.ClobberMasks.size());
  for (const BitVector &M : Prog.ClobberMasks)
    MixMask(M);
  Mix(Prog.ParamRegMasks.size());
  for (const BitVector &M : Prog.ParamRegMasks)
    MixMask(M);
  MixMask(Prog.DefaultClobber);
  for (const MProc &P : Prog.Procs) {
    Mix(uint64_t(P.IsExternal));
    Mix(P.Blocks.size());
    for (const MBlock &B : P.Blocks) {
      Mix(B.Insts.size());
      for (const MInst &I : B.Insts) {
        Mix(uint64_t(uint8_t(I.Op)) | uint64_t(I.Rd) << 8 |
            uint64_t(I.Rs) << 16 | uint64_t(I.Rt) << 24 |
            uint64_t(uint8_t(I.Mem)) << 32);
        Mix(uint64_t(I.Imm));
        Mix(uint64_t(uint32_t(I.Callee)) |
            uint64_t(uint32_t(I.Target1)) << 32);
        Mix(uint64_t(uint32_t(I.Target2)));
      }
    }
  }
  return {H1, H2};
}

class NativeCodeCache {
public:
  std::shared_ptr<const CachedImage> find(const Fingerprint &FP) {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Map.find(FP.Key);
    if (It == Map.end() || It->second->Check != FP.Check)
      return nullptr;
    return It->second;
  }

  void insert(const Fingerprint &FP, std::shared_ptr<const CachedImage> Img) {
    std::lock_guard<std::mutex> Lock(M);
    // Bounded by wholesale reset: in-flight runs keep their image alive
    // through their shared_ptr, so eviction is always safe.
    if (Map.size() >= MaxEntries)
      Map.clear();
    Map[FP.Key] = std::move(Img);
  }

private:
  static constexpr size_t MaxEntries = 64;
  std::mutex M;
  std::unordered_map<uint64_t, std::shared_ptr<const CachedImage>> Map;
};

NativeCodeCache &codeCache() {
  static NativeCodeCache C;
  return C;
}

// Out of line so its local never shares a frame with runNativeProgram's
// setjmp (-Wclobbered).
#if defined(__GNUC__)
__attribute__((noinline))
#endif
bool cacheDisabled() {
  const char *V = std::getenv("IPRA_NATIVE_NOCACHE");
  return V && V[0] && !(V[0] == '0' && V[1] == '\0');
}

RunStats failStats(std::string Why) {
  RunStats S;
  S.OK = false;
  S.Error = std::move(Why);
  return S;
}

void composeNativeError(RunStats &Stats, const MProgram &Prog,
                        const NativeEnv &Env, NativeContext &Ctx) {
  std::string Msg;
  bool Located = true;
  switch (NativeErr(Env.ErrorCode)) {
  case NativeErr::DivZero:
    Msg = "division by zero";
    break;
  case NativeErr::RemZero:
    Msg = "remainder by zero";
    break;
  case NativeErr::LoadOOB:
    Msg = "load out of bounds at word " + std::to_string(Env.ErrorValue);
    break;
  case NativeErr::StoreOOB:
    Msg = "store out of bounds at word " + std::to_string(Env.ErrorValue);
    break;
  case NativeErr::CallBadId:
    Msg = "call to invalid procedure id " + std::to_string(Env.ErrorValue);
    break;
  case NativeErr::CallExternal:
    Msg = "call to external procedure '" +
          Prog.Procs[size_t(Env.ErrorValue)].Name + "'";
    break;
  case NativeErr::CallDepth:
    Msg = "call depth exceeded";
    break;
  case NativeErr::Budget:
    Msg = "execution budget exceeded (infinite loop?)";
    Located = false;
    break;
  case NativeErr::Convention:
    Msg = std::move(Ctx.PendingError);
    break;
  case NativeErr::None:
    Msg = "native engine reported an unknown error";
    Located = false;
    break;
  }
  if (Located)
    Msg += " (in " + Prog.Procs[Env.ErrorProc].Name + ", block " +
           std::to_string(Env.ErrorBlock) + ")";
  Stats.OK = false;
  Stats.Error = std::move(Msg);
}

} // namespace

RunStats ipra::runNativeProgram(const MProgram &Prog, const SimOptions &Opts) {
  // Program-shape diagnostics first, with the interpreters' wording.
  if (Prog.MainProcId < 0)
    return failStats("program has no main procedure");
  const MProc &Main = Prog.Procs[Prog.MainProcId];
  if (Main.IsExternal || Main.Blocks.empty())
    return failStats("main procedure has no body");

  std::string Why;
  if (!nativeEngineSupported(&Why))
    return failStats(std::move(Why));
  if (Opts.NativeRaw && (Opts.CollectBlockProfile || Opts.CheckConventions))
    return failStats("native raw mode supports neither block profiling nor "
                     "convention checking; use the instrumented native "
                     "engine");
  if (Opts.MaxCallDepth > NativeMaxCallDepth)
    return failStats("MaxCallDepth " + std::to_string(Opts.MaxCallDepth) +
                     " exceeds the native engine's host-stack budget (max " +
                     std::to_string(NativeMaxCallDepth) + ")");

  // Lowering.
  NativeCodeGenOptions CG;
  CG.Raw = Opts.NativeRaw;
  CG.Profile = Opts.CollectBlockProfile;
  CG.Check = Opts.CheckConventions;
  CG.MaxSteps = Opts.MaxSteps;
  CG.MemWords = Opts.MemWords;
  CG.MaxBlockCost = 1;
  size_t TotalBlocks = 0;
  std::vector<size_t> ProfOff(Prog.Procs.size(), 0);
  for (unsigned P = 0; P < Prog.Procs.size(); ++P) {
    ProfOff[P] = TotalBlocks;
    TotalBlocks += Prog.Procs[P].Blocks.size();
    for (const MBlock &B : Prog.Procs[P].Blocks)
      CG.MaxBlockCost = std::max(CG.MaxBlockCost, uint64_t(B.Insts.size()));
  }

  const bool PerProc = Opts.NativeMap == SimOptions::NativeMapPolicy::PerProc;
  Fingerprint FP = fingerprintProgram(Prog, CG, PerProc, Opts.VerifyNative);
  // Armed test hooks make the emitter nondeterministic relative to the
  // fingerprint (planted defects), so mutated images must neither be
  // served from nor published to the cache.
  const bool UseCache = !cacheDisabled() && !nativeCodeGenTestHooks();
  std::shared_ptr<const CachedImage> Img;
  if (UseCache)
    Img = codeCache().find(FP);
  if (Img && Opts.VerifyNative && !Img->Verified)
    Img = nullptr; // cached by an unaudited run; recompile and audit
  if (!Img) {
    RegMapTable Maps = buildRegMapTable(Prog, Opts.NativeRaw, PerProc);
    NativeCode Code;
    std::string Err;
    if (!emitNativeProgram(Prog, CG, Maps, ProfOff, Code, Err))
      return failStats("native code generation failed: " + Err);

    NVerifyResult Audit;
    if (Opts.VerifyNative) {
      Audit = verifyNativeCode(Prog, CG, Maps, ProfOff, Code);
      if (!Audit.ok()) {
        RunStats S = failStats(
            "native verifier rejected the compiled image (" +
            std::to_string(Audit.Violations.size()) + " violation" +
            (Audit.Violations.size() == 1 ? "" : "s") + "):\n" + Audit.str());
        S.NativeVerifiedProcs = Audit.ProceduresChecked;
        S.NativeVerifyViolations = Audit.Violations.size();
        return S;
      }
    }

    auto Fresh = std::make_shared<CachedImage>();
    if (!Fresh->Buf.allocate(Code.Bytes.size(), Err))
      return failStats("native engine: " + Err);
    std::memcpy(Fresh->Buf.data(), Code.Bytes.data(), Code.Bytes.size());
    if (!Fresh->Buf.makeExecutable(Err))
      return failStats("native engine: " + Err);
    Fresh->ProcEntry = std::move(Code.ProcEntry);
    Fresh->TrampolineOff = Code.TrampolineOff;
    Fresh->ProcsEmitted = Code.ProcsEmitted;
    Fresh->NumBytes = Code.Bytes.size();
    Fresh->MapPins = Code.MapPins;
    Fresh->CallSyncStores = Code.CallSyncStores;
    Fresh->CallReloadLoads = Code.CallReloadLoads;
    Fresh->CallSyncsAvoided = Code.CallSyncsAvoided;
    Fresh->Check = FP.Check;
    Fresh->Verified = Opts.VerifyNative;
    Fresh->VerifiedProcs = Audit.ProceduresChecked;
    Img = std::move(Fresh);
    if (UseCache)
      codeCache().insert(FP, Img);
  }

  std::vector<ProcTableEntry> Table(Prog.Procs.size());
  for (unsigned P = 0; P < Prog.Procs.size(); ++P) {
    if (Img->ProcEntry[P] != size_t(-1))
      Table[P] = {Img->Buf.entry(Img->ProcEntry[P]), 1};
    else
      Table[P] = {nullptr, 0};
  }

  // Guest memory: calloc for lazy zero pages, like the decoded engine.
  std::unique_ptr<int64_t[], decltype(&std::free)> GuestMem(
      static_cast<int64_t *>(std::calloc(Opts.MemWords, sizeof(int64_t))),
      &std::free);
  if (Opts.MemWords && !GuestMem)
    return failStats("native engine: cannot allocate " +
                     std::to_string(Opts.MemWords) + " words of guest memory");
  for (size_t I = 0; I < Prog.GlobalImage.size(); ++I)
    GuestMem[I] = Prog.GlobalImage[I];

  NativeContext Ctx;
  Ctx.Prog = &Prog;
  Ctx.Profile = Opts.CollectBlockProfile;
  Ctx.Check = Opts.CheckConventions;
  Ctx.MaxCallDepth = Opts.MaxCallDepth;
  Ctx.ProfOff = std::move(ProfOff);
  if (Ctx.Profile)
    Ctx.Prof.assign(TotalBlocks, 0);

  NativeEnv Env{};
  Env.Mem = GuestMem.get();
  Env.MemWords = Opts.MemWords;
  Env.MaxSteps = Opts.MaxSteps;
  Env.Regs[RegSP] = int64_t(Opts.MemWords);
  if (Opts.NativeRaw) {
    // No shadow frames at all: the host stack mirrors guest depth at a
    // fixed byte cost per frame that depends on the register-map policy
    // (see NativeRuntime.h). ShadowLimit is pre-seeded with the span of
    // MaxCallDepth frames (plus the trampoline-to-body rsp delta); the
    // trampoline rewrites it in place as an absolute rsp floor for the
    // one-compare depth check at call sites.
    Env.ShadowBase = Env.ShadowPtr = 0;
    Env.ShadowLimit =
        PerProc
            ? uint64_t(Opts.MaxCallDepth) * RawFrameBytesPerProc +
                  RawFrameSlackPerProc
            : uint64_t(Opts.MaxCallDepth) * RawFrameBytesGlobal +
                  RawFrameSlackGlobal;
  } else {
    Ctx.Shadow.reset(new ShadowFrame[Opts.MaxCallDepth]);
    Env.ShadowBase = Env.ShadowPtr = uint64_t(uintptr_t(Ctx.Shadow.get()));
    Env.ShadowLimit =
        Env.ShadowBase + uint64_t(Opts.MaxCallDepth) * sizeof(ShadowFrame);
  }
  Env.ProfBase = Ctx.Prof.empty() ? nullptr : Ctx.Prof.data();
  Env.ProcTable = Table.data();
  Env.NumProcs = Prog.Procs.size();
  Env.FnPrint = ipraNativePrint;
  Env.FnSnapshot = ipraNativeSnapshot;
  Env.FnCheckRet = ipraNativeCheckRet;
  Env.FnBail = ipraNativeBail;
  Env.FnError = ipraNativeError;
  Env.Ctx = &Ctx;

  using EntryFn = void (*)(NativeEnv *);
  EntryFn Fn;
  const void *Entry = Img->Buf.entry(Img->TrampolineOff);
  static_assert(sizeof(Fn) == sizeof(Entry));
  std::memcpy(&Fn, &Entry, sizeof(Fn));

  RunStats Stats;
  switch (setjmp(Ctx.Jb)) {
  case 0:
    Fn(&Env);
    Stats.OK = true;
    Stats.ExitValue = Env.Regs[RegV0];
    break;
  case 1: // an error stub fired
    composeNativeError(Stats, Prog, Env, Ctx);
    break;
  default: // careful tail finished the run
    Stats.OK = Ctx.CarefulOK;
    if (Ctx.CarefulOK)
      Stats.ExitValue = Ctx.CarefulExit;
    else
      Stats.Error = std::move(Ctx.CarefulError);
    break;
  }

  Stats.Instructions = Stats.Cycles = Env.Steps;
  Stats.ScalarLoads = Env.ScalarLoads;
  Stats.ScalarStores = Env.ScalarStores;
  Stats.DataLoads = Env.DataLoads;
  Stats.DataStores = Env.DataStores;
  Stats.Calls = Env.Calls;
  Stats.Output = std::move(Ctx.Output);
  if (Ctx.Profile) {
    Stats.Profile.BlockCounts.resize(Prog.Procs.size());
    for (unsigned P = 0; P < Prog.Procs.size(); ++P) {
      size_t NB = Prog.Procs[P].Blocks.size();
      Stats.Profile.BlockCounts[P].assign(
          Ctx.Prof.begin() + Ctx.ProfOff[P],
          Ctx.Prof.begin() + Ctx.ProfOff[P] + NB);
    }
  }
  Stats.NativeProcs = Img->ProcsEmitted;
  Stats.NativeCodeBytes = Img->NumBytes;
  Stats.NativeBailouts = Ctx.Bailouts;
  Stats.NativeMapPins = Img->MapPins;
  Stats.NativeMapSyncStores = Img->CallSyncStores;
  Stats.NativeMapReloadLoads = Img->CallReloadLoads;
  Stats.NativeMapSyncsAvoided = Img->CallSyncsAvoided;
  if (Img->Verified)
    Stats.NativeVerifiedProcs = Img->VerifiedProcs; // violations stay 0
  return Stats;
}
