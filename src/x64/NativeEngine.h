//===- x64/NativeEngine.h - JIT execution engine ---------------*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native x86-64 execution engine behind SimEngine::Native: lowers
/// the program with NativeCodeGen into a CodeBuffer, runs it through a
/// trampoline, and reports the run through the same RunStats surface as
/// the interpreters. Instrumented runs are byte-exact against the
/// reference and decoded engines (RunStats::sameExecution); raw runs
/// (SimOptions::NativeRaw) trade exact budget/error accounting for
/// speed. See DESIGN.md section 14.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_X64_NATIVEENGINE_H
#define IPRA_X64_NATIVEENGINE_H

#include "sim/Simulator.h"

#include <string>

namespace ipra {

/// True when this build/host/process can execute guest programs
/// natively: an x86-64 host with executable-memory support, and the
/// IPRA_NATIVE_DISABLE environment kill switch not set. When false,
/// \p Why (if given) receives the reason; runNativeProgram reports the
/// same reason as a clean RunStats error, never a crash.
bool nativeEngineSupported(std::string *Why = nullptr);

/// Host-stack budget cap: each guest frame costs up to 48 host bytes
/// (per-procedure maps, instrumented: ret address + four callee-saved
/// pushes + the alignment pad), so deeper MaxCallDepth settings are
/// rejected cleanly rather than risking a host stack overflow
/// (131072 * 48 bytes = 6 MiB inside the common 8 MiB rlimit).
constexpr unsigned NativeMaxCallDepth = 131072;

/// Executes \p Prog natively (the SimEngine::Native dispatch target).
/// Same contract as runProgram: never throws, failures land in
/// RunStats::OK / Error.
RunStats runNativeProgram(const MProgram &Prog, const SimOptions &Opts);

} // namespace ipra

#endif // IPRA_X64_NATIVEENGINE_H
