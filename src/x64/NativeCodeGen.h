//===- x64/NativeCodeGen.h - MIR to x86-64 lowering ------------*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers an MProgram to one position-independent x86-64 code image:
/// a trampoline (C++ ABI in, pinned guest state out) plus one body per
/// procedure. Two emission modes share the ALU lowering:
///
///  * Instrumented: byte-exact replay of the decoded engine's lazy cost
///    accounting -- per-block hoisted budget tests that bail to the C++
///    careful tail interpreter, per-segment counter settlement at every
///    transfer, a shadow call stack mirroring the source-level frames,
///    optional block-profile counting and convention-check helper calls.
///  * Raw: block-granularity step/counter charging, budget checks only
///    at loop back edges and procedure entries, no shadow frames beyond
///    the depth cursor -- the pure-speed mode (exact pixie counters on
///    error-free runs, approximate on failing ones).
///
/// See DESIGN.md section 14 for the lowering contract and register map.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_X64_NATIVECODEGEN_H
#define IPRA_X64_NATIVECODEGEN_H

#include "codegen/MIR.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ipra {
namespace x64 {

struct NativeCodeGenOptions {
  bool Raw = false;
  bool Profile = false;
  bool Check = false;
  uint64_t MaxSteps = 0;
  uint64_t MemWords = 0;
  uint64_t MaxBlockCost = 1;
};

/// Guest register -> host register map: the hardware Reg number, or -1
/// when the guest register lives in NativeEnv::Regs memory.
struct RegisterMap {
  signed char GuestToHost[NumPhysRegs];
  /// Pinned guest registers whose host register is caller-saved in the
  /// SysV ABI (synced/reloaded around C++ helper calls); the rest of
  /// the pinned set sits in callee-saved hosts.
  unsigned NumPinned = 0;
};

/// Chooses the pinned set by static operand-use frequency over \p Prog
/// (hotter guest registers get callee-saved hosts, which survive helper
/// calls without a reload). Instrumented mode pins the ten hottest; raw
/// mode pins eight, because it dedicates r12 to the step count and r13
/// to the call count so straight-line blocks never touch NativeEnv's
/// counters (the memory read-modify-write chain those adds form is the
/// dominant cost on call-heavy programs).
RegisterMap chooseRegisterMap(const MProgram &Prog, bool Raw);

struct NativeCode {
  std::vector<uint8_t> Bytes;
  size_t TrampolineOff = 0;
  /// Raw mode's shared budget-error stub (SIZE_MAX when not raw): the
  /// one legal out-of-procedure branch target, which the native
  /// verifier needs to model back-edge budget checks.
  size_t RawStubOff = size_t(-1);
  /// Per-procedure body entry offsets (SIZE_MAX for procedures without
  /// a body -- direct calls to those become error stubs, like the
  /// decoded engine's CallBad/CallExt ops).
  std::vector<size_t> ProcEntry;
  uint64_t ProcsEmitted = 0;
};

/// Emits the whole program. \p ProfOff[p] is procedure p's word offset
/// into the flat profile-counter array (ignored unless Opts.Profile).
/// \returns false with a diagnostic in \p Err when the program does not
/// fit the encoder's disp32/imm32 envelope (callers must reject the
/// run cleanly, not crash).
bool emitNativeProgram(const MProgram &Prog, const NativeCodeGenOptions &Opts,
                       const RegisterMap &Map,
                       const std::vector<size_t> &ProfOff, NativeCode &Out,
                       std::string &Err);

/// Defect classes the NativeVerifier mutation harness plants into the
/// emitter, one per verifier obligation (see DESIGN.md section 15).
enum class NativeDefect {
  None,
  DropCalleeSave,       ///< Trampoline skips push/pop of r12.
  StrayStore,           ///< A store one byte past the NativeEnv region.
  SkipBudgetCheck,      ///< First back-edge-target block loses its test.
  ClobberBeyondSummary, ///< Writes a guest register outside the summary.
  CorruptByte,          ///< First body entry byte becomes undecodable.
};

struct NativeCodeGenTestHooks {
  NativeDefect Defect = NativeDefect::None;
  /// Guest register ClobberBeyondSummary writes (must be outside the
  /// victim procedure's published clobber set and not zero/sp/ra).
  unsigned GuestReg = 0;
};

/// Test-only: plants \p Hooks' defect into every subsequent
/// emitNativeProgram call until disarmed with nullptr. The native
/// engine bypasses its code cache while hooks are armed so mutated
/// images are never reused.
void setNativeCodeGenTestHooks(const NativeCodeGenTestHooks *Hooks);
const NativeCodeGenTestHooks *nativeCodeGenTestHooks();

} // namespace x64
} // namespace ipra

#endif // IPRA_X64_NATIVECODEGEN_H
