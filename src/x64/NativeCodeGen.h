//===- x64/NativeCodeGen.h - MIR to x86-64 lowering ------------*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers an MProgram to one position-independent x86-64 code image:
/// a trampoline (C++ ABI in, pinned guest state out) plus one body per
/// procedure. Two emission modes share the ALU lowering:
///
///  * Instrumented: byte-exact replay of the decoded engine's lazy cost
///    accounting -- per-block hoisted budget tests that bail to the C++
///    careful tail interpreter, per-segment counter settlement at every
///    transfer, a shadow call stack mirroring the source-level frames,
///    optional block-profile counting and convention-check helper calls.
///  * Raw: block-granularity step/counter charging, budget checks only
///    at loop back edges and procedure entries, no shadow frames beyond
///    the depth cursor -- the pure-speed mode (exact pixie counters on
///    error-free runs, approximate on failing ones).
///
/// See DESIGN.md section 14 for the lowering contract and register map.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_X64_NATIVECODEGEN_H
#define IPRA_X64_NATIVECODEGEN_H

#include "codegen/MIR.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ipra {
namespace x64 {

struct NativeCodeGenOptions {
  bool Raw = false;
  bool Profile = false;
  bool Check = false;
  uint64_t MaxSteps = 0;
  uint64_t MemWords = 0;
  uint64_t MaxBlockCost = 1;
};

/// Guest register -> host register map: the hardware Reg number, or -1
/// when the guest register lives in NativeEnv::Regs memory.
struct RegisterMap {
  signed char GuestToHost[NumPhysRegs];
  /// Pinned guest registers whose host register is caller-saved in the
  /// SysV ABI (synced/reloaded around C++ helper calls); the rest of
  /// the pinned set sits in callee-saved hosts.
  unsigned NumPinned = 0;
};

/// Chooses the program-wide pinned set by static operand-use frequency
/// over \p Prog (hotter guest registers get callee-saved hosts, which
/// survive helper calls without a reload). Instrumented mode pins the
/// ten hottest; raw mode pins eight, because it dedicates r12 to the
/// step count and r13 to the call count so straight-line blocks never
/// touch NativeEnv's counters. This is the global policy: zero
/// per-activation cost (the trampoline loads the pins once per run),
/// which on small programs makes it a hard wall-clock baseline for the
/// per-procedure policy -- see the honest comparison in EXPERIMENTS.md.
RegisterMap chooseRegisterMap(const MProgram &Prog, bool Raw);

/// The register-map policy as one shared artifact: either the single
/// program-wide map (PerProc == false; Maps empty) or one map per
/// procedure, chosen from that procedure's own loop-weighted operand
/// frequencies, plus the summary-derived call-boundary masks the sync
/// protocol consumes (see NativeRuntime.h). Bit g of a mask is guest
/// register g; an all-ones mask means "no contract, assume everything"
/// (hand-built programs, indirect calls without a default clobber).
struct RegMapTable {
  bool PerProc = false;
  RegisterMap Global;
  std::vector<RegisterMap> Maps; ///< Per procedure (PerProc only).
  /// Per callee: guests a caller must write back before a direct call
  /// (clobber mask U param regs U {zero, sp, ra}).
  std::vector<uint32_t> CallSync;
  /// Per callee: guests a caller must reload after a direct call (the
  /// clobber mask alone -- reads do not invalidate cached values).
  std::vector<uint32_t> CallReload;
  uint32_t IndSync = ~0u;   ///< Indirect-call sync set (default clobber).
  uint32_t IndReload = ~0u; ///< Indirect-call reload set.
  /// Per callee: volatile pin hosts the callee may (transitively)
  /// overwrite -- its own volatile pins, everything if it can reach a
  /// returning helper call (Print) or an indirect call, plus its direct
  /// callees' masks. Bit h is *host* register h (contrast the guest
  /// masks above). Callee-saved hosts never appear: push/pop discipline
  /// restores them on every path that returns. A caller's volatile pin
  /// survives a call whose callee cannot touch its host (raw mode; see
  /// rawCallBoundary), which is the paper's penalty elision applied to
  /// the hosts themselves.
  std::vector<uint32_t> HostClobber;
  uint32_t IndHostClobber = ~0u; ///< Indirect calls: assume all hosts.

  /// Ablation: call boundaries carry no interprocedural information
  /// (see blindBoundaries). Emitter and verifier both honor it through
  /// agreementMapFor, so the pair stays consistent.
  bool SummaryBlind = false;

  const RegisterMap &mapFor(size_t Proc) const {
    return PerProc ? Maps[Proc] : Global;
  }

  /// The callee map rawCallBoundary may use for same-host agreement at
  /// a direct call, or null under the summary-blind ablation (a
  /// convention-only caller knows nothing about the callee's map).
  const RegisterMap *agreementMapFor(size_t Callee) const {
    return SummaryBlind ? nullptr : &Maps[Callee];
  }

  /// Degrades every call boundary to the paper's convention-only
  /// baseline: saturated sync/reload/host-clobber masks and no
  /// same-host agreement, i.e. each call site assumes the callee reads
  /// and clobbers everything. The per-procedure maps themselves are
  /// untouched -- only the interprocedural information is withheld, so
  /// comparing traffic against an unblinded image isolates exactly
  /// what the summaries buy.
  void blindBoundaries() {
    SummaryBlind = true;
    for (uint32_t &M : CallSync)
      M = ~0u;
    for (uint32_t &M : CallReload)
      M = ~0u;
    for (uint32_t &M : HostClobber)
      M = ~0u;
  }
};
static_assert(NumPhysRegs <= 32, "sync masks are uint32_t bitsets");

/// Hosts the per-procedure chooser may hand out as volatile pins: SysV
/// caller-saved registers the emitter never uses as scratch or helper
/// arguments. Bit h of the mask is hardware register number h.
uint32_t volPinHostMask();

/// One raw-mode call boundary under per-procedure maps, as guest-register
/// sets over the caller's pinned guests. SyncNeed: guests whose slot must
/// be current before the call (sync if dirty). ReloadNeed: guests whose
/// host must be reloaded from its slot after the call. A volatile-hosted
/// pin outside both sets is *carried*: the callee provably leaves its
/// host untouched and its value unredefined, so it rides through the
/// call in the register -- no penalty. When the callee pins the same
/// guest in the same volatile host, the caller must still sync (the
/// callee's entry reload reads the slot) but skips the reload (the
/// callee's epilogue leaves the host holding the guest's current value).
struct CallBoundary {
  uint32_t SyncNeed = 0;
  uint32_t ReloadNeed = 0;
};

/// Computes the boundary for a direct call from a procedure mapped by
/// \p Caller to a callee with sync/reload masks \p CalleeSync /
/// \p CalleeReload, host-clobber mask \p CalleeHostClobber and map
/// \p Callee (null for indirect calls: no host agreement possible).
/// Shared by the emitter and the native verifier so the emitted shapes
/// and the checked obligations cannot drift apart.
CallBoundary rawCallBoundary(const RegisterMap &Caller, uint32_t CalleeSync,
                             uint32_t CalleeReload, uint32_t CalleeHostClobber,
                             const RegisterMap *Callee);

/// Builds the whole map policy for \p Prog: chooseRegisterMap when
/// \p PerProc is false, otherwise per-procedure maps plus the sync/reload
/// masks derived from MProgram::ClobberMasks / ParamRegMasks.
RegMapTable buildRegMapTable(const MProgram &Prog, bool Raw, bool PerProc);

struct NativeCode {
  std::vector<uint8_t> Bytes;
  size_t TrampolineOff = 0;
  /// Raw mode's shared budget-error stub (SIZE_MAX when not raw): the
  /// one legal out-of-procedure branch target, which the native
  /// verifier needs to model back-edge budget checks.
  size_t RawStubOff = size_t(-1);
  /// Per-procedure body entry offsets (SIZE_MAX for procedures without
  /// a body -- direct calls to those become error stubs, like the
  /// decoded engine's CallBad/CallExt ops).
  std::vector<size_t> ProcEntry;
  uint64_t ProcsEmitted = 0;

  /// Static map-policy counters (surfaced as sim.native.map.*): total
  /// pins across emitted bodies, sync/reload stores emitted at guest
  /// call sites, and dirty-pin syncs the callee's summary proved
  /// unnecessary (the paper's penalty actually avoided).
  uint64_t MapPins = 0;
  uint64_t CallSyncStores = 0;
  uint64_t CallReloadLoads = 0;
  uint64_t CallSyncsAvoided = 0;

  /// Per procedure, per MIR block: register-state memory operations on
  /// the block's straight-line path -- guest-slot loads and stores for
  /// unpinned operands, call-boundary sync stores and reload loads,
  /// and epilogue restores/write-backs. Out-of-line stubs (bail, error)
  /// are excluded; they never run on an error-free run. Weighted by
  /// per-block execution counts this is the dynamic register-state
  /// memory traffic of the emitted code -- the host-level analogue of
  /// the paper's register usage penalty (memory operations spent
  /// keeping guest register state consistent).
  std::vector<std::vector<uint32_t>> BlockSlotOps;
  /// The call-boundary subset of BlockSlotOps: sync stores and reload
  /// loads emitted at guest call sites (also included in BlockSlotOps).
  /// Weighted by block counts this is the paper's register usage
  /// penalty at procedure calls -- the traffic the summary-driven
  /// boundary exists to minimize.
  std::vector<std::vector<uint32_t>> BlockCallOps;
  /// Per procedure: activation overhead (prologue host-register saves
  /// plus pinned-guest entry reloads), charged once per return when
  /// computing traffic. Zero under the global map, whose pins live for
  /// the whole run.
  std::vector<uint32_t> ProcEntryOps;
};

/// Dynamic register-state memory traffic of an emitted image: sum over
/// blocks of execution count times the chosen per-block op counts, plus
/// (when \p CallBoundaryOnly is false) each procedure's ProcEntryOps
/// charged once per executed return. With \p CallBoundaryOnly true only
/// BlockCallOps is summed -- the paper's penalty metric, register
/// save/restore traffic at procedure-call sites. \p BlockCounts is
/// RunStats::Profile's per-procedure, per-block execution counts
/// (machine blocks map 1:1 onto profile blocks); procedures or blocks
/// outside its coverage contribute nothing. Deterministic: depends only
/// on the program, the map policy, and the profile -- never on
/// wall-clock timing.
uint64_t nativeMapTraffic(const MProgram &Prog, const NativeCode &Code,
                          const std::vector<std::vector<uint64_t>> &BlockCounts,
                          bool CallBoundaryOnly = false);

/// Emits the whole program. \p ProfOff[p] is procedure p's word offset
/// into the flat profile-counter array (ignored unless Opts.Profile).
/// \returns false with a diagnostic in \p Err when the program does not
/// fit the encoder's disp32/imm32 envelope (callers must reject the
/// run cleanly, not crash).
bool emitNativeProgram(const MProgram &Prog, const NativeCodeGenOptions &Opts,
                       const RegMapTable &Maps,
                       const std::vector<size_t> &ProfOff, NativeCode &Out,
                       std::string &Err);

/// Defect classes the NativeVerifier mutation harness plants into the
/// emitter, one per verifier obligation (see DESIGN.md section 15).
enum class NativeDefect {
  None,
  DropCalleeSave,       ///< Trampoline skips push/pop of r12.
  StrayStore,           ///< A store one byte past the NativeEnv region.
  SkipBudgetCheck,      ///< First back-edge-target block loses its test.
  ClobberBeyondSummary, ///< Writes a guest register outside the summary.
  CorruptByte,          ///< First body entry byte becomes undecodable.
  SkipCallSync,         ///< Per-proc maps: call-site sync set omits one
                        ///< dirty register the callee's summary covers.
  SkipCallReload,       ///< Per-proc maps: post-call reload of summary-
                        ///< clobbered pins is dropped (stale hosts).
};

struct NativeCodeGenTestHooks {
  NativeDefect Defect = NativeDefect::None;
  /// Guest register ClobberBeyondSummary writes (must be outside the
  /// victim procedure's published clobber set and not zero/sp/ra).
  unsigned GuestReg = 0;
};

/// Test-only: plants \p Hooks' defect into every subsequent
/// emitNativeProgram call until disarmed with nullptr. The native
/// engine bypasses its code cache while hooks are armed so mutated
/// images are never reused.
void setNativeCodeGenTestHooks(const NativeCodeGenTestHooks *Hooks);
const NativeCodeGenTestHooks *nativeCodeGenTestHooks();

} // namespace x64
} // namespace ipra

#endif // IPRA_X64_NATIVECODEGEN_H
