//===- x64/X64Decoder.cpp - Decoder for the JIT's instruction set ---------===//
//
// Exact-inverse decoding of X64Assembler output. Layout of the decode
// switch mirrors the hardware encoding scheme the assembler uses:
//
//  * No-prefix opcodes first (ret, rel32 jumps/calls, the 0F page,
//    push/pop, FF /2), then the lone legal bare REX prefix 0x41
//    (push/pop/callM touching r8..r15), then the REX.W page carrying
//    every 64-bit form.
//
//  * Memory operands accept exactly the two shapes the assembler emits:
//    mod=10 [base+disp32] (SIB only for rsp/r12 bases) and the mod=00
//    SIB scale=8 guest-memory access. Everything else -- disp8 forms,
//    other scales, RIP-relative, missing REX.W -- is a decode error,
//    not a tolerated variant, so the verifier's re-encode check can
//    prove byte identity instead of mere semantic equivalence.
//
//===----------------------------------------------------------------------===//

#include "x64/X64Decoder.h"

#include <algorithm>
#include <cassert>

using namespace ipra;
using namespace ipra::x64;

namespace {

const char *const FormNames[] = {
    "mov-rr",         "mov-rm",     "mov-mr",    "mov-ri32", "mov-ri64",
    "mov-mi",         "mov-rm-scaled8", "mov-mr-scaled8", "movsxd",
    "movzx-r8",       "alu-rr",     "alu-rm",    "alu-mr",   "alu-ri",
    "alu-mi",         "imul-rr",    "cqo",       "idiv",     "neg",
    "not",            "shl-cl",     "sar-cl",    "shl-ri",   "test-rr",
    "setcc-r8",       "jmp",        "jcc",       "call",     "call-m",
    "ret",            "push",       "pop",
};

std::string hexOff(size_t Off) {
  static const char Digits[] = "0123456789abcdef";
  std::string S;
  do {
    S.insert(S.begin(), Digits[Off & 15]);
    Off >>= 4;
  } while (Off);
  return "+0x" + S;
}

/// True when \p V is a group-1 ALU selector the assembler knows.
bool validAlu(unsigned V) {
  switch (Alu(V)) {
  case Alu::Add:
  case Alu::Or:
  case Alu::And:
  case Alu::Sub:
  case Alu::Xor:
  case Alu::Cmp:
    return true;
  }
  return false;
}

/// Decode state for one instruction: a cursor plus the REX fields.
struct Decode {
  const uint8_t *Buf;
  size_t Size;
  size_t Off; ///< Instruction start (for diagnostics).
  size_t P;   ///< Read cursor.
  std::string &Why;
  unsigned RexR = 0, RexX = 0, RexB = 0;

  Decode(const uint8_t *Buf, size_t Size, size_t Off, std::string &Why)
      : Buf(Buf), Size(Size), Off(Off), P(Off), Why(Why) {}

  bool fail(const std::string &Reason) {
    Why = hexOff(Off) + ": " + Reason;
    return false;
  }

  bool byte(uint8_t &B) {
    if (P >= Size)
      return fail("truncated instruction");
    B = Buf[P++];
    return true;
  }

  bool imm32(int64_t &V) {
    if (P + 4 > Size)
      return fail("truncated imm32/disp32");
    uint32_t U = 0;
    for (int I = 3; I >= 0; --I)
      U = (U << 8) | Buf[P + size_t(I)];
    P += 4;
    V = int64_t(int32_t(U));
    return true;
  }

  bool imm64(int64_t &V) {
    if (P + 8 > Size)
      return fail("truncated imm64");
    uint64_t U = 0;
    for (int I = 7; I >= 0; --I)
      U = (U << 8) | Buf[P + size_t(I)];
    P += 8;
    V = int64_t(U);
    return true;
  }

  /// ModRM mod=11: \p RegF gets reg|REX.R, \p RM gets rm|REX.B.
  bool regForm(uint8_t ModRM, Reg &RegF, Reg &RM) {
    if ((ModRM >> 6) != 3)
      return false;
    if (RexX)
      return fail("REX.X on a register-form instruction");
    RegF = Reg(((ModRM >> 3) & 7) | (RexR << 3));
    RM = Reg((ModRM & 7) | (RexB << 3));
    return true;
  }

  /// ModRM mod=10 [base+disp32], the assembler's only plain memory
  /// shape. rsp/r12 bases carry the mandatory one-byte SIB (0x24).
  bool memForm(uint8_t ModRM, Mem &M) {
    if (((ModRM >> 6) & 3) != 2)
      return fail("memory operand is not the canonical [base+disp32]");
    if (RexX)
      return fail("REX.X on an unscaled memory operand");
    unsigned RM = ModRM & 7;
    if (RM == 4) {
      uint8_t Sib;
      if (!byte(Sib))
        return false;
      if (Sib != 0x24)
        return fail("non-canonical SIB for an rsp/r12 base");
      M.Base = Reg(4 | (RexB << 3));
    } else {
      M.Base = Reg(RM | (RexB << 3));
    }
    int64_t D;
    if (!imm32(D))
      return false;
    M.Disp = int32_t(D);
    return true;
  }

  /// ModRM mod=00 rm=100 with a scale-8 SIB: the guest-memory access.
  bool scaledForm(uint8_t ModRM, Reg &Base, Reg &Index) {
    if (((ModRM >> 6) & 3) != 0 || (ModRM & 7) != 4)
      return fail("expected the mod=00 SIB guest-memory form");
    uint8_t Sib;
    if (!byte(Sib))
      return false;
    if ((Sib >> 6) != 3)
      return fail("guest-memory access must scale by 8");
    unsigned IdxBits = (Sib >> 3) & 7;
    unsigned BaseBits = Sib & 7;
    if (IdxBits == 4 && !RexX)
      return fail("scaled access without an index register");
    if (BaseBits == 5)
      return fail("mod=00 with an rbp/r13 base needs a displacement");
    Index = Reg(IdxBits | (RexX << 3));
    Base = Reg(BaseBits | (RexB << 3));
    return true;
  }
};

/// The REX.W page: every 64-bit form. \p Op is the byte after the REX.
bool decodeW(Decode &D, uint8_t Rex, uint8_t Op, DecodedInst &I) {
  D.RexR = (Rex >> 2) & 1;
  D.RexX = (Rex >> 1) & 1;
  D.RexB = Rex & 1;

  // cqo is exactly 48 99: any REX bit beyond W is not the assembler's.
  if (Op == 0x99) {
    if (Rex != 0x48)
      return D.fail("cqo with stray REX bits");
    I.Form = IForm::Cqo;
    return true;
  }

  if (Op >= 0xB8 && Op <= 0xBF) {
    if (D.RexR || D.RexX)
      return D.fail("movabs with stray REX bits");
    I.Form = IForm::MovRI64;
    I.R1 = Reg((Op & 7) | (D.RexB << 3));
    return D.imm64(I.Imm);
  }

  uint8_t ModRM;
  Reg RegF, RM;

  switch (Op) {
  case 0x0F: { // two-byte page: imul / movzx
    uint8_t Op2;
    if (!D.byte(Op2) || !D.byte(ModRM))
      return false;
    if (!D.regForm(ModRM, RegF, RM))
      return D.fail("0F-page instruction with a memory operand");
    if (Op2 == 0xAF) {
      I.Form = IForm::ImulRR;
    } else if (Op2 == 0xB6) {
      if (RM > RBX)
        return D.fail("movzx source is not a low byte register");
      I.Form = IForm::MovzxRR8;
    } else {
      return D.fail("unknown 0F-page opcode");
    }
    I.R1 = RegF;
    I.R2 = RM;
    return true;
  }

  case 0x63: // movsxd
    if (!D.byte(ModRM))
      return false;
    if (!D.regForm(ModRM, RegF, RM))
      return D.fail("movsxd with a memory operand");
    I.Form = IForm::MovsxdRR;
    I.R1 = RegF;
    I.R2 = RM;
    return true;

  case 0x89: // mov store form: RR (mod=11), MR (mod=10), scaled MR
    if (!D.byte(ModRM))
      return false;
    switch (ModRM >> 6) {
    case 3:
      if (!D.regForm(ModRM, RegF, RM))
        return false;
      I.Form = IForm::MovRR;
      I.R1 = RM;   // dst
      I.R2 = RegF; // src
      return true;
    case 2:
      I.Form = IForm::MovMR;
      I.R1 = Reg(((ModRM >> 3) & 7) | (D.RexR << 3));
      return D.memForm(ModRM, I.M);
    case 0:
      I.Form = IForm::MovMRScaled8;
      I.R1 = Reg(((ModRM >> 3) & 7) | (D.RexR << 3));
      return D.scaledForm(ModRM, I.M.Base, I.R2);
    default:
      return D.fail("non-canonical mov addressing mode");
    }

  case 0x8B: // mov load form: RM (mod=10), scaled RM
    if (!D.byte(ModRM))
      return false;
    switch (ModRM >> 6) {
    case 2:
      I.Form = IForm::MovRM;
      I.R1 = Reg(((ModRM >> 3) & 7) | (D.RexR << 3));
      return D.memForm(ModRM, I.M);
    case 0:
      I.Form = IForm::MovRMScaled8;
      I.R1 = Reg(((ModRM >> 3) & 7) | (D.RexR << 3));
      return D.scaledForm(ModRM, I.M.Base, I.R2);
    default:
      // mod=11 would be a second encoding of mov r,r: the assembler's
      // canonical register move is the 89 store form.
      return D.fail("non-canonical mov load form");
    }

  case 0xC7: // mov imm32: register (mod=11) or memory (mod=10)
    if (!D.byte(ModRM))
      return false;
    if (((ModRM >> 3) & 7) != 0)
      return D.fail("C7 with a non-zero reg field");
    if ((ModRM >> 6) == 3) {
      if (!D.regForm(ModRM, RegF, RM))
        return false;
      I.Form = IForm::MovRI32;
      I.R1 = RM;
      return D.imm32(I.Imm);
    }
    I.Form = IForm::MovMI;
    return D.memForm(ModRM, I.M) && D.imm32(I.Imm);

  case 0x81: // group-1 ALU imm32
    if (!D.byte(ModRM))
      return false;
    if (!validAlu((ModRM >> 3) & 7))
      return D.fail("unknown ALU immediate extension");
    I.Op = Alu((ModRM >> 3) & 7);
    if ((ModRM >> 6) == 3) {
      if (D.RexX)
        return D.fail("REX.X on a register-form instruction");
      I.Form = IForm::AluRI;
      I.R1 = Reg((ModRM & 7) | (D.RexB << 3));
      return D.imm32(I.Imm);
    }
    I.Form = IForm::AluMI;
    return D.memForm(ModRM, I.M) && D.imm32(I.Imm);

  case 0x85: // test rr
    if (!D.byte(ModRM))
      return false;
    if (!D.regForm(ModRM, RegF, RM))
      return D.fail("test with a memory operand");
    I.Form = IForm::TestRR;
    I.R1 = RM;   // first assembler operand
    I.R2 = RegF; // second
    return true;

  case 0xC1: // shl r, imm8
    if (!D.byte(ModRM))
      return false;
    if (((ModRM >> 3) & 7) != 4)
      return D.fail("C1 extension is not shl");
    if (!D.regForm(ModRM, RegF, RM))
      return D.fail("shl-imm with a memory operand");
    I.Form = IForm::ShlRI;
    I.R1 = RM;
    uint8_t Amt;
    if (!D.byte(Amt))
      return false;
    I.Imm = Amt;
    return true;

  case 0xD3: // shift by cl
    if (!D.byte(ModRM))
      return false;
    if (!D.regForm(ModRM, RegF, RM))
      return D.fail("cl-shift with a memory operand");
    if (RegF == Reg(4))
      I.Form = IForm::ShlCL;
    else if (RegF == Reg(7))
      I.Form = IForm::SarCL;
    else
      return D.fail("unknown D3 shift extension");
    I.R1 = RM;
    return true;

  case 0xF7: // group-3 unary
    if (!D.byte(ModRM))
      return false;
    if (!D.regForm(ModRM, RegF, RM))
      return D.fail("group-3 op with a memory operand");
    if (RegF == Reg(7))
      I.Form = IForm::IdivR;
    else if (RegF == Reg(3))
      I.Form = IForm::NegR;
    else if (RegF == Reg(2))
      I.Form = IForm::NotR;
    else
      return D.fail("unknown group-3 extension");
    I.R1 = RM;
    return true;

  default:
    break;
  }

  // Group-1 ALU register/memory opcodes: op*8+3 is the RM "load" form
  // (also the canonical reg/reg), op*8+1 the MR "store" form.
  if ((Op & 7) == 3 && validAlu(Op >> 3)) {
    if (!D.byte(ModRM))
      return false;
    I.Op = Alu(Op >> 3);
    if ((ModRM >> 6) == 3) {
      if (!D.regForm(ModRM, RegF, RM))
        return false;
      I.Form = IForm::AluRR;
      I.R1 = RegF; // dst
      I.R2 = RM;   // src
      return true;
    }
    I.Form = IForm::AluRM;
    I.R1 = Reg(((ModRM >> 3) & 7) | (D.RexR << 3));
    return D.memForm(ModRM, I.M);
  }
  if ((Op & 7) == 1 && validAlu(Op >> 3)) {
    if (!D.byte(ModRM))
      return false;
    if ((ModRM >> 6) == 3)
      return D.fail("non-canonical ALU reg/reg store form");
    I.Op = Alu(Op >> 3);
    I.Form = IForm::AluMR;
    I.R1 = Reg(((ModRM >> 3) & 7) | (D.RexR << 3));
    return D.memForm(ModRM, I.M);
  }

  return D.fail("unknown REX.W opcode");
}

/// call qword [base+disp32] (FF /2); \p HighBase when the 41 prefix
/// extended the base register.
bool decodeCallM(Decode &D, bool HighBase, DecodedInst &I) {
  D.RexB = HighBase ? 1 : 0;
  uint8_t ModRM;
  if (!D.byte(ModRM))
    return false;
  if (((ModRM >> 3) & 7) != 2)
    return D.fail("FF extension is not call");
  I.Form = IForm::CallM;
  return D.memForm(ModRM, I.M);
}

} // namespace

const char *ipra::x64::formName(IForm F) {
  static_assert(sizeof(FormNames) / sizeof(FormNames[0]) ==
                    unsigned(IForm::PopR) + 1,
                "form name table out of sync");
  return FormNames[unsigned(F)];
}

bool ipra::x64::decodeInst(const uint8_t *Buf, size_t Size, size_t Off,
                           DecodedInst &Out, std::string &Why) {
  Out = DecodedInst();
  Out.Offset = Off;
  Decode D(Buf, Size, Off, Why);
  uint8_t B0;
  if (!D.byte(B0))
    return false;

  bool OK = false;
  switch (B0) {
  case 0xC3:
    Out.Form = IForm::Ret;
    OK = true;
    break;
  case 0xE9:
  case 0xE8: {
    Out.Form = B0 == 0xE9 ? IForm::Jmp : IForm::Call;
    int64_t R;
    OK = D.imm32(R);
    Out.Rel = int32_t(R);
    break;
  }
  case 0x0F: { // jcc rel32 / setcc (the only REX-less 0F users)
    uint8_t Op2;
    if (!D.byte(Op2))
      return false;
    if ((Op2 & 0xF0) == 0x80) {
      Out.Form = IForm::Jcc;
      Out.CC = Cond(Op2 & 15);
      int64_t R;
      OK = D.imm32(R);
      Out.Rel = int32_t(R);
    } else if ((Op2 & 0xF0) == 0x90) {
      uint8_t ModRM;
      if (!D.byte(ModRM))
        return false;
      if ((ModRM & 0xF8) != 0xC0 || (ModRM & 7) > 3)
        return D.fail("setcc destination is not a low byte register");
      Out.Form = IForm::SetccR8;
      Out.CC = Cond(Op2 & 15);
      Out.R1 = Reg(ModRM & 7);
      OK = true;
    } else {
      return D.fail("unknown REX-less 0F opcode");
    }
    break;
  }
  case 0xFF:
    OK = decodeCallM(D, /*HighBase=*/false, Out);
    break;
  case 0x41: { // bare REX.B: push/pop/callM on r8..r15
    uint8_t B1;
    if (!D.byte(B1))
      return false;
    if (B1 >= 0x50 && B1 <= 0x5F) {
      Out.Form = B1 < 0x58 ? IForm::PushR : IForm::PopR;
      Out.R1 = Reg(8 + (B1 & 7));
      OK = true;
    } else if (B1 == 0xFF) {
      OK = decodeCallM(D, /*HighBase=*/true, Out);
    } else {
      return D.fail("unknown opcode after a bare 41 prefix");
    }
    break;
  }
  default:
    if (B0 >= 0x50 && B0 <= 0x5F) {
      Out.Form = B0 < 0x58 ? IForm::PushR : IForm::PopR;
      Out.R1 = Reg(B0 & 7);
      OK = true;
    } else if (B0 >= 0x48 && B0 <= 0x4F) {
      uint8_t Op;
      if (!D.byte(Op))
        return false;
      OK = decodeW(D, B0, Op, Out);
    } else {
      return D.fail("unknown opcode byte");
    }
    break;
  }
  if (!OK)
    return false;
  size_t Len = D.P - Off;
  assert(Len > 0 && Len <= 15 && "impossible x86-64 instruction length");
  Out.Len = uint8_t(Len);
  return true;
}

void ipra::x64::reencode(const DecodedInst &I, Assembler &A) {
  switch (I.Form) {
  case IForm::MovRR:
    A.movRR(I.R1, I.R2);
    break;
  case IForm::MovRM:
    A.movRM(I.R1, I.M);
    break;
  case IForm::MovMR:
    A.movMR(I.M, I.R1);
    break;
  case IForm::MovRI32:
  case IForm::MovRI64:
    // movRI picks the short form iff the value fits in simm32, so a
    // MovRI64 carrying a small immediate re-encodes shorter than the
    // original bytes -- exactly the mismatch the round-trip check wants
    // to expose for non-canonical input.
    A.movRI(I.R1, I.Imm);
    break;
  case IForm::MovMI:
    A.movMI(I.M, int32_t(I.Imm));
    break;
  case IForm::MovRMScaled8:
    A.movRMScaled8(I.R1, I.M.Base, I.R2);
    break;
  case IForm::MovMRScaled8:
    A.movMRScaled8(I.M.Base, I.R2, I.R1);
    break;
  case IForm::MovsxdRR:
    A.movsxdRR(I.R1, I.R2);
    break;
  case IForm::MovzxRR8:
    A.movzxRR8(I.R1, I.R2);
    break;
  case IForm::AluRR:
    A.aluRR(I.Op, I.R1, I.R2);
    break;
  case IForm::AluRM:
    A.aluRM(I.Op, I.R1, I.M);
    break;
  case IForm::AluMR:
    A.aluMR(I.Op, I.M, I.R1);
    break;
  case IForm::AluRI:
    A.aluRI(I.Op, I.R1, int32_t(I.Imm));
    break;
  case IForm::AluMI:
    A.aluMI(I.Op, I.M, int32_t(I.Imm));
    break;
  case IForm::ImulRR:
    A.imulRR(I.R1, I.R2);
    break;
  case IForm::Cqo:
    A.cqo();
    break;
  case IForm::IdivR:
    A.idivR(I.R1);
    break;
  case IForm::NegR:
    A.negR(I.R1);
    break;
  case IForm::NotR:
    A.notR(I.R1);
    break;
  case IForm::ShlCL:
    A.shlCL(I.R1);
    break;
  case IForm::SarCL:
    A.sarCL(I.R1);
    break;
  case IForm::ShlRI:
    A.shlRI(I.R1, uint8_t(I.Imm));
    break;
  case IForm::TestRR:
    A.testRR(I.R1, I.R2);
    break;
  case IForm::SetccR8:
    A.setccR8(I.CC, I.R1);
    break;
  case IForm::Jmp:
    A.jmpRel32(I.Rel);
    break;
  case IForm::Jcc:
    A.jccRel32(I.CC, I.Rel);
    break;
  case IForm::Call:
    A.callRel32(I.Rel);
    break;
  case IForm::CallM:
    A.callM(I.M);
    break;
  case IForm::Ret:
    A.ret();
    break;
  case IForm::PushR:
    A.pushR(I.R1);
    break;
  case IForm::PopR:
    A.popR(I.R1);
    break;
  }
}

int ipra::x64::DecodedRegion::blockAt(size_t Off) const {
  for (unsigned B = 0; B < Blocks.size(); ++B)
    if (Insts[Blocks[B].FirstInst].Offset == Off)
      return int(B);
  return -1;
}

bool ipra::x64::decodeRegion(const uint8_t *Buf, size_t Size, size_t Begin,
                             size_t End, const CFGPolicy &Policy,
                             DecodedRegion &Out, std::string &Why) {
  Out = DecodedRegion();
  Out.Begin = Begin;
  Out.End = End;
  if (Begin > End || End > Size) {
    Why = hexOff(Begin) + ": region out of image bounds";
    return false;
  }

  // Linear decode: every byte of the region must belong to exactly one
  // instruction (check (a) of the native verifier).
  for (size_t P = Begin; P < End;) {
    DecodedInst I;
    if (!decodeInst(Buf, Size, P, I, Why))
      return false;
    if (P + I.Len > End) {
      Why = hexOff(P) + ": instruction spills past the region end";
      return false;
    }
    Out.Insts.push_back(I);
    P += I.Len;
  }

  // Instruction boundary lookup (offset -> index), then target checks.
  auto IndexAt = [&Out, Begin](size_t Off) -> int {
    // Offsets are strictly increasing: binary search.
    size_t Lo = 0, Hi = Out.Insts.size();
    while (Lo < Hi) {
      size_t Mid = (Lo + Hi) / 2;
      if (Out.Insts[Mid].Offset < Off)
        Lo = Mid + 1;
      else
        Hi = Mid;
    }
    if (Lo < Out.Insts.size() && Out.Insts[Lo].Offset == Off)
      return int(Lo);
    (void)Begin;
    return -1;
  };
  auto IsExternal = [&Policy](size_t Off) {
    return std::find(Policy.ExternalTargets.begin(),
                     Policy.ExternalTargets.end(),
                     Off) != Policy.ExternalTargets.end();
  };

  std::vector<char> Leader(Out.Insts.size(), 0);
  if (!Leader.empty())
    Leader[0] = 1;
  for (size_t N = 0; N < Out.Insts.size(); ++N) {
    const DecodedInst &I = Out.Insts[N];
    if (I.isBranch()) {
      size_t Tgt = I.target();
      if (Tgt >= Begin && Tgt < End) {
        int TN = IndexAt(Tgt);
        if (TN < 0) {
          Why = hexOff(I.Offset) + ": branch into the middle of an "
                                   "instruction at " +
                hexOff(Tgt);
          return false;
        }
        Leader[size_t(TN)] = 1;
      } else if (!IsExternal(Tgt)) {
        Why = hexOff(I.Offset) + ": branch leaves the region (target " +
              hexOff(Tgt) + ")";
        return false;
      }
      if (N + 1 < Out.Insts.size())
        Leader[N + 1] = 1;
    } else if (I.Form == IForm::Ret ||
               (I.isCall() && Policy.IsNoReturnCall &&
                Policy.IsNoReturnCall(I))) {
      if (N + 1 < Out.Insts.size())
        Leader[N + 1] = 1;
    } else if (I.Form == IForm::Call && !Policy.CallTargets.empty()) {
      size_t Tgt = I.target();
      if (std::find(Policy.CallTargets.begin(), Policy.CallTargets.end(),
                    Tgt) == Policy.CallTargets.end()) {
        Why = hexOff(I.Offset) + ": call targets " + hexOff(Tgt) +
              ", which is no procedure entry";
        return false;
      }
    }
  }

  // Split at leaders and wire successors.
  Out.BlockOf.assign(Out.Insts.size(), -1);
  for (size_t N = 0; N < Out.Insts.size(); ++N) {
    if (Leader[N]) {
      Out.Blocks.push_back({unsigned(N), 0, -1, -1});
    }
    Out.Blocks.back().NumInsts++;
    Out.BlockOf[N] = int(Out.Blocks.size()) - 1;
  }
  for (auto &B : Out.Blocks) {
    const DecodedInst &T = Out.Insts[B.FirstInst + B.NumInsts - 1];
    size_t NextIdx = B.FirstInst + B.NumInsts;
    auto BlockOfTarget = [&](size_t Tgt) -> int {
      if (Tgt < Begin || Tgt >= End)
        return -1; // external (validated above)
      int TN = IndexAt(Tgt);
      assert(TN >= 0);
      return Out.BlockOf[size_t(TN)];
    };
    if (T.Form == IForm::Jmp) {
      B.Succ1 = BlockOfTarget(T.target());
    } else if (T.Form == IForm::Jcc) {
      B.Succ1 = BlockOfTarget(T.target());
      if (NextIdx < Out.Insts.size())
        B.Succ2 = Out.BlockOf[NextIdx];
    } else if (T.Form == IForm::Ret ||
               (T.isCall() && Policy.IsNoReturnCall &&
                Policy.IsNoReturnCall(T))) {
      // terminator with no successors
    } else if (NextIdx < Out.Insts.size()) {
      B.Succ1 = Out.BlockOf[NextIdx];
    }
  }
  return true;
}
