//===- x64/NativeCodeGen.cpp - MIR to x86-64 lowering ----------------------===//
//
// The lowering contract (DESIGN.md section 14), in brief:
//
//  * r15 holds the NativeEnv pointer, r14 the guest memory base. rax,
//    rcx and rdx are per-instruction scratch. The hottest guest
//    registers (by static operand frequency) are pinned to rbx/rbp/
//    r12/r13 (callee-saved: survive helper calls) then rsi/rdi/r8-r11
//    (caller-saved: synced to NativeEnv::Regs and reloaded around
//    helpers); the rest live in NativeEnv::Regs permanently. Raw mode
//    keeps r12/r13 for its own accumulators and pins eight.
//
//  * Instrumented mode reproduces the decoded engine's observable cost
//    accounting. Every block head runs one hoisted budget test
//    (remaining budget >= whole-block cost, else bail to the careful
//    tail) and then, within the block, counters are settled lazily: one
//    "add [steps], k" per segment, where segments end at control
//    transfers and error exits. After each call a resume test against
//    the program-wide worst-case block cost re-establishes the "budget
//    covers the rest of any block" invariant the head test provides.
//
//  * Raw mode charges each block once at its head (steps, loads/stores,
//    calls -- exact on error-free runs) and tests the budget only at
//    loop back-edge targets and procedure entries, which bounds
//    overshoot without per-block arithmetic on straight-line paths.
//    Steps accumulate in r12 and calls in r13 (synced to NativeEnv only
//    at exits and error stubs): per-block "add [env], k" would chain
//    every block through a store-to-load forward on the same address,
//    and on call-heavy code that chain, not the guest work, sets the
//    throughput ceiling. Call depth needs no cursor at all -- the host
//    stack mirrors guest depth at 16 bytes per frame, so one
//    "cmp rsp, floor" per call is the whole check (the trampoline
//    computes the floor from MaxCallDepth at run entry).
//
//  * Cold paths (errors, bailouts) are per-procedure stubs after the
//    body, so the hot path stays branch-not-taken shaped. Error stubs
//    charge the partial segment, fill the NativeEnv mailbox and call
//    the noreturn FnError helper; bail stubs sync the pinned registers
//    and hand the exact source position to FnBail.
//
//===----------------------------------------------------------------------===//

#include "x64/NativeCodeGen.h"

#include "x64/NativeRuntime.h"
#include "x64/X64Assembler.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <utility>

using namespace ipra;
using namespace ipra::x64;

namespace {

/// Armed by the NativeVerifier mutation harness; never set in
/// production. Checked once per emitNativeProgram call.
const NativeCodeGenTestHooks *TestHooks = nullptr;

constexpr Reg CalleeSavedHosts[] = {RBX, RBP, R12, R13};
constexpr Reg CallerSavedHosts[] = {RSI, RDI, R8, R9, R10, R11};

/// Raw mode's dedicated accumulators (callee-saved: survive FnPrint).
constexpr Reg RawSteps = R12;
constexpr Reg RawCalls = R13;

bool isCallerSavedHost(Reg H) {
  for (Reg R : CallerSavedHosts)
    if (R == H)
      return true;
  return false;
}

bool fitsI32(int64_t V) { return V >= INT32_MIN && V <= INT32_MAX; }

Mem env(size_t Off) {
  assert(Off <= size_t(INT32_MAX));
  return Mem{R15, int32_t(Off)};
}

#define ENV(Field) env(offsetof(NativeEnv, Field))

Mem regSlot(unsigned G) { return env(offsetof(NativeEnv, Regs) + 8 * G); }

/// Pixie counter category within a segment: 0/1 scalar load/store,
/// 2/3 data load/store.
unsigned memCounterIndex(const MInst &I) {
  unsigned K = I.Mem == MemKind::Scalar ? 0 : 2;
  return K + (I.Op == MOpcode::Store ? 1 : 0);
}

Mem memCounterField(unsigned K) {
  switch (K) {
  case 0:
    return ENV(ScalarLoads);
  case 1:
    return ENV(ScalarStores);
  case 2:
    return ENV(DataLoads);
  default:
    return ENV(DataStores);
  }
}

Cond cmpCond(MOpcode Op) {
  switch (Op) {
  case MOpcode::CmpEq:
    return Cond::E;
  case MOpcode::CmpNe:
    return Cond::NE;
  case MOpcode::CmpLt:
    return Cond::L;
  case MOpcode::CmpLe:
    return Cond::LE;
  case MOpcode::CmpGt:
    return Cond::G;
  default:
    return Cond::GE;
  }
}

class Emitter {
public:
  Emitter(const MProgram &Prog, const NativeCodeGenOptions &Opts,
          const RegMapTable &Maps, const std::vector<size_t> &ProfOff,
          NativeCode &Out, std::string &Err)
      : Prog(Prog), Opts(Opts), Maps(Maps), ProfOff(ProfOff), Out(Out),
        Err(Err) {
    for (unsigned G = 0; G < NumPhysRegs; ++G)
      NoPins.GuestToHost[G] = -1;
    // The trampoline runs under the global map (its reload/sync pair is
    // the whole pinning protocol there); with per-procedure maps the
    // canonical home at every boundary is the Regs slots, so the
    // trampoline pins nothing at all.
    Map = Maps.PerProc ? &NoPins : &Maps.Global;
  }

  bool run() {
    if (!preflight())
      return false;
    // ~16 bytes per lowered instruction is the observed envelope; one
    // upfront reservation keeps the emitter out of vector regrowth.
    A.reserve(TotalInsts * 16 + Prog.Procs.size() * 48 + 256);
    emitTrampoline();
    if (Opts.Raw) {
      RawBudgetLabel = A.newLabel();
      Out.RawStubOff = A.size();
      A.bind(RawBudgetLabel);
      syncRawCounters();
      A.movMI(ENV(ErrorCode), int32_t(NativeErr::Budget));
      A.movRR(RDI, R15);
      A.callM(ENV(FnError));
    }
    Out.ProcEntry.assign(Prog.Procs.size(), size_t(-1));
    Out.BlockSlotOps.assign(Prog.Procs.size(), {});
    Out.BlockCallOps.assign(Prog.Procs.size(), {});
    Out.ProcEntryOps.assign(Prog.Procs.size(), 0);
    for (unsigned P = 0; P < Prog.Procs.size(); ++P)
      if (!emitProc(P))
        return false;
    A.finalize();
    for (const auto &[Pos, Callee] : CallPatches) {
      assert(Out.ProcEntry[Callee] != size_t(-1));
      A.patchCall(Pos, Out.ProcEntry[Callee]);
    }
    Out.Bytes = A.code();
    if (Hooks && Hooks->Defect == NativeDefect::CorruptByte) {
      for (size_t E : Out.ProcEntry) {
        if (E != size_t(-1)) {
          Out.Bytes[E] = 0x06; // "push es": invalid in 64-bit mode
          break;
        }
      }
    }
    return true;
  }

private:
  //===--------------------------------------------------------------------===//
  // Validation
  //===--------------------------------------------------------------------===//

  bool preflight() {
    if (Prog.Procs.size() > size_t(INT32_MAX))
      return bad("too many procedures for the native engine");
    size_t TotalBlocks = 0;
    for (const MProc &P : Prog.Procs) {
      for (const MBlock &B : P.Blocks) {
        if (B.Insts.empty())
          return bad("procedure '" + P.Name + "' has an empty block");
        if (!B.Insts.back().isTerminator())
          return bad("procedure '" + P.Name +
                     "' has a block without a terminator");
        if (B.Insts.size() > size_t(INT32_MAX) / 2)
          return bad("procedure '" + P.Name +
                     "' has a block too large for the native engine");
        ++TotalBlocks;
        TotalInsts += B.Insts.size();
      }
    }
    if (Opts.MaxBlockCost > uint64_t(INT32_MAX))
      return bad("block cost bound too large for the native engine");
    if (Opts.Profile && TotalBlocks * 8 > size_t(INT32_MAX))
      return bad("block profile too large for the native engine");
    return true;
  }

  bool bad(std::string Why) {
    Err = std::move(Why);
    return false;
  }

  //===--------------------------------------------------------------------===//
  // Guest register file access
  //===--------------------------------------------------------------------===//

  int hostOf(unsigned G) const { return Map->GuestToHost[G]; }

  static uint32_t bit(unsigned G) { return 1u << G; }

  void loadGuest(Reg Dst, unsigned G) {
    int H = hostOf(G);
    if (H >= 0) {
      A.movRR(Dst, Reg(H));
    } else {
      A.movRM(Dst, regSlot(G));
      ++SlotOps;
    }
  }

  void storeGuest(unsigned G, Reg Src) {
    int H = hostOf(G);
    if (H >= 0) {
      A.movRR(Reg(H), Src);
      Dirty |= bit(G);
    } else {
      A.movMR(regSlot(G), Src);
      ++SlotOps;
    }
  }

  /// Records that a lowering wrote guest \p G's pinned host in place
  /// (the storeGuest-free fast paths).
  void markDirty(unsigned G) { Dirty |= bit(G); }

  void aluGuest(Alu Op, Reg Dst, unsigned G) {
    int H = hostOf(G);
    if (H >= 0) {
      A.aluRR(Op, Dst, Reg(H));
    } else {
      A.aluRM(Op, Dst, regSlot(G));
      ++SlotOps;
    }
  }

  void imulGuest(Reg Dst, unsigned G) {
    int H = hostOf(G);
    if (H >= 0) {
      A.imulRR(Dst, Reg(H));
    } else {
      A.movRM(RDX, regSlot(G));
      ++SlotOps;
      A.imulRR(Dst, RDX);
    }
  }

  void forEachPinned(bool CallerSavedOnly, void (Emitter::*F)(unsigned, Reg)) {
    for (unsigned G = 0; G < NumPhysRegs; ++G) {
      int H = hostOf(G);
      if (H < 0 || (CallerSavedOnly && !isCallerSavedHost(Reg(H))))
        continue;
      (this->*F)(G, Reg(H));
    }
  }

  void syncOne(unsigned G, Reg H) {
    A.movMR(regSlot(G), H);
    ++SlotOps;
    Dirty &= ~bit(G);
  }
  void reloadOne(unsigned G, Reg H) {
    A.movRM(H, regSlot(G));
    ++SlotOps;
    Dirty &= ~bit(G); // host == slot now
  }

  void syncAllPinned() { forEachPinned(false, &Emitter::syncOne); }
  void reloadAllPinned() { forEachPinned(false, &Emitter::reloadOne); }
  void syncCallerSavedPinned() { forEachPinned(true, &Emitter::syncOne); }
  void reloadCallerSavedPinned() { forEachPinned(true, &Emitter::reloadOne); }

  //===--------------------------------------------------------------------===//
  // Call-boundary sync protocol (per-procedure maps)
  //===--------------------------------------------------------------------===//

  /// Writes back dirty pinned guests a callee may observe: the fully
  /// computed \p Need set (rawCallBoundary's SyncNeed for raw calls,
  /// everything for instrumented ones -- a bailing callee's careful
  /// tail reads the slots as global truth). Dirty pins outside the set
  /// are *carried*: they ride through the call in their hosts, still
  /// dirty. \p ClobberBits is the callee's pure clobber set, used only
  /// to target the SkipCallSync mutation at a summary-covered register.
  void syncForCall(uint32_t Need, uint32_t ClobberBits) {
    assert(Maps.PerProc);
    uint32_t DoSync = Dirty & Need;
    if (Hooks && Hooks->Defect == NativeDefect::SkipCallSync) {
      uint32_t Victims = DoSync & ClobberBits;
      if (Victims)
        DoSync &= ~(Victims & -Victims); // drop one covered register
    }
    Out.CallSyncsAvoided += unsigned(__builtin_popcount(Dirty & ~DoSync));
    Out.CallSyncStores += unsigned(__builtin_popcount(DoSync));
    CallOps += unsigned(__builtin_popcount(DoSync));
    for (unsigned G = 0; G < NumPhysRegs; ++G)
      if (DoSync & bit(G))
        syncOne(G, Reg(hostOf(G)));
  }

  /// Reloads pinned guests whose host no longer holds their current
  /// value (rawCallBoundary's ReloadNeed for raw calls; the clobber set
  /// plus every volatile pin for instrumented ones). Must run before
  /// any bail stub can fire (bail stubs sync every pinned host back to
  /// the slots, so all of them must hold live values again).
  void reloadAfterCall(uint32_t Need) {
    assert(Maps.PerProc);
    if (Hooks && Hooks->Defect == NativeDefect::SkipCallReload)
      return;
    uint32_t DoReload = PinnedMask & Need;
    Out.CallReloadLoads += unsigned(__builtin_popcount(DoReload));
    CallOps += unsigned(__builtin_popcount(DoReload));
    for (unsigned G = 0; G < NumPhysRegs; ++G)
      if (DoReload & bit(G))
        reloadOne(G, Reg(hostOf(G)));
  }

  //===--------------------------------------------------------------------===//
  // Small emission helpers
  //===--------------------------------------------------------------------===//

  void addImmTo(Reg R, int64_t Imm) {
    if (fitsI32(Imm)) {
      A.aluRI(Alu::Add, R, int32_t(Imm));
    } else {
      A.movRI(RCX, Imm);
      A.aluRR(Alu::Add, R, RCX);
    }
  }

  /// cmp R, V with unsigned semantics over the full u64 range.
  void cmpRegU64(Reg R, uint64_t V, Reg Scratch) {
    if (V <= uint64_t(INT32_MAX)) {
      A.aluRI(Alu::Cmp, R, int32_t(V));
    } else {
      A.movRI(Scratch, int64_t(V));
      A.aluRR(Alu::Cmp, R, Scratch);
    }
  }

  /// Publishes raw mode's register accumulators to NativeEnv. Required
  /// on every path that leaves JIT code with the run's counters live:
  /// the trampoline's normal return and all error stubs.
  void syncRawCounters() {
    assert(Opts.Raw);
    A.movMR(ENV(Steps), RawSteps);
    A.movMR(ENV(Calls), RawCalls);
  }

  //===--------------------------------------------------------------------===//
  // Segment accounting (instrumented mode)
  //===--------------------------------------------------------------------===//

  void segReset(size_t Next) {
    SegStart = Next;
    std::memset(SegCnt, 0, sizeof(SegCnt));
  }

  /// Settles steps and memory counters for the segment ending at (and
  /// including) instruction \p LastIdx. Clobbers flags.
  void settleThrough(size_t LastIdx) {
    assert(!Opts.Raw);
    A.aluMI(Alu::Add, ENV(Steps), int32_t(LastIdx + 1 - SegStart));
    for (unsigned K = 0; K < 4; ++K)
      if (SegCnt[K])
        A.aluMI(Alu::Add, memCounterField(K), int32_t(SegCnt[K]));
    segReset(LastIdx + 1);
  }

  //===--------------------------------------------------------------------===//
  // Cold stubs
  //===--------------------------------------------------------------------===//

  struct ErrStub {
    int Label;
    NativeErr Code;
    uint32_t Block;
    uint32_t Steps;    ///< Partial-segment charge (instrumented).
    uint32_t Cnt[4];   ///< Partial-segment memory counters.
    bool ValInReg;
    Reg ValReg;
    int64_t ValImm;
  };

  struct BailStub {
    int Label;
    uint32_t Block;
    uint32_t Inst;
    uint32_t Entry;
  };

  /// An error stub at instruction \p Idx that still owes the partial
  /// segment (arithmetic faults and out-of-bounds accesses: the failing
  /// instruction was stepped but its own side effects never happened).
  int errStubMid(NativeErr Code, size_t Idx, bool ValInReg, Reg VR,
                 int64_t VI) {
    ErrStub S{};
    S.Label = A.newLabel();
    S.Code = Code;
    S.Block = BlockId;
    if (!Opts.Raw) {
      S.Steps = uint32_t(Idx + 1 - SegStart);
      for (unsigned K = 0; K < 4; ++K)
        S.Cnt[K] = SegCnt[K];
    }
    S.ValInReg = ValInReg;
    S.ValReg = VR;
    S.ValImm = VI;
    ErrStubs.push_back(S);
    return S.Label;
  }

  /// An error stub whose charges were already settled inline (the call
  /// family: steps and the Calls counter are charged before the checks,
  /// matching the reference interpreter's enter()).
  int errStubSettled(NativeErr Code, bool ValInReg, Reg VR, int64_t VI) {
    ErrStub S{};
    S.Label = A.newLabel();
    S.Code = Code;
    S.Block = BlockId;
    S.ValInReg = ValInReg;
    S.ValReg = VR;
    S.ValImm = VI;
    ErrStubs.push_back(S);
    return S.Label;
  }

  int bailStub(uint32_t Inst, uint32_t Entry) {
    BailStubs.push_back({A.newLabel(), BlockId, Inst, Entry});
    return BailStubs.back().Label;
  }

  void emitStubs() {
    for (const ErrStub &S : ErrStubs) {
      A.bind(S.Label);
      if (Opts.Raw)
        syncRawCounters();
      if (S.Steps)
        A.aluMI(Alu::Add, ENV(Steps), int32_t(S.Steps));
      for (unsigned K = 0; K < 4; ++K)
        if (S.Cnt[K])
          A.aluMI(Alu::Add, memCounterField(K), int32_t(S.Cnt[K]));
      A.movMI(ENV(ErrorCode), int32_t(S.Code));
      if (S.ValInReg) {
        A.movMR(ENV(ErrorValue), S.ValReg);
      } else if (fitsI32(S.ValImm)) {
        A.movMI(ENV(ErrorValue), int32_t(S.ValImm));
      } else {
        A.movRI(RAX, S.ValImm);
        A.movMR(ENV(ErrorValue), RAX);
      }
      A.movMI(ENV(ErrorProc), int32_t(ProcId));
      A.movMI(ENV(ErrorBlock), int32_t(S.Block));
      A.movRR(RDI, R15);
      A.callM(ENV(FnError));
    }
    ErrStubs.clear();
    for (const BailStub &S : BailStubs) {
      A.bind(S.Label);
      syncAllPinned();
      A.movMI(ENV(BailProc), int32_t(ProcId));
      A.movMI(ENV(BailBlock), int32_t(S.Block));
      A.movMI(ENV(BailInst), int32_t(S.Inst));
      A.movMI(ENV(BailEntry), int32_t(S.Entry));
      A.movRR(RDI, R15);
      A.callM(ENV(FnBail));
    }
    BailStubs.clear();
  }

  //===--------------------------------------------------------------------===//
  // Trampoline
  //===--------------------------------------------------------------------===//

  bool dropR12Save() const {
    return Hooks && Hooks->Defect == NativeDefect::DropCalleeSave;
  }

  void emitTrampoline() {
    Out.TrampolineOff = A.size();
    for (Reg R : {RBX, RBP, R12, R13, R14, R15})
      if (R != R12 || !dropR12Save())
        A.pushR(R);
    A.movRR(R15, RDI);
    A.movRM(R14, ENV(Mem));
    reloadAllPinned();
    if (Opts.Raw) {
      A.aluRR(Alu::Xor, RawSteps, RawSteps);
      A.aluRR(Alu::Xor, RawCalls, RawCalls);
      // Depth checks compare rsp against a floor: the host stack mirrors
      // guest call depth at exactly 16 bytes per frame. The engine
      // parks 16*MaxCallDepth + 24 in ShadowLimit (24 = this
      // trampoline's pad + call + the body's own pad between here and
      // main's call sites); rewrite it in place as an absolute floor.
      A.movRR(RAX, RSP);
      A.aluRM(Alu::Sub, RAX, ENV(ShadowLimit));
      A.movMR(ENV(ShadowLimit), RAX);
    }
    // Keep rsp == 0 mod 16 inside every guest body so helper calls meet
    // the SysV alignment contract; each guest frame is 16 host bytes
    // (this pad + the return address).
    A.aluRI(Alu::Sub, RSP, 8);
    CallPatches.push_back({A.callRelPatchable(), Prog.MainProcId});
    A.aluRI(Alu::Add, RSP, 8);
    if (Opts.Raw)
      syncRawCounters();
    syncAllPinned();
    for (Reg R : {R15, R14, R13, R12, RBP, RBX})
      if (R != R12 || !dropR12Save())
        A.popR(R);
    A.ret();
  }

  //===--------------------------------------------------------------------===//
  // Procedure emission
  //===--------------------------------------------------------------------===//

  bool emitProc(unsigned P) {
    const MProc &Proc = Prog.Procs[P];
    if (Proc.IsExternal || Proc.Blocks.empty())
      return true;
    ProcId = P;
    Out.ProcEntry[P] = A.size();
    ++Out.ProcsEmitted;

    Map = &Maps.mapFor(P);
    computeProcMasks(Proc);
    Out.MapPins += Map->NumPinned;

    BlockLabels.assign(Proc.Blocks.size(), -1);
    for (unsigned B = 0; B < Proc.Blocks.size(); ++B)
      BlockLabels[B] = A.newLabel();

    // Raw mode tests the budget only where repetition can occur:
    // procedure entry and layout back-edge targets.
    std::vector<char> NeedsCheck(Proc.Blocks.size(), 0);
    NeedsCheck[0] = 1;
    if (Opts.Raw) {
      for (unsigned B = 0; B < Proc.Blocks.size(); ++B) {
        const MInst &T = Proc.Blocks[B].Insts.back();
        for (int Tgt : {T.Target1, T.Target2})
          if (Tgt >= 0 && unsigned(Tgt) <= B)
            NeedsCheck[Tgt] = 1;
      }
    }

    Out.BlockSlotOps[P].assign(Proc.Blocks.size(), 0);
    Out.BlockCallOps[P].assign(Proc.Blocks.size(), 0);
    SlotOps = 0;
    emitProcPrologue(Proc);
    Out.ProcEntryOps[P] = SlotOps;
    for (unsigned B = 0; B < Proc.Blocks.size(); ++B) {
      const MBlock &Blk = Proc.Blocks[B];
      BlockId = B;
      A.bind(BlockLabels[B]);
      Dirty = WrittenMask; // conservative join over block predecessors
      emitBlockHead(Blk, NeedsCheck[B]);
      if (B == 0)
        plantEntryDefect();
      segReset(0);
      SlotOps = CallOps = 0;
      for (size_t Idx = 0; Idx < Blk.Insts.size();)
        Idx = lowerInst(Blk, Idx);
      Out.BlockSlotOps[P][B] = SlotOps;
      Out.BlockCallOps[P][B] = CallOps;
    }
    // Stubs follow the blocks; their slot traffic runs only on bailing
    // or erroring executions, so it stays out of the per-block counts.
    emitStubs();
    return true;
  }

  /// Per-procedure pin bookkeeping: which guests are pinned, which of
  /// those sit in volatile (SysV caller-saved) hosts, and which the
  /// procedure's MIR ever writes (the conservative dirty set).
  void computeProcMasks(const MProc &Proc) {
    PinnedMask = VolPinnedMask = WrittenMask = 0;
    SavedHosts.clear();
    for (unsigned G = 0; G < NumPhysRegs; ++G) {
      int H = Map->GuestToHost[G];
      if (H < 0)
        continue;
      PinnedMask |= bit(G);
      if (isCallerSavedHost(Reg(H)))
        VolPinnedMask |= bit(G);
    }
    bool HasCalls = false;
    for (const MBlock &B : Proc.Blocks) {
      for (const MInst &I : B.Insts) {
        if (I.Op == MOpcode::Call || I.Op == MOpcode::CallInd)
          HasCalls = true;
        if (writesRd(I.Op) && I.Rd < NumPhysRegs)
          WrittenMask |= bit(I.Rd);
      }
    }
    WrittenMask &= PinnedMask;
    if (!Maps.PerProc)
      return;
    if (Opts.Raw) {
      // Procedures containing call sites must keep the fixed 32-byte
      // host frame the rsp depth check assumes (see NativeRuntime.h):
      // push rbx+rbp whether pinned or not. Leaves are never live on
      // the host stack when a depth check runs, so they push only what
      // they pin.
      if (HasCalls) {
        SavedHosts.push_back(RBX);
        SavedHosts.push_back(RBP);
      } else {
        for (Reg H : {RBX, RBP})
          if (hostPinned(H))
            SavedHosts.push_back(H);
      }
    } else {
      for (Reg H : CalleeSavedHosts)
        if (hostPinned(H))
          SavedHosts.push_back(H);
    }
  }

  bool hostPinned(Reg H) const {
    for (unsigned G = 0; G < NumPhysRegs; ++G)
      if (Map->GuestToHost[G] == int(H))
        return true;
    return false;
  }

  static bool writesRd(MOpcode Op) {
    switch (Op) {
    case MOpcode::Store:
    case MOpcode::Call:
    case MOpcode::CallInd:
    case MOpcode::Ret:
    case MOpcode::Br:
    case MOpcode::CondBr:
    case MOpcode::Print:
      return false;
    default:
      return true;
    }
  }

  /// Body entry. Global map: one alignment pad, the pinned hosts are
  /// already live program-wide. Per-procedure maps: save the pinned
  /// callee-saved hosts (the caller's values -- possibly its own pins),
  /// pad rsp back to 16-byte alignment, then load every pinned guest
  /// from its canonical slot. The loads precede block 0's budget test
  /// so the bail stubs' syncAllPinned always sees live hosts.
  void emitProcPrologue(const MProc &Proc) {
    (void)Proc;
    if (!Maps.PerProc) {
      A.aluRI(Alu::Sub, RSP, 8);
      PadSlot = true;
      return;
    }
    for (Reg H : SavedHosts)
      A.pushR(H);
    SlotOps += unsigned(SavedHosts.size());
    // After the call rsp is 8 mod 16; an odd push count realigns it,
    // an even one needs the pad.
    PadSlot = (SavedHosts.size() % 2) == 0;
    if (PadSlot)
      A.aluRI(Alu::Sub, RSP, 8);
    reloadAllPinned();
    Dirty = 0;
  }

  /// Plants the StrayStore / ClobberBeyondSummary mutation at the top
  /// of the first emitted procedure's entry block (after the block
  /// head, so the budget-check shape stays intact and the verifier
  /// attributes the defect to its own code, not MissingBudgetCheck).
  void plantEntryDefect() {
    if (!Hooks || DefectPlanted)
      return;
    if (Hooks->Defect == NativeDefect::StrayStore) {
      // One qword past the NativeEnv region: still r15-relative, so
      // only the region-bounds half of check (d) can reject it.
      A.movMI(env(sizeof(NativeEnv)), 7);
      DefectPlanted = true;
    } else if (Hooks->Defect == NativeDefect::ClobberBeyondSummary) {
      A.movRI(RAX, 12345);
      storeGuest(Hooks->GuestReg, RAX);
      DefectPlanted = true;
    }
  }

  void emitBlockHead(const MBlock &Blk, bool RawCheck) {
    bool SkipTest = false;
    if (Hooks && Hooks->Defect == NativeDefect::SkipBudgetCheck &&
        !DefectPlanted && BlockId > 0 && (!Opts.Raw || RawCheck)) {
      SkipTest = true;
      DefectPlanted = true;
    }
    int32_t Cost = int32_t(Blk.Insts.size());
    if (!Opts.Raw) {
      // Hoisted budget test: remaining budget must cover the whole
      // block, else the careful tail replays it with exact per-step
      // checks (same contract as the decoded engine's block dispatch).
      if (!SkipTest) {
        A.movRI(RAX, int64_t(Opts.MaxSteps));
        A.aluRM(Alu::Sub, RAX, ENV(Steps));
        A.aluRI(Alu::Cmp, RAX, Cost);
        A.jcc(Cond::B, bailStub(0, /*Entry=*/1));
      }
      if (Opts.Profile) {
        A.movRM(RAX, ENV(ProfBase));
        A.aluMI(Alu::Add, Mem{RAX, int32_t((ProfOff[ProcId] + BlockId) * 8)},
                1);
      }
      return;
    }
    // Raw: settle the whole block up front. Exact on runs that do not
    // fault out of the block; approximate (overshooting) otherwise.
    // Steps and calls go to register accumulators -- a per-block memory
    // add would chain all blocks through one address's store-to-load
    // forwards -- while the rarer memory counters stay RMW adds.
    A.aluRI(Alu::Add, RawSteps, Cost);
    uint32_t Cnt[4] = {0, 0, 0, 0};
    uint32_t Calls = 0;
    for (const MInst &I : Blk.Insts) {
      if (I.Op == MOpcode::Load || I.Op == MOpcode::Store)
        ++Cnt[memCounterIndex(I)];
      else if (I.Op == MOpcode::Call || I.Op == MOpcode::CallInd)
        ++Calls;
    }
    for (unsigned K = 0; K < 4; ++K)
      if (Cnt[K])
        A.aluMI(Alu::Add, memCounterField(K), int32_t(Cnt[K]));
    if (Calls)
      A.aluRI(Alu::Add, RawCalls, int32_t(Calls));
    if (RawCheck && !SkipTest) {
      cmpRegU64(RawSteps, Opts.MaxSteps, RAX);
      A.jcc(Cond::AE, RawBudgetLabel);
    }
  }

  /// Emits the jump to \p Target, eliding it when the target is the
  /// next block in layout order.
  void jumpTo(int Target) {
    if (unsigned(Target) != BlockId + 1)
      A.jmp(BlockLabels[Target]);
  }

  //===--------------------------------------------------------------------===//
  // Instruction lowering
  //===--------------------------------------------------------------------===//

  size_t lowerInst(const MBlock &Blk, size_t Idx) {
    const MInst &I = Blk.Insts[Idx];
    switch (I.Op) {
    case MOpcode::Add:
      lowerBinary(I, Alu::Add);
      break;
    case MOpcode::Sub:
      lowerBinary(I, Alu::Sub);
      break;
    case MOpcode::And:
      lowerBinary(I, Alu::And);
      break;
    case MOpcode::Or:
      lowerBinary(I, Alu::Or);
      break;
    case MOpcode::Xor:
      lowerBinary(I, Alu::Xor);
      break;
    case MOpcode::Mul:
      lowerMul(I);
      break;
    case MOpcode::Div:
    case MOpcode::Rem:
      lowerDivRem(I, Idx);
      break;
    case MOpcode::Shl:
    case MOpcode::Shr:
      lowerShift(I);
      break;
    case MOpcode::CmpEq:
    case MOpcode::CmpNe:
    case MOpcode::CmpLt:
    case MOpcode::CmpLe:
    case MOpcode::CmpGt:
    case MOpcode::CmpGe:
      return lowerCmp(Blk, Idx);
    case MOpcode::Neg:
    case MOpcode::Not:
      loadGuest(RAX, I.Rs);
      if (I.Op == MOpcode::Neg)
        A.negR(RAX);
      else
        A.notR(RAX);
      storeGuest(I.Rd, RAX);
      break;
    case MOpcode::Move:
      lowerMove(I);
      break;
    case MOpcode::LoadImm:
      lowerLoadImm(I);
      break;
    case MOpcode::AddImm:
      lowerAddImm(I);
      break;
    case MOpcode::Load:
    case MOpcode::Store:
      lowerMemOp(I, Idx);
      break;
    case MOpcode::Call:
      lowerDirectCall(I, Idx);
      break;
    case MOpcode::CallInd:
      lowerIndirectCall(I, Idx);
      break;
    case MOpcode::Ret:
      lowerRet(Idx);
      break;
    case MOpcode::Br:
      if (!Opts.Raw)
        settleThrough(Idx);
      jumpTo(I.Target1);
      break;
    case MOpcode::CondBr:
      if (!Opts.Raw)
        settleThrough(Idx);
      loadGuest(RAX, I.Rs);
      A.testRR(RAX, RAX);
      A.jcc(Cond::NE, BlockLabels[I.Target1]);
      jumpTo(I.Target2);
      break;
    case MOpcode::Print:
      syncCallerSavedPinned();
      loadGuest(RSI, I.Rs);
      A.movRR(RDI, R15);
      A.callM(ENV(FnPrint));
      reloadCallerSavedPinned();
      break;
    }
    return Idx + 1;
  }

  void lowerBinary(const MInst &I, Alu Op) {
    int HD = hostOf(I.Rd);
    if (I.Rd == I.Rs && HD >= 0) {
      aluGuest(Op, Reg(HD), I.Rt);
      markDirty(I.Rd);
      return;
    }
    loadGuest(RAX, I.Rs);
    aluGuest(Op, RAX, I.Rt);
    storeGuest(I.Rd, RAX);
  }

  void lowerMul(const MInst &I) {
    int HD = hostOf(I.Rd);
    if (I.Rd == I.Rs && HD >= 0) {
      imulGuest(Reg(HD), I.Rt);
      markDirty(I.Rd);
      return;
    }
    loadGuest(RAX, I.Rs);
    imulGuest(RAX, I.Rt);
    storeGuest(I.Rd, RAX);
  }

  void lowerDivRem(const MInst &I, size_t Idx) {
    bool IsDiv = I.Op == MOpcode::Div;
    loadGuest(RAX, I.Rs);
    loadGuest(RCX, I.Rt);
    A.testRR(RCX, RCX);
    A.jcc(Cond::E, errStubMid(IsDiv ? NativeErr::DivZero : NativeErr::RemZero,
                              Idx, false, RAX, 0));
    // rt == -1 would overflow idiv on INT64_MIN; the reference defines
    // INT64_MIN/-1 == INT64_MIN and x%-1 == 0, which `neg` / `xor`
    // deliver for every rs.
    A.aluRI(Alu::Cmp, RCX, -1);
    int LSpecial = A.newLabel(), LDone = A.newLabel();
    A.jcc(Cond::E, LSpecial);
    A.cqo();
    A.idivR(RCX);
    if (!IsDiv)
      A.movRR(RAX, RDX);
    A.jmp(LDone);
    A.bind(LSpecial);
    if (IsDiv)
      A.negR(RAX);
    else
      A.aluRR(Alu::Xor, RAX, RAX);
    A.bind(LDone);
    storeGuest(I.Rd, RAX);
  }

  void lowerShift(const MInst &I) {
    loadGuest(RAX, I.Rs);
    loadGuest(RCX, I.Rt);
    // Shift counts outside [0, 62] yield 0 (one unsigned compare
    // covers the negative case too).
    A.aluRI(Alu::Cmp, RCX, 62);
    int LZero = A.newLabel(), LDone = A.newLabel();
    A.jcc(Cond::A, LZero);
    if (I.Op == MOpcode::Shl)
      A.shlCL(RAX);
    else
      A.sarCL(RAX);
    A.jmp(LDone);
    A.bind(LZero);
    A.aluRR(Alu::Xor, RAX, RAX);
    A.bind(LDone);
    storeGuest(I.Rd, RAX);
  }

  size_t lowerCmp(const MBlock &Blk, size_t Idx) {
    const MInst &I = Blk.Insts[Idx];
    Cond C = cmpCond(I.Op);
    const MInst *Br =
        Idx + 1 < Blk.Insts.size() ? &Blk.Insts[Idx + 1] : nullptr;
    bool Fuse = Br && Br->Op == MOpcode::CondBr && Br->Rs == I.Rd;
    // Counter settlement clobbers flags, so for a fused pair the whole
    // two-instruction segment is settled before the compare.
    if (Fuse && !Opts.Raw)
      settleThrough(Idx + 1);
    loadGuest(RAX, I.Rs);
    aluGuest(Alu::Cmp, RAX, I.Rt);
    A.setccR8(C, RAX);
    A.movzxRR8(RAX, RAX);
    storeGuest(I.Rd, RAX); // mov only: the compare flags survive
    if (!Fuse)
      return Idx + 1;
    A.jcc(C, BlockLabels[Br->Target1]);
    jumpTo(Br->Target2);
    segReset(Idx + 2);
    return Idx + 2;
  }

  void lowerMove(const MInst &I) {
    int HD = hostOf(I.Rd), HS = hostOf(I.Rs);
    if (HD >= 0) {
      loadGuest(Reg(HD), I.Rs);
      markDirty(I.Rd);
    } else if (HS >= 0) {
      A.movMR(regSlot(I.Rd), Reg(HS));
      ++SlotOps;
    } else {
      A.movRM(RAX, regSlot(I.Rs));
      A.movMR(regSlot(I.Rd), RAX);
      SlotOps += 2;
    }
  }

  void lowerLoadImm(const MInst &I) {
    int HD = hostOf(I.Rd);
    if (HD >= 0) {
      A.movRI(Reg(HD), I.Imm);
      markDirty(I.Rd);
    } else if (fitsI32(I.Imm)) {
      A.movMI(regSlot(I.Rd), int32_t(I.Imm));
      ++SlotOps;
    } else {
      A.movRI(RAX, I.Imm);
      A.movMR(regSlot(I.Rd), RAX);
      ++SlotOps;
    }
  }

  void lowerAddImm(const MInst &I) {
    int HD = hostOf(I.Rd);
    if (I.Rd == I.Rs && HD >= 0 && fitsI32(I.Imm)) {
      A.aluRI(Alu::Add, Reg(HD), int32_t(I.Imm));
      markDirty(I.Rd);
      return;
    }
    loadGuest(RAX, I.Rs);
    addImmTo(RAX, I.Imm);
    storeGuest(I.Rd, RAX);
  }

  void lowerMemOp(const MInst &I, size_t Idx) {
    bool IsLoad = I.Op == MOpcode::Load;
    loadGuest(RAX, I.Rs);
    if (I.Imm)
      addImmTo(RAX, I.Imm);
    // One unsigned compare is both bounds checks; the stub reads the
    // faulting address from rax.
    cmpRegU64(RAX, Opts.MemWords, RCX);
    A.jcc(Cond::AE,
          errStubMid(IsLoad ? NativeErr::LoadOOB : NativeErr::StoreOOB, Idx,
                     true, RAX, 0));
    if (IsLoad) {
      A.movRMScaled8(RDX, R14, RAX);
      storeGuest(I.Rd, RDX);
    } else {
      loadGuest(RCX, I.Rt);
      A.movMRScaled8(R14, RAX, RCX);
    }
    if (!Opts.Raw)
      ++SegCnt[memCounterIndex(I)];
  }

  /// The shadow-frame push shared by both call forms (instrumented):
  /// rax holds the current ShadowPtr on entry.
  void pushShadowFrame(size_t CallIdx) {
    A.movRI(RCX, int64_t(uint64_t(ProcId) | (uint64_t(BlockId) << 32)));
    A.movMR(Mem{RAX, 0}, RCX);
    A.movMI(Mem{RAX, 8}, int32_t(CallIdx + 1));
    A.aluRI(Alu::Add, RAX, 16);
    A.movMR(ENV(ShadowPtr), RAX);
  }

  /// After a callee returns, re-establish the head-test invariant: the
  /// remaining budget must cover the worst-case rest of this block.
  void emitResumeCheck(size_t CallIdx) {
    A.movRI(RAX, int64_t(Opts.MaxSteps));
    A.aluRM(Alu::Sub, RAX, ENV(Steps));
    A.aluRI(Alu::Cmp, RAX, int32_t(Opts.MaxBlockCost));
    A.jcc(Cond::B, bailStub(uint32_t(CallIdx + 1), /*Entry=*/0));
    segReset(CallIdx + 1);
  }

  void lowerDirectCall(const MInst &I, size_t Idx) {
    // Reference order inside enter(): the call instruction and the
    // Calls counter are charged before any validity check fails.
    if (!Opts.Raw) {
      settleThrough(Idx);
      A.aluMI(Alu::Add, ENV(Calls), 1);
    }
    if (I.Callee < 0 || size_t(I.Callee) >= Prog.Procs.size()) {
      A.jmp(errStubSettled(NativeErr::CallBadId, false, RAX, I.Callee));
      return;
    }
    const MProc &Callee = Prog.Procs[I.Callee];
    if (Callee.IsExternal || Callee.Blocks.empty()) {
      A.jmp(errStubSettled(NativeErr::CallExternal, false, RAX, I.Callee));
      return;
    }
    if (Opts.Raw) {
      // Depth check without a cursor: the host stack IS the guest call
      // depth (fixed-size frames, see NativeRuntime.h), so one compare
      // against the floor the trampoline computed is the whole test.
      A.aluRM(Alu::Cmp, RSP, ENV(ShadowLimit));
      A.jcc(Cond::BE, errStubSettled(NativeErr::CallDepth, false, RAX, 0));
      if (Maps.PerProc) {
        CallBoundary B = rawCallBoundary(
            *Map, Maps.CallSync[I.Callee], Maps.CallReload[I.Callee],
            Maps.HostClobber[I.Callee], Maps.agreementMapFor(I.Callee));
        syncForCall(B.SyncNeed, Maps.CallReload[I.Callee]);
        CallPatches.push_back({A.callRelPatchable(), I.Callee});
        reloadAfterCall(B.ReloadNeed);
      } else {
        CallPatches.push_back({A.callRelPatchable(), I.Callee});
      }
      return;
    }
    A.movRM(RAX, ENV(ShadowPtr));
    A.aluRM(Alu::Cmp, RAX, ENV(ShadowLimit));
    A.jcc(Cond::AE, errStubSettled(NativeErr::CallDepth, false, RAX, 0));
    // Instrumented per-proc calls sync *every* dirty pin, not just the
    // summary set: if the callee (or anything below it) bails, the
    // careful tail reads NativeEnv::Regs as global truth for this frame
    // too. Sync stores are plain movs, so rax (ShadowPtr) survives.
    if (Maps.PerProc)
      syncForCall(~0u, Maps.CallReload[I.Callee]);
    if (Opts.Check) {
      if (!Maps.PerProc)
        syncAllPinned();
      A.movRI(RSI, I.Callee);
      A.movRR(RDI, R15);
      A.callM(ENV(FnSnapshot));
      if (!Maps.PerProc)
        reloadCallerSavedPinned();
      A.movRM(RAX, ENV(ShadowPtr));
    }
    pushShadowFrame(Idx);
    CallPatches.push_back({A.callRelPatchable(), I.Callee});
    if (Maps.PerProc)
      reloadAfterCall(Maps.CallReload[I.Callee] | VolPinnedMask);
    emitResumeCheck(Idx);
  }

  void lowerIndirectCall(const MInst &I, size_t Idx) {
    if (!Opts.Raw) {
      settleThrough(Idx);
      A.aluMI(Alu::Add, ENV(Calls), 1);
    }
    loadGuest(RAX, I.Rs);
    A.movsxdRR(RDX, RAX); // int(rs): the reference truncates to int
    A.aluRI(Alu::Cmp, RDX, int32_t(Prog.Procs.size()));
    A.jcc(Cond::AE, errStubSettled(NativeErr::CallBadId, true, RDX, 0));
    A.movRR(RAX, RDX);
    A.shlRI(RAX, 4);
    A.aluRM(Alu::Add, RAX, ENV(ProcTable));
    A.aluMI(Alu::Cmp, Mem{RAX, 8}, 0); // ProcTableEntry::HasBody
    A.jcc(Cond::E, errStubSettled(NativeErr::CallExternal, true, RDX, 0));
    if (Opts.Raw) {
      A.aluRM(Alu::Cmp, RSP, ENV(ShadowLimit));
      A.jcc(Cond::BE, errStubSettled(NativeErr::CallDepth, false, RAX, 0));
      // Indirect callees published the default mask (address-taken
      // procedures are forced open) and no usable host agreement; sync
      // stores are movs, so the table pointer in rax survives.
      if (Maps.PerProc) {
        CallBoundary B = rawCallBoundary(*Map, Maps.IndSync, Maps.IndReload,
                                         Maps.IndHostClobber, nullptr);
        syncForCall(B.SyncNeed, Maps.IndReload);
        A.callM(Mem{RAX, 0}); // ProcTableEntry::Entry
        reloadAfterCall(B.ReloadNeed);
      } else {
        A.callM(Mem{RAX, 0}); // ProcTableEntry::Entry
      }
      return;
    }
    A.movRM(RCX, ENV(ShadowPtr));
    A.aluRM(Alu::Cmp, RCX, ENV(ShadowLimit));
    A.jcc(Cond::AE, errStubSettled(NativeErr::CallDepth, false, RAX, 0));
    // The snapshot helper clobbers all scratch; park the callee id in
    // the Env spill slot and rebuild the table pointer afterwards.
    A.movMR(ENV(ScratchA), RDX);
    if (Maps.PerProc)
      syncForCall(~0u, Maps.IndReload); // all dirty: bail soundness
    if (Opts.Check) {
      if (!Maps.PerProc)
        syncAllPinned();
      A.movRM(RSI, ENV(ScratchA));
      A.movRR(RDI, R15);
      A.callM(ENV(FnSnapshot));
      if (!Maps.PerProc)
        reloadCallerSavedPinned();
    }
    A.movRM(RAX, ENV(ShadowPtr));
    pushShadowFrame(Idx);
    A.movRM(RAX, ENV(ScratchA));
    A.shlRI(RAX, 4);
    A.aluRM(Alu::Add, RAX, ENV(ProcTable));
    A.callM(Mem{RAX, 0});
    if (Maps.PerProc)
      reloadAfterCall(Maps.IndReload | VolPinnedMask);
    emitResumeCheck(Idx);
  }

  /// The epilogue's frame teardown: undo the pad, restore the saved
  /// hosts (caller's values) in reverse push order.
  void emitFrameTeardown() {
    if (PadSlot)
      A.aluRI(Alu::Add, RSP, 8);
    for (size_t I = SavedHosts.size(); I--;)
      A.popR(SavedHosts[I]);
    SlotOps += unsigned(SavedHosts.size());
  }

  /// Writes back every dirty pin: at a return the canonical home for
  /// the caller is the Regs slots (per-procedure maps).
  void syncDirtyPinned() {
    for (unsigned G = 0; G < NumPhysRegs; ++G)
      if (Dirty & bit(G))
        syncOne(G, Reg(hostOf(G)));
  }

  void lowerRet(size_t Idx) {
    if (Opts.Raw) {
      // Depth tracking is the host stack itself; nothing to pop beyond
      // the frame.
      if (Maps.PerProc)
        syncDirtyPinned();
      emitFrameTeardown();
      A.ret();
      return;
    }
    settleThrough(Idx);
    // Per-procedure maps: the slots must be canonical before the
    // convention checker reads them and stay canonical through the ret.
    if (Maps.PerProc)
      syncDirtyPinned();
    if (Opts.Check) {
      if (!Maps.PerProc)
        syncAllPinned();
      A.movRR(RDI, R15);
      A.callM(ENV(FnCheckRet));
      A.testRR(RAX, RAX);
      A.jcc(Cond::NE, errStubSettled(NativeErr::Convention, false, RAX, 0));
      if (!Maps.PerProc)
        reloadCallerSavedPinned();
    }
    // Conditional pop: main's ret runs at shadow depth 0 and must not
    // underflow the cursor.
    A.movRM(RAX, ENV(ShadowPtr));
    A.aluRM(Alu::Cmp, RAX, ENV(ShadowBase));
    int LSkip = A.newLabel();
    A.jcc(Cond::BE, LSkip);
    A.aluRI(Alu::Sub, RAX, 16);
    A.movMR(ENV(ShadowPtr), RAX);
    A.bind(LSkip);
    emitFrameTeardown();
    A.ret();
  }

  //===--------------------------------------------------------------------===//
  // State
  //===--------------------------------------------------------------------===//

  const MProgram &Prog;
  const NativeCodeGenOptions &Opts;
  const RegMapTable &Maps;
  const std::vector<size_t> &ProfOff;
  NativeCode &Out;
  std::string &Err;

  /// The map governing the region currently being emitted (per-proc
  /// policy swaps this per body; the trampoline pins nothing then).
  const RegisterMap *Map = nullptr;
  RegisterMap NoPins;

  Assembler A;
  std::vector<std::pair<size_t, int>> CallPatches;
  int RawBudgetLabel = -1;
  const NativeCodeGenTestHooks *Hooks = TestHooks;
  bool DefectPlanted = false;

  size_t TotalInsts = 0;
  unsigned ProcId = 0;
  unsigned BlockId = 0;
  std::vector<int> BlockLabels;
  size_t SegStart = 0;
  uint32_t SegCnt[4] = {0, 0, 0, 0};
  std::vector<ErrStub> ErrStubs;
  std::vector<BailStub> BailStubs;

  // Per-procedure map state (computeProcMasks).
  uint32_t PinnedMask = 0;    ///< Guests pinned by the current map.
  uint32_t VolPinnedMask = 0; ///< Pins living in volatile hosts.
  uint32_t WrittenMask = 0;   ///< Pins the procedure's MIR may write.
  uint32_t Dirty = 0;         ///< Pins whose host is newer than the slot.
  /// Register-state memory ops emitted since the last reset: slot
  /// loads/stores plus saved-host pushes/pops. emitProc resets it per
  /// block and snapshots into NativeCode::BlockSlotOps/ProcEntryOps.
  unsigned SlotOps = 0;
  /// The call-boundary subset of SlotOps (syncForCall/reloadAfterCall
  /// traffic only), snapshotted into NativeCode::BlockCallOps.
  unsigned CallOps = 0;
  std::vector<Reg> SavedHosts; ///< Callee-saved hosts this body pushes.
  bool PadSlot = true;         ///< Whether the frame includes the 8-byte pad.
};

} // namespace

namespace {

/// Adds \p W per operand occurrence in \p B to \p Freq (the shared
/// operand-use model of both register-map choosers).
void countBlockUses(const MBlock &B, uint64_t W, uint64_t *Freq) {
  auto Use = [&](unsigned R) {
    if (R < NumPhysRegs)
      Freq[R] += W;
  };
  for (const MInst &I : B.Insts) {
    switch (I.Op) {
    case MOpcode::Add:
    case MOpcode::Sub:
    case MOpcode::Mul:
    case MOpcode::Div:
    case MOpcode::Rem:
    case MOpcode::And:
    case MOpcode::Or:
    case MOpcode::Xor:
    case MOpcode::Shl:
    case MOpcode::Shr:
    case MOpcode::CmpEq:
    case MOpcode::CmpNe:
    case MOpcode::CmpLt:
    case MOpcode::CmpLe:
    case MOpcode::CmpGt:
    case MOpcode::CmpGe:
      Use(I.Rd);
      Use(I.Rs);
      Use(I.Rt);
      break;
    case MOpcode::Neg:
    case MOpcode::Not:
    case MOpcode::Move:
    case MOpcode::AddImm:
    case MOpcode::Load:
      Use(I.Rd);
      Use(I.Rs);
      break;
    case MOpcode::LoadImm:
      Use(I.Rd);
      break;
    case MOpcode::Store:
      Use(I.Rs);
      Use(I.Rt);
      break;
    case MOpcode::CallInd:
    case MOpcode::CondBr:
    case MOpcode::Print:
      Use(I.Rs);
      break;
    case MOpcode::Call:
    case MOpcode::Ret:
    case MOpcode::Br:
      break;
    }
  }
}

constexpr Reg GlobalHosts[] = {RBX, RBP, R12, R13, RSI, RDI,
                               R8,  R9,  R10, R11};
constexpr Reg GlobalRawHosts[] = {RBX, RBP, RSI, RDI, R8, R9, R10, R11};

/// Per-procedure map: pin this procedure's own hottest guests, weighting
/// uses inside layout back-edge spans (a cheap loop-depth estimate) and
/// charging each candidate its protocol cost -- entry load + return sync
/// for a callee-saved host, plus sync/reload traffic around call sites
/// for a volatile host. \p PreferredVol maps each guest to the volatile
/// host the whole program agrees on (or -1): procedures that pin the
/// same guest in the same host let their callers skip the post-call
/// reload (see rawCallBoundary), so agreement is worth chasing.
RegisterMap chooseProcMap(const MProc &P, bool Raw,
                          const signed char *PreferredVol) {
  RegisterMap M;
  for (unsigned G = 0; G < NumPhysRegs; ++G)
    M.GuestToHost[G] = -1;
  M.NumPinned = 0;
  if (P.Blocks.empty())
    return M;

  std::vector<uint64_t> W(P.Blocks.size(), 1);
  for (unsigned B = 0; B < P.Blocks.size(); ++B) {
    const MInst &T = P.Blocks[B].Insts.back();
    for (int Tgt : {T.Target1, T.Target2})
      if (Tgt >= 0 && unsigned(Tgt) <= B)
        for (unsigned J = unsigned(Tgt); J <= B; ++J)
          W[J] = std::min<uint64_t>(W[J] * 8, uint64_t(1) << 24);
  }

  uint64_t Freq[NumPhysRegs] = {};
  uint64_t CallW = 0;
  for (unsigned B = 0; B < P.Blocks.size(); ++B) {
    countBlockUses(P.Blocks[B], W[B], Freq);
    for (const MInst &I : P.Blocks[B].Insts)
      if (I.Op == MOpcode::Call || I.Op == MOpcode::CallInd)
        CallW += W[B];
  }

  unsigned Order[NumPhysRegs];
  for (unsigned G = 0; G < NumPhysRegs; ++G)
    Order[G] = G;
  std::stable_sort(Order, Order + NumPhysRegs, [&Freq](unsigned A, unsigned B) {
    return Freq[A] > Freq[B];
  });

  // Protocol cost per pin, in (weighted) memory ops per invocation:
  // every pin pays the entry load + return sync pair; a callee-saved
  // host adds its push/pop unless the raw frame pushes rbx/rbp anyway
  // (bodies with calls do, for the fixed-size depth frames); a volatile
  // host instead pays one sync + one reload around every weighted call
  // site, because the call destroys it. Hotter-than-cost guests get the
  // cheaper class first. rsi/rdi stay out of the volatile pool: they
  // carry helper-call arguments, and a pin there would break the
  // emitter's convention (and the verifier's model) that every write
  // into a pinned host defines that guest's current value.
  const bool HasCalls = CallW != 0;
  const uint64_t CostCS = (Raw && HasCalls) ? 2 : 4;
  // Raw mode carries unclobbered volatile pins across calls whose
  // callee cannot touch the host (rawCallBoundary), so a weighted call
  // site averages well under the full sync + reload pair; instrumented
  // mode always pays both (careful-tail resumability).
  const uint64_t CostVol = Raw ? 2 + CallW : 2 + 2 * CallW;
  const Reg CSPool[] = {RBX, RBP, R12, R13};
  const Reg VolPool[] = {R8, R9, R10, R11};
  const unsigned NumCS = Raw ? 2 : 4;
  const unsigned NumVol = sizeof(VolPool) / sizeof(VolPool[0]);
  unsigned NextCS = 0, NumVolTaken = 0;
  uint32_t VolTaken = 0;
  const bool VolFirst = CostVol <= CostCS;
  for (unsigned I = 0; I < NumPhysRegs; ++I) {
    unsigned G = Order[I];
    if (Freq[G] == 0)
      break;
    bool Assigned = false;
    for (int Pass = 0; Pass < 2 && !Assigned; ++Pass) {
      bool TryVol = (Pass == 0) == VolFirst;
      if (TryVol && NumVolTaken < NumVol && Freq[G] > CostVol) {
        // The program-wide preferred host if it is still free here,
        // else any free pool host (agreement lost, still correct).
        signed char H = PreferredVol ? PreferredVol[G] : -1;
        if (H < 0 || (VolTaken & (1u << H)))
          for (Reg Cand : VolPool)
            if (!(VolTaken & (1u << Cand))) {
              H = char(Cand);
              break;
            }
        VolTaken |= 1u << H;
        ++NumVolTaken;
        M.GuestToHost[G] = H;
        Assigned = true;
      } else if (!TryVol && NextCS < NumCS && Freq[G] > CostCS) {
        M.GuestToHost[G] = char(CSPool[NextCS++]);
        Assigned = true;
      }
    }
    if (Assigned) {
      ++M.NumPinned;
    } else if (Freq[G] <= CostCS && Freq[G] <= CostVol) {
      break; // sorted descending: nothing colder can qualify either
    }
  }
  return M;
}

/// Converts a published BitVector mask to the emitter's bitset form; an
/// absent mask (hand-built programs carry no contracts) means "assume
/// everything".
uint32_t maskBits(const BitVector &BV) {
  if (BV.size() == 0)
    return ~0u;
  uint32_t M = 0;
  for (unsigned G = 0; G < NumPhysRegs && G < BV.size(); ++G)
    if (BV.test(G))
      M |= 1u << G;
  return M;
}

} // namespace

RegisterMap ipra::x64::chooseRegisterMap(const MProgram &Prog, bool Raw) {
  uint64_t Freq[NumPhysRegs] = {};
  for (const MProc &P : Prog.Procs)
    for (const MBlock &B : P.Blocks)
      countBlockUses(B, 1, Freq);

  RegisterMap M;
  for (unsigned G = 0; G < NumPhysRegs; ++G)
    M.GuestToHost[G] = -1;

  unsigned Order[NumPhysRegs];
  for (unsigned G = 0; G < NumPhysRegs; ++G)
    Order[G] = G;
  std::stable_sort(Order, Order + NumPhysRegs,
                   [&Freq](unsigned A, unsigned B) { return Freq[A] > Freq[B]; });

  // Hottest first into callee-saved hosts (no traffic at helper calls),
  // then caller-saved. Raw mode gives up r12/r13: they hold the step
  // and call accumulators instead of guest state.
  const Reg *Pool = Raw ? GlobalRawHosts : GlobalHosts;
  const unsigned NumHosts =
      Raw ? sizeof(GlobalRawHosts) / sizeof(GlobalRawHosts[0])
          : sizeof(GlobalHosts) / sizeof(GlobalHosts[0]);
  unsigned N = 0;
  for (unsigned I = 0; I < NumPhysRegs && N < NumHosts; ++I) {
    unsigned G = Order[I];
    if (Freq[G] == 0)
      break;
    M.GuestToHost[G] = char(Pool[N++]);
  }
  M.NumPinned = N;
  return M;
}

uint32_t ipra::x64::volPinHostMask() {
  return (1u << R8) | (1u << R9) | (1u << R10) | (1u << R11);
}

CallBoundary ipra::x64::rawCallBoundary(const RegisterMap &Caller,
                                        uint32_t CalleeSync,
                                        uint32_t CalleeReload,
                                        uint32_t CalleeHostClobber,
                                        const RegisterMap *Callee) {
  CallBoundary B;
  const uint32_t VolHosts = volPinHostMask();
  for (unsigned G = 0; G < NumPhysRegs; ++G) {
    int H = Caller.GuestToHost[G];
    if (H < 0)
      continue;
    bool Vol = (VolHosts >> H) & 1;
    // Same: the callee pins this guest in this same volatile host. Its
    // entry reload reads the slot (so a dirty value must be synced) and
    // its epilogue leaves the host holding the guest's current value
    // (so the post-call reload is dead weight). Callee-saved hosts do
    // not qualify: the callee's pop restores the *caller's* host value,
    // which is outdated whenever the callee redefined the guest.
    bool Same = Vol && Callee && Callee->GuestToHost[G] == H;
    // Killed: the callee may overwrite the host with something that is
    // not this guest's value, so the slot must be current before the
    // call and the host reloaded after it.
    bool Killed = Vol && !Same && ((CalleeHostClobber >> H) & 1);
    if (Same || Killed || ((CalleeSync >> G) & 1))
      B.SyncNeed |= 1u << G;
    if (!Same && (Killed || ((CalleeReload >> G) & 1)))
      B.ReloadNeed |= 1u << G;
  }
  return B;
}

RegMapTable ipra::x64::buildRegMapTable(const MProgram &Prog, bool Raw,
                                        bool PerProc) {
  RegMapTable T;
  T.PerProc = PerProc;
  T.Global = chooseRegisterMap(Prog, Raw);
  if (!PerProc)
    return T;

  // Program-wide preferred volatile host per guest, by global weighted
  // frequency: every procedure that volatile-pins a guest tries the
  // same host first, maximizing the same-host agreement that lets
  // callers skip post-call reloads.
  constexpr Reg VolPool[] = {R8, R9, R10, R11};
  signed char PreferredVol[NumPhysRegs];
  {
    uint64_t Freq[NumPhysRegs] = {};
    for (const MProc &P : Prog.Procs)
      for (const MBlock &B : P.Blocks)
        countBlockUses(B, 1, Freq);
    unsigned Order[NumPhysRegs];
    for (unsigned G = 0; G < NumPhysRegs; ++G)
      Order[G] = G;
    std::stable_sort(Order, Order + NumPhysRegs,
                     [&Freq](unsigned A, unsigned B) { return Freq[A] > Freq[B]; });
    for (unsigned G = 0; G < NumPhysRegs; ++G)
      PreferredVol[G] = -1;
    for (unsigned I = 0; I < NumPhysRegs; ++I)
      if (Freq[Order[I]] != 0)
        PreferredVol[Order[I]] = char(VolPool[I % 4]);
  }

  T.Maps.reserve(Prog.Procs.size());
  for (const MProc &P : Prog.Procs)
    T.Maps.push_back(chooseProcMap(P, Raw, PreferredVol));

  // A callee may *write* its clobber set and *read* its parameter
  // registers plus the always-live machine registers (zero, sp, ra); a
  // caller must make both current before the call, but only the writes
  // invalidate the caller's cached copies.
  const uint32_t AlwaysRead =
      (1u << RegZero) | (1u << RegSP) | (1u << RegRA);
  bool HaveMasks = Prog.ClobberMasks.size() == Prog.Procs.size();
  bool HaveParams = Prog.ParamRegMasks.size() == Prog.Procs.size();
  T.CallSync.reserve(Prog.Procs.size());
  T.CallReload.reserve(Prog.Procs.size());
  for (size_t P = 0; P < Prog.Procs.size(); ++P) {
    uint32_t Clobber = HaveMasks ? maskBits(Prog.ClobberMasks[P]) : ~0u;
    uint32_t Params = HaveParams ? maskBits(Prog.ParamRegMasks[P]) : ~0u;
    T.CallReload.push_back(Clobber);
    T.CallSync.push_back(Clobber | Params | AlwaysRead);
  }
  uint32_t IndClobber = maskBits(Prog.DefaultClobber);
  T.IndReload = IndClobber;
  T.IndSync = IndClobber == ~0u ? ~0u : (IndClobber | AlwaysRead);

  // Transitive host-clobber summaries: which volatile pin hosts each
  // procedure may overwrite on a path that returns. Base facts: its own
  // volatile pins (the entry reload writes them), and everything if it
  // can reach a returning helper call (Print clobbers all SysV
  // caller-saved hosts) or an indirect call (unknown callee). Bail and
  // error stubs never return to JIT code, so they contribute nothing.
  // Direct calls union in the callee's mask; iterate to a fixpoint so
  // recursion and deep chains saturate.
  const uint32_t AllVol = volPinHostMask();
  T.IndHostClobber = AllVol;
  T.HostClobber.assign(Prog.Procs.size(), 0);
  for (size_t P = 0; P < Prog.Procs.size(); ++P) {
    uint32_t M = 0;
    for (unsigned G = 0; G < NumPhysRegs; ++G) {
      int H = T.Maps[P].GuestToHost[G];
      if (H >= 0 && ((AllVol >> H) & 1))
        M |= 1u << H;
    }
    for (const MBlock &B : Prog.Procs[P].Blocks)
      for (const MInst &I : B.Insts)
        if (I.Op == MOpcode::Print || I.Op == MOpcode::CallInd)
          M |= AllVol;
    T.HostClobber[P] = M;
  }
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (size_t P = 0; P < Prog.Procs.size(); ++P) {
      uint32_t M = T.HostClobber[P];
      for (const MBlock &B : Prog.Procs[P].Blocks)
        for (const MInst &I : B.Insts)
          if (I.Op == MOpcode::Call && I.Callee >= 0 &&
              size_t(I.Callee) < Prog.Procs.size())
            M |= T.HostClobber[I.Callee];
      if (M != T.HostClobber[P]) {
        T.HostClobber[P] = M;
        Changed = true;
      }
    }
  }
  return T;
}

void ipra::x64::setNativeCodeGenTestHooks(const NativeCodeGenTestHooks *Hooks) {
  TestHooks = Hooks;
}

const NativeCodeGenTestHooks *ipra::x64::nativeCodeGenTestHooks() {
  return TestHooks;
}

uint64_t
ipra::x64::nativeMapTraffic(const MProgram &Prog, const NativeCode &Code,
                            const std::vector<std::vector<uint64_t>> &Counts,
                            bool CallBoundaryOnly) {
  const auto &PerBlock = CallBoundaryOnly ? Code.BlockCallOps : Code.BlockSlotOps;
  uint64_t Traffic = 0;
  for (size_t P = 0; P < Prog.Procs.size() && P < Counts.size(); ++P) {
    if (P >= PerBlock.size())
      break;
    const auto &Ops = PerBlock[P];
    const auto &C = Counts[P];
    uint64_t Activations = 0;
    for (size_t B = 0; B < Ops.size() && B < C.size(); ++B) {
      Traffic += C[B] * Ops[B];
      // A block executes its Ret terminator once per execution, so the
      // summed counts of returning blocks are the activation count.
      if (Prog.Procs[P].Blocks[B].Insts.back().Op == MOpcode::Ret)
        Activations += C[B];
    }
    if (!CallBoundaryOnly && P < Code.ProcEntryOps.size())
      Traffic += Activations * Code.ProcEntryOps[P];
  }
  return Traffic;
}

bool ipra::x64::emitNativeProgram(const MProgram &Prog,
                                  const NativeCodeGenOptions &Opts,
                                  const RegMapTable &Maps,
                                  const std::vector<size_t> &ProfOff,
                                  NativeCode &Out, std::string &Err) {
  Out = NativeCode();
  return Emitter(Prog, Opts, Maps, ProfOff, Out, Err).run();
}
