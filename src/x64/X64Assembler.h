//===- x64/X64Assembler.h - Minimal x86-64 machine-code emitter -*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-level x86-64 encoder underneath the native JIT backend
/// (NativeCodeGen). It covers exactly the instruction forms the MIR
/// lowering needs -- 64-bit ALU ops in reg/reg, reg/mem, mem/reg and
/// reg/imm32 forms, moves, scaled-index loads/stores for the guest
/// memory image, setcc/movzx for compares, shifts by CL, idiv with its
/// cqo prologue, rel32 branches and calls with label fixups, and the
/// push/pop/ret frame glue -- nothing more. Memory operands are always
/// encoded [base + disp32] (mod=10, SIB only where rsp/r12 forces one),
/// so every emission has exactly one canonical byte sequence; the
/// encoder golden tests in tests/X64EncoderTest.cpp pin those bytes
/// against hand-assembled expectations.
///
/// Labels are forward-friendly: bind() may happen before or after the
/// jumps that reference it; finalize() patches all rel32 sites.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_X64_X64ASSEMBLER_H
#define IPRA_X64_X64ASSEMBLER_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ipra {
namespace x64 {

/// Host register numbering (the hardware encoding: bit 3 goes to REX).
enum Reg : uint8_t {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R9 = 9,
  R10 = 10,
  R11 = 11,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};

/// A [Base + Disp] memory operand (always encoded with a 4-byte
/// displacement).
struct Mem {
  Reg Base;
  int32_t Disp;
};

/// Condition codes (the low nibble of the 0F 8x / 0F 9x opcodes).
enum class Cond : uint8_t {
  O = 0x0,
  NO = 0x1,
  B = 0x2,  ///< unsigned <
  AE = 0x3, ///< unsigned >=
  E = 0x4,
  NE = 0x5,
  BE = 0x6, ///< unsigned <=
  A = 0x7,  ///< unsigned >
  S = 0x8,
  NS = 0x9,
  L = 0xC, ///< signed <
  GE = 0xD,
  LE = 0xE,
  G = 0xF,
};

/// Group-1 ALU operations; the value is the ModRM /r extension of the
/// 81-family immediate form (and selects the reg/rm opcode bytes).
enum class Alu : uint8_t {
  Add = 0,
  Or = 1,
  And = 4,
  Sub = 5,
  Xor = 6,
  Cmp = 7,
};

class Assembler {
public:
  const std::vector<uint8_t> &code() const { return Code; }
  size_t size() const { return Code.size(); }
  void reserve(size_t Bytes) { Code.reserve(Bytes); }

  //===--------------------------------------------------------------------===//
  // Labels
  //===--------------------------------------------------------------------===//

  int newLabel() {
    Labels.push_back(-1);
    return int(Labels.size()) - 1;
  }

  void bind(int Label) {
    assert(Labels[Label] < 0 && "label bound twice");
    Labels[Label] = int64_t(Code.size());
  }

  bool bound(int Label) const { return Labels[Label] >= 0; }
  size_t labelOffset(int Label) const {
    assert(bound(Label));
    return size_t(Labels[Label]);
  }

  /// Patches every recorded rel32 site. Call once, after all binds.
  void finalize() {
    for (const Fixup &F : Fixups) {
      assert(Labels[F.Label] >= 0 && "unbound label at finalize");
      int64_t Rel = Labels[F.Label] - (int64_t(F.Pos) + 4);
      assert(Rel >= INT32_MIN && Rel <= INT32_MAX);
      patch32(F.Pos, int32_t(Rel));
    }
    Fixups.clear();
  }

  //===--------------------------------------------------------------------===//
  // Moves
  //===--------------------------------------------------------------------===//

  /// mov r64, r64 (REX.W 89 /r, store form).
  void movRR(Reg Dst, Reg Src) {
    rex(1, Src, Dst);
    emit(0x89);
    modrmReg(Src, Dst);
  }

  /// mov r64, [base+disp32] (REX.W 8B /r).
  void movRM(Reg Dst, Mem M) {
    rex(1, Dst, M.Base);
    emit(0x8B);
    modrmMem(Dst, M);
  }

  /// mov [base+disp32], r64 (REX.W 89 /r).
  void movMR(Mem M, Reg Src) {
    rex(1, Src, M.Base);
    emit(0x89);
    modrmMem(Src, M);
  }

  /// mov r64, imm: REX.W C7 /0 (sign-extended imm32) when it fits,
  /// else the full movabs (REX.W B8+r imm64).
  void movRI(Reg Dst, int64_t Imm) {
    if (Imm >= INT32_MIN && Imm <= INT32_MAX) {
      rex(1, Reg(0), Dst);
      emit(0xC7);
      modrmReg(Reg(0), Dst);
      emit32(int32_t(Imm));
    } else {
      rex(1, Reg(0), Dst);
      emit(uint8_t(0xB8 | (Dst & 7)));
      emit64(Imm);
    }
  }

  /// mov qword [base+disp32], imm32 (sign-extended; REX.W C7 /0).
  void movMI(Mem M, int32_t Imm) {
    rex(1, Reg(0), M.Base);
    emit(0xC7);
    modrmMem(Reg(0), M);
    emit32(Imm);
  }

  /// mov r64, [base + index*8] (the guest-memory word access).
  void movRMScaled8(Reg Dst, Reg Base, Reg Index) {
    assert((Base & 7) != 5 && "mod=00 with rbp/r13 base needs a disp");
    rexXB(1, Dst, Index, Base);
    emit(0x8B);
    emit(uint8_t(0x04 | ((Dst & 7) << 3))); // mod=00 rm=100 (SIB)
    emit(uint8_t(0xC0 | ((Index & 7) << 3) | (Base & 7))); // scale=8
  }

  /// mov [base + index*8], r64.
  void movMRScaled8(Reg Base, Reg Index, Reg Src) {
    assert((Base & 7) != 5 && "mod=00 with rbp/r13 base needs a disp");
    rexXB(1, Src, Index, Base);
    emit(0x89);
    emit(uint8_t(0x04 | ((Src & 7) << 3)));
    emit(uint8_t(0xC0 | ((Index & 7) << 3) | (Base & 7)));
  }

  /// movsxd r64, r32 (sign-extend the low 32 bits: the int(RS) cast of
  /// indirect call targets).
  void movsxdRR(Reg Dst, Reg Src) {
    rex(1, Dst, Src);
    emit(0x63);
    modrmReg(Dst, Src);
  }

  /// movzx r64, r8-low (clears everything above a setcc result).
  void movzxRR8(Reg Dst, Reg Src8) {
    assert(Src8 <= RBX && "low-byte form only (al/cl/dl/bl)");
    rex(1, Dst, Src8);
    emit(0x0F);
    emit(0xB6);
    modrmReg(Dst, Src8);
  }

  //===--------------------------------------------------------------------===//
  // ALU (64-bit forms only)
  //===--------------------------------------------------------------------===//

  /// op r64, r64 (the RM "load" form: 03/0B/23/2B/33/3B /r).
  void aluRR(Alu Op, Reg Dst, Reg Src) {
    rex(1, Dst, Src);
    emit(uint8_t(unsigned(Op) * 8 + 3));
    modrmReg(Dst, Src);
  }

  /// op r64, [base+disp32].
  void aluRM(Alu Op, Reg Dst, Mem M) {
    rex(1, Dst, M.Base);
    emit(uint8_t(unsigned(Op) * 8 + 3));
    modrmMem(Dst, M);
  }

  /// op [base+disp32], r64 (the MR "store" form: 01/09/21/29/31/39).
  void aluMR(Alu Op, Mem M, Reg Src) {
    rex(1, Src, M.Base);
    emit(uint8_t(unsigned(Op) * 8 + 1));
    modrmMem(Src, M);
  }

  /// op r64, imm32 (81 /n, sign-extended).
  void aluRI(Alu Op, Reg Dst, int32_t Imm) {
    rex(1, Reg(0), Dst);
    emit(0x81);
    modrmReg(Reg(unsigned(Op)), Dst);
    emit32(Imm);
  }

  /// op qword [base+disp32], imm32 (81 /n, sign-extended).
  void aluMI(Alu Op, Mem M, int32_t Imm) {
    rex(1, Reg(0), M.Base);
    emit(0x81);
    modrmMem(Reg(unsigned(Op)), M);
    emit32(Imm);
  }

  /// imul r64, r64 (0F AF /r).
  void imulRR(Reg Dst, Reg Src) {
    rex(1, Dst, Src);
    emit(0x0F);
    emit(0xAF);
    modrmReg(Dst, Src);
  }

  void cqo() {
    emit(0x48);
    emit(0x99);
  }

  /// idiv r64 (F7 /7): rdx:rax / r -> rax, remainder rdx.
  void idivR(Reg R) {
    rex(1, Reg(0), R);
    emit(0xF7);
    modrmReg(Reg(7), R);
  }

  void negR(Reg R) {
    rex(1, Reg(0), R);
    emit(0xF7);
    modrmReg(Reg(3), R);
  }

  void notR(Reg R) {
    rex(1, Reg(0), R);
    emit(0xF7);
    modrmReg(Reg(2), R);
  }

  /// shl r64, cl (D3 /4).
  void shlCL(Reg R) {
    rex(1, Reg(0), R);
    emit(0xD3);
    modrmReg(Reg(4), R);
  }

  /// sar r64, cl (D3 /7): arithmetic right shift, the guest Shr.
  void sarCL(Reg R) {
    rex(1, Reg(0), R);
    emit(0xD3);
    modrmReg(Reg(7), R);
  }

  /// shl r64, imm8 (C1 /4): the *8 scaling of table indices.
  void shlRI(Reg R, uint8_t Imm) {
    rex(1, Reg(0), R);
    emit(0xC1);
    modrmReg(Reg(4), R);
    emit(Imm);
  }

  /// test r64, r64 (85 /r).
  void testRR(Reg A, Reg B) {
    rex(1, B, A);
    emit(0x85);
    modrmReg(B, A);
  }

  /// setcc r8-low (0F 9x /0), then movzx to widen.
  void setccR8(Cond C, Reg Dst8) {
    assert(Dst8 <= RBX && "low-byte form only (al/cl/dl/bl)");
    emit(0x0F);
    emit(uint8_t(0x90 | unsigned(C)));
    modrmReg(Reg(0), Dst8);
  }

  //===--------------------------------------------------------------------===//
  // Control flow
  //===--------------------------------------------------------------------===//

  void jmp(int Label) {
    emit(0xE9);
    emitRel32(Label);
  }

  void jcc(Cond C, int Label) {
    emit(0x0F);
    emit(uint8_t(0x80 | unsigned(C)));
    emitRel32(Label);
  }

  /// Raw-displacement branch/call forms: the decoder's re-encoding path
  /// (X64Decoder) reproduces label-resolved control flow byte-for-byte
  /// without inventing labels for already-linked code.
  void jmpRel32(int32_t Rel) {
    emit(0xE9);
    emit32(Rel);
  }

  void jccRel32(Cond C, int32_t Rel) {
    emit(0x0F);
    emit(uint8_t(0x80 | unsigned(C)));
    emit32(Rel);
  }

  void callRel32(int32_t Rel) {
    emit(0xE8);
    emit32(Rel);
  }

  void callLabel(int Label) {
    emit(0xE8);
    emitRel32(Label);
  }

  /// call rel32 whose target is patched manually later (cross-procedure
  /// calls resolved once every entry offset is known). \returns the
  /// position of the rel32 field.
  size_t callRelPatchable() {
    emit(0xE8);
    size_t Pos = Code.size();
    emit32(0);
    return Pos;
  }

  /// Patches a callRelPatchable() site to target byte offset \p Target.
  void patchCall(size_t RelPos, size_t Target) {
    int64_t Rel = int64_t(Target) - (int64_t(RelPos) + 4);
    assert(Rel >= INT32_MIN && Rel <= INT32_MAX);
    patch32(RelPos, int32_t(Rel));
  }

  /// call qword [base+disp32] (FF /2): the C++ helper trampolines.
  void callM(Mem M) {
    if (M.Base >= R8)
      emit(0x41);
    emit(0xFF);
    modrmMem(Reg(2), M);
  }

  void ret() { emit(0xC3); }

  void pushR(Reg R) {
    if (R >= R8)
      emit(0x41);
    emit(uint8_t(0x50 | (R & 7)));
  }

  void popR(Reg R) {
    if (R >= R8)
      emit(0x41);
    emit(uint8_t(0x58 | (R & 7)));
  }

private:
  struct Fixup {
    size_t Pos;
    int Label;
  };

  void emit(uint8_t B) { Code.push_back(B); }
  void emit32(int32_t V) {
    for (int I = 0; I < 4; ++I)
      Code.push_back(uint8_t(uint32_t(V) >> (8 * I)));
  }
  void emit64(int64_t V) {
    for (int I = 0; I < 8; ++I)
      Code.push_back(uint8_t(uint64_t(V) >> (8 * I)));
  }
  void patch32(size_t Pos, int32_t V) {
    for (int I = 0; I < 4; ++I)
      Code[Pos + I] = uint8_t(uint32_t(V) >> (8 * I));
  }

  void rex(int W, Reg RField, Reg BField) {
    emit(uint8_t(0x40 | (W << 3) | (((RField >> 3) & 1) << 2) |
                 ((BField >> 3) & 1)));
  }
  void rexXB(int W, Reg RField, Reg XField, Reg BField) {
    emit(uint8_t(0x40 | (W << 3) | (((RField >> 3) & 1) << 2) |
                 (((XField >> 3) & 1) << 1) | ((BField >> 3) & 1)));
  }

  void modrmReg(Reg RField, Reg RM) {
    emit(uint8_t(0xC0 | ((RField & 7) << 3) | (RM & 7)));
  }

  /// mod=10 [base+disp32]; rsp/r12 bases take the mandatory SIB byte.
  void modrmMem(Reg RField, Mem M) {
    if ((M.Base & 7) == 4) {
      emit(uint8_t(0x80 | ((RField & 7) << 3) | 4));
      emit(0x24); // scale=1, no index, base=rsp/r12
    } else {
      emit(uint8_t(0x80 | ((RField & 7) << 3) | (M.Base & 7)));
    }
    emit32(M.Disp);
  }

  void emitRel32(int Label) {
    if (Labels[Label] >= 0) {
      int64_t Rel = Labels[Label] - (int64_t(Code.size()) + 4);
      assert(Rel >= INT32_MIN && Rel <= INT32_MAX);
      emit32(int32_t(Rel));
    } else {
      Fixups.push_back({Code.size(), Label});
      emit32(0);
    }
  }

  std::vector<uint8_t> Code;
  std::vector<int64_t> Labels;
  std::vector<Fixup> Fixups;
};

} // namespace x64
} // namespace ipra

#endif // IPRA_X64_X64ASSEMBLER_H
