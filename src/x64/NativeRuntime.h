//===- x64/NativeRuntime.h - JIT<->host runtime contract -------*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data contract between JIT-emitted code and the C++ half of the
/// native engine. All run state the machine code touches lives behind
/// one pinned pointer (r15 -> NativeEnv): the guest register file, the
/// pixie counters, the shadow call stack cursor, the indirect-call
/// procedure table, the helper function pointers, and the error/bailout
/// mailbox the cold stubs fill before longjmp'ing back to the C++
/// wrapper. NativeCodeGen addresses every field as [r15 + offsetof],
/// so the struct must stay standard-layout (static_assert'd below).
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_X64_NATIVERUNTIME_H
#define IPRA_X64_NATIVERUNTIME_H

#include "target/Machine.h"

#include <cstdint>
#include <type_traits>

namespace ipra {
namespace x64 {

/// Why a cold stub ended the run (NativeEnv::ErrorCode). The C++
/// wrapper composes the reference interpreter's exact message from the
/// code plus the mailbox operands.
enum class NativeErr : uint64_t {
  None = 0,
  DivZero,     ///< "division by zero"
  RemZero,     ///< "remainder by zero"
  LoadOOB,     ///< "load out of bounds at word <ErrorValue>"
  StoreOOB,    ///< "store out of bounds at word <ErrorValue>"
  CallBadId,   ///< "call to invalid procedure id <ErrorValue>"
  CallExternal,///< "call to external procedure '<name of ErrorValue>'"
  CallDepth,   ///< "call depth exceeded"
  Budget,      ///< "execution budget exceeded (infinite loop?)" (raw mode)
  Convention,  ///< convention message pending in the context
};

/// One shadow-call-stack entry (instrumented mode): where execution
/// resumes in the *caller* after the callee's native ret, in source
/// coordinates. The careful tail interpreter walks these to unwind past
/// the bailout point; raw mode only advances the cursor (depth check)
/// without writing entries.
struct ShadowFrame {
  uint32_t Proc;
  uint32_t Block;
  uint64_t Inst; ///< Resume instruction index within Block.
};
static_assert(sizeof(ShadowFrame) == 16);

/// Indirect-call dispatch row, indexed by guest procedure id.
struct ProcTableEntry {
  const void *Entry;  ///< Native entry point (null without a body).
  uint64_t HasBody;   ///< Non-zero when callable.
};
static_assert(sizeof(ProcTableEntry) == 16);

struct NativeContext; // C++-side state (NativeEngine.cpp)

/// Host-stack shape of one raw-mode guest frame, per register-map policy.
/// Raw mode's call-depth check is `cmp rsp, [ShadowLimit]`, so the limit
/// pre-seed must know exactly how many host bytes one guest call consumes:
///
///  * global map: ret address (8) + the body's alignment pad (8) = 16;
///    the pre-seed slack covers the trampoline's own pad + call (24).
///  * per-procedure maps: every raw body additionally pushes rbx and rbp
///    (always both, so frames stay fixed-size and the rsp floor stays an
///    exact depth count) = 32; slack grows by the extra 16 in the first
///    frame (40).
constexpr uint64_t RawFrameBytesGlobal = 16;
constexpr uint64_t RawFrameSlackGlobal = 24;
constexpr uint64_t RawFrameBytesPerProc = 32;
constexpr uint64_t RawFrameSlackPerProc = 40;

/// Call-boundary sync protocol (per-procedure register maps)
/// ---------------------------------------------------------
/// With per-procedure maps the *canonical* home of every guest register
/// at a procedure boundary is its NativeEnv::Regs slot. Each body:
///
///  * on entry pushes its pinned callee-saved hosts (raw mode: always
///    rbx+rbp, see above), then loads every pinned guest from its slot;
///  * before a guest call writes back dirty pinned guests the callee may
///    observe -- raw mode computes rawCallBoundary() from the callee's
///    published summaries (clobber mask U param-reg mask U {zero, sp,
///    ra}, the transitive host-clobber mask, and the callee's own map);
///    instrumented mode writes back *all* dirty pins because a bailing
///    callee's careful tail reads NativeEnv::Regs as global truth;
///  * after the call reloads pinned guests whose host no longer holds
///    their current value: the callee's clobber mask, plus volatile
///    hosts its transitive host-clobber summary says it may overwrite.
///    A volatile-hosted pin outside both is *carried* -- it rides
///    through the call in its register, still dirty, with no sync and
///    no reload (the paper's penalty elision applied to the hosts);
///    when caller and callee pin the same guest in the same volatile
///    host, the caller syncs (the callee's entry reload reads the slot)
///    but skips the reload (the callee's epilogue leaves the host
///    holding the current value). Instrumented mode reloads every
///    volatile pin unconditionally;
///  * on return syncs dirty pins back to their slots, pops its saved
///    hosts, and leaves everything canonical for the caller.
///
/// Trampoline and indirect calls go through the same slots: the callee's
/// own prologue/epilogue is its canonical map, so callers never need the
/// callee's host assignment for correctness -- the masks (and, for the
/// same-host agreement, the published maps) are consulted purely to
/// elide traffic, and RegMapTable::blindBoundaries() can withhold all
/// of it to recover the convention-only baseline.

/// The single block of state JIT code addresses through r15.
struct NativeEnv {
  /// Guest register file. Pinned guest registers are synced here around
  /// helper calls and bailouts; unpinned ones live here permanently.
  int64_t Regs[NumPhysRegs];

  int64_t *Mem;       ///< Guest data memory (word-addressed base, r14).
  uint64_t MemWords;

  uint64_t MaxSteps;
  uint64_t Steps;     ///< Exact at transfers/errors (lazy segment charge).
  uint64_t ScalarLoads;
  uint64_t ScalarStores;
  uint64_t DataLoads;
  uint64_t DataStores;
  uint64_t Calls;

  uint64_t ShadowPtr;   ///< Byte cursor into the shadow stack.
  uint64_t ShadowBase;  ///< Cursor at depth 0.
  uint64_t ShadowLimit; ///< Base + 16*MaxCallDepth (the depth check).

  uint64_t *ProfBase;   ///< Flat per-(proc,block) counters, or null.
  const ProcTableEntry *ProcTable;
  uint64_t NumProcs;

  /// Helper entry points (call qword [r15 + offset]).
  void (*FnPrint)(NativeEnv *, int64_t);
  void (*FnSnapshot)(NativeEnv *, int64_t);
  uint64_t (*FnCheckRet)(NativeEnv *);
  void (*FnBail)(NativeEnv *);  ///< [[noreturn]]: careful tail + longjmp.
  void (*FnError)(NativeEnv *); ///< [[noreturn]]: longjmp with ErrorCode.

  /// Error mailbox (filled by cold stubs before FnError).
  uint64_t ErrorCode; ///< A NativeErr value.
  int64_t ErrorValue; ///< Address / procedure id operand.
  uint64_t ErrorProc;
  uint64_t ErrorBlock;

  /// Bailout mailbox (filled by budget-bail stubs before FnBail).
  uint64_t BailProc;
  uint64_t BailBlock;
  uint64_t BailInst;
  uint64_t BailEntry; ///< 1 = block entry (bookkeeping due), 0 = mid-block.

  int64_t ScratchA; ///< JIT spill slot (indirect-call id across helpers).

  NativeContext *Ctx;
};

static_assert(std::is_standard_layout_v<NativeEnv>,
              "JIT code addresses NativeEnv by offsetof");

} // namespace x64
} // namespace ipra

#endif // IPRA_X64_NATIVERUNTIME_H
