//===- regalloc/Summary.h - Register usage summaries -----------*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-procedure register-usage information the one-pass scheme
/// propagates bottom-up (Section 2): a used/unused flag per register
/// covering the whole call subtree, plus the parameter-register assignment
/// (Section 4). Open procedures never publish a summary; callers fall back
/// to the default linkage protocol (all caller-saved registers assumed
/// used, callee-saved preserved, parameters in a0..a3).
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_REGALLOC_SUMMARY_H
#define IPRA_REGALLOC_SUMMARY_H

#include "ir/Instruction.h"
#include "target/Machine.h"

#include <limits>
#include <vector>

namespace ipra {

/// Marker for a parameter passed on the stack instead of in a register.
constexpr unsigned StackParamLoc = std::numeric_limits<unsigned>::max();

struct RegUsageSummary {
  /// Registers whose contents a call to this procedure may destroy,
  /// including everything its callees (transitively) clobber, minus the
  /// callee-saved registers it saves/restores locally.
  BitVector Clobbered;
  /// Arrival location of each parameter (register id or StackParamLoc).
  std::vector<unsigned> ParamLocs;
  /// True when this is precise information from a processed closed
  /// procedure; false means "assume the default linkage protocol".
  bool Precise = false;
};

/// Summaries for every procedure in a module, defaulting to the linkage
/// protocol until the allocator publishes precise information.
class SummaryTable {
public:
  SummaryTable(const MachineDesc &M, unsigned NumProcs) : M(M) {
    Summaries.resize(NumProcs);
  }

  /// The default protocol summary for a procedure with \p NumParams
  /// parameters: first four in a0..a3, rest on the stack.
  RegUsageSummary makeDefault(unsigned NumParams) const {
    RegUsageSummary S;
    S.Clobbered = M.defaultClobber();
    for (unsigned I = 0; I < NumParams; ++I)
      S.ParamLocs.push_back(I < M.paramRegs().size() ? M.paramRegs()[I]
                                                     : StackParamLoc);
    S.Precise = false;
    return S;
  }

  void publish(int ProcId, RegUsageSummary S) {
    assert(ProcId >= 0 && ProcId < int(Summaries.size()) && "bad proc id");
    // Dropping non-precise summaries is observationally identical (every
    // reader branches on Precise before touching the other fields) and
    // makes the table race-free under the parallel pipeline: only the
    // single closed-procedure task that owns ProcId ever writes its slot,
    // and it does so before any dependent caller task is released. Open
    // procedures write nothing, so their slots stay constant while
    // unrelated tasks read them concurrently.
    if (!S.Precise)
      return;
    Summaries[ProcId] = std::move(S);
  }

  /// \returns the precise summary for \p ProcId if one was published;
  /// otherwise a summary with Precise == false (do not rely on its fields,
  /// use makeDefault for the callee's arity).
  const RegUsageSummary &lookup(int ProcId) const {
    assert(ProcId >= 0 && ProcId < int(Summaries.size()) && "bad proc id");
    return Summaries[ProcId];
  }

  /// Effective clobber mask of a call instruction: the callee's precise
  /// summary when inter-procedural information is in use and available,
  /// else the default protocol mask.
  const BitVector &effectiveClobber(const Instruction &Call,
                                    bool InterMode) const {
    assert(Call.isCall() && "not a call");
    if (InterMode && Call.Op == Opcode::Call) {
      const RegUsageSummary &S = lookup(Call.Callee);
      if (S.Precise)
        return S.Clobbered;
    }
    return M.defaultClobber();
  }

  /// Arrival locations for the arguments of \p Call.
  std::vector<unsigned> paramLocsForCall(const Instruction &Call,
                                         bool InterMode) const {
    assert(Call.isCall() && "not a call");
    if (InterMode && Call.Op == Opcode::Call) {
      const RegUsageSummary &S = lookup(Call.Callee);
      if (S.Precise) {
        assert(S.ParamLocs.size() == Call.Args.size() &&
               "summary arity mismatch");
        return S.ParamLocs;
      }
    }
    return makeDefault(Call.Args.size()).ParamLocs;
  }

  /// Registers that carry \p ProcId's incoming parameters: the published
  /// ParamLocs when precise, else the default protocol's leading parameter
  /// registers for its \p NumParams arity. This is the callee's *read*
  /// contract at entry -- what a caller must materialize before the call
  /// even though the clobber mask (a write contract) never mentions it.
  BitVector paramRegMask(int ProcId, unsigned NumParams) const {
    BitVector Mask(NumPhysRegs);
    const RegUsageSummary &S = lookup(ProcId);
    if (S.Precise) {
      for (unsigned Loc : S.ParamLocs)
        if (Loc != StackParamLoc)
          Mask.set(Loc);
    } else {
      for (unsigned I = 0; I < NumParams && I < M.paramRegs().size(); ++I)
        Mask.set(M.paramRegs()[I]);
    }
    return Mask;
  }

  const MachineDesc &machine() const { return M; }

private:
  const MachineDesc &M;
  std::vector<RegUsageSummary> Summaries;
};

} // namespace ipra

#endif // IPRA_REGALLOC_SUMMARY_H
