//===- regalloc/RegAlloc.cpp - Priority-based coloring ---------------------===//

#include "regalloc/RegAlloc.h"

#include "analysis/AnalysisManager.h"
#include "analysis/LiveRanges.h"
#include "analysis/Liveness.h"
#include "analysis/Loops.h"

#include <algorithm>
#include <cmath>

using namespace ipra;

namespace {

/// Cost of one memory access (load or store) in cycles; the R2000 model
/// charges one cycle per instruction.
constexpr double MemOpCost = 1.0;
/// A save/restore pair costs a store plus a load.
constexpr double SaveRestoreCost = 2.0 * MemOpCost;

class ProcAllocator {
public:
  ProcAllocator(const Procedure &Proc, const MachineDesc &M,
                SummaryTable &Summaries, bool IsOpen,
                const RegAllocOptions &Opts, AnalysisManager &AM)
      : Proc(Proc), M(M), Summaries(Summaries), Opts(Opts),
        InterMode(Opts.InterProcedural), Closed(InterMode && !IsOpen),
        LV(AM.liveness()), LRI(AM.liveRanges()), IG(AM.interference()),
        LI(LoopInfo::compute(Proc)) {
    R.TreatedOpen = !Closed;
    R.Assignment.assign(Proc.NumVRegs, -1);
    R.UsedRegs.resize(M.numRegs());
    R.CalleeSavedToPreserve.resize(M.numRegs());
    R.PropagatedCalleeSaved.resize(M.numRegs());
    EntryFreq = Proc.entry()->Freq;
  }

  AllocationResult run() {
    Bonus.assign(Proc.NumVRegs, std::vector<double>(M.numRegs(), 0.0));
    seedCallTreeUsage();
    chooseParamLocations();
    computeBonuses();
    assignByPriority();
    decidePreservation();
    publishSummary();
    recordStats();
    return std::move(R);
  }

private:
  const BitVector &clobberOfCrossing(const CallCrossing &C) const {
    if (InterMode && C.CalleeId >= 0) {
      const RegUsageSummary &S = Summaries.lookup(C.CalleeId);
      if (S.Precise)
        return S.Clobbered;
    }
    return M.defaultClobber();
  }

  /// Saving/restoring a callee-saved register at entry/exit is paid once
  /// per procedure activation, and only by the first live range that
  /// claims the register.
  double entryCost(unsigned Reg) const {
    bool CalleeSavedConvention = !Closed;
    if (!CalleeSavedConvention || !M.isCalleeSaved(Reg))
      return 0;
    if (R.UsedRegs.test(Reg))
      return 0; // already paid for
    return SaveRestoreCost * EntryFreq;
  }

  /// Save/restore traffic around the calls the range spans, given the
  /// callee usage knowledge available in the current mode.
  double crossingCost(const LiveRange &LR, unsigned Reg) const {
    double Cost = 0;
    for (const CallCrossing &C : LR.Crossings)
      if (clobberOfCrossing(C).test(Reg))
        Cost += SaveRestoreCost * C.Freq;
    return Cost;
  }

  double priority(const LiveRange &LR, unsigned Reg) const {
    double Benefit = LR.SpillSavings * MemOpCost;
    if (Reg < Bonus[LR.Reg].size())
      Benefit += Bonus[LR.Reg][Reg];
    double Cost = entryCost(Reg) + crossingCost(LR, Reg);
    return (Benefit - Cost) / std::max(LR.Span, 1.0);
  }

  /// Incoming parameter locations: allocator-chosen registers for closed
  /// procedures under register parameter passing, else the default
  /// protocol (first four in a0..a3, rest on the stack).
  void chooseParamLocations() {
    unsigned NumParams = Proc.ParamVRegs.size();
    bool AllocatorChosen = Closed && Opts.RegisterParams &&
                           NumParams <= M.allocatable().count();
    if (!AllocatorChosen) {
      R.IncomingParamLocs = Summaries.makeDefault(NumParams).ParamLocs;
      return;
    }
    // Pre-assign each parameter's whole live range to its arrival
    // register (Section 4: the parameter stays undisturbed from caller to
    // callee). Parameters mutually interfere, so registers are distinct.
    for (VReg P : Proc.ParamVRegs) {
      const LiveRange &LR = LRI.range(P);
      int BestReg = -1;
      double BestPrio = 0;
      BitVector Forbidden = forbiddenRegs(P);
      for (int Reg = M.allocatable().findFirst(); Reg >= 0;
           Reg = M.allocatable().findNext(Reg)) {
        if (Forbidden.test(Reg))
          continue;
        double Prio = priority(LR, unsigned(Reg));
        if (BestReg < 0 || isBetter(Prio, unsigned(Reg), BestPrio,
                                    unsigned(BestReg))) {
          BestReg = Reg;
          BestPrio = Prio;
        }
      }
      assert(BestReg >= 0 && "not enough registers for parameters");
      assignReg(P, unsigned(BestReg));
      R.IncomingParamLocs.push_back(unsigned(BestReg));
    }
  }

  /// Pre-assignment preferences (Section 4): an outgoing argument gains
  /// priority toward the register the callee expects it in, and under the
  /// default protocol an incoming parameter gains priority toward its
  /// arrival register (saving the entry move).
  void computeBonuses() {
    for (const auto &BB : Proc) {
      for (const Instruction &I : BB->Insts) {
        if (!I.isCall())
          continue;
        std::vector<unsigned> Locs =
            Summaries.paramLocsForCall(I, InterMode && Opts.RegisterParams);
        for (unsigned J = 0; J < I.Args.size(); ++J)
          if (Locs[J] != StackParamLoc)
            Bonus[I.Args[J]][Locs[J]] += BB->Freq * MemOpCost;
      }
    }
    for (unsigned I = 0; I < Proc.ParamVRegs.size(); ++I) {
      unsigned Loc = I < R.IncomingParamLocs.size() ? R.IncomingParamLocs[I]
                                                    : StackParamLoc;
      if (Loc != StackParamLoc && M.isAllocatable(Loc) &&
          R.Assignment[Proc.ParamVRegs[I]] < 0)
        Bonus[Proc.ParamVRegs[I]][Loc] += EntryFreq * MemOpCost;
    }
  }

  BitVector forbiddenRegs(VReg V) const {
    BitVector Forbidden(M.numRegs());
    IG.neighbors(V).forEachSetBit([this, &Forbidden](unsigned N) {
      if (R.Assignment[N] >= 0)
        Forbidden.set(unsigned(R.Assignment[N]));
    });
    return Forbidden;
  }

  /// Tie-break rule: prefer a register already used in the current call
  /// tree (minimizing each tree's register footprint), then the lower
  /// register index for determinism.
  bool isBetter(double Prio, unsigned Reg, double BestPrio,
                unsigned BestReg) const {
    constexpr double Eps = 1e-9;
    if (Prio > BestPrio + Eps)
      return true;
    if (Prio < BestPrio - Eps)
      return false;
    bool InTree = CallTreeUsed.test(Reg);
    bool BestInTree = CallTreeUsed.test(BestReg);
    if (InTree != BestInTree)
      return InTree;
    return Reg < BestReg;
  }

  void assignReg(VReg V, unsigned Reg) {
    assert(R.Assignment[V] < 0 && "double assignment");
    R.Assignment[V] = int(Reg);
    R.UsedRegs.set(Reg);
    CallTreeUsed.set(Reg);
  }

  /// Seeds the call-tree usage set (for the tie-break preference) with the
  /// register footprints of the subtrees below us.
  void seedCallTreeUsage() {
    CallTreeUsed.resize(M.numRegs());
    for (const auto &BB : Proc)
      for (const Instruction &I : BB->Insts)
        if (I.Op == Opcode::Call && InterMode &&
            Summaries.lookup(I.Callee).Precise)
          CallTreeUsed |= Summaries.lookup(I.Callee).Clobbered;
  }

  void assignByPriority() {
    std::vector<VReg> Pending;
    for (VReg V = 1; V < Proc.NumVRegs; ++V)
      if (R.Assignment[V] < 0 && LRI.range(V).exists())
        Pending.push_back(V);

    // Per-range best-candidate cache. An entry is recomputed only when an
    // assignment could have changed its answer; everything it reads --
    // Bonus, Crossings, Summaries -- is frozen during this loop, so an
    // entry is stale only through three monotone events:
    //  - a neighbor took the cached register (it became forbidden);
    //  - a callee-saved register was used for the first time in open
    //    mode, zeroing its entryCost for every range at once;
    //  - a register entered CallTreeUsed, flipping the tie-break
    //    preference for every range at once.
    // The last two happen at most once per physical register, so almost
    // every round recomputes only the assigned range's neighbors. A
    // cached -1 (no feasible register) is final: forbidden sets only
    // grow. Cached values equal what full recomputation would produce and
    // Pending keeps its scan order, so the assignment sequence -- and
    // with it every output -- is identical to the uncached loop.
    constexpr int Stale = -2;
    std::vector<int> CachedReg(Proc.NumVRegs, Stale);
    std::vector<double> CachedPrio(Proc.NumVRegs, 0.0);

    while (!Pending.empty()) {
      // Assign the pending range with the globally highest priority, then
      // repeat: each assignment shrinks its neighbors' choices.
      double GlobalBest = 0;
      int BestV = -1;
      int BestReg = -1;
      for (VReg V : Pending) {
        if (CachedReg[V] == Stale) {
          const LiveRange &LR = LRI.range(V);
          BitVector Forbidden = forbiddenRegs(V);
          int VBestReg = -1;
          double VBestPrio = 0;
          for (int Reg = M.allocatable().findFirst(); Reg >= 0;
               Reg = M.allocatable().findNext(Reg)) {
            if (Forbidden.test(Reg))
              continue;
            double Prio = priority(LR, unsigned(Reg));
            if (VBestReg < 0 ||
                isBetter(Prio, unsigned(Reg), VBestPrio,
                         unsigned(VBestReg))) {
              VBestReg = Reg;
              VBestPrio = Prio;
            }
          }
          CachedReg[V] = VBestReg;
          CachedPrio[V] = VBestPrio;
        }
        if (CachedReg[V] >= 0 && (BestV < 0 || CachedPrio[V] > GlobalBest)) {
          GlobalBest = CachedPrio[V];
          BestV = int(V);
          BestReg = CachedReg[V];
        }
      }
      // Priority zero means a register is no worse than memory; take it.
      if (BestV < 0 || GlobalBest < 0)
        break; // the rest live in memory
      bool EntryCostChanged = !R.UsedRegs.test(unsigned(BestReg)) &&
                              !Closed && M.isCalleeSaved(unsigned(BestReg));
      bool TieBreakChanged = !CallTreeUsed.test(unsigned(BestReg));
      assignReg(VReg(BestV), unsigned(BestReg));
      Pending.erase(std::find(Pending.begin(), Pending.end(), VReg(BestV)));
      if (EntryCostChanged || TieBreakChanged) {
        for (VReg V : Pending)
          if (CachedReg[V] != -1)
            CachedReg[V] = Stale;
      } else {
        IG.neighbors(VReg(BestV)).forEachSetBit([&](unsigned N) {
          if (CachedReg[N] == BestReg)
            CachedReg[N] = Stale;
        });
      }
    }
  }

  /// Union of everything this procedure's execution may write: its own
  /// assigned registers, outgoing argument registers, scratch/return
  /// registers, and whatever its calls clobber.
  BitVector totalDamage() const {
    BitVector Damage = R.UsedRegs;
    Damage.set(RegV0);
    Damage.set(RegV1);
    Damage.set(RegAT);
    for (const auto &BB : Proc) {
      for (const Instruction &I : BB->Insts) {
        if (!I.isCall())
          continue;
        Damage |= Summaries.effectiveClobber(I, InterMode);
        for (unsigned Loc :
             Summaries.paramLocsForCall(I, InterMode && Opts.RegisterParams))
          if (Loc != StackParamLoc)
            Damage.set(Loc);
      }
    }
    // Incoming parameter arrival registers are consumed.
    for (unsigned Loc : R.IncomingParamLocs)
      if (Loc != StackParamLoc)
        Damage.set(Loc);
    return Damage;
  }

  void decidePreservation() {
    BitVector Damage = totalDamage();
    BitVector CalleeSavedDamage = Damage & M.calleeSaved();
    bool UseCombined = Closed && Opts.ShrinkWrap && Opts.CombinedStrategy;

    if (!Closed) {
      // Default convention: preserve every damaged callee-saved register.
      R.CalleeSavedToPreserve = CalleeSavedDamage;
    } else if (UseCombined) {
      // Section 6: shrink-wrap-analyze all damaged callee-saved registers;
      // those whose save would land at entry propagate upward, the rest
      // are preserved locally around their activity regions.
      std::vector<BitVector> APP =
          computeAPP(Proc, R.Assignment, Summaries, InterMode);
      for (BitVector &A : APP)
        A &= CalleeSavedDamage;
      ShrinkWrapOptions SWOpts;
      SWOpts.Enable = true;
      SWOpts.LoopExtension = Opts.LoopExtension;
      ShrinkWrapResult Trial =
          placeSavesRestores(Proc, APP, M.numRegs(), LI, SWOpts);
      R.PropagatedCalleeSaved = Trial.SavedAtProcEntry & CalleeSavedDamage;
      R.CalleeSavedToPreserve = CalleeSavedDamage;
      R.CalleeSavedToPreserve.andNot(R.PropagatedCalleeSaved);
    } else {
      // Pure bottom-up propagation: nothing preserved locally.
      R.PropagatedCalleeSaved = CalleeSavedDamage;
    }

    // Final save/restore placement for the locally preserved set.
    std::vector<BitVector> APP =
        computeAPP(Proc, R.Assignment, Summaries, InterMode);
    for (BitVector &A : APP)
      A &= R.CalleeSavedToPreserve;
    ShrinkWrapOptions SWOpts;
    SWOpts.Enable = Opts.ShrinkWrap;
    SWOpts.LoopExtension = Opts.LoopExtension;
    R.Placement = placeSavesRestores(Proc, APP, M.numRegs(), LI, SWOpts);
  }

  /// Tallies what this allocation decided into R.Stats. Every value is a
  /// function of the allocation alone, so the counters are as
  /// schedule-independent as the allocation itself.
  void recordStats() {
    StatCounters &S = R.Stats;
    S.add(Closed ? "regalloc.procs_closed" : "regalloc.procs_open");

    unsigned Assigned = 0, Spilled = 0;
    for (VReg V = 1; V < Proc.NumVRegs; ++V) {
      if (!LRI.range(V).exists())
        continue;
      if (R.Assignment[V] >= 0)
        ++Assigned;
      else
        ++Spilled;
    }
    S.add("regalloc.ranges_assigned", Assigned);
    S.add("regalloc.ranges_spilled", Spilled);

    // Save/restore pairs this procedure is charged for locally, and the
    // callee-saved damage it pushed up the call graph instead (Section 6).
    S.add("regalloc.callee_saved_pairs", R.CalleeSavedToPreserve.count());
    S.add("regalloc.propagated_callee_saved",
          R.PropagatedCalleeSaved.count());

    // Parameter placement: how many arrive in registers, and how many of
    // those hit their vreg's assigned register exactly (no entry move).
    unsigned InRegs = 0, Hits = 0;
    for (unsigned I = 0; I < R.IncomingParamLocs.size(); ++I) {
      unsigned Loc = R.IncomingParamLocs[I];
      if (Loc == StackParamLoc)
        continue;
      ++InRegs;
      if (I < Proc.ParamVRegs.size() &&
          R.Assignment[Proc.ParamVRegs[I]] == int(Loc))
        ++Hits;
    }
    S.add("regalloc.params_in_regs", InRegs);
    S.add("regalloc.param_reg_hits", Hits);

    // Registers a precise summary frees for callers: the default protocol
    // would have assumed them clobbered, the summary proves they are not.
    if (R.Summary.Precise) {
      BitVector Freed = M.defaultClobber();
      Freed.andNot(R.Summary.Clobbered);
      S.add("regalloc.summary_regs_freed", Freed.count());
    }

    // Shrink-wrap placement shape for the locally preserved set.
    unsigned Saves = 0, Restores = 0, RestoresAtExit = 0;
    for (const auto &BB : Proc) {
      Saves += R.Placement.SaveAtEntry[BB->id()].count();
      unsigned Rest = R.Placement.RestoreAtExit[BB->id()].count();
      Restores += Rest;
      if (BB->terminator().Op == Opcode::Ret)
        RestoresAtExit += Rest;
    }
    unsigned SavesAtEntry = R.Placement.SaveAtEntry.empty()
                                ? 0
                                : R.Placement.SaveAtEntry[0].count();
    S.add("shrinkwrap.saves_placed", Saves);
    S.add("shrinkwrap.restores_placed", Restores);
    S.add("shrinkwrap.saves_moved_off_entry", Saves - SavesAtEntry);
    S.add("shrinkwrap.restores_moved_off_exit", Restores - RestoresAtExit);
    S.add("shrinkwrap.loop_extension_bits", R.Placement.LoopExtendedBits);
    S.add("shrinkwrap.range_extension_bits", R.Placement.RangeExtendedBits);
    S.add("shrinkwrap.extension_iterations",
          unsigned(std::max(R.Placement.ExtensionIterations, 0)));
  }

  void publishSummary() {
    if (Closed) {
      R.Summary.Clobbered = totalDamage();
      R.Summary.Clobbered.andNot(R.CalleeSavedToPreserve);
      R.Summary.ParamLocs = R.IncomingParamLocs;
      R.Summary.Precise = true;
    } else {
      R.Summary = Summaries.makeDefault(Proc.ParamVRegs.size());
    }
    Summaries.publish(Proc.id(), R.Summary);
  }

  const Procedure &Proc;
  const MachineDesc &M;
  SummaryTable &Summaries;
  const RegAllocOptions &Opts;
  bool InterMode;
  bool Closed;

  const Liveness &LV;
  const LiveRangeInfo &LRI;
  const InterferenceGraph &IG;
  LoopInfo LI;
  double EntryFreq = 1.0;

  std::vector<std::vector<double>> Bonus;
  BitVector CallTreeUsed;
  AllocationResult R;
};

} // namespace

std::vector<BitVector> ipra::computeAPP(const Procedure &Proc,
                                        const std::vector<int> &Assignment,
                                        const SummaryTable &Summaries,
                                        bool InterMode) {
  const MachineDesc &M = Summaries.machine();
  std::vector<BitVector> APP(Proc.numBlocks(), BitVector(M.numRegs()));
  for (const auto &BB : Proc) {
    BitVector &A = APP[BB->id()];
    for (const Instruction &I : BB->Insts) {
      auto Mark = [&A, &Assignment](VReg V) {
        if (Assignment[V] >= 0)
          A.set(unsigned(Assignment[V]));
      };
      if (VReg D = I.def())
        Mark(D);
      I.forEachUse(Mark);
      if (I.isCall())
        A |= Summaries.effectiveClobber(I, InterMode);
    }
  }
  // Parameter arrival moves write the parameters' registers at entry.
  for (VReg P : Proc.ParamVRegs)
    if (Assignment[P] >= 0)
      APP[0].set(unsigned(Assignment[P]));
  return APP;
}

AllocationResult ipra::allocateProcedure(const Procedure &Proc,
                                         const MachineDesc &M,
                                         SummaryTable &Summaries, bool IsOpen,
                                         const RegAllocOptions &Opts,
                                         AnalysisManager *AM) {
  if (Proc.IsExternal) {
    AllocationResult R;
    R.TreatedOpen = true;
    R.UsedRegs.resize(M.numRegs());
    R.CalleeSavedToPreserve.resize(M.numRegs());
    R.PropagatedCalleeSaved.resize(M.numRegs());
    R.Summary = Summaries.makeDefault(Proc.ParamVRegs.size());
    R.Stats.add("regalloc.procs_external");
    Summaries.publish(Proc.id(), R.Summary);
    return R;
  }
  if (AM)
    return ProcAllocator(Proc, M, Summaries, IsOpen, Opts, *AM).run();
  AnalysisManager LocalAM(Proc);
  return ProcAllocator(Proc, M, Summaries, IsOpen, Opts, LocalAM).run();
}

std::vector<AllocationResult> ipra::allocateModule(Module &Mod,
                                                   const MachineDesc &M,
                                                   SummaryTable &Summaries,
                                                   const RegAllocOptions &Opts) {
  CallGraph CG = CallGraph::build(Mod);
  std::vector<AllocationResult> Results(Mod.numProcedures());
  for (int ProcId : CG.bottomUpOrder()) {
    Procedure *Proc = Mod.procedure(ProcId);
    if (!Proc->IsExternal) {
      Proc->recomputeCFG();
      if (Opts.Profile && Opts.Profile->covers(ProcId, Proc->numBlocks()))
        applyProfile(*Proc, *Opts.Profile);
      else
        estimateFrequencies(*Proc, LoopInfo::compute(*Proc));
    }
    Results[ProcId] =
        allocateProcedure(*Proc, M, Summaries, CG.isOpen(ProcId), Opts);
  }
  return Results;
}
