//===- regalloc/RegAlloc.h - Priority-based coloring allocator -*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Priority-based coloring (Chow/Hennessy) extended per the paper:
///
///  - Intra-procedural mode (-O2): priorities are computed per live range
///    *and register class*; a range spanning calls prefers a callee-saved
///    register (one save/restore at entry/exit) while call-free ranges
///    prefer caller-saved registers (free). Every call is assumed to
///    clobber all caller-saved registers.
///  - Inter-procedural mode (-O3): procedures are processed bottom-up over
///    the call graph; at each call the callee's register-usage summary
///    prices each candidate register individually (cost only where the
///    callee's subtree actually clobbers it), all registers operate in
///    caller-saved mode in closed procedures, parameters live in
///    allocator-chosen registers, and ties prefer registers already used in
///    the current call tree to minimize each tree's footprint.
///  - Section 6 combined strategy: a callee-saved register whose
///    shrink-wrapped save would land at procedure entry is propagated
///    upward (reported clobbered); otherwise it is saved locally around its
///    region of activity and reported preserved.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_REGALLOC_REGALLOC_H
#define IPRA_REGALLOC_REGALLOC_H

#include "analysis/CallGraph.h"
#include "analysis/Profile.h"
#include "regalloc/Summary.h"
#include "shrinkwrap/ShrinkWrap.h"
#include "support/Statistics.h"

namespace ipra {

class AnalysisManager;

struct RegAllocOptions {
  /// Use callee summaries, caller-saved-mode operation and register
  /// parameter passing in closed procedures (-O3).
  bool InterProcedural = false;
  /// Shrink-wrap the callee-saved saves/restores (else entry/exit).
  bool ShrinkWrap = false;
  /// Section 6: propagate a callee-saved register up only when its save
  /// would land at procedure entry. Effective only with ShrinkWrap.
  bool CombinedStrategy = true;
  /// Pass parameters of closed procedures in allocator-chosen registers.
  bool RegisterParams = true;
  /// Keep shrink-wrapped save/restore pairs out of loops.
  bool LoopExtension = true;
  /// Optional dynamic block profile (the paper's planned future work).
  /// When it covers a procedure, measured per-activation frequencies
  /// replace the static 10^loop-depth estimate in every cost computation.
  const ProfileData *Profile = nullptr;
};

/// Everything code generation needs to materialize one procedure.
struct AllocationResult {
  /// Virtual register -> physical register, or -1 when spilled to memory.
  std::vector<int> Assignment;
  /// Arrival location of each incoming parameter (register/StackParamLoc).
  std::vector<unsigned> IncomingParamLocs;
  /// Allocatable registers this procedure's body writes.
  BitVector UsedRegs;
  /// Callee-saved registers this procedure must save/restore locally.
  BitVector CalleeSavedToPreserve;
  /// Where those saves/restores go (per-block entry/exit masks).
  ShrinkWrapResult Placement;
  /// Callee-saved registers used but deliberately propagated upward
  /// (closed procedures; diagnostics and tests).
  BitVector PropagatedCalleeSaved;
  /// The summary published to callers (Precise only for closed procs in
  /// inter-procedural mode).
  RegUsageSummary Summary;
  /// True if the procedure was treated as open.
  bool TreatedOpen = false;
  /// Named counters describing this allocation ("regalloc.*" and
  /// "shrinkwrap.*"): spilled vs assigned ranges, entry save/restore pairs
  /// charged, shrink-wrap placements moved off entry/exit, summary
  /// registers freed for callers, parameter-register hits. Deterministic
  /// for a fixed input -- timings never land here.
  StatCounters Stats;
};

/// Allocates registers for one procedure and publishes its summary into
/// \p Summaries. Block frequencies must already be estimated and the CFG
/// up to date. \p IsOpen comes from the call-graph classification. When
/// \p AM is non-null its cached liveness/ranges/interference are used
/// (and populated); otherwise a private manager lives for this call.
AllocationResult allocateProcedure(const Procedure &Proc,
                                   const MachineDesc &M,
                                   SummaryTable &Summaries, bool IsOpen,
                                   const RegAllocOptions &Opts,
                                   AnalysisManager *AM = nullptr);

/// Runs allocateProcedure over \p Mod in depth-first bottom-up call-graph
/// order (the paper's one-pass scheme). \returns one result per procedure,
/// indexed by procedure id.
std::vector<AllocationResult> allocateModule(Module &Mod,
                                             const MachineDesc &M,
                                             SummaryTable &Summaries,
                                             const RegAllocOptions &Opts);

/// Computes the per-block physical-register appearance sets (APP) used by
/// shrink-wrapping: any definition or use of an assigned register, plus the
/// effective clobber mask of every call. Exposed for tests and codegen.
std::vector<BitVector> computeAPP(const Procedure &Proc,
                                  const std::vector<int> &Assignment,
                                  const SummaryTable &Summaries,
                                  bool InterMode);

} // namespace ipra

#endif // IPRA_REGALLOC_REGALLOC_H
