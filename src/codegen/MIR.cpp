//===- codegen/MIR.cpp -----------------------------------------------------===//

#include "codegen/MIR.h"

using namespace ipra;

const char *ipra::mopcodeName(MOpcode Op) {
  switch (Op) {
  case MOpcode::Add:
    return "add";
  case MOpcode::Sub:
    return "sub";
  case MOpcode::Mul:
    return "mul";
  case MOpcode::Div:
    return "div";
  case MOpcode::Rem:
    return "rem";
  case MOpcode::And:
    return "and";
  case MOpcode::Or:
    return "or";
  case MOpcode::Xor:
    return "xor";
  case MOpcode::Shl:
    return "shl";
  case MOpcode::Shr:
    return "shr";
  case MOpcode::CmpEq:
    return "cmpeq";
  case MOpcode::CmpNe:
    return "cmpne";
  case MOpcode::CmpLt:
    return "cmplt";
  case MOpcode::CmpLe:
    return "cmple";
  case MOpcode::CmpGt:
    return "cmpgt";
  case MOpcode::CmpGe:
    return "cmpge";
  case MOpcode::Neg:
    return "neg";
  case MOpcode::Not:
    return "not";
  case MOpcode::Move:
    return "move";
  case MOpcode::LoadImm:
    return "li";
  case MOpcode::AddImm:
    return "addi";
  case MOpcode::Load:
    return "lw";
  case MOpcode::Store:
    return "sw";
  case MOpcode::Call:
    return "jal";
  case MOpcode::CallInd:
    return "jalr";
  case MOpcode::Ret:
    return "jr";
  case MOpcode::Br:
    return "j";
  case MOpcode::CondBr:
    return "bnez";
  case MOpcode::Print:
    return "print";
  }
  return "<bad-mop>";
}

std::string ipra::toString(const MInst &I) {
  std::string Out;
  auto R = [](uint8_t Reg) { return std::string(regName(Reg)); };
  switch (I.Op) {
  case MOpcode::Neg:
  case MOpcode::Not:
  case MOpcode::Move:
    return R(I.Rd) + " = " + mopcodeName(I.Op) + " " + R(I.Rs);
  case MOpcode::LoadImm:
    return R(I.Rd) + " = li " + std::to_string(I.Imm);
  case MOpcode::AddImm:
    return R(I.Rd) + " = addi " + R(I.Rs) + ", " + std::to_string(I.Imm);
  case MOpcode::Load:
    return R(I.Rd) + " = lw [" + R(I.Rs) + " + " + std::to_string(I.Imm) +
           "]" + (I.Mem == MemKind::Scalar ? " ;scalar" : "");
  case MOpcode::Store:
    return "sw [" + R(I.Rs) + " + " + std::to_string(I.Imm) + "], " +
           R(I.Rt) + (I.Mem == MemKind::Scalar ? " ;scalar" : "");
  case MOpcode::Call:
    return "jal proc" + std::to_string(I.Callee);
  case MOpcode::CallInd:
    return "jalr " + R(I.Rs);
  case MOpcode::Ret:
    return "jr $ra";
  case MOpcode::Br:
    return "j mbb" + std::to_string(I.Target1);
  case MOpcode::CondBr:
    return "bnez " + R(I.Rs) + ", mbb" + std::to_string(I.Target1) +
           ", mbb" + std::to_string(I.Target2);
  case MOpcode::Print:
    return "print " + R(I.Rs);
  default:
    return R(I.Rd) + " = " + mopcodeName(I.Op) + " " + R(I.Rs) + ", " +
           R(I.Rt);
  }
}

std::string ipra::toString(const MProc &P) {
  std::string Out = "mproc " + P.Name + " (frame " +
                    std::to_string(P.FrameWords) + " words) {\n";
  for (const MBlock &B : P.Blocks) {
    Out += "mbb" + std::to_string(B.Id) + ":\n";
    for (const MInst &I : B.Insts)
      Out += "  " + toString(I) + "\n";
  }
  Out += "}\n";
  return Out;
}
