//===- codegen/ParallelMove.cpp --------------------------------------------===//

#include "codegen/ParallelMove.h"

#include <algorithm>
#include <cassert>

using namespace ipra;

std::vector<RegMove> ipra::sequentializeMoves(std::vector<RegMove> Moves,
                                              unsigned Scratch) {
#ifndef NDEBUG
  for (unsigned I = 0; I < Moves.size(); ++I) {
    assert(Moves[I].first != Scratch && Moves[I].second != Scratch &&
           "scratch register participates in the parallel move");
    for (unsigned J = I + 1; J < Moves.size(); ++J)
      assert(Moves[I].first != Moves[J].first && "duplicate destination");
  }
#endif
  std::vector<RegMove> Out;
  Moves.erase(std::remove_if(
                  Moves.begin(), Moves.end(),
                  [](const RegMove &M) { return M.first == M.second; }),
              Moves.end());
  while (!Moves.empty()) {
    bool Emitted = false;
    for (unsigned I = 0; I < Moves.size(); ++I) {
      auto [Dst, Src] = Moves[I];
      bool DstIsSource = false;
      for (const RegMove &Other : Moves)
        DstIsSource |= Other.second == Dst;
      if (DstIsSource)
        continue;
      Out.push_back({Dst, Src});
      Moves.erase(Moves.begin() + I);
      Emitted = true;
      break;
    }
    if (Emitted)
      continue;
    // Every destination is also a source: break the cycle via scratch.
    unsigned Victim = Moves.front().second;
    Out.push_back({Scratch, Victim});
    for (RegMove &M : Moves)
      if (M.second == Victim)
        M.second = Scratch;
  }
  return Out;
}
