//===- codegen/ParallelMove.h - Parallel register-move resolution -*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resolves a set of register-to-register moves that must appear to happen
/// simultaneously (argument setup at calls, parameter arrival at entry)
/// into a sequence of single moves, breaking cycles through a scratch
/// register. Standard sequentialization: repeatedly emit a move whose
/// destination is no pending source; when none exists every destination is
/// also a source (a permutation cycle), so one value is parked in scratch.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_CODEGEN_PARALLELMOVE_H
#define IPRA_CODEGEN_PARALLELMOVE_H

#include <cstdint>
#include <utility>
#include <vector>

namespace ipra {

/// One (destination, source) register pair.
using RegMove = std::pair<unsigned, unsigned>;

/// Sequentializes \p Moves (destinations must be pairwise distinct; \p
/// Scratch must be neither a source nor a destination). \returns the move
/// sequence to execute in order.
std::vector<RegMove> sequentializeMoves(std::vector<RegMove> Moves,
                                        unsigned Scratch);

} // namespace ipra

#endif // IPRA_CODEGEN_PARALLELMOVE_H
