//===- codegen/CodeGen.h - IR to machine code lowering ---------*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers allocated IR procedures to machine code: stack frames, spill
/// code, caller-side save/restore around calls priced by the callee's
/// usage summary, parameter passing (register or stack), and the
/// (shrink-wrapped) callee-saved save/restore placement chosen by the
/// allocator.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_CODEGEN_CODEGEN_H
#define IPRA_CODEGEN_CODEGEN_H

#include "codegen/MIR.h"
#include "ir/Procedure.h"
#include "regalloc/RegAlloc.h"

namespace ipra {

struct CodeGenOptions {
  /// Must match the allocator's InterProcedural setting: controls which
  /// clobber masks and parameter locations call lowering assumes.
  bool InterMode = false;
  /// Must match the allocator's RegisterParams setting.
  bool RegisterParams = true;
};

/// Lowers the whole module. \p Alloc is indexed by procedure id (the
/// result of allocateModule).
MProgram generateCode(const Module &Mod,
                      const std::vector<AllocationResult> &Alloc,
                      const SummaryTable &Summaries,
                      const CodeGenOptions &Opts);

} // namespace ipra

#endif // IPRA_CODEGEN_CODEGEN_H
