//===- codegen/CodeGen.h - IR to machine code lowering ---------*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers allocated IR procedures to machine code: stack frames, spill
/// code, caller-side save/restore around calls priced by the callee's
/// usage summary, parameter passing (register or stack), and the
/// (shrink-wrapped) callee-saved save/restore placement chosen by the
/// allocator.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_CODEGEN_CODEGEN_H
#define IPRA_CODEGEN_CODEGEN_H

#include "codegen/MIR.h"
#include "ir/Procedure.h"
#include "regalloc/RegAlloc.h"

namespace ipra {

class AnalysisManager;

struct CodeGenOptions {
  /// Must match the allocator's InterProcedural setting: controls which
  /// clobber masks and parameter locations call lowering assumes.
  bool InterMode = false;
  /// Must match the allocator's RegisterParams setting.
  bool RegisterParams = true;
};

/// Lays out the globals segment at word address 0: fills
/// \p Prog.GlobalOffsets and \p Prog.GlobalImage. Must run before any
/// generateProcedure call that lowers a global access.
void layoutGlobals(const Module &Mod, MProgram &Prog);

/// Lowers a single non-external allocated procedure. \p GlobalOffsets is
/// the layout produced by layoutGlobals for the owning module. Pure with
/// respect to everything but its own procedure, so distinct procedures
/// may be lowered concurrently once their callees' summaries are
/// published. When \p Stats is non-null it receives the "codegen.*"
/// counters for this procedure: instructions emitted by category, spill
/// traffic, and the static save/restore instruction counts behind the
/// paper's Table 1/2 columns. A non-null \p AM supplies cached liveness
/// (code generation never mutates the IR, so a manager warmed by the
/// allocator is still valid here).
MProc generateProcedure(const Procedure &P, const AllocationResult &Alloc,
                        const SummaryTable &Summaries,
                        const CodeGenOptions &Opts,
                        const std::vector<int64_t> &GlobalOffsets,
                        StatCounters *Stats = nullptr,
                        AnalysisManager *AM = nullptr);

/// Lowers the whole module. \p Alloc is indexed by procedure id (the
/// result of allocateModule).
MProgram generateCode(const Module &Mod,
                      const std::vector<AllocationResult> &Alloc,
                      const SummaryTable &Summaries,
                      const CodeGenOptions &Opts);

} // namespace ipra

#endif // IPRA_CODEGEN_CODEGEN_H
