//===- codegen/CodeGen.cpp - IR to machine code lowering -------------------===//

#include "codegen/CodeGen.h"

#include "analysis/AnalysisManager.h"
#include "analysis/Liveness.h"
#include "codegen/ParallelMove.h"

#include <algorithm>
#include <map>

using namespace ipra;

namespace {

MOpcode aluOpcode(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return MOpcode::Add;
  case Opcode::Sub:
    return MOpcode::Sub;
  case Opcode::Mul:
    return MOpcode::Mul;
  case Opcode::Div:
    return MOpcode::Div;
  case Opcode::Rem:
    return MOpcode::Rem;
  case Opcode::And:
    return MOpcode::And;
  case Opcode::Or:
    return MOpcode::Or;
  case Opcode::Xor:
    return MOpcode::Xor;
  case Opcode::Shl:
    return MOpcode::Shl;
  case Opcode::Shr:
    return MOpcode::Shr;
  case Opcode::CmpEq:
    return MOpcode::CmpEq;
  case Opcode::CmpNe:
    return MOpcode::CmpNe;
  case Opcode::CmpLt:
    return MOpcode::CmpLt;
  case Opcode::CmpLe:
    return MOpcode::CmpLe;
  case Opcode::CmpGt:
    return MOpcode::CmpGt;
  case Opcode::CmpGe:
    return MOpcode::CmpGe;
  default:
    assert(false && "not a binary ALU opcode");
    return MOpcode::Add;
  }
}

/// Emits a set of register-to-register moves that must appear to happen in
/// parallel (argument setup, parameter arrival). Cycles are broken through
/// \p Scratch.
void emitParallelMoves(std::vector<RegMove> Moves, unsigned Scratch,
                       MBlock &Out) {
  for (RegMove M : sequentializeMoves(std::move(Moves), Scratch)) {
    MInst Mv(MOpcode::Move);
    Mv.Rd = uint8_t(M.first);
    Mv.Rs = uint8_t(M.second);
    Out.Insts.push_back(Mv);
  }
}

class ProcCodeGen {
public:
  ProcCodeGen(const Procedure &P, const AllocationResult &A,
              const SummaryTable &Summaries, const CodeGenOptions &Opts,
              const std::vector<int64_t> &GlobalOffsets, StatCounters *Stats,
              AnalysisManager &AM)
      : P(P), A(A), Summaries(Summaries), M(Summaries.machine()), Opts(Opts),
        GlobalOffsets(GlobalOffsets), LV(AM.liveness()), Stats(Stats) {}

  MProc run() {
    Out.Name = P.name();
    Out.Id = P.id();
    Out.NumParams = P.ParamVRegs.size();
    computeSaveSets();
    layoutFrame();
    for (const auto &BB : P) {
      Out.Blocks.push_back(MBlock());
      MBlock &MB = Out.Blocks.back();
      MB.Id = BB->id();
      if (BB->id() == 0)
        emitPrologue(MB);
      emitBlockEntrySaves(*BB, MB);
      if (BB->id() == 0)
        emitParamArrival(MB);
      emitBody(*BB, MB);
    }
    Out.FrameWords = FrameWords;
    if (Stats)
      recordStats();
    return std::move(Out);
  }

private:
  //===--------------------------------------------------------------------===
  // Frame layout
  //===--------------------------------------------------------------------===

  bool hasCalls() const {
    for (const auto &BB : P)
      for (const Instruction &I : BB->Insts)
        if (I.isCall())
          return true;
    return false;
  }

  /// Computes the caller-side save set of every call up front: registers
  /// holding values live across the call that the callee may clobber.
  /// One backward walk per block with calls, instead of re-walking the
  /// block for every call site (layoutFrame and lowerCall both ask).
  void computeSaveSets() {
    for (const auto &BB : P) {
      bool HasCall = false;
      for (const Instruction &I : BB->Insts)
        if (I.isCall()) {
          HasCall = true;
          break;
        }
      if (!HasCall)
        continue;
      LV.forEachInstLiveAfter(P, BB->id(), [&](int Idx,
                                               const BitVector &Live) {
        const Instruction &Call = BB->Insts[Idx];
        if (!Call.isCall())
          return;
        const BitVector &Clob =
            Summaries.effectiveClobber(Call, Opts.InterMode);
        std::vector<unsigned> Regs;
        Live.forEachSetBit([&](unsigned V) {
          if (VReg(V) == Call.def())
            return;
          int Reg = A.Assignment[V];
          if (Reg >= 0 && Clob.test(unsigned(Reg)))
            Regs.push_back(unsigned(Reg));
        });
        std::sort(Regs.begin(), Regs.end());
        Regs.erase(std::unique(Regs.begin(), Regs.end()), Regs.end());
        SaveSets[{BB->id(), Idx}] = std::move(Regs);
      });
    }
  }

  const std::vector<unsigned> &saveSetAt(const BasicBlock &BB,
                                         int InstIdx) const {
    return SaveSets.at({BB.id(), InstIdx});
  }

  std::vector<unsigned> argLocsFor(const Instruction &Call) const {
    return Summaries.paramLocsForCall(Call,
                                      Opts.InterMode && Opts.RegisterParams);
  }

  void layoutFrame() {
    // Outgoing stack-argument area.
    int64_t OutArgWords = 0;
    for (const auto &BB : P) {
      for (const Instruction &I : BB->Insts) {
        if (!I.isCall())
          continue;
        int64_t StackArgs = 0;
        for (unsigned Loc : argLocsFor(I))
          StackArgs += Loc == StackParamLoc;
        OutArgWords = std::max(OutArgWords, StackArgs);
      }
    }
    int64_t Next = OutArgWords;

    // Caller-side save slots: one per register ever saved around a call.
    for (const auto &BB : P) {
      for (unsigned Idx = 0; Idx < BB->Insts.size(); ++Idx) {
        const Instruction &I = BB->Insts[Idx];
        if (!I.isCall())
          continue;
        for (unsigned Reg : saveSetAt(*BB, int(Idx)))
          if (!ASlot.count(Reg))
            ASlot[Reg] = Next++;
      }
    }

    // Callee-saved preservation slots.
    const BitVector &Pres = A.CalleeSavedToPreserve;
    for (int Reg = Pres.findFirst(); Reg >= 0; Reg = Pres.findNext(Reg))
      BSlot[unsigned(Reg)] = Next++;

    if (hasCalls())
      RASlot = Next++;

    // Spill slots for unassigned virtual registers that appear in code.
    auto NeedsSlot = [this](VReg V) {
      if (V && A.Assignment[V] < 0 && !SpillSlot.count(V))
        SpillSlot[V] = -1; // patched below
    };
    for (const auto &BB : P) {
      for (const Instruction &I : BB->Insts) {
        NeedsSlot(I.def());
        I.forEachUse(NeedsSlot);
      }
    }
    for (VReg V : P.ParamVRegs)
      NeedsSlot(V);
    for (auto &[V, Slot] : SpillSlot)
      Slot = Next++;

    // Local aggregates.
    for (const FrameObject &FO : P.FrameObjects) {
      FrameObjOffset.push_back(Next);
      Next += FO.SizeWords;
    }
    FrameWords = Next;
  }

  //===--------------------------------------------------------------------===
  // Emission helpers
  //===--------------------------------------------------------------------===

  void emit(MBlock &MB, MInst I) { MB.Insts.push_back(I); }

  void emitLoadSlot(MBlock &MB, unsigned Reg, int64_t Slot, MemKind Kind) {
    MInst I(MOpcode::Load);
    I.Rd = uint8_t(Reg);
    I.Rs = RegSP;
    I.Imm = Slot;
    I.Mem = Kind;
    emit(MB, I);
  }

  void emitStoreSlot(MBlock &MB, unsigned Reg, int64_t Slot, MemKind Kind) {
    MInst I(MOpcode::Store);
    I.Rs = RegSP;
    I.Imm = Slot;
    I.Rt = uint8_t(Reg);
    I.Mem = Kind;
    emit(MB, I);
  }

  void emitMove(MBlock &MB, unsigned Dst, unsigned Src) {
    if (Dst == Src)
      return;
    MInst I(MOpcode::Move);
    I.Rd = uint8_t(Dst);
    I.Rs = uint8_t(Src);
    emit(MB, I);
  }

  /// Materializes the value of \p V into a register: its assigned register,
  /// or a load of its spill slot into \p Scratch.
  unsigned srcReg(MBlock &MB, VReg V, unsigned Scratch) {
    assert(V && "reading the null vreg");
    int Reg = A.Assignment[V];
    if (Reg >= 0)
      return unsigned(Reg);
    ++SpillLoads;
    emitLoadSlot(MB, Scratch, SpillSlot.at(V), MemKind::Scalar);
    return Scratch;
  }

  /// Register a definition of \p V should be computed into.
  unsigned defReg(VReg V) {
    int Reg = A.Assignment[V];
    return Reg >= 0 ? unsigned(Reg) : unsigned(RegAT);
  }

  /// Completes a definition: spills to the stack when unassigned.
  void finishDef(MBlock &MB, VReg V, unsigned Reg) {
    if (A.Assignment[V] < 0) {
      ++SpillStores;
      emitStoreSlot(MB, Reg, SpillSlot.at(V), MemKind::Scalar);
    }
  }

  //===--------------------------------------------------------------------===
  // Prologue / epilogue / parameter arrival
  //===--------------------------------------------------------------------===

  void emitPrologue(MBlock &MB) {
    if (FrameWords > 0) {
      MInst I(MOpcode::AddImm);
      I.Rd = RegSP;
      I.Rs = RegSP;
      I.Imm = -FrameWords;
      emit(MB, I);
    }
    if (RASlot >= 0)
      emitStoreSlot(MB, RegRA, RASlot, MemKind::Scalar);
  }

  void emitBlockEntrySaves(const BasicBlock &BB, MBlock &MB) {
    const BitVector &Save = A.Placement.SaveAtEntry[BB.id()];
    CalleeSaves += Save.count();
    for (int Reg = Save.findFirst(); Reg >= 0; Reg = Save.findNext(Reg))
      emitStoreSlot(MB, unsigned(Reg), BSlot.at(unsigned(Reg)),
                    MemKind::Scalar);
  }

  void emitParamArrival(MBlock &MB) {
    // 1. Spilled parameters: store their arrival registers.
    // 2. Register parameters: parallel move arrival -> assigned.
    // 3. Stack parameters: load from the caller's outgoing area.
    std::vector<std::pair<unsigned, unsigned>> RegMoves;
    std::vector<std::pair<VReg, int64_t>> StackParams; // vreg, incoming idx
    int64_t StackIdx = 0;
    for (unsigned I = 0; I < P.ParamVRegs.size(); ++I) {
      VReg V = P.ParamVRegs[I];
      unsigned Loc = A.IncomingParamLocs[I];
      if (Loc == StackParamLoc) {
        StackParams.push_back({V, StackIdx++});
        continue;
      }
      if (A.Assignment[V] < 0) {
        ++SpillStores;
        emitStoreSlot(MB, Loc, SpillSlot.at(V), MemKind::Scalar);
      } else {
        RegMoves.push_back({unsigned(A.Assignment[V]), Loc});
      }
    }
    emitParallelMoves(std::move(RegMoves), RegAT, MB);
    for (auto [V, Idx] : StackParams) {
      // Incoming stack args live just above our frame.
      unsigned Dst = defReg(V);
      MInst I(MOpcode::Load);
      I.Rd = uint8_t(Dst);
      I.Rs = RegSP;
      I.Imm = FrameWords + Idx;
      I.Mem = MemKind::Scalar;
      emit(MB, I);
      finishDef(MB, V, Dst);
    }
  }

  void emitEpilogue(MBlock &MB) {
    if (RASlot >= 0)
      emitLoadSlot(MB, RegRA, RASlot, MemKind::Scalar);
    if (FrameWords > 0) {
      MInst I(MOpcode::AddImm);
      I.Rd = RegSP;
      I.Rs = RegSP;
      I.Imm = FrameWords;
      emit(MB, I);
    }
  }

  //===--------------------------------------------------------------------===
  // Instruction lowering
  //===--------------------------------------------------------------------===

  void emitBody(const BasicBlock &BB, MBlock &MB) {
    for (unsigned Idx = 0; Idx < BB.Insts.size(); ++Idx) {
      const Instruction &I = BB.Insts[Idx];
      if (I.isTerminator()) {
        emitTerminator(BB, I, MB);
        continue;
      }
      lowerInst(BB, int(Idx), I, MB);
    }
  }

  void lowerInst(const BasicBlock &BB, int Idx, const Instruction &I,
                 MBlock &MB) {
    switch (I.Op) {
    case Opcode::LoadImm: {
      unsigned D = defReg(I.Dst);
      MInst MI(MOpcode::LoadImm);
      MI.Rd = uint8_t(D);
      MI.Imm = I.Imm;
      emit(MB, MI);
      finishDef(MB, I.Dst, D);
      return;
    }
    case Opcode::AddImm: {
      unsigned S = srcReg(MB, I.Src1, RegAT);
      unsigned D = defReg(I.Dst);
      MInst MI(MOpcode::AddImm);
      MI.Rd = uint8_t(D);
      MI.Rs = uint8_t(S);
      MI.Imm = I.Imm;
      emit(MB, MI);
      finishDef(MB, I.Dst, D);
      return;
    }
    case Opcode::Copy: {
      unsigned S = srcReg(MB, I.Src1, RegAT);
      if (A.Assignment[I.Dst] >= 0) {
        emitMove(MB, unsigned(A.Assignment[I.Dst]), S);
      } else {
        ++SpillStores;
        emitStoreSlot(MB, S, SpillSlot.at(I.Dst), MemKind::Scalar);
      }
      return;
    }
    case Opcode::Neg:
    case Opcode::Not: {
      unsigned S = srcReg(MB, I.Src1, RegAT);
      unsigned D = defReg(I.Dst);
      MInst MI(I.Op == Opcode::Neg ? MOpcode::Neg : MOpcode::Not);
      MI.Rd = uint8_t(D);
      MI.Rs = uint8_t(S);
      emit(MB, MI);
      finishDef(MB, I.Dst, D);
      return;
    }
    case Opcode::AddrGlobal: {
      unsigned D = defReg(I.Dst);
      MInst MI(MOpcode::LoadImm);
      MI.Rd = uint8_t(D);
      MI.Imm = GlobalOffsets[I.Global];
      emit(MB, MI);
      finishDef(MB, I.Dst, D);
      return;
    }
    case Opcode::AddrLocal: {
      unsigned D = defReg(I.Dst);
      MInst MI(MOpcode::AddImm);
      MI.Rd = uint8_t(D);
      MI.Rs = RegSP;
      MI.Imm = FrameObjOffset[I.Frame];
      emit(MB, MI);
      finishDef(MB, I.Dst, D);
      return;
    }
    case Opcode::LoadGlobal: {
      unsigned D = defReg(I.Dst);
      MInst MI(MOpcode::Load);
      MI.Rd = uint8_t(D);
      MI.Rs = RegZero;
      MI.Imm = GlobalOffsets[I.Global];
      MI.Mem = MemKind::Scalar;
      emit(MB, MI);
      finishDef(MB, I.Dst, D);
      return;
    }
    case Opcode::StoreGlobal: {
      unsigned S = srcReg(MB, I.Src1, RegAT);
      MInst MI(MOpcode::Store);
      MI.Rs = RegZero;
      MI.Imm = GlobalOffsets[I.Global];
      MI.Rt = uint8_t(S);
      MI.Mem = MemKind::Scalar;
      emit(MB, MI);
      return;
    }
    case Opcode::Load: {
      unsigned Base = srcReg(MB, I.Src1, RegAT);
      unsigned D = defReg(I.Dst);
      MInst MI(MOpcode::Load);
      MI.Rd = uint8_t(D);
      MI.Rs = uint8_t(Base);
      MI.Imm = I.Imm;
      MI.Mem = MemKind::Data;
      emit(MB, MI);
      finishDef(MB, I.Dst, D);
      return;
    }
    case Opcode::Store: {
      unsigned Base = srcReg(MB, I.Src1, RegAT);
      unsigned Val = srcReg(MB, I.Src2, RegV1);
      MInst MI(MOpcode::Store);
      MI.Rs = uint8_t(Base);
      MI.Imm = I.Imm;
      MI.Rt = uint8_t(Val);
      MI.Mem = MemKind::Data;
      emit(MB, MI);
      return;
    }
    case Opcode::FuncAddr: {
      unsigned D = defReg(I.Dst);
      MInst MI(MOpcode::LoadImm);
      MI.Rd = uint8_t(D);
      MI.Imm = I.Callee;
      emit(MB, MI);
      finishDef(MB, I.Dst, D);
      return;
    }
    case Opcode::Call:
    case Opcode::CallIndirect:
      lowerCall(BB, Idx, I, MB);
      return;
    case Opcode::Print: {
      unsigned S = srcReg(MB, I.Src1, RegAT);
      MInst MI(MOpcode::Print);
      MI.Rs = uint8_t(S);
      emit(MB, MI);
      return;
    }
    default: {
      assert(I.isBinaryALU() && "unhandled opcode in codegen");
      unsigned S1 = srcReg(MB, I.Src1, RegAT);
      unsigned S2 = srcReg(MB, I.Src2, RegV1);
      unsigned D = defReg(I.Dst);
      MInst MI(aluOpcode(I.Op));
      MI.Rd = uint8_t(D);
      MI.Rs = uint8_t(S1);
      MI.Rt = uint8_t(S2);
      emit(MB, MI);
      finishDef(MB, I.Dst, D);
      return;
    }
    }
  }

  void lowerCall(const BasicBlock &BB, int Idx, const Instruction &I,
                 MBlock &MB) {
    const std::vector<unsigned> &Saves = saveSetAt(BB, Idx);
    CallerSavePairs += unsigned(Saves.size());
    for (unsigned Reg : Saves)
      emitStoreSlot(MB, Reg, ASlot.at(Reg), MemKind::Scalar);

    std::vector<unsigned> Locs = argLocsFor(I);

    // Indirect-call target: stash it in V1 if argument setup would
    // overwrite its register.
    unsigned TargetReg = 0;
    if (I.Op == Opcode::CallIndirect) {
      TargetReg = srcReg(MB, I.Src1, RegV1);
      bool Clobbered = false;
      for (unsigned J = 0; J < Locs.size(); ++J)
        Clobbered |= Locs[J] != StackParamLoc && Locs[J] == TargetReg;
      if (Clobbered) {
        emitMove(MB, RegV1, TargetReg);
        TargetReg = RegV1;
      }
    }

    // Stack arguments first (they only read), then register arguments as
    // one parallel move, then spilled-argument loads straight into their
    // destination registers.
    int64_t StackIdx = 0;
    std::vector<std::pair<unsigned, unsigned>> RegMoves;
    std::vector<std::pair<unsigned, VReg>> MemArgs;
    for (unsigned J = 0; J < I.Args.size(); ++J) {
      VReg Arg = I.Args[J];
      if (Locs[J] == StackParamLoc) {
        unsigned S = srcReg(MB, Arg, RegAT);
        emitStoreSlot(MB, S, StackIdx++, MemKind::Scalar);
        continue;
      }
      if (A.Assignment[Arg] >= 0)
        RegMoves.push_back({Locs[J], unsigned(A.Assignment[Arg])});
      else
        MemArgs.push_back({Locs[J], Arg});
    }
    emitParallelMoves(std::move(RegMoves), RegAT, MB);
    SpillLoads += unsigned(MemArgs.size());
    for (auto [Loc, Arg] : MemArgs)
      emitLoadSlot(MB, Loc, SpillSlot.at(Arg), MemKind::Scalar);

    if (I.Op == Opcode::Call) {
      MInst MI(MOpcode::Call);
      MI.Callee = I.Callee;
      emit(MB, MI);
    } else {
      MInst MI(MOpcode::CallInd);
      MI.Rs = uint8_t(TargetReg);
      emit(MB, MI);
    }

    if (I.Dst) {
      if (A.Assignment[I.Dst] >= 0) {
        emitMove(MB, unsigned(A.Assignment[I.Dst]), RegV0);
      } else {
        ++SpillStores;
        emitStoreSlot(MB, RegV0, SpillSlot.at(I.Dst), MemKind::Scalar);
      }
    }
    for (unsigned Reg : Saves)
      emitLoadSlot(MB, Reg, ASlot.at(Reg), MemKind::Scalar);
  }

  void emitTerminator(const BasicBlock &BB, const Instruction &I,
                      MBlock &MB) {
    const BitVector &Restore = A.Placement.RestoreAtExit[BB.id()];
    CalleeRestores += Restore.count();
    auto EmitRestores = [&] {
      for (int Reg = Restore.findFirst(); Reg >= 0;
           Reg = Restore.findNext(Reg))
        emitLoadSlot(MB, unsigned(Reg), BSlot.at(unsigned(Reg)),
                     MemKind::Scalar);
    };
    switch (I.Op) {
    case Opcode::Br: {
      EmitRestores();
      MInst MI(MOpcode::Br);
      MI.Target1 = I.Target1;
      emit(MB, MI);
      return;
    }
    case Opcode::CondBr: {
      unsigned Cond = srcReg(MB, I.Src1, RegAT);
      if (Restore.test(Cond)) {
        // The restore would clobber the condition; park it in scratch.
        emitMove(MB, RegV1, Cond);
        Cond = RegV1;
      }
      EmitRestores();
      MInst MI(MOpcode::CondBr);
      MI.Rs = uint8_t(Cond);
      MI.Target1 = I.Target1;
      MI.Target2 = I.Target2;
      emit(MB, MI);
      return;
    }
    case Opcode::Ret: {
      if (I.Src1) {
        unsigned S = srcReg(MB, I.Src1, RegAT);
        emitMove(MB, RegV0, S);
      }
      EmitRestores();
      emitEpilogue(MB);
      emit(MB, MInst(MOpcode::Ret));
      return;
    }
    default:
      assert(false && "not a terminator");
    }
  }

  /// Tallies the finished procedure into *Stats: every instruction by
  /// category, plus the semantic counts accumulated during emission. Pure
  /// over Out, so the counters inherit codegen's determinism.
  void recordStats() {
    StatCounters &S = *Stats;
    for (const MBlock &MB : Out.Blocks) {
      for (const MInst &I : MB.Insts) {
        switch (I.Op) {
        case MOpcode::Move:
          S.add("codegen.insts_move");
          break;
        case MOpcode::LoadImm:
        case MOpcode::AddImm:
          S.add("codegen.insts_imm");
          break;
        case MOpcode::Load:
          S.add(I.Mem == MemKind::Scalar ? "codegen.insts_load_scalar"
                                         : "codegen.insts_load_data");
          break;
        case MOpcode::Store:
          S.add(I.Mem == MemKind::Scalar ? "codegen.insts_store_scalar"
                                         : "codegen.insts_store_data");
          break;
        case MOpcode::Call:
        case MOpcode::CallInd:
          S.add("codegen.insts_call");
          break;
        case MOpcode::Br:
        case MOpcode::CondBr:
        case MOpcode::Ret:
          S.add("codegen.insts_branch");
          break;
        case MOpcode::Print:
          S.add("codegen.insts_print");
          break;
        default:
          S.add("codegen.insts_alu");
          break;
        }
      }
    }
    S.add("codegen.insts_total", Out.instructionCount());
    S.add("codegen.frame_words", uint64_t(FrameWords));
    S.add("codegen.caller_save_pairs", CallerSavePairs);
    S.add("codegen.callee_saves", CalleeSaves);
    S.add("codegen.callee_restores", CalleeRestores);
    S.add("codegen.spill_loads", SpillLoads);
    S.add("codegen.spill_stores", SpillStores);
  }

  const Procedure &P;
  const AllocationResult &A;
  const SummaryTable &Summaries;
  const MachineDesc &M;
  const CodeGenOptions &Opts;
  const std::vector<int64_t> &GlobalOffsets;
  const Liveness &LV;
  /// (block id, instruction index) -> caller-side save set, precomputed
  /// by computeSaveSets for every call instruction.
  std::map<std::pair<int, int>, std::vector<unsigned>> SaveSets;
  StatCounters *Stats = nullptr;

  /// Semantic tallies accumulated at the emission sites (a register saved
  /// around a call is one *pair*: its store and reload together).
  unsigned CallerSavePairs = 0;
  unsigned CalleeSaves = 0;
  unsigned CalleeRestores = 0;
  unsigned SpillLoads = 0;
  unsigned SpillStores = 0;

  MProc Out;
  int64_t FrameWords = 0;
  int64_t RASlot = -1;
  std::map<unsigned, int64_t> ASlot;
  std::map<unsigned, int64_t> BSlot;
  std::map<VReg, int64_t> SpillSlot;
  std::vector<int64_t> FrameObjOffset;
};

} // namespace

void ipra::layoutGlobals(const Module &Mod, MProgram &Prog) {
  // Globals segment at word address 0.
  int64_t Next = 0;
  for (const GlobalVar &G : Mod.Globals) {
    Prog.GlobalOffsets.push_back(Next);
    for (int64_t W = 0; W < G.SizeWords; ++W)
      Prog.GlobalImage.push_back(W < int64_t(G.Init.size()) ? G.Init[W] : 0);
    Next += G.SizeWords;
  }
}

MProc ipra::generateProcedure(const Procedure &P,
                              const AllocationResult &Alloc,
                              const SummaryTable &Summaries,
                              const CodeGenOptions &Opts,
                              const std::vector<int64_t> &GlobalOffsets,
                              StatCounters *Stats, AnalysisManager *AM) {
  assert(!P.IsExternal && "externals have no body to lower");
  if (AM) {
    ProcCodeGen CG(P, Alloc, Summaries, Opts, GlobalOffsets, Stats, *AM);
    return CG.run();
  }
  AnalysisManager LocalAM(P);
  ProcCodeGen CG(P, Alloc, Summaries, Opts, GlobalOffsets, Stats, LocalAM);
  return CG.run();
}

MProgram ipra::generateCode(const Module &Mod,
                            const std::vector<AllocationResult> &Alloc,
                            const SummaryTable &Summaries,
                            const CodeGenOptions &Opts) {
  MProgram Prog;
  layoutGlobals(Mod, Prog);
  Prog.DefaultClobber = Summaries.machine().defaultClobber();
  for (unsigned Id = 0; Id < Mod.numProcedures(); ++Id) {
    const Procedure *P = Mod.procedure(int(Id));
    // What a call to this procedure may destroy, for the simulator's
    // dynamic convention checker. Default-protocol (open) procedures use
    // the default mask.
    {
      const RegUsageSummary &S = Summaries.lookup(int(Id));
      Prog.ClobberMasks.push_back(
          S.Precise ? S.Clobbered : Summaries.machine().defaultClobber());
      Prog.ParamRegMasks.push_back(Summaries.paramRegMask(
          int(Id), unsigned(P->ParamVRegs.size())));
    }
    if (P->IsExternal) {
      MProc MP;
      MP.Name = P->name();
      MP.Id = int(Id);
      MP.IsExternal = true;
      // Callers use the default protocol for the external's arity; the
      // MIR verifier checks their argument placement against it.
      MP.NumParams = unsigned(P->ParamVRegs.size());
      Prog.Procs.push_back(std::move(MP));
      continue;
    }
    Prog.Procs.push_back(
        generateProcedure(*P, Alloc[Id], Summaries, Opts, Prog.GlobalOffsets));
    if (P->IsMain)
      Prog.MainProcId = int(Id);
  }
  return Prog;
}
