//===- codegen/MIR.h - Machine IR for the R2000-like target ----*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-level program representation the simulator executes: one
/// instruction per cycle, physical registers, word-addressed memory.
/// Every load/store carries the MemKind tag that drives the pixie-style
/// "scalar loads/stores" counter from the paper's measurements section.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_CODEGEN_MIR_H
#define IPRA_CODEGEN_MIR_H

#include "ir/Instruction.h" // for MemKind
#include "target/Machine.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ipra {

enum class MOpcode {
  // Rd = Rs op Rt.
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
  // Rd = op Rs.
  Neg,
  Not,
  Move,
  // Rd = Imm.
  LoadImm,
  // Rd = Rs + Imm.
  AddImm,
  // Rd = mem[Rs + Imm].
  Load,
  // mem[Rs + Imm] = Rt.
  Store,
  // Direct call of procedure #Callee.
  Call,
  // Indirect call of the procedure whose id is in Rs.
  CallInd,
  Ret,
  // Jump to block #Target1.
  Br,
  // If Rs != 0 jump to #Target1, else #Target2.
  CondBr,
  // Emit Rs to the observable output stream.
  Print
};

const char *mopcodeName(MOpcode Op);

struct MInst {
  MOpcode Op;
  uint8_t Rd = 0;
  uint8_t Rs = 0;
  uint8_t Rt = 0;
  int64_t Imm = 0;
  int Callee = -1;
  int Target1 = -1;
  int Target2 = -1;
  /// Accounting category for Load/Store.
  MemKind Mem = MemKind::Data;

  explicit MInst(MOpcode Op) : Op(Op) {}

  bool isTerminator() const {
    return Op == MOpcode::Ret || Op == MOpcode::Br || Op == MOpcode::CondBr;
  }
};

struct MBlock {
  int Id = 0;
  std::vector<MInst> Insts;
};

struct MProc {
  std::string Name;
  int Id = 0;
  bool IsExternal = false;
  int64_t FrameWords = 0;
  unsigned NumParams = 0;
  std::vector<MBlock> Blocks;

  unsigned instructionCount() const {
    unsigned N = 0;
    for (const MBlock &B : Blocks)
      N += B.Insts.size();
    return N;
  }
};

/// A fully lowered program: machine procedures plus the initial data-memory
/// image for the globals segment (based at word address 0).
struct MProgram {
  std::vector<MProc> Procs;
  std::vector<int64_t> GlobalImage;
  /// Word offset of each module global within GlobalImage.
  std::vector<int64_t> GlobalOffsets;
  int MainProcId = -1;

  /// Per-procedure effective clobber masks (from the usage summaries the
  /// allocator published). Registers *not* in a procedure's mask must hold
  /// their pre-call values when it returns; the simulator's convention
  /// checker enforces this dynamically (see SimOptions::CheckConventions).
  std::vector<BitVector> ClobberMasks;

  /// The target's default (convention-only) clobber mask, recorded by the
  /// pipeline alongside ClobberMasks. This is the contract at indirect
  /// call sites: address-taken procedures are forced open in the call
  /// graph, so every procedure an indirect call can reach published
  /// exactly this mask. Empty for hand-built programs, which carry no
  /// clobber contracts at all.
  BitVector DefaultClobber;

  /// Per-procedure incoming parameter registers (from the allocator's
  /// published ParamLocs; default-protocol procedures get the convention's
  /// leading parameter registers). These are the registers a callee may
  /// *read* on entry without defining them first -- the native backend's
  /// per-procedure register maps need them because a callee's clobber mask
  /// only bounds its writes, not its reads. Empty for hand-built programs
  /// (no contracts; callers must assume everything is read).
  std::vector<BitVector> ParamRegMasks;

  unsigned instructionCount() const {
    unsigned N = 0;
    for (const MProc &P : Procs)
      N += P.instructionCount();
    return N;
  }
};

/// Renders one machine instruction, e.g. "$t0 = add $a0, $a1".
std::string toString(const MInst &I);
/// Renders a procedure with block labels.
std::string toString(const MProc &P);

} // namespace ipra

#endif // IPRA_CODEGEN_MIR_H
