//===- examples/open_closed.cpp - Open/closed procedures and summaries ----===//
//
// Shows the paper's Section 3 in action: one module mixing closed
// procedures (precise register-usage summaries, allocator-chosen parameter
// registers) with open ones -- recursive, address-taken, exported, and
// main -- which fall back to the default linkage protocol.
//
// Build & run:  cmake --build build && ./build/examples/open_closed
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "driver/Pipeline.h"

#include <cstdio>

using namespace ipra;

static const char *Program = R"MC(
// Closed: only called directly from inside this module.
func helper(x) { return x * 2 + 1; }
func chain(x) { return helper(helper(x)); }

// Open: self-recursive (a cycle in the call graph).
func fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }

// Open: address taken, so it may be called indirectly.
func callback(x) { return x - 1; }

// Open: exported to other compilation units.
export func api(x) { return chain(x) + 1; }

// Open: main is invoked by the operating system.
func main() {
  var f = &callback;
  print(chain(5));
  print(fact(6));
  print(f(10));
  print(api(3));
  return 0;
}
)MC";

int main() {
  DiagnosticEngine Diags;
  auto Compiled = compileProgram(Program, optionsFor(PaperConfig::C), Diags);
  if (!Compiled) {
    std::fprintf(stderr, "compile error:\n%s", Diags.str().c_str());
    return 1;
  }
  CallGraph CG = CallGraph::build(*Compiled->IR);

  std::printf("%-10s %-7s %-28s %-14s %s\n", "procedure", "class",
              "clobber mask (callers see)", "param regs",
              "callee-saved saved locally");
  for (const auto &Proc : *Compiled->IR) {
    const AllocationResult &R = Compiled->Alloc[Proc->id()];
    const RegUsageSummary &S = Compiled->Summaries->lookup(Proc->id());
    std::string Params;
    for (unsigned Loc : R.IncomingParamLocs)
      Params += (Loc == StackParamLoc ? std::string("stack")
                                      : std::string(regName(Loc))) +
                " ";
    std::printf("%-10s %-7s %-28s %-14s %s\n", Proc->name().c_str(),
                CG.isOpen(Proc->id()) ? "open" : "closed",
                S.Precise ? S.Clobbered.str().c_str()
                          : "(default protocol)",
                Params.c_str(), R.CalleeSavedToPreserve.str().c_str());
  }

  std::printf("\nNote how the closed procedures publish precise summaries "
              "and take parameters in\nallocator-chosen registers, while "
              "every open procedure reverts to the a0..a3 protocol\nand "
              "preserves the callee-saved registers its subtree damages.\n");

  RunStats Stats = runProgram(Compiled->Program);
  if (!Stats.OK) {
    std::fprintf(stderr, "runtime error: %s\n", Stats.Error.c_str());
    return 1;
  }
  std::printf("\nprogram output:");
  for (int64_t V : Stats.Output)
    std::printf(" %lld", (long long)V);
  std::printf("\n");
  return 0;
}
