//===- examples/allocator_lab.cpp - Sweeping the configuration space ------===//
//
// Runs one call-intensive workload through every paper configuration
// (base, A, B, C, D, E) plus the three ablation switches, printing the
// pixie counters side by side -- a quick laboratory for exploring how each
// mechanism trades register pressure against call overhead.
//
// Build & run:  cmake --build build && ./build/examples/allocator_lab
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace ipra;

static const char *Workload = R"MC(
func leaf1(x) { return x + 3; }
func leaf2(x) { return x * 2; }
func mid(a, b) {
  var u = leaf1(a);
  var v = leaf2(b);
  var w = a * b;
  return u + v + w;
}
func top(n) {
  var acc = 0;
  for (var i = 0; i < n; i = i + 1) {
    if (i % 3 == 0) {
      var h1 = i * 5; var h2 = i * 7; var h3 = i * 11;
      acc = acc + mid(h1, h2) + h3;
    } else {
      acc = acc + mid(i, i + 1);
    }
  }
  return acc;
}
func main() { print(top(3000)); return 0; }
)MC";

int main() {
  struct Row {
    std::string Name;
    CompileOptions Opts;
  };
  std::vector<Row> Rows;
  for (PaperConfig C : {PaperConfig::Base, PaperConfig::A, PaperConfig::B,
                        PaperConfig::C, PaperConfig::D, PaperConfig::E})
    Rows.push_back({paperConfigName(C), optionsFor(C)});
  CompileOptions NoCombined = optionsFor(PaperConfig::C);
  NoCombined.CombinedStrategy = false;
  Rows.push_back({"C without Section-6 strategy", NoCombined});
  CompileOptions NoRegParams = optionsFor(PaperConfig::C);
  NoRegParams.RegisterParams = false;
  Rows.push_back({"C without register params", NoRegParams});
  CompileOptions NoLoopExt = optionsFor(PaperConfig::C);
  NoLoopExt.LoopExtension = false;
  Rows.push_back({"C without loop extension", NoLoopExt});

  std::printf("%-32s %12s %14s %12s %12s\n", "configuration", "cycles",
              "scalar ld/st", "data ld/st", "cyc/call");
  std::vector<int64_t> Reference;
  for (const Row &R : Rows) {
    RunStats Stats = compileAndRun(Workload, R.Opts);
    if (!Stats.OK) {
      std::fprintf(stderr, "%s failed: %s\n", R.Name.c_str(),
                   Stats.Error.c_str());
      return 1;
    }
    if (Reference.empty())
      Reference = Stats.Output;
    else if (Stats.Output != Reference) {
      std::fprintf(stderr, "%s computed a different result!\n",
                   R.Name.c_str());
      return 1;
    }
    std::printf("%-32s %12llu %14llu %12llu %12.1f\n", R.Name.c_str(),
                (unsigned long long)Stats.Cycles,
                (unsigned long long)Stats.scalarMemOps(),
                (unsigned long long)(Stats.DataLoads + Stats.DataStores),
                Stats.cyclesPerCall());
  }
  std::printf("\nAll configurations computed: %lld\n",
              (long long)Reference.at(0));
  return 0;
}
