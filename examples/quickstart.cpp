//===- examples/quickstart.cpp - Five-minute tour of the public API -------===//
//
// Compiles a miniC program twice -- intra-procedural (-O2) and
// inter-procedural with shrink-wrapping (-O3) -- runs both on the
// simulator, and shows what changed: the machine code of one procedure and
// the pixie-style counters.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include <cstdio>

using namespace ipra;

static const char *Program = R"MC(
// A tiny call-intensive program: sum of squares via helper calls.
func square(x) { return x * x; }
func sumSquares(n) {
  var total = 0;
  for (var i = 1; i <= n; i = i + 1) {
    total = total + square(i);
  }
  return total;
}
func main() {
  print(sumSquares(100));
  return 0;
}
)MC";

int main() {
  DiagnosticEngine Diags;

  // 1. Compile with the two headline configurations.
  auto O2 = compileProgram(Program, optionsFor(PaperConfig::Base), Diags);
  auto O3 = compileProgram(Program, optionsFor(PaperConfig::C), Diags);
  if (!O2 || !O3) {
    std::fprintf(stderr, "compile error:\n%s", Diags.str().c_str());
    return 1;
  }

  // 2. Inspect the allocation of sumSquares under -O3: the allocator knows
  //    exactly which registers square() touches.
  Procedure *Callee = O3->IR->findProcedure("square");
  std::printf("square() clobbers: %s (published usage summary)\n",
              O3->Summaries->lookup(Callee->id()).Clobbered.str().c_str());

  // 3. Show the generated machine code for sumSquares in both modes.
  for (auto *Result : {O2.get(), O3.get()}) {
    const MProc &MP =
        Result->Program.Procs[Result->IR->findProcedure("sumSquares")->id()];
    std::printf("\n--- sumSquares, %s ---\n%s",
                Result == O2.get() ? "-O2 (intra-procedural)"
                                   : "-O3 + shrink-wrap",
                toString(MP).c_str());
  }

  // 4. Run both and compare the paper's metrics.
  RunStats StatsO2 = runProgram(O2->Program);
  RunStats StatsO3 = runProgram(O3->Program);
  if (!StatsO2.OK || !StatsO3.OK) {
    std::fprintf(stderr, "runtime error: %s%s\n", StatsO2.Error.c_str(),
                 StatsO3.Error.c_str());
    return 1;
  }
  std::printf("\noutput (both configs): %lld\n",
              (long long)StatsO2.Output.at(0));
  std::printf("%-28s %12s %12s\n", "", "-O2", "-O3+SW");
  std::printf("%-28s %12llu %12llu\n", "executed cycles",
              (unsigned long long)StatsO2.Cycles,
              (unsigned long long)StatsO3.Cycles);
  std::printf("%-28s %12llu %12llu\n", "scalar loads/stores",
              (unsigned long long)StatsO2.scalarMemOps(),
              (unsigned long long)StatsO3.scalarMemOps());
  std::printf("%-28s %12.1f %12.1f\n", "cycles per call",
              StatsO2.cyclesPerCall(), StatsO3.cyclesPerCall());
  return 0;
}
