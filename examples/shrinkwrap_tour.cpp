//===- examples/shrinkwrap_tour.cpp - Using the shrink-wrap solver --------===//
//
// Drives the shrink-wrapping data-flow solver directly on a hand-built
// CFG, the way a compiler back end would: build blocks, mark where each
// callee-saved register appears (APP), and read back the save/restore
// placement. Demonstrates the plain case, the loop rule, and the Fig. 2
// range extension.
//
// Build & run:  cmake --build build && ./build/examples/shrinkwrap_tour
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "shrinkwrap/ShrinkWrap.h"

#include <cstdio>

using namespace ipra;

namespace {

constexpr unsigned NumRegs = 4;

/// Builds a CFG from adjacency lists (0/1/2 successors per block).
Procedure *buildCFG(Module &M, const char *Name,
                    const std::vector<std::vector<int>> &Succs) {
  Procedure *P = M.makeProcedure(Name);
  for (unsigned I = 0; I < Succs.size(); ++I)
    P->makeBlock();
  IRBuilder B(P);
  for (unsigned I = 0; I < Succs.size(); ++I) {
    B.setInsertBlock(P->block(int(I)));
    if (Succs[I].empty())
      B.ret();
    else if (Succs[I].size() == 1)
      B.br(P->block(Succs[I][0]));
    else
      B.condBr(B.loadImm(1), P->block(Succs[I][0]), P->block(Succs[I][1]));
  }
  P->recomputeCFG();
  return P;
}

void show(const char *Title, const Procedure &P,
          const std::vector<BitVector> &APP, const ShrinkWrapOptions &Opts) {
  LoopInfo LI = LoopInfo::compute(P);
  ShrinkWrapResult R = placeSavesRestores(P, APP, NumRegs, LI, Opts);
  std::printf("%s\n", Title);
  for (unsigned B = 0; B < P.numBlocks(); ++B) {
    std::printf("  bb%u: app=%-10s save=%-10s restore=%s\n", B,
                APP[B].str().c_str(), R.SaveAtEntry[B].str().c_str(),
                R.RestoreAtExit[B].str().c_str());
  }
  std::string Err = verifyPlacement(P, R.ExtendedAPP, NumRegs, R);
  std::printf("  verified: %s\n\n", Err.empty() ? "yes" : Err.c_str());
}

} // namespace

int main() {
  Module M;

  // Case 1: a diamond with register 0 used on one arm only. The classic
  // convention saves at entry; shrink-wrapping confines the cost to the
  // arm that needs it.
  {
    Procedure *P = buildCFG(M, "diamond", {{1, 2}, {3}, {3}, {}});
    std::vector<BitVector> APP(P->numBlocks(), BitVector(NumRegs));
    APP[1].set(0);
    ShrinkWrapOptions Off;
    Off.Enable = false;
    show("diamond, shrink-wrap disabled (entry/exit convention):", *P, APP,
         Off);
    show("diamond, shrink-wrapped (cost moved into the arm):", *P, APP, {});
  }

  // Case 2: use inside a loop. Loop extension hoists the pair out so it
  // never executes once per iteration.
  {
    Procedure *P = buildCFG(M, "loop", {{1}, {2, 3}, {1}, {}});
    std::vector<BitVector> APP(P->numBlocks(), BitVector(NumRegs));
    APP[2].set(1);
    ShrinkWrapOptions NoLoopExt;
    NoLoopExt.LoopExtension = false;
    show("loop, naive placement (pair inside the loop!):", *P, APP,
         NoLoopExt);
    show("loop, with loop extension (pair hoisted out):", *P, APP, {});
  }

  // Case 3: the Fig. 2 join: naive placement would need an edge split;
  // range extension grows the region instead and re-solves.
  {
    Procedure *P = buildCFG(M, "fig2", {{1, 2}, {4}, {3, 4}, {}, {}});
    std::vector<BitVector> APP(P->numBlocks(), BitVector(NumRegs));
    APP[1].set(2);
    APP[4].set(2);
    show("figure-2 join, range extension engaged:", *P, APP, {});
  }
  return 0;
}
