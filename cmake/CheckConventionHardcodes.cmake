# Guard against convention assumptions leaking back into the compiler:
# outside src/target/, no code may spell allocatable-pool registers by
# name (RegA0..RegA3, RegT0..RegT6, RegS0..RegS8). Every layer must ask
# MachineDesc/ConventionSpec instead, so a --convention change cannot
# silently miss a hard-coded site. The special registers (RegZero, RegAT,
# RegV0, RegV1, RegSP, RegRA) are machine, not convention, and stay fair
# game.
#
# The x86-64 JIT layer (src/x64/, and its auditor in src/verify/) is the
# likeliest place for a regression: it re-lowers guest registers to host
# ones and could easily bake a pool name into a register map or a
# verifier entry state. Those layers must go through RegisterMap /
# MachineDesc like everyone else, so they are explicitly required below
# -- the guard fails if the glob ever stops seeing them (e.g. after a
# directory move), rather than silently shrinking its coverage.
#
# Run as a ctest:  cmake -DSOURCE_DIR=<repo> -P CheckConventionHardcodes.cmake

if(NOT SOURCE_DIR)
  message(FATAL_ERROR "pass -DSOURCE_DIR=<repo root>")
endif()

file(GLOB_RECURSE sources
  "${SOURCE_DIR}/src/*.cpp" "${SOURCE_DIR}/src/*.h"
  "${SOURCE_DIR}/tools/*.cpp")

set(x64_covered 0)
set(verify_covered 0)
set(maptable_covered 0)
set(violations "")
foreach(file ${sources})
  if(file MATCHES "/src/target/")
    continue()
  endif()
  if(file MATCHES "/src/x64/")
    math(EXPR x64_covered "${x64_covered} + 1")
  endif()
  if(file MATCHES "/src/verify/")
    math(EXPR verify_covered "${verify_covered} + 1")
  endif()
  # The runtime register-map tables (per-procedure RegisterMap choices,
  # call-boundary sync/reload masks, the NativeEnv layout they index)
  # are the single likeliest place for a guest pool name to bake in, so
  # the guard names them explicitly: renaming or moving them must fail
  # here, not silently drop them from coverage.
  if(file MATCHES "/src/x64/(NativeCodeGen|NativeRuntime)\\.(h|cpp)$")
    math(EXPR maptable_covered "${maptable_covered} + 1")
  endif()
  file(STRINGS "${file}" hits REGEX "Reg(A[0-3]|T[0-6]|S[0-8])[^a-zA-Z0-9_]")
  foreach(hit ${hits})
    string(APPEND violations "${file}: ${hit}\n")
  endforeach()
endforeach()

if(x64_covered EQUAL 0 OR verify_covered EQUAL 0)
  message(FATAL_ERROR
    "convention-hardcode guard lost coverage of src/x64/ (${x64_covered} "
    "files) or src/verify/ (${verify_covered} files) -- update the globs")
endif()
if(maptable_covered LESS 3)
  message(FATAL_ERROR
    "convention-hardcode guard lost sight of the runtime register-map "
    "tables (saw ${maptable_covered} of NativeCodeGen.h/.cpp, "
    "NativeRuntime.h) -- update the self-check after the move/rename")
endif()

if(violations)
  message(FATAL_ERROR
    "pool registers referenced by name outside src/target/ -- query "
    "MachineDesc/ConventionSpec instead:\n${violations}")
endif()
message(STATUS "no convention hardcodes outside src/target/")
