# Guard against convention assumptions leaking back into the compiler:
# outside src/target/, no code may spell allocatable-pool registers by
# name (RegA0..RegA3, RegT0..RegT6, RegS0..RegS8). Every layer must ask
# MachineDesc/ConventionSpec instead, so a --convention change cannot
# silently miss a hard-coded site. The special registers (RegZero, RegAT,
# RegV0, RegV1, RegSP, RegRA) are machine, not convention, and stay fair
# game.
#
# Run as a ctest:  cmake -DSOURCE_DIR=<repo> -P CheckConventionHardcodes.cmake

if(NOT SOURCE_DIR)
  message(FATAL_ERROR "pass -DSOURCE_DIR=<repo root>")
endif()

file(GLOB_RECURSE sources
  "${SOURCE_DIR}/src/*.cpp" "${SOURCE_DIR}/src/*.h"
  "${SOURCE_DIR}/tools/*.cpp")

set(violations "")
foreach(file ${sources})
  if(file MATCHES "/src/target/")
    continue()
  endif()
  file(STRINGS "${file}" hits REGEX "Reg(A[0-3]|T[0-6]|S[0-8])[^a-zA-Z0-9_]")
  foreach(hit ${hits})
    string(APPEND violations "${file}: ${hit}\n")
  endforeach()
endforeach()

if(violations)
  message(FATAL_ERROR
    "pool registers referenced by name outside src/target/ -- query "
    "MachineDesc/ConventionSpec instead:\n${violations}")
endif()
message(STATUS "no convention hardcodes outside src/target/")
