//===- bench/bench_table1.cpp - Reproduce Table 1 --------------------------===//
//
// Table 1 of the paper: % reduction in executed cycles (I) and in scalar
// loads/stores (II) for configurations
//   A = -O2 + shrink-wrap,  B = -O3 (no shrink-wrap),  C = -O3 + shrink-wrap
// against the base of -O2 with shrink-wrap disabled, over the 13-program
// suite, ordered by source size. Also reproduces the Appendix program
// descriptions and the cycles/call column.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace ipra;
using namespace ipra::bench;

namespace {

void printTable1() {
  std::printf("Table 1. Effects of applying techniques on 13 programs\n");
  std::printf("(base: -O2 with shrink-wrap disabled; "
              "A: -O2+SW, B: -O3, C: -O3+SW)\n\n");
  std::printf("%-10s %-9s %6s %11s | %7s %7s %7s | %8s %8s %8s\n",
              "program", "language", "lines", "cycles/call", "I.A%", "I.B%",
              "I.C%", "II.A%", "II.B%", "II.C%");
  std::printf("%.*s\n", 108,
              "-----------------------------------------------------------"
              "-------------------------------------------------");
  // The whole suite x config run matrix fans out across the simulation
  // pool; rows come back in suite order, so the table below is identical
  // to the old one-run-at-a-time loop.
  std::vector<std::vector<RunStats>> Runs = mustRunSuite(
      {PaperConfig::Base, PaperConfig::A, PaperConfig::B, PaperConfig::C});
  size_t Row = 0;
  for (const BenchmarkProgram &B : benchmarkSuite()) {
    RunStats &Base = Runs[Row][0];
    RunStats &A = Runs[Row][1];
    RunStats &Bc = Runs[Row][2];
    RunStats &C = Runs[Row][3];
    ++Row;
    checkSameOutput(Base, A, B.Name);
    checkSameOutput(Base, Bc, B.Name);
    checkSameOutput(Base, C, B.Name);
    std::printf(
        "%-10s %-9s %6d %11.0f | %6.1f%% %6.1f%% %6.1f%% | %7.1f%% %7.1f%% "
        "%7.1f%%\n",
        B.Name, B.Language, B.sourceLines(), Base.cyclesPerCall(),
        pctReduction(Base.Cycles, A.Cycles),
        pctReduction(Base.Cycles, Bc.Cycles),
        pctReduction(Base.Cycles, C.Cycles),
        pctReduction(Base.scalarMemOps(), A.scalarMemOps()),
        pctReduction(Base.scalarMemOps(), Bc.scalarMemOps()),
        pctReduction(Base.scalarMemOps(), C.scalarMemOps()));
  }
  std::printf("\nAppendix. Benchmark descriptions\n");
  for (const BenchmarkProgram &B : benchmarkSuite())
    std::printf("  %-10s %s\n", B.Name, B.Description);
  std::printf("\n");
}

/// Wall-clock throughput of the full pipeline per configuration, for the
/// curious: compile + simulate one mid-sized benchmark.
void BM_CompileAndRun(benchmark::State &State) {
  PaperConfig Config = PaperConfig(State.range(0));
  const BenchmarkProgram *Prog = findBenchmark("dhrystone");
  for (auto _ : State) {
    RunStats Stats = mustRun(Prog->Source, Config);
    benchmark::DoNotOptimize(Stats.Cycles);
    State.counters["sim_cycles"] = double(Stats.Cycles);
    State.counters["scalar_ops"] = double(Stats.scalarMemOps());
  }
}
BENCHMARK(BM_CompileAndRun)
    ->Arg(int(PaperConfig::Base))
    ->Arg(int(PaperConfig::A))
    ->Arg(int(PaperConfig::B))
    ->Arg(int(PaperConfig::C))
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  std::string StatsPath = takeStatsJsonFlag(argc, argv);
  printTable1();
  if (!StatsPath.empty())
    writeSuiteStats(StatsPath, {PaperConfig::Base, PaperConfig::A,
                                PaperConfig::B, PaperConfig::C});
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
