//===- bench/bench_fig3.cpp - Reproduce Figure 3 ---------------------------===//
//
// Figure 3 of the paper: two consecutive diamonds whose "then" arms use a
// callee-saved register. Shrink-wrapping moves the save/restore from
// procedure entry/exit into the arms, so of the four equiprobable paths:
//   neither arm  -> shrink-wrap wins (no saves at all),
//   both arms    -> shrink-wrap loses (two pairs instead of one),
//   one arm only -> no net effect.
// The bench drives each path separately and prints the measured
// save/restore traffic with shrink-wrap off (base) and on (config A).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace ipra;
using namespace ipra::bench;

namespace {

std::string fig3Program(int TakeA, int TakeB) {
  std::string Src = R"MC(
func helper(x) { return x + 1; }
func f(takeA, takeB, n) {
  var result = n;
  if (takeA) {
    // a1 lives across two calls: a callee-saved register is the right
    // choice, and its save/restore can wrap just this arm.
    var a1 = n * 2;
    var a2 = helper(n);
    var a3 = helper(n + a1);
    result = result + a1 + a2 + a3;
  }
  if (takeB) {
    var b1 = n * 5;
    var b2 = helper(n + 1);
    var b3 = helper(n + b1);
    result = result + b1 + b2 + b3;
  }
  return result;
}
func main() {
  var s = 0;
  for (var i = 0; i < 2000; i = i + 1) {
    s = s + f(TAKE_A, TAKE_B, i);
  }
  print(s);
  return 0;
}
)MC";
  auto ReplaceAll = [&Src](const std::string &From, const std::string &To) {
    for (size_t Pos = Src.find(From); Pos != std::string::npos;
         Pos = Src.find(From, Pos + To.size()))
      Src.replace(Pos, From.size(), To);
  };
  ReplaceAll("TAKE_A", std::to_string(TakeA));
  ReplaceAll("TAKE_B", std::to_string(TakeB));
  return Src;
}

void printFig3() {
  std::printf("Figure 3. Effects of shrink-wrap depend on the path taken\n");
  std::printf("(scalar loads+stores per run; lower is better)\n\n");
  std::printf("  %-12s %12s %12s %10s\n", "path", "no shrink", "shrink-wrap",
              "effect");
  int Wins = 0;
  int Losses = 0;
  int Neutral = 0;
  // All four paths x {no-shrink, shrink-wrap} as one parallel batch.
  std::vector<RunJob> Jobs;
  for (int TakeA : {0, 1}) {
    for (int TakeB : {0, 1}) {
      std::string Src = fig3Program(TakeA, TakeB);
      CompileOptions NoSW = optionsFor(PaperConfig::Base);
      NoSW.MidEndOpt = false; // keep the branches: the paths are the point
      CompileOptions SW = optionsFor(PaperConfig::A);
      SW.MidEndOpt = false;
      Jobs.push_back({Src, NoSW});
      Jobs.push_back({Src, SW});
    }
  }
  std::vector<RunStats> Runs = mustRunBatch(Jobs);
  size_t Cell = 0;
  for (int TakeA : {0, 1}) {
    for (int TakeB : {0, 1}) {
      RunStats &Off = Runs[Cell];
      RunStats &On = Runs[Cell + 1];
      Cell += 2;
      checkSameOutput(Off, On, "fig3");
      const char *Effect = "none";
      if (On.scalarMemOps() < Off.scalarMemOps()) {
        Effect = "positive";
        ++Wins;
      } else if (On.scalarMemOps() > Off.scalarMemOps()) {
        Effect = "negative";
        ++Losses;
      } else {
        ++Neutral;
      }
      std::printf("  arms=(%d,%d)   %12llu %12llu %10s\n", TakeA, TakeB,
                  (unsigned long long)Off.scalarMemOps(),
                  (unsigned long long)On.scalarMemOps(), Effect);
    }
  }
  std::printf("\n  positive on %d path(s), negative on %d, neutral on %d "
              "(paper: 1 positive, 1 negative, 2 no net effect)\n\n",
              Wins, Losses, Neutral);
}

void BM_Fig3Path(benchmark::State &State) {
  std::string Src = fig3Program(int(State.range(0)), int(State.range(1)));
  for (auto _ : State) {
    RunStats Stats = mustRun(Src, PaperConfig::A);
    benchmark::DoNotOptimize(Stats.Cycles);
  }
}
BENCHMARK(BM_Fig3Path)
    ->Args({0, 0})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printFig3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
