//===- bench/bench_fig1.cpp - Reproduce Figure 1 ---------------------------===//
//
// Figure 1 of the paper: "Re-use of register in simultaneously active
// procedures". q's variable a dies before the call to p and c is born
// after it, so a, b (inside p) and c can all occupy the *same* register
// with no save/restore even though p and q are active at the same time.
// We compile the figure's shape under -O3, print the actual assignments,
// and verify that the call executes zero save/restore traffic.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace ipra;
using namespace ipra::bench;

namespace {

const char *Fig1Source = R"MC(
func p(x) {
  var b = x * 3;       // b lives only inside p
  return b + 1;
}
func q(y) {
  var a = y + 5;       // a dies at the call (it is the argument)
  var c = p(a);        // c is born from the call result
  return c * 2;
}
func main() { return q(7); }
)MC";

void printFig1() {
  std::printf("Figure 1. Re-use of one register in simultaneously active "
              "procedures\n\n");
  DiagnosticEngine Diags;
  auto Compiled = compileProgram(Fig1Source, optionsFor(PaperConfig::C),
                                 Diags);
  if (!Compiled) {
    std::fprintf(stderr, "%s\n", Diags.str().c_str());
    std::exit(1);
  }
  for (const char *Name : {"p", "q"}) {
    Procedure *Proc = Compiled->IR->findProcedure(Name);
    const AllocationResult &R = Compiled->Alloc[Proc->id()];
    std::printf("  %s: registers used = %s, callee-saved preserved "
                "locally = %s\n",
                Name, R.UsedRegs.str().c_str(),
                R.CalleeSavedToPreserve.str().c_str());
  }
  const AllocationResult &P =
      Compiled->Alloc[Compiled->IR->findProcedure("p")->id()];
  const AllocationResult &Q =
      Compiled->Alloc[Compiled->IR->findProcedure("q")->id()];
  BitVector Shared = P.UsedRegs & Q.UsedRegs;
  std::printf("  registers shared by p and q without saves: %s\n",
              Shared.str().c_str());

  // And dynamically: no register save/restore executes at the call. The
  // only remaining scalar traffic is the return-address linkage (2 ops per
  // non-leaf activation: main and q), which no allocation can remove.
  RunStats Base = mustRun(Fig1Source, PaperConfig::Base);
  RunStats C = mustRun(Fig1Source, PaperConfig::C);
  checkSameOutput(Base, C, "fig1");
  constexpr uint64_t LinkageOnly = 4; // sw/lw of $ra in main and in q
  std::printf("  scalar loads+stores: base=%llu, -O3=%llu (only the $ra "
              "linkage traffic of main and q remains)\n\n",
              (unsigned long long)Base.scalarMemOps(),
              (unsigned long long)C.scalarMemOps());
  if (Shared.none() || C.scalarMemOps() > LinkageOnly) {
    std::fprintf(stderr, "fig1: expected register sharing with no "
                         "save/restore traffic under -O3\n");
    std::exit(1);
  }
}

void BM_Fig1Allocation(benchmark::State &State) {
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto Compiled =
        compileProgram(Fig1Source, optionsFor(PaperConfig::C), Diags);
    benchmark::DoNotOptimize(Compiled);
  }
}
BENCHMARK(BM_Fig1Allocation)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char **argv) {
  printFig1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
