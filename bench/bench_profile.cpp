//===- bench/bench_profile.cpp - Profile feedback (the paper's future work) ===//
//
// The paper attributes ccom's slowdown under -O3 to missing execution-
// frequency knowledge ("the feedback of profile data to the register
// allocator is a capability that we plan to add in the future"). This
// bench implements and evaluates that capability: configuration C with
// the static 10^loop-depth estimate vs. C recompiled with measured block
// frequencies, over the whole suite.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace ipra;
using namespace ipra::bench;

namespace {

void printProfileTable() {
  std::printf("Profile-guided inter-procedural allocation "
              "(paper Section 8's future work)\n");
  std::printf("(%% reduction vs the -O2 base; C uses static frequency "
              "estimates, C+prof measured ones)\n\n");
  std::printf("  %-10s | %9s %9s | %10s %10s\n", "program", "I.C%",
              "I.C+prof%", "II.C%", "II.C+prof%");
  int Helped = 0;
  int Hurt = 0;
  // One job per suite program (its base run, its C run, and the
  // train+recompile+run profile build), fanned across the simulation
  // pool. Each job fills its own row, so the table prints in suite order
  // and failure messages are reported deterministically afterwards.
  struct Row {
    RunStats Base, C, P;
    std::string BuildError;
  };
  std::vector<std::function<Row()>> Jobs;
  for (const BenchmarkProgram &B : benchmarkSuite())
    Jobs.push_back([&B] {
      Row R;
      R.Base = compileAndRun(B.Source, optionsFor(PaperConfig::Base));
      R.C = compileAndRun(B.Source, optionsFor(PaperConfig::C));
      DiagnosticEngine Diags;
      auto Guided =
          compileWithProfile(B.Source, optionsFor(PaperConfig::C), Diags);
      if (!Guided)
        R.BuildError = Diags.str();
      else
        R.P = runProgram(Guided->Program);
      return R;
    });
  sim::BatchRunner Runner;
  std::vector<Row> Rows = Runner.map(Jobs);
  size_t RowIdx = 0;
  for (const BenchmarkProgram &B : benchmarkSuite()) {
    Row &R = Rows[RowIdx++];
    if (!R.BuildError.empty()) {
      std::fprintf(stderr, "profile build failed: %s\n",
                   R.BuildError.c_str());
      std::exit(1);
    }
    for (const RunStats *S : {&R.Base, &R.C, &R.P})
      if (!S->OK) {
        std::fprintf(stderr, "profile run failed: %s\n", S->Error.c_str());
        std::exit(1);
      }
    RunStats &Base = R.Base;
    RunStats &C = R.C;
    RunStats &P = R.P;
    checkSameOutput(Base, P, B.Name);
    std::printf("  %-10s | %8.1f%% %8.1f%% | %9.1f%% %9.1f%%\n", B.Name,
                pctReduction(Base.Cycles, C.Cycles),
                pctReduction(Base.Cycles, P.Cycles),
                pctReduction(Base.scalarMemOps(), C.scalarMemOps()),
                pctReduction(Base.scalarMemOps(), P.scalarMemOps()));
    if (P.scalarMemOps() < C.scalarMemOps())
      ++Helped;
    else if (P.scalarMemOps() > C.scalarMemOps())
      ++Hurt;
  }
  std::printf("\n  profile feedback reduced scalar traffic further on %d "
              "programs, increased it on %d\n\n",
              Helped, Hurt);
}

void BM_ProfileGuidedBuild(benchmark::State &State) {
  const BenchmarkProgram *Prog = findBenchmark("dhrystone");
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto Guided =
        compileWithProfile(Prog->Source, optionsFor(PaperConfig::C), Diags);
    benchmark::DoNotOptimize(Guided);
  }
}
BENCHMARK(BM_ProfileGuidedBuild)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printProfileTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
