//===- bench/bench_profile.cpp - Profile feedback (the paper's future work) ===//
//
// The paper attributes ccom's slowdown under -O3 to missing execution-
// frequency knowledge ("the feedback of profile data to the register
// allocator is a capability that we plan to add in the future"). This
// bench implements and evaluates that capability: configuration C with
// the static 10^loop-depth estimate vs. C recompiled with measured block
// frequencies, over the whole suite.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace ipra;
using namespace ipra::bench;

namespace {

void printProfileTable() {
  std::printf("Profile-guided inter-procedural allocation "
              "(paper Section 8's future work)\n");
  std::printf("(%% reduction vs the -O2 base; C uses static frequency "
              "estimates, C+prof measured ones)\n\n");
  std::printf("  %-10s | %9s %9s | %10s %10s\n", "program", "I.C%",
              "I.C+prof%", "II.C%", "II.C+prof%");
  int Helped = 0;
  int Hurt = 0;
  for (const BenchmarkProgram &B : benchmarkSuite()) {
    RunStats Base = mustRun(B.Source, PaperConfig::Base);
    RunStats C = mustRun(B.Source, PaperConfig::C);
    DiagnosticEngine Diags;
    auto Guided =
        compileWithProfile(B.Source, optionsFor(PaperConfig::C), Diags);
    if (!Guided) {
      std::fprintf(stderr, "profile build failed: %s\n", Diags.str().c_str());
      std::exit(1);
    }
    RunStats P = runProgram(Guided->Program);
    if (!P.OK) {
      std::fprintf(stderr, "profile run failed: %s\n", P.Error.c_str());
      std::exit(1);
    }
    checkSameOutput(Base, P, B.Name);
    std::printf("  %-10s | %8.1f%% %8.1f%% | %9.1f%% %9.1f%%\n", B.Name,
                pctReduction(Base.Cycles, C.Cycles),
                pctReduction(Base.Cycles, P.Cycles),
                pctReduction(Base.scalarMemOps(), C.scalarMemOps()),
                pctReduction(Base.scalarMemOps(), P.scalarMemOps()));
    if (P.scalarMemOps() < C.scalarMemOps())
      ++Helped;
    else if (P.scalarMemOps() > C.scalarMemOps())
      ++Hurt;
  }
  std::printf("\n  profile feedback reduced scalar traffic further on %d "
              "programs, increased it on %d\n\n",
              Helped, Hurt);
}

void BM_ProfileGuidedBuild(benchmark::State &State) {
  const BenchmarkProgram *Prog = findBenchmark("dhrystone");
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto Guided =
        compileWithProfile(Prog->Source, optionsFor(PaperConfig::C), Diags);
    benchmark::DoNotOptimize(Guided);
  }
}
BENCHMARK(BM_ProfileGuidedBuild)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printProfileTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
