//===- bench/bench_fig4.cpp - Reproduce Figure 4 ---------------------------===//
//
// Figure 4 of the paper: p and r both want register 1. The register may be
// saved/restored around p's call to q, or at r's entry/exit; which is
// cheaper depends on the relative execution frequencies of the two calls.
// We build the p -> {q, r} shape, sweep the q:r call-frequency ratio, and
// report the measured save/restore traffic under the two placements the
// inter-procedural allocator can produce (pure bottom-up propagation vs.
// the Section-6 combined strategy that keeps saves local to r).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace ipra;
using namespace ipra::bench;

namespace {

std::string fig4Program(int CallsToQ, int CallsToR) {
  std::string Src = R"MC(
func q(x) { return x + 1; }
func r(x) {
  // r wants many registers: one arm is register-hungry so the combined
  // strategy can keep its saves local to that region.
  var acc = x;
  if (x % 4 == 0) {
    var a = x * 2; var b = x * 3; var c = x * 5; var d = x * 7;
    var r1 = q(a); var r2 = q(c);
    acc = acc + a + b + c + d + r1 + r2;
  }
  return acc;
}
func p(n) {
  var live = n * 9;      // the value p keeps across its calls
  var total = 0;
  for (var i = 0; i < CALLS_Q; i = i + 1) { total = total + q(i); }
  for (var i = 0; i < CALLS_R; i = i + 1) { total = total + r(i); }
  return total + live;
}
func main() {
  var s = 0;
  for (var outer = 0; outer < 50; outer = outer + 1) { s = s + p(outer); }
  print(s);
  return 0;
}
)MC";
  auto ReplaceAll = [&Src](const std::string &From, const std::string &To) {
    for (size_t Pos = Src.find(From); Pos != std::string::npos;
         Pos = Src.find(From, Pos + To.size()))
      Src.replace(Pos, From.size(), To);
  };
  ReplaceAll("CALLS_Q", std::to_string(CallsToQ));
  ReplaceAll("CALLS_R", std::to_string(CallsToR));
  return Src;
}

void printFig4() {
  std::printf("Figure 4. Where to insert saves/restores in the call graph\n");
  std::printf("(p calls q and r under register scarcity -- the 7 "
              "callee-saved set of Table 2's E column,\n where the choice "
              "actually matters; scalar loads+stores per run)\n\n");
  std::printf("  %-14s %16s %16s %10s\n", "calls q : r", "propagate-up",
              "keep-local (S6)", "winner");
  uint64_t PrevGap = 0;
  bool GapGrows = true;
  // The three call ratios x both strategies as one parallel batch.
  std::vector<RunJob> Jobs;
  for (auto [Q, R] : {std::pair{200, 5}, std::pair{50, 50},
                      std::pair{5, 200}}) {
    std::string Src = fig4Program(Q, R);
    CompileOptions Propagate = optionsFor(PaperConfig::E);
    Propagate.CombinedStrategy = false;
    CompileOptions Local = optionsFor(PaperConfig::E);
    Local.CombinedStrategy = true;
    Jobs.push_back({Src, Propagate});
    Jobs.push_back({Src, Local});
  }
  std::vector<RunStats> Runs = mustRunBatch(Jobs);
  size_t Cell = 0;
  for (auto [Q, R] : {std::pair{200, 5}, std::pair{50, 50},
                      std::pair{5, 200}}) {
    RunStats &Up = Runs[Cell];
    RunStats &Lo = Runs[Cell + 1];
    Cell += 2;
    checkSameOutput(Up, Lo, "fig4");
    const char *Winner = "tie";
    if (Up.scalarMemOps() < Lo.scalarMemOps())
      Winner = "propagate";
    else if (Lo.scalarMemOps() < Up.scalarMemOps())
      Winner = "local";
    uint64_t Gap = Up.scalarMemOps() > Lo.scalarMemOps()
                       ? Up.scalarMemOps() - Lo.scalarMemOps()
                       : 0;
    GapGrows &= Gap >= PrevGap;
    PrevGap = Gap;
    std::printf("  %5d : %-6d %16llu %16llu %10s\n", Q, R,
                (unsigned long long)Up.scalarMemOps(),
                (unsigned long long)Lo.scalarMemOps(), Winner);
  }
  std::printf(
      "\n  Propagating r's register up forces p to save/restore around "
      "every call to r; keeping the\n  save inside r's conditional region "
      "(Section 6) pays only when that region executes. The\n  cost gap "
      "therefore grows with r's call frequency%s -- the frequency "
      "dependence of Fig. 4.\n  (When r's usage spans its whole body the "
      "save would sit at r's entry and the combined\n  strategy "
      "deliberately flips to propagation, avoiding the reverse-frequency "
      "loss.)\n\n",
      GapGrows ? " (monotone above)" : "");
}

void BM_Fig4Sweep(benchmark::State &State) {
  std::string Src = fig4Program(int(State.range(0)), int(State.range(1)));
  for (auto _ : State) {
    RunStats Stats = mustRun(Src, PaperConfig::C);
    benchmark::DoNotOptimize(Stats.Cycles);
  }
}
BENCHMARK(BM_Fig4Sweep)
    ->Args({200, 5})
    ->Args({5, 200})
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printFig4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
