//===- bench/bench_sim.cpp - Simulator engine throughput -------------------===//
//
// Instructions-per-second of the execution engines over suite programs
// (the interpreters plus both native JIT modes), and the checking modes
// (block profiling, convention checking) whose costs the decoded engine
// hoists to decode time and the JIT compiles in. Every variant reports
// items/sec where one item is one executed guest instruction, and every
// row's label names its engine (see bench::engineModes), so the
// EXPERIMENTS.md throughput table reads straight off the benchmark
// output. The engines are differentially tested for byte-identical
// RunStats in tests/SimEngineTest.cpp and tests/NativeEngineTest.cpp;
// this file only measures speed. Native rows skip with the engine's own
// reason string on hosts that cannot JIT.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "sim/BatchRunner.h"
#include "x64/NativeEngine.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>

using namespace ipra;
using namespace ipra::bench;

namespace {

/// Suite programs the throughput table reports on: the call-heavy
/// mid-sized one, the arithmetic-heavy one, and the largest.
const char *const SimBenchPrograms[] = {"dhrystone", "stanford", "uopt"};

const MProgram &compiledProgram(int ProgIdx) {
  static std::unique_ptr<CompileResult> Cache[3];
  if (!Cache[ProgIdx]) {
    DiagnosticEngine Diags;
    Cache[ProgIdx] = compileProgram(findBenchmark(SimBenchPrograms[ProgIdx])->Source,
                                    optionsFor(PaperConfig::C), Diags);
    if (!Cache[ProgIdx]) {
      std::fprintf(stderr, "bench_sim: compile failed:\n%s",
                   Diags.str().c_str());
      std::exit(1);
    }
  }
  return Cache[ProgIdx]->Program;
}

/// Runs one program/engine-mode cell. range(0) picks the program,
/// range(1) indexes bench::engineModes(); the row label is always
/// "<prog>/<engine>".
void runEngineBench(benchmark::State &State, SimOptions Opts) {
  const EngineMode &Mode = engineModes()[size_t(State.range(1))];
  applyEngineMode(Opts, Mode);
  if (Opts.Engine == SimEngine::Native) {
    std::string Why;
    if (!nativeEngineSupported(&Why)) {
      State.SkipWithError(Why.c_str());
      return;
    }
  }
  const MProgram &Prog = compiledProgram(int(State.range(0)));
  for (auto _ : State) {
    RunStats Stats = runProgram(Prog, Opts);
    if (!Stats.OK) {
      State.SkipWithError(Stats.Error.c_str());
      return;
    }
    benchmark::DoNotOptimize(Stats.Cycles);
    State.SetItemsProcessed(State.items_processed() +
                            int64_t(Stats.Instructions));
  }
  State.SetLabel(engineRowLabel(SimBenchPrograms[State.range(0)], Mode));
}

/// Plain execution: all four engine modes, including raw native (which
/// re-JITs per run, so its row prices compile+execute like a user would
/// pay it).
void BM_Sim(benchmark::State &State) { runEngineBench(State, SimOptions()); }
BENCHMARK(BM_Sim)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2, 3}})
    ->ArgNames({"prog", "mode"})
    ->Unit(benchmark::kMillisecond);

/// Block-profile collection (the pipeline's training run): the decoded
/// engine pays for the counts in its profiled-op variants instead of a
/// per-block conditional.
void BM_SimProfiled(benchmark::State &State) {
  SimOptions Opts;
  Opts.CollectBlockProfile = true;
  runEngineBench(State, Opts);
}
BENCHMARK(BM_SimProfiled)
    ->ArgsProduct({{0}, {0, 1, 2}}) // checking modes only (no raw native)
    ->ArgNames({"prog", "mode"})
    ->Unit(benchmark::kMillisecond);

/// Dynamic convention checking: dominated by the per-call snapshot, which
/// now records only the registers outside the callee's clobber mask.
void BM_SimConventions(benchmark::State &State) {
  SimOptions Opts;
  Opts.CheckConventions = true;
  runEngineBench(State, Opts);
}
BENCHMARK(BM_SimConventions)
    ->ArgsProduct({{0}, {0, 1, 2}}) // checking modes only (no raw native)
    ->ArgNames({"prog", "mode"})
    ->Unit(benchmark::kMillisecond);

/// The batched form the table/fig drivers use: the suite's run matrix on
/// the BatchRunner pool (one item = one simulated program run).
void BM_SimBatch(benchmark::State &State) {
  std::vector<const MProgram *> Progs;
  for (int P = 0; P < 3; ++P)
    Progs.push_back(&compiledProgram(P));
  SimOptions Opts;
  sim::BatchRunner Runner(unsigned(State.range(0)));
  for (auto _ : State) {
    std::vector<RunStats> Results = Runner.runPrograms(Progs, Opts);
    for (const RunStats &S : Results)
      if (!S.OK) {
        State.SkipWithError(S.Error.c_str());
        return;
      }
    benchmark::DoNotOptimize(Results.data());
    State.SetItemsProcessed(State.items_processed() +
                            int64_t(Results.size()));
  }
}
BENCHMARK(BM_SimBatch)
    ->Arg(0)
    ->Arg(1)
    ->Arg(4)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond);

/// The machine-readable engine x program x instr/s report
/// (`--native-json=<file>`, conventionally BENCH_native.json): one
/// best-of-N instructions-per-second figure per cell, measured outside
/// google-benchmark so the document's shape is stable across benchmark
/// library versions and the perf trajectory can be diffed across PRs.
/// Native rows carry null on hosts that cannot JIT. The native-raw cell
/// is repeated under both register-map policies so the per-procedure
/// allocator's trajectory is tracked explicitly.
void writeNativeThroughputJson(const std::string &Path) {
  struct Row {
    const char *Key;
    SimOptions Opts;
  };
  std::vector<Row> Rows;
  for (const EngineMode &M : engineModes()) {
    SimOptions Opts;
    applyEngineMode(Opts, M);
    Rows.push_back({M.Name, Opts});
  }
  {
    SimOptions Opts;
    Opts.Engine = SimEngine::Native;
    Opts.NativeRaw = true;
    Opts.NativeMap = SimOptions::NativeMapPolicy::Global;
    Rows.push_back({"native-raw-global", Opts});
  }

  std::string NativeWhy;
  bool HaveNative = nativeEngineSupported(&NativeWhy);
  std::string Doc = "{\n\"schema\": \"ipra-native-throughput-v1\",\n"
                    "\"config\": \"C\",\n\"unit\": \"instr/s\",\n"
                    "\"programs\": [\n";
  for (int P = 0; P < 3; ++P) {
    const MProgram &Prog = compiledProgram(P);
    Doc += std::string(P ? ",\n" : "") + "  {\"name\": \"" +
           SimBenchPrograms[P] + "\", \"engines\": {";
    bool FirstRow = true;
    for (const Row &R : Rows) {
      Doc += std::string(FirstRow ? "" : ", ") + "\"" + R.Key + "\": ";
      FirstRow = false;
      if (R.Opts.Engine == SimEngine::Native && !HaveNative) {
        Doc += "null";
        continue;
      }
      RunStats Warm = runProgram(Prog, R.Opts); // cache + predictors
      if (!Warm.OK) {
        std::fprintf(stderr, "bench_sim: %s/%s failed: %s\n",
                     SimBenchPrograms[P], R.Key, Warm.Error.c_str());
        std::exit(1);
      }
      double Best = 0.0;
      for (int Run = 0; Run < 5; ++Run) {
        auto T0 = std::chrono::steady_clock::now();
        RunStats Stats = runProgram(Prog, R.Opts);
        auto T1 = std::chrono::steady_clock::now();
        double Secs = std::chrono::duration<double>(T1 - T0).count();
        if (Stats.OK && Secs > 0.0)
          Best = std::max(Best, double(Stats.Instructions) / Secs);
      }
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.6g", Best);
      Doc += Buf;
    }
    Doc += "}}";
  }
  Doc += "\n]\n}\n";
  std::ofstream OutFile(Path);
  OutFile << Doc;
  OutFile.flush();
  if (!OutFile) {
    std::fprintf(stderr, "bench_sim: cannot write --native-json file '%s'\n",
                 Path.c_str());
    std::exit(1);
  }
}

/// Pulls `--native-json=<file>` out of argv before benchmark::Initialize
/// rejects the unknown flag (same contract as takeStatsJsonFlag).
std::string takeNativeJsonFlag(int &argc, char **argv) {
  std::string Path;
  int Out = 1;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Path.empty() && Arg.rfind("--native-json=", 0) == 0)
      Path = Arg.substr(std::strlen("--native-json="));
    else
      argv[Out++] = argv[I];
  }
  argc = Out;
  return Path;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = takeNativeJsonFlag(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!JsonPath.empty())
    writeNativeThroughputJson(JsonPath);
  return 0;
}
