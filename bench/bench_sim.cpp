//===- bench/bench_sim.cpp - Simulator engine throughput -------------------===//
//
// Instructions-per-second of the two execution engines over suite
// programs, plus the checking modes (block profiling, convention
// checking) whose costs the decoded engine hoists to decode time. Every
// variant reports items/sec where one item is one executed guest
// instruction, so the EXPERIMENTS.md throughput table reads straight off
// the benchmark output. The engines are differentially tested for
// byte-identical RunStats in tests/SimEngineTest.cpp; this file only
// measures speed.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "sim/BatchRunner.h"

#include <benchmark/benchmark.h>

using namespace ipra;
using namespace ipra::bench;

namespace {

/// Suite programs the throughput table reports on: the call-heavy
/// mid-sized one, the arithmetic-heavy one, and the largest.
const char *const SimBenchPrograms[] = {"dhrystone", "stanford", "uopt"};

const MProgram &compiledProgram(int ProgIdx) {
  static std::unique_ptr<CompileResult> Cache[3];
  if (!Cache[ProgIdx]) {
    DiagnosticEngine Diags;
    Cache[ProgIdx] = compileProgram(findBenchmark(SimBenchPrograms[ProgIdx])->Source,
                                    optionsFor(PaperConfig::C), Diags);
    if (!Cache[ProgIdx]) {
      std::fprintf(stderr, "bench_sim: compile failed:\n%s",
                   Diags.str().c_str());
      std::exit(1);
    }
  }
  return Cache[ProgIdx]->Program;
}

void runEngineBench(benchmark::State &State, const SimOptions &Opts) {
  const MProgram &Prog = compiledProgram(int(State.range(0)));
  for (auto _ : State) {
    RunStats Stats = runProgram(Prog, Opts);
    if (!Stats.OK) {
      State.SkipWithError(Stats.Error.c_str());
      return;
    }
    benchmark::DoNotOptimize(Stats.Cycles);
    State.SetItemsProcessed(State.items_processed() +
                            int64_t(Stats.Instructions));
  }
  State.SetLabel(SimBenchPrograms[State.range(0)]);
}

/// Plain execution: the headline Reference vs. Decoded comparison.
void BM_Sim(benchmark::State &State) {
  SimOptions Opts;
  Opts.Engine = SimEngine(State.range(1));
  runEngineBench(State, Opts);
}
BENCHMARK(BM_Sim)
    ->ArgsProduct({{0, 1, 2},
                   {int(SimEngine::Reference), int(SimEngine::Decoded)}})
    ->ArgNames({"prog", "engine"})
    ->Unit(benchmark::kMillisecond);

/// Block-profile collection (the pipeline's training run): the decoded
/// engine pays for the counts in its profiled-op variants instead of a
/// per-block conditional.
void BM_SimProfiled(benchmark::State &State) {
  SimOptions Opts;
  Opts.Engine = SimEngine(State.range(1));
  Opts.CollectBlockProfile = true;
  runEngineBench(State, Opts);
}
BENCHMARK(BM_SimProfiled)
    ->ArgsProduct({{0},
                   {int(SimEngine::Reference), int(SimEngine::Decoded)}})
    ->ArgNames({"prog", "engine"})
    ->Unit(benchmark::kMillisecond);

/// Dynamic convention checking: dominated by the per-call snapshot, which
/// now records only the registers outside the callee's clobber mask.
void BM_SimConventions(benchmark::State &State) {
  SimOptions Opts;
  Opts.Engine = SimEngine(State.range(1));
  Opts.CheckConventions = true;
  runEngineBench(State, Opts);
}
BENCHMARK(BM_SimConventions)
    ->ArgsProduct({{0},
                   {int(SimEngine::Reference), int(SimEngine::Decoded)}})
    ->ArgNames({"prog", "engine"})
    ->Unit(benchmark::kMillisecond);

/// The batched form the table/fig drivers use: the suite's run matrix on
/// the BatchRunner pool (one item = one simulated program run).
void BM_SimBatch(benchmark::State &State) {
  std::vector<const MProgram *> Progs;
  for (int P = 0; P < 3; ++P)
    Progs.push_back(&compiledProgram(P));
  SimOptions Opts;
  sim::BatchRunner Runner(unsigned(State.range(0)));
  for (auto _ : State) {
    std::vector<RunStats> Results = Runner.runPrograms(Progs, Opts);
    for (const RunStats &S : Results)
      if (!S.OK) {
        State.SkipWithError(S.Error.c_str());
        return;
      }
    benchmark::DoNotOptimize(Results.data());
    State.SetItemsProcessed(State.items_processed() +
                            int64_t(Results.size()));
  }
}
BENCHMARK(BM_SimBatch)
    ->Arg(0)
    ->Arg(1)
    ->Arg(4)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
