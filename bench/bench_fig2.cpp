//===- bench/bench_fig2.cpp - Reproduce Figure 2 ---------------------------===//
//
// Figure 2 of the paper: the SAVE placement equations can demand an edge
// split at a join whose predecessors disagree about the register's
// activity. Instead of creating a new CFG node (extra branches), the range
// of usage is *extended* by propagating APP to the offending neighbours
// and re-solving. This bench builds the join shape, shows the extension
// iterating, and proves (via the path checker) that no path double-saves
// or misses a save.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "ir/IRBuilder.h"
#include "shrinkwrap/ShrinkWrap.h"

#include <benchmark/benchmark.h>

using namespace ipra;

namespace {

constexpr unsigned NumRegs = 8;

Procedure *buildFig2(Module &M) {
  // 0 -> {1,2}; 1 -> 4; 2 -> {3,4}; 3 ret; 4 ret.
  // Register 1 appears in blocks 1 and 4: block 4 joins a covered
  // predecessor (1) with an uncovered one (2).
  Procedure *P = M.makeProcedure("fig2");
  for (int I = 0; I < 5; ++I)
    P->makeBlock();
  IRBuilder B(P);
  auto Branch2 = [&B, P](int From, int T1, int T2) {
    B.setInsertBlock(P->block(From));
    VReg C = B.loadImm(1);
    B.condBr(C, P->block(T1), P->block(T2));
  };
  Branch2(0, 1, 2);
  B.setInsertBlock(P->block(1));
  B.br(P->block(4));
  Branch2(2, 3, 4);
  B.setInsertBlock(P->block(3));
  B.ret();
  B.setInsertBlock(P->block(4));
  B.ret();
  P->recomputeCFG();
  return P;
}

void printFig2() {
  std::printf("Figure 2. Save placement depends on the form of control "
              "flow: range extension instead of edge splitting\n\n");
  Module M;
  Procedure *P = buildFig2(M);
  std::vector<BitVector> APP(P->numBlocks(), BitVector(NumRegs));
  APP[1].set(1);
  APP[4].set(1);
  LoopInfo LI = LoopInfo::compute(*P);
  ShrinkWrapResult R = placeSavesRestores(*P, APP, NumRegs, LI);
  std::printf("  solver iterations (>=2 means the range was extended): %d\n",
              R.ExtensionIterations);
  for (unsigned B = 0; B < P->numBlocks(); ++B)
    std::printf("  bb%u: APP=%d extendedAPP=%d save=%d restore=%d\n", B,
                int(APP[B].test(1)), int(R.ExtendedAPP[B].test(1)),
                int(R.SaveAtEntry[B].test(1)),
                int(R.RestoreAtExit[B].test(1)));
  std::string Err = verifyPlacement(*P, R.ExtendedAPP, NumRegs, R);
  std::printf("  path verification: %s\n\n",
              Err.empty() ? "every path saves exactly once before use and "
                            "restores on exit"
                          : Err.c_str());
  if (!Err.empty() || R.ExtensionIterations < 2)
    std::exit(1);
}

void BM_Fig2Placement(benchmark::State &State) {
  Module M;
  Procedure *P = buildFig2(M);
  std::vector<BitVector> APP(P->numBlocks(), BitVector(NumRegs));
  APP[1].set(1);
  APP[4].set(1);
  LoopInfo LI = LoopInfo::compute(*P);
  for (auto _ : State) {
    ShrinkWrapResult R = placeSavesRestores(*P, APP, NumRegs, LI);
    benchmark::DoNotOptimize(R.ExtensionIterations);
  }
}
BENCHMARK(BM_Fig2Placement)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char **argv) {
  printFig2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
