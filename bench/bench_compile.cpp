//===- bench/bench_compile.cpp - Compiler throughput benchmarks ------------===//
//
// google-benchmark timings of the pipeline phases themselves: the paper
// stresses that the inter-procedural extension "does not add noticeably to
// the running time of the coloring algorithm". These benchmarks measure
// that claim on the largest suite program.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "analysis/AnalysisManager.h"
#include "analysis/Liveness.h"
#include "analysis/Loops.h"
#include "analysis/Profile.h"
#include "frontend/Frontend.h"
#include "opt/Passes.h"

#include <benchmark/benchmark.h>

using namespace ipra;

namespace {

const char *bigProgram() { return findBenchmark("uopt")->Source; }

void BM_Frontend(benchmark::State &State) {
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto M = compileToIR(bigProgram(), Diags);
    benchmark::DoNotOptimize(M);
  }
}
BENCHMARK(BM_Frontend)->Unit(benchmark::kMicrosecond);

void BM_MidEnd(benchmark::State &State) {
  DiagnosticEngine Diags;
  auto Pristine = compileToIR(bigProgram(), Diags);
  for (auto _ : State) {
    State.PauseTiming();
    DiagnosticEngine D2;
    auto M = compileToIR(bigProgram(), D2);
    State.ResumeTiming();
    optimize(*M);
    benchmark::DoNotOptimize(M);
  }
}
BENCHMARK(BM_MidEnd)->Unit(benchmark::kMicrosecond);

/// The worklist liveness solver alone, over every procedure of the
/// largest suite program.
void BM_Liveness(benchmark::State &State) {
  DiagnosticEngine Diags;
  auto M = compileToIR(bigProgram(), Diags);
  optimize(*M);
  for (auto _ : State) {
    for (auto &P : *M) {
      if (P->IsExternal)
        continue;
      Liveness LV = Liveness::compute(*P);
      benchmark::DoNotOptimize(LV);
    }
  }
}
BENCHMARK(BM_Liveness)->Unit(benchmark::kMicrosecond);

/// The analysis bundle exactly as the allocator consumes it: liveness
/// plus the fused live-range/interference build, through a fresh
/// AnalysisManager per procedure.
void BM_Analyses(benchmark::State &State) {
  DiagnosticEngine Diags;
  auto M = compileToIR(bigProgram(), Diags);
  optimize(*M);
  for (auto &P : *M) {
    if (P->IsExternal)
      continue;
    P->recomputeCFG();
    estimateFrequencies(*P, LoopInfo::compute(*P));
  }
  for (auto _ : State) {
    for (auto &P : *M) {
      if (P->IsExternal)
        continue;
      AnalysisManager AM(*P);
      const LiveRangeInfo &LRI = AM.liveRanges();
      benchmark::DoNotOptimize(&LRI);
    }
  }
}
BENCHMARK(BM_Analyses)->Unit(benchmark::kMicrosecond);

/// The paper's claim under test: intra (-O2) vs inter (-O3) allocation
/// cost on the same module.
void BM_RegAlloc(benchmark::State &State) {
  bool Inter = State.range(0);
  DiagnosticEngine Diags;
  auto M = compileToIR(bigProgram(), Diags);
  optimize(*M);
  MachineDesc MD;
  RegAllocOptions Opts;
  Opts.InterProcedural = Inter;
  Opts.ShrinkWrap = true;
  for (auto _ : State) {
    SummaryTable Summaries(MD, M->numProcedures());
    auto Results = allocateModule(*M, MD, Summaries, Opts);
    benchmark::DoNotOptimize(Results);
  }
}
BENCHMARK(BM_RegAlloc)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("inter")
    ->Unit(benchmark::kMicrosecond);

void BM_FullPipeline(benchmark::State &State) {
  CompileOptions Opts = optionsFor(PaperConfig(State.range(0)));
  // Keep compile-time numbers comparable with measurements taken before
  // the post-codegen MIR audit existed.
  Opts.VerifyMIR = false;
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto Compiled = compileProgram(bigProgram(), Opts, Diags);
    benchmark::DoNotOptimize(Compiled);
  }
}
BENCHMARK(BM_FullPipeline)
    ->Arg(int(PaperConfig::Base))
    ->Arg(int(PaperConfig::C))
    ->Unit(benchmark::kMicrosecond);

/// Compile-throughput of the DAG-scheduled back end across worker counts
/// (0 = the serial baseline). One iteration compiles every multi-procedure
/// suite program under configuration C, so the counter reports programs
/// per second; speedup at N threads is this benchmark vs threads=0.
void BM_ParallelPipeline(benchmark::State &State) {
  CompileOptions Opts = optionsFor(PaperConfig::C);
  Opts.Threads = unsigned(State.range(0));
  // Comparable with pre-audit measurements (see BM_FullPipeline).
  Opts.VerifyMIR = false;
  for (auto _ : State) {
    for (const BenchmarkProgram &B : benchmarkSuite()) {
      DiagnosticEngine Diags;
      auto Compiled = compileProgram(B.Source, Opts, Diags);
      benchmark::DoNotOptimize(Compiled);
    }
    State.SetItemsProcessed(State.items_processed() +
                            int64_t(benchmarkSuite().size()));
  }
}
BENCHMARK(BM_ParallelPipeline)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgName("threads")
    ->Unit(benchmark::kMicrosecond);

void BM_Simulator(benchmark::State &State) {
  DiagnosticEngine Diags;
  auto Compiled = compileProgram(findBenchmark("dhrystone")->Source,
                                 optionsFor(PaperConfig::C), Diags);
  // Pinned to the Reference engine so this series stays comparable with
  // pre-decoded-engine runs; bench_sim owns the engine comparison.
  SimOptions SimOpts;
  SimOpts.Engine = SimEngine::Reference;
  for (auto _ : State) {
    RunStats Stats = runProgram(Compiled->Program, SimOpts);
    benchmark::DoNotOptimize(Stats.Cycles);
    State.SetItemsProcessed(State.items_processed() +
                            int64_t(Stats.Instructions));
  }
}
BENCHMARK(BM_Simulator)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  std::string StatsPath = bench::takeStatsJsonFlag(argc, argv);
  if (!StatsPath.empty())
    bench::writeSuiteStats(StatsPath,
                           {PaperConfig::Base, PaperConfig::C});
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
