//===- bench/bench_table2.cpp - Reproduce Table 2 --------------------------===//
//
// Table 2 of the paper: the two register classes compared under register
// scarcity. D = configuration C restricted to 7 caller-saved registers,
// E = C restricted to 7 callee-saved registers; both against the full-set
// -O2 base. The paper's reading: callee-saved registers win on the large
// programs (saves/restores migrate up the call graph under pressure),
// caller-saved win on the small ones (free while registers last).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace ipra;
using namespace ipra::bench;

namespace {

void printTable2() {
  std::printf("Table 2. Effects of the two register classes\n");
  std::printf("(base: -O2 full register set, no shrink-wrap; "
              "D: C w/ 7 caller-saved; E: C w/ 7 callee-saved)\n\n");
  std::printf("%-10s | %8s %8s | %9s %9s\n", "program", "I.D%", "I.E%",
              "II.D%", "II.E%");
  std::printf("%.*s\n", 56,
              "--------------------------------------------------------");
  int CallerBetter = 0;
  int CalleeBetter = 0;
  // Suite x {base, D, E} in parallel; rows consumed in suite order.
  std::vector<std::vector<RunStats>> Runs =
      mustRunSuite({PaperConfig::Base, PaperConfig::D, PaperConfig::E});
  size_t Row = 0;
  for (const BenchmarkProgram &B : benchmarkSuite()) {
    RunStats &Base = Runs[Row][0];
    RunStats &D = Runs[Row][1];
    RunStats &E = Runs[Row][2];
    ++Row;
    checkSameOutput(Base, D, B.Name);
    checkSameOutput(Base, E, B.Name);
    double IID = pctReduction(Base.scalarMemOps(), D.scalarMemOps());
    double IIE = pctReduction(Base.scalarMemOps(), E.scalarMemOps());
    std::printf("%-10s | %7.1f%% %7.1f%% | %8.1f%% %8.1f%%\n", B.Name,
                pctReduction(Base.Cycles, D.Cycles),
                pctReduction(Base.Cycles, E.Cycles), IID, IIE);
    if (IID > IIE + 0.05)
      ++CallerBetter;
    else if (IIE > IID + 0.05)
      ++CalleeBetter;
  }
  std::printf("\ncaller-saved better on %d programs, callee-saved better "
              "on %d (paper: 4 vs 8 with one tie)\n\n",
              CallerBetter, CalleeBetter);
}

void BM_RestrictedAllocation(benchmark::State &State) {
  PaperConfig Config = PaperConfig(State.range(0));
  const BenchmarkProgram *Prog = findBenchmark("calcc");
  for (auto _ : State) {
    RunStats Stats = mustRun(Prog->Source, Config);
    benchmark::DoNotOptimize(Stats.Cycles);
    State.counters["scalar_ops"] = double(Stats.scalarMemOps());
  }
}
BENCHMARK(BM_RestrictedAllocation)
    ->Arg(int(PaperConfig::D))
    ->Arg(int(PaperConfig::E))
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  std::string StatsPath = takeStatsJsonFlag(argc, argv);
  printTable2();
  if (!StatsPath.empty())
    writeSuiteStats(StatsPath, {PaperConfig::Base, PaperConfig::D,
                                PaperConfig::E});
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
