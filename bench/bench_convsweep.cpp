//===- bench/bench_convsweep.cpp - Calling-convention design sweep ---------===//
//
// The convention lab the ROADMAP asks for (after Krause 2022): instead of
// measuring IPRA against the paper's one fixed convention, compile and
// simulate the whole 13-program suite across a generated grid of
// conventions -- caller/callee split, parameter-register count, register-
// file size -- and report the Pareto front over three costs:
//
//   cycles               total dynamic cycles over the suite
//   mem_ops              total dynamic memory operations (scalar + data)
//   static_save_restore  static save/restore instructions placed
//                        (callee saves + restores + 2 per caller pair)
//
// The paper's configurations appear as named points on the same chart:
// `paper-default` is the default convention under configuration C, and
// the Table-2 restrictions D/E are re-expressed as conventions (reserved
// registers) and cross-checked against the option-driven originals --
// restriction really is just a special case of convention.
//
// Every grid cell is gated on program output equality with the
// paper-default cell and on a clean MIR-verifier audit, so the sweep
// doubles as a many-convention correctness harness.
//
//   bench_convsweep [--grid=full|small] [--out=<file>] [--threads=N]
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include <algorithm>
#include <cstring>
#include <map>

using namespace ipra;
using namespace ipra::bench;

namespace {

/// One (convention, program) compile+simulate outcome.
struct Cell {
  bool OK = false;
  std::string Error;
  uint64_t Cycles = 0;
  uint64_t MemOps = 0;
  uint64_t StaticSR = 0;
  std::vector<int64_t> Output;
};

/// One convention's suite-total costs.
struct Point {
  ConventionSpec Spec;
  std::vector<std::string> Names; ///< Named configurations this point is.
  uint64_t Cycles = 0;
  uint64_t MemOps = 0;
  uint64_t StaticSR = 0;
  bool OnFront = false;
};

CompileOptions sweepOptions(const ConventionSpec &Spec) {
  // Every grid point runs the full IPRA pipeline (configuration C); only
  // the convention varies.
  CompileOptions Opts = optionsFor(PaperConfig::C);
  Opts.Convention = Spec;
  Opts.Threads = 0; // One compile per worker; BatchRunner supplies them.
  return Opts;
}

Cell runCell(const std::string &Source, const CompileOptions &Opts) {
  Cell C;
  DiagnosticEngine Diags;
  auto Result = compileProgram(Source, Opts, Diags);
  if (!Result || Diags.hasErrors()) {
    C.Error = "compile failed:\n" + Diags.str();
    return C;
  }
  SimOptions SimOpts;
  SimOpts.CheckConventions = true;
  RunStats Stats = runProgram(Result->Program, SimOpts);
  if (!Stats.OK) {
    C.Error = "run failed: " + Stats.Error;
    return C;
  }
  C.OK = true;
  C.Cycles = Stats.Cycles;
  C.MemOps = Stats.scalarMemOps() + Stats.DataLoads + Stats.DataStores;
  StatCounters Totals = Result->Stats.totals();
  C.StaticSR = Totals.get("codegen.callee_saves") +
               Totals.get("codegen.callee_restores") +
               2 * Totals.get("codegen.caller_save_pairs");
  C.Output = Stats.Output;
  return C;
}

/// A convention whose allocatable file keeps the first \p NumCaller
/// caller-saved and the last \p NumCallee (callee-saved) pool registers;
/// the middle is reserved. Models a smaller machine at a given split.
ConventionSpec fileSpec(unsigned NumCallee, unsigned NumCaller,
                        unsigned NumParams) {
  ConventionSpec S;
  for (unsigned I = 0; I < NumCallee; ++I)
    S.CalleeSaved.set(AllocPoolLast - I);
  unsigned TotalCaller = AllocPoolSize - NumCallee;
  for (unsigned I = NumCaller; I < TotalCaller; ++I)
    S.Reserved.set(AllocPoolFirst + I);
  for (unsigned I = 0; I < NumParams && I < TotalCaller; ++I)
    S.ParamRegs.push_back(AllocPoolFirst + I);
  return S;
}

/// The deterministic convention grid; dedups by spelling.
std::vector<Point> buildGrid(bool Small) {
  std::vector<Point> Grid;
  std::map<std::string, size_t> Index;
  auto Add = [&](const ConventionSpec &Spec, const char *Name = nullptr) {
    std::string Err;
    if (!Spec.validate(&Err)) {
      std::fprintf(stderr, "convsweep: bad grid spec: %s\n", Err.c_str());
      std::exit(1);
    }
    auto [It, New] = Index.emplace(Spec.str(), Grid.size());
    if (New)
      Grid.push_back({Spec, {}, 0, 0, 0, false});
    if (Name)
      Grid[It->second].Names.push_back(Name);
  };

  auto ParamsFor = [](unsigned NumCaller) {
    return NumCaller < 4 ? NumCaller : 4;
  };

  if (Small) {
    for (unsigned K : {0u, 4u, 9u, 15u, 20u})
      Add(fileSpec(K, AllocPoolSize - K, ParamsFor(AllocPoolSize - K)));
  } else {
    // Axis 1: the caller/callee split over the full 20-register file.
    for (unsigned K = 0; K <= AllocPoolSize; ++K)
      Add(fileSpec(K, AllocPoolSize - K, ParamsFor(AllocPoolSize - K)));
    // Axis 2: parameter-register count at three representative splits.
    for (unsigned K : {5u, 9u, 13u}) {
      unsigned NumCaller = AllocPoolSize - K;
      for (unsigned P = 0; P <= 7 && P <= NumCaller; ++P)
        Add(fileSpec(K, NumCaller, P));
    }
    // Axis 3: smaller register files at every split -- the Table-2
    // question ("which class wins under scarcity?") asked everywhere.
    for (unsigned F : {6u, 7u, 8u, 10u, 12u, 14u, 16u, 18u})
      for (unsigned K = 0; K <= F; ++K)
        Add(fileSpec(K, F - K, ParamsFor(F - K)));
  }

  // Named points: the paper's convention and the Table-2 restrictions
  // re-expressed as conventions (reservation of the excluded file).
  Add(ConventionSpec::defaultSpec(), "paper-default");
  Add(ConventionSpec::forRestriction(RegSetRestriction::CallerOnly7),
      "paper-D");
  Add(ConventionSpec::forRestriction(RegSetRestriction::CalleeOnly7),
      "paper-E");
  return Grid;
}

void markParetoFront(std::vector<Point> &Grid) {
  for (Point &P : Grid) {
    P.OnFront = true;
    for (const Point &Q : Grid) {
      bool NoWorse = Q.Cycles <= P.Cycles && Q.MemOps <= P.MemOps &&
                     Q.StaticSR <= P.StaticSR;
      bool Better = Q.Cycles < P.Cycles || Q.MemOps < P.MemOps ||
                    Q.StaticSR < P.StaticSR;
      if (NoWorse && Better) {
        P.OnFront = false;
        break;
      }
    }
  }
}

std::string pointJson(const Point &P) {
  const ConventionSpec &S = P.Spec;
  std::string Out = "    {\"spec\": \"" + jsonEscape(S.str()) + "\"";
  Out += ", \"callee_saved\": " + std::to_string(S.CalleeSaved.count());
  Out += ", \"reserved\": " + std::to_string(S.Reserved.count());
  Out +=
      ", \"allocatable\": " +
      std::to_string(AllocPoolSize - S.Reserved.count());
  Out += ", \"params\": " + std::to_string(S.ParamRegs.size());
  Out += ", \"cycles\": " + std::to_string(P.Cycles);
  Out += ", \"mem_ops\": " + std::to_string(P.MemOps);
  Out += ", \"static_save_restore\": " + std::to_string(P.StaticSR);
  Out += std::string(", \"pareto\": ") + (P.OnFront ? "true" : "false");
  Out += ", \"names\": [";
  for (size_t I = 0; I < P.Names.size(); ++I)
    Out += (I ? ", \"" : "\"") + jsonEscape(P.Names[I]) + "\"";
  Out += "]}";
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  bool Small = false;
  std::string OutPath;
  unsigned Threads = sim::BatchRunner::defaultSimThreads();
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--grid=small") {
      Small = true;
    } else if (Arg == "--grid=full") {
      Small = false;
    } else if (Arg.rfind("--out=", 0) == 0) {
      OutPath = Arg.substr(std::strlen("--out="));
    } else if (Arg.rfind("--threads=", 0) == 0) {
      Threads = unsigned(std::atoi(Arg.c_str() + std::strlen("--threads=")));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--grid=full|small] [--out=<file>] "
                   "[--threads=N]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<Point> Grid = buildGrid(Small);
  const auto &Suite = benchmarkSuite();
  size_t NumProgs = Suite.size();

  // The entire sweep -- every (convention, program) cell plus the
  // option-driven paper configurations below -- as one BatchRunner batch.
  std::vector<std::function<Cell()>> Jobs;
  for (const Point &P : Grid)
    for (const BenchmarkProgram &B : Suite) {
      CompileOptions Opts = sweepOptions(P.Spec);
      Jobs.push_back(
          [Source = std::string(B.Source), Opts] { return runCell(Source, Opts); });
    }
  // The option-driven originals of the restricted configurations, used to
  // cross-check that restriction-as-convention changes nothing.
  std::vector<PaperConfig> CheckConfigs = {PaperConfig::D, PaperConfig::E};
  for (PaperConfig Config : CheckConfigs)
    for (const BenchmarkProgram &B : Suite) {
      CompileOptions Opts = optionsFor(Config);
      Opts.Threads = 0;
      Jobs.push_back(
          [Source = std::string(B.Source), Opts] { return runCell(Source, Opts); });
    }

  sim::BatchRunner Runner(Threads);
  std::vector<Cell> Cells = Runner.map(Jobs);

  // Gate every cell: it ran, and it computed the paper-default answers.
  size_t DefaultRow = 0;
  for (size_t I = 0; I < Grid.size(); ++I)
    for (const std::string &N : Grid[I].Names)
      if (N == "paper-default")
        DefaultRow = I;
  for (size_t I = 0; I < Grid.size(); ++I)
    for (size_t J = 0; J < NumProgs; ++J) {
      const Cell &C = Cells[I * NumProgs + J];
      if (!C.OK) {
        std::fprintf(stderr, "convsweep: %s under '%s': %s\n",
                     Suite[J].Name, Grid[I].Spec.str().c_str(),
                     C.Error.c_str());
        return 1;
      }
      if (C.Output != Cells[DefaultRow * NumProgs + J].Output) {
        std::fprintf(stderr,
                     "convsweep: %s under '%s' computed different output\n",
                     Suite[J].Name, Grid[I].Spec.str().c_str());
        return 1;
      }
    }
  for (size_t I = 0; I < Grid.size(); ++I)
    for (size_t J = 0; J < NumProgs; ++J) {
      const Cell &C = Cells[I * NumProgs + J];
      Grid[I].Cycles += C.Cycles;
      Grid[I].MemOps += C.MemOps;
      Grid[I].StaticSR += C.StaticSR;
    }

  // Restriction-as-convention must equal the option-driven original,
  // cell for cell.
  for (size_t CI = 0; CI < CheckConfigs.size(); ++CI) {
    const char *Name = CheckConfigs[CI] == PaperConfig::D ? "paper-D"
                                                          : "paper-E";
    size_t Row = 0;
    for (size_t I = 0; I < Grid.size(); ++I)
      for (const std::string &N : Grid[I].Names)
        if (N == Name)
          Row = I;
    for (size_t J = 0; J < NumProgs; ++J) {
      const Cell &AsConv = Cells[Row * NumProgs + J];
      const Cell &AsOpts = Cells[(Grid.size() + CI) * NumProgs + J];
      if (AsConv.Cycles != AsOpts.Cycles || AsConv.MemOps != AsOpts.MemOps ||
          AsConv.StaticSR != AsOpts.StaticSR ||
          AsConv.Output != AsOpts.Output) {
        std::fprintf(stderr,
                     "convsweep: %s as convention differs from --restrict "
                     "on %s\n",
                     Name, Suite[J].Name);
        return 1;
      }
    }
  }

  markParetoFront(Grid);

  std::string Doc = "{\n";
  Doc += "\"grid_size\": " + std::to_string(Grid.size()) + ",\n";
  Doc += "\"programs\": " + std::to_string(NumProgs) + ",\n";
  Doc += "\"points\": [\n";
  for (size_t I = 0; I < Grid.size(); ++I)
    Doc += pointJson(Grid[I]) + (I + 1 < Grid.size() ? ",\n" : "\n");
  Doc += "]\n}\n";
  if (OutPath.empty()) {
    std::fputs(Doc.c_str(), stdout);
  } else {
    std::ofstream Out(OutPath);
    Out << Doc;
    Out.flush();
    if (!Out) {
      std::fprintf(stderr, "convsweep: cannot write '%s'\n", OutPath.c_str());
      return 1;
    }
  }

  size_t FrontSize = 0;
  for (const Point &P : Grid)
    FrontSize += P.OnFront;
  std::fprintf(stderr,
               "convsweep: %zu conventions x %zu programs, %zu on the "
               "Pareto front\n",
               Grid.size(), NumProgs, FrontSize);
  for (const Point &P : Grid)
    for (const std::string &N : P.Names)
      std::fprintf(stderr,
                   "  %-13s %-24s cycles=%llu mem_ops=%llu "
                   "static_sr=%llu%s\n",
                   N.c_str(), P.Spec.str().c_str(),
                   (unsigned long long)P.Cycles, (unsigned long long)P.MemOps,
                   (unsigned long long)P.StaticSR,
                   P.OnFront ? "  [pareto]" : "");
  return 0;
}
