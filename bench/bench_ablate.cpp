//===- bench/bench_ablate.cpp - Ablations of the design choices ------------===//
//
// Ablation benches for the design decisions DESIGN.md calls out, run over
// the full 13-program suite against configuration C:
//   1. Section-6 combined strategy off (pure bottom-up propagation),
//   2. register parameter passing off (fixed a0..a3 protocol),
//   3. loop extension off (shrink-wrapped pairs may land inside loops).
// Positive deltas mean the feature reduces scalar memory traffic.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace ipra;
using namespace ipra::bench;

namespace {

struct Ablation {
  const char *Name;
  void (*Disable)(CompileOptions &);
};

const Ablation Ablations[] = {
    {"combined-strategy (Section 6)",
     [](CompileOptions &O) { O.CombinedStrategy = false; }},
    {"register parameter passing (Section 4)",
     [](CompileOptions &O) { O.RegisterParams = false; }},
    {"loop extension (Section 5)",
     [](CompileOptions &O) { O.LoopExtension = false; }},
};

void printAblations() {
  std::printf("Ablations against configuration C (-O3 + shrink-wrap)\n");
  std::printf("(positive = feature helps; scalar ops for memory-traffic "
              "features, cycles where the\n feature saves moves rather "
              "than memory operations)\n\n");
  std::printf("  %-10s", "program");
  for (const Ablation &A : Ablations)
    std::printf(" | %24.24s", A.Name);
  std::printf("\n  %-10s", "");
  for (int I = 0; I < 3; ++I)
    std::printf(" | %10s %12s", "cycles", "scalar ops");
  std::printf("\n");
  for (const BenchmarkProgram &B : benchmarkSuite()) {
    RunStats Full = mustRun(B.Source, PaperConfig::C);
    std::printf("  %-10s", B.Name);
    for (const Ablation &A : Ablations) {
      CompileOptions Opts = optionsFor(PaperConfig::C);
      A.Disable(Opts);
      RunStats Without = mustRun(B.Source, Opts);
      checkSameOutput(Full, Without, B.Name);
      std::printf(" | %9.2f%% %11.2f%%",
                  pctReduction(Without.Cycles, Full.Cycles),
                  pctReduction(Without.scalarMemOps(), Full.scalarMemOps()));
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void BM_AblationCompile(benchmark::State &State) {
  const Ablation &A = Ablations[State.range(0)];
  const BenchmarkProgram *Prog = findBenchmark("tex");
  CompileOptions Opts = optionsFor(PaperConfig::C);
  A.Disable(Opts);
  for (auto _ : State) {
    RunStats Stats = mustRun(Prog->Source, Opts);
    benchmark::DoNotOptimize(Stats.Cycles);
  }
}
BENCHMARK(BM_AblationCompile)->Arg(0)->Arg(1)->Arg(2)->Unit(
    benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printAblations();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
