//===- bench/bench_incremental.cpp - Edit-recompile latency ---------------===//
//
// The incremental compile service's value proposition, measured: for every
// suite program, the latency of a cold rebuild vs. recompiling after a
// single-procedure edit vs. after a clustered three-procedure edit. Every
// recompile is a *real* edit (an iteration-unique constant, so the edited
// procedure's fingerprint always changes) and goes through the full
// service path: re-parse, fingerprint diff, frontier recompile, and the
// whole-program MIR audit. The reported counters show how much of the
// module the frontier actually touched.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "driver/IncrementalService.h"

#include <benchmark/benchmark.h>

#include <string>

using namespace ipra;

namespace {

/// Counts the `func ` definitions in \p Src.
unsigned countFuncs(const std::string &Src) {
  unsigned N = 0;
  for (size_t At = Src.find("func "); At != std::string::npos;
       At = Src.find("func ", At + 1))
    ++N;
  return N;
}

/// Inserts a summary-neutral edit -- `var __editK = Salt;` -- at the top
/// of the FuncIdx-th (mod count) function body. The dead variable is
/// optimized away, so the typical frontier is exactly the edited
/// procedure; the varying salt guarantees the edit is never a no-op to
/// the fingerprint diff.
std::string withEdit(const std::string &Src, unsigned FuncIdx, long Salt) {
  unsigned N = countFuncs(Src);
  if (N == 0)
    return Src;
  FuncIdx %= N;
  size_t At = Src.find("func ");
  for (unsigned I = 0; I < FuncIdx; ++I)
    At = Src.find("func ", At + 1);
  size_t Brace = Src.find('{', At);
  if (Brace == std::string::npos)
    return Src;
  std::string Out = Src;
  Out.insert(Brace + 1, " var __edit" + std::to_string(FuncIdx) + " = " +
                            std::to_string(Salt) + ";");
  return Out;
}

void reportFrontier(benchmark::State &State, const IncrementalStats &S) {
  State.counters["procs"] = double(S.Procs);
  State.counters["reused"] = double(S.Reused);
  State.counters["frontier"] = double(S.Frontier);
  State.counters["summary_changed"] = double(S.SummaryChanged);
}

void coldRebuild(benchmark::State &State, const BenchmarkProgram &B) {
  CompileOptions Opts = optionsFor(PaperConfig::C);
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto Compiled = compileProgram(B.Source, Opts, Diags);
    if (!Compiled) {
      State.SkipWithError("compile failed");
      return;
    }
    benchmark::DoNotOptimize(Compiled);
  }
}

/// \p Cluster procedures get an iteration-unique edit each; the service
/// recompiles the frontier and serves the rest from cache.
void recompileEdited(benchmark::State &State, const BenchmarkProgram &B,
                     unsigned Cluster) {
  IncrementalService Svc(optionsFor(PaperConfig::C));
  DiagnosticEngine Diags;
  if (!Svc.compile(B.Source, Diags)) {
    State.SkipWithError("prime failed");
    return;
  }
  long Salt = 0;
  for (auto _ : State) {
    std::string Edited = B.Source;
    ++Salt;
    for (unsigned F = 0; F < Cluster; ++F)
      Edited = withEdit(Edited, F, Salt);
    DiagnosticEngine D;
    if (!Svc.recompile(Edited, D)) {
      State.SkipWithError("recompile failed");
      return;
    }
  }
  reportFrontier(State, Svc.lastStats());
}

} // namespace

int main(int argc, char **argv) {
  for (const BenchmarkProgram &B : benchmarkSuite()) {
    std::string Name = B.Name;
    benchmark::RegisterBenchmark(
        ("cold/" + Name).c_str(),
        [&B](benchmark::State &State) { coldRebuild(State, B); })
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        ("edit1/" + Name).c_str(),
        [&B](benchmark::State &State) { recompileEdited(State, B, 1); })
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        ("edit3/" + Name).c_str(),
        [&B](benchmark::State &State) { recompileEdited(State, B, 3); })
        ->Unit(benchmark::kMicrosecond);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
