//===- bench/BenchUtil.h - Shared harness helpers --------------*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure reproduction binaries: compile+run a
/// benchmark under a paper configuration, compute the percentage
/// reductions the paper reports, and format fixed-width table rows.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_BENCH_BENCHUTIL_H
#define IPRA_BENCH_BENCHUTIL_H

#include "driver/Pipeline.h"
#include "programs/Programs.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace ipra {
namespace bench {

/// Compile + simulate; aborts the bench with a message on any failure (a
/// bench with a broken program must not print a plausible-looking table).
inline RunStats mustRun(const std::string &Source,
                        const CompileOptions &Opts) {
  RunStats Stats = compileAndRun(Source, Opts);
  if (!Stats.OK) {
    std::fprintf(stderr, "bench: program failed: %s\n", Stats.Error.c_str());
    std::exit(1);
  }
  return Stats;
}

inline RunStats mustRun(const std::string &Source, PaperConfig Config) {
  return mustRun(Source, optionsFor(Config));
}

/// The paper's "% reduction" metric: positive = improvement over base.
inline double pctReduction(uint64_t Base, uint64_t Value) {
  if (Base == 0)
    return 0.0;
  return 100.0 * (double(Base) - double(Value)) / double(Base);
}

/// Verifies two configurations computed the same thing before their
/// counters are compared.
inline void checkSameOutput(const RunStats &A, const RunStats &B,
                            const char *What) {
  if (A.Output != B.Output) {
    std::fprintf(stderr, "bench: output mismatch for %s\n", What);
    std::exit(1);
  }
}

} // namespace bench
} // namespace ipra

#endif // IPRA_BENCH_BENCHUTIL_H
