//===- bench/BenchUtil.h - Shared harness helpers --------------*- C++ -*-===//
//
// Part of the ipra project (Chow, PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure reproduction binaries: compile+run a
/// benchmark under a paper configuration, compute the percentage
/// reductions the paper reports, and format fixed-width table rows.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_BENCH_BENCHUTIL_H
#define IPRA_BENCH_BENCHUTIL_H

#include "driver/Pipeline.h"
#include "programs/Programs.h"
#include "sim/BatchRunner.h"
#include "support/Statistics.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

namespace ipra {
namespace bench {

/// Compile + simulate; aborts the bench with a message on any failure (a
/// bench with a broken program must not print a plausible-looking table).
inline RunStats mustRun(const std::string &Source,
                        const CompileOptions &Opts) {
  RunStats Stats = compileAndRun(Source, Opts);
  if (!Stats.OK) {
    std::fprintf(stderr, "bench: program failed: %s\n", Stats.Error.c_str());
    std::exit(1);
  }
  return Stats;
}

inline RunStats mustRun(const std::string &Source, PaperConfig Config) {
  return mustRun(Source, optionsFor(Config));
}

/// One compile+simulate cell of a bench run matrix (see mustRunBatch).
struct RunJob {
  std::string Source;
  CompileOptions Opts;
};

/// The batched mustRun: fans the jobs across sim::BatchRunner (one worker
/// per hardware thread; results in job order regardless of completion
/// order, so the printed tables are byte-identical to the old sequential
/// loops) and aborts like mustRun on the lowest-index failure.
inline std::vector<RunStats> mustRunBatch(const std::vector<RunJob> &Jobs) {
  std::vector<std::function<RunStats()>> Thunks;
  Thunks.reserve(Jobs.size());
  for (const RunJob &J : Jobs)
    Thunks.push_back([&J] { return compileAndRun(J.Source, J.Opts); });
  sim::BatchRunner Runner;
  std::vector<RunStats> Results = Runner.map(Thunks);
  for (const RunStats &S : Results)
    if (!S.OK) {
      std::fprintf(stderr, "bench: program failed: %s\n", S.Error.c_str());
      std::exit(1);
    }
  return Results;
}

/// The common suite matrix: every suite program under every configuration,
/// in parallel. Results[P][C] pairs benchmarkSuite()[P] with Configs[C].
inline std::vector<std::vector<RunStats>>
mustRunSuite(const std::vector<PaperConfig> &Configs) {
  std::vector<RunJob> Jobs;
  for (const BenchmarkProgram &B : benchmarkSuite())
    for (PaperConfig Config : Configs)
      Jobs.push_back({B.Source, optionsFor(Config)});
  std::vector<RunStats> Flat = mustRunBatch(Jobs);
  std::vector<std::vector<RunStats>> Results;
  for (size_t I = 0; I < Flat.size(); I += Configs.size())
    Results.emplace_back(Flat.begin() + I, Flat.begin() + I + Configs.size());
  return Results;
}

/// The paper's "% reduction" metric: positive = improvement over base.
inline double pctReduction(uint64_t Base, uint64_t Value) {
  if (Base == 0)
    return 0.0;
  return 100.0 * (double(Base) - double(Value)) / double(Base);
}

/// Verifies two configurations computed the same thing before their
/// counters are compared.
inline void checkSameOutput(const RunStats &A, const RunStats &B,
                            const char *What) {
  if (A.Output != B.Output) {
    std::fprintf(stderr, "bench: output mismatch for %s\n", What);
    std::exit(1);
  }
}

/// One engine-mode row of the simulator throughput tables: a SimOptions
/// preset plus the display name the row's label carries, so every
/// printed line is self-describing about which engine produced it.
struct EngineMode {
  const char *Name; ///< Label component: "reference" ... "native-raw".
  SimEngine Engine;
  bool NativeRaw;
  /// Whether the mode supports block profiling / convention checking
  /// (raw native rejects both by contract).
  bool SupportsChecking;
};

/// The four engine modes in throughput-table order.
inline const std::vector<EngineMode> &engineModes() {
  static const std::vector<EngineMode> Modes = {
      {"reference", SimEngine::Reference, false, true},
      {"decoded", SimEngine::Decoded, false, true},
      {"native", SimEngine::Native, false, true},
      {"native-raw", SimEngine::Native, true, false},
  };
  return Modes;
}

inline void applyEngineMode(SimOptions &Opts, const EngineMode &M) {
  Opts.Engine = M.Engine;
  Opts.NativeRaw = M.NativeRaw;
}

/// "<prog>/<engine>": the row label every sim throughput benchmark sets.
inline std::string engineRowLabel(const char *Prog, const EngineMode &M) {
  return std::string(Prog) + "/" + M.Name;
}

/// Human form of an instructions-per-second figure ("312.4 Minstr/s"):
/// the unit every EXPERIMENTS.md simulator-throughput row uses, shared
/// with the perf gate in tests/NativePerfTest.cpp.
inline std::string formatInstrPerSec(double InstrPerSec) {
  char Buf[64];
  if (InstrPerSec >= 1e9)
    std::snprintf(Buf, sizeof(Buf), "%.2f Ginstr/s", InstrPerSec / 1e9);
  else if (InstrPerSec >= 1e6)
    std::snprintf(Buf, sizeof(Buf), "%.1f Minstr/s", InstrPerSec / 1e6);
  else
    std::snprintf(Buf, sizeof(Buf), "%.0f Kinstr/s", InstrPerSec / 1e3);
  return Buf;
}

/// Short key for one configuration, used in the stats report.
inline const char *configKey(PaperConfig Config) {
  switch (Config) {
  case PaperConfig::Base:
    return "base";
  case PaperConfig::A:
    return "A";
  case PaperConfig::B:
    return "B";
  case PaperConfig::C:
    return "C";
  case PaperConfig::D:
    return "D";
  case PaperConfig::E:
    return "E";
  }
  return "?";
}

/// Pulls `--stats-json=<file>` out of argv before benchmark::Initialize
/// sees (and rejects) the unknown flag. \returns the path, or "" when the
/// flag is absent.
inline std::string takeStatsJsonFlag(int &argc, char **argv) {
  std::string Path;
  int Out = 1;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Path.empty() && Arg.rfind("--stats-json=", 0) == 0)
      Path = Arg.substr(std::strlen("--stats-json="));
    else
      argv[Out++] = argv[I];
  }
  argc = Out;
  return Path;
}

/// Compiles every suite program under each configuration and writes the
/// deterministic compile-time counter totals as one JSON document:
///   {"programs": [{"name": ..., "configs": {"<key>": {counters...}}}]}
/// These are the static columns behind Tables 1 and 2 (see
/// EXPERIMENTS.md). Aborts the bench when the file cannot be written -- a
/// silently dropped report would defeat the point of asking for one.
inline void writeSuiteStats(const std::string &Path,
                            const std::vector<PaperConfig> &Configs) {
  std::string Doc = "{\n\"programs\": [\n";
  bool FirstProg = true;
  for (const BenchmarkProgram &B : benchmarkSuite()) {
    Doc += FirstProg ? "" : ",\n";
    FirstProg = false;
    Doc += "  {\"name\": \"" + jsonEscape(B.Name) + "\", \"configs\": {\n";
    bool FirstCfg = true;
    for (PaperConfig Config : Configs) {
      DiagnosticEngine Diags;
      auto Result = compileProgram(B.Source, optionsFor(Config), Diags);
      if (!Result) {
        std::fprintf(stderr, "bench: %s failed to compile under %s:\n%s",
                     B.Name, paperConfigName(Config), Diags.str().c_str());
        std::exit(1);
      }
      Doc += FirstCfg ? "" : ",\n";
      FirstCfg = false;
      Doc += "    \"" + std::string(configKey(Config)) +
             "\": " + Result->Stats.totals().json();
    }
    Doc += "\n  }}";
  }
  Doc += "\n]\n}\n";
  std::ofstream OutFile(Path);
  OutFile << Doc;
  OutFile.flush();
  if (!OutFile) {
    std::fprintf(stderr, "bench: cannot write --stats-json file '%s'\n",
                 Path.c_str());
    std::exit(1);
  }
}

} // namespace bench
} // namespace ipra

#endif // IPRA_BENCH_BENCHUTIL_H
