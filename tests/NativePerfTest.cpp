//===- tests/NativePerfTest.cpp - Raw native throughput gate --------------===//
//
// The native backend's reason to exist: raw-mode JIT execution must beat
// the decoded interpreter by a wide margin on the call-heavy suite
// program the paper's tables lean on. The CI gate demands >= 5x
// instructions-per-second on dhrystone (the measured margin is larger --
// see the throughput table in EXPERIMENTS.md -- but wall-clock gates on
// shared CI hardware need headroom). The warm-up run populates the
// engine's code cache, so the timed runs price what repeat callers pay:
// execution plus per-run setup, not re-compilation (set
// IPRA_NATIVE_NOCACHE=1 to measure the cold path, which lands near 3x).
//
// Registered outside the TSan preset (like the bench smoke tests):
// single-threaded throughput proves nothing under a ~10x sanitizer
// slowdown, and the generated code is uninstrumented anyway.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "driver/Pipeline.h"
#include "programs/Programs.h"
#include "x64/NativeCodeGen.h"
#include "x64/NativeEngine.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>

using namespace ipra;

namespace {

/// Best-of-N instructions-per-second, timing each run individually so
/// one scheduler hiccup cannot sink the fast engine's figure.
double bestInstrPerSec(const MProgram &Prog, const SimOptions &Opts,
                       int Runs) {
  double Best = 0.0;
  for (int R = 0; R < Runs; ++R) {
    auto T0 = std::chrono::steady_clock::now();
    RunStats Stats = runProgram(Prog, Opts);
    auto T1 = std::chrono::steady_clock::now();
    EXPECT_TRUE(Stats.OK) << Stats.Error;
    if (!Stats.OK)
      return 0.0;
    double Secs = std::chrono::duration<double>(T1 - T0).count();
    if (Secs > 0.0)
      Best = std::max(Best, double(Stats.Instructions) / Secs);
  }
  return Best;
}

TEST(NativePerfTest, RawModeBeatsDecodedOnDhrystone) {
  std::string Why;
  if (!nativeEngineSupported(&Why))
    GTEST_SKIP() << Why;

  DiagnosticEngine Diags;
  auto Compiled = compileProgram(findBenchmark("dhrystone")->Source,
                                 optionsFor(PaperConfig::C), Diags);
  ASSERT_NE(Compiled, nullptr) << Diags.str();

  SimOptions Decoded;
  Decoded.Engine = SimEngine::Decoded;
  SimOptions Raw;
  Raw.Engine = SimEngine::Native;
  Raw.NativeRaw = true;

  // One warm-up apiece (page faults, branch predictors, lazy init).
  ASSERT_TRUE(runProgram(Compiled->Program, Decoded).OK);
  ASSERT_TRUE(runProgram(Compiled->Program, Raw).OK);

  const int Runs = 5;
  double DecodedIPS = bestInstrPerSec(Compiled->Program, Decoded, Runs);
  double RawIPS = bestInstrPerSec(Compiled->Program, Raw, Runs);
  ASSERT_GT(DecodedIPS, 0.0);
  ASSERT_GT(RawIPS, 0.0);

  RecordProperty("decoded_instr_per_sec", bench::formatInstrPerSec(DecodedIPS));
  RecordProperty("native_raw_instr_per_sec", bench::formatInstrPerSec(RawIPS));
  std::printf("dhrystone: decoded %s, native-raw %s (%.1fx)\n",
              bench::formatInstrPerSec(DecodedIPS).c_str(),
              bench::formatInstrPerSec(RawIPS).c_str(), RawIPS / DecodedIPS);

  EXPECT_GE(RawIPS, 5.0 * DecodedIPS)
      << "raw native " << bench::formatInstrPerSec(RawIPS)
      << " vs decoded " << bench::formatInstrPerSec(DecodedIPS);
}

// The per-procedure policy's gate is the paper's own metric. Measured
// honestly, per-procedure maps do NOT beat the global map on raw
// wall-clock throughput here: the global map pins the eight hottest
// registers program-wide for free (one trampoline setup per run, zero
// call-boundary traffic), which on programs this small is Wall's
// link-time global allocation -- the known-hard baseline -- while the
// per-procedure policy pays prologue/epilogue and boundary traffic on
// every activation. What the paper actually claims, and what this gate
// holds, is that summary-driven call boundaries minimize the register
// usage penalty AT CALLS: against the convention-only baseline (every
// call site assumes the callee reads and clobbers everything --
// RegMapTable::blindBoundaries), the published clobber summaries plus
// host-agreement must cut dynamic call-boundary sync/reload traffic by
// >= 1.25x on the call-heavy gate program. The metric is computed from
// emission-time per-block op counts weighted by a decoded-engine block
// profile, so it is exactly reproducible -- no timing noise, and any
// regression that weakens the summaries trips it deterministically.
// (Measured: 1.28x on dhrystone/C, 1.58x on stanford/C; EXPERIMENTS.md
// has the full table.)
TEST(NativePerfTest, SummaryBoundariesCutCallPenaltyOnDhrystone) {
  std::string Why;
  if (!nativeEngineSupported(&Why))
    GTEST_SKIP() << Why;

  DiagnosticEngine Diags;
  auto Compiled = compileProgram(findBenchmark("dhrystone")->Source,
                                 optionsFor(PaperConfig::C), Diags);
  ASSERT_NE(Compiled, nullptr) << Diags.str();
  const MProgram &Prog = Compiled->Program;

  SimOptions Prof;
  Prof.Engine = SimEngine::Decoded;
  Prof.CollectBlockProfile = true;
  RunStats Stats = runProgram(Prog, Prof);
  ASSERT_TRUE(Stats.OK) << Stats.Error;
  ASSERT_FALSE(Stats.Profile.empty());

  x64::NativeCodeGenOptions CG;
  CG.Raw = true;
  CG.MaxSteps = 1u << 30;
  CG.MemWords = 1u << 16;
  CG.MaxBlockCost = 1;
  std::vector<size_t> ProfOff(Prog.Procs.size(), 0);
  size_t Total = 0;
  for (size_t P = 0; P < Prog.Procs.size(); ++P) {
    ProfOff[P] = Total;
    Total += Prog.Procs[P].Blocks.size();
    for (const MBlock &B : Prog.Procs[P].Blocks)
      CG.MaxBlockCost = std::max(CG.MaxBlockCost, uint64_t(B.Insts.size()));
  }

  uint64_t Penalty[2] = {0, 0}; // [0]=summary-driven, [1]=blind
  for (int Blind = 0; Blind < 2; ++Blind) {
    x64::RegMapTable Maps = x64::buildRegMapTable(Prog, true, true);
    if (Blind)
      Maps.blindBoundaries();
    x64::NativeCode Code;
    std::string Err;
    ASSERT_TRUE(x64::emitNativeProgram(Prog, CG, Maps, ProfOff, Code, Err))
        << Err;
    Penalty[Blind] = x64::nativeMapTraffic(Prog, Code,
                                           Stats.Profile.BlockCounts,
                                           /*CallBoundaryOnly=*/true);
  }
  ASSERT_GT(Penalty[0], 0u);

  double Ratio = double(Penalty[1]) / double(Penalty[0]);
  RecordProperty("call_penalty_summary", std::to_string(Penalty[0]));
  RecordProperty("call_penalty_blind", std::to_string(Penalty[1]));
  std::printf("dhrystone: call penalty %llu (summary) vs %llu "
              "(convention-only baseline), %.3fx\n",
              (unsigned long long)Penalty[0], (unsigned long long)Penalty[1],
              Ratio);

  EXPECT_GE(double(Penalty[1]), 1.25 * double(Penalty[0]))
      << "summaries only cut call-boundary traffic by " << Ratio << "x";
}

// Wall-clock guard for the same policy: per-procedure maps may not beat
// the global map on these small benchmarks (see above), but they must
// stay within striking distance -- the measured figure is ~0.94x on
// dhrystone/C (perproc wins on stanford), gated at 0.75x for shared-CI
// headroom. A regression that makes boundary code expensive in practice
// (not just in the traffic model) lands here.
TEST(NativePerfTest, PerProcMapWallClockNonRegression) {
  std::string Why;
  if (!nativeEngineSupported(&Why))
    GTEST_SKIP() << Why;

  DiagnosticEngine Diags;
  auto Compiled = compileProgram(findBenchmark("dhrystone")->Source,
                                 optionsFor(PaperConfig::C), Diags);
  ASSERT_NE(Compiled, nullptr) << Diags.str();

  SimOptions Global;
  Global.Engine = SimEngine::Native;
  Global.NativeRaw = true;
  Global.NativeMap = SimOptions::NativeMapPolicy::Global;
  SimOptions PerProc = Global;
  PerProc.NativeMap = SimOptions::NativeMapPolicy::PerProc;

  ASSERT_TRUE(runProgram(Compiled->Program, Global).OK);
  ASSERT_TRUE(runProgram(Compiled->Program, PerProc).OK);

  const int Runs = 5;
  double GlobalIPS = bestInstrPerSec(Compiled->Program, Global, Runs);
  double PerProcIPS = bestInstrPerSec(Compiled->Program, PerProc, Runs);
  ASSERT_GT(GlobalIPS, 0.0);
  ASSERT_GT(PerProcIPS, 0.0);

  RecordProperty("global_map_instr_per_sec",
                 bench::formatInstrPerSec(GlobalIPS));
  RecordProperty("perproc_map_instr_per_sec",
                 bench::formatInstrPerSec(PerProcIPS));
  std::printf("dhrystone: global-map %s, perproc-map %s (%.2fx)\n",
              bench::formatInstrPerSec(GlobalIPS).c_str(),
              bench::formatInstrPerSec(PerProcIPS).c_str(),
              PerProcIPS / GlobalIPS);

  EXPECT_GE(PerProcIPS, 0.75 * GlobalIPS)
      << "perproc " << bench::formatInstrPerSec(PerProcIPS) << " vs global "
      << bench::formatInstrPerSec(GlobalIPS);
}

// The two map policies must be observationally identical: byte-equal
// RunStats in both native modes on the gate program. (The whole-suite
// three-way differential in NativeEngineTest covers the default policy
// against the interpreters; this pins global against perproc directly,
// at smoke scale, under the perf label.)
TEST(NativePerfTest, MapPolicyDifferentialOnDhrystone) {
  std::string Why;
  if (!nativeEngineSupported(&Why))
    GTEST_SKIP() << Why;

  DiagnosticEngine Diags;
  auto Compiled = compileProgram(findBenchmark("dhrystone")->Source,
                                 optionsFor(PaperConfig::C), Diags);
  ASSERT_NE(Compiled, nullptr) << Diags.str();

  for (bool Raw : {false, true}) {
    SimOptions Opts;
    Opts.Engine = SimEngine::Native;
    Opts.NativeRaw = Raw;
    Opts.NativeMap = SimOptions::NativeMapPolicy::Global;
    RunStats G = runProgram(Compiled->Program, Opts);
    ASSERT_TRUE(G.OK) << G.Error;
    Opts.NativeMap = SimOptions::NativeMapPolicy::PerProc;
    RunStats P = runProgram(Compiled->Program, Opts);
    ASSERT_TRUE(P.OK) << P.Error;
    EXPECT_TRUE(G.sameExecution(P))
        << (Raw ? "raw" : "instrumented")
        << ": global and perproc maps diverged";
  }
}

} // namespace
