//===- tests/NativePerfTest.cpp - Raw native throughput gate --------------===//
//
// The native backend's reason to exist: raw-mode JIT execution must beat
// the decoded interpreter by a wide margin on the call-heavy suite
// program the paper's tables lean on. The CI gate demands >= 5x
// instructions-per-second on dhrystone (the measured margin is larger --
// see the throughput table in EXPERIMENTS.md -- but wall-clock gates on
// shared CI hardware need headroom). The warm-up run populates the
// engine's code cache, so the timed runs price what repeat callers pay:
// execution plus per-run setup, not re-compilation (set
// IPRA_NATIVE_NOCACHE=1 to measure the cold path, which lands near 3x).
//
// Registered outside the TSan preset (like the bench smoke tests):
// single-threaded throughput proves nothing under a ~10x sanitizer
// slowdown, and the generated code is uninstrumented anyway.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "driver/Pipeline.h"
#include "programs/Programs.h"
#include "x64/NativeEngine.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>

using namespace ipra;

namespace {

/// Best-of-N instructions-per-second, timing each run individually so
/// one scheduler hiccup cannot sink the fast engine's figure.
double bestInstrPerSec(const MProgram &Prog, const SimOptions &Opts,
                       int Runs) {
  double Best = 0.0;
  for (int R = 0; R < Runs; ++R) {
    auto T0 = std::chrono::steady_clock::now();
    RunStats Stats = runProgram(Prog, Opts);
    auto T1 = std::chrono::steady_clock::now();
    EXPECT_TRUE(Stats.OK) << Stats.Error;
    if (!Stats.OK)
      return 0.0;
    double Secs = std::chrono::duration<double>(T1 - T0).count();
    if (Secs > 0.0)
      Best = std::max(Best, double(Stats.Instructions) / Secs);
  }
  return Best;
}

TEST(NativePerfTest, RawModeBeatsDecodedOnDhrystone) {
  std::string Why;
  if (!nativeEngineSupported(&Why))
    GTEST_SKIP() << Why;

  DiagnosticEngine Diags;
  auto Compiled = compileProgram(findBenchmark("dhrystone")->Source,
                                 optionsFor(PaperConfig::C), Diags);
  ASSERT_NE(Compiled, nullptr) << Diags.str();

  SimOptions Decoded;
  Decoded.Engine = SimEngine::Decoded;
  SimOptions Raw;
  Raw.Engine = SimEngine::Native;
  Raw.NativeRaw = true;

  // One warm-up apiece (page faults, branch predictors, lazy init).
  ASSERT_TRUE(runProgram(Compiled->Program, Decoded).OK);
  ASSERT_TRUE(runProgram(Compiled->Program, Raw).OK);

  const int Runs = 5;
  double DecodedIPS = bestInstrPerSec(Compiled->Program, Decoded, Runs);
  double RawIPS = bestInstrPerSec(Compiled->Program, Raw, Runs);
  ASSERT_GT(DecodedIPS, 0.0);
  ASSERT_GT(RawIPS, 0.0);

  RecordProperty("decoded_instr_per_sec", bench::formatInstrPerSec(DecodedIPS));
  RecordProperty("native_raw_instr_per_sec", bench::formatInstrPerSec(RawIPS));
  std::printf("dhrystone: decoded %s, native-raw %s (%.1fx)\n",
              bench::formatInstrPerSec(DecodedIPS).c_str(),
              bench::formatInstrPerSec(RawIPS).c_str(), RawIPS / DecodedIPS);

  EXPECT_GE(RawIPS, 5.0 * DecodedIPS)
      << "raw native " << bench::formatInstrPerSec(RawIPS)
      << " vs decoded " << bench::formatInstrPerSec(DecodedIPS);
}

} // namespace
