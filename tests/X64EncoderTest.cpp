//===- tests/X64EncoderTest.cpp - Byte-exact x86-64 encoder goldens -------===//
//
// The Assembler promises one canonical byte sequence per emission (see
// x64/X64Assembler.h): memory operands are always [base + disp32],
// REX.W on every 64-bit form, SIB only where rsp/r12 forces one. These
// goldens pin each form against hand-assembled expectations so an
// encoding regression shows up as a byte diff here, not as a
// miscompiled guest program three layers up.
//
//===----------------------------------------------------------------------===//

#include "x64/X64Assembler.h"
#include "x64/X64Decoder.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <initializer_list>
#include <random>
#include <vector>

using namespace ipra::x64;

namespace {

/// Compares the assembler's buffer against hand-written hex bytes and
/// renders both sides in hex on mismatch.
void expectBytes(const Assembler &A, std::initializer_list<int> Want) {
  std::vector<uint8_t> W;
  for (int B : Want)
    W.push_back(uint8_t(B));
  if (A.code() == W)
    return;
  auto Hex = [](const std::vector<uint8_t> &Bytes) {
    std::string S;
    char Buf[4];
    for (uint8_t B : Bytes) {
      std::snprintf(Buf, sizeof(Buf), "%02X ", B);
      S += Buf;
    }
    return S;
  };
  ADD_FAILURE() << "encoding mismatch\n  want: " << Hex(W)
                << "\n  got:  " << Hex(A.code());
}

TEST(X64EncoderTest, MovRegReg) {
  Assembler A;
  A.movRR(RAX, RBX); // mov rax, rbx
  A.movRR(R8, RAX);  // mov r8, rax
  A.movRR(RCX, R15); // mov rcx, r15
  expectBytes(A, {0x48, 0x89, 0xD8, 0x49, 0x89, 0xC0, 0x4C, 0x89, 0xF9});
}

TEST(X64EncoderTest, MovRegMemDisp32) {
  Assembler A;
  A.movRM(RAX, {R15, 64}); // mov rax, [r15+64]
  A.movMR({R15, 8}, RCX);  // mov [r15+8], rcx
  expectBytes(A, {0x49, 0x8B, 0x87, 0x40, 0x00, 0x00, 0x00,
                  0x49, 0x89, 0x8F, 0x08, 0x00, 0x00, 0x00});
}

TEST(X64EncoderTest, MovMemRspAndR12BasesTakeSIB) {
  Assembler A;
  A.movRM(RAX, {RSP, 16}); // mov rax, [rsp+16]
  A.movRM(RAX, {R12, 16}); // mov rax, [r12+16]
  expectBytes(A, {0x48, 0x8B, 0x84, 0x24, 0x10, 0x00, 0x00, 0x00,
                  0x49, 0x8B, 0x84, 0x24, 0x10, 0x00, 0x00, 0x00});
}

TEST(X64EncoderTest, MovImmediateFormsBySize) {
  Assembler A;
  A.movRI(RAX, 42); // imm32 form
  A.movRI(RAX, -1); // still imm32 (sign-extended)
  A.movRI(RCX, 0x123456789LL); // movabs
  expectBytes(A, {0x48, 0xC7, 0xC0, 0x2A, 0x00, 0x00, 0x00,
                  0x48, 0xC7, 0xC0, 0xFF, 0xFF, 0xFF, 0xFF,
                  0x48, 0xB9, 0x89, 0x67, 0x45, 0x23, 0x01, 0x00, 0x00, 0x00});
}

TEST(X64EncoderTest, MovMemImmediate) {
  Assembler A;
  A.movMI({R15, 8}, 7); // mov qword [r15+8], 7
  expectBytes(A, {0x49, 0xC7, 0x87, 0x08, 0x00, 0x00, 0x00,
                  0x07, 0x00, 0x00, 0x00});
}

TEST(X64EncoderTest, ScaledGuestMemoryAccess) {
  Assembler A;
  A.movRMScaled8(RDX, R14, RAX); // mov rdx, [r14+rax*8]
  A.movMRScaled8(R14, RAX, RCX); // mov [r14+rax*8], rcx
  expectBytes(A, {0x49, 0x8B, 0x14, 0xC6, 0x49, 0x89, 0x0C, 0xC6});
}

TEST(X64EncoderTest, SignAndZeroExtensions) {
  Assembler A;
  A.movsxdRR(RDX, RAX); // movsxd rdx, eax
  A.movzxRR8(RAX, RAX); // movzx rax, al
  expectBytes(A, {0x48, 0x63, 0xD0, 0x48, 0x0F, 0xB6, 0xC0});
}

TEST(X64EncoderTest, AluRegisterForms) {
  Assembler A;
  A.aluRR(Alu::Add, RAX, RCX); // add rax, rcx
  A.aluRR(Alu::Sub, RAX, R9);  // sub rax, r9
  A.aluRR(Alu::Xor, RDX, RDX); // xor rdx, rdx
  A.aluRR(Alu::Cmp, RAX, RBX); // cmp rax, rbx
  expectBytes(A, {0x48, 0x03, 0xC1, 0x49, 0x2B, 0xC1, 0x48, 0x33, 0xD2,
                  0x48, 0x3B, 0xC3});
}

TEST(X64EncoderTest, AluMemoryForms) {
  Assembler A;
  A.aluRM(Alu::Sub, RAX, {R15, 32}); // sub rax, [r15+32]
  A.aluMR(Alu::Add, {R15, 16}, RCX); // add [r15+16], rcx
  expectBytes(A, {0x49, 0x2B, 0x87, 0x20, 0x00, 0x00, 0x00,
                  0x49, 0x01, 0x8F, 0x10, 0x00, 0x00, 0x00});
}

TEST(X64EncoderTest, AluImmediateForms) {
  Assembler A;
  A.aluRI(Alu::Cmp, RCX, 62);      // cmp rcx, 62
  A.aluMI(Alu::Cmp, {R15, 24}, 5); // cmp qword [r15+24], 5
  A.aluMI(Alu::Add, {R15, 40}, 3); // add qword [r15+40], 3
  expectBytes(A, {0x48, 0x81, 0xF9, 0x3E, 0x00, 0x00, 0x00,
                  0x49, 0x81, 0xBF, 0x18, 0x00, 0x00, 0x00,
                  0x05, 0x00, 0x00, 0x00,
                  0x49, 0x81, 0x87, 0x28, 0x00, 0x00, 0x00,
                  0x03, 0x00, 0x00, 0x00});
}

TEST(X64EncoderTest, MulDivShiftUnary) {
  Assembler A;
  A.imulRR(RAX, RBX); // imul rax, rbx
  A.cqo();
  A.idivR(RCX);   // idiv rcx
  A.negR(RAX);    // neg rax
  A.notR(RAX);    // not rax
  A.shlCL(RAX);   // shl rax, cl
  A.sarCL(RAX);   // sar rax, cl
  A.shlRI(RDX, 3); // shl rdx, 3
  expectBytes(A, {0x48, 0x0F, 0xAF, 0xC3, 0x48, 0x99, 0x48, 0xF7, 0xF9,
                  0x48, 0xF7, 0xD8, 0x48, 0xF7, 0xD0, 0x48, 0xD3, 0xE0,
                  0x48, 0xD3, 0xF8, 0x48, 0xC1, 0xE2, 0x03});
}

TEST(X64EncoderTest, TestAndSetcc) {
  Assembler A;
  A.testRR(RCX, RCX);       // test rcx, rcx
  A.setccR8(Cond::E, RAX);  // sete al
  A.setccR8(Cond::GE, RCX); // setge cl
  expectBytes(A, {0x48, 0x85, 0xC9, 0x0F, 0x94, 0xC0, 0x0F, 0x9D, 0xC1});
}

TEST(X64EncoderTest, PushPopRetFrameGlue) {
  Assembler A;
  A.pushR(RBX);
  A.pushR(R12);
  A.popR(R12);
  A.popR(RBX);
  A.ret();
  expectBytes(A, {0x53, 0x41, 0x54, 0x41, 0x5C, 0x5B, 0xC3});
}

TEST(X64EncoderTest, BackwardBranchEncodesImmediately) {
  Assembler A;
  int L = A.newLabel();
  A.bind(L);
  A.jmp(L); // rel32 = 0 - (1 + 4) = -5
  A.finalize();
  expectBytes(A, {0xE9, 0xFB, 0xFF, 0xFF, 0xFF});
}

TEST(X64EncoderTest, ForwardBranchPatchedAtFinalize) {
  Assembler A;
  int L = A.newLabel();
  A.jcc(Cond::NE, L); // bytes 0..5, rel32 field at 2
  A.ret();            // byte 6: skipped when the branch fires
  A.bind(L);          // offset 7
  A.ret();
  A.finalize();
  EXPECT_TRUE(A.bound(L));
  EXPECT_EQ(A.labelOffset(L), 7u);
  expectBytes(A, {0x0F, 0x85, 0x01, 0x00, 0x00, 0x00, 0xC3, 0xC3});
}

TEST(X64EncoderTest, CallLabelAndManualPatch) {
  Assembler A;
  int L = A.newLabel();
  A.callLabel(L); // rel32 field at 1
  size_t Pos = A.callRelPatchable(); // field at 6
  A.ret();        // offset 10
  A.bind(L);      // offset 11
  A.ret();
  A.finalize();
  EXPECT_EQ(Pos, 6u);
  A.patchCall(Pos, 100); // rel = 100 - (6 + 4) = 90 = 0x5A
  expectBytes(A, {0xE8, 0x06, 0x00, 0x00, 0x00, 0xE8, 0x5A, 0x00, 0x00, 0x00,
                  0xC3, 0xC3});
}

TEST(X64EncoderTest, CallThroughMemory) {
  Assembler A;
  A.callM({R15, 0x40}); // call qword [r15+0x40]
  A.callM({RBX, 0x10}); // call qword [rbx+0x10]
  expectBytes(A, {0x41, 0xFF, 0x97, 0x40, 0x00, 0x00, 0x00,
                  0xFF, 0x93, 0x10, 0x00, 0x00, 0x00});
}

//===----------------------------------------------------------------------===//
// Decoder round-trip: encode(decode(bytes)) == bytes
//===----------------------------------------------------------------------===//
//
// The property the native verifier's byte-exactness obligation rests on
// (see verify/NativeVerifier.h check (a)): every canonical emission
// decodes to a typed instruction that re-encodes to the identical
// bytes. Checked here against the same operand space the golden tests
// pin, plus a seeded randomized sweep over every form.

/// Decodes A's whole buffer instruction by instruction, re-encodes each
/// through a fresh assembler, and requires byte identity per
/// instruction and for the buffer as a whole.
void expectRoundTrip(const Assembler &A) {
  const std::vector<uint8_t> &Bytes = A.code();
  Assembler Re;
  size_t Off = 0;
  while (Off < Bytes.size()) {
    DecodedInst I;
    std::string Why;
    ASSERT_TRUE(decodeInst(Bytes.data(), Bytes.size(), Off, I, Why))
        << "at offset " << Off << ": " << Why;
    ASSERT_EQ(I.Offset, Off);
    ASSERT_GT(I.Len, 0u);
    size_t Mark = Re.code().size();
    reencode(I, Re);
    ASSERT_EQ(Re.code().size(), Mark + I.Len)
        << formName(I.Form) << " at offset " << Off;
    for (size_t B = 0; B < I.Len; ++B)
      ASSERT_EQ(Re.code()[Mark + B], Bytes[Off + B])
          << formName(I.Form) << " at offset " << Off << ", byte " << B;
    Off += I.Len;
  }
  EXPECT_EQ(Re.code(), Bytes);
}

TEST(X64DecoderRoundTripTest, EveryGoldenFormRoundTrips) {
  // One buffer exercising every emission the golden tests above pin.
  Assembler A;
  A.movRR(RAX, RBX);
  A.movRR(R8, RAX);
  A.movRM(RAX, {R15, 64});
  A.movMR({R15, 8}, RCX);
  A.movRM(RAX, {RSP, 16});
  A.movRM(RAX, {R12, 16});
  A.movRI(RAX, 42);
  A.movRI(RAX, -1);
  A.movRI(RCX, 0x123456789LL);
  A.movMI({R15, 8}, 7);
  A.movRMScaled8(RDX, R14, RAX);
  A.movMRScaled8(R14, RAX, RCX);
  A.movsxdRR(RDX, RAX);
  A.movzxRR8(RAX, RAX);
  A.aluRR(Alu::Add, RAX, RCX);
  A.aluRR(Alu::Xor, RDX, RDX);
  A.aluRM(Alu::Sub, RAX, {R15, 32});
  A.aluMR(Alu::Add, {R15, 16}, RCX);
  A.aluRI(Alu::Cmp, RCX, 62);
  A.aluMI(Alu::Add, {R15, 40}, 3);
  A.imulRR(RAX, RBX);
  A.cqo();
  A.idivR(RCX);
  A.negR(RAX);
  A.notR(RAX);
  A.shlCL(RAX);
  A.sarCL(RAX);
  A.shlRI(RDX, 3);
  A.testRR(RCX, RCX);
  A.setccR8(Cond::E, RAX);
  A.pushR(RBX);
  A.pushR(R12);
  A.popR(R12);
  A.popR(RBX);
  A.callM({R15, 0x40});
  A.ret();
  expectRoundTrip(A);
}

TEST(X64DecoderRoundTripTest, BranchAndCallFormsRoundTrip) {
  Assembler A;
  int L = A.newLabel();
  A.jcc(Cond::NE, L);
  A.callLabel(L);
  A.jmp(L);
  A.bind(L);
  A.ret();
  A.finalize();
  expectRoundTrip(A);
}

TEST(X64DecoderRoundTripTest, RandomizedOperandSweep) {
  // Seeded, so failures reproduce. Operands stay inside the space the
  // assembler can actually emit (e.g. no rsp as a scale index -- the
  // SIB encoding cannot express it).
  std::mt19937 Rng(0x1988);
  auto R = [&Rng] { return Reg(Rng() % 16); };
  auto Idx = [&] {
    Reg X = R();
    return X == RSP ? RAX : X;
  };
  auto Low8 = [&Rng] { return Reg(Rng() % 4); }; // al/cl/dl/bl forms only
  auto SBase = [&] { // scaled base: mod=00 cannot express rbp/r13
    Reg X = R();
    return (X & 7) == 5 ? R14 : X;
  };
  auto D32 = [&Rng] { return int32_t(Rng()); };
  auto AluOp = [&Rng] {
    const Alu Ops[] = {Alu::Add, Alu::Or,  Alu::And,
                       Alu::Sub, Alu::Xor, Alu::Cmp};
    return Ops[Rng() % 6];
  };
  for (int Trial = 0; Trial < 2000; ++Trial) {
    Assembler A;
    switch (Rng() % 16) {
    case 0:
      A.movRR(R(), R());
      break;
    case 1:
      A.movRM(R(), {R(), D32()});
      break;
    case 2:
      A.movMR({R(), D32()}, R());
      break;
    case 3:
      A.movRI(R(), int64_t((uint64_t(Rng()) << (Rng() % 33)) | (Rng() % 2)));
      break;
    case 4:
      A.movMI({R(), D32()}, D32());
      break;
    case 5:
      A.movRMScaled8(R(), SBase(), Idx());
      break;
    case 6:
      A.movMRScaled8(SBase(), Idx(), R());
      break;
    case 7:
      A.movsxdRR(R(), R());
      break;
    case 8:
      A.movzxRR8(R(), Low8());
      break;
    case 9:
      A.aluRR(AluOp(), R(), R());
      break;
    case 10:
      A.aluRM(AluOp(), R(), {R(), D32()});
      break;
    case 11:
      A.aluMR(AluOp(), {R(), D32()}, R());
      break;
    case 12:
      A.aluRI(AluOp(), R(), D32());
      break;
    case 13:
      A.aluMI(AluOp(), {R(), D32()}, D32());
      break;
    case 14:
      A.shlRI(R(), int32_t(Rng() % 64));
      break;
    case 15:
      A.setccR8(Cond(Rng() % 16), Low8());
      break;
    }
    expectRoundTrip(A);
    if (::testing::Test::HasFatalFailure())
      return;
  }
}

TEST(X64DecoderRoundTripTest, NonCanonicalMovabsDecodesButReencodesSmaller) {
  // A movabs of an imm32-representable value is decodable yet not
  // canonical: the assembler would pick the 7-byte imm32 form. The
  // decoder accepts it (the bytes are unambiguous) and the re-encode
  // shrinks -- exactly the mismatch the native verifier reports as an
  // "encoding" finding rather than a decode failure.
  const uint8_t Bytes[] = {0x48, 0xB8, 0x2A, 0x00, 0x00, 0x00,
                           0x00, 0x00, 0x00, 0x00}; // movabs rax, 42
  DecodedInst I;
  std::string Why;
  ASSERT_TRUE(decodeInst(Bytes, sizeof(Bytes), 0, I, Why)) << Why;
  EXPECT_EQ(I.Form, IForm::MovRI64);
  EXPECT_EQ(I.Imm, 42);
  EXPECT_EQ(I.Len, 10u);
  Assembler Re;
  reencode(I, Re);
  EXPECT_EQ(Re.code().size(), 7u); // canonical imm32 form
}

} // namespace
