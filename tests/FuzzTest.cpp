//===- tests/FuzzTest.cpp - Random-program differential testing -----------===//
//
// Generates random (but always-terminating) miniC programs and checks that
// every compiler configuration produces identical observable output. Any
// divergence pinpoints a miscompile in the allocator, the shrink-wrapper,
// or the code generator. A second sweep pins down scheduler determinism:
// the parallel pipeline must emit byte-identical machine code run-to-run
// and against serial compilation.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "ConventionGen.h"
#include "ProgramGenerator.h"
#include "TestRender.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

using namespace ipra;

namespace {

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, AllConfigsAgreeOnRandomPrograms) {
  for (int Trial = 0; Trial < 12; ++Trial) {
    uint32_t Seed = uint32_t(GetParam() * 1000 + Trial);
    ProgramGenerator Gen(Seed);
    std::string Src = Gen.generate();
    SimOptions SOpts;
    SOpts.MaxSteps = 20 * 1000 * 1000;
    RunStats Reference =
        compileAndRun(Src, optionsFor(PaperConfig::Base), SOpts);
    if (!Reference.OK &&
        Reference.Error.find("budget") != std::string::npos)
      continue; // pathologically deep call tree; not a correctness signal
    ASSERT_TRUE(Reference.OK)
        << "seed " << Seed << ": " << Reference.Error << "\n" << Src;
    for (PaperConfig Config : {PaperConfig::A, PaperConfig::B,
                               PaperConfig::C, PaperConfig::D,
                               PaperConfig::E}) {
      RunStats Stats = compileAndRun(Src, optionsFor(Config), SOpts);
      ASSERT_TRUE(Stats.OK) << "seed " << Seed << " under "
                            << paperConfigName(Config) << ": "
                            << Stats.Error;
      ASSERT_EQ(Stats.Output, Reference.Output)
          << "MISCOMPILE at seed " << Seed << " under "
          << paperConfigName(Config) << "\n" << Src;
    }
    // And one ablation mix.
    CompileOptions Opts = optionsFor(PaperConfig::C);
    Opts.CombinedStrategy = Trial % 2;
    Opts.LoopExtension = Trial % 3 != 0;
    Opts.RegisterParams = Trial % 5 != 0;
    RunStats Stats = compileAndRun(Src, Opts, SOpts);
    ASSERT_TRUE(Stats.OK) << Stats.Error;
    ASSERT_EQ(Stats.Output, Reference.Output)
        << "MISCOMPILE (ablation) at seed " << Seed << "\n" << Src;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// Seeded determinism sweep for the DAG-scheduled back end: each random
// program is compiled twice at Threads=4 and once serially; the rendered
// machine programs must agree byte for byte. Any divergence dumps the
// offending miniC source and seed so the failure replays exactly.
class ParallelDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelDeterminismTest, ParallelCompilesAreDeterministic) {
  for (int Trial = 0; Trial < 6; ++Trial) {
    uint32_t Seed = uint32_t(77000 + GetParam() * 100 + Trial);
    ProgramGenerator Gen(Seed);
    std::string Src = Gen.generate();
    PaperConfig Config =
        std::vector<PaperConfig>{PaperConfig::Base, PaperConfig::A,
                                 PaperConfig::B, PaperConfig::C,
                                 PaperConfig::D,
                                 PaperConfig::E}[unsigned(Trial) % 6];

    CompileOptions Serial = optionsFor(Config);
    Serial.Threads = 0;
    DiagnosticEngine SerialDiags;
    auto Reference = compileProgram(Src, Serial, SerialDiags);
    ASSERT_NE(Reference, nullptr)
        << "seed " << Seed << ": " << SerialDiags.str() << "\n" << Src;
    std::string Expected = renderProgram(*Reference);

    CompileOptions Parallel = optionsFor(Config);
    Parallel.Threads = 4;
    for (int Rerun = 0; Rerun < 2; ++Rerun) {
      DiagnosticEngine Diags;
      auto Result = compileProgram(Src, Parallel, Diags);
      ASSERT_NE(Result, nullptr)
          << "seed " << Seed << ": " << Diags.str() << "\n" << Src;
      ASSERT_EQ(renderProgram(*Result), Expected)
          << "NONDETERMINISM under " << paperConfigName(Config)
          << " (rerun " << Rerun << ") at seed " << Seed
          << " -- replay with:\n" << Src;
      ASSERT_EQ(Diags.str(), SerialDiags.str()) << "seed " << Seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminismTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// Convention fuzzing: randomize the calling convention alongside the
// program. Whatever the caller/callee split, parameter assignment or
// reservation, the compiled program must compute what the default
// convention computes -- conventions change cost, never meaning.
class ConventionFuzzTest : public ::testing::TestWithParam<int> {};

/// Degenerate corners every fuzz shard revisits: no parameter registers,
/// all-caller-saved, all-callee-saved, and a heavily reserved file.
const std::vector<std::string> &degenerateSpecs() {
  static const std::vector<std::string> Specs = {
      "s:9,p:0",  // default split, every argument on the stack
      "s:0,p:4",  // all caller-saved
      "s:20,p:0", // all callee-saved (parameters forced to the stack)
      "s:6,p:4,r:10", // 10-register machine, callee class squeezed to 4
  };
  return Specs;
}

/// Specs that ever broke the compiler, pinned as regressions. Seed this
/// list with the exact `ConventionSpec::str()` spelling whenever the
/// randomized sweep finds a failure.
const std::vector<std::string> &regressionCorpus() {
  static const std::vector<std::string> Specs = {
      // The grid's own corners, kept as cheap insurance that the corpus
      // harness stays wired even while no real failures are pinned.
      "s:9,p:4,r:13",                           // paper-D as reservation
      "callee=s0-s8;params=a0-a3;reserved=a0-t6", // paper-E as reservation
  };
  return Specs;
}

TEST_P(ConventionFuzzTest, RandomConventionTimesRandomProgram) {
  std::mt19937 Rng(0xFACADE00u + uint32_t(GetParam()));
  SimOptions SOpts;
  SOpts.MaxSteps = 20 * 1000 * 1000;
  SOpts.CheckConventions = true;
  for (int Trial = 0; Trial < 8; ++Trial) {
    uint32_t Seed = uint32_t(GetParam() * 2000 + Trial);
    ProgramGenerator Gen(Seed);
    std::string Src = Gen.generate();
    RunStats Reference =
        compileAndRun(Src, optionsFor(PaperConfig::C), SOpts);
    if (!Reference.OK &&
        Reference.Error.find("budget") != std::string::npos)
      continue; // pathologically deep call tree; not a correctness signal
    ASSERT_TRUE(Reference.OK)
        << "seed " << Seed << ": " << Reference.Error << "\n" << Src;

    std::vector<ConventionSpec> Specs;
    for (int S = 0; S < 3; ++S)
      Specs.push_back(randomConventionSpec(Rng));
    // Degenerate and regression specs ride along on the first trial.
    std::vector<std::string> Pinned;
    if (Trial == 0) {
      Pinned = degenerateSpecs();
      Pinned.insert(Pinned.end(), regressionCorpus().begin(),
                    regressionCorpus().end());
    }
    for (const std::string &Text : Pinned) {
      ConventionSpec Spec;
      std::string Err;
      ASSERT_TRUE(ConventionSpec::parse(Text, Spec, Err))
          << Text << ": " << Err;
      Specs.push_back(Spec);
    }

    for (const ConventionSpec &Spec : Specs) {
      CompileOptions Opts = optionsFor(PaperConfig::C);
      Opts.Convention = Spec;
      RunStats Stats = compileAndRun(Src, Opts, SOpts);
      ASSERT_TRUE(Stats.OK) << "seed " << Seed << " convention '"
                            << Spec.str() << "': " << Stats.Error << "\n"
                            << Src;
      ASSERT_EQ(Stats.Output, Reference.Output)
          << "MISCOMPILE at seed " << Seed << " under convention '"
          << Spec.str() << "'\n" << Src;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConventionFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

} // namespace
