//===- tests/FuzzTest.cpp - Random-program differential testing -----------===//
//
// Generates random (but always-terminating) miniC programs and checks that
// every compiler configuration produces identical observable output. Any
// divergence pinpoints a miscompile in the allocator, the shrink-wrapper,
// or the code generator. A second sweep pins down scheduler determinism:
// the parallel pipeline must emit byte-identical machine code run-to-run
// and against serial compilation.
//
//===----------------------------------------------------------------------===//

#include "driver/IncrementalService.h"
#include "driver/Pipeline.h"

#include "ConventionGen.h"
#include "ProgramGenerator.h"
#include "TestRender.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>
#include <vector>

using namespace ipra;

namespace {

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, AllConfigsAgreeOnRandomPrograms) {
  for (int Trial = 0; Trial < 12; ++Trial) {
    uint32_t Seed = uint32_t(GetParam() * 1000 + Trial);
    ProgramGenerator Gen(Seed);
    std::string Src = Gen.generate();
    SimOptions SOpts;
    SOpts.MaxSteps = 20 * 1000 * 1000;
    RunStats Reference =
        compileAndRun(Src, optionsFor(PaperConfig::Base), SOpts);
    if (!Reference.OK &&
        Reference.Error.find("budget") != std::string::npos)
      continue; // pathologically deep call tree; not a correctness signal
    ASSERT_TRUE(Reference.OK)
        << "seed " << Seed << ": " << Reference.Error << "\n" << Src;
    for (PaperConfig Config : {PaperConfig::A, PaperConfig::B,
                               PaperConfig::C, PaperConfig::D,
                               PaperConfig::E}) {
      RunStats Stats = compileAndRun(Src, optionsFor(Config), SOpts);
      ASSERT_TRUE(Stats.OK) << "seed " << Seed << " under "
                            << paperConfigName(Config) << ": "
                            << Stats.Error;
      ASSERT_EQ(Stats.Output, Reference.Output)
          << "MISCOMPILE at seed " << Seed << " under "
          << paperConfigName(Config) << "\n" << Src;
    }
    // And one ablation mix.
    CompileOptions Opts = optionsFor(PaperConfig::C);
    Opts.CombinedStrategy = Trial % 2;
    Opts.LoopExtension = Trial % 3 != 0;
    Opts.RegisterParams = Trial % 5 != 0;
    RunStats Stats = compileAndRun(Src, Opts, SOpts);
    ASSERT_TRUE(Stats.OK) << Stats.Error;
    ASSERT_EQ(Stats.Output, Reference.Output)
        << "MISCOMPILE (ablation) at seed " << Seed << "\n" << Src;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// Seeded determinism sweep for the DAG-scheduled back end: each random
// program is compiled twice at Threads=4 and once serially; the rendered
// machine programs must agree byte for byte. Any divergence dumps the
// offending miniC source and seed so the failure replays exactly.
class ParallelDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelDeterminismTest, ParallelCompilesAreDeterministic) {
  for (int Trial = 0; Trial < 6; ++Trial) {
    uint32_t Seed = uint32_t(77000 + GetParam() * 100 + Trial);
    ProgramGenerator Gen(Seed);
    std::string Src = Gen.generate();
    PaperConfig Config =
        std::vector<PaperConfig>{PaperConfig::Base, PaperConfig::A,
                                 PaperConfig::B, PaperConfig::C,
                                 PaperConfig::D,
                                 PaperConfig::E}[unsigned(Trial) % 6];

    CompileOptions Serial = optionsFor(Config);
    Serial.Threads = 0;
    DiagnosticEngine SerialDiags;
    auto Reference = compileProgram(Src, Serial, SerialDiags);
    ASSERT_NE(Reference, nullptr)
        << "seed " << Seed << ": " << SerialDiags.str() << "\n" << Src;
    std::string Expected = renderProgram(*Reference);

    CompileOptions Parallel = optionsFor(Config);
    Parallel.Threads = 4;
    for (int Rerun = 0; Rerun < 2; ++Rerun) {
      DiagnosticEngine Diags;
      auto Result = compileProgram(Src, Parallel, Diags);
      ASSERT_NE(Result, nullptr)
          << "seed " << Seed << ": " << Diags.str() << "\n" << Src;
      ASSERT_EQ(renderProgram(*Result), Expected)
          << "NONDETERMINISM under " << paperConfigName(Config)
          << " (rerun " << Rerun << ") at seed " << Seed
          << " -- replay with:\n" << Src;
      ASSERT_EQ(Diags.str(), SerialDiags.str()) << "seed " << Seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminismTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// Convention fuzzing: randomize the calling convention alongside the
// program. Whatever the caller/callee split, parameter assignment or
// reservation, the compiled program must compute what the default
// convention computes -- conventions change cost, never meaning.
class ConventionFuzzTest : public ::testing::TestWithParam<int> {};

/// Degenerate corners every fuzz shard revisits: no parameter registers,
/// all-caller-saved, all-callee-saved, and a heavily reserved file.
const std::vector<std::string> &degenerateSpecs() {
  static const std::vector<std::string> Specs = {
      "s:9,p:0",  // default split, every argument on the stack
      "s:0,p:4",  // all caller-saved
      "s:20,p:0", // all callee-saved (parameters forced to the stack)
      "s:6,p:4,r:10", // 10-register machine, callee class squeezed to 4
  };
  return Specs;
}

/// Specs that ever broke the compiler, pinned as regressions. Seed this
/// list with the exact `ConventionSpec::str()` spelling whenever the
/// randomized sweep finds a failure.
const std::vector<std::string> &regressionCorpus() {
  static const std::vector<std::string> Specs = {
      // The grid's own corners, kept as cheap insurance that the corpus
      // harness stays wired even while no real failures are pinned.
      "s:9,p:4,r:13",                           // paper-D as reservation
      "callee=s0-s8;params=a0-a3;reserved=a0-t6", // paper-E as reservation
  };
  return Specs;
}

TEST_P(ConventionFuzzTest, RandomConventionTimesRandomProgram) {
  std::mt19937 Rng(0xFACADE00u + uint32_t(GetParam()));
  SimOptions SOpts;
  SOpts.MaxSteps = 20 * 1000 * 1000;
  SOpts.CheckConventions = true;
  for (int Trial = 0; Trial < 8; ++Trial) {
    uint32_t Seed = uint32_t(GetParam() * 2000 + Trial);
    ProgramGenerator Gen(Seed);
    std::string Src = Gen.generate();
    RunStats Reference =
        compileAndRun(Src, optionsFor(PaperConfig::C), SOpts);
    if (!Reference.OK &&
        Reference.Error.find("budget") != std::string::npos)
      continue; // pathologically deep call tree; not a correctness signal
    ASSERT_TRUE(Reference.OK)
        << "seed " << Seed << ": " << Reference.Error << "\n" << Src;

    std::vector<ConventionSpec> Specs;
    for (int S = 0; S < 3; ++S)
      Specs.push_back(randomConventionSpec(Rng));
    // Degenerate and regression specs ride along on the first trial.
    std::vector<std::string> Pinned;
    if (Trial == 0) {
      Pinned = degenerateSpecs();
      Pinned.insert(Pinned.end(), regressionCorpus().begin(),
                    regressionCorpus().end());
    }
    for (const std::string &Text : Pinned) {
      ConventionSpec Spec;
      std::string Err;
      ASSERT_TRUE(ConventionSpec::parse(Text, Spec, Err))
          << Text << ": " << Err;
      Specs.push_back(Spec);
    }

    for (const ConventionSpec &Spec : Specs) {
      CompileOptions Opts = optionsFor(PaperConfig::C);
      Opts.Convention = Spec;
      RunStats Stats = compileAndRun(Src, Opts, SOpts);
      ASSERT_TRUE(Stats.OK) << "seed " << Seed << " convention '"
                            << Spec.str() << "': " << Stats.Error << "\n"
                            << Src;
      ASSERT_EQ(Stats.Output, Reference.Output)
          << "MISCOMPILE at seed " << Seed << " under convention '"
          << Spec.str() << "'\n" << Src;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConventionFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

//===----------------------------------------------------------------------===//
// The --serve protocol under hostile input
//===----------------------------------------------------------------------===//

// The batch-request loop must answer every malformed request with a clean
// one-line diagnostic and a nonzero exit -- never a crash, and never stale
// output dressed up as fresh.

/// Runs one scripted session; returns (exit code, full response text).
std::pair<int, std::string> serve(const std::string &Script) {
  std::istringstream In(Script);
  std::ostringstream Out;
  int RC = serveLoop(In, Out, optionsFor(PaperConfig::C));
  return {RC, Out.str()};
}

const char *ServeModule =
    "func leaf(x) { return x + 1; }\n"
    "func main() { print(leaf(7)); return 0; }\n";

/// The same module with leaf edited; running it prints 9 instead of 8.
const char *ServeModuleEdited =
    "func leaf(x) { return x + 2; }\n"
    "func main() { print(leaf(7)); return 0; }\n";

TEST(ServeProtocolTest, CleanSessionExitsZero) {
  std::string Script = std::string("load m\n") + ServeModule + ".\n" +
                       "recompile m\n" + ServeModuleEdited + ".\n" +
                       "emit m\nstats m\nrun m\nquit\n";
  auto [RC, Out] = serve(Script);
  EXPECT_EQ(RC, 0) << Out;
  EXPECT_NE(Out.find("ok loaded m"), std::string::npos) << Out;
  EXPECT_NE(Out.find("ok recompiled m"), std::string::npos) << Out;
  EXPECT_NE(Out.find("incremental.frontier_size"), std::string::npos) << Out;
  EXPECT_NE(Out.find("ok run m exit=0"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("error"), std::string::npos) << Out;
}

TEST(ServeProtocolTest, MalformedRequestsGetDiagnosticsNotCrashes) {
  struct Case {
    const char *Name;
    std::string Script;
    const char *ExpectInOutput;
  };
  const Case Cases[] = {
      {"unknown command", "frobnicate m\nquit\n", "error unknown command"},
      {"load without name", "load\nquit\n", "error load needs a module"},
      {"load with extra args", "load m extra\nquit\n",
       "error load takes exactly one module name"},
      {"emit of unknown module", "emit nosuch\nquit\n",
       "error unknown module 'nosuch'"},
      {"run of unknown module", "run nosuch\nquit\n",
       "error unknown module 'nosuch'"},
      {"recompile before load",
       std::string("recompile m\n") + ServeModule + ".\nquit\n",
       "error unknown module 'm'"},
      {"emit with extra args", "emit m extra\nquit\n",
       "error emit takes exactly one module name"},
      {"load of broken source",
       "load bad\nfunc main( { nope\n.\nquit\n", "error load failed"},
      {"unknown procedure in changed set",
       std::string("load m\n") + ServeModule + ".\nrecompile m nosuchproc\n" +
           ServeModuleEdited + ".\nquit\n",
       "error recompile failed"},
      {"unterminated source", "load m\nfunc main() { return 0; }\n",
       "error unterminated source"},
  };
  for (const Case &C : Cases) {
    auto [RC, Out] = serve(C.Script);
    EXPECT_EQ(RC, 1) << C.Name << "\n" << Out;
    EXPECT_NE(Out.find(C.ExpectInOutput), std::string::npos)
        << C.Name << "\n" << Out;
  }
}

TEST(ServeProtocolTest, FailedRecompileNeverServesStaleOutputAsFresh) {
  // emit before and after a *failed* recompile must agree (the last good
  // build stays addressable); after a successful recompile it must not.
  std::string Script = std::string("load m\n") + ServeModule + ".\n" +
                       "emit m\n" +
                       "recompile m\nfunc broken( {\n.\n" + // parse error
                       "emit m\nrun m\n" +
                       "recompile m\n" + ServeModuleEdited + ".\n" +
                       "emit m\nrun m\nquit\n";
  auto [RC, Out] = serve(Script);
  EXPECT_EQ(RC, 1) << Out; // the failed recompile errored...
  EXPECT_NE(Out.find("error recompile failed"), std::string::npos) << Out;

  // ...but the module survived: split the three emit payloads and the two
  // run payloads out of the transcript.
  std::vector<std::string> Emits;
  for (size_t At = Out.find("ok emit m\n"); At != std::string::npos;
       At = Out.find("ok emit m\n", At + 1)) {
    size_t Begin = At + std::string("ok emit m\n").size();
    size_t End = Out.find("\n.\n", Begin);
    ASSERT_NE(End, std::string::npos) << Out;
    Emits.push_back(Out.substr(Begin, End - Begin));
  }
  ASSERT_EQ(Emits.size(), 3u) << Out;
  EXPECT_EQ(Emits[0], Emits[1])
      << "a failed edit replaced the served machine code";
  EXPECT_NE(Emits[1], Emits[2])
      << "a successful edit did not replace the served machine code";
  // The runs see the edit exactly once: 8 before, 9 after.
  EXPECT_NE(Out.find("\n8\n.\n"), std::string::npos) << Out;
  EXPECT_NE(Out.find("\n9\n.\n"), std::string::npos) << Out;
}

TEST(ServeProtocolTest, RandomRequestSoupNeverCrashesTheLoop) {
  // Seeded garbage -- random tokens, stray terminators, occasional valid
  // commands -- must only ever produce ok/error lines and a sane exit
  // code. Any crash or hang here is a protocol-parser bug.
  std::mt19937 Rng(0x5E12E);
  const char *Words[] = {"load",     "recompile", "emit",  "stats",
                         "run",      "quit",      "m",     "nosuch",
                         ".",        "",          "func",  "main",
                         "{",        "}",         "print", "leaf",
                         "garbage!", "\t",        "0",     "-1"};
  for (int Session = 0; Session < 20; ++Session) {
    std::string Script;
    if (Session % 2) // half the sessions start from a loaded module
      Script += std::string("load m\n") + ServeModule + ".\n";
    int Lines = 3 + int(Rng() % 12);
    for (int L = 0; L < Lines; ++L) {
      int Toks = int(Rng() % 4);
      for (int T = 0; T < Toks; ++T)
        Script += std::string(Words[Rng() % (sizeof(Words) /
                                             sizeof(Words[0]))]) +
                  " ";
      Script += "\n";
    }
    std::istringstream In(Script);
    std::ostringstream Out;
    int RC = serveLoop(In, Out, optionsFor(PaperConfig::C));
    EXPECT_TRUE(RC == 0 || RC == 1) << Script;
    // Every response line is ok/error/payload; specifically, no line
    // may be empty-prefixed junk from an uninitialized path. A cheap
    // smoke: the transcript never contains the word "assert".
    EXPECT_EQ(Out.str().find("assert"), std::string::npos)
        << Script << "\n" << Out.str();
  }
}

} // namespace
