//===- tests/PipelineParallelTest.cpp - Serial vs parallel differential ---===//
//
// The contract of the DAG-scheduled back end: for every paper
// configuration and any thread count, the compiled program is
// byte-identical to serial compilation -- same machine code, same clobber
// masks, same globals image, same diagnostics, and (a fortiori) the same
// simulator behaviour. Exercised over hand-written call-graph shapes
// (chains, diamonds, recursion, address-taken, externals, separate
// compilation) and the paper's benchmark suite.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "programs/Programs.h"

#include "TestRender.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace ipra;

namespace {

const PaperConfig AllConfigs[] = {PaperConfig::Base, PaperConfig::A,
                                  PaperConfig::B,    PaperConfig::C,
                                  PaperConfig::D,    PaperConfig::E};

const unsigned ThreadCounts[] = {0, 1, 4};

/// A deep-ish program with independent subtrees (the scheduler's win
/// case), a diamond, self- and mutual recursion, an address-taken
/// procedure and an indirect call.
const char *MixedShapes = R"(
var bias = 3;
func leafA(x) { return x + 1; }
func leafB(x) { return x * 2; }
func midA(x) { return leafA(x) + leafA(x + 1); }
func midB(x) { return leafB(x) - leafA(x); }
func diamond(x) { return midA(x) + midB(x); }
func fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
func even(n) { if (n == 0) { return 1; } return odd(n - 1); }
func odd(n) { if (n == 0) { return 0; } return even(n - 1); }
func taken(x) { return x - bias; }
func main() {
  var p = &taken;
  var acc = diamond(5) + fact(6) + even(9) + p(41);
  print(acc);
  print(bias);
  return acc;
}
)";

/// Many independent leaves under one root: maximum available parallelism.
std::string wideProgram() {
  std::string Src = "var g = 7;\n";
  for (int I = 0; I < 12; ++I) {
    std::string N = std::to_string(I);
    Src += "func w" + N + "(x) { var t = x; for (var i = 0; i < " +
           std::to_string(1 + I % 4) + "; i = i + 1) { t = t + i * " + N +
           "; } return t; }\n";
  }
  Src += "func main() {\n  var acc = g;\n";
  for (int I = 0; I < 12; ++I)
    Src += "  acc = acc + w" + std::to_string(I) + "(" + std::to_string(I) +
           ");\n";
  Src += "  print(acc);\n  return 0;\n}\n";
  return Src;
}

std::unique_ptr<CompileResult> compileAt(const std::string &Src,
                                         PaperConfig Config,
                                         unsigned Threads,
                                         std::string *DiagsOut = nullptr) {
  CompileOptions Opts = optionsFor(Config);
  Opts.Threads = Threads;
  DiagnosticEngine Diags;
  auto Result = compileProgram(Src, Opts, Diags);
  EXPECT_NE(Result, nullptr) << Diags.str();
  if (DiagsOut)
    *DiagsOut = Diags.str();
  return Result;
}

void expectAllThreadCountsAgree(const std::string &Src) {
  for (PaperConfig Config : AllConfigs) {
    std::string ReferenceDiags;
    auto Reference = compileAt(Src, Config, 0, &ReferenceDiags);
    ASSERT_NE(Reference, nullptr);
    std::string Expected = renderProgram(*Reference);
    RunStats ReferenceRun = runProgram(Reference->Program);

    for (unsigned Threads : ThreadCounts) {
      if (Threads == 0)
        continue;
      std::string Diags;
      auto Result = compileAt(Src, Config, Threads, &Diags);
      ASSERT_NE(Result, nullptr);
      EXPECT_EQ(renderProgram(*Result), Expected)
          << paperConfigName(Config) << " at Threads=" << Threads;
      EXPECT_EQ(Diags, ReferenceDiags)
          << paperConfigName(Config) << " at Threads=" << Threads;
      RunStats Run = runProgram(Result->Program);
      ASSERT_EQ(Run.OK, ReferenceRun.OK)
          << paperConfigName(Config) << " at Threads=" << Threads << ": "
          << Run.Error;
      EXPECT_EQ(Run.Output, ReferenceRun.Output)
          << paperConfigName(Config) << " at Threads=" << Threads;
      EXPECT_EQ(Run.Cycles, ReferenceRun.Cycles)
          << paperConfigName(Config) << " at Threads=" << Threads;
      EXPECT_EQ(Run.ExitValue, ReferenceRun.ExitValue)
          << paperConfigName(Config) << " at Threads=" << Threads;
    }
  }
}

TEST(PipelineParallelTest, MixedCallGraphShapes) {
  expectAllThreadCountsAgree(MixedShapes);
}

TEST(PipelineParallelTest, WideIndependentSubtrees) {
  expectAllThreadCountsAgree(wideProgram());
}

TEST(PipelineParallelTest, BenchmarkSuiteProgramsAgree) {
  // The paper's multi-procedure suite, under the two extreme
  // configurations, at every thread count.
  for (const BenchmarkProgram &B : benchmarkSuite()) {
    for (PaperConfig Config : {PaperConfig::Base, PaperConfig::C}) {
      auto Reference = compileAt(B.Source, Config, 0);
      ASSERT_NE(Reference, nullptr) << B.Name;
      std::string Expected = renderProgram(*Reference);
      for (unsigned Threads : {1u, 4u}) {
        auto Result = compileAt(B.Source, Config, Threads);
        ASSERT_NE(Result, nullptr) << B.Name;
        EXPECT_EQ(renderProgram(*Result), Expected)
            << B.Name << " under " << paperConfigName(Config)
            << " at Threads=" << Threads;
      }
    }
  }
}

TEST(PipelineParallelTest, SeparateCompilationAgrees) {
  // Cross-module linking with a library boundary (exports stay open).
  std::vector<std::string> Units = {
      R"(
        export func lib_add(a, b) { return helper(a) + helper(b); }
        func helper(x) { return x * 3 + 1; }
      )",
      R"(
        extern func lib_add(a, b);
        func local(x) { return lib_add(x, x + 1); }
        func main() { print(local(4)); return 0; }
      )"};
  for (PaperConfig Config : AllConfigs) {
    for (bool Internalize : {true, false}) {
      CompileOptions Serial = optionsFor(Config);
      Serial.Threads = 0;
      DiagnosticEngine SerialDiags;
      auto Reference =
          compileUnits(Units, Serial, SerialDiags, Internalize);
      ASSERT_NE(Reference, nullptr) << SerialDiags.str();
      std::string Expected = renderProgram(*Reference);
      for (unsigned Threads : {1u, 4u}) {
        CompileOptions Opts = optionsFor(Config);
        Opts.Threads = Threads;
        DiagnosticEngine Diags;
        auto Result = compileUnits(Units, Opts, Diags, Internalize);
        ASSERT_NE(Result, nullptr) << Diags.str();
        EXPECT_EQ(renderProgram(*Result), Expected)
            << paperConfigName(Config) << " internalize=" << Internalize
            << " at Threads=" << Threads;
        EXPECT_EQ(Diags.str(), SerialDiags.str());
      }
    }
  }
}

TEST(PipelineParallelTest, CompileStatsIdenticalAcrossThreadCounts) {
  // The statistics layer inherits the back end's determinism contract:
  // CompileStats -- struct and JSON rendering alike -- is byte-identical
  // at any thread count, for every paper configuration.
  for (const std::string &Src : {std::string(MixedShapes), wideProgram()}) {
    for (PaperConfig Config : AllConfigs) {
      auto Reference = compileAt(Src, Config, 0);
      ASSERT_NE(Reference, nullptr);
      EXPECT_FALSE(Reference->Stats.totals().empty());
      std::string ExpectedJson = Reference->Stats.json();
      for (unsigned Threads : {1u, 4u}) {
        auto Result = compileAt(Src, Config, Threads);
        ASSERT_NE(Result, nullptr);
        EXPECT_EQ(Result->Stats, Reference->Stats)
            << paperConfigName(Config) << " at Threads=" << Threads;
        EXPECT_EQ(Result->Stats.json(), ExpectedJson)
            << paperConfigName(Config) << " at Threads=" << Threads;
      }
    }
  }
}

TEST(PipelineParallelTest, SuiteCompileStatsIdenticalAcrossThreadCounts) {
  // Same check over the paper's benchmark suite (the programs with real
  // scheduling width), under the two extreme configurations.
  for (const BenchmarkProgram &B : benchmarkSuite()) {
    for (PaperConfig Config : {PaperConfig::Base, PaperConfig::C}) {
      auto Reference = compileAt(B.Source, Config, 0);
      ASSERT_NE(Reference, nullptr) << B.Name;
      std::string ExpectedJson = Reference->Stats.json();
      for (unsigned Threads : {1u, 4u}) {
        auto Result = compileAt(B.Source, Config, Threads);
        ASSERT_NE(Result, nullptr) << B.Name;
        EXPECT_EQ(Result->Stats.json(), ExpectedJson)
            << B.Name << " under " << paperConfigName(Config)
            << " at Threads=" << Threads;
      }
    }
  }
}

TEST(PipelineParallelTest, ProfileGuidedRecompileAgrees) {
  // compileWithProfile runs the full pipeline twice (train + rebuild);
  // both runs must be schedule-independent too.
  CompileOptions Serial = optionsFor(PaperConfig::C);
  Serial.Threads = 0;
  DiagnosticEngine SerialDiags;
  auto Reference = compileWithProfile(MixedShapes, Serial, SerialDiags);
  ASSERT_NE(Reference, nullptr) << SerialDiags.str();
  std::string Expected = renderProgram(*Reference);
  for (unsigned Threads : {1u, 4u}) {
    CompileOptions Opts = optionsFor(PaperConfig::C);
    Opts.Threads = Threads;
    DiagnosticEngine Diags;
    auto Result = compileWithProfile(MixedShapes, Opts, Diags);
    ASSERT_NE(Result, nullptr) << Diags.str();
    EXPECT_EQ(renderProgram(*Result), Expected) << "Threads=" << Threads;
  }
}

TEST(PipelineParallelTest, FrontEndErrorsIdenticalAcrossThreadCounts) {
  // Error paths never reach the scheduler, but the user-visible contract
  // ("same diagnostics at any Threads") should hold there too.
  const char *Bad = "func main() { return undefined_var; }";
  std::string Expected;
  for (unsigned Threads : ThreadCounts) {
    CompileOptions Opts = optionsFor(PaperConfig::C);
    Opts.Threads = Threads;
    DiagnosticEngine Diags;
    auto Result = compileProgram(Bad, Opts, Diags);
    EXPECT_EQ(Result, nullptr);
    EXPECT_TRUE(Diags.hasErrors());
    if (Threads == 0)
      Expected = Diags.str();
    else
      EXPECT_EQ(Diags.str(), Expected) << "Threads=" << Threads;
  }
}

} // namespace
