//===- tests/AnalysisTest.cpp - Liveness/loops/ranges/callgraph tests -----===//

#include "analysis/CallGraph.h"
#include "analysis/LiveRanges.h"
#include "analysis/Liveness.h"
#include "analysis/Loops.h"
#include "frontend/Frontend.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace ipra;

namespace {

std::unique_ptr<Module> compileOK(const std::string &Src) {
  DiagnosticEngine Diags;
  auto M = compileToIR(Src, Diags);
  EXPECT_NE(M, nullptr) << Diags.str();
  return M;
}

/// Prepares a procedure for analysis: CFG, loops, frequencies.
void prepare(Procedure &P) {
  P.recomputeCFG();
  estimateFrequencies(P, LoopInfo::compute(P));
}

TEST(LivenessTest, StraightLine) {
  Module M;
  Procedure *P = M.makeProcedure("f");
  P->ParamVRegs.push_back(P->makeVReg());
  IRBuilder B(P);
  B.setInsertBlock(P->makeBlock());
  VReg A = P->ParamVRegs[0];
  VReg T = B.addImm(A, 1); // %2 = a + 1
  B.ret(T);
  P->recomputeCFG();
  Liveness LV = Liveness::compute(*P);
  EXPECT_TRUE(LV.liveIn(0).test(A));
  EXPECT_FALSE(LV.liveIn(0).test(T)) << "T is defined before use";
  EXPECT_TRUE(LV.liveOut(0).none());
}

TEST(LivenessTest, LiveAcrossBranchJoin) {
  // a defined in bb0, used in bb3; must be live through both arms.
  Module M;
  Procedure *P = M.makeProcedure("f");
  IRBuilder B(P);
  BasicBlock *B0 = P->makeBlock();
  BasicBlock *B1 = P->makeBlock();
  BasicBlock *B2 = P->makeBlock();
  BasicBlock *B3 = P->makeBlock();
  B.setInsertBlock(B0);
  VReg A = B.loadImm(7);
  VReg C = B.loadImm(1);
  B.condBr(C, B1, B2);
  B.setInsertBlock(B1);
  B.br(B3);
  B.setInsertBlock(B2);
  B.br(B3);
  B.setInsertBlock(B3);
  B.ret(A);
  P->recomputeCFG();
  Liveness LV = Liveness::compute(*P);
  EXPECT_TRUE(LV.liveIn(1).test(A));
  EXPECT_TRUE(LV.liveIn(2).test(A));
  EXPECT_TRUE(LV.liveIn(3).test(A));
  EXPECT_TRUE(LV.liveOut(0).test(A));
  EXPECT_FALSE(LV.liveOut(3).test(A));
}

TEST(LivenessTest, LoopCarriedValue) {
  auto M = compileOK("func f(n) { var s = 0; while (n > 0) { s = s + n; "
                     "n = n - 1; } return s; }");
  Procedure *P = M->findProcedure("f");
  prepare(*P);
  Liveness LV = Liveness::compute(*P);
  // The loop condition block must have both s and n live (s flows around
  // the loop to the final return, n feeds the condition).
  VReg N = P->ParamVRegs[0];
  bool FoundLoopBlock = false;
  for (const auto &BB : *P) {
    if (BB->LoopDepth > 0 && LV.liveIn(BB->id()).test(N))
      FoundLoopBlock = true;
  }
  EXPECT_TRUE(FoundLoopBlock);
}

TEST(LoopsTest, WhileLoopDetected) {
  auto M = compileOK(
      "func f(n) { var s = 0; while (n > 0) { n = n - 1; } return s; }");
  Procedure *P = M->findProcedure("f");
  P->recomputeCFG();
  LoopInfo LI = LoopInfo::compute(*P);
  ASSERT_EQ(LI.loops().size(), 1u);
  int InLoop = 0;
  for (const auto &BB : *P)
    if (LI.inAnyLoop(BB->id()))
      ++InLoop;
  EXPECT_GE(InLoop, 2) << "condition and body blocks are in the loop";
}

TEST(LoopsTest, NestedLoopsDepth) {
  auto M = compileOK(R"(
    func f(n) {
      var s = 0;
      for (var i = 0; i < n; i = i + 1) {
        for (var j = 0; j < n; j = j + 1) {
          s = s + 1;
        }
      }
      return s;
    }
  )");
  Procedure *P = M->findProcedure("f");
  prepare(*P);
  int MaxDepth = 0;
  double MaxFreq = 0;
  for (const auto &BB : *P) {
    MaxDepth = std::max(MaxDepth, BB->LoopDepth);
    MaxFreq = std::max(MaxFreq, BB->Freq);
  }
  EXPECT_EQ(MaxDepth, 2);
  EXPECT_DOUBLE_EQ(MaxFreq, 100.0);
  EXPECT_DOUBLE_EQ(P->entry()->Freq, 1.0);
}

TEST(LoopsTest, NoLoopsInDag) {
  auto M = compileOK("func f(a) { if (a) { return 1; } return 2; }");
  Procedure *P = M->findProcedure("f");
  P->recomputeCFG();
  LoopInfo LI = LoopInfo::compute(*P);
  EXPECT_TRUE(LI.loops().empty());
}

TEST(LiveRangesTest, SavingsScaleWithLoopDepth) {
  auto M = compileOK(R"(
    func f(n) {
      var hot = 0;
      var cold = 5;
      for (var i = 0; i < n; i = i + 1) { hot = hot + i; }
      return hot + cold;
    }
  )");
  Procedure *P = M->findProcedure("f");
  prepare(*P);
  Liveness LV = Liveness::compute(*P);
  LiveRangeInfo LRI = LiveRangeInfo::compute(*P, LV);
  // Find the vregs for hot and cold: hot is used inside the loop so its
  // savings must dominate cold's.
  double MaxSavings = 0;
  for (VReg R = 1; R < P->NumVRegs; ++R)
    MaxSavings = std::max(MaxSavings, LRI.range(R).SpillSavings);
  EXPECT_GT(MaxSavings, 20.0) << "loop-resident range should be hot";
}

TEST(LiveRangesTest, CallCrossingsRecorded) {
  auto M = compileOK(R"(
    func leaf(x) { return x + 1; }
    func f(a) {
      var v = a * 2;
      var r = leaf(a);
      return v + r;
    }
  )");
  Procedure *P = M->findProcedure("f");
  Procedure *Leaf = M->findProcedure("leaf");
  prepare(*P);
  Liveness LV = Liveness::compute(*P);
  LiveRangeInfo LRI = LiveRangeInfo::compute(*P, LV);
  // v lives across the call to leaf; a does not (last use is the call arg).
  unsigned NumCrossing = 0;
  for (VReg R = 1; R < P->NumVRegs; ++R) {
    for (const CallCrossing &C : LRI.range(R).Crossings) {
      EXPECT_EQ(C.CalleeId, Leaf->id());
      ++NumCrossing;
    }
  }
  EXPECT_GE(NumCrossing, 1u);
  // The call argument register must not cross its own call.
  VReg A = P->ParamVRegs[0];
  bool UsedAfterCall = false;
  (void)UsedAfterCall;
  EXPECT_TRUE(LRI.range(A).Crossings.empty())
      << "a's last use is the call argument";
}

TEST(LiveRangesTest, CallResultDoesNotCrossItsOwnCall) {
  auto M = compileOK(R"(
    func leaf(x) { return x; }
    func f(a) { return leaf(a); }
  )");
  Procedure *P = M->findProcedure("f");
  prepare(*P);
  Liveness LV = Liveness::compute(*P);
  LiveRangeInfo LRI = LiveRangeInfo::compute(*P, LV);
  for (VReg R = 1; R < P->NumVRegs; ++R)
    EXPECT_TRUE(LRI.range(R).Crossings.empty())
        << "no value lives across the tail call, including its result %"
        << R;
}

TEST(InterferenceTest, OverlappingRangesInterfere) {
  auto M = compileOK("func f(a, b) { var x = a + b; var y = a - b; "
                     "return x * y; }");
  Procedure *P = M->findProcedure("f");
  prepare(*P);
  Liveness LV = Liveness::compute(*P);
  InterferenceGraph IG = InterferenceGraph::compute(*P, LV);
  VReg A = P->ParamVRegs[0];
  VReg B = P->ParamVRegs[1];
  EXPECT_TRUE(IG.interfere(A, B));
}

TEST(InterferenceTest, DisjointRangesDoNotInterfere) {
  Module M;
  Procedure *P = M.makeProcedure("f");
  IRBuilder B(P);
  B.setInsertBlock(P->makeBlock());
  VReg X = B.loadImm(1);
  VReg Y = B.addImm(X, 1); // x dies here
  VReg Z = B.addImm(Y, 1); // y dies here
  B.ret(Z);
  P->recomputeCFG();
  estimateFrequencies(*P, LoopInfo::compute(*P));
  Liveness LV = Liveness::compute(*P);
  InterferenceGraph IG = InterferenceGraph::compute(*P, LV);
  EXPECT_FALSE(IG.interfere(X, Z));
  EXPECT_TRUE(IG.interfere(X, X) == false);
}

TEST(InterferenceTest, CopyDoesNotForceEdge) {
  Module M;
  Procedure *P = M.makeProcedure("f");
  IRBuilder B(P);
  B.setInsertBlock(P->makeBlock());
  VReg X = B.loadImm(1);
  VReg Y = B.copy(X); // y = x; both "live" at the copy, may share
  B.ret(Y);
  P->recomputeCFG();
  estimateFrequencies(*P, LoopInfo::compute(*P));
  Liveness LV = Liveness::compute(*P);
  InterferenceGraph IG = InterferenceGraph::compute(*P, LV);
  EXPECT_FALSE(IG.interfere(X, Y));
}

TEST(InterferenceTest, ParametersMutuallyInterfere) {
  auto M = compileOK("func f(a, b, c) { return 0; }");
  Procedure *P = M->findProcedure("f");
  prepare(*P);
  Liveness LV = Liveness::compute(*P);
  InterferenceGraph IG = InterferenceGraph::compute(*P, LV);
  EXPECT_TRUE(IG.interfere(P->ParamVRegs[0], P->ParamVRegs[1]));
  EXPECT_TRUE(IG.interfere(P->ParamVRegs[1], P->ParamVRegs[2]));
}

TEST(CallGraphTest, EdgesAndBottomUpOrder) {
  auto M = compileOK(R"(
    func leaf(x) { return x; }
    func mid(x) { return leaf(x) + 1; }
    func main() { return mid(3); }
  )");
  CallGraph CG = CallGraph::build(*M);
  int Leaf = M->findProcedure("leaf")->id();
  int Mid = M->findProcedure("mid")->id();
  int Main = M->findProcedure("main")->id();
  const auto &Order = CG.bottomUpOrder();
  auto Pos = [&Order](int P) {
    return std::find(Order.begin(), Order.end(), P) - Order.begin();
  };
  EXPECT_LT(Pos(Leaf), Pos(Mid));
  EXPECT_LT(Pos(Mid), Pos(Main));
  EXPECT_EQ(Order.size(), 3u);
  EXPECT_EQ(CG.node(Main).Callees, (std::vector<int>{Mid}));
}

TEST(CallGraphTest, OpenClassification) {
  auto M = compileOK(R"(
    func closed(x) { return x; }
    export func api(x) { return closed(x); }
    func fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
    func taken(x) { return x; }
    extern func lib(x);
    func main() {
      var p = &taken;
      return api(1) + fact(3) + p(2) + lib(9);
    }
  )");
  CallGraph CG = CallGraph::build(*M);
  EXPECT_FALSE(CG.isOpen(M->findProcedure("closed")->id()));
  EXPECT_TRUE(CG.isOpen(M->findProcedure("api")->id())) << "exported";
  EXPECT_TRUE(CG.isOpen(M->findProcedure("fact")->id())) << "self-recursive";
  EXPECT_TRUE(CG.isOpen(M->findProcedure("taken")->id())) << "address taken";
  EXPECT_TRUE(CG.isOpen(M->findProcedure("lib")->id())) << "external";
  EXPECT_TRUE(CG.isOpen(M->findProcedure("main")->id())) << "main";
  EXPECT_TRUE(CG.node(M->findProcedure("main")->id()).HasIndirectCalls);
}

TEST(CallGraphTest, MutualRecursionIsOpen) {
  auto M = compileOK(R"(
    func even(n) { if (n == 0) { return 1; } return odd(n - 1); }
    func odd(n) { if (n == 0) { return 0; } return even(n - 1); }
    func main() { return even(10); }
  )");
  CallGraph CG = CallGraph::build(*M);
  EXPECT_TRUE(CG.isOpen(M->findProcedure("even")->id()));
  EXPECT_TRUE(CG.isOpen(M->findProcedure("odd")->id()));
  EXPECT_TRUE(CG.node(M->findProcedure("even")->id()).InCycle);
}

TEST(CallGraphTest, DiamondCallGraphStillClosed) {
  // p -> q, p -> r, q -> s, r -> s: a DAG diamond; s processed once, all
  // of q, r, s closed.
  auto M = compileOK(R"(
    func s(x) { return x; }
    func q(x) { return s(x); }
    func r(x) { return s(x) * 2; }
    func main() { return q(1) + r(2); }
  )");
  CallGraph CG = CallGraph::build(*M);
  EXPECT_FALSE(CG.isOpen(M->findProcedure("s")->id()));
  EXPECT_FALSE(CG.isOpen(M->findProcedure("q")->id()));
  EXPECT_FALSE(CG.isOpen(M->findProcedure("r")->id()));
}

TEST(CallGraphTest, ScheduleCollapsesSCCsAndCountsClosedDeps) {
  // leaf feeds a diamond (q, r -> top), a mutual-recursion pair, and a
  // self-recursive fact; main sits on top of everything.
  auto M = compileOK(R"(
    func leaf(x) { return x + 1; }
    func even(n) { if (n == 0) { return 1; } return odd(n - 1) + leaf(n); }
    func odd(n) { if (n == 0) { return 0; } return even(n - 1); }
    func fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
    func q(x) { return leaf(x); }
    func r(x) { return leaf(x) * 2; }
    func top(x) { return q(x) + r(x) + even(x); }
    func main() { return top(3) + fact(4); }
  )");
  CallGraph CG = CallGraph::build(*M);
  CallGraph::Schedule S = CG.schedule();
  unsigned N = M->numProcedures();
  auto Task = [&](const char *Name) {
    return S.TaskOfProc[M->findProcedure(Name)->id()];
  };

  // Every procedure is owned by exactly one task; the concatenated task
  // members are a permutation of all procedure ids.
  std::vector<int> Seen(N, 0);
  for (const auto &Procs : S.TaskProcs)
    for (int P : Procs) {
      EXPECT_EQ(S.TaskOfProc[P], &Procs - &S.TaskProcs[0]);
      ++Seen[P];
    }
  for (unsigned P = 0; P < N; ++P)
    EXPECT_EQ(Seen[P], 1) << "proc " << P;

  // The mutual-recursion pair collapses to one task; the self-recursive
  // and non-recursive procedures stay singletons.
  EXPECT_EQ(Task("even"), Task("odd"));
  EXPECT_EQ(S.TaskProcs[Task("even")].size(), 2u);
  EXPECT_EQ(S.TaskProcs[Task("fact")].size(), 1u);
  EXPECT_EQ(S.numTasks(), N - 1);

  // Ready counts equal the number of distinct tasks holding closed
  // callees: leaf has none; the cycle and the diamond arms wait on leaf;
  // top waits on q and r (even is open: no dependence); main waits on
  // top only (fact is open).
  EXPECT_EQ(S.ReadyCounts[Task("leaf")], 0u);
  EXPECT_EQ(S.ReadyCounts[Task("even")], 1u);
  EXPECT_EQ(S.ReadyCounts[Task("fact")], 0u);
  EXPECT_EQ(S.ReadyCounts[Task("q")], 1u);
  EXPECT_EQ(S.ReadyCounts[Task("r")], 1u);
  EXPECT_EQ(S.ReadyCounts[Task("top")], 2u);
  EXPECT_EQ(S.ReadyCounts[Task("main")], 1u);

  // The schedule must agree with bottomUpOrder() reachability: recompute
  // each task's distinct closed-callee tasks straight from the graph and
  // check both the counts and that every dependence points to an earlier
  // task (so the serial task order embeds the bottom-up order).
  std::vector<std::set<int>> Expected(S.numTasks());
  for (unsigned P = 0; P < N; ++P)
    for (int Callee : CG.node(int(P)).Callees) {
      if (CG.isOpen(Callee) || S.TaskOfProc[Callee] == S.TaskOfProc[P])
        continue;
      EXPECT_LT(S.TaskOfProc[Callee], S.TaskOfProc[P]);
      Expected[S.TaskOfProc[P]].insert(S.TaskOfProc[Callee]);
    }
  for (unsigned T = 0; T < S.numTasks(); ++T)
    EXPECT_EQ(S.ReadyCounts[T], Expected[T].size()) << "task " << T;

  // Successor lists are the exact inverse of those dependencies.
  for (unsigned T = 0; T < S.numTasks(); ++T)
    for (int Succ : S.Successors[T])
      EXPECT_TRUE(Expected[Succ].count(int(T)))
          << "spurious edge " << T << " -> " << Succ;

  // Dependency-counting replay in task order drains every count to zero
  // exactly when bottomUpOrder() would have processed the task's members.
  std::vector<unsigned> Pending = S.ReadyCounts;
  for (unsigned T = 0; T < S.numTasks(); ++T) {
    EXPECT_EQ(Pending[T], 0u) << "task " << T << " not ready in order";
    for (int Succ : S.Successors[T])
      --Pending[Succ];
  }
}

} // namespace
