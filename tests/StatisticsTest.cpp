//===- tests/StatisticsTest.cpp - Counter registry and tracing unit tests -===//
//
// The statistics layer's own contract: counter registration and merge
// semantics (commutative, associative, name-ordered), JSON escaping of
// arbitrary procedure names, scoped-timer nesting in the trace recorder,
// and -- the part TSan cares about -- concurrent increments through
// SharedStatCounters and TraceRecorder from ThreadPool workers.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace ipra;

namespace {

TEST(StatCountersTest, RegistrationAndLookup) {
  StatCounters C;
  EXPECT_TRUE(C.empty());
  EXPECT_EQ(C.get("regalloc.spills"), 0u);
  EXPECT_FALSE(C.contains("regalloc.spills"));

  C.add("regalloc.spills");
  EXPECT_TRUE(C.contains("regalloc.spills"));
  EXPECT_EQ(C.get("regalloc.spills"), 1u);

  C.add("regalloc.spills", 4);
  EXPECT_EQ(C.get("regalloc.spills"), 5u);

  C.set("regalloc.spills", 2);
  EXPECT_EQ(C.get("regalloc.spills"), 2u);

  // Registering at zero is still registering: the name shows up in
  // entries() and JSON even though get() on absent names also returns 0.
  C.add("codegen.nops", 0);
  EXPECT_TRUE(C.contains("codegen.nops"));
  EXPECT_EQ(C.get("codegen.nops"), 0u);
  EXPECT_EQ(C.size(), 2u);

  C.clear();
  EXPECT_TRUE(C.empty());
  EXPECT_FALSE(C.contains("regalloc.spills"));
}

TEST(StatCountersTest, MergeIsCommutativeAndAssociative) {
  StatCounters A, B, C;
  A.add("x", 1);
  A.add("y", 10);
  B.add("y", 5);
  B.add("z", 7);
  C.add("x", 2);

  StatCounters AB = A;
  AB.merge(B);
  StatCounters BA = B;
  BA.merge(A);
  EXPECT_EQ(AB, BA);
  EXPECT_EQ(AB.get("x"), 1u);
  EXPECT_EQ(AB.get("y"), 15u);
  EXPECT_EQ(AB.get("z"), 7u);

  StatCounters ABthenC = AB;
  ABthenC.merge(C);
  StatCounters BC = B;
  BC.merge(C);
  StatCounters AthenBC = A;
  AthenBC.merge(BC);
  EXPECT_EQ(ABthenC, AthenBC);

  // Merging an empty set is the identity.
  StatCounters Copy = A;
  Copy.merge(StatCounters());
  EXPECT_EQ(Copy, A);
}

TEST(StatCountersTest, JsonIsNameOrderedAndStable) {
  StatCounters C;
  C.add("b.second", 2);
  C.add("a.first", 1);
  C.add("c.third", 3);
  EXPECT_EQ(C.json(), "{\"a.first\": 1, \"b.second\": 2, \"c.third\": 3}");

  // Same counters built in a different order render identically.
  StatCounters D;
  D.add("c.third", 3);
  D.add("a.first", 1);
  D.add("b.second", 2);
  EXPECT_EQ(C.json(), D.json());

  EXPECT_EQ(StatCounters().json(), "{}");
}

TEST(StatisticsTest, JsonEscaping) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(jsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(jsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(jsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(jsonEscape(std::string("nul\0byte", 8)), "nul\\u0000byte");
  EXPECT_EQ(jsonEscape("\x01\x1f"), "\\u0001\\u001f");
  // Non-ASCII bytes pass through untouched (UTF-8 stays UTF-8).
  EXPECT_EQ(jsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(StatisticsTest, CompileStatsTotalsAndEquality) {
  CompileStats S;
  S.Procs.resize(2);
  S.Procs[0].Name = "main";
  S.Procs[0].Counters.add("codegen.insts_total", 10);
  S.Procs[1].Name = "helper";
  S.Procs[1].Counters.add("codegen.insts_total", 7);
  S.Procs[1].Counters.add("regalloc.ranges_spilled", 1);
  S.Module.add("pipeline.procs", 2);

  StatCounters T = S.totals();
  EXPECT_EQ(T.get("codegen.insts_total"), 17u);
  EXPECT_EQ(T.get("regalloc.ranges_spilled"), 1u);
  EXPECT_EQ(T.get("pipeline.procs"), 2u);

  CompileStats S2 = S;
  EXPECT_EQ(S, S2);
  EXPECT_EQ(S.json(), S2.json());
  S2.Procs[1].Counters.add("regalloc.ranges_spilled", 1);
  EXPECT_NE(S, S2);
  EXPECT_NE(S.json(), S2.json());

  // Procedure names are escaped in the report.
  CompileStats Weird;
  Weird.Procs.resize(1);
  Weird.Procs[0].Name = "odd\"name\\";
  EXPECT_NE(Weird.json().find("odd\\\"name\\\\"), std::string::npos);
}

TEST(StatisticsTest, ScopedTimerNesting) {
  TraceRecorder Rec;
  {
    ScopedTimer Outer(&Rec, "outer", "phase");
    {
      ScopedTimer Inner(&Rec, "inner", "phase");
    }
    {
      ScopedTimer Second(&Rec, "second", "phase");
    }
  }
  std::vector<TraceSpan> Spans = Rec.spans();
  ASSERT_EQ(Spans.size(), 3u);
  // Sorted by start time: outer opened first, then inner, then second.
  EXPECT_EQ(Spans[0].Name, "outer");
  EXPECT_EQ(Spans[1].Name, "inner");
  EXPECT_EQ(Spans[2].Name, "second");
  // Each nested span lies inside its parent.
  for (const TraceSpan &S : Spans) {
    EXPECT_GE(S.StartUs, Spans[0].StartUs);
    EXPECT_LE(S.StartUs + S.DurationUs,
              Spans[0].StartUs + Spans[0].DurationUs);
    EXPECT_GE(S.DurationUs, 0);
  }

  std::string Json = Rec.chromeTraceJson();
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\": \"outer\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\": \"X\""), std::string::npos);
}

TEST(StatisticsTest, NullRecorderTimerIsANoOp) {
  // Instrumentation sites pass a possibly-null recorder with no guard.
  ScopedTimer T(nullptr, "ignored", "ignored");
}

TEST(StatisticsTest, ConcurrentSharedCounterIncrements) {
  // The TSan-facing test: many workers hammering one shared registry must
  // lose no increments and trigger no races.
  SharedStatCounters Shared;
  TraceRecorder Rec;
  constexpr unsigned Tasks = 64;
  constexpr unsigned PerTask = 250;
  ThreadPool Pool(4);
  for (unsigned T = 0; T < Tasks; ++T) {
    Pool.enqueue([&Shared, &Rec] {
      ScopedTimer Timer(&Rec, "task", "test");
      for (unsigned I = 0; I < PerTask; ++I) {
        Shared.add("shared.hits");
        if (I % 2 == 0)
          Shared.add("shared.even", 2);
      }
    });
  }
  Pool.wait();
  StatCounters Snap = Shared.snapshot();
  EXPECT_EQ(Snap.get("shared.hits"), uint64_t(Tasks) * PerTask);
  EXPECT_EQ(Snap.get("shared.even"), uint64_t(Tasks) * PerTask);
  EXPECT_EQ(Rec.spans().size(), size_t(Tasks));
}

TEST(StatisticsTest, TraceRecorderThreadIndicesAreDense) {
  TraceRecorder Rec;
  ThreadPool Pool(3);
  std::vector<unsigned> Indices(8);
  for (unsigned T = 0; T < 8; ++T)
    Pool.enqueue([&Rec, &Indices, T] { Indices[T] = Rec.threadIndex(); });
  Pool.wait();
  for (unsigned Idx : Indices)
    EXPECT_LT(Idx, 3u); // at most one dense index per worker thread
}

} // namespace
