//===- tests/EndToEndTest.cpp - Whole-pipeline correctness ----------------===//
//
// Compiles programs with known outputs under every paper configuration and
// checks the simulator produces identical observable behaviour. This is
// the strongest safety net for the allocator/shrink-wrap/codegen stack: a
// misplaced save or a clobbered register changes program output.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include <gtest/gtest.h>

using namespace ipra;

namespace {

struct E2ECase {
  const char *Name;
  const char *Src;
  std::vector<int64_t> Expected;
};

const E2ECase Corpus[] = {
    {"arith", R"(
      func main() {
        print(2 + 3 * 4);
        print((2 + 3) * 4);
        print(10 / 3);
        print(10 % 3);
        print(-7);
        return 0;
      }
    )",
     {14, 20, 3, 1, -7}},

    {"comparisons", R"(
      func main() {
        print(1 < 2);
        print(2 < 1);
        print(3 <= 3);
        print(3 != 3);
        print(!(4 > 5));
        print(1 && 0);
        print(1 || 0);
        return 0;
      }
    )",
     {1, 0, 1, 0, 1, 0, 1}},

    {"locals_and_loops", R"(
      func main() {
        var s = 0;
        for (var i = 1; i <= 10; i = i + 1) { s = s + i; }
        print(s);
        var p = 1;
        var n = 10;
        while (n > 0) { p = p * 2; n = n - 1; }
        print(p);
        return 0;
      }
    )",
     {55, 1024}},

    {"calls", R"(
      func add(a, b) { return a + b; }
      func twice(x) { return add(x, x); }
      func main() {
        print(add(3, 4));
        print(twice(21));
        print(add(twice(5), add(1, 2)));
        return 0;
      }
    )",
     {7, 42, 13}},

    {"live_across_calls", R"(
      func id(x) { return x; }
      func main() {
        var a = 11; var b = 22; var c = 33; var d = 44;
        var r = id(1) + id(2) + id(3);
        print(a); print(b); print(c); print(d); print(r);
        return 0;
      }
    )",
     {11, 22, 33, 44, 6}},

    {"recursion", R"(
      func fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
      func fact(n) { if (n <= 1) { return 1; } return n * fact(n-1); }
      func main() {
        print(fib(15));
        print(fact(10));
        return 0;
      }
    )",
     {610, 3628800}},

    {"mutual_recursion", R"(
      func isEven(n) { if (n == 0) { return 1; } return isOdd(n - 1); }
      func isOdd(n) { if (n == 0) { return 0; } return isEven(n - 1); }
      func main() { print(isEven(10)); print(isEven(7)); return 0; }
    )",
     {1, 0}},

    {"globals", R"(
      var counter = 100;
      var table[8];
      func bump(by) { counter = counter + by; return counter; }
      func main() {
        print(bump(1));
        print(bump(10));
        for (var i = 0; i < 8; i = i + 1) { table[i] = i * i; }
        print(table[7]);
        print(counter);
        return 0;
      }
    )",
     {101, 111, 49, 111}},

    {"local_arrays", R"(
      func sum(arr, n) {
        var s = 0;
        for (var i = 0; i < n; i = i + 1) { s = s + arr[i]; }
        return s;
      }
      func main() {
        var buf[10];
        for (var i = 0; i < 10; i = i + 1) { buf[i] = i + 1; }
        print(sum(buf, 10));
        return 0;
      }
    )",
     {55}},

    {"indirect_calls", R"(
      func inc(x) { return x + 1; }
      func dec(x) { return x - 1; }
      func apply(f, x) { return f(x); }
      func main() {
        var up = &inc;
        var down = &dec;
        print(apply(up, 10));
        print(apply(down, 10));
        print(up(0) + down(0));
        return 0;
      }
    )",
     {11, 9, 0}},

    {"many_params", R"(
      func sum6(a, b, c, d, e, f) { return a + b + c + d + e + f; }
      func weighted(a, b, c, d, e, f) {
        return a + 2*b + 3*c + 4*d + 5*e + 6*f;
      }
      func main() {
        print(sum6(1, 2, 3, 4, 5, 6));
        print(weighted(1, 1, 1, 1, 1, 1));
        return 0;
      }
    )",
     {21, 21}},

    {"register_pressure", R"(
      func churn(s) {
        var a = s + 1; var b = s + 2; var c = s + 3; var d = s + 4;
        var e = s + 5; var f = s + 6; var g = s + 7; var h = s + 8;
        var i = s + 9; var j = s + 10; var k = s + 11; var l = s + 12;
        var m = s + 13; var n = s + 14; var o = s + 15; var p = s + 16;
        var q = s + 17; var r = s + 18; var t = s + 19; var u = s + 20;
        var v = s + 21; var w = s + 22;
        return a+b+c+d+e+f+g+h+i+j+k+l+m+n+o+p+q+r+t+u+v+w;
      }
      func main() { print(churn(0)); return 0; }
    )",
     {253}},

    {"pressure_across_calls", R"(
      func leaf(x) { return x * 2; }
      func busy(s) {
        var a = s + 1; var b = s + 2; var c = s + 3; var d = s + 4;
        var e = s + 5; var f = s + 6; var g = s + 7; var h = s + 8;
        var i = s + 9; var j = s + 10; var k = s + 11; var l = s + 12;
        var r1 = leaf(a); var r2 = leaf(f); var r3 = leaf(l);
        return a+b+c+d+e+f+g+h+i+j+k+l+r1+r2+r3;
      }
      func main() { print(busy(100)); return 0; }
    )",
     {1278 + 202 + 212 + 224}},

    {"exported_and_extern_shape", R"(
      export func api(x) { return x * 3; }
      func main() { print(api(14)); return 0; }
    )",
     {42}},

    {"shrinkwrap_cold_path", R"(
      func work(n) {
        // Hot early-exit path touches few registers; the cold path does
        // heavy register work that wants callee-saved registers.
        if (n < 10) { return n; }
        var a = n * 2; var b = n * 3; var c = n * 4; var d = n * 5;
        work2(); work2();
        return a + b + c + d;
      }
      func work2() { return 1; }
      func main() {
        var s = 0;
        for (var i = 0; i < 20; i = i + 1) { s = s + work(i); }
        print(s);
        return 0;
      }
    )",
     {45 + 14 * (10 + 11 + 12 + 13 + 14 + 15 + 16 + 17 + 18 + 19)}},

    {"conditional_continue_break", R"(
      func main() {
        var s = 0;
        for (var i = 0; i < 100; i = i + 1) {
          if (i % 2 == 0) { continue; }
          if (i > 20) { break; }
          s = s + i;
        }
        print(s);
        return 0;
      }
    )",
     {1 + 3 + 5 + 7 + 9 + 11 + 13 + 15 + 17 + 19}},
};

class EndToEndTest
    : public ::testing::TestWithParam<std::tuple<E2ECase, PaperConfig>> {};

TEST_P(EndToEndTest, OutputMatchesExpectation) {
  auto [Case, Config] = GetParam();
  CompileOptions Opts = optionsFor(Config);
  RunStats Stats = compileAndRun(Case.Src, Opts);
  ASSERT_TRUE(Stats.OK) << paperConfigName(Config) << ": " << Stats.Error;
  EXPECT_EQ(Stats.Output, Case.Expected) << paperConfigName(Config);
}

const char *ConfigShortNames[] = {"Base", "A", "B", "C", "D", "E"};

INSTANTIATE_TEST_SUITE_P(
    Corpus, EndToEndTest,
    ::testing::Combine(::testing::ValuesIn(Corpus),
                       ::testing::Values(PaperConfig::Base, PaperConfig::A,
                                         PaperConfig::B, PaperConfig::C,
                                         PaperConfig::D, PaperConfig::E)),
    [](const ::testing::TestParamInfo<EndToEndTest::ParamType> &I) {
      return std::string(std::get<0>(I.param).Name) + "_" +
             ConfigShortNames[int(std::get<1>(I.param))];
    });

// Ablation axes must also preserve behaviour.
class EndToEndAblationTest
    : public ::testing::TestWithParam<std::tuple<E2ECase, int>> {};

TEST_P(EndToEndAblationTest, OutputMatchesExpectation) {
  auto [Case, Bits] = GetParam();
  CompileOptions Opts = optionsFor(PaperConfig::C);
  Opts.CombinedStrategy = Bits & 1;
  Opts.RegisterParams = Bits & 2;
  Opts.LoopExtension = Bits & 4;
  Opts.MidEndOpt = Bits & 8;
  RunStats Stats = compileAndRun(Case.Src, Opts);
  ASSERT_TRUE(Stats.OK) << Stats.Error;
  EXPECT_EQ(Stats.Output, Case.Expected);
}

INSTANTIATE_TEST_SUITE_P(
    Ablations, EndToEndAblationTest,
    ::testing::Combine(::testing::ValuesIn(Corpus),
                       ::testing::Values(0, 1, 2, 4, 5, 7, 8, 15)),
    [](const ::testing::TestParamInfo<EndToEndAblationTest::ParamType> &I) {
      return std::string(std::get<0>(I.param).Name) + "_bits" +
             std::to_string(std::get<1>(I.param));
    });

TEST(EndToEndBasics, ExitValuePropagates) {
  RunStats Stats =
      compileAndRun("func main() { return 42; }", optionsFor(PaperConfig::C));
  ASSERT_TRUE(Stats.OK) << Stats.Error;
  EXPECT_EQ(Stats.ExitValue, 42);
}

TEST(EndToEndBasics, DivisionByZeroReported) {
  RunStats Stats = compileAndRun(
      "var z; func main() { return 1 / z; }", optionsFor(PaperConfig::C));
  EXPECT_FALSE(Stats.OK);
  EXPECT_NE(Stats.Error.find("division by zero"), std::string::npos);
}

TEST(EndToEndBasics, InfiniteLoopHitsBudget) {
  CompileOptions Opts = optionsFor(PaperConfig::Base);
  SimOptions SOpts;
  SOpts.MaxSteps = 10000;
  RunStats Stats =
      compileAndRun("func main() { while (1) { } return 0; }", Opts, SOpts);
  EXPECT_FALSE(Stats.OK);
  EXPECT_NE(Stats.Error.find("budget"), std::string::npos);
}

TEST(EndToEndBasics, CompileErrorSurfaces) {
  RunStats Stats =
      compileAndRun("func main() { return missing; }",
                    optionsFor(PaperConfig::Base));
  EXPECT_FALSE(Stats.OK);
  EXPECT_NE(Stats.Error.find("undeclared"), std::string::npos);
}

TEST(EndToEndBasics, DeepRecursionHitsDepthLimit) {
  CompileOptions Opts = optionsFor(PaperConfig::C);
  SimOptions SOpts;
  SOpts.MaxCallDepth = 100;
  RunStats Stats = compileAndRun(
      "func down(n) { return down(n + 1); } func main() { return down(0); }",
      Opts, SOpts);
  EXPECT_FALSE(Stats.OK);
  EXPECT_NE(Stats.Error.find("depth"), std::string::npos);
}

// Efficiency direction checks: -O3 should not increase scalar memory
// traffic on call-heavy programs with few simultaneously-live variables.
TEST(EndToEndMetrics, InterProceduralReducesScalarTraffic) {
  const char *Src = R"(
    func leaf(x) { return x + 1; }
    func mid(x) {
      var v = x * 2;
      var r = leaf(x);
      return v + r;
    }
    func main() {
      var s = 0;
      for (var i = 0; i < 1000; i = i + 1) { s = s + mid(i); }
      print(s);
      return 0;
    }
  )";
  RunStats Base = compileAndRun(Src, optionsFor(PaperConfig::Base));
  RunStats C = compileAndRun(Src, optionsFor(PaperConfig::C));
  ASSERT_TRUE(Base.OK) << Base.Error;
  ASSERT_TRUE(C.OK) << C.Error;
  EXPECT_EQ(Base.Output, C.Output);
  EXPECT_LE(C.scalarMemOps(), Base.scalarMemOps());
  EXPECT_LE(C.Cycles, Base.Cycles);
}

TEST(EndToEndMetrics, ShrinkWrapHelpsColdSavePaths) {
  // The hot path returns early; the cold path needs callee-saved regs.
  const char *Src = R"(
    func work(n) {
      if (n != 500) { return n; }
      var a = n * 2; var b = n * 3; var c = n * 4; var d = n * 5;
      helper(); helper();
      return a + b + c + d;
    }
    func helper() { return 1; }
    func main() {
      var s = 0;
      for (var i = 0; i < 1000; i = i + 1) { s = s + work(i); }
      print(s);
      return 0;
    }
  )";
  RunStats NoSW = compileAndRun(Src, optionsFor(PaperConfig::Base));
  RunStats SW = compileAndRun(Src, optionsFor(PaperConfig::A));
  ASSERT_TRUE(NoSW.OK) << NoSW.Error;
  ASSERT_TRUE(SW.OK) << SW.Error;
  EXPECT_EQ(NoSW.Output, SW.Output);
  EXPECT_LT(SW.scalarMemOps(), NoSW.scalarMemOps())
      << "shrink-wrap must remove the always-executed entry saves";
}

} // namespace
