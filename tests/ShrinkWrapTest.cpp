//===- tests/ShrinkWrapTest.cpp - Save/restore placement tests ------------===//

#include "shrinkwrap/ShrinkWrap.h"

#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

#include <random>

using namespace ipra;

namespace {

constexpr unsigned NumRegs = 8;

/// Builds a procedure whose CFG is given by adjacency lists; blocks with no
/// successors get Ret, one successor Br, two CondBr.
Procedure *buildCFG(Module &M, const std::string &Name,
                    const std::vector<std::vector<int>> &Succs) {
  Procedure *P = M.makeProcedure(Name);
  for (unsigned I = 0; I < Succs.size(); ++I)
    P->makeBlock();
  IRBuilder B(P);
  for (unsigned I = 0; I < Succs.size(); ++I) {
    B.setInsertBlock(P->block(int(I)));
    switch (Succs[I].size()) {
    case 0:
      B.ret();
      break;
    case 1:
      B.br(P->block(Succs[I][0]));
      break;
    case 2: {
      VReg C = B.loadImm(1);
      B.condBr(C, P->block(Succs[I][0]), P->block(Succs[I][1]));
      break;
    }
    default:
      ADD_FAILURE() << "at most two successors supported";
    }
  }
  P->recomputeCFG();
  return P;
}

std::vector<BitVector> emptyAPP(const Procedure &P) {
  return std::vector<BitVector>(P.numBlocks(), BitVector(NumRegs));
}

ShrinkWrapResult place(const Procedure &P, const std::vector<BitVector> &APP,
                       const ShrinkWrapOptions &Opts = {}) {
  LoopInfo LI = LoopInfo::compute(P);
  ShrinkWrapResult R = placeSavesRestores(P, APP, NumRegs, LI, Opts);
  EXPECT_EQ(verifyPlacement(P, R.ExtendedAPP, NumRegs, R), "");
  return R;
}

TEST(ShrinkWrapTest, NoUsesNoSaves) {
  Module M;
  Procedure *P = buildCFG(M, "f", {{1}, {}});
  auto R = place(*P, emptyAPP(*P));
  for (const auto &BV : R.SaveAtEntry)
    EXPECT_TRUE(BV.none());
  EXPECT_TRUE(R.SavedAtProcEntry.none());
}

TEST(ShrinkWrapTest, UseOnOneArmOfDiamond) {
  // 0 -> 1,2 ; 1 -> 3 ; 2 -> 3 ; 3 ret. Register 5 used only in block 1.
  Module M;
  Procedure *P = buildCFG(M, "f", {{1, 2}, {3}, {3}, {}});
  auto APP = emptyAPP(*P);
  APP[1].set(5);
  auto R = place(*P, APP);
  EXPECT_TRUE(R.SaveAtEntry[1].test(5)) << "save shrink-wrapped to the arm";
  EXPECT_TRUE(R.RestoreAtExit[1].test(5));
  EXPECT_FALSE(R.SaveAtEntry[0].test(5));
  EXPECT_FALSE(R.SavedAtProcEntry.test(5));
  // The cold path through block 2 executes no save/restore.
  EXPECT_TRUE(R.SaveAtEntry[2].none());
  EXPECT_TRUE(R.RestoreAtExit[2].none());
}

TEST(ShrinkWrapTest, UseEverywhereSavesAtEntry) {
  Module M;
  Procedure *P = buildCFG(M, "f", {{1, 2}, {3}, {3}, {}});
  auto APP = emptyAPP(*P);
  for (auto &BV : APP)
    BV.set(2);
  auto R = place(*P, APP);
  EXPECT_TRUE(R.SaveAtEntry[0].test(2));
  EXPECT_TRUE(R.SavedAtProcEntry.test(2));
  EXPECT_TRUE(R.RestoreAtExit[3].test(2));
}

TEST(ShrinkWrapTest, DisabledPlacesEntryExit) {
  Module M;
  Procedure *P = buildCFG(M, "f", {{1, 2}, {3}, {3}, {}});
  auto APP = emptyAPP(*P);
  APP[1].set(5);
  ShrinkWrapOptions Opts;
  Opts.Enable = false;
  auto R = place(*P, APP, Opts);
  EXPECT_TRUE(R.SaveAtEntry[0].test(5));
  EXPECT_TRUE(R.RestoreAtExit[3].test(5));
  EXPECT_TRUE(R.SavedAtProcEntry.test(5));
}

TEST(ShrinkWrapTest, Figure2RangeExtensionAvoidsDoubleSave) {
  // The paper's Fig. 2 shape: uses in blocks 3 and 5 where one pred of 5
  // flows from the region containing 3 and the other does not. Naive
  // placement would need an edge split; range extension must instead grow
  // the region, and the verifier (run inside place()) proves no path
  // double-saves or misses a save.
  //   0 -> 1,2 ; 1 -> 4 ; 2 -> 3,4 ; 3 ret ; 4 ret
  // Uses at 1 and 4: block 4 joins a covered pred (1) with an uncovered
  // one (2, which can also bypass the use via 3).
  Module M;
  Procedure *P = buildCFG(M, "f", {{1, 2}, {4}, {3, 4}, {}, {}});
  auto APP = emptyAPP(*P);
  APP[1].set(1);
  APP[4].set(1);
  auto R = place(*P, APP);
  // Extension happened (more than one solver round).
  EXPECT_GE(R.ExtensionIterations, 2);
  EXPECT_TRUE(R.ExtendedAPP[2].test(1)) << "APP propagated to block 2";
  // Exactly one save on each root-to-use path: 0-1-4 and 0-2-4.
  int SavesViaOne = R.SaveAtEntry[0].test(1) + R.SaveAtEntry[1].test(1) +
                    R.SaveAtEntry[4].test(1);
  int SavesViaTwo = R.SaveAtEntry[0].test(1) + R.SaveAtEntry[2].test(1) +
                    R.SaveAtEntry[4].test(1);
  EXPECT_EQ(SavesViaOne, 1);
  EXPECT_EQ(SavesViaTwo, 1);
}

TEST(ShrinkWrapTest, LoopExtensionKeepsSavesOutOfLoops) {
  // 0 -> 1 ; 1 -> 2,3 ; 2 -> 1 ; 3 ret. Use in loop body block 2.
  Module M;
  Procedure *P = buildCFG(M, "f", {{1}, {2, 3}, {1}, {}});
  auto APP = emptyAPP(*P);
  APP[2].set(4);
  auto R = place(*P, APP);
  EXPECT_TRUE(R.SaveAtEntry[2].none() && R.RestoreAtExit[2].none())
      << "save/restore must not stay inside the loop";
  EXPECT_TRUE(R.SaveAtEntry[0].test(4) || R.SaveAtEntry[1].test(4));
}

TEST(ShrinkWrapTest, LoopExtensionDisabledSavesPerIteration) {
  Module M;
  Procedure *P = buildCFG(M, "f", {{1}, {2, 3}, {1}, {}});
  auto APP = emptyAPP(*P);
  APP[2].set(4);
  ShrinkWrapOptions Opts;
  Opts.LoopExtension = false;
  auto R = place(*P, APP, Opts);
  EXPECT_TRUE(R.SaveAtEntry[2].test(4))
      << "without loop extension the save lands in the body";
  EXPECT_TRUE(R.RestoreAtExit[2].test(4));
}

TEST(ShrinkWrapTest, NestedRegionsPerRegisterIndependent) {
  // reg 0 used everywhere, reg 1 only on one arm; placements independent.
  Module M;
  Procedure *P = buildCFG(M, "f", {{1, 2}, {3}, {3}, {}});
  auto APP = emptyAPP(*P);
  for (auto &BV : APP)
    BV.set(0);
  APP[2].set(1);
  auto R = place(*P, APP);
  EXPECT_TRUE(R.SaveAtEntry[0].test(0));
  EXPECT_FALSE(R.SaveAtEntry[0].test(1));
  EXPECT_TRUE(R.SaveAtEntry[2].test(1));
}

TEST(ShrinkWrapTest, MultipleExits) {
  // 0 -> 1,2 ; both exit. Use in 1 only.
  Module M;
  Procedure *P = buildCFG(M, "f", {{1, 2}, {}, {}});
  auto APP = emptyAPP(*P);
  APP[1].set(3);
  auto R = place(*P, APP);
  EXPECT_TRUE(R.SaveAtEntry[1].test(3));
  EXPECT_TRUE(R.RestoreAtExit[1].test(3));
  EXPECT_TRUE(R.RestoreAtExit[2].none());
}

TEST(ShrinkWrapTest, Figure3Shape) {
  // Two consecutive diamonds (paper Fig. 3): use in arm 1 of diamond A and
  // arm 1 of diamond B. Saves wrap each region separately so the path
  // taking both cold arms runs zero save/restores.
  //   0 -> 1,2 ; 1 -> 3 ; 2 -> 3 ; 3 -> 4,5 ; 4 -> 6 ; 5 -> 6 ; 6 ret
  Module M;
  Procedure *P =
      buildCFG(M, "f", {{1, 2}, {3}, {3}, {4, 5}, {6}, {6}, {}});
  auto APP = emptyAPP(*P);
  APP[1].set(7);
  APP[4].set(7);
  auto R = place(*P, APP);
  // Cold path 0-2-3-5-6 must be free of reg-7 traffic.
  for (int B : {0, 2, 3, 5, 6}) {
    EXPECT_FALSE(R.SaveAtEntry[B].test(7)) << "save on cold block " << B;
    EXPECT_FALSE(R.RestoreAtExit[B].test(7)) << "restore on cold block " << B;
  }
  EXPECT_TRUE(R.SaveAtEntry[1].test(7));
  EXPECT_TRUE(R.SaveAtEntry[4].test(7));
}

// Property test: random CFGs with random APP always verify, with and
// without loop extension.
class ShrinkWrapRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(ShrinkWrapRandomTest, RandomCFGsAlwaysVerify) {
  std::mt19937 Rng(GetParam());
  for (int Trial = 0; Trial < 40; ++Trial) {
    unsigned NumBlocks = 2 + Rng() % 10;
    std::vector<std::vector<int>> Succs(NumBlocks);
    for (unsigned B = 0; B < NumBlocks; ++B) {
      unsigned Kind = Rng() % 10;
      if (B + 1 == NumBlocks || Kind < 2) {
        // exit
      } else if (Kind < 6) {
        Succs[B] = {int(1 + Rng() % (NumBlocks - 1))};
      } else {
        Succs[B] = {int(1 + Rng() % (NumBlocks - 1)),
                    int(1 + Rng() % (NumBlocks - 1))};
        if (Succs[B][0] == Succs[B][1])
          Succs[B].pop_back();
      }
    }
    Module M;
    Procedure *P =
        buildCFG(M, "r" + std::to_string(GetParam() * 100 + Trial), Succs);
    auto APP = emptyAPP(*P);
    for (unsigned B = 0; B < NumBlocks; ++B)
      for (unsigned Reg = 0; Reg < NumRegs; ++Reg)
        if (Rng() % 4 == 0)
          APP[B].set(Reg);
    LoopInfo LI = LoopInfo::compute(*P);
    for (bool LoopExt : {true, false}) {
      ShrinkWrapOptions Opts;
      Opts.LoopExtension = LoopExt;
      ShrinkWrapResult R = placeSavesRestores(*P, APP, NumRegs, LI, Opts);
      std::string Err = verifyPlacement(*P, R.ExtendedAPP, NumRegs, R);
      ASSERT_EQ(Err, "") << "trial " << Trial << " loopExt " << LoopExt;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShrinkWrapRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

} // namespace
