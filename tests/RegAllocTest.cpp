//===- tests/RegAllocTest.cpp - Priority coloring allocator tests ---------===//

#include "regalloc/RegAlloc.h"

#include "analysis/CallGraph.h"
#include "analysis/LiveRanges.h"
#include "analysis/Liveness.h"
#include "frontend/Frontend.h"
#include "opt/Passes.h"

#include <gtest/gtest.h>

using namespace ipra;

namespace {

struct Compiled {
  std::unique_ptr<Module> M;
  MachineDesc Machine;
  std::unique_ptr<SummaryTable> Summaries;
  std::vector<AllocationResult> Results;

  AllocationResult &of(const std::string &Name) {
    return Results[M->findProcedure(Name)->id()];
  }
  Procedure *proc(const std::string &Name) { return M->findProcedure(Name); }
};

Compiled compileAndAllocate(const std::string &Src, const RegAllocOptions &Opts,
                            RegSetRestriction R = RegSetRestriction::None) {
  Compiled C{nullptr, MachineDesc(R), nullptr, {}};
  DiagnosticEngine Diags;
  C.M = compileToIR(Src, Diags);
  EXPECT_NE(C.M, nullptr) << Diags.str();
  optimize(*C.M);
  C.Summaries = std::make_unique<SummaryTable>(C.Machine,
                                               C.M->numProcedures());
  C.Results = allocateModule(*C.M, C.Machine, *C.Summaries, Opts);
  return C;
}

RegAllocOptions intraOpts() {
  RegAllocOptions O;
  O.InterProcedural = false;
  O.ShrinkWrap = false;
  return O;
}

RegAllocOptions interOpts() {
  RegAllocOptions O;
  O.InterProcedural = true;
  O.ShrinkWrap = true;
  return O;
}

/// Checks the fundamental coloring invariant plus allocatability.
void checkValidAssignment(const Procedure &P, const MachineDesc &M,
                          const AllocationResult &R) {
  Liveness LV = Liveness::compute(P);
  InterferenceGraph IG = InterferenceGraph::compute(P, LV);
  for (VReg A = 1; A < P.NumVRegs; ++A) {
    if (R.Assignment[A] < 0)
      continue;
    EXPECT_TRUE(M.isAllocatable(unsigned(R.Assignment[A])))
        << P.name() << " %" << A << " got non-allocatable "
        << regName(unsigned(R.Assignment[A]));
    for (VReg B = A + 1; B < P.NumVRegs; ++B) {
      if (R.Assignment[B] < 0 || R.Assignment[A] != R.Assignment[B])
        continue;
      EXPECT_FALSE(IG.interfere(A, B))
          << P.name() << ": interfering %" << A << " and %" << B
          << " share " << regName(unsigned(R.Assignment[A]));
    }
  }
}

TEST(RegAllocIntraTest, LeafUsesCallerSavedOnly) {
  auto C = compileAndAllocate(
      "func leaf(a, b) { var x = a + b; var y = a - b; return x * y; }",
      intraOpts());
  auto &R = C.of("leaf");
  Procedure *P = C.proc("leaf");
  checkValidAssignment(*P, C.Machine, R);
  for (VReg V = 1; V < P->NumVRegs; ++V) {
    if (R.Assignment[V] >= 0) {
      EXPECT_TRUE(C.Machine.isCallerSaved(unsigned(R.Assignment[V])))
          << "leaf range %" << V << " should use a free caller-saved reg";
    }
  }
  EXPECT_TRUE(R.CalleeSavedToPreserve.none());
}

TEST(RegAllocIntraTest, CallCrossingRangePrefersCalleeSaved) {
  auto C = compileAndAllocate(R"(
    func g(x) { return x; }
    func f(a) {
      var v = a * 7;
      g(1); g(2); g(3);
      return v;
    }
  )", intraOpts());
  Procedure *P = C.proc("f");
  auto &R = C.of("f");
  checkValidAssignment(*P, C.Machine, R);
  // Find the vreg live across the calls (v): it must sit in callee-saved.
  Liveness LV = Liveness::compute(*P);
  LiveRangeInfo LRI = LiveRangeInfo::compute(*P, LV);
  bool FoundCrossing = false;
  for (VReg V = 1; V < P->NumVRegs; ++V) {
    if (LRI.range(V).Crossings.size() < 3)
      continue;
    FoundCrossing = true;
    ASSERT_GE(R.Assignment[V], 0);
    EXPECT_TRUE(C.Machine.isCalleeSaved(unsigned(R.Assignment[V])))
        << "%" << V << " crosses 3 calls; caller-saved would cost 6 ops";
  }
  EXPECT_TRUE(FoundCrossing);
  EXPECT_EQ(R.CalleeSavedToPreserve.count(), 1u);
  EXPECT_FALSE(R.Summary.Precise) << "intra mode publishes no summaries";
}

TEST(RegAllocInterTest, LeafSummaryPreciseAndMinimal) {
  auto C = compileAndAllocate(R"(
    func leaf(a) { return a + 1; }
    func main() { return leaf(41); }
  )", interOpts());
  auto &R = C.of("leaf");
  EXPECT_TRUE(R.Summary.Precise);
  EXPECT_FALSE(R.TreatedOpen);
  // Leaf clobbers at most: its own couple of registers + v0/scratch + its
  // arrival register. Far fewer than the 14-register default mask.
  EXPECT_LT(R.Summary.Clobbered.count(), C.Machine.defaultClobber().count());
  ASSERT_EQ(R.Summary.ParamLocs.size(), 1u);
  EXPECT_TRUE(C.Machine.isAllocatable(R.Summary.ParamLocs[0]));
}

TEST(RegAllocInterTest, CallerAvoidsCalleeClobbersForFree) {
  // v lives across the call to leaf. Under IPRA the allocator knows leaf's
  // exact usage and picks v a register leaf does not touch, so f needs no
  // callee-saved preservation and no caller-save around the call.
  auto C = compileAndAllocate(R"(
    func leaf(x) { return x + 1; }
    func f(a) {
      var v = a * 3;
      var r = leaf(a);
      return v + r;
    }
    func main() { return f(5); }
  )", interOpts());
  Procedure *P = C.proc("f");
  auto &R = C.of("f");
  checkValidAssignment(*P, C.Machine, R);
  const RegUsageSummary &LeafSum =
      C.Summaries->lookup(C.proc("leaf")->id());
  Liveness LV = Liveness::compute(*P);
  LiveRangeInfo LRI = LiveRangeInfo::compute(*P, LV);
  for (VReg V = 1; V < P->NumVRegs; ++V) {
    if (LRI.range(V).Crossings.empty() || R.Assignment[V] < 0)
      continue;
    EXPECT_FALSE(LeafSum.Clobbered.test(unsigned(R.Assignment[V])))
        << "%" << V << " crosses leaf() but sits in a clobbered register";
  }
  EXPECT_TRUE(R.CalleeSavedToPreserve.none())
      << "closed procedure with free registers needs no local preservation";
}

TEST(RegAllocInterTest, Figure1RegisterReuseWhenNotSpanningCall) {
  // Paper Fig. 1: q calls p; variables whose ranges do not span the call
  // may share one register across simultaneously-active procedures.
  auto C = compileAndAllocate(R"(
    func p(x) { var a = x + 1; return a * 2; }
    func q(y) {
      var b = y * 3;          // dead before the call
      var c = p(b);           // c defined by the call
      return c + 1;
    }
    func main() { return q(7); }
  )", interOpts());
  auto &RP = C.of("p");
  auto &RQ = C.of("q");
  // q's total register footprint should overlap p's: the tie-break prefers
  // registers already used in the call tree.
  BitVector Shared = RP.UsedRegs & RQ.UsedRegs;
  EXPECT_TRUE(Shared.any())
      << "call-tree preference should reuse p's registers in q";
  EXPECT_TRUE(RQ.CalleeSavedToPreserve.none());
}

TEST(RegAllocInterTest, RecursiveProcedureIsOpen) {
  auto C = compileAndAllocate(R"(
    func fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
    func main() { return fact(6); }
  )", interOpts());
  auto &R = C.of("fact");
  EXPECT_TRUE(R.TreatedOpen);
  EXPECT_FALSE(R.Summary.Precise);
  // Its parameter arrives per the default protocol.
  ASSERT_EQ(R.IncomingParamLocs.size(), 1u);
  EXPECT_EQ(R.IncomingParamLocs[0], C.Machine.paramRegs()[0]);
}

TEST(RegAllocInterTest, OpenProcPreservesCalleeSavedDamage) {
  // api is exported (open). It calls closed leaf helpers; everything its
  // subtree damages among callee-saved registers must be preserved
  // locally, because api's callers assume the default convention.
  auto C = compileAndAllocate(R"(
    func helper(x) { return x * 2; }
    export func api(a) {
      var v = helper(a);
      var w = helper(v);
      return v + w;
    }
  )", interOpts());
  auto &Api = C.of("api");
  EXPECT_TRUE(Api.TreatedOpen);
  const RegUsageSummary &HelperSum =
      C.Summaries->lookup(C.proc("helper")->id());
  BitVector HelperCalleeSaved = HelperSum.Clobbered & C.Machine.calleeSaved();
  // Whatever callee-saved regs the helper subtree clobbers must be in
  // api's preserve set.
  EXPECT_TRUE(HelperCalleeSaved.isSubsetOf(Api.CalleeSavedToPreserve));
}

TEST(RegAllocInterTest, CombinedStrategyPropagatesWholeProcRanges) {
  // v spans the whole closed procedure (live entry to exit): its register
  // save would land at entry, so Section 6 propagates it upward.
  auto C = compileAndAllocate(R"(
    func busy(a, b, c, d, e, f, g, h, i, j, k, l) {
      var v = a + b;
      var w = c + d + e + f + g + h + i + j + k + l;
      busy2();
      return v + w;
    }
    func busy2() { return 1; }
    func main() {
      return busy(1,2,3,4,5,6,7,8,9,10,11,12);
    }
  )", interOpts());
  auto &R = C.of("busy");
  // Whatever callee-saved registers were used either propagate or are
  // preserved, never both.
  BitVector Both = R.PropagatedCalleeSaved & R.CalleeSavedToPreserve;
  EXPECT_TRUE(Both.none());
}

TEST(RegAllocInterTest, RegisterParamsChosenDistinct) {
  auto C = compileAndAllocate(R"(
    func take5(a, b, c, d, e) { return a + b + c + d + e; }
    func main() { return take5(1, 2, 3, 4, 5); }
  )", interOpts());
  auto &R = C.of("take5");
  ASSERT_EQ(R.Summary.ParamLocs.size(), 5u);
  for (unsigned I = 0; I < 5; ++I) {
    EXPECT_NE(R.Summary.ParamLocs[I], StackParamLoc)
        << "IPRA passes all params in registers";
    for (unsigned J = I + 1; J < 5; ++J)
      EXPECT_NE(R.Summary.ParamLocs[I], R.Summary.ParamLocs[J]);
  }
}

TEST(RegAllocInterTest, DefaultProtocolLimitsRegisterParams) {
  RegAllocOptions O = interOpts();
  O.RegisterParams = false;
  auto C = compileAndAllocate(R"(
    func take5(a, b, c, d, e) { return a + b + c + d + e; }
    func main() { return take5(1, 2, 3, 4, 5); }
  )", O);
  auto &R = C.of("take5");
  ASSERT_EQ(R.IncomingParamLocs.size(), 5u);
  EXPECT_EQ(R.IncomingParamLocs[0], C.Machine.paramRegs()[0]);
  EXPECT_EQ(R.IncomingParamLocs[3], C.Machine.paramRegs()[3]);
  EXPECT_EQ(R.IncomingParamLocs[4], StackParamLoc);
}

TEST(RegAllocRestrictTest, CallerOnly7NeverTouchesCalleeSaved) {
  auto C = compileAndAllocate(R"(
    func g(x) { return x + 1; }
    func f(a) { var v = a * 2; return v + g(a); }
    func main() { return f(3); }
  )", interOpts(), RegSetRestriction::CallerOnly7);
  for (const char *Name : {"g", "f", "main"}) {
    auto &R = C.of(Name);
    BitVector CalleeSavedUsed = R.UsedRegs & C.Machine.calleeSaved();
    EXPECT_TRUE(CalleeSavedUsed.none()) << Name;
    checkValidAssignment(*C.proc(Name), C.Machine, R);
  }
}

TEST(RegAllocRestrictTest, CalleeOnly7UsesOnlyCalleeSaved) {
  auto C = compileAndAllocate(R"(
    func f(a) { var v = a * 2; return v + 1; }
    func main() { return f(3); }
  )", interOpts(), RegSetRestriction::CalleeOnly7);
  auto &R = C.of("f");
  BitVector CallerSavedUsed = R.UsedRegs & C.Machine.callerSaved();
  EXPECT_TRUE(CallerSavedUsed.none());
}

TEST(RegAllocPressureTest, SpillsWhenOutOfRegisters) {
  // 30 simultaneously-live variables cannot fit 20 registers; some spill,
  // and the coloring must stay valid.
  std::string Src = "func f(s) {\n";
  for (int I = 0; I < 30; ++I)
    Src += "  var v" + std::to_string(I) + " = s * " + std::to_string(I + 2) +
           ";\n";
  Src += "  var t = 0;\n";
  for (int I = 0; I < 30; ++I)
    Src += "  t = t + v" + std::to_string(I) + ";\n";
  Src += "  return t;\n}\nfunc main() { return f(3); }\n";
  auto C = compileAndAllocate(Src, interOpts());
  Procedure *P = C.proc("f");
  auto &R = C.of("f");
  checkValidAssignment(*P, C.Machine, R);
  unsigned Spilled = 0;
  for (VReg V = 1; V < P->NumVRegs; ++V)
    if (R.Assignment[V] < 0)
      ++Spilled;
  EXPECT_GT(Spilled, 0u);
}

// Property sweep: coloring validity and placement verification across both
// modes and all restrictions on a corpus of programs.
struct AllocPropertyCase {
  const char *Name;
  const char *Src;
};

class RegAllocPropertyTest
    : public ::testing::TestWithParam<std::tuple<AllocPropertyCase, int>> {};

const AllocPropertyCase PropertyCorpus[] = {
    {"straight", "func main() { var a = 1; var b = a + 2; return b; }"},
    {"calls", R"(
      func h(x) { return x + 1; }
      func g(x) { return h(x) * 2; }
      func main() { return g(10); }
    )"},
    {"loops", R"(
      func sum(n) { var s = 0; for (var i = 0; i < n; i = i + 1) {
        s = s + i; } return s; }
      func main() { return sum(100); }
    )"},
    {"recursion", R"(
      func fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
      func main() { return fib(12); }
    )"},
    {"indirect", R"(
      func a1(x) { return x + 1; }
      func a2(x) { return x + 2; }
      func main() { var p = &a1; var q = &a2; return p(1) + q(2); }
    )"},
    {"pressure", R"(
      func f(a, b, c, d) {
        var e = a*b; var g = c*d; var h = a+c; var i = b+d;
        var j = e+g; var k = h+i;
        f2(); f2();
        return e+g+h+i+j+k;
      }
      func f2() { return 7; }
      func main() { return f(1,2,3,4); }
    )"},
};

TEST_P(RegAllocPropertyTest, ValidColoringAndPlacement) {
  auto [Case, Config] = GetParam();
  RegAllocOptions O;
  O.InterProcedural = Config & 1;
  O.ShrinkWrap = Config & 2;
  RegSetRestriction Restr = RegSetRestriction::None;
  if (Config & 4)
    Restr = RegSetRestriction::CallerOnly7;
  auto C = compileAndAllocate(Case.Src, O, Restr);
  for (const auto &Proc : *C.M) {
    if (Proc->IsExternal)
      continue;
    const AllocationResult &R = C.Results[Proc->id()];
    checkValidAssignment(*Proc, C.Machine, R);
    // Placement must verify against the APP it was computed from.
    std::vector<BitVector> APP =
        computeAPP(*Proc, R.Assignment, *C.Summaries, O.InterProcedural);
    for (BitVector &A : APP)
      A &= R.CalleeSavedToPreserve;
    std::string Err =
        verifyPlacement(*Proc, R.Placement.ExtendedAPP,
                        C.Machine.numRegs(), R.Placement);
    EXPECT_EQ(Err, "") << Proc->name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RegAllocPropertyTest,
    ::testing::Combine(::testing::ValuesIn(PropertyCorpus),
                       ::testing::Values(0, 1, 2, 3, 5, 7)),
    [](const ::testing::TestParamInfo<RegAllocPropertyTest::ParamType> &I) {
      return std::string(std::get<0>(I.param).Name) + "_cfg" +
             std::to_string(std::get<1>(I.param));
    });

} // namespace
