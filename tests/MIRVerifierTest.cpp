//===- tests/MIRVerifierTest.cpp - Mutation harness for the MIR auditor ---===//
//
// Fault injection against the machine-code convention verifier: compile a
// clean program, plant one systematic corruption at a time in a copy of
// the MProgram / SummaryTable (drop a save, swap a restore register,
// clear a summary bit, reroute an argument move, ...) and assert the
// verifier reports it under the right diagnostic code. A verifier is only
// trustworthy if every defect class it claims to cover actually trips it.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "verify/MIRVerifier.h"

#include <gtest/gtest.h>

#include <string>

using namespace ipra;

namespace {

// A fixture with register pressure across a call: under -O3 + shrink-wrap
// the closed procedure publishes a precise summary, callee-saved saves
// and restores are emitted, and arguments travel in registers.
const char *FixtureSource = R"(
  func leaf(x) { return x + 1; }
  func cross(a, b, c, d, e) {
    var t1 = a + b; var t2 = b + c; var t3 = c + d; var t4 = d + e;
    var t5 = a * c; var t6 = b * d; var t7 = a * e; var t8 = c * e;
    var t9 = a - d; var t10 = b - e; var t11 = a * b; var t12 = d * e;
    var s = leaf(a);
    return t1+t2+t3+t4+t5+t6+t7+t8+t9+t10+t11+t12+s;
  }
  func main() { print(cross(1, 2, 3, 4, 5)); return 0; }
)";

class MIRVerifierTest : public ::testing::Test {
protected:
  void compileFixture(PaperConfig Config = PaperConfig::C) {
    DiagnosticEngine Diags;
    Result = compileProgram(FixtureSource, optionsFor(Config), Diags);
    ASSERT_NE(Result, nullptr) << Diags.str();
    ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  }

  const MachineDesc &machine() const { return Result->Machine; }

  /// First (proc, block, inst) matching \p Pred, as pointers into \p Prog.
  /// \returns the instruction, or nullptr.
  template <typename PredT>
  MInst *findInst(MProgram &Prog, PredT Pred, int *ProcOut = nullptr,
                  int *BlockOut = nullptr, int *InstOut = nullptr) {
    for (MProc &P : Prog.Procs)
      for (MBlock &B : P.Blocks)
        for (unsigned I = 0; I < B.Insts.size(); ++I)
          if (Pred(P, B.Insts[I])) {
            if (ProcOut)
              *ProcOut = P.Id;
            if (BlockOut)
              *BlockOut = B.Id;
            if (InstOut)
              *InstOut = int(I);
            return &B.Insts[I];
          }
    return nullptr;
  }

  bool isCalleeSavedSave(const MInst &I) const {
    return I.Op == MOpcode::Store && I.Rs == RegSP &&
           machine().isCalleeSaved(I.Rt);
  }

  bool isCalleeSavedRestore(const MInst &I) const {
    return I.Op == MOpcode::Load && I.Rs == RegSP &&
           machine().isCalleeSaved(I.Rd);
  }

  std::unique_ptr<CompileResult> Result;
};

TEST_F(MIRVerifierTest, CleanProgramHasNoViolations) {
  compileFixture();
  MVerifyResult V = verifyMachineProgram(Result->Program, *Result->Summaries);
  EXPECT_TRUE(V.ok()) << V.str();
  EXPECT_EQ(V.ProceduresChecked, unsigned(Result->Program.Procs.size()));
  EXPECT_TRUE(verifyPlacements(*Result->IR, Result->Alloc, *Result->Summaries,
                               /*InterMode=*/true)
                  .empty());
}

TEST_F(MIRVerifierTest, DroppedSaveIsCaught) {
  compileFixture();
  MProgram Mutant = Result->Program;
  int Proc = -1, Block = -1, Inst = -1;
  MInst *Save = findInst(
      Mutant, [&](const MProc &, const MInst &I) { return isCalleeSavedSave(I); },
      &Proc, &Block, &Inst);
  ASSERT_NE(Save, nullptr) << "fixture emitted no callee-saved save";
  Mutant.Procs[Proc].Blocks[Block].Insts.erase(
      Mutant.Procs[Proc].Blocks[Block].Insts.begin() + Inst);

  MVerifyResult V = verifyMachineProgram(Mutant, *Result->Summaries);
  EXPECT_FALSE(V.ok());
  EXPECT_TRUE(V.hasCode(MVCode::CalleeSavedNotPreserved)) << V.str();
}

TEST_F(MIRVerifierTest, SwappedRestoreRegisterIsCaught) {
  compileFixture();
  MProgram Mutant = Result->Program;
  MInst *Restore = findInst(Mutant, [&](const MProc &, const MInst &I) {
    return isCalleeSavedRestore(I);
  });
  ASSERT_NE(Restore, nullptr) << "fixture emitted no callee-saved restore";
  // Reroute the restore into a different callee-saved register: the one
  // it was meant to refill never regains its entry value.
  unsigned Other = 0;
  machine().calleeSaved().forEachSetBit([&](unsigned Reg) {
    if (Reg != Restore->Rd && Other == 0)
      Other = Reg;
  });
  ASSERT_NE(Other, 0u);
  Restore->Rd = uint8_t(Other);

  MVerifyResult V = verifyMachineProgram(Mutant, *Result->Summaries);
  EXPECT_FALSE(V.ok());
  EXPECT_TRUE(V.hasCode(MVCode::CalleeSavedNotPreserved)) << V.str();
}

TEST_F(MIRVerifierTest, ClearedSummaryBitIsCaught) {
  compileFixture();
  // Find a closed procedure and a caller-saved register its code
  // actually clobbers (from the verifier's own fixed point) that the
  // summary admits to. Clearing that bit makes the summary a lie.
  MVerifyResult Clean =
      verifyMachineProgram(Result->Program, *Result->Summaries);
  ASSERT_TRUE(Clean.ok()) << Clean.str();

  int Proc = -1;
  unsigned Bit = 0;
  for (unsigned P = 0; P < Result->Program.Procs.size() && Proc < 0; ++P) {
    const RegUsageSummary &S = Result->Summaries->lookup(int(P));
    if (!S.Precise)
      continue;
    BitVector Candidates = Clean.ComputedClobber[P];
    Candidates &= S.Clobbered;
    Candidates &= machine().callerSaved();
    Candidates.forEachSetBit([&](unsigned Reg) {
      if (Proc < 0) {
        Proc = int(P);
        Bit = Reg;
      }
    });
  }
  ASSERT_GE(Proc, 0) << "no closed procedure clobbers a caller-saved reg";

  SummaryTable Mutant(machine(), unsigned(Result->Program.Procs.size()));
  for (unsigned P = 0; P < Result->Program.Procs.size(); ++P)
    Mutant.publish(int(P), Result->Summaries->lookup(int(P)));
  RegUsageSummary Lying = Mutant.lookup(Proc);
  Lying.Clobbered.reset(Bit);
  Mutant.publish(Proc, Lying);
  // Keep ClobberMasks consistent with the mutated summary so the one
  // planted defect surfaces as exactly a summary-soundness violation.
  MProgram Prog = Result->Program;
  Prog.ClobberMasks[Proc].reset(Bit);

  MVerifyResult V = verifyMachineProgram(Prog, Mutant);
  EXPECT_FALSE(V.ok());
  EXPECT_TRUE(V.hasCode(MVCode::SummaryClobberMismatch)) << V.str();
}

TEST_F(MIRVerifierTest, ReroutedArgumentMoveIsCaught) {
  // Default-protocol configuration: 'callee' expects its argument in a0,
  // and main (zero parameters) has no a0 at entry -- so rerouting the
  // instruction that sets it up leaves the register undefined at the
  // call on every path.
  DiagnosticEngine Diags;
  auto Small = compileProgram(
      "func callee(x) { return x + 1; }"
      "func main() { print(callee(7)); return 0; }",
      optionsFor(PaperConfig::Base), Diags);
  ASSERT_NE(Small, nullptr) << Diags.str();
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();

  MProgram Mutant = Small->Program;
  MProc *Main = nullptr;
  for (MProc &P : Mutant.Procs)
    if (P.Name == "main")
      Main = &P;
  ASSERT_NE(Main, nullptr);
  int CalleeId = -1;
  for (const MProc &P : Mutant.Procs)
    if (P.Name == "callee")
      CalleeId = P.Id;
  ASSERT_GE(CalleeId, 0);
  unsigned ParamReg = Small->Summaries->makeDefault(1).ParamLocs[0];

  // Last definition of the parameter register before the call: that is
  // the argument move (or load) the mutation reroutes elsewhere.
  MInst *ArgDef = nullptr;
  bool Done = false;
  for (MBlock &B : Main->Blocks) {
    for (MInst &I : B.Insts) {
      if (I.Op == MOpcode::Call && I.Callee == CalleeId) {
        Done = true;
        break;
      }
      switch (I.Op) {
      case MOpcode::Store:
      case MOpcode::Call:
      case MOpcode::CallInd:
      case MOpcode::Ret:
      case MOpcode::Br:
      case MOpcode::CondBr:
      case MOpcode::Print:
        break;
      default:
        if (I.Rd == ParamReg)
          ArgDef = &I;
      }
    }
    if (Done)
      break;
  }
  ASSERT_TRUE(Done) << "no call to 'callee' in main";
  ASSERT_NE(ArgDef, nullptr) << "no argument setup before the call";
  ArgDef->Rd = RegT6;

  MVerifyResult V = verifyMachineProgram(Mutant, *Small->Summaries);
  EXPECT_FALSE(V.ok());
  EXPECT_TRUE(V.hasCode(MVCode::ParamRegUndefinedAtCall)) << V.str();
}

TEST_F(MIRVerifierTest, DroppedReturnAddressSaveIsCaught) {
  compileFixture();
  MProgram Mutant = Result->Program;
  int Proc = -1, Block = -1, Inst = -1;
  MInst *RASave = findInst(
      Mutant,
      [&](const MProc &, const MInst &I) {
        return I.Op == MOpcode::Store && I.Rs == RegSP && I.Rt == RegRA;
      },
      &Proc, &Block, &Inst);
  ASSERT_NE(RASave, nullptr) << "fixture has no RA save";
  Mutant.Procs[Proc].Blocks[Block].Insts.erase(
      Mutant.Procs[Proc].Blocks[Block].Insts.begin() + Inst);

  MVerifyResult V = verifyMachineProgram(Mutant, *Result->Summaries);
  EXPECT_FALSE(V.ok());
  EXPECT_TRUE(V.hasCode(MVCode::RANotPreserved)) << V.str();
}

TEST_F(MIRVerifierTest, MisadjustedStackPointerIsCaught) {
  compileFixture();
  MProgram Mutant = Result->Program;
  MInst *Adjust = findInst(Mutant, [&](const MProc &, const MInst &I) {
    return I.Op == MOpcode::AddImm && I.Rd == RegSP && I.Imm < 0;
  });
  ASSERT_NE(Adjust, nullptr) << "fixture has no frame allocation";
  Adjust->Imm -= 1; // prologue and epilogue now disagree

  MVerifyResult V = verifyMachineProgram(Mutant, *Result->Summaries);
  EXPECT_FALSE(V.ok());
  EXPECT_TRUE(V.hasCode(MVCode::StackDiscipline)) << V.str();
}

TEST_F(MIRVerifierTest, UndefinedRegisterReadIsCaught) {
  compileFixture();
  MProgram Mutant = Result->Program;
  // Prepend a read of a caller-saved temporary to main's entry block:
  // nothing defines it there on any path.
  for (MProc &P : Mutant.Procs)
    if (P.Name == "main") {
      MInst I(MOpcode::Move);
      I.Rd = RegT0;
      I.Rs = RegT1;
      P.Blocks[0].Insts.insert(P.Blocks[0].Insts.begin(), I);
    }

  MVerifyResult V = verifyMachineProgram(Mutant, *Result->Summaries);
  EXPECT_FALSE(V.ok());
  EXPECT_TRUE(V.hasCode(MVCode::DefBeforeUse)) << V.str();
}

TEST_F(MIRVerifierTest, ClobberMaskDriftIsCaught) {
  compileFixture();
  MProgram Mutant = Result->Program;
  // Flip one bit in the simulator-facing mask only: the published
  // summaries no longer agree with what the dynamic checker will enforce.
  ASSERT_FALSE(Mutant.ClobberMasks.empty());
  unsigned Victim = 0; // any procedure's mask must mirror its summary
  if (Mutant.ClobberMasks[Victim].test(RegT3))
    Mutant.ClobberMasks[Victim].reset(RegT3);
  else
    Mutant.ClobberMasks[Victim].set(RegT3);

  MVerifyResult V = verifyMachineProgram(Mutant, *Result->Summaries);
  EXPECT_FALSE(V.ok());
  EXPECT_TRUE(V.hasCode(MVCode::ClobberMaskMismatch)) << V.str();
}

TEST_F(MIRVerifierTest, MissingTerminatorIsCaught) {
  compileFixture();
  MProgram Mutant = Result->Program;
  for (MProc &P : Mutant.Procs)
    if (P.Name == "main")
      P.Blocks.back().Insts.pop_back();

  MVerifyResult V = verifyMachineProgram(Mutant, *Result->Summaries);
  EXPECT_FALSE(V.ok());
  EXPECT_TRUE(V.hasCode(MVCode::Structure)) << V.str();
}

TEST_F(MIRVerifierTest, WriteToZeroRegisterIsCaught) {
  compileFixture();
  MProgram Mutant = Result->Program;
  MInst *Def = findInst(Mutant, [&](const MProc &, const MInst &I) {
    return I.Op == MOpcode::LoadImm;
  });
  ASSERT_NE(Def, nullptr);
  Def->Rd = RegZero;

  MVerifyResult V = verifyMachineProgram(Mutant, *Result->Summaries);
  EXPECT_FALSE(V.ok());
  EXPECT_TRUE(V.hasCode(MVCode::WriteToZero)) << V.str();
}

TEST_F(MIRVerifierTest, FrameBoundsEscapeIsCaught) {
  compileFixture();
  MProgram Mutant = Result->Program;
  MInst *Save = findInst(Mutant, [&](const MProc &, const MInst &I) {
    return I.Op == MOpcode::Store && I.Rs == RegSP;
  });
  ASSERT_NE(Save, nullptr);
  Save->Imm = -1; // below the stack pointer

  MVerifyResult V = verifyMachineProgram(Mutant, *Result->Summaries);
  EXPECT_FALSE(V.ok());
  EXPECT_TRUE(V.hasCode(MVCode::FrameBounds)) << V.str();
}

TEST_F(MIRVerifierTest, ParamArityLieIsCaught) {
  compileFixture();
  // A precise summary whose ParamLocs arity disagrees with the callee's
  // parameter count: callers can no longer know where arguments go.
  int Proc = -1;
  for (unsigned P = 0; P < Result->Program.Procs.size(); ++P)
    if (Result->Summaries->lookup(int(P)).Precise &&
        !Result->Summaries->lookup(int(P)).ParamLocs.empty())
      Proc = int(P);
  ASSERT_GE(Proc, 0) << "no closed procedure takes parameters";

  SummaryTable Mutant(machine(), unsigned(Result->Program.Procs.size()));
  for (unsigned P = 0; P < Result->Program.Procs.size(); ++P)
    Mutant.publish(int(P), Result->Summaries->lookup(int(P)));
  RegUsageSummary Lying = Mutant.lookup(Proc);
  Lying.ParamLocs.pop_back();
  Mutant.publish(Proc, Lying);

  MVerifyResult V = verifyMachineProgram(Result->Program, Mutant);
  EXPECT_FALSE(V.ok());
  EXPECT_TRUE(V.hasCode(MVCode::ParamArityMismatch)) << V.str();
}

TEST_F(MIRVerifierTest, DiagnosticsCarryMachineLocations) {
  compileFixture();
  MProgram Mutant = Result->Program;
  int Proc = -1, Block = -1, Inst = -1;
  findInst(
      Mutant, [&](const MProc &, const MInst &I) { return isCalleeSavedSave(I); },
      &Proc, &Block, &Inst);
  ASSERT_GE(Proc, 0);
  Mutant.Procs[Proc].Blocks[Block].Insts.erase(
      Mutant.Procs[Proc].Blocks[Block].Insts.begin() + Inst);

  MVerifyResult V = verifyMachineProgram(Mutant, *Result->Summaries);
  ASSERT_FALSE(V.ok());
  const MVerifyDiag &D = V.Violations.front();
  EXPECT_TRUE(D.Loc.isValid());
  EXPECT_FALSE(D.Loc.ProcName.empty());
  // The rendering is structured: location, code name, detail.
  EXPECT_NE(D.str().find(mvCodeName(D.Code)), std::string::npos);
  EXPECT_NE(D.str().find(D.Loc.ProcName), std::string::npos);
}

TEST_F(MIRVerifierTest, BrokenPlacementIsCaught) {
  compileFixture();
  // Corrupt the allocator's own record: drop a save from the placement
  // while its APP blocks still demand coverage.
  std::vector<AllocationResult> Alloc = Result->Alloc;
  bool Mutated = false;
  for (AllocationResult &A : Alloc) {
    for (BitVector &Saves : A.Placement.SaveAtEntry)
      if (!Mutated && Saves.count() > 0) {
        Saves.forEachSetBit([&](unsigned Reg) {
          if (!Mutated) {
            Saves.reset(Reg);
            Mutated = true;
          }
        });
      }
    if (Mutated)
      break;
  }
  ASSERT_TRUE(Mutated) << "no placement saves to corrupt";

  std::vector<MVerifyDiag> Diags = verifyPlacements(
      *Result->IR, Alloc, *Result->Summaries, /*InterMode=*/true);
  ASSERT_FALSE(Diags.empty());
  EXPECT_EQ(Diags.front().Code, MVCode::PlacementViolation);
}

TEST_F(MIRVerifierTest, ViolationsFailTheDriver) {
  // The pipeline hook turns verifier findings into driver errors (which
  // ipracc maps to a nonzero exit). A clean compile must stay error-free
  // with the audit on at every configuration.
  for (PaperConfig Config :
       {PaperConfig::Base, PaperConfig::A, PaperConfig::B, PaperConfig::C,
        PaperConfig::D, PaperConfig::E}) {
    DiagnosticEngine Diags;
    CompileOptions Opts = optionsFor(Config);
    ASSERT_TRUE(Opts.VerifyMIR); // default-on
    auto R = compileProgram(FixtureSource, Opts, Diags);
    ASSERT_NE(R, nullptr) << Diags.str();
    EXPECT_FALSE(Diags.hasErrors()) << paperConfigName(Config) << "\n"
                                    << Diags.str();
    EXPECT_EQ(R->Stats.Module.get("verify.violations"), 0u)
        << paperConfigName(Config);
  }
}

} // namespace
