//===- tests/ProgramGenerator.h - Random miniC program generator ----------===//
//
// Structured random program generator shared by the fuzz differential
// tests and the parallel-determinism sweep. Termination is guaranteed by
// construction: loops iterate constant trip counts and the call graph of
// generated functions is a DAG (each function only calls earlier ones).
//
//===----------------------------------------------------------------------===//

#ifndef IPRA_TESTS_PROGRAMGENERATOR_H
#define IPRA_TESTS_PROGRAMGENERATOR_H

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace ipra {

class ProgramGenerator {
public:
  explicit ProgramGenerator(uint32_t Seed) : Rng(Seed) {}

  std::string generate() {
    Out.clear();
    Funcs.clear();
    unsigned NumGlobals = 1 + Rng() % 3;
    for (unsigned G = 0; G < NumGlobals; ++G) {
      Globals.push_back("g" + std::to_string(G));
      Out += "var " + Globals.back() + " = " +
             std::to_string(int(Rng() % 19) - 9) + ";\n";
    }
    unsigned NumFuncs = 2 + Rng() % 4;
    for (unsigned F = 0; F < NumFuncs; ++F)
      genFunction(F);
    genMain();
    return Out;
  }

private:
  unsigned pick(unsigned N) { return Rng() % N; }

  std::string randomVar() {
    if (!Vars.empty() && pick(3) != 0)
      return Vars[pick(Vars.size())];
    if (!Globals.empty())
      return Globals[pick(Globals.size())];
    return Vars.empty() ? "0" : Vars[pick(Vars.size())];
  }

  std::string genExpr(int Depth) {
    if (Depth <= 0 || pick(4) == 0) {
      switch (pick(3)) {
      case 0:
        return std::to_string(int(Rng() % 201) - 100);
      default:
        return randomVar();
      }
    }
    switch (pick(8)) {
    case 0: {
      // Division/modulo by a positive constant only.
      const char *Op = pick(2) ? " / " : " % ";
      return "(" + genExpr(Depth - 1) + Op +
             std::to_string(1 + pick(9)) + ")";
    }
    case 1:
      return "(-" + genExpr(Depth - 1) + ")";
    case 2:
      return "(!" + genExpr(Depth - 1) + ")";
    case 3: {
      static const char *Cmp[] = {" < ", " <= ", " > ", " >= ", " == ",
                                  " != "};
      return "(" + genExpr(Depth - 1) + Cmp[pick(6)] + genExpr(Depth - 1) +
             ")";
    }
    case 4:
      // Call fan-out is the termination-time hazard: gate it so call
      // trees stay shallow (the DAG rule already rules out recursion).
      if (!Funcs.empty() && pick(2) == 0) {
        const FuncInfo &F = Funcs[pick(Funcs.size())];
        std::string Call = F.Name + "(";
        for (unsigned A = 0; A < F.Arity; ++A) {
          if (A)
            Call += ", ";
          Call += genExpr(Depth - 1);
        }
        return Call + ")";
      }
      [[fallthrough]];
    default: {
      static const char *Arith[] = {" + ", " - ", " * "};
      return "(" + genExpr(Depth - 1) + Arith[pick(3)] +
             genExpr(Depth - 1) + ")";
    }
    }
  }

  void genStmt(int Depth, int Indent) {
    std::string Pad(unsigned(Indent) * 2, ' ');
    switch (pick(Depth > 0 ? 6 : 3)) {
    case 0: {
      std::string Name = "v" + std::to_string(NextVar++);
      Out += Pad + "var " + Name + " = " + genExpr(2) + ";\n";
      Vars.push_back(Name);
      break;
    }
    case 1:
      Out += Pad + randomVar() + " = " + genExpr(2) + ";\n";
      break;
    case 2:
      Out += Pad + "acc = acc + " + genExpr(2) + ";\n";
      break;
    case 3: {
      Out += Pad + "if (" + genExpr(1) + ") {\n";
      unsigned SaveVars = Vars.size();
      genStmt(Depth - 1, Indent + 1);
      Vars.resize(SaveVars);
      if (pick(2)) {
        Out += Pad + "} else {\n";
        genStmt(Depth - 1, Indent + 1);
        Vars.resize(SaveVars);
      }
      Out += Pad + "}\n";
      break;
    }
    case 4: {
      std::string I = "i" + std::to_string(NextVar++);
      Out += Pad + "for (var " + I + " = 0; " + I + " < " +
             std::to_string(1 + pick(4)) + "; " + I + " = " + I +
             " + 1) {\n";
      unsigned SaveVars = Vars.size();
      Vars.push_back(I);
      genStmt(Depth - 1, Indent + 1);
      Vars.resize(SaveVars);
      Out += Pad + "}\n";
      break;
    }
    default: {
      unsigned N = 1 + pick(2);
      for (unsigned S = 0; S < N; ++S)
        genStmt(Depth - 1, Indent);
      break;
    }
    }
  }

  void genFunction(unsigned Index) {
    FuncInfo F;
    F.Name = "f" + std::to_string(Index);
    F.Arity = pick(4);
    Out += "func " + F.Name + "(";
    Vars.clear();
    NextVar = 0;
    for (unsigned A = 0; A < F.Arity; ++A) {
      std::string P = "p" + std::to_string(A);
      if (A)
        Out += ", ";
      Out += P;
      Vars.push_back(P);
    }
    Out += ") {\n  var acc = 0;\n";
    Vars.push_back("acc");
    unsigned Stmts = 1 + pick(4);
    for (unsigned S = 0; S < Stmts; ++S)
      genStmt(2, 1);
    Out += "  return acc + " + genExpr(1) + ";\n}\n";
    Funcs.push_back(F); // available to *later* functions only: DAG
  }

  void genMain() {
    Vars.clear();
    NextVar = 0;
    Out += "func main() {\n  var acc = 0;\n";
    Vars.push_back("acc");
    for (unsigned S = 0; S < 3 + pick(3); ++S)
      genStmt(2, 1);
    Out += "  print(acc);\n";
    for (const std::string &G : Globals)
      Out += "  print(" + G + ");\n";
    Out += "  return 0;\n}\n";
  }

  struct FuncInfo {
    std::string Name;
    unsigned Arity = 0;
  };

  std::mt19937 Rng;
  std::string Out;
  std::vector<FuncInfo> Funcs;
  std::vector<std::string> Globals;
  std::vector<std::string> Vars;
  unsigned NextVar = 0;
};

} // namespace ipra

#endif // IPRA_TESTS_PROGRAMGENERATOR_H
