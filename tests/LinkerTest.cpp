//===- tests/LinkerTest.cpp - Cross-module linking tests ------------------===//

#include "driver/Linker.h"

#include "driver/Pipeline.h"
#include "frontend/Frontend.h"

#include <gtest/gtest.h>

using namespace ipra;

namespace {

std::unique_ptr<Module> unit(const std::string &Src) {
  DiagnosticEngine Diags;
  auto M = compileToIR(Src, Diags);
  EXPECT_NE(M, nullptr) << Diags.str();
  return M;
}

TEST(LinkerTest, ResolvesExternAgainstExport) {
  std::vector<std::unique_ptr<Module>> Units;
  Units.push_back(unit(R"(
    extern func lib(x);
    func main() { print(lib(20)); return 0; }
  )"));
  Units.push_back(unit(R"(
    export func lib(x) { return x * 2 + 2; }
  )"));
  DiagnosticEngine Diags;
  auto Linked = linkModules(std::move(Units), Diags);
  ASSERT_NE(Linked, nullptr) << Diags.str();
  Procedure *Lib = Linked->findProcedure("lib");
  ASSERT_NE(Lib, nullptr);
  EXPECT_FALSE(Lib->IsExternal) << "extern resolved against the definition";
  EXPECT_FALSE(Lib->Exported) << "internalized by the whole-program link";
  // Call must target the resolved id.
  Procedure *Main = Linked->findProcedure("main");
  bool FoundCall = false;
  for (const auto &BB : *Main)
    for (const Instruction &I : BB->Insts)
      if (I.Op == Opcode::Call) {
        EXPECT_EQ(I.Callee, Lib->id());
        FoundCall = true;
      }
  EXPECT_TRUE(FoundCall);
}

TEST(LinkerTest, RenamesInternalClashes) {
  std::vector<std::unique_ptr<Module>> Units;
  Units.push_back(unit(R"(
    func helper(x) { return x + 1; }
    func main() { print(helper(1)); return 0; }
  )"));
  Units.push_back(unit(R"(
    func helper(x) { return x + 100; }
    export func api(x) { return helper(x); }
  )"));
  DiagnosticEngine Diags;
  auto Linked = linkModules(std::move(Units), Diags);
  ASSERT_NE(Linked, nullptr) << Diags.str();
  EXPECT_NE(Linked->findProcedure("helper"), nullptr);
  EXPECT_NE(Linked->findProcedure("helper$u1"), nullptr)
      << "file-local duplicate renamed";
}

TEST(LinkerTest, RejectsDuplicateExports) {
  std::vector<std::unique_ptr<Module>> Units;
  Units.push_back(unit("export func api(x) { return 1; }"));
  Units.push_back(unit("export func api(x) { return 2; }"));
  DiagnosticEngine Diags;
  EXPECT_EQ(linkModules(std::move(Units), Diags), nullptr);
  EXPECT_NE(Diags.str().find("duplicate exported symbol"),
            std::string::npos);
}

TEST(LinkerTest, KeepsUnresolvedExternAsStub) {
  std::vector<std::unique_ptr<Module>> Units;
  Units.push_back(unit(R"(
    extern func mystery(x);
    func main() { if (0) { print(mystery(1)); } return 0; }
  )"));
  DiagnosticEngine Diags;
  auto Linked = linkModules(std::move(Units), Diags);
  ASSERT_NE(Linked, nullptr) << Diags.str();
  Procedure *Stub = Linked->findProcedure("mystery");
  ASSERT_NE(Stub, nullptr);
  EXPECT_TRUE(Stub->IsExternal);
}

TEST(LinkerTest, MergesGlobalsWithRemapping) {
  std::vector<std::unique_ptr<Module>> Units;
  Units.push_back(unit(R"(
    var a = 7;
    export func getA() { return a; }
  )"));
  Units.push_back(unit(R"(
    var b = 9;
    extern func getA();
    func main() { print(getA() + b); return 0; }
  )"));
  DiagnosticEngine Diags;
  auto Linked = linkModules(std::move(Units), Diags);
  ASSERT_NE(Linked, nullptr) << Diags.str();
  ASSERT_EQ(Linked->Globals.size(), 2u);
  // End to end through the back end: must print 16.
  CompileOptions Opts = optionsFor(PaperConfig::C);
  auto Result = compileUnits({R"(
    var a = 7;
    export func getA() { return a; }
  )",
                              R"(
    var b = 9;
    extern func getA();
    func main() { print(getA() + b); return 0; }
  )"},
                             Opts, Diags);
  ASSERT_NE(Result, nullptr) << Diags.str();
  RunStats Stats = runProgram(Result->Program);
  ASSERT_TRUE(Stats.OK) << Stats.Error;
  EXPECT_EQ(Stats.Output, (std::vector<int64_t>{16}));
}

TEST(LinkerTest, SeparateCompilationMatchesWholeProgram) {
  // The same program split across three units computes the same output
  // under every configuration.
  const char *U1 = R"(
    export func square(x) { return x * x; }
  )";
  const char *U2 = R"(
    extern func square(x);
    export func sumsq(n) {
      var s = 0;
      for (var i = 1; i <= n; i = i + 1) { s = s + square(i); }
      return s;
    }
  )";
  const char *U3 = R"(
    extern func sumsq(n);
    func main() { print(sumsq(12)); return 0; }
  )";
  std::string Whole = std::string("func square(x) { return x * x; }\n") +
                      "func sumsq(n) { var s = 0; for (var i = 1; i <= n; "
                      "i = i + 1) { s = s + square(i); } return s; }\n" +
                      "func main() { print(sumsq(12)); return 0; }\n";
  for (PaperConfig Config : {PaperConfig::Base, PaperConfig::C}) {
    DiagnosticEngine Diags;
    auto Linked = compileUnits({U1, U2, U3}, optionsFor(Config), Diags);
    ASSERT_NE(Linked, nullptr) << Diags.str();
    RunStats LinkedStats = runProgram(Linked->Program);
    RunStats WholeStats = compileAndRun(Whole, optionsFor(Config));
    ASSERT_TRUE(LinkedStats.OK) << LinkedStats.Error;
    ASSERT_TRUE(WholeStats.OK) << WholeStats.Error;
    EXPECT_EQ(LinkedStats.Output, WholeStats.Output);
  }
}

TEST(LinkerTest, LibraryBoundaryKeepsProceduresOpen) {
  // Without internalization the exported procedures stay open: they use
  // the default protocol, so the program must still compute correctly but
  // with more save/restore traffic than the internalized link.
  const char *U1 = R"(
    export func work(x) {
      var a = x * 2;
      var b = helper(a);
      return a + b;
    }
    func helper(v) { return v + 1; }
  )";
  const char *U2 = R"(
    extern func work(x);
    func main() {
      var s = 0;
      for (var i = 0; i < 500; i = i + 1) { s = s + work(i); }
      print(s);
      return 0;
    }
  )";
  DiagnosticEngine Diags;
  auto Closed = compileUnits({U1, U2}, optionsFor(PaperConfig::C), Diags,
                             /*InternalizeExports=*/true);
  auto Open = compileUnits({U1, U2}, optionsFor(PaperConfig::C), Diags,
                           /*InternalizeExports=*/false);
  ASSERT_NE(Closed, nullptr) << Diags.str();
  ASSERT_NE(Open, nullptr) << Diags.str();
  RunStats ClosedStats = runProgram(Closed->Program);
  RunStats OpenStats = runProgram(Open->Program);
  ASSERT_TRUE(ClosedStats.OK) << ClosedStats.Error;
  ASSERT_TRUE(OpenStats.OK) << OpenStats.Error;
  EXPECT_EQ(ClosedStats.Output, OpenStats.Output);
  EXPECT_LE(ClosedStats.scalarMemOps(), OpenStats.scalarMemOps())
      << "whole-program link can only help";
}

} // namespace
